// Command tecfan runs one benchmark under one thermal-management policy and
// prints the §V-D metrics, raw and normalized to the base scenario.
//
// Usage:
//
//	tecfan -bench cholesky -threads 16 -policy TECfan [-scale 0.2]
//	tecfan -list
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"tecfan"
	"tecfan/internal/cmdutil"
)

func main() {
	bench := flag.String("bench", "cholesky", "benchmark name (cholesky, fmm, volrend, water, lu)")
	threads := flag.Int("threads", 16, "thread count (16 or 4, per Table I)")
	policy := flag.String("policy", "TECfan", "policy: Fan-only, Fan+TEC, Fan+DVFS, DVFS+TEC, TECfan")
	scale := flag.Float64("scale", 1.0, "instruction-budget scale (1 = paper length)")
	list := flag.Bool("list", false, "list benchmarks and policies, then exit")
	flag.Parse()

	sys, err := tecfan.New(tecfan.WithScale(*scale))
	if err != nil {
		fatal(err)
	}
	if *list {
		cmdutil.PrintLists(sys)
		return
	}
	if err := cmdutil.CheckBench(sys, *bench, *threads); err != nil {
		fatal(err)
	}
	if err := cmdutil.CheckPolicy(sys, *policy); err != nil {
		fatal(err)
	}

	// Ctrl-C / SIGTERM cancels the run at its next control boundary instead
	// of leaving the process to be killed mid-simulation.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	rep, err := sys.RunContext(ctx, *bench, *threads, *policy)
	if err != nil {
		fatal(err)
	}
	m := rep.Metrics
	fmt.Printf("%s/%d under %s (T_th = %.2f °C, fan level %d)\n",
		rep.Benchmark, rep.Threads, rep.Policy, rep.Threshold, rep.FanLevel+1)
	fmt.Printf("  time       %10.3f ms\n", m.Time*1000)
	fmt.Printf("  energy     %10.3f J\n", m.Energy)
	fmt.Printf("  avg power  %10.2f W\n", m.AvgPower)
	fmt.Printf("  peak temp  %10.2f °C\n", m.PeakTemp)
	fmt.Printf("  violations %10.3f %%\n", 100*m.ViolationRatio)
	fmt.Printf("  EPI        %10.4g J/inst\n", m.EPI)
	fmt.Printf("  EDP        %10.4g J·s\n", m.EDP)
	n := rep.Normalized
	fmt.Printf("normalized to base: delay %.3f  power %.3f  energy %.3f  EDP %.3f\n",
		n.Delay, n.Power, n.Energy, n.EDP)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tecfan:", err)
	os.Exit(1)
}
