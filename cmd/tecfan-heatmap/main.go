// Command tecfan-heatmap renders the chip as SVG: the floorplan with TEC
// placements, or a steady-state temperature field for a Table I workload at
// a chosen fan level — per-component (compact model) or per-cell (grid
// model).
//
//	tecfan-heatmap -mode floorplan > chip.svg
//	tecfan-heatmap -mode compact -bench lu -fan 2 > lu_l2.svg
//	tecfan-heatmap -mode grid -bench cholesky -cell 0.15 > cholesky.svg
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"

	"tecfan/internal/fan"
	"tecfan/internal/floorplan"
	"tecfan/internal/power"
	"tecfan/internal/tec"
	"tecfan/internal/thermal"
	"tecfan/internal/viz"
	"tecfan/internal/workload"
)

func main() {
	mode := flag.String("mode", "compact", "floorplan, compact, or grid")
	bench := flag.String("bench", "cholesky", "benchmark for thermal modes")
	threads := flag.Int("threads", 16, "thread count (16 or 4)")
	fanLevel := flag.Int("fan", 1, "fan speed level, 1 = fastest")
	cell := flag.Float64("cell", 0.2, "grid cell size, mm (grid mode)")
	out := flag.String("o", "", "output file (default stdout)")
	flag.Parse()

	if *mode != "floorplan" && *mode != "compact" && *mode != "grid" {
		fatal(fmt.Errorf("unknown mode %q (valid: floorplan, compact, grid)", *mode))
	}
	if *cell <= 0 {
		fatal(fmt.Errorf("cell size must be positive, got %g", *cell))
	}

	w := io.Writer(os.Stdout)
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}

	chip := floorplan.NewSCC16()
	fm := fan.DynatronR16()
	leak := power.DefaultLeakage()

	if *mode == "floorplan" {
		if err := viz.Floorplan(w, chip, tec.Array(chip, tec.DefaultDevice())); err != nil {
			fatal(err)
		}
		return
	}

	if *fanLevel < 1 || *fanLevel > fm.NumLevels() {
		fatal(fmt.Errorf("fan level %d out of range (valid: 1..%d)", *fanLevel, fm.NumLevels()))
	}
	b, err := workload.ByName(*bench, *threads, leak)
	if err != nil {
		fatal(err)
	}
	p := make([]float64, len(chip.Components))
	for core := 0; core < chip.NumCores(); core++ {
		b.AddDynPower(chip, core, 0.5, 1.0, p)
	}
	// One leakage refinement pass at a nominal temperature.
	lk := make([]float64, len(p))
	temps0 := make([]float64, len(p))
	for i := range temps0 {
		temps0[i] = 75
	}
	leak.PerComponent(chip, temps0, power.ModelQuad, lk)
	for i := range p {
		p[i] += lk[i]
	}
	level := fm.Clamp(*fanLevel - 1)

	// Ctrl-C / SIGTERM aborts before the steady-state solve — the only step
	// that takes real time (fine grids especially).
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	switch *mode {
	case "compact":
		nw := thermal.NewNetwork(chip, fm, thermal.DefaultParams())
		if err := ctx.Err(); err != nil {
			fatal(err)
		}
		temps, err := nw.Steady(p, level, nil)
		if err != nil {
			fatal(err)
		}
		if err := viz.ComponentHeatmap(w, chip, temps); err != nil {
			fatal(err)
		}
	case "grid":
		g, err := thermal.NewGrid(chip, fm, thermal.DefaultParams(), *cell)
		if err != nil {
			fatal(err)
		}
		if err := ctx.Err(); err != nil {
			fatal(err)
		}
		temps, err := g.Steady(p, level)
		if err != nil {
			fatal(err)
		}
		if err := viz.GridHeatmap(w, g, temps); err != nil {
			fatal(err)
		}
	default:
		fatal(fmt.Errorf("unknown mode %q", *mode))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tecfan-heatmap:", err)
	os.Exit(1)
}
