// Command tecfan-netchaos is the standalone network chaos proxy: it sits
// between a client and the tecfand daemon and impairs traffic per a seeded
// fault schedule, so control-plane resilience can be drilled against a real
// daemon process (scripts/netchaos_drill.sh does exactly that).
//
// Faults can be given inline:
//
//	tecfan-netchaos -listen 127.0.0.1:9023 -target 127.0.0.1:8023 \
//	    -seed 42 -latency 5ms -jitter 10ms -drop 0.1 -reset 0.05 \
//	    -partition 2s-2500ms -period 10s
//
// or as a JSON schedule file (see internal/netfault.Schedule):
//
//	tecfan-netchaos -listen 127.0.0.1:9023 -target 127.0.0.1:8023 \
//	    -seed 42 -schedule faults.json
//
// The two forms are mutually exclusive. -partition takes comma-separated
// from-to windows relative to proxy start (repeating every -period when one
// is set). SIGINT/SIGTERM closes the listener and resets live connections.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"tecfan/internal/cmdutil"
	"tecfan/internal/netfault"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:9023", "address the proxy listens on")
	target := flag.String("target", "127.0.0.1:8023", "upstream daemon address")
	seed := flag.Int64("seed", 1, "base seed for all probabilistic fault decisions")
	schedFile := flag.String("schedule", "", "JSON schedule file (mutually exclusive with inline fault flags)")
	latency := flag.Duration("latency", 0, "fixed latency added to each forwarded chunk")
	jitter := flag.Duration("jitter", 0, "random extra latency in [0, jitter)")
	drop := flag.Float64("drop", 0, "probability a new connection is blackholed")
	reset := flag.Float64("reset", 0, "probability a connection is reset mid-stream")
	bandwidth := flag.Int64("bandwidth", 0, "bandwidth cap in bytes/sec (0 = uncapped)")
	partition := flag.String("partition", "", "comma-separated from-to windows of full partition, e.g. \"2s-2500ms,8s-9s\"")
	period := flag.Duration("period", 0, "schedule repeats with this period (0 = one-shot windows)")
	flag.Parse()

	for _, err := range []error{
		cmdutil.CheckAddr("listen", *listen),
		cmdutil.CheckAddr("target", *target),
		cmdutil.CheckNonNegativeDuration("latency", *latency),
		cmdutil.CheckNonNegativeDuration("jitter", *jitter),
		cmdutil.CheckNonNegativeDuration("period", *period),
		cmdutil.CheckProbability("drop", *drop),
		cmdutil.CheckProbability("reset", *reset),
	} {
		if err != nil {
			fatal(err)
		}
	}
	if *bandwidth < 0 {
		fatal(fmt.Errorf("-bandwidth must be >= 0, got %d", *bandwidth))
	}

	var sched netfault.Schedule
	if *schedFile != "" {
		if *latency != 0 || *jitter != 0 || *drop != 0 || *reset != 0 || *bandwidth != 0 || *partition != "" || *period != 0 {
			fatal(fmt.Errorf("-schedule is mutually exclusive with the inline fault flags"))
		}
		var err error
		sched, err = netfault.ParseScheduleFile(*schedFile)
		if err != nil {
			fatal(err)
		}
	} else {
		sched = netfault.Schedule{
			Base: netfault.Fault{
				Latency:      netfault.Duration(*latency),
				Jitter:       netfault.Duration(*jitter),
				Drop:         *drop,
				Reset:        *reset,
				BandwidthBPS: *bandwidth,
			},
			Period: netfault.Duration(*period),
		}
		windows, err := parsePartitions(*partition)
		if err != nil {
			fatal(err)
		}
		sched.Windows = windows
		if err := sched.Validate(); err != nil {
			fatal(err)
		}
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	proxy, err := netfault.New(*listen, *target, sched, *seed, &netfault.Options{Logf: log.Printf})
	if err != nil {
		fatal(err)
	}
	log.Printf("tecfan-netchaos: %s -> %s (seed %d)", proxy.Addr(), *target, *seed)

	<-ctx.Done()
	log.Printf("tecfan-netchaos: shutting down (live connections reset)")
	if err := proxy.Close(); err != nil {
		log.Printf("tecfan-netchaos: close: %v", err)
	}
}

// parsePartitions turns "2s-2500ms,8s-9s" into partition windows.
func parsePartitions(s string) ([]netfault.Window, error) {
	if s == "" {
		return nil, nil
	}
	var windows []netfault.Window
	for _, part := range strings.Split(s, ",") {
		from, to, ok := strings.Cut(strings.TrimSpace(part), "-")
		if !ok {
			return nil, fmt.Errorf("-partition: %q is not from-to", part)
		}
		f, err := time.ParseDuration(from)
		if err != nil {
			return nil, fmt.Errorf("-partition: %q: %v", part, err)
		}
		t, err := time.ParseDuration(to)
		if err != nil {
			return nil, fmt.Errorf("-partition: %q: %v", part, err)
		}
		windows = append(windows, netfault.Window{
			From:      netfault.Duration(f),
			To:        netfault.Duration(t),
			Partition: true,
		})
	}
	return windows, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tecfan-netchaos:", err)
	os.Exit(1)
}
