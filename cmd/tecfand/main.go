// Command tecfand is the crash-safe control-plane daemon: it serves an HTTP
// API for submitting simulations and chaos sweeps as supervised jobs, each
// checkpointing its full run state to -state-dir so a crash — SIGKILL
// included — resumes on the next start with a result bitwise-identical to an
// uninterrupted run.
//
// Usage:
//
//	tecfand -addr :8023 -state-dir /var/lib/tecfand
//
// Endpoints:
//
//	GET    /healthz           liveness
//	GET    /livez             liveness (conventional pair to /readyz)
//	GET    /readyz            readiness (503 while draining / queue full /
//	                          state dir unwritable)
//	POST   /jobs              submit a JobSpec; 202 {"id": ...}, 429 when shed.
//	                          An Idempotency-Key header makes the submission
//	                          safely retryable: a replayed key answers 200
//	                          with the original id and "deduplicated": true.
//	GET    /jobs              list jobs
//	GET    /jobs/{id}         job status
//	DELETE /jobs/{id}         cancel a job (checkpoints, then stops)
//	GET    /jobs/{id}/result  durable result of a finished job
//	GET    /storage           storage-robustness counters (degraded mode,
//	                          quarantines, scrub repairs)
//
// With -pool, execution moves to tecfan-worker processes and the worker
// protocol is mounted as well:
//
//	POST   /pool/claim        grant a shard lease (204 when no work)
//	POST   /pool/heartbeat    renew a lease (410 when fenced)
//	POST   /pool/checkpoint   upload mid-shard progress
//	POST   /pool/complete     report a shard result (idempotent per token)
//	GET    /pool/stats        coordinator counters
//
// Every request carries an X-Request-ID (client-supplied or minted) that is
// echoed in the response and threaded into the job log for correlation.
//
// SIGINT/SIGTERM drains gracefully: in-flight jobs are canceled at their next
// control boundary, which persists a final checkpoint for the next
// incarnation to resume from.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"tecfan/internal/clockfault"
	"tecfan/internal/cmdutil"
	"tecfan/internal/daemon"
	"tecfan/internal/diskfault"
	"tecfan/internal/numfault"
)

func main() {
	addr := flag.String("addr", ":8023", "HTTP listen address")
	stateDir := flag.String("state-dir", "tecfand-state", "directory for job checkpoints and results")
	workers := flag.Int("workers", 1, "concurrent job executors")
	queueDepth := flag.Int("queue", 8, "admission queue depth (beyond it, 429)")
	ckptEvery := flag.Int("checkpoint-every", 25, "checkpoint cadence in control periods")
	maxAttempts := flag.Int("max-attempts", 3, "supervisor attempts per job before it fails")
	watchdog := flag.Duration("watchdog", 2*time.Minute, "restart an attempt silent for this long (<0 disables)")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "how long shutdown waits for jobs to checkpoint out")
	submitRate := flag.Float64("submit-rate", 50, "token-bucket submission rate per second (<0 disables admission control)")
	submitBurst := flag.Int("submit-burst", 100, "token-bucket submission burst")
	requestTimeout := flag.Duration("request-timeout", 30*time.Second, "per-request handler deadline (<0 disables)")
	readHeaderTimeout := flag.Duration("read-header-timeout", 5*time.Second, "http.Server ReadHeaderTimeout (slowloris guard)")
	writeTimeout := flag.Duration("write-timeout", 60*time.Second, "http.Server WriteTimeout")
	idleTimeout := flag.Duration("idle-timeout", 2*time.Minute, "http.Server IdleTimeout for keep-alive connections")
	maxHeaderBytes := flag.Int("max-header-bytes", 1<<16, "http.Server MaxHeaderBytes")
	poolMode := flag.Bool("pool", false, "coordinate tecfan-worker processes instead of executing in-process")
	poolLeaseTTL := flag.Duration("pool-lease-ttl", 10*time.Second, "shard lease TTL before a silent worker is fenced (with -pool)")
	poolChunk := flag.Int("pool-chunk", 2, "sweep rows per shard (with -pool)")
	ckptKeep := flag.Int("checkpoint-keep", 3, "checkpoint generations retained per job, head included (1 disables rotation)")
	scrubInterval := flag.Duration("scrub-interval", 30*time.Second, "background checkpoint-scrub cadence (<0 disables)")
	probeInterval := flag.Duration("storage-probe-interval", 2*time.Second, "degraded-mode recovery probe cadence")
	dfSchedule := flag.String("diskfault-schedule", "", "JSON disk-fault schedule file; injects storage faults into all state I/O (testing only)")
	dfSeed := flag.Int64("diskfault-seed", 0, "override the schedule's seed (with -diskfault-schedule)")
	nfSchedule := flag.String("numfault-schedule", "", "JSON numerical-fault schedule file; corrupts trace-job solver state (testing only)")
	nfSeed := flag.Int64("numfault-seed", 0, "override the schedule's seed (with -numfault-schedule)")
	cfSchedule := flag.String("clockfault-schedule", "", "JSON clock-fault schedule file; skews this process's wall clock and timers (testing only)")
	cfSeed := flag.Int64("clockfault-seed", 0, "override the schedule's seed (with -clockfault-schedule)")
	flag.Parse()

	for _, err := range []error{
		cmdutil.CheckAddr("addr", *addr),
		cmdutil.CheckPositiveInt("workers", *workers),
		cmdutil.CheckPositiveInt("queue", *queueDepth),
		cmdutil.CheckPositiveInt("checkpoint-every", *ckptEvery),
		cmdutil.CheckPositiveInt("max-attempts", *maxAttempts),
		cmdutil.CheckPositiveInt("max-header-bytes", *maxHeaderBytes),
		cmdutil.CheckPositiveDuration("drain-timeout", *drainTimeout),
		cmdutil.CheckPositiveDuration("read-header-timeout", *readHeaderTimeout),
		cmdutil.CheckPositiveDuration("write-timeout", *writeTimeout),
		cmdutil.CheckPositiveDuration("idle-timeout", *idleTimeout),
		cmdutil.CheckPositiveDuration("pool-lease-ttl", *poolLeaseTTL),
		cmdutil.CheckPositiveInt("pool-chunk", *poolChunk),
		cmdutil.CheckPositiveInt("checkpoint-keep", *ckptKeep),
		cmdutil.CheckPositiveDuration("storage-probe-interval", *probeInterval),
	} {
		if err != nil {
			fatal(err)
		}
	}
	// The WriteTimeout must outlast the handler's own deadline, or slow-but-
	// legitimate responses (large result files) are cut off before the
	// request-timeout middleware can answer 503 cleanly.
	if *requestTimeout > 0 && *writeTimeout <= *requestTimeout {
		fatal(fmt.Errorf("-write-timeout (%v) must exceed -request-timeout (%v)", *writeTimeout, *requestTimeout))
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// With a -diskfault-schedule every byte of daemon state flows through a
	// seeded fault filesystem; a scheduled power cut kills the process with
	// exit 3, the same contract the SIGKILL crash drill exercises.
	fsys := diskfault.OS
	if *dfSchedule != "" {
		sched, err := diskfault.ParseScheduleFile(*dfSchedule)
		if err != nil {
			fatal(err)
		}
		if *dfSeed != 0 {
			sched.Seed = *dfSeed
		}
		ffs, err := diskfault.New(sched, &diskfault.Options{
			Logf: log.Printf,
			OnCrash: func() {
				log.Printf("tecfand: simulated power cut: unsynced state discarded, exiting")
				os.Exit(3)
			},
		})
		if err != nil {
			fatal(err)
		}
		fsys = ffs
		log.Printf("tecfand: DISK FAULT INJECTION ACTIVE (schedule %s, seed %d)", *dfSchedule, sched.Seed)
	}

	// With a -numfault-schedule every trace job runs under seeded numerical
	// corruption; the numguard auditor must catch every violation — that is
	// what the numfault drill proves.
	var numSched *numfault.Schedule
	if *nfSchedule != "" {
		sched, err := numfault.ParseScheduleFile(*nfSchedule)
		if err != nil {
			fatal(err)
		}
		if *nfSeed != 0 {
			sched.Seed = *nfSeed
		}
		numSched = &sched
		log.Printf("tecfand: NUMERIC FAULT INJECTION ACTIVE (schedule %s, seed %d)", *nfSchedule, sched.Seed)
	}

	// With a -clockfault-schedule the daemon reads time through a seeded
	// FaultClock under proc identity "daemon": its wall clock steps, drifts,
	// and freezes per the schedule while the monotonic side — everything
	// leases, watchdogs, and backoffs actually compare — stays truthful. The
	// clockfault drill runs a skewed daemon against skewed workers and
	// demands a byte-identical merged result.
	var clk clockfault.Clock
	if *cfSchedule != "" {
		sched, err := clockfault.ParseScheduleFile(*cfSchedule)
		if err != nil {
			fatal(err)
		}
		if *cfSeed != 0 {
			sched.Seed = *cfSeed
		}
		fc, err := clockfault.New(sched, "daemon", &clockfault.Options{Logf: log.Printf})
		if err != nil {
			fatal(err)
		}
		clk = fc
		log.Printf("tecfand: CLOCK FAULT INJECTION ACTIVE (schedule %s, seed %d, proc daemon)", *cfSchedule, sched.Seed)
	}

	s, err := daemon.New(daemon.Config{
		StateDir:             *stateDir,
		Workers:              *workers,
		QueueDepth:           *queueDepth,
		CheckpointEvery:      *ckptEvery,
		MaxAttempts:          *maxAttempts,
		WatchdogTimeout:      *watchdog,
		SubmitRate:           *submitRate,
		SubmitBurst:          *submitBurst,
		RequestTimeout:       *requestTimeout,
		PoolEnabled:          *poolMode,
		PoolLeaseTTL:         *poolLeaseTTL,
		PoolChunk:            *poolChunk,
		FS:                   fsys,
		CheckpointKeep:       *ckptKeep,
		ScrubInterval:        *scrubInterval,
		StorageProbeInterval: *probeInterval,
		NumFaults:            numSched,
		Clock:                clk,
	})
	if err != nil {
		fatal(err)
	}

	srv := &http.Server{
		Addr:              *addr,
		Handler:           s.Handler(),
		ReadHeaderTimeout: *readHeaderTimeout,
		WriteTimeout:      *writeTimeout,
		IdleTimeout:       *idleTimeout,
		MaxHeaderBytes:    *maxHeaderBytes,
	}
	errc := make(chan error, 1)
	go func() {
		log.Printf("tecfand: listening on %s (state: %s)", *addr, *stateDir)
		errc <- srv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		fatal(err)
	case <-ctx.Done():
	}
	log.Printf("tecfand: draining (in-flight jobs checkpoint at their next control boundary)")

	shutCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := s.Shutdown(shutCtx); err != nil {
		log.Printf("tecfand: %v", err)
	}
	if err := srv.Shutdown(shutCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Printf("tecfand: http shutdown: %v", err)
	}
	log.Printf("tecfand: stopped")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tecfand:", err)
	os.Exit(1)
}
