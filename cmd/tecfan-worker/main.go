// Command tecfan-worker is a pool worker process: it claims shard leases
// from a tecfand coordinator (started with -pool), executes them with the
// daemon's exact in-process semantics, uploads progress checkpoints, and
// renews its lease on a heartbeat loop. Kill a worker mid-shard and the
// coordinator fences its token and regrants the shard — along with the
// worker's last checkpoint — to another worker.
//
// Usage:
//
//	tecfan-worker -coordinator http://127.0.0.1:8023 -name w1
//
// A non-zero -health-port serves GET /healthz with the worker's counters
// (shards done/abandoned, checkpoints uploaded, fenced writes). -scratch-dir,
// when set, receives a <name>.json breadcrumb of the current claim for
// post-mortem debugging after a SIGKILL.
//
// SIGINT/SIGTERM stop the claim loop; the in-flight shard is abandoned and
// its lease left to expire — by design, since that is indistinguishable from
// a crash and exercises the same recovery path.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"tecfan/internal/client"
	"tecfan/internal/clockfault"
	"tecfan/internal/cmdutil"
	"tecfan/internal/numfault"
	"tecfan/internal/pool"
	"tecfan/internal/worker"
)

func main() {
	coordinator := flag.String("coordinator", "", "coordinator base URL, e.g. http://127.0.0.1:8023 (required)")
	name := flag.String("name", fmt.Sprintf("worker-%d", os.Getpid()), "worker name in leases and logs")
	poll := flag.Duration("poll", 500*time.Millisecond, "idle wait between claim attempts")
	healthPort := flag.Int("health-port", 0, "serve GET /healthz with worker stats on this port (0 disables)")
	scratchDir := flag.String("scratch-dir", "", "existing directory for claim breadcrumbs (empty disables)")
	requestTimeout := flag.Duration("request-timeout", 10*time.Second, "per-attempt deadline on coordinator calls")
	nfSchedule := flag.String("numfault-schedule", "", "JSON numerical-fault schedule applied to every trace shard (numeric chaos)")
	nfSeed := flag.Int64("numfault-seed", 0, "override the numfault schedule seed")
	cfSchedule := flag.String("clockfault-schedule", "", "JSON clock-fault schedule file; skews this worker's wall clock and timers (testing only)")
	cfSeed := flag.Int64("clockfault-seed", 0, "override the clockfault schedule seed")
	flag.Parse()

	if *coordinator == "" {
		fatal(fmt.Errorf("-coordinator is required"))
	}
	for _, err := range []error{
		cmdutil.CheckBaseURL("coordinator", *coordinator),
		cmdutil.CheckPort("health-port", *healthPort, true),
		cmdutil.CheckPositiveDuration("poll", *poll),
		cmdutil.CheckPositiveDuration("request-timeout", *requestTimeout),
	} {
		if err != nil {
			fatal(err)
		}
	}
	if *scratchDir != "" {
		if err := cmdutil.CheckExistingDir("scratch-dir", *scratchDir); err != nil {
			fatal(err)
		}
	}

	// Pooled trace shards must run under the same numeric fault lattice as the
	// coordinator's in-process path would, or the crucible's pooled episodes
	// and the in-process reference silently diverge in what they inject.
	var numSched *numfault.Schedule
	if *nfSchedule != "" {
		sched, err := numfault.ParseScheduleFile(*nfSchedule)
		if err != nil {
			fatal(err)
		}
		if *nfSeed != 0 {
			sched.Seed = *nfSeed
		}
		numSched = &sched
		log.Printf("tecfan-worker %s: NUMERIC FAULT INJECTION ACTIVE (schedule %s, seed %d)", *name, *nfSchedule, sched.Seed)
	}

	// With a -clockfault-schedule this worker's wall clock lies per the
	// schedule under its own -name as the proc identity, so a fleet sharing
	// one schedule file still skews each worker independently. Heartbeats,
	// upload deadlines, and claim backoff all ride the same clock.
	var clk clockfault.Clock
	if *cfSchedule != "" {
		sched, err := clockfault.ParseScheduleFile(*cfSchedule)
		if err != nil {
			fatal(err)
		}
		if *cfSeed != 0 {
			sched.Seed = *cfSeed
		}
		fc, err := clockfault.New(sched, *name, &clockfault.Options{Logf: log.Printf})
		if err != nil {
			fatal(err)
		}
		clk = fc
		log.Printf("tecfan-worker %s: CLOCK FAULT INJECTION ACTIVE (schedule %s, seed %d, proc %s)", *name, *cfSchedule, sched.Seed, *name)
	}

	cl, err := client.New(client.Config{
		BaseURL:        *coordinator,
		RequestTimeout: *requestTimeout,
		Logf:           log.Printf,
		Clock:          clk,
	})
	if err != nil {
		fatal(err)
	}
	w, err := worker.New(worker.Config{
		Client:    cl,
		Name:      *name,
		Poll:      *poll,
		Logf:      log.Printf,
		OnClaim:   breadcrumb(*scratchDir, *name),
		NumFaults: numSched,
		Clock:     clk,
	})
	if err != nil {
		fatal(err)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *healthPort != 0 {
		go serveHealth(*healthPort, *name, w)
	}

	log.Printf("tecfan-worker %s: polling %s", *name, *coordinator)
	if err := w.Run(ctx); err != nil && ctx.Err() == nil {
		fatal(err)
	}
	st := w.Stats()
	log.Printf("tecfan-worker %s: stopped (done=%d abandoned=%d checkpoints=%d fenced=%d)",
		*name, st.ShardsDone, st.ShardsAbandoned, st.Checkpoints, st.FencedWrites)
}

// breadcrumb returns an OnClaim hook writing the current claim to
// <dir>/<name>.json — deliberately not fsynced; it is a debugging aid, not
// state the protocol depends on.
func breadcrumb(dir, name string) func(*pool.ClaimResponse) {
	if dir == "" {
		return nil
	}
	path := filepath.Join(dir, name+".json")
	return func(grant *pool.ClaimResponse) {
		data, err := json.Marshal(map[string]any{
			"job_id": grant.JobID, "shard_id": grant.Shard.ID, "token": grant.Token,
		})
		if err == nil {
			err = os.WriteFile(path, append(data, '\n'), 0o644)
		}
		if err != nil {
			log.Printf("tecfan-worker %s: breadcrumb: %v", name, err)
		}
	}
}

func serveHealth(port int, name string, w *worker.Worker) {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(rw http.ResponseWriter, _ *http.Request) {
		rw.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(rw)
		enc.SetIndent("", "  ")
		_ = enc.Encode(map[string]any{"status": "ok", "worker": name, "stats": w.Stats()})
	})
	srv := &http.Server{
		Addr:              fmt.Sprintf("127.0.0.1:%d", port),
		Handler:           mux,
		ReadHeaderTimeout: 5 * time.Second,
	}
	if err := srv.ListenAndServe(); err != nil {
		log.Printf("tecfan-worker %s: health server: %v", name, err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tecfan-worker:", err)
	os.Exit(1)
}
