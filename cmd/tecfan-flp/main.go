// Command tecfan-flp bridges this library and stock HotSpot floorplans:
//
//	tecfan-flp -export > chip.flp          # emit the 16-core CMP as .flp
//	tecfan-flp -import ev6.flp             # inspect a HotSpot floorplan
//
// Import reports the parsed geometry, inferred component kinds, adjacency
// statistics, and the band structure the §III-E systolic hardware would see.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"tecfan/internal/floorplan"
	"tecfan/internal/linalg"
)

func main() {
	export := flag.Bool("export", false, "emit the 16-core chip as HotSpot .flp to stdout")
	imp := flag.String("import", "", "parse a HotSpot .flp file and report its structure")
	tiles := flag.Int("tiles", 4, "tile grid dimension for -export (4 = the paper's 16 cores)")
	flag.Parse()

	if *export && *imp != "" {
		fatal(fmt.Errorf("-export and -import are mutually exclusive"))
	}
	if *tiles < 1 {
		fatal(fmt.Errorf("tile grid dimension must be at least 1, got %d", *tiles))
	}

	switch {
	case *export:
		chip := floorplan.NewChip(*tiles, *tiles)
		if err := floorplan.WriteFLP(os.Stdout, chip); err != nil {
			fatal(err)
		}
	case *imp != "":
		f, err := os.Open(*imp)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		units, err := floorplan.ReadFLP(f)
		if err != nil {
			fatal(err)
		}
		chip, err := floorplan.ChipFromFLP(units)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%s: %d units, die %.2f x %.2f mm (%.2f mm²)\n",
			*imp, len(chip.Components), chip.W, chip.H, chip.Area())
		kinds := map[floorplan.Kind]int{}
		for _, c := range chip.Components {
			kinds[c.Kind]++
		}
		fmt.Printf("kinds: %d logic, %d array, %d wire, %d vr\n",
			kinds[floorplan.KindLogic], kinds[floorplan.KindArray],
			kinds[floorplan.KindWire], kinds[floorplan.KindVR])
		edges := chip.Adjacency()
		fmt.Printf("adjacency: %d edges, overlaps: %v, gap area: %.3f mm²\n",
			len(edges), chip.Overlaps(), chip.Area()-chip.TotalComponentArea())
		// Ctrl-C / SIGTERM skips the O(n²) band-structure analysis — the only
		// step that grows with floorplan size.
		ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
		defer stop()
		if err := ctx.Err(); err != nil {
			fatal(err)
		}
		// Band structure of the unit-adjacency matrix in file order — what
		// the §III-E systolic array's width would be for this plan.
		n := len(chip.Components)
		adj := linalg.NewDense(n, n)
		for i := 0; i < n; i++ {
			adj.Set(i, i, 1)
		}
		for _, e := range edges {
			adj.Set(e.A, e.B, 1)
			adj.Set(e.B, e.A, 1)
		}
		kl, ku := linalg.Bandwidth(adj, 0)
		fmt.Printf("adjacency bandwidth: kl=%d ku=%d (%d PEs for a systolic evaluator)\n",
			kl, ku, kl+ku+1)
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tecfan-flp:", err)
	os.Exit(1)
}
