package main

import (
	"bytes"
	"encoding/json"
	"go/token"
	"strings"
	"testing"

	"tecfan/internal/analysis"
	"tecfan/internal/cmdutil"
)

func sampleFindings() []analysis.Finding {
	pos := token.Position{Filename: "internal/sim/sim.go", Line: 42, Column: 7}
	return []analysis.Finding{{
		Analyzer: "nondeterminism",
		Pos:      pos,
		File:     pos.Filename, Line: pos.Line, Col: pos.Column,
		Message: "time.Now reads the wall clock",
	}}
}

func TestEmitText(t *testing.T) {
	var buf bytes.Buffer
	if code := emit(&buf, sampleFindings(), false); code != 1 {
		t.Fatalf("exit code %d with findings, want 1", code)
	}
	out := buf.String()
	if !strings.Contains(out, "internal/sim/sim.go:42:7") ||
		!strings.Contains(out, "(nondeterminism)") ||
		!strings.Contains(out, "tecfan-lint: 1 finding(s)") {
		t.Fatalf("text output incomplete:\n%s", out)
	}

	buf.Reset()
	if code := emit(&buf, nil, false); code != 0 {
		t.Fatalf("exit code %d with no findings, want 0", code)
	}
	if buf.Len() != 0 {
		t.Fatalf("clean run produced output: %q", buf.String())
	}
}

// JSON mode always exits 0 — consumers read the array and decide — and an
// empty result must be a decodable empty array, not "null".
func TestEmitJSON(t *testing.T) {
	var buf bytes.Buffer
	if code := emit(&buf, sampleFindings(), true); code != 0 {
		t.Fatalf("JSON exit code %d, want 0", code)
	}
	var got []analysis.Finding
	if err := json.Unmarshal(buf.Bytes(), &got); err != nil {
		t.Fatalf("output is not a findings array: %v\n%s", err, buf.String())
	}
	if len(got) != 1 || got[0].Analyzer != "nondeterminism" || got[0].Line != 42 {
		t.Fatalf("round-trip mismatch: %+v", got)
	}

	buf.Reset()
	if code := emit(&buf, nil, true); code != 0 {
		t.Fatalf("empty JSON exit code %d, want 0", code)
	}
	if s := strings.TrimSpace(buf.String()); s != "[]" {
		t.Fatalf("empty findings encode as %q, want []", s)
	}
}

// TestVersionLine pins the exact shape cmd/go's toolID parser requires of a
// -V=full response: >= 3 fields, "version" second, and — because the third
// is "devel" — a final field carrying the buildID.
func TestVersionLine(t *testing.T) {
	var buf bytes.Buffer
	printVersion(&buf)
	line := strings.TrimSpace(buf.String())
	f := strings.Fields(line)
	if len(f) < 3 || f[0] != "tecfan-lint" || f[1] != "version" {
		t.Fatalf("malformed -V=full line: %q", line)
	}
	if f[2] == "devel" && !strings.HasPrefix(f[len(f)-1], "buildID=") {
		t.Fatalf("devel version line missing buildID field: %q", line)
	}
}

// TestFlagDefs pins the -flags contract: a JSON array of {Name,Bool,Usage}
// objects that cmd/go uses to decide which flags it may forward.
func TestFlagDefs(t *testing.T) {
	var buf bytes.Buffer
	printFlagDefs(&buf)
	var defs []struct {
		Name  string
		Bool  bool
		Usage string
	}
	if err := json.Unmarshal(buf.Bytes(), &defs); err != nil {
		t.Fatalf("-flags output is not JSON: %v\n%s", err, buf.String())
	}
	found := false
	for _, d := range defs {
		if d.Name == "json" && d.Bool {
			found = true
		}
	}
	if !found {
		t.Fatalf("-flags does not declare the boolean json flag: %+v", defs)
	}
}

// TestPatternValidation mirrors main's eager argument check: the same
// cmdutil helper must reject flag-looking and mangled patterns before any
// go list run.
func TestPatternValidation(t *testing.T) {
	if err := cmdutil.CheckPackagePattern("tecfan-lint", "./..."); err != nil {
		t.Fatal(err)
	}
	for _, pat := range []string{"", "-json", "./... ./cmd"} {
		if err := cmdutil.CheckPackagePattern("tecfan-lint", pat); err == nil {
			t.Errorf("pattern %q accepted", pat)
		}
	}
}
