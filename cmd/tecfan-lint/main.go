// Command tecfan-lint is the repo's static-invariant multichecker: it runs
// the nine DESIGN.md §13/§18 analyzers (nondeterminism, ctxloop,
// atomicwrite, lockedio, floatcmp, monotime, allocfree, scratchalias,
// hotcall) over package patterns and exits nonzero on any unjustified
// finding.
//
//	tecfan-lint ./...                # standalone, human-readable
//	tecfan-lint -json ./...          # standalone, machine-readable
//	tecfan-lint -analyzers           # print the catalog
//	tecfan-lint -escape ./...        # confirm allocs with go build -gcflags=-m=2
//	tecfan-lint -escape-cache=escape.json ./...  # reuse a saved -m=2 report
//	go vet -vettool=$(which tecfan-lint) ./...
//
// -escape runs the compiler's escape analysis over the whole module and
// hands the parsed report to the analyzers, which may use it only to clear
// or annotate syntactic findings (never to add new ones) — so escape-aware
// and plain runs agree on a clean tree. -escape-cache loads a report saved
// by a previous run (escape.Report.Save) instead of rebuilding; both are
// standalone-mode only and are not forwarded through the vet driver.
//
// The last form speaks cmd/go's (unpublished) vet driver protocol: cmd/go
// invokes the tool once per package with a vet.cfg file naming the sources
// and every dependency's export data, plus -V=full and -flags probes for
// build caching and flag discovery. Both forms run the identical analyzer
// set with identical //lint:tecfan-ignore handling, so developers, the
// scripts/lint.sh entry point, CI, and TestAnalyzersCleanOnTree can never
// disagree about what is clean.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"tecfan/internal/analysis"
	"tecfan/internal/analysis/escape"
	"tecfan/internal/analysis/loader"
	"tecfan/internal/cmdutil"
)

func main() {
	// cmd/go probes precede normal flag parsing: it invokes `-V=full` to
	// derive a cache key from the tool's content hash, and `-flags` to
	// discover which flags it may forward.
	if len(os.Args) == 2 {
		switch os.Args[1] {
		case "-V=full", "--V=full":
			printVersion(os.Stdout)
			return
		case "-flags", "--flags":
			printFlagDefs(os.Stdout)
			return
		}
	}

	jsonOut := flag.Bool("json", false, "emit findings as a JSON array on stdout (exit 0; for tooling)")
	listAnalyzers := flag.Bool("analyzers", false, "print the analyzer catalog and exit")
	useEscape := flag.Bool("escape", false, "run go build -gcflags=-m=2 and confirm allocation findings against the compiler (standalone mode only)")
	escapeCache := flag.String("escape-cache", "", "load a saved -m=2 escape report from `file` instead of rebuilding (standalone mode only)")
	escapeSave := flag.String("escape-save", "", "with -escape: also save the parsed report to `file` for later -escape-cache runs")
	flag.Parse()
	args := flag.Args()

	if *listAnalyzers {
		for _, a := range analysis.All() {
			fmt.Printf("%s\n\t%s\n", a.Name, a.Doc)
		}
		return
	}

	// vet driver mode: cmd/go passes exactly one argument, the config file.
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		if *useEscape || *escapeCache != "" {
			fatal(fmt.Errorf("-escape/-escape-cache are standalone-mode flags; the vet driver cannot carry an escape report"))
		}
		os.Exit(vetMode(args[0], *jsonOut))
	}

	// Standalone mode over package patterns.
	if len(args) == 0 {
		args = []string{"./..."}
	}
	for _, pat := range args {
		if err := cmdutil.CheckPackagePattern("tecfan-lint", pat); err != nil {
			fatal(err)
		}
	}
	var rep *escape.Report
	switch {
	case *escapeCache != "":
		if err := cmdutil.CheckFileExists("escape-cache", *escapeCache); err != nil {
			fatal(err)
		}
		var err error
		if rep, err = escape.LoadFile(*escapeCache); err != nil {
			fatal(err)
		}
	case *useEscape:
		var err error
		if rep, err = escape.Run(".", args...); err != nil {
			fatal(err)
		}
		if *escapeSave != "" {
			if err := rep.Save(*escapeSave); err != nil {
				fatal(err)
			}
		}
	}
	pkgs, err := loader.Load(".", args...)
	if err != nil {
		fatal(err)
	}
	if rep != nil {
		for _, pkg := range pkgs {
			pkg.Escape = rep
		}
	}
	var findings []analysis.Finding
	for _, pkg := range pkgs {
		fs, err := analysis.RunPackage(pkg, analysis.All(), nil)
		if err != nil {
			fatal(err)
		}
		findings = append(findings, fs...)
	}
	os.Exit(emit(os.Stdout, findings, *jsonOut))
}

// emit writes findings and returns the process exit code: 1 if anything
// must block the build, 0 otherwise. JSON mode always exits 0 so tooling
// can consume the stream and decide for itself.
func emit(w io.Writer, findings []analysis.Finding, asJSON bool) int {
	if asJSON {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if findings == nil {
			findings = []analysis.Finding{}
		}
		if err := enc.Encode(findings); err != nil {
			fatal(err)
		}
		return 0
	}
	for _, f := range findings {
		fmt.Fprintln(w, f.String())
	}
	if len(findings) > 0 {
		fmt.Fprintf(w, "tecfan-lint: %d finding(s)\n", len(findings))
		return 1
	}
	return 0
}

// printVersion emits the line cmd/go's toolID parser expects: field 2 is
// "devel" and the final field carries a content hash of this executable,
// so editing an analyzer invalidates cmd/go's vet cache.
func printVersion(w io.Writer) {
	h := sha256.New()
	exe, err := os.Executable()
	if err == nil {
		f, err2 := os.Open(exe)
		if err2 == nil {
			_, _ = io.Copy(h, f)
			f.Close()
		}
	}
	fmt.Fprintf(w, "tecfan-lint version devel comments-go-here buildID=%02x\n", h.Sum(nil))
}

// printFlagDefs tells cmd/go which tool flags `go vet -vettool` may accept
// on its own command line and forward.
func printFlagDefs(w io.Writer) {
	type flagDef struct {
		Name  string `json:"Name"`
		Bool  bool   `json:"Bool"`
		Usage string `json:"Usage"`
	}
	defs := []flagDef{
		{Name: "json", Bool: true, Usage: "emit findings as JSON"},
	}
	out, err := json.Marshal(defs)
	if err != nil {
		fatal(err)
	}
	fmt.Fprintln(w, string(out))
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "tecfan-lint: %v\n", err)
	os.Exit(2)
}
