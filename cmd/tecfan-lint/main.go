// Command tecfan-lint is the repo's static-invariant multichecker: it runs
// the five DESIGN.md §13 analyzers (nondeterminism, ctxloop, atomicwrite,
// lockedio, floatcmp) over package patterns and exits nonzero on any
// unjustified finding.
//
//	tecfan-lint ./...                # standalone, human-readable
//	tecfan-lint -json ./...          # standalone, machine-readable
//	tecfan-lint -analyzers           # print the catalog
//	go vet -vettool=$(which tecfan-lint) ./...
//
// The last form speaks cmd/go's (unpublished) vet driver protocol: cmd/go
// invokes the tool once per package with a vet.cfg file naming the sources
// and every dependency's export data, plus -V=full and -flags probes for
// build caching and flag discovery. Both forms run the identical analyzer
// set with identical //lint:tecfan-ignore handling, so developers, the
// scripts/lint.sh entry point, CI, and TestAnalyzersCleanOnTree can never
// disagree about what is clean.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"tecfan/internal/analysis"
	"tecfan/internal/analysis/loader"
	"tecfan/internal/cmdutil"
)

func main() {
	// cmd/go probes precede normal flag parsing: it invokes `-V=full` to
	// derive a cache key from the tool's content hash, and `-flags` to
	// discover which flags it may forward.
	if len(os.Args) == 2 {
		switch os.Args[1] {
		case "-V=full", "--V=full":
			printVersion(os.Stdout)
			return
		case "-flags", "--flags":
			printFlagDefs(os.Stdout)
			return
		}
	}

	jsonOut := flag.Bool("json", false, "emit findings as a JSON array on stdout (exit 0; for tooling)")
	listAnalyzers := flag.Bool("analyzers", false, "print the analyzer catalog and exit")
	flag.Parse()
	args := flag.Args()

	if *listAnalyzers {
		for _, a := range analysis.All() {
			fmt.Printf("%s\n\t%s\n", a.Name, a.Doc)
		}
		return
	}

	// vet driver mode: cmd/go passes exactly one argument, the config file.
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		os.Exit(vetMode(args[0], *jsonOut))
	}

	// Standalone mode over package patterns.
	if len(args) == 0 {
		args = []string{"./..."}
	}
	for _, pat := range args {
		if err := cmdutil.CheckPackagePattern("tecfan-lint", pat); err != nil {
			fatal(err)
		}
	}
	pkgs, err := loader.Load(".", args...)
	if err != nil {
		fatal(err)
	}
	var findings []analysis.Finding
	for _, pkg := range pkgs {
		fs, err := analysis.RunPackage(pkg, analysis.All(), nil)
		if err != nil {
			fatal(err)
		}
		findings = append(findings, fs...)
	}
	os.Exit(emit(os.Stdout, findings, *jsonOut))
}

// emit writes findings and returns the process exit code: 1 if anything
// must block the build, 0 otherwise. JSON mode always exits 0 so tooling
// can consume the stream and decide for itself.
func emit(w io.Writer, findings []analysis.Finding, asJSON bool) int {
	if asJSON {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if findings == nil {
			findings = []analysis.Finding{}
		}
		if err := enc.Encode(findings); err != nil {
			fatal(err)
		}
		return 0
	}
	for _, f := range findings {
		fmt.Fprintln(w, f.String())
	}
	if len(findings) > 0 {
		fmt.Fprintf(w, "tecfan-lint: %d finding(s)\n", len(findings))
		return 1
	}
	return 0
}

// printVersion emits the line cmd/go's toolID parser expects: field 2 is
// "devel" and the final field carries a content hash of this executable,
// so editing an analyzer invalidates cmd/go's vet cache.
func printVersion(w io.Writer) {
	h := sha256.New()
	exe, err := os.Executable()
	if err == nil {
		f, err2 := os.Open(exe)
		if err2 == nil {
			_, _ = io.Copy(h, f)
			f.Close()
		}
	}
	fmt.Fprintf(w, "tecfan-lint version devel comments-go-here buildID=%02x\n", h.Sum(nil))
}

// printFlagDefs tells cmd/go which tool flags `go vet -vettool` may accept
// on its own command line and forward.
func printFlagDefs(w io.Writer) {
	type flagDef struct {
		Name  string `json:"Name"`
		Bool  bool   `json:"Bool"`
		Usage string `json:"Usage"`
	}
	defs := []flagDef{
		{Name: "json", Bool: true, Usage: "emit findings as JSON"},
	}
	out, err := json.Marshal(defs)
	if err != nil {
		fatal(err)
	}
	fmt.Fprintln(w, string(out))
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "tecfan-lint: %v\n", err)
	os.Exit(2)
}
