package main

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"

	"tecfan/internal/analysis"
)

// vetConfig mirrors the subset of cmd/go's internal vetConfig that this
// driver consumes. cmd/go serializes it to <objdir>/vet.cfg and passes the
// path as the sole positional argument.
type vetConfig struct {
	ID         string   // package ID, e.g. "tecfan/internal/sim"
	Compiler   string   // "gc"
	Dir        string   // package directory
	ImportPath string   // canonical import path
	GoFiles    []string // absolute paths of the package's Go sources

	ImportMap   map[string]string // source import path → canonical package path
	PackageFile map[string]string // canonical package path → export data file

	VetxOnly   bool   // facts-only run for a dependency: nothing to do here
	VetxOutput string // where cmd/go expects the (empty) facts file

	SucceedOnTypecheckFailure bool // cmd/go asks us to stay quiet on broken packages
}

// vetMode runs the suite over one package described by a vet.cfg file and
// returns the process exit code.
func vetMode(cfgPath string, asJSON bool) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fatal(err)
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fatal(fmt.Errorf("parsing %s: %w", cfgPath, err))
	}

	// cmd/go caches per-package results keyed on the facts file; write it
	// even though no tecfan analyzer exports facts.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			fatal(err)
		}
	}
	// Dependencies are analyzed when cmd/go reaches them as targets;
	// facts-only runs have nothing further to produce.
	if cfg.VetxOnly {
		return 0
	}

	pkg, err := typecheckCfg(&cfg)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fatal(err)
	}
	findings, err := analysis.RunPackage(pkg, analysis.All(), nil)
	if err != nil {
		fatal(err)
	}
	// Diagnostics go to stderr in driver mode: cmd/go interleaves them
	// with its own "# package" headers.
	return emit(os.Stderr, findings, asJSON)
}

// typecheckCfg loads the package the way the loader package does, but from
// the driver config instead of `go list` output.
func typecheckCfg(cfg *vetConfig) (*analysis.Package, error) {
	fset := token.NewFileSet()
	files := make([]*ast.File, 0, len(cfg.GoFiles))
	for _, path := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}

	compilerImp := importer.ForCompiler(fset, cfg.Compiler, func(path string) (io.ReadCloser, error) {
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	imp := importerFunc(func(importPath string) (*types.Package, error) {
		if mapped, ok := cfg.ImportMap[importPath]; ok {
			importPath = mapped
		}
		return compilerImp.Import(importPath)
	})

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %w", cfg.ImportPath, err)
	}
	return &analysis.Package{Fset: fset, Files: files, Types: tpkg, Info: info}, nil
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
