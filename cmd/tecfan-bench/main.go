// Command tecfan-bench regenerates every table and figure of the paper's
// evaluation section and writes them to stdout (or a file):
//
//	tecfan-bench                  # everything at a reduced scale
//	tecfan-bench -exp table1      # one experiment
//	tecfan-bench -scale 1 -trace 600   # full paper-scale run
//
// Experiments: table1, fig4, fig5, fig6, fig7, hw, all.
//
// With -gobench it instead becomes the performance regression gate over
// the Go micro-benchmarks (see gate.go and scripts/bench_gate.sh):
//
//	tecfan-bench -gobench -emit BENCH_10.json          # record a baseline
//	tecfan-bench -gobench -gate -baseline BENCH_10.json  # CI gate
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"tecfan"
	"tecfan/internal/cmdutil"
)

func main() {
	which := flag.String("exp", "all", "experiment: table1, fig4, fig5, fig6, fig7, hw, ablate, mapping, timescales, scaling, mix, oraclegap, report, all")
	scale := flag.Float64("scale", 0.25, "16-core instruction-budget scale (1 = paper length)")
	traceSec := flag.Int("trace", 600, "Fig. 7 per-core trace seconds (600 = paper's 10 min)")
	out := flag.String("o", "", "output file (default stdout)")

	gobench := flag.Bool("gobench", false, "run the Go micro-benchmarks as the perf gate instead of the paper experiments")
	var gf gateFlags
	flag.BoolVar(&gf.gate, "gate", false, "with -gobench: compare against -baseline and exit 1 on regression")
	flag.StringVar(&gf.baseline, "baseline", "", "baseline BENCH JSON `file` for -gate")
	flag.StringVar(&gf.emit, "emit", "", "write the measured BENCH JSON to `file`")
	flag.IntVar(&gf.runs, "runs", 3, "benchmark repetitions; the per-metric median gates")
	flag.StringVar(&gf.benchtime, "benchtime", "100ms", "go test -benchtime value (time-based, so ns-scale and ms-scale kernels measure equally long)")
	flag.StringVar(&gf.benchRe, "bench", gateBenchRe, "go test -bench regex (default: the hot-path kernel set)")
	flag.Float64Var(&gf.nsTol, "ns-tol", 0.15, "ns/op tolerance fraction on a matching CPU")
	flag.Parse()

	if *gobench {
		if gf.baseline != "" {
			if err := cmdutil.CheckFileExists("baseline", gf.baseline); err != nil {
				fatal(err)
			}
		}
		os.Exit(runGoBench(gf, flag.Args()))
	}

	valid := []string{"table1", "fig4", "fig5", "fig6", "fig7", "hw", "ablate",
		"mapping", "timescales", "scaling", "mix", "oraclegap", "report", "all"}
	known := false
	for _, v := range valid {
		known = known || v == *which
	}
	if !known {
		fatal(fmt.Errorf("unknown experiment %q (valid: %s)", *which, strings.Join(valid, ", ")))
	}

	w := io.Writer(os.Stdout)
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}

	sys, err := tecfan.New(tecfan.WithScale(*scale))
	if err != nil {
		fatal(err)
	}

	// Ctrl-C / SIGTERM cancels the in-flight experiment at its next control
	// boundary; sweeps flush the rows they finished before exiting.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	run := func(name string, f func() error) {
		if *which != "all" && *which != name {
			return
		}
		start := time.Now()
		fmt.Fprintf(w, "==== %s ====\n", strings.ToUpper(name))
		if err := f(); err != nil {
			fatal(fmt.Errorf("%s: %w", name, err))
		}
		fmt.Fprintf(w, "(%s in %v)\n\n", name, time.Since(start).Round(time.Millisecond))
	}

	run("table1", func() error {
		rows, err := sys.Table1Context(ctx)
		// Partial rows (an interrupted sweep) are still worth printing.
		if len(rows) > 0 {
			tecfan.WriteTable1(w, rows)
		}
		return err
	})
	run("fig4", func() error {
		cases, err := sys.Fig4Context(ctx)
		if len(cases) > 0 {
			tecfan.WriteFig4(w, cases)
		}
		return err
	})
	// Fig. 5 and Fig. 6 share the same runs.
	fig56 := func(writeBoth bool) func() error {
		return func() error {
			r, err := sys.Fig56Context(ctx)
			if err != nil {
				return err
			}
			if *which == "all" || writeBoth {
				tecfan.WriteFig5(w, r)
				tecfan.WriteFig6(w, r)
				return nil
			}
			return nil
		}
	}
	switch *which {
	case "fig5", "fig6":
		run(*which, fig56(true))
	default:
		run("fig56", func() error {
			r, err := sys.Fig56Context(ctx)
			if err != nil {
				return err
			}
			tecfan.WriteFig5(w, r)
			tecfan.WriteFig6(w, r)
			return nil
		})
	}
	run("fig7", func() error {
		rows, err := tecfan.Fig7Context(ctx, *traceSec)
		if err != nil {
			return err
		}
		tecfan.WriteFig7(w, rows)
		return nil
	})
	run("hw", func() error {
		r, err := sys.HardwareCost()
		if err != nil {
			return err
		}
		tecfan.WriteHardwareCost(w, r)
		return nil
	})
	// The report duplicates every experiment, so it only runs when asked
	// for explicitly (never as part of "all").
	if *which == "report" {
		start := time.Now()
		if err := sys.WriteReportContext(ctx, w, tecfan.ReportOptions{TraceSeconds: *traceSec, Now: time.Now}); err != nil {
			fatal(err)
		}
		fmt.Fprintf(w, "(report in %v)\n", time.Since(start).Round(time.Millisecond))
	}
	run("oraclegap", func() error {
		for _, sev := range []float64{2, 6, 10} {
			r, err := tecfan.OracleGap(sev)
			if err != nil {
				return err
			}
			fmt.Fprintf(w, "severity %.0f °C:\n", sev)
			tecfan.WriteOracleGap(w, r)
		}
		return nil
	})
	run("mix", func() error {
		r, err := sys.MixStudy()
		if err != nil {
			return err
		}
		tecfan.WriteMixStudy(w, r)
		return nil
	})
	run("scaling", func() error {
		rows, err := tecfan.ControllerScaling([]int{1, 2, 3, 4, 6})
		if err != nil {
			return err
		}
		tecfan.WriteScaling(w, rows)
		return nil
	})
	run("timescales", func() error {
		rows, err := sys.Timescales()
		if err != nil {
			return err
		}
		tecfan.WriteTimescales(w, rows)
		return nil
	})
	run("mapping", func() error {
		rows, err := sys.MappingStudy("cholesky", "TECfan")
		if err != nil {
			return err
		}
		tecfan.WriteMappingStudy(w, "cholesky", rows)
		return nil
	})
	run("ablate", func() error {
		rows, err := sys.KnobAblation("cholesky")
		if err != nil {
			return err
		}
		tecfan.WriteAblation(w, "knob ablation (cholesky/16, normalized to base)", rows)
		prows, err := sys.PeriodAblation("cholesky", []float64{1e-3, 2e-3, 4e-3, 8e-3})
		if err != nil {
			return err
		}
		tecfan.WriteAblation(w, "\ncontrol-period ablation (cholesky/16)", prows)
		crows, err := sys.CurrentAblation([]float64{2, 4, 6, 8})
		if err != nil {
			return err
		}
		fmt.Fprintln(w)
		tecfan.WriteCurrentAblation(w, crows)
		aligned, uniform, err := sys.PlacementAblation()
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "\nTEC placement: hot-row aligned relief %.2f °C vs uniform grid %.2f °C\n",
			aligned, uniform)
		return nil
	})
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tecfan-bench:", err)
	os.Exit(1)
}
