package main

// The -gobench mode turns tecfan-bench into the repo's performance gate:
// it runs the Go micro-benchmarks (not the paper experiments) -runs times,
// reduces to per-metric medians, and either emits a BENCH_*.json summary
// or compares against a committed baseline. scripts/bench_gate.sh and the
// CI bench-gate job are thin wrappers over this.

import (
	"bytes"
	"fmt"
	"os"
	"os/exec"

	"tecfan/internal/benchgate"
)

// gatePackages is the default benchmark surface: the packages holding the
// hot-path kernels DESIGN.md §18 polices. The root package carries the
// controller, solver, and estimator benchmarks; internal/sim the per-step
// kernel; internal/linalg and internal/thermal the substrate.
var gatePackages = []string{".", "./internal/sim", "./internal/linalg", "./internal/thermal"}

// gateBenchRe is the default -bench selection: the hot-path kernels and
// their substrate, by exact name. The root package's table/figure
// benchmarks (BenchmarkTable1, BenchmarkFig4, ...) regenerate whole paper
// experiments per iteration and are deliberately excluded — they document
// end-to-end cost, not per-period hot-path cost, and would make the gate
// minutes-slow and noisy.
const gateBenchRe = "^Benchmark(Step|SteadySolve|TransientStep|Systolic|TECfanControl|BandEstimatorEval|" +
	"CholeskyFactor305|CholeskySolve305|LUFactor305|CGGridScale|BandMulVec18|BandLUSolve18|ParMulVec4096|" +
	"NetworkAssembly16|SteadyWithTEC16|GridSteady16)$"

type gateFlags struct {
	gate      bool
	baseline  string
	emit      string
	runs      int
	benchtime string
	benchRe   string
	nsTol     float64
}

// runGoBench executes the gate mode and returns the process exit code.
func runGoBench(f gateFlags, pkgs []string) int {
	if len(pkgs) == 0 {
		pkgs = gatePackages
	}
	if f.runs < 1 {
		fatal(fmt.Errorf("-runs must be >= 1, got %d", f.runs))
	}
	var base *benchgate.Baseline
	if f.gate {
		if f.baseline == "" {
			fatal(fmt.Errorf("-gate requires -baseline"))
		}
		var err error
		if base, err = benchgate.Load(f.baseline); err != nil {
			fatal(err)
		}
	}

	runs := make([]map[string]benchgate.Metrics, 0, f.runs)
	for i := 0; i < f.runs; i++ {
		fmt.Fprintf(os.Stderr, "tecfan-bench: gobench run %d/%d\n", i+1, f.runs)
		out, err := goBenchOnce(f, pkgs)
		if err != nil {
			fatal(err)
		}
		m, err := benchgate.ParseGoBench(bytes.NewReader(out))
		if err != nil {
			fatal(err)
		}
		if len(m) == 0 {
			fatal(fmt.Errorf("no benchmarks matched -bench %q in %v", f.benchRe, pkgs))
		}
		runs = append(runs, m)
	}
	cur := &benchgate.Baseline{
		Schema:     benchgate.Schema,
		CPU:        benchgate.CPUFingerprint(),
		Benchmarks: benchgate.Median(runs),
	}

	if f.emit != "" {
		w, err := os.Create(f.emit)
		if err != nil {
			fatal(err)
		}
		if err := cur.Save(w); err != nil {
			fatal(err)
		}
		if err := w.Close(); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "tecfan-bench: wrote %d benchmarks to %s\n", len(cur.Benchmarks), f.emit)
	} else if !f.gate {
		if err := cur.Save(os.Stdout); err != nil {
			fatal(err)
		}
	}

	if !f.gate {
		return 0
	}
	regs := benchgate.Compare(base, cur, f.nsTol)
	if len(regs) == 0 {
		fmt.Fprintf(os.Stderr, "tecfan-bench: gate clean: %d benchmarks vs %s (cpu match: %v)\n",
			len(base.Benchmarks), f.baseline, base.CPU == cur.CPU)
		return 0
	}
	for _, r := range regs {
		fmt.Fprintln(os.Stderr, "tecfan-bench: REGRESSION", r.String())
	}
	fmt.Fprintf(os.Stderr, "tecfan-bench: %d regression(s) vs %s\n", len(regs), f.baseline)
	return 1
}

// goBenchOnce runs one `go test -bench` sweep over the packages and
// returns its combined output.
func goBenchOnce(f gateFlags, pkgs []string) ([]byte, error) {
	args := []string{"test", "-run", "^$", "-bench", f.benchRe,
		"-benchmem", "-benchtime", f.benchtime, "-count", "1"}
	args = append(args, pkgs...)
	cmd := exec.Command("go", args...)
	cmd.Env = append(os.Environ(), "GOWORK=off")
	var out bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = os.Stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go test -bench (run output above): %w", err)
	}
	return out.Bytes(), nil
}
