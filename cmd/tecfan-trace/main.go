// Command tecfan-trace dumps the per-control-period trace of one run as CSV
// (time, peak temperature, chip power, fan level, TECs on, mean DVFS) — the
// raw series behind the Fig. 4 style time plots.
//
//	tecfan-trace -bench lu -threads 16 -policy Fan+TEC -fan 2 > trace.csv
package main

import (
	"context"
	"encoding/csv"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"syscall"

	"tecfan"
	"tecfan/internal/cmdutil"
	"tecfan/internal/numfault"
)

func main() {
	bench := flag.String("bench", "cholesky", "benchmark name")
	threads := flag.Int("threads", 16, "thread count (16 or 4)")
	policy := flag.String("policy", "TECfan", "policy name")
	fanLevel := flag.Int("fan", 1, "fan speed level, 1 = fastest")
	scale := flag.Float64("scale", 1.0, "instruction-budget scale")
	nfSchedule := flag.String("numfault-schedule", "", "JSON numerical-fault schedule file (numeric chaos)")
	nfSeed := flag.Int64("numfault-seed", 0, "override the numfault schedule seed")
	healthOut := flag.String("numeric-health", "", "write the run's NumericHealth JSON to this file")
	flag.Parse()

	opts := []tecfan.Option{tecfan.WithScale(*scale)}
	if *nfSchedule != "" {
		sched, err := numfault.ParseScheduleFile(*nfSchedule)
		if err != nil {
			fatal(err)
		}
		if *nfSeed != 0 {
			sched.Seed = *nfSeed
		}
		opts = append(opts, tecfan.WithNumFaults(sched))
	}
	sys, err := tecfan.New(opts...)
	if err != nil {
		fatal(err)
	}
	if err := cmdutil.CheckBench(sys, *bench, *threads); err != nil {
		fatal(err)
	}
	if err := cmdutil.CheckPolicy(sys, *policy); err != nil {
		fatal(err)
	}
	if *fanLevel < 1 || *fanLevel > sys.FanLevels() {
		fatal(fmt.Errorf("fan level %d out of range (valid: 1..%d)", *fanLevel, sys.FanLevels()))
	}
	// Ctrl-C / SIGTERM cancels at the next control boundary; the samples
	// recorded up to that point are still flushed, so an interrupted trace
	// remains plottable.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	trace, health, runErr := sys.TraceWithHealthContext(ctx, *bench, *threads, *policy, *fanLevel-1)
	if *healthOut != "" && health != nil {
		data, err := json.MarshalIndent(health, "", "  ")
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*healthOut, append(data, '\n'), 0o644); err != nil {
			fatal(err)
		}
	}
	if runErr != nil && len(trace) == 0 {
		fatal(runErr)
	}
	w := csv.NewWriter(os.Stdout)
	if err := w.Write([]string{"time_s", "peak_temp_c", "chip_power_w", "fan_level", "tecs_on", "mean_dvfs"}); err != nil {
		fatal(err)
	}
	for _, p := range trace {
		rec := []string{
			strconv.FormatFloat(p.Time, 'g', 8, 64),
			strconv.FormatFloat(p.PeakTemp, 'f', 3, 64),
			strconv.FormatFloat(p.ChipPower, 'f', 3, 64),
			strconv.Itoa(p.FanLevel + 1),
			strconv.Itoa(p.TECsOn),
			strconv.FormatFloat(p.MeanDVFS, 'f', 3, 64),
		}
		if err := w.Write(rec); err != nil {
			fatal(err)
		}
	}
	w.Flush()
	if runErr != nil {
		fatal(fmt.Errorf("interrupted after %d samples: %w", len(trace), runErr))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tecfan-trace:", err)
	os.Exit(1)
}
