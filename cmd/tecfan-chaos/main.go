// Command tecfan-chaos sweeps fault scenarios against thermal-management
// policies and reports how gracefully each degrades: violation ratio and EPI
// versus the fault-free run, fail-safe entries, detection latency, and
// recovery time. Any panic or unbounded run fails the sweep.
//
// Usage:
//
//	tecfan-chaos [-bench cholesky] [-threads 16] [-scale 1]
//	             [-policies TECfan,TECfan-FT] [-scenarios all]
//	             [-seed 1] [-format md|csv] [-o report.md]
//	tecfan-chaos -list
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"tecfan"
	"tecfan/internal/cmdutil"
)

func main() {
	bench := flag.String("bench", "cholesky", "benchmark name")
	threads := flag.Int("threads", 16, "thread count (16 or 4, per Table I)")
	scale := flag.Float64("scale", 1.0, "instruction-budget scale (1 = paper length)")
	policies := flag.String("policies", "TECfan,TECfan-FT", "comma-separated policies to sweep")
	scenarios := flag.String("scenarios", "all", "comma-separated fault scenarios, or \"all\"")
	seed := flag.Int64("seed", 1, "fault-injection seed")
	format := flag.String("format", "md", "output format: md or csv")
	out := flag.String("o", "", "output file (default stdout)")
	list := flag.Bool("list", false, "list benchmarks, policies, and scenarios, then exit")
	flag.Parse()

	sys, err := tecfan.New(tecfan.WithScale(*scale))
	if err != nil {
		fatal(err)
	}
	if *list {
		cmdutil.PrintLists(sys)
		fmt.Println("scenarios:")
		for _, s := range tecfan.Scenarios() {
			fmt.Printf("  %s\n", s)
		}
		return
	}
	if err := cmdutil.CheckBench(sys, *bench, *threads); err != nil {
		fatal(err)
	}
	pol := splitCSV(*policies)
	for _, p := range pol {
		if err := cmdutil.CheckPolicy(sys, p); err != nil {
			fatal(err)
		}
	}
	var scen []string
	if *scenarios != "all" {
		scen = splitCSV(*scenarios)
	}
	if *format != "md" && *format != "csv" {
		fatal(fmt.Errorf("unknown format %q (valid: md, csv)", *format))
	}

	// Ctrl-C / SIGTERM stops the sweep between rows (or mid-run at a control
	// boundary); the rows finished so far are still reported.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	res, runErr := sys.ChaosContext(ctx, tecfan.ChaosOptions{
		Bench: *bench, Threads: *threads,
		Policies: pol, Scenarios: scen, Seed: *seed,
	})
	if runErr != nil && (res == nil || len(res.Rows) == 0) {
		fatal(runErr)
	}

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	if *format == "csv" {
		if err := tecfan.WriteChaosCSV(w, res); err != nil {
			fatal(err)
		}
	} else {
		tecfan.WriteChaos(w, res)
	}

	if runErr != nil {
		fatal(fmt.Errorf("interrupted after %d rows: %w", len(res.Rows), runErr))
	}
	if n := res.Panics(); n > 0 {
		fatal(fmt.Errorf("%d runs panicked", n))
	}
	// The graceful-degradation bar applies to the fault-tolerant controller;
	// baselines are expected to degrade badly — that contrast is the point.
	for _, row := range res.Rows {
		if row.Policy == "TECfan-FT" && !row.Accepted {
			fatal(fmt.Errorf("TECfan-FT failed acceptance under %s: %s", row.Scenario, row.Reason))
		}
	}
}

func splitCSV(s string) []string {
	var out []string
	for _, f := range strings.Split(s, ",") {
		if f = strings.TrimSpace(f); f != "" {
			out = append(out, f)
		}
	}
	return out
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tecfan-chaos:", err)
	os.Exit(1)
}
