// Command tecfan-crucible is the unified chaos-campaign orchestrator: it runs
// seeded episodes of a composite fault campaign — network chaos, disk faults,
// numerical corruption, and process-level kill/stop/restart on one shared
// timeline — against the real daemon(+pool) stack, records the client-observed
// history, and judges it with the end-to-end oracle catalog (exactly-once,
// byte-identical-or-declared-fail-safe results, sticky fail-safe, no
// non-finite token, readiness consistency).
//
// Usage:
//
//	tecfan-crucible -spec campaign.json -episodes 5 -bin-dir ./bin -out ./artifacts
//	tecfan-crucible -corpus testdata/crucible -bin-dir ./bin
//
// With -bin-dir, episodes spawn real tecfand / tecfan-worker / tecfan-netchaos
// processes (required for proc actions and disk crash points); without it,
// episodes run in-process, which is faster but covers only the in-process
// feature subset. The fault-free reference every episode is byte-compared
// against always runs in-process: result bytes are a pure function of the job
// spec, which is the determinism contract the whole repo is built on.
//
// On the first oracle violation the crucible (unless -shrink=false)
// delta-debugs the composite schedule down to a minimal still-failing repro
// and writes it to -out as a corpus entry ready to commit under
// testdata/crucible, where CI replays it forever.
//
// Exit status: 0 all episodes oracle-clean, 1 oracle violation, 2 usage or
// infrastructure error.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	"tecfan/internal/campaign"
	"tecfan/internal/client"
	"tecfan/internal/daemon"
	"tecfan/internal/pool"
)

func main() {
	specPath := flag.String("spec", "", "campaign spec file to run")
	corpusDir := flag.String("corpus", "", "replay every corpus entry under this directory instead of running -spec")
	episodes := flag.Int("episodes", 5, "seeded episodes to run (with -spec)")
	seed := flag.Int64("seed", 0, "override the campaign master seed (0 = spec's)")
	binDir := flag.String("bin-dir", "", "directory holding tecfand/tecfan-worker/tecfan-netchaos binaries; empty runs episodes in-process")
	outDir := flag.String("out", "", "artifact directory for episode logs, histories, and minimized repros (empty = temp, removed when green)")
	shrink := flag.Bool("shrink", true, "on an oracle violation, minimize the schedule to a still-failing repro")
	epTimeout := flag.Duration("episode-timeout", 4*time.Minute, "wall-clock bound per episode (a spec's own timeout overrides it)")
	verbose := flag.Bool("v", false, "log every daemon/client operational line, not just episode progress")
	flag.Parse()

	log.SetFlags(0)
	log.SetPrefix("crucible: ")
	if (*specPath == "") == (*corpusDir == "") {
		fmt.Fprintln(os.Stderr, "crucible: exactly one of -spec or -corpus is required")
		os.Exit(2)
	}
	if *episodes <= 0 {
		fmt.Fprintln(os.Stderr, "crucible: -episodes must be positive")
		os.Exit(2)
	}

	r := &runner{binDir: *binDir, defaultTimeout: *epTimeout, verbose: *verbose}
	temp := *outDir == ""
	if temp {
		dir, err := os.MkdirTemp("", "crucible")
		if err != nil {
			fatal(err)
		}
		r.outDir = dir
	} else {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			fatal(err)
		}
		r.outDir = *outDir
	}

	ctx := context.Background()
	var code int
	if *specPath != "" {
		code = r.runCampaign(ctx, *specPath, *seed, *episodes, *shrink)
	} else {
		code = r.replayCorpus(ctx, *corpusDir)
	}
	if temp && code == 0 {
		os.RemoveAll(r.outDir)
	} else if code != 0 {
		log.Printf("artifacts kept under %s", r.outDir)
	}
	os.Exit(code)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "crucible:", err)
	os.Exit(2)
}

type runner struct {
	binDir         string
	outDir         string
	defaultTimeout time.Duration
	verbose        bool
}

func (r *runner) logf(format string, args ...any) {
	if r.verbose {
		log.Printf(format, args...)
	}
}

func (r *runner) opts() *campaign.RunOptions {
	return &campaign.RunOptions{Logf: r.logf, Poll: 100 * time.Millisecond}
}

// runCampaign runs N seeded episodes of one spec, judging each against the
// fault-free reference; on the first violation it optionally minimizes the
// schedule and writes the repro as a ready-to-commit corpus entry.
func (r *runner) runCampaign(ctx context.Context, specPath string, seed int64, episodes int, shrink bool) int {
	spec, err := campaign.LoadSpec(specPath)
	if err != nil {
		fatal(err)
	}
	if seed != 0 {
		spec.Seed = seed
	}
	log.Printf("campaign %q: %d jobs, %d episodes, seed %d", spec.Name, len(spec.Jobs), episodes, spec.Seed)

	ref, err := r.reference(ctx, spec)
	if err != nil {
		fatal(err)
	}
	for ep := 0; ep < episodes; ep++ {
		dir := filepath.Join(r.outDir, fmt.Sprintf("ep%03d", ep))
		h, err := r.episode(ctx, spec, ep, dir)
		if err != nil {
			r.saveHistory(dir, h)
			fatal(fmt.Errorf("episode %d: %w", ep, err))
		}
		r.saveHistory(dir, h)
		vs := campaign.Evaluate(h, ref)
		if len(vs) == 0 {
			log.Printf("episode %d: oracle-clean (%d calls, %d ready samples)", ep, len(h.Calls), len(h.Ready))
			continue
		}
		for _, v := range vs {
			log.Printf("episode %d: VIOLATION %s", ep, v)
		}
		if shrink {
			r.minimize(ctx, spec, ep, ref, vs[0].Oracle)
		}
		return 1
	}
	log.Printf("PASS: %d episodes oracle-clean", episodes)
	return 0
}

// replayCorpus re-runs every committed repro and demands zero violations —
// the regression memory of every compound-fault bug the crucible ever caught.
func (r *runner) replayCorpus(ctx context.Context, dir string) int {
	entries, err := campaign.LoadCorpus(dir)
	if err != nil {
		fatal(err)
	}
	log.Printf("corpus %s: %d entries", dir, len(entries))
	code := 0
	for _, e := range entries {
		ref, err := r.reference(ctx, e.Spec)
		if err != nil {
			fatal(fmt.Errorf("%s: %w", e.Path, err))
		}
		for ep := 0; ep < e.Episodes; ep++ {
			adir := filepath.Join(r.outDir, fmt.Sprintf("%s-ep%03d", strings.TrimSuffix(filepath.Base(e.Path), ".json"), ep))
			h, err := r.episode(ctx, e.Spec, ep, adir)
			if err != nil {
				r.saveHistory(adir, h)
				fatal(fmt.Errorf("%s episode %d: %w", e.Path, ep, err))
			}
			r.saveHistory(adir, h)
			if vs := campaign.Evaluate(h, ref); len(vs) > 0 {
				for _, v := range vs {
					log.Printf("%s episode %d: VIOLATION %s", e.Path, ep, v)
				}
				code = 1
				continue
			}
			log.Printf("%s episode %d: oracle-clean", e.Path, ep)
		}
	}
	if code == 0 {
		log.Printf("PASS: corpus replay oracle-clean")
	}
	return code
}

// reference computes the fault-free baseline in-process (byte-identity across
// execution substrates is the determinism contract the repo's tier-1 tests
// and the empty-lattice meta-test enforce).
func (r *runner) reference(ctx context.Context, spec campaign.Spec) (map[string][]byte, error) {
	rctx, cancel := context.WithTimeout(ctx, r.timeout(spec))
	defer cancel()
	return campaign.Reference(rctx, spec, 0, r.opts())
}

func (r *runner) timeout(spec campaign.Spec) time.Duration {
	if spec.Timeout > 0 {
		return spec.Timeout.Std()
	}
	return r.defaultTimeout
}

// episode runs one seeded episode: against real processes when -bin-dir is
// set, in-process otherwise. Both paths resolve the episode's derived seeds
// identically (Spec.ForEpisode).
func (r *runner) episode(ctx context.Context, spec campaign.Spec, ep int, dir string) (*campaign.History, error) {
	ectx, cancel := context.WithTimeout(ctx, r.timeout(spec))
	defer cancel()
	if r.binDir == "" {
		return campaign.RunEpisode(ectx, spec, ep, r.opts())
	}
	return r.execEpisode(ectx, spec, ep, dir)
}

// minimize pins the failing episode's derived seeds into the spec, so that
// the repro replays the exact failing draw sequence as its episode 0, then
// delta-debugs it and writes the result as a ready-to-commit corpus entry.
func (r *runner) minimize(ctx context.Context, spec campaign.Spec, ep int, ref map[string][]byte, oracle string) {
	pinned := spec.ForEpisode(ep)
	log.Printf("minimizing the failing schedule (episode %d pinned)...", ep)
	cand := 0
	pred := func(pctx context.Context, s campaign.Spec) (bool, error) {
		if err := pctx.Err(); err != nil {
			return false, err
		}
		cand++
		h, err := r.episode(pctx, s, 0, filepath.Join(r.outDir, "shrink", fmt.Sprintf("cand%03d", cand)))
		if err != nil {
			// A candidate that cannot even finish an episode does not
			// reproduce the oracle violation; keep the atoms it removed.
			r.logf("shrink candidate %d errored (%v): treated as non-failing", cand, err)
			return false, nil
		}
		return len(campaign.Evaluate(h, ref)) > 0, nil
	}
	min, stats, err := campaign.Minimize(ctx, pinned, pred)
	if err != nil {
		log.Printf("minimization aborted: %v (committing the un-minimized repro instead)", err)
		min = pinned
	}
	entry := campaign.Entry{
		Note: fmt.Sprintf("minimized from campaign %q episode %d (%d->%d atoms, %d runs, %d halvings)",
			spec.Name, ep, stats.AtomsBefore, stats.AtomsAfter, stats.Runs, stats.Halvings),
		Oracle:   oracle,
		Episodes: 1,
		Spec:     min,
	}
	path := filepath.Join(r.outDir, "minimized.json")
	if err := campaign.WriteEntry(path, entry); err != nil {
		log.Printf("writing minimized repro: %v", err)
		return
	}
	log.Printf("minimized repro written to %s — review and commit it under testdata/crucible/", path)
}

func (r *runner) saveHistory(dir string, h *campaign.History) {
	if h == nil {
		return
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return
	}
	data, err := json.MarshalIndent(h, "", "  ")
	if err != nil {
		return
	}
	_ = os.WriteFile(filepath.Join(dir, "history.json"), append(data, '\n'), 0o644)
}

// ---------------------------------------------------------------------------
// Exec episode: real processes, real signals.

// execEpisode runs one episode against spawned binaries: tecfand on a free
// port (behind tecfan-netchaos when the spec has network faults),
// tecfan-worker processes in pool mode, and a timeline goroutine delivering
// the spec's proc actions as real signals.
func (r *runner) execEpisode(ctx context.Context, spec campaign.Spec, ep int, dir string) (*campaign.History, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	eff := spec.ForEpisode(ep)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	s := &execStack{r: r, eff: eff, dir: dir, rec: campaign.NewRecorder(eff.Name, ep)}
	defer s.teardown()
	if err := s.start(ctx); err != nil {
		return s.rec.History(), err
	}

	// The timeline runs concurrently with the client workload, exactly like
	// production chaos would.
	tdone := make(chan struct{})
	tctx, tcancel := context.WithCancel(ctx)
	defer tcancel()
	go func() {
		defer close(tdone)
		s.runTimeline(tctx)
	}()

	cl, err := client.New(client.Config{
		BaseURL: s.clientURL, Seed: 1, Logf: r.logf,
		MaxRetries: 12, Observer: s.rec.Observer(),
	})
	if err != nil {
		return s.rec.History(), err
	}
	// Inspection goes direct to the daemon: the result bytes being judged are
	// its durable state, not a chaos-mangled copy.
	direct, err := client.New(client.Config{BaseURL: s.daemonURL, Seed: 2, Logf: r.logf, MaxRetries: 12})
	if err != nil {
		return s.rec.History(), err
	}

	s.sampleReady()
	for _, j := range eff.Jobs {
		key := campaign.IdempotencyKey(eff.Name, ep, j.ID)
		for replay := 0; replay < 2; replay++ {
			id, dedup, err := cl.SubmitWithKey(ctx, key, j)
			s.rec.Submission(j.ID, key, id, dedup, err)
		}
		s.sampleReady()
	}
	for _, j := range eff.Jobs {
		v, err := cl.Wait(ctx, j.ID, 100*time.Millisecond)
		if err != nil {
			return s.rec.History(), fmt.Errorf("waiting for job %s: %w", j.ID, err)
		}
		var result []byte
		if v.State == daemon.StateDone {
			result, err = direct.Result(ctx, j.ID)
			if err != nil {
				return s.rec.History(), fmt.Errorf("fetching result of done job %s: %w", j.ID, err)
			}
		}
		s.rec.Result(v, result)
		s.sampleReady()
	}
	// Let every scheduled proc action land before the final listing, so the
	// history the oracles judge covers the whole timeline.
	select {
	case <-tdone:
	case <-ctx.Done():
		return s.rec.History(), ctx.Err()
	}
	views, err := direct.Jobs(ctx)
	if err != nil {
		return s.rec.History(), fmt.Errorf("final jobs listing: %w", err)
	}
	s.rec.Jobs(views)
	s.collectLeases()
	s.sampleReady()
	return s.rec.History(), nil
}

// proc is one spawned child with its reusable log sink (restarts append).
type proc struct {
	cmd *exec.Cmd
	log *os.File
}

type execStack struct {
	r   *runner
	eff campaign.Spec
	dir string
	rec *campaign.Recorder

	mu      sync.Mutex
	daemon  *proc
	workers []*proc
	proxy   *proc

	daemonAddr string // host:port the daemon listens on (stable across restarts)
	daemonURL  string
	clientURL  string // daemonURL, or the chaos proxy when the spec has one
	stateDir   string
	diskFile   string
	numFile    string
	clockFile  string
}

// start brings up the whole stack: schedule files, daemon, optional chaos
// proxy, optional workers.
func (s *execStack) start(ctx context.Context) error {
	s.stateDir = filepath.Join(s.dir, "state")
	var err error
	if s.eff.Disk != nil {
		if s.diskFile, err = s.writeSchedule("disk.json", s.eff.Disk); err != nil {
			return err
		}
	}
	if s.eff.Num != nil {
		if s.numFile, err = s.writeSchedule("num.json", s.eff.Num); err != nil {
			return err
		}
	}
	if s.eff.Clock != nil {
		if s.clockFile, err = s.writeSchedule("clock.json", s.eff.Clock); err != nil {
			return err
		}
	}
	port, err := freePort()
	if err != nil {
		return err
	}
	s.daemonAddr = "127.0.0.1:" + strconv.Itoa(port)
	s.daemonURL = "http://" + s.daemonAddr
	s.clientURL = s.daemonURL
	if err := s.startDaemon(ctx); err != nil {
		return err
	}

	if s.eff.Net != nil {
		netFile, err := s.writeSchedule("net.json", s.eff.Net)
		if err != nil {
			return err
		}
		pport, err := freePort()
		if err != nil {
			return err
		}
		paddr := "127.0.0.1:" + strconv.Itoa(pport)
		s.proxy, err = s.spawn("tecfan-netchaos", "netchaos.log",
			"-listen", paddr, "-target", s.daemonAddr,
			"-schedule", netFile, "-seed", strconv.FormatInt(s.eff.NetSeed, 10))
		if err != nil {
			return err
		}
		s.clientURL = "http://" + paddr
		waitPort(ctx, paddr)
	}

	if s.eff.Pool != nil {
		for i := 0; i < s.eff.Pool.Workers; i++ {
			w, err := s.startWorker(i)
			if err != nil {
				return err
			}
			s.workers = append(s.workers, w)
		}
	}
	return nil
}

func (s *execStack) writeSchedule(name string, v any) (string, error) {
	data, err := json.Marshal(v)
	if err != nil {
		return "", err
	}
	path := filepath.Join(s.dir, name)
	return path, os.WriteFile(path, data, 0o644)
}

// startDaemon spawns tecfand on the stack's stable address and state dir and
// waits for liveness (not readiness: a campaign's disk schedule may hold
// /readyz at 503 from the first operation, and that is a finding for the
// oracles, not a startup failure).
func (s *execStack) startDaemon(ctx context.Context) error {
	args := []string{
		"-addr", s.daemonAddr, "-state-dir", s.stateDir,
		"-checkpoint-every", "1", "-scrub-interval", "2s",
		"-storage-probe-interval", "500ms",
	}
	if s.eff.Pool != nil {
		args = append(args, "-pool")
		if s.eff.Pool.Chunk > 0 {
			args = append(args, "-pool-chunk", strconv.Itoa(s.eff.Pool.Chunk))
		}
		if s.eff.Pool.LeaseTTL > 0 {
			args = append(args, "-pool-lease-ttl", s.eff.Pool.LeaseTTL.Std().String())
		}
	}
	if s.diskFile != "" {
		args = append(args, "-diskfault-schedule", s.diskFile)
	}
	if s.numFile != "" {
		args = append(args, "-numfault-schedule", s.numFile)
	}
	if s.clockFile != "" {
		args = append(args, "-clockfault-schedule", s.clockFile)
	}
	p, err := s.spawn("tecfand", "daemon.log", args...)
	if err != nil {
		return err
	}
	s.mu.Lock()
	s.daemon = p
	s.mu.Unlock()
	if !waitHTTP(ctx, s.daemonURL+"/livez", 15*time.Second) {
		return fmt.Errorf("tecfand on %s never became live (see %s)", s.daemonAddr, filepath.Join(s.dir, "daemon.log"))
	}
	return nil
}

func (s *execStack) startWorker(i int) (*proc, error) {
	args := []string{
		"-coordinator", s.daemonURL,
		"-name", fmt.Sprintf("crucible-w%d", i),
		"-poll", "100ms",
	}
	if s.numFile != "" {
		args = append(args, "-numfault-schedule", s.numFile)
	}
	if s.clockFile != "" {
		// One shared schedule file; each worker skews independently because
		// its -name is its clockfault proc identity.
		args = append(args, "-clockfault-schedule", s.clockFile)
	}
	return s.spawn("tecfan-worker", fmt.Sprintf("worker%d.log", i), args...)
}

// spawn starts one child with output appended to dir/logName (restarts of a
// role share the sink, so the log reads as one continuous story).
func (s *execStack) spawn(bin, logName string, args ...string) (*proc, error) {
	f, err := os.OpenFile(filepath.Join(s.dir, logName), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	cmd := exec.Command(filepath.Join(s.r.binDir, bin), args...)
	cmd.Stdout, cmd.Stderr = f, f
	if err := cmd.Start(); err != nil {
		f.Close()
		return nil, fmt.Errorf("starting %s: %w", bin, err)
	}
	return &proc{cmd: cmd, log: f}, nil
}

// runTimeline delivers the spec's proc actions at their offsets, in order.
func (s *execStack) runTimeline(ctx context.Context) {
	start := time.Now()
	for _, p := range campaign.TimelineOrder(s.eff.Procs) {
		if wait := time.Until(start.Add(p.At.Std())); wait > 0 {
			select {
			case <-ctx.Done():
				return
			case <-time.After(wait):
			}
		}
		if ctx.Err() != nil {
			return
		}
		if err := s.apply(ctx, p); err != nil {
			s.r.logf("timeline: %s %s: %v", p.Action, p.Target, err)
			continue
		}
		s.rec.Proc(p.Target, p.Action)
	}
}

// apply delivers one timeline action as a real signal (restart = SIGKILL,
// reap, respawn on the same address and state dir — the crash-recovery path
// end to end).
func (s *execStack) apply(ctx context.Context, a campaign.ProcAction) error {
	target, respawn := s.resolve(a.Target)
	if target == nil {
		return fmt.Errorf("no such process")
	}
	switch a.Action {
	case campaign.ActStop:
		return target.cmd.Process.Signal(syscall.SIGSTOP)
	case campaign.ActCont:
		return target.cmd.Process.Signal(syscall.SIGCONT)
	case campaign.ActKill:
		reap(target)
		return nil
	case campaign.ActRestart:
		reap(target)
		return respawn(ctx)
	}
	return fmt.Errorf("unknown action %q", a.Action)
}

// resolve maps a timeline target to its live process handle and its respawn
// closure.
func (s *execStack) resolve(target string) (*proc, func(context.Context) error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if target == campaign.TargetDaemon {
		return s.daemon, s.startDaemon
	}
	var idx int
	if _, err := fmt.Sscanf(target, "worker:%d", &idx); err != nil || idx < 0 || idx >= len(s.workers) {
		return nil, nil
	}
	return s.workers[idx], func(context.Context) error {
		w, err := s.startWorker(idx)
		if err != nil {
			return err
		}
		s.mu.Lock()
		s.workers[idx] = w
		s.mu.Unlock()
		return nil
	}
}

// reap SIGKILLs a child and waits it out of the process table. SIGKILL also
// terminates SIGSTOPped children, so teardown never leaks a frozen process.
func reap(p *proc) {
	_ = p.cmd.Process.Kill()
	_, _ = p.cmd.Process.Wait()
}

func (s *execStack) teardown() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, p := range append([]*proc{s.daemon, s.proxy}, s.workers...) {
		if p == nil {
			continue
		}
		reap(p)
		p.log.Close()
	}
}

// collectLeases fetches the coordinator's lease ledger for the lease-safety
// oracle. Direct to the daemon, after the timeline has fully drained, so the
// ledger covers every grant/expire/complete decision of the episode.
func (s *execStack) collectLeases() {
	if s.eff.Pool == nil {
		return
	}
	hc := &http.Client{Timeout: 2 * time.Second}
	resp, err := hc.Get(s.daemonURL + "/pool/leases")
	if err != nil {
		s.r.logf("lease ledger fetch: %v", err)
		return
	}
	defer resp.Body.Close()
	var events []pool.LeaseEvent
	if err := json.NewDecoder(resp.Body).Decode(&events); err != nil {
		s.r.logf("lease ledger decode: %v", err)
		return
	}
	s.rec.Leases(events)
}

// sampleReady probes GET /readyz directly on the daemon and records what it
// said. Probe transport errors (daemon mid-restart, SIGSTOPped) are skipped:
// the sticky oracle judges only what the daemon actually answered.
func (s *execStack) sampleReady() {
	hc := &http.Client{Timeout: 2 * time.Second}
	resp, err := hc.Get(s.daemonURL + "/readyz")
	if err != nil {
		return
	}
	defer resp.Body.Close()
	var body struct {
		Reasons []string `json:"reasons"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		return
	}
	s.rec.Ready(resp.StatusCode == http.StatusOK, body.Reasons)
}

// freePort grabs an ephemeral port by binding and releasing it. The tiny
// close-to-bind race is acceptable in a drill that owns the machine.
func freePort() (int, error) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return 0, err
	}
	defer l.Close()
	return l.Addr().(*net.TCPAddr).Port, nil
}

// waitHTTP polls url until it answers 2xx or the budget runs out.
func waitHTTP(ctx context.Context, url string, budget time.Duration) bool {
	deadline := time.Now().Add(budget)
	hc := &http.Client{Timeout: 2 * time.Second}
	for time.Now().Before(deadline) {
		if ctx.Err() != nil {
			return false
		}
		resp, err := hc.Get(url)
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode < 300 {
				return true
			}
		}
		time.Sleep(100 * time.Millisecond)
	}
	return false
}

// waitPort waits briefly for a listener to accept; chaos may legitimately eat
// the probe, so failure is not fatal (the client's retries take over).
func waitPort(ctx context.Context, addr string) {
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		if ctx.Err() != nil {
			return
		}
		c, err := net.DialTimeout("tcp", addr, 500*time.Millisecond)
		if err == nil {
			c.Close()
			return
		}
		time.Sleep(50 * time.Millisecond)
	}
}
