// Package worker is the execution side of the tecfand worker pool: a
// process that claims shard leases from a coordinator, executes them with
// exactly the semantics the daemon's in-process path uses, streams progress
// checkpoints back so its own death loses at most one checkpoint interval,
// and renews its lease on a heartbeat loop.
//
// Fencing discipline: every write the worker makes carries the token from
// its grant. When any call answers pool.ErrFenced or pool.ErrShardGone the
// worker abandons the shard immediately — the coordinator has moved it on,
// and anything this worker computes past that point is a zombie's work.
// Checkpoint uploads deliberately run on an independent timeout context
// (not the shard's): a worker resuming from a long stall must still deliver
// its stale-token upload to the coordinator, whose fencing rejection (and
// log line) is the observable proof the zombie was stopped.
package worker

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"tecfan/internal/client"
	"tecfan/internal/clockfault"
	"tecfan/internal/exp"
	"tecfan/internal/fault"
	"tecfan/internal/numfault"
	"tecfan/internal/pool"
	"tecfan/internal/sim"
	"tecfan/internal/workload"
)

// Config tunes a Worker.
type Config struct {
	// Client is the hardened transport to the coordinator. Required.
	Client *client.Client
	// Name identifies this worker in leases and coordinator logs. Required.
	Name string
	// Poll is the idle wait between claim attempts when no work is available
	// (default 500 ms).
	Poll time.Duration
	// UploadTimeout bounds each checkpoint upload / completion attempt
	// independently of the shard context (default 10 s).
	UploadTimeout time.Duration
	// OnClaim, when non-nil, observes every grant before execution starts —
	// the breadcrumb seam tecfan-worker uses.
	OnClaim func(grant *pool.ClaimResponse)
	// Clock is the time seam driving the poll wait, heartbeat cadence, and
	// upload deadlines (default clockfault.OS); tecfan-worker wires a
	// FaultClock here under -clockfault-schedule.
	Clock clockfault.Clock
	// NumFaults arms the numerical-chaos injector for every trace shard this
	// worker executes, mirroring the daemon's -numfault-schedule so pooled
	// jobs run under the same fault lattice as in-process ones. Injection is a
	// pure function of (seed, step, rule), so a shard resumed by another
	// worker with the same schedule replays the identical faults.
	NumFaults *numfault.Schedule
	// Logf receives operational log lines (default: silent).
	Logf func(format string, args ...any)
}

func (c *Config) fillDefaults() error {
	if c.Client == nil {
		return errors.New("worker: Client is required")
	}
	if c.Name == "" {
		return errors.New("worker: Name is required")
	}
	if c.Poll <= 0 {
		c.Poll = 500 * time.Millisecond
	}
	if c.UploadTimeout <= 0 {
		c.UploadTimeout = 10 * time.Second
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	c.Clock = clockfault.Or(c.Clock)
	return nil
}

// Stats are the worker's monotonic counters, safe to read concurrently.
type Stats struct {
	ShardsDone      int64 `json:"shards_done"`
	ShardsAbandoned int64 `json:"shards_abandoned"`
	ShardErrors     int64 `json:"shard_errors"`
	Checkpoints     int64 `json:"checkpoints_uploaded"`
	FencedWrites    int64 `json:"fenced_writes"`
}

// Worker runs the claim → execute → complete loop against one coordinator.
type Worker struct {
	cfg Config

	done      atomic.Int64
	abandoned atomic.Int64
	errors    atomic.Int64
	ckpts     atomic.Int64
	fenced    atomic.Int64
}

// New validates the config and builds a worker.
func New(cfg Config) (*Worker, error) {
	if err := cfg.fillDefaults(); err != nil {
		return nil, err
	}
	return &Worker{cfg: cfg}, nil
}

// Stats snapshots the counters.
func (w *Worker) Stats() Stats {
	return Stats{
		ShardsDone:      w.done.Load(),
		ShardsAbandoned: w.abandoned.Load(),
		ShardErrors:     w.errors.Load(),
		Checkpoints:     w.ckpts.Load(),
		FencedWrites:    w.fenced.Load(),
	}
}

// Run claims and executes shards until ctx is canceled. Claim failures and
// shard errors are absorbed (logged, counted) — a worker outlives coordinator
// restarts and its own bad shards; only cancellation stops it.
func (w *Worker) Run(ctx context.Context) error {
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		grant, err := w.cfg.Client.PoolClaim(ctx, w.cfg.Name)
		if err != nil {
			if ctx.Err() != nil {
				return ctx.Err()
			}
			w.cfg.Logf("worker %s: claim: %v", w.cfg.Name, err)
			w.sleep(ctx, w.cfg.Poll)
			continue
		}
		if grant == nil {
			w.sleep(ctx, w.cfg.Poll)
			continue
		}
		w.cfg.Logf("worker %s: claimed %s/%s token %d (checkpoint: %d bytes)",
			w.cfg.Name, grant.JobID, grant.Shard.ID, grant.Token, len(grant.Checkpoint))
		if w.cfg.OnClaim != nil {
			w.cfg.OnClaim(grant)
		}
		w.runShard(ctx, grant)
	}
}

func (w *Worker) sleep(ctx context.Context, d time.Duration) {
	_ = w.cfg.Clock.Sleep(ctx, d)
}

// lease is the worker's handle on one granted shard: identity for every
// write, plus the cancel lever the heartbeat loop pulls when the coordinator
// fences us.
type lease struct {
	w      *Worker
	grant  *pool.ClaimResponse
	cancel context.CancelFunc
}

// runShard executes one granted shard under a heartbeat loop. The shard
// context is canceled the moment a heartbeat learns the lease is gone, which
// the exp sweeps observe at their next row boundary.
func (w *Worker) runShard(ctx context.Context, grant *pool.ClaimResponse) {
	sctx, cancel := context.WithCancel(ctx)
	defer cancel()
	l := &lease{w: w, grant: grant, cancel: cancel}

	hbDone := make(chan struct{})
	go func() {
		defer close(hbDone)
		l.heartbeatLoop(sctx)
	}()
	defer func() { cancel(); <-hbDone }()

	result, err := l.execute(sctx)
	switch {
	case err == nil:
		if cerr := l.complete(result); cerr != nil {
			w.abandon(grant, "completing", cerr)
			return
		}
		w.done.Add(1)
		w.cfg.Logf("worker %s: completed %s/%s", w.cfg.Name, grant.JobID, grant.Shard.ID)
	case isFenced(err) || sctx.Err() != nil:
		w.abandon(grant, "executing", err)
	default:
		// A genuine shard failure: abandon without completing; the lease
		// expires and the coordinator reassigns (possibly back to us).
		w.errors.Add(1)
		w.cfg.Logf("worker %s: shard %s/%s failed: %v", w.cfg.Name, grant.JobID, grant.Shard.ID, err)
	}
}

func (w *Worker) abandon(grant *pool.ClaimResponse, stage string, err error) {
	w.abandoned.Add(1)
	w.cfg.Logf("worker %s: abandoning %s/%s while %s: %v",
		w.cfg.Name, grant.JobID, grant.Shard.ID, stage, err)
}

func isFenced(err error) bool {
	return errors.Is(err, pool.ErrFenced) || errors.Is(err, pool.ErrShardGone)
}

// heartbeatLoop renews the lease at a third of its TTL. A fencing rejection
// cancels the shard context; transient transport errors are left to the
// client's own retries and simply tried again next tick — the lease TTL is
// the real deadline.
func (l *lease) heartbeatLoop(ctx context.Context) {
	interval := time.Duration(l.grant.LeaseMS) * time.Millisecond / 3
	if interval <= 0 {
		interval = time.Second
	}
	t := l.w.cfg.Clock.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C():
		}
		_, err := l.w.cfg.Client.PoolHeartbeat(ctx, &pool.HeartbeatRequest{
			Worker: l.w.cfg.Name, JobID: l.grant.JobID,
			ShardID: l.grant.Shard.ID, Token: l.grant.Token,
		})
		if isFenced(err) {
			l.w.fenced.Add(1)
			l.w.cfg.Logf("worker %s: heartbeat fenced on %s/%s: %v",
				l.w.cfg.Name, l.grant.JobID, l.grant.Shard.ID, err)
			l.cancel()
			return
		}
		if err != nil && ctx.Err() == nil {
			l.w.cfg.Logf("worker %s: heartbeat %s/%s: %v", l.w.cfg.Name, l.grant.JobID, l.grant.Shard.ID, err)
		}
	}
}

// upload ships a progress checkpoint under its own timeout, detached from
// the shard context on purpose (see the package comment). A fencing
// rejection cancels the shard.
func (l *lease) upload(v any) {
	data, err := pool.EncodePayload(v)
	if err != nil {
		l.w.cfg.Logf("worker %s: encoding checkpoint for %s/%s: %v",
			l.w.cfg.Name, l.grant.JobID, l.grant.Shard.ID, err)
		return
	}
	uctx, ucancel := clockfault.WithTimeout(context.Background(), l.w.cfg.Clock, l.w.cfg.UploadTimeout)
	defer ucancel()
	err = l.w.cfg.Client.PoolCheckpoint(uctx, &pool.CheckpointUpload{
		Worker: l.w.cfg.Name, JobID: l.grant.JobID,
		ShardID: l.grant.Shard.ID, Token: l.grant.Token, Data: data,
	})
	switch {
	case isFenced(err):
		l.w.fenced.Add(1)
		l.w.cfg.Logf("worker %s: checkpoint upload fenced on %s/%s: %v",
			l.w.cfg.Name, l.grant.JobID, l.grant.Shard.ID, err)
		l.cancel()
	case err != nil:
		// Non-fatal: the next checkpoint supersedes this one, and the lease
		// heartbeat is what keeps the shard ours.
		l.w.cfg.Logf("worker %s: checkpoint upload %s/%s: %v",
			l.w.cfg.Name, l.grant.JobID, l.grant.Shard.ID, err)
	default:
		l.w.ckpts.Add(1)
	}
}

// complete reports the shard's result, also on an independent timeout —
// completion is idempotent under our token, so the client may retry freely.
func (l *lease) complete(result any) error {
	data, err := pool.EncodePayload(result)
	if err != nil {
		return fmt.Errorf("worker: encoding result: %w", err)
	}
	cctx, ccancel := clockfault.WithTimeout(context.Background(), l.w.cfg.Clock, l.w.cfg.UploadTimeout)
	defer ccancel()
	err = l.w.cfg.Client.PoolComplete(cctx, &pool.CompleteRequest{
		Worker: l.w.cfg.Name, JobID: l.grant.JobID,
		ShardID: l.grant.Shard.ID, Token: l.grant.Token, Result: data,
	})
	if isFenced(err) {
		l.w.fenced.Add(1)
	}
	return err
}

// execute dispatches on the shard kind. Each kind reproduces the daemon's
// in-process semantics exactly — same Env setup, same resume seams — which
// is what makes the merged pooled result byte-identical to a single-process
// run.
func (l *lease) execute(ctx context.Context) (any, error) {
	switch l.grant.Shard.Kind {
	case pool.KindTrace:
		return l.runTrace(ctx)
	case pool.KindChaos:
		return l.runChaos(ctx)
	case pool.KindTable1:
		return l.runTable1(ctx)
	case pool.KindFig4:
		return l.runFig4(ctx)
	default:
		return nil, fmt.Errorf("worker: unknown shard kind %q", l.grant.Shard.Kind)
	}
}

// env builds the experiment environment the shard spec describes.
func (l *lease) env() *exp.Env {
	e := exp.NewEnv()
	if l.grant.Shard.Scale > 0 {
		e.Scale = l.grant.Shard.Scale
	}
	return e
}

func (l *lease) runChaos(ctx context.Context) (any, error) {
	sh := l.grant.Shard
	var ckpt pool.ChaosCheckpoint
	if len(l.grant.Checkpoint) > 0 {
		if err := pool.DecodePayload(l.grant.Checkpoint, &ckpt); err != nil {
			return nil, err
		}
	}
	rows := append([]exp.ChaosRow(nil), ckpt.Rows...)
	res, err := l.env().ChaosContext(ctx, exp.ChaosOptions{
		Bench: sh.Bench, Threads: sh.Threads,
		Policies: []string{sh.Policy}, Scenarios: sh.Scenarios, Seed: sh.Seed,
		Done: ckpt.Rows,
		OnRow: func(row exp.ChaosRow) {
			rows = upsertChaosRow(rows, row)
			l.upload(pool.ChaosCheckpoint{Rows: rows})
		},
	})
	if err != nil {
		return nil, err
	}
	return pool.ChaosShardResult{Threshold: res.Threshold, Rows: res.Rows}, nil
}

func (l *lease) runTable1(ctx context.Context) (any, error) {
	var ckpt pool.Table1Checkpoint
	if len(l.grant.Checkpoint) > 0 {
		if err := pool.DecodePayload(l.grant.Checkpoint, &ckpt); err != nil {
			return nil, err
		}
	}
	rows := append([]exp.Table1Row(nil), ckpt.Rows...)
	all, err := l.env().Table1Opt(ctx, exp.Table1Options{
		Indices: l.grant.Shard.Indices,
		Done:    ckpt.Rows,
		OnRow: func(row exp.Table1Row) {
			rows = upsertT1Row(rows, row)
			l.upload(pool.Table1Checkpoint{Rows: rows})
		},
	})
	if err != nil {
		return nil, err
	}
	return pool.Table1ShardResult{Rows: all}, nil
}

func (l *lease) runFig4(ctx context.Context) (any, error) {
	var ckpt pool.Fig4Checkpoint
	if len(l.grant.Checkpoint) > 0 {
		if err := pool.DecodePayload(l.grant.Checkpoint, &ckpt); err != nil {
			return nil, err
		}
	}
	cases := append([]exp.Fig4Case(nil), ckpt.Cases...)
	all, err := l.env().Fig4Opt(ctx, exp.Fig4Options{
		Indices: l.grant.Shard.Indices,
		Done:    ckpt.Cases,
		OnRow: func(c exp.Fig4Case) {
			cases = upsertF4Case(cases, c)
			l.upload(pool.Fig4Checkpoint{Cases: cases})
		},
	})
	if err != nil {
		return nil, err
	}
	return pool.Fig4ShardResult{Cases: all}, nil
}

// runTrace mirrors the daemon's runTrace: derive (or restore) the threshold,
// pin it in the first checkpoint, then run — or resume — the simulation with
// snapshot checkpoints uploaded at the shard's cadence.
func (l *lease) runTrace(ctx context.Context) (any, error) {
	sh := l.grant.Shard
	env := l.env()
	env.NumFaults = l.w.cfg.NumFaults
	if sh.Scenario != "" {
		sc, err := fault.ByName(sh.Scenario)
		if err != nil {
			return nil, err
		}
		env.Faults = &sc
		env.FaultSeed = sh.Seed
	}
	b, err := workload.ByName(sh.Bench, sh.Threads, env.Leak)
	if err != nil {
		return nil, err
	}
	sb := env.Scaled(b)

	var ckpt pool.TraceCheckpoint
	if len(l.grant.Checkpoint) > 0 {
		if err := pool.DecodePayload(l.grant.Checkpoint, &ckpt); err != nil {
			return nil, err
		}
	}
	threshold := ckpt.Threshold
	if threshold == 0 {
		threshold = sh.Threshold
	}
	if threshold == 0 {
		base, err := env.BaseScenarioContext(ctx, sb)
		if err != nil {
			return nil, fmt.Errorf("worker: trace base scenario: %w", err)
		}
		threshold = base.Metrics.PeakTemp
	}
	// Pin the threshold before simulating, same as the daemon: every future
	// holder runs against the identical threshold.
	l.upload(pool.TraceCheckpoint{Threshold: threshold, Snap: ckpt.Snap})

	cfg := env.SimConfig(sb, threshold, sh.FanLevel)
	cfg.RecordTrace = true
	cfg.CheckpointEvery = sh.CheckpointEvery
	cfg.OnCheckpoint = func(snap *sim.Snapshot) error {
		l.upload(pool.TraceCheckpoint{Threshold: threshold, Snap: snap})
		return ctx.Err() // a fenced shard stops at the next checkpoint
	}
	ctl := env.Controllers()[sh.Policy]
	if ctl == nil {
		return nil, fmt.Errorf("worker: unknown policy %q (valid: %v)", sh.Policy, exp.AllPolicies())
	}
	r, err := sim.NewRunner(cfg, ctl)
	if err != nil {
		return nil, err
	}
	var res *sim.Result
	if ckpt.Snap != nil {
		res, err = r.Resume(ctx, ckpt.Snap)
	} else {
		res, err = r.RunContext(ctx)
	}
	if err != nil {
		return nil, err
	}
	return pool.TraceShardResult{
		Threshold: threshold, Completed: res.Completed,
		Metrics: res.Metrics, FinalTemps: res.FinalTemps, Trace: res.Trace,
		Numeric: res.Numeric,
	}, nil
}

// upsertChaosRow and friends keep the checkpoint free of duplicate cells:
// the exp OnRow seams replay Done rows, and a cell must appear once.
func upsertChaosRow(rows []exp.ChaosRow, row exp.ChaosRow) []exp.ChaosRow {
	for i := range rows {
		if rows[i].Scenario == row.Scenario && rows[i].Policy == row.Policy {
			rows[i] = row
			return rows
		}
	}
	return append(rows, row)
}

func upsertT1Row(rows []exp.Table1Row, row exp.Table1Row) []exp.Table1Row {
	for i := range rows {
		if rows[i].Workload == row.Workload && rows[i].Threads == row.Threads {
			rows[i] = row
			return rows
		}
	}
	return append(rows, row)
}

func upsertF4Case(cases []exp.Fig4Case, c exp.Fig4Case) []exp.Fig4Case {
	for i := range cases {
		if cases[i].Bench == c.Bench && cases[i].Threads == c.Threads {
			cases[i] = c
			return cases
		}
	}
	return append(cases, c)
}
