// Package numfault injects scheduled numerical corruption — NaNs, infinities,
// and finite perturbations — into the simulator's solver inputs and outputs,
// in the style of internal/diskfault for storage. It exists to prove the
// numguard invariant auditor: every corruption a schedule can express must
// either be caught and recovered (transient rules) or caught and escalated
// into the controller's sticky fail-safe (persistent rules). Injection is a
// pure function of (seed, step, rule index), so a resumed run replays the
// exact same faults with no injector state in the checkpoint.
package numfault

import (
	"encoding/json"
	"fmt"
	"math"

	"tecfan/internal/schedfile"
)

// Targets a rule can corrupt.
const (
	TargetTemps = "temps" // the temperature vector after the implicit step
	TargetPower = "power" // the per-component power vector before the step
)

var validTargets = map[string]bool{TargetTemps: true, TargetPower: true}

// Actions a rule can apply.
const (
	ActNaN     = "nan"     // overwrite with NaN
	ActInf     = "inf"     // overwrite with +Inf (magnitude < 0 flips sign)
	ActPerturb = "perturb" // add magnitude (°C on temps, W on power)
)

var validActions = map[string]bool{ActNaN: true, ActInf: true, ActPerturb: true}

// Rule corrupts one element (or all) of a target vector over a step window.
type Rule struct {
	// Target selects the vector: "temps" or "power".
	Target string `json:"target"`
	// Action is "nan", "inf", or "perturb".
	Action string `json:"action"`
	// Index is the element to corrupt; -1 corrupts every element. Indices
	// beyond the vector length are ignored at injection time (vector sizes
	// depend on the floorplan, unknown at schedule-validation time).
	Index int `json:"index"`
	// Magnitude is the perturbation size for "perturb" (required nonzero)
	// and the sign selector for "inf" (negative → -Inf).
	Magnitude float64 `json:"magnitude,omitempty"`
	// FromStep..ToStep is the half-open step window [from, to); ToStep 0
	// means unbounded.
	FromStep int `json:"from_step"`
	ToStep   int `json:"to_step,omitempty"`
	// Persistent rules re-fire when the simulator retries a corrupted
	// step, modeling a genuine numerical defect: the retry fails again and
	// the divergence is confirmed. Transient rules (the default) skip the
	// retry, modeling a one-off upset the step-fallback absorbs.
	Persistent bool `json:"persistent,omitempty"`
	// Prob in (0, 1] fires the rule on that fraction of in-window steps,
	// decided by the seeded hash. 0 means 1 (always).
	Prob float64 `json:"prob,omitempty"`
}

func (r *Rule) validate(i int) error {
	if !validTargets[r.Target] {
		return fmt.Errorf("numfault: rule %d: unknown target %q", i, r.Target)
	}
	if !validActions[r.Action] {
		return fmt.Errorf("numfault: rule %d: unknown action %q", i, r.Action)
	}
	if r.Index < -1 {
		return fmt.Errorf("numfault: rule %d: index %d (want -1 for all, or >= 0)", i, r.Index)
	}
	if r.Action == ActPerturb && (r.Magnitude == 0 || math.IsNaN(r.Magnitude) || math.IsInf(r.Magnitude, 0)) {
		return fmt.Errorf("numfault: rule %d: perturb needs a finite nonzero magnitude", i)
	}
	if r.FromStep < 0 {
		return fmt.Errorf("numfault: rule %d: from_step %d < 0", i, r.FromStep)
	}
	if r.ToStep != 0 && r.ToStep <= r.FromStep {
		return fmt.Errorf("numfault: rule %d: to_step %d <= from_step %d", i, r.ToStep, r.FromStep)
	}
	if r.Prob < 0 || r.Prob > 1 || math.IsNaN(r.Prob) {
		return fmt.Errorf("numfault: rule %d: prob %v outside [0, 1]", i, r.Prob)
	}
	return nil
}

// inWindow reports whether the rule covers step.
func (r *Rule) inWindow(step int) bool {
	return step >= r.FromStep && (r.ToStep == 0 || step < r.ToStep)
}

// Schedule is the JSON document drills and flags feed in.
type Schedule struct {
	Seed  int64  `json:"seed"`
	Rules []Rule `json:"rules"`
}

// Validate checks every rule.
func (s *Schedule) Validate() error {
	for i := range s.Rules {
		if err := s.Rules[i].validate(i); err != nil {
			return err
		}
	}
	return nil
}

// ParseSchedule decodes and validates a JSON schedule.
func ParseSchedule(data []byte) (Schedule, error) {
	var s Schedule
	if err := json.Unmarshal(data, &s); err != nil {
		return Schedule{}, fmt.Errorf("numfault: parse schedule: %w", err)
	}
	if err := s.Validate(); err != nil {
		return Schedule{}, err
	}
	return s, nil
}

// ParseScheduleFile loads and validates a schedule from a JSON file through
// the shared schedfile loader, so errors carry the file path and rule index.
func ParseScheduleFile(path string) (Schedule, error) {
	var s Schedule
	if err := schedfile.Load(path, &s, s.Validate); err != nil {
		return Schedule{}, err
	}
	return s, nil
}

// Injector applies a schedule. It is stateless beyond the schedule itself:
// whether a rule fires at a step depends only on (seed, step, rule index),
// never on how many faults fired before — the property that keeps
// checkpoint/resume byte-identical under injection.
type Injector struct {
	seed  int64
	rules []Rule
}

// NewInjector builds an injector for a validated schedule.
func NewInjector(s Schedule) *Injector {
	return &Injector{seed: s.Seed, rules: s.Rules}
}

// splitmix64 is the usual finalizer; good avalanche, zero state.
func splitmix64(z uint64) uint64 {
	z += 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// fires decides rule ri at step, deterministically.
func (in *Injector) fires(ri, step int) bool {
	r := &in.rules[ri]
	if !r.inWindow(step) {
		return false
	}
	if r.Prob == 0 || r.Prob >= 1 {
		return true
	}
	h := splitmix64(uint64(in.seed) ^ splitmix64(uint64(step))<<1 ^ splitmix64(uint64(ri))<<2)
	u := float64(h>>11) / (1 << 53)
	return u < r.Prob
}

// apply corrupts vec per rule r.
func (r *Rule) apply(vec []float64) {
	lo, hi := r.Index, r.Index+1
	if r.Index == -1 {
		lo, hi = 0, len(vec)
	}
	if lo >= len(vec) {
		return
	}
	if hi > len(vec) {
		hi = len(vec)
	}
	for i := lo; i < hi; i++ {
		switch r.Action {
		case ActNaN:
			vec[i] = math.NaN()
		case ActInf:
			if r.Magnitude < 0 {
				vec[i] = math.Inf(-1)
			} else {
				vec[i] = math.Inf(1)
			}
		case ActPerturb:
			vec[i] += r.Magnitude
		}
	}
}

// corrupt applies every firing rule for target at step. retry restricts to
// persistent rules, modeling the simulator's step-fallback re-attempt.
// It reports whether any rule fired.
func (in *Injector) corrupt(target string, step int, retry bool, vec []float64) bool {
	fired := false
	for ri := range in.rules {
		r := &in.rules[ri]
		if r.Target != target || (retry && !r.Persistent) {
			continue
		}
		if in.fires(ri, step) {
			r.apply(vec)
			fired = true
		}
	}
	return fired
}

// CorruptTemps applies temperature rules for step; see corrupt.
func (in *Injector) CorruptTemps(step int, retry bool, temps []float64) bool {
	return in.corrupt(TargetTemps, step, retry, temps)
}

// CorruptPower applies power rules for step; see corrupt.
func (in *Injector) CorruptPower(step int, retry bool, power []float64) bool {
	return in.corrupt(TargetPower, step, retry, power)
}
