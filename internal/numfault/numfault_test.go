package numfault

import (
	"math"
	"testing"
)

func TestParseScheduleValid(t *testing.T) {
	raw := []byte(`{
		"seed": 42,
		"rules": [
			{"target": "temps", "action": "nan", "index": 0, "from_step": 10, "to_step": 11},
			{"target": "power", "action": "inf", "index": -1, "magnitude": -1, "from_step": 5, "persistent": true},
			{"target": "temps", "action": "perturb", "index": 2, "magnitude": 500, "from_step": 0, "prob": 0.5}
		]
	}`)
	s, err := ParseSchedule(raw)
	if err != nil {
		t.Fatal(err)
	}
	if s.Seed != 42 || len(s.Rules) != 3 {
		t.Fatalf("parsed %+v", s)
	}
	if !s.Rules[1].Persistent {
		t.Error("persistent flag lost")
	}
}

func TestParseScheduleRejects(t *testing.T) {
	cases := []string{
		`{"rules":[{"target":"volts","action":"nan","from_step":0}]}`,
		`{"rules":[{"target":"temps","action":"zap","from_step":0}]}`,
		`{"rules":[{"target":"temps","action":"nan","index":-2,"from_step":0}]}`,
		`{"rules":[{"target":"temps","action":"perturb","from_step":0}]}`,
		`{"rules":[{"target":"temps","action":"nan","from_step":-1}]}`,
		`{"rules":[{"target":"temps","action":"nan","from_step":5,"to_step":5}]}`,
		`{"rules":[{"target":"temps","action":"nan","from_step":0,"prob":1.5}]}`,
		`not json`,
	}
	for _, raw := range cases {
		if _, err := ParseSchedule([]byte(raw)); err == nil {
			t.Errorf("schedule %s: expected error", raw)
		}
	}
}

func TestInjectorWindowAndActions(t *testing.T) {
	in := NewInjector(Schedule{Rules: []Rule{
		{Target: TargetTemps, Action: ActNaN, Index: 1, FromStep: 10, ToStep: 12},
		{Target: TargetPower, Action: ActInf, Index: 0, Magnitude: -1, FromStep: 0},
		{Target: TargetTemps, Action: ActPerturb, Index: -1, Magnitude: 100, FromStep: 20, ToStep: 21},
	}})
	temps := []float64{50, 60, 70}
	if in.CorruptTemps(9, false, temps) {
		t.Error("rule fired before window")
	}
	if !in.CorruptTemps(10, false, temps) || !math.IsNaN(temps[1]) {
		t.Errorf("NaN rule did not fire in window: %v", temps)
	}
	temps = []float64{50, 60, 70}
	if in.CorruptTemps(12, false, temps) {
		t.Error("rule fired past half-open window end")
	}
	power := []float64{5, 5}
	if !in.CorruptPower(1000, false, power) || !math.IsInf(power[0], -1) {
		t.Errorf("unbounded -Inf rule: %v", power)
	}
	temps = []float64{50, 60, 70}
	in.CorruptTemps(20, false, temps)
	for i, v := range temps {
		if v != []float64{150, 160, 170}[i] {
			t.Errorf("perturb-all: temps[%d] = %v", i, v)
		}
	}
}

func TestRetryFiresOnlyPersistentRules(t *testing.T) {
	in := NewInjector(Schedule{Rules: []Rule{
		{Target: TargetTemps, Action: ActNaN, Index: 0, FromStep: 0},
		{Target: TargetTemps, Action: ActNaN, Index: 1, FromStep: 0, Persistent: true},
	}})
	temps := []float64{1, 2}
	in.CorruptTemps(0, true, temps)
	if math.IsNaN(temps[0]) {
		t.Error("transient rule fired on retry")
	}
	if !math.IsNaN(temps[1]) {
		t.Error("persistent rule skipped on retry")
	}
}

func TestIndexBeyondVectorIgnored(t *testing.T) {
	in := NewInjector(Schedule{Rules: []Rule{
		{Target: TargetTemps, Action: ActNaN, Index: 99, FromStep: 0},
	}})
	temps := []float64{1, 2}
	if in.CorruptTemps(0, false, temps) {
		// firing is fine; corruption must not happen
	}
	if math.IsNaN(temps[0]) || math.IsNaN(temps[1]) {
		t.Errorf("out-of-range index corrupted the vector: %v", temps)
	}
}

// Determinism is the load-bearing property: whether a probabilistic rule
// fires at a step must depend only on (seed, step, rule index) so resumed
// runs replay identically.
func TestProbabilisticFiringIsDeterministic(t *testing.T) {
	s := Schedule{Seed: 7, Rules: []Rule{
		{Target: TargetTemps, Action: ActNaN, Index: 0, FromStep: 0, Prob: 0.5},
	}}
	a, b := NewInjector(s), NewInjector(s)
	firedA, firedB := 0, 0
	for step := 0; step < 1000; step++ {
		ta, tb := []float64{1.0}, []float64{1.0}
		if a.CorruptTemps(step, false, ta) {
			firedA++
		}
		if b.CorruptTemps(step, false, tb) {
			firedB++
		}
		if math.IsNaN(ta[0]) != math.IsNaN(tb[0]) {
			t.Fatalf("step %d: injectors disagree", step)
		}
	}
	if firedA != firedB {
		t.Fatalf("fire counts differ: %d vs %d", firedA, firedB)
	}
	// And the rate should be roughly the requested probability.
	if firedA < 350 || firedA > 650 {
		t.Errorf("prob 0.5 fired %d/1000 times", firedA)
	}
	// A different seed must give a different firing pattern.
	c := NewInjector(Schedule{Seed: 8, Rules: s.Rules})
	diff := 0
	for step := 0; step < 1000; step++ {
		ta, tc := []float64{1.0}, []float64{1.0}
		fa := a.CorruptTemps(step, false, ta)
		fc := c.CorruptTemps(step, false, tc)
		if fa != fc {
			diff++
		}
	}
	if diff == 0 {
		t.Error("seeds 7 and 8 produced identical firing patterns")
	}
}
