package thermal

import (
	"math"
	"testing"

	"tecfan/internal/fan"
	"tecfan/internal/floorplan"
	"tecfan/internal/tec"
)

func newGrid(t *testing.T, chip *floorplan.Chip, cell float64) *Grid {
	t.Helper()
	g, err := NewGrid(chip, fan.DynatronR16(), DefaultParams(), cell)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestGridShape(t *testing.T) {
	chip := floorplan.NewQuad()
	g := newGrid(t, chip, 0.2)
	if g.Nx <= 0 || g.Ny <= 0 {
		t.Fatalf("grid %dx%d", g.Nx, g.Ny)
	}
	// 5.2 mm wide at ~0.2 mm cells → 26 columns.
	if g.Nx != 26 {
		t.Fatalf("Nx = %d, want 26", g.Nx)
	}
	if g.NumCells() != g.Nx*g.Ny {
		t.Fatal("cell count inconsistent")
	}
	if _, err := NewGrid(chip, fan.DynatronR16(), DefaultParams(), 0); err == nil {
		t.Fatal("zero cell size accepted")
	}
}

func TestGridCoverComplete(t *testing.T) {
	chip := floorplan.NewQuad()
	g := newGrid(t, chip, 0.2)
	// Every component's cover fractions must sum to 1 (its area is fully
	// tiled by cells).
	for ci := range chip.Components {
		var sum float64
		for _, cf := range g.cover[ci] {
			sum += cf.frac
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("component %d cover sums to %v", ci, sum)
		}
	}
}

func TestGridEnergyBalance(t *testing.T) {
	chip := floorplan.NewQuad()
	g := newGrid(t, chip, 0.25)
	p := make([]float64, len(chip.Components))
	total := 35.0
	for i, c := range chip.Components {
		p[i] = total * c.Area() / chip.Area()
	}
	temps, err := g.Steady(p, 1)
	if err != nil {
		t.Fatal(err)
	}
	out := g.Fan.Conductance(1) * (temps[g.sinkNode] - g.Params.AmbientC)
	if math.Abs(out-total)/total > 1e-4 {
		t.Fatalf("grid energy balance: in %.3f W out %.3f W", total, out)
	}
}

func TestGridValidatesCompactModel(t *testing.T) {
	// The central validation: the compact per-component network and the
	// fine grid must agree on component temperatures and the peak for a
	// realistic concentrated power map.
	chip := floorplan.NewQuad()
	nw := NewNetwork(chip, fan.DynatronR16(), DefaultParams())
	g := newGrid(t, chip, 0.15)

	p := make([]float64, len(chip.Components))
	// lu-style: one hot FPMul, moderate background.
	for _, i := range chip.CoreComponents(1) {
		c := chip.Components[i]
		p[i] = 5.0 * c.Area() / 9.36
		if c.Name == "FPMul" {
			p[i] *= 5
		}
	}
	for core := 0; core < 4; core++ {
		if core == 1 {
			continue
		}
		for _, i := range chip.CoreComponents(core) {
			p[i] = 1.5 * chip.Components[i].Area() / 9.36
		}
	}

	compact, err := nw.Steady(p, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	gridT, err := g.Steady(p, 1)
	if err != nil {
		t.Fatal(err)
	}

	// Component-mean agreement: the bulk of the floorplan must agree
	// tightly; the concentrated hot spot is allowed the classic block-model
	// concentration bias, and only in the conservative direction (the
	// compact model over-predicts the hot component, never under-predicts).
	hotIdx := chip.Lookup(1, "FPMul")
	for i := range chip.Components {
		gm := g.ComponentMean(gridT, i)
		d := math.Abs(gm - compact[i])
		if i == hotIdx {
			if d > 7 {
				t.Fatalf("hot-spot divergence %.2f °C too large", d)
			}
			if compact[i] < gm-0.5 {
				t.Fatalf("compact model under-predicts the hot spot: %.2f vs grid %.2f", compact[i], gm)
			}
			continue
		}
		if d > 2.0 {
			t.Fatalf("%s diverges by %.2f °C", chip.Components[i].ID(), d)
		}
	}

	// Peak agreement: both models must put the peak on the hot FPMul, and
	// the compact peak must bound the grid peak from above (the lumped
	// lateral conductances under-estimate spreading, which is the safe
	// direction for thermal management) without exaggerating it wildly.
	hotComp, compactPeak := nw.PeakDie(compact)
	peakCell, gridPeak := g.PeakCell(gridT)
	if chip.Components[hotComp].Name != "FPMul" {
		t.Fatalf("compact peak on %s, want FPMul", chip.Components[hotComp].Name)
	}
	if gridPeak > compactPeak+0.5 {
		t.Fatalf("grid peak %.2f exceeds compact %.2f: compact model is not conservative", gridPeak, compactPeak)
	}
	if gridPeak < compactPeak-7 {
		t.Fatalf("grid peak %.2f far below compact %.2f: compact model exaggerates", gridPeak, compactPeak)
	}
	// The hottest grid cell must lie inside the hot FPMul's rectangle.
	hc := chip.Components[hotIdx]
	cw, ch := g.cellDims()
	cx := (float64(peakCell%g.Nx) + 0.5) * cw
	cy := (float64(peakCell/g.Nx) + 0.5) * ch
	if cx < hc.X || cx > hc.X+hc.W || cy < hc.Y || cy > hc.Y+hc.H {
		t.Fatalf("grid peak cell at (%.2f, %.2f) outside the hot FPMul", cx, cy)
	}
}

func TestGridMonotoneInFan(t *testing.T) {
	chip := floorplan.NewQuad()
	g := newGrid(t, chip, 0.3)
	p := make([]float64, len(chip.Components))
	for i, c := range chip.Components {
		p[i] = 30 * c.Area() / chip.Area()
	}
	var prev float64 = -1
	for level := 0; level < g.Fan.NumLevels(); level++ {
		temps, err := g.Steady(p, level)
		if err != nil {
			t.Fatal(err)
		}
		_, peak := g.PeakCell(temps)
		if peak <= prev {
			t.Fatalf("grid peak not increasing with slower fan at level %d", level)
		}
		prev = peak
	}
}

func TestGridBadPowerVector(t *testing.T) {
	g := newGrid(t, floorplan.NewQuad(), 0.3)
	if _, err := g.Steady(make([]float64, 3), 0); err == nil {
		t.Fatal("short power vector accepted")
	}
}

func TestGridTransientConvergesToSteady(t *testing.T) {
	chip := floorplan.NewQuad()
	g := newGrid(t, chip, 0.35)
	p := make([]float64, len(chip.Components))
	for i, c := range chip.Components {
		p[i] = 25 * c.Area() / chip.Area()
	}
	steady, err := g.Steady(p, 1)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := g.NewTransient(1, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	temps := make([]float64, len(steady))
	for i := range temps {
		temps[i] = g.Params.AmbientC
	}
	for step := 0; step < 3000; step++ {
		if err := tr.Step(temps, p, 1); err != nil {
			t.Fatal(err)
		}
	}
	for i := range temps {
		if math.Abs(temps[i]-steady[i]) > 0.15 {
			t.Fatalf("node %d: transient %.3f vs steady %.3f", i, temps[i], steady[i])
		}
	}
}

func TestGridTransientErrors(t *testing.T) {
	g := newGrid(t, floorplan.NewQuad(), 0.4)
	if _, err := g.NewTransient(0, 0); err == nil {
		t.Fatal("dt=0 accepted")
	}
	tr, _ := g.NewTransient(0, 0.1)
	if err := tr.Step(make([]float64, 3), make([]float64, len(g.Chip.Components)), 0); err == nil {
		t.Fatal("short temperature vector accepted")
	}
}

// The compact model's transient and the grid's transient agree on the
// trajectory of the sink (the slowest state), validating the reduced
// model's dynamics, not just its fixed point.
func TestGridTransientMatchesCompactSink(t *testing.T) {
	chip := floorplan.NewQuad()
	nw := NewNetwork(chip, fan.DynatronR16(), DefaultParams())
	g := newGrid(t, chip, 0.35)
	p := make([]float64, len(chip.Components))
	for i, c := range chip.Components {
		p[i] = 30 * c.Area() / chip.Area()
	}
	ctr, err := nw.NewTransient(1, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	gtr, err := g.NewTransient(1, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	ct := make([]float64, nw.NumNodes())
	gt := make([]float64, g.n)
	for i := range ct {
		ct[i] = nw.Params.AmbientC
	}
	for i := range gt {
		gt[i] = g.Params.AmbientC
	}
	for step := 1; step <= 600; step++ {
		ctr.Step(ct, p, nil)
		if err := gtr.Step(gt, p, 1); err != nil {
			t.Fatal(err)
		}
		if step%100 == 0 {
			d := math.Abs(ct[nw.SinkNode()] - gt[g.sinkNode])
			if d > 0.3 {
				t.Fatalf("sink trajectories diverge by %.3f °C at step %d", d, step)
			}
		}
	}
}

// TEC cooling on the grid: the compact model's Peltier treatment (per-
// component apportioning) must agree with the grid's exact-footprint
// treatment on the hot spot's relief.
func TestGridTECMatchesCompact(t *testing.T) {
	chip := floorplan.NewQuad()
	nw := NewNetwork(chip, fan.DynatronR16(), DefaultParams())
	g := newGrid(t, chip, 0.15)
	p := make([]float64, len(chip.Components))
	hot := chip.Lookup(1, "FPMul")
	for _, i := range chip.CoreComponents(1) {
		c := chip.Components[i]
		p[i] = 5.0 * c.Area() / 9.36
	}
	p[hot] *= 5

	ts := tec.NewState(tec.Array(chip, tec.DefaultDevice()))
	for _, l := range ts.CoreDevices(1) {
		ts.Set(l, true)
	}
	ts.Advance(1)

	cOff, err := nw.Steady(p, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	cOn, err := nw.Steady(p, 1, ts)
	if err != nil {
		t.Fatal(err)
	}
	gOff, err := g.Steady(p, 1)
	if err != nil {
		t.Fatal(err)
	}
	gOn, err := g.SteadyTEC(p, 1, ts)
	if err != nil {
		t.Fatal(err)
	}
	compactRelief := cOff[hot] - cOn[hot]
	gridRelief := g.ComponentMean(gOff, hot) - g.ComponentMean(gOn, hot)
	if compactRelief <= 0 || gridRelief <= 0 {
		t.Fatalf("no relief: compact %.2f grid %.2f", compactRelief, gridRelief)
	}
	// Same order of magnitude and within 40 % of each other — the models
	// apportion the pumped heat differently (per component vs exact
	// footprint) but must agree on the effect size.
	ratio := compactRelief / gridRelief
	if ratio < 0.6 || ratio > 1.67 {
		t.Fatalf("TEC relief disagrees: compact %.2f °C vs grid %.2f °C", compactRelief, gridRelief)
	}
}
