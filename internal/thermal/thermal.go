// Package thermal implements the HotSpot-like compact thermal model the
// paper's models and experiments stand on (§III-A, §IV-B): a layered RC
// network over the chip floorplan with
//
//   - one die node per floorplan component (lateral silicon conduction
//     between edge-adjacent components, vertical conduction through silicon
//     and the TIM layer),
//   - one heat-spreader node per core tile (lateral copper spreading,
//     vertical conduction into the sink base),
//   - a single heat-sink node coupled to ambient through the fan-dependent
//     convective conductance.
//
// Active TECs embedded in the TIM layer add linear Peltier heat pumping
// between a die node and its core's spreader node plus resistive Joule heat
// (see package tec). The package offers the steady-state solve of Eq. (1),
// G·Ts = P, and a backward-Euler transient integrator that realizes Eq. (3);
// the paper's interpolation Eq. (5) is provided for the controller side.
//
// Temperatures are in °C; ambient is folded into the right-hand side.
package thermal

import (
	"fmt"
	"math"

	"tecfan/internal/fan"
	"tecfan/internal/floorplan"
	"tecfan/internal/linalg"
	"tecfan/internal/tec"
)

const mm = 1e-3 // metres per millimetre

// Params are the package/material constants of the thermal stack.
type Params struct {
	DieThickness    float64 // m
	DieConductivity float64 // W/(m·K)
	DieVolHeat      float64 // J/(m³·K)

	// DieCapScale multiplies the die node heat capacity to lump the on-die
	// metal stack and interface-material capacitance into the silicon node
	// (standard compact-model practice); it slows component transients to
	// the few-millisecond constants HotSpot exhibits without altering the
	// steady state.
	DieCapScale float64

	TIMThickness    float64 // m
	TIMConductivity float64 // W/(m·K); TEC film layer included

	SpreaderThickness    float64 // m
	SpreaderConductivity float64 // W/(m·K)
	SpreaderVolHeat      float64 // J/(m³·K)
	// SpreaderAreaScale is the ratio of effective spreader region area to
	// die tile area (the spreader overhangs the die).
	SpreaderAreaScale float64
	// RegionSinkConductance is the vertical conductance from one spreader
	// region into the sink base, W/K (includes constriction).
	RegionSinkConductance float64
	// SpreaderLateralScale multiplies the geometric lateral conductance
	// between adjacent spreader regions (accounts for overhang paths).
	SpreaderLateralScale float64

	AmbientC float64 // in-case ambient air temperature, °C
}

// DefaultParams returns the calibrated stack used in all experiments. The
// values reproduce the paper's Table I base-scenario temperatures within a
// few degrees given the calibrated workload power maps.
func DefaultParams() Params {
	return Params{
		DieThickness:    0.15 * mm,
		DieConductivity: 100, // silicon near 80 °C
		DieVolHeat:      1.75e6,
		DieCapScale:     5.0,

		TIMThickness:    0.020 * mm,
		TIMConductivity: 1.33, // grease with embedded TEC films

		SpreaderThickness:     1.0 * mm,
		SpreaderConductivity:  400, // copper
		SpreaderVolHeat:       3.4e6,
		SpreaderAreaScale:     4.0,
		RegionSinkConductance: 5.0,
		SpreaderLateralScale:  2.0,

		AmbientC: 45,
	}
}

// Network is the assembled RC network for one chip and fan model.
type Network struct {
	Chip   *floorplan.Chip
	Fan    *fan.Model
	Params Params

	n            int
	spreaderBase int // first spreader node
	sinkNode     int

	// Conduction graph, excluding the fan-dependent sink→ambient leg.
	cond []linalg.Coord // off-diagonal −g and diagonal +g entries
	capn []float64      // per-node heat capacity, J/K

	// Cached factors are the verified kind: every solve through them is
	// residual-checked, refined once when degraded, and refused with a
	// typed linalg.NumError rather than returning garbage temperatures.
	steadyCache    map[int]*linalg.VerifiedCholesky
	transientCache map[transientKey]*linalg.VerifiedCholesky

	// Fixed-point scratch for SteadyInto, preallocated so per-candidate
	// steady solves stay allocation-free. The Network is already not safe
	// for concurrent use (shared factor caches); the scratch keeps that
	// contract rather than tightening it.
	steadyRHS  []float64
	steadyNext []float64
}

type transientKey struct {
	fanLevel int
	dtNanos  int64
}

// NewNetwork assembles the network for a chip. The fan model supplies the
// convective conductance per speed level and the sink capacity.
func NewNetwork(chip *floorplan.Chip, fm *fan.Model, p Params) *Network {
	nc := len(chip.Components)
	cores := chip.NumCores()
	nw := &Network{
		Chip:           chip,
		Fan:            fm,
		Params:         p,
		n:              nc + cores + 1,
		spreaderBase:   nc,
		sinkNode:       nc + cores,
		capn:           make([]float64, nc+cores+1),
		steadyCache:    map[int]*linalg.VerifiedCholesky{},
		transientCache: map[transientKey]*linalg.VerifiedCholesky{},
		steadyRHS:      make([]float64, nc+cores+1),
		steadyNext:     make([]float64, nc+cores+1),
	}
	nw.assemble()
	return nw
}

// addCond appends a symmetric conductance g between nodes a and b.
func (nw *Network) addCond(a, b int, g float64) {
	nw.cond = append(nw.cond,
		linalg.Coord{Row: a, Col: a, Val: g},
		linalg.Coord{Row: b, Col: b, Val: g},
		linalg.Coord{Row: a, Col: b, Val: -g},
		linalg.Coord{Row: b, Col: a, Val: -g},
	)
}

func (nw *Network) assemble() {
	p := nw.Params
	chip := nw.Chip

	// Lateral die conduction between edge-adjacent components:
	// g = k_si · t_die · L_shared / d_centroid.
	for _, e := range chip.Adjacency() {
		a, b := chip.Components[e.A], chip.Components[e.B]
		dx := a.CenterX() - b.CenterX()
		dy := a.CenterY() - b.CenterY()
		d := math.Hypot(dx, dy) * mm
		if d <= 0 {
			continue
		}
		g := p.DieConductivity * p.DieThickness * (e.Length * mm) / d
		nw.addCond(e.A, e.B, g)
	}

	// Vertical die → spreader region through silicon + TIM, per component.
	rVert := p.DieThickness/p.DieConductivity + p.TIMThickness/p.TIMConductivity // K·m²/W
	for i, c := range chip.Components {
		area := c.Area() * mm * mm
		nw.addCond(i, nw.SpreaderNode(c.Core), area/rVert)
		nw.capn[i] = p.DieVolHeat * area * p.DieThickness * p.DieCapScale
	}

	// Spreader regions: lateral copper conduction between adjacent tiles and
	// vertical conduction into the sink.
	tileArea := floorplan.TileW * floorplan.TileH * mm * mm
	for core := 0; core < chip.NumCores(); core++ {
		row := core / chip.TileCols
		col := core % chip.TileCols
		sp := nw.SpreaderNode(core)
		nw.capn[sp] = p.SpreaderVolHeat * tileArea * p.SpreaderAreaScale * p.SpreaderThickness
		nw.addCond(sp, nw.sinkNode, p.RegionSinkConductance)
		// Right neighbour.
		if col+1 < chip.TileCols {
			l := floorplan.TileH * mm
			d := floorplan.TileW * mm
			g := p.SpreaderConductivity * p.SpreaderThickness * l / d * p.SpreaderLateralScale
			nw.addCond(sp, nw.SpreaderNode(core+1), g)
		}
		// Down neighbour.
		if row+1 < chip.TileRows {
			l := floorplan.TileW * mm
			d := floorplan.TileH * mm
			g := p.SpreaderConductivity * p.SpreaderThickness * l / d * p.SpreaderLateralScale
			nw.addCond(sp, nw.SpreaderNode(core+chip.TileCols), g)
		}
	}
	nw.capn[nw.sinkNode] = nw.Fan.SinkCapacity
}

// NumNodes returns the total node count.
func (nw *Network) NumNodes() int { return nw.n }

// NumDie returns the number of die (component) nodes.
func (nw *Network) NumDie() int { return nw.spreaderBase }

// DieNode returns the node index of floorplan component comp (identity).
func (nw *Network) DieNode(comp int) int { return comp }

// SpreaderNode returns the node index of core's spreader region.
func (nw *Network) SpreaderNode(core int) int { return nw.spreaderBase + core }

// SinkNode returns the heat-sink node index.
func (nw *Network) SinkNode() int { return nw.sinkNode }

// Capacity returns the heat capacity of node i (J/K).
func (nw *Network) Capacity(i int) float64 { return nw.capn[i] }

// AssembleG builds the dense conductance matrix Ĝ of Eq. (1) for a fan
// level, without TEC terms (those are linear-in-T source terms handled by
// the solvers). Exposed for tests and for the controller's model extraction.
func (nw *Network) AssembleG(fanLevel int) *linalg.Dense {
	g := linalg.NewDense(nw.n, nw.n)
	for _, c := range nw.cond {
		g.Add(c.Row, c.Col, c.Val)
	}
	g.Add(nw.sinkNode, nw.sinkNode, nw.Fan.Conductance(fanLevel))
	return g
}

// steadyFactor returns the cached verified Cholesky factor of G(fanLevel).
func (nw *Network) steadyFactor(fanLevel int) (*linalg.VerifiedCholesky, error) {
	if f, ok := nw.steadyCache[fanLevel]; ok {
		return f, nil
	}
	f, err := linalg.NewVerifiedCholesky(nw.AssembleG(fanLevel), 0)
	if err != nil {
		return nil, fmt.Errorf("thermal: factoring G(fan=%d): %w", fanLevel, err)
	}
	nw.steadyCache[fanLevel] = f
	return f, nil
}

// peltierRHS adds the TEC source terms for the given temperature estimate to
// rhs: Peltier extraction at covered die nodes, deposition at the core
// spreader node, and the split Joule heat. Only engaged devices pump; all
// switched-on devices dissipate Joule heat.
func (nw *Network) peltierRHS(rhs, t []float64, ts *tec.State) {
	if ts == nil {
		return
	}
	for l := 0; l < ts.Len(); l++ {
		i := ts.Current(l)
		if i <= 0 {
			continue
		}
		p := ts.Placement(l)
		sp := nw.SpreaderNode(p.Core)
		joule := p.Device.JouleHeat(i)
		rhs[sp] += 0.5 * joule
		pump := ts.Engaged(l)
		// CoverList, not the Cover map: rhs[sp] accumulates across covered
		// components, and map-order float sums are not reproducible.
		for _, ce := range p.CoverList {
			comp, frac := ce.Comp, ce.Frac
			rhs[comp] += 0.5 * joule * frac
			if pump {
				q := p.Device.PumpCoefficient(i) * frac * (t[comp] + 273.15)
				rhs[comp] -= q
				rhs[sp] += q
			}
		}
	}
}

// baseRHS fills rhs with die power plus the ambient source at the sink. A
// wrong-length power vector is a model-construction defect reported as a
// structured error, not a panic: the sim boundary turns it into a failed
// run instead of a crashed process.
func (nw *Network) baseRHS(rhs, power []float64, fanLevel int) error {
	if len(power) != nw.NumDie() {
		//lint:tecfan-ignore allocfree -- model-construction defect path: formats the diagnosis at most once per failed run
		return fmt.Errorf("thermal: power vector length %d, want %d", len(power), nw.NumDie()) //lint:tecfan-ignore hotcall -- defect path: fmt runs at most once per failed run
	}
	linalg.Fill(rhs, 0)
	copy(rhs, power)
	rhs[nw.sinkNode] += nw.Fan.Conductance(fanLevel) * nw.Params.AmbientC
	return nil
}

// steadyTol is the fixed-point convergence tolerance (°C) for the Peltier
// source iteration.
const steadyTol = 1e-3

// Steady solves Eq. (1) for the steady-state temperature vector (°C). The
// TEC Peltier terms, linear in T, are converged by a short fixed-point
// iteration (they are small relative to the conduction terms, so 2–4 rounds
// suffice). ts may be nil for a TEC-less solve.
func (nw *Network) Steady(power []float64, fanLevel int, ts *tec.State) ([]float64, error) {
	t := make([]float64, nw.n)
	linalg.Fill(t, nw.Params.AmbientC)
	if err := nw.SteadyInto(t, power, fanLevel, ts); err != nil {
		return nil, err
	}
	return t, nil
}

// SteadyInto is Steady with a caller-provided initial guess/output vector,
// enabling warm starts across control periods.
func (nw *Network) SteadyInto(t, power []float64, fanLevel int, ts *tec.State) error {
	f, err := nw.steadyFactor(fanLevel)
	if err != nil {
		return err
	}
	rhs, next := nw.steadyRHS, nw.steadyNext
	for iter := 0; iter < 50; iter++ {
		if err := nw.baseRHS(rhs, power, fanLevel); err != nil {
			return err
		}
		nw.peltierRHS(rhs, t, ts)
		if _, err := f.Solve(rhs, next); err != nil {
			//lint:tecfan-ignore allocfree -- solver refusal path: formats the diagnosis at most once per rejected solve
			return fmt.Errorf("thermal: steady solve (fan=%d): %w", fanLevel, err) //lint:tecfan-ignore hotcall -- refusal path: fmt runs at most once per rejected solve
		}
		var delta float64
		for i := range t {
			if d := math.Abs(next[i] - t[i]); d > delta {
				delta = d
			}
		}
		copy(t, next)
		if delta < steadyTol {
			return nil
		}
	}
	//lint:tecfan-ignore allocfree -- non-convergence refusal path: formats the diagnosis at most once per failed solve
	return fmt.Errorf("thermal: Peltier fixed point did not converge") //lint:tecfan-ignore hotcall -- refusal path: fmt runs at most once per failed solve
}

// Transient is a backward-Euler integrator with a fixed fan level and step.
type Transient struct {
	nw       *Network
	fanLevel int
	dt       float64
	factor   *linalg.VerifiedCholesky
	rhs      []float64
	next     []float64
	// refines counts iterative-refinement steps the verified solve needed,
	// per Transient instance (the factor cache is shared across instances,
	// so the counter cannot live there without leaking across runs).
	refines int
}

// NewTransient factors (C/dt + G) for the given fan level and time step.
// Refactorization happens only when the fan level changes, matching the
// paper's observation that fan actuation is orders of magnitude slower than
// TEC/DVFS actuation.
func (nw *Network) NewTransient(fanLevel int, dt float64) (*Transient, error) {
	if dt <= 0 {
		return nil, fmt.Errorf("thermal: non-positive dt %v", dt)
	}
	key := transientKey{fanLevel: fanLevel, dtNanos: int64(dt * 1e9)}
	f, ok := nw.transientCache[key]
	if !ok {
		m := nw.AssembleG(fanLevel)
		for i := 0; i < nw.n; i++ {
			m.Add(i, i, nw.capn[i]/dt)
		}
		var err error
		f, err = linalg.NewVerifiedCholesky(m, 0)
		if err != nil {
			return nil, fmt.Errorf("thermal: factoring transient matrix: %w", err)
		}
		nw.transientCache[key] = f
	}
	return &Transient{
		nw:       nw,
		fanLevel: fanLevel,
		dt:       dt,
		factor:   f,
		rhs:      make([]float64, nw.n),
		next:     make([]float64, nw.n),
	}, nil
}

// DT returns the integration step in seconds.
func (tr *Transient) DT() float64 { return tr.dt }

// FanLevel returns the fan level the integrator was factored for.
func (tr *Transient) FanLevel() int { return tr.fanLevel }

// Step advances t (in place) by one dt with the given die power vector and
// TEC state. Peltier terms use the pre-step temperatures (semi-implicit),
// which is stable because the pump coefficients are tiny relative to C/dt.
// On error t is left untouched (the solve goes into a scratch vector), so
// callers can retry or hold the last good state.
func (tr *Transient) Step(t, power []float64, ts *tec.State) error {
	nw := tr.nw
	if err := nw.baseRHS(tr.rhs, power, tr.fanLevel); err != nil {
		return err
	}
	nw.peltierRHS(tr.rhs, t, ts)
	for i := 0; i < nw.n; i++ {
		tr.rhs[i] += nw.capn[i] / tr.dt * t[i]
	}
	refined, err := tr.factor.Solve(tr.rhs, tr.next)
	if refined {
		tr.refines++
	}
	if err != nil {
		return err
	}
	copy(t, tr.next)
	return nil
}

// TakeRefinements returns the refinement count accumulated since the last
// call and resets it — a delta, so the sim can attribute refinement work to
// the exact step window it audited.
func (tr *Transient) TakeRefinements() int {
	n := tr.refines
	tr.refines = 0
	return n
}

// PeakDie returns the hottest die component index and its temperature.
func (nw *Network) PeakDie(t []float64) (comp int, tC float64) {
	comp, tC = -1, math.Inf(-1)
	for i := 0; i < nw.NumDie(); i++ {
		if t[i] > tC {
			comp, tC = i, t[i]
		}
	}
	return comp, tC
}

// CorePeak returns the hottest component of one core and its temperature.
func (nw *Network) CorePeak(t []float64, core int) (comp int, tC float64) {
	comp, tC = -1, math.Inf(-1)
	for _, i := range nw.Chip.CoreComponents(core) {
		if t[i] > tC {
			comp, tC = i, t[i]
		}
	}
	return comp, tC
}

// TECPower evaluates Eq. (9) for every switched-on device given the current
// temperature field: P = r·I² + α·I·Δθ with Δθ the spreader-minus-die
// temperature difference seen by the device.
func (nw *Network) TECPower(t []float64, ts *tec.State) float64 {
	if ts == nil {
		return 0
	}
	var total float64
	for l := 0; l < ts.Len(); l++ {
		i := ts.Current(l)
		if i <= 0 {
			continue
		}
		p := ts.Placement(l)
		sp := nw.SpreaderNode(p.Core)
		var cold float64
		for _, ce := range p.CoverList {
			cold += t[ce.Comp] * ce.Frac
		}
		dTheta := t[sp] - cold
		if dTheta < 0 {
			dTheta = 0 // the pump has not yet established a gradient
		}
		total += p.Device.Power(i, dTheta)
	}
	return total
}

// RCInterp implements the paper's Eq. (5): one step of the discretized RC
// response, T(k) = (1−β)·Ts + β·T(k−1) with β = exp(−Δk/(Rth·Cth)). The
// controller uses it to estimate how far the transient moves toward the
// predicted steady state within one control period.
func RCInterp(ts, tPrev, tauSeconds, dtSeconds float64) float64 {
	beta := math.Exp(-dtSeconds / tauSeconds)
	return (1-beta)*ts + beta*tPrev
}

// DieTimeConstant returns a representative die-node RC time constant for the
// controller's Eq. (5): node capacity divided by its total conductance.
func (nw *Network) DieTimeConstant(comp int) float64 {
	var g float64
	for _, c := range nw.cond {
		if c.Row == comp && c.Col == comp {
			g += c.Val
		}
	}
	if g <= 0 {
		return 1e-3
	}
	return nw.capn[comp] / g
}
