package thermal

import (
	"testing"

	"tecfan/internal/tec"
)

// Dynamic proofs of the hot-path allocation discipline (DESIGN.md §18) for
// the thermal substrate: the solvers the 2 ms loop leans on must be
// allocation-free once their factor caches and scratch are warm.

func TestTransientStepZeroAllocs(t *testing.T) {
	nw, p := benchNetwork16()
	tr, err := nw.NewTransient(0, 100e-6)
	if err != nil {
		t.Fatal(err)
	}
	temps := make([]float64, nw.NumNodes())
	for i := range temps {
		temps[i] = 70
	}
	for i := 0; i < 5; i++ {
		if err := tr.Step(temps, p, nil); err != nil {
			t.Fatal(err)
		}
	}
	var stepErr error
	allocs := testing.AllocsPerRun(100, func() {
		if err := tr.Step(temps, p, nil); err != nil {
			stepErr = err
		}
	})
	if stepErr != nil {
		t.Fatal(stepErr)
	}
	if allocs != 0 {
		t.Fatalf("Transient.Step allocates %.1f per call; the simulation inner loop must be allocation-free", allocs)
	}
}

func TestSteadyIntoZeroAllocs(t *testing.T) {
	nw, p := benchNetwork16()
	ts := tec.NewState(tec.Array(nw.Chip, tec.DefaultDevice()))
	for _, l := range ts.CoreDevices(5) {
		ts.Set(l, true)
	}
	ts.Advance(1)
	temps := make([]float64, nw.NumNodes())
	for i := range temps {
		temps[i] = 75
	}
	// Warm both factor-cache entries the alternation below touches.
	for i := 0; i < 4; i++ {
		if err := nw.SteadyInto(temps, p, i%2, ts); err != nil {
			t.Fatal(err)
		}
	}
	var solveErr error
	i := 0
	allocs := testing.AllocsPerRun(100, func() {
		if err := nw.SteadyInto(temps, p, i%2, ts); err != nil {
			solveErr = err
		}
		i++
	})
	if solveErr != nil {
		t.Fatal(solveErr)
	}
	if allocs != 0 {
		t.Fatalf("SteadyInto allocates %.1f per call with a warm factor cache; candidate evaluation must be allocation-free", allocs)
	}
}
