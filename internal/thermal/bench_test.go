package thermal

import (
	"testing"

	"tecfan/internal/fan"
	"tecfan/internal/floorplan"
	"tecfan/internal/tec"
)

// Performance documentation for the thermal substrate at experiment sizes.

func benchNetwork16() (*Network, []float64) {
	chip := floorplan.NewSCC16()
	nw := NewNetwork(chip, fan.DynatronR16(), DefaultParams())
	p := make([]float64, nw.NumDie())
	for i, c := range chip.Components {
		p[i] = 120 * c.Area() / chip.Area()
	}
	return nw, p
}

func BenchmarkNetworkAssembly16(b *testing.B) {
	chip := floorplan.NewSCC16()
	fm := fan.DynatronR16()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		NewNetwork(chip, fm, DefaultParams())
	}
}

func BenchmarkSteadyWithTEC16(b *testing.B) {
	nw, p := benchNetwork16()
	ts := tec.NewState(tec.Array(nw.Chip, tec.DefaultDevice()))
	for _, l := range ts.CoreDevices(5) {
		ts.Set(l, true)
	}
	ts.Advance(1)
	t := make([]float64, nw.NumNodes())
	for i := range t {
		t[i] = 75
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := nw.SteadyInto(t, p, 1, ts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGridSteady16(b *testing.B) {
	chip := floorplan.NewSCC16()
	g, err := NewGrid(chip, fan.DynatronR16(), DefaultParams(), 0.3)
	if err != nil {
		b.Fatal(err)
	}
	p := make([]float64, len(chip.Components))
	for i, c := range chip.Components {
		p[i] = 120 * c.Area() / chip.Area()
	}
	b.ReportMetric(float64(g.NumCells()), "cells")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := g.Steady(p, 1); err != nil {
			b.Fatal(err)
		}
	}
}
