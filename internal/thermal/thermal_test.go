package thermal

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"tecfan/internal/fan"
	"tecfan/internal/floorplan"
	"tecfan/internal/tec"
)

func newTestNetwork(t *testing.T, chip *floorplan.Chip) *Network {
	t.Helper()
	return NewNetwork(chip, fan.DynatronR16(), DefaultParams())
}

// uniformPower spreads total watts over die components proportionally to area.
func uniformPower(nw *Network, total float64) []float64 {
	p := make([]float64, nw.NumDie())
	chipArea := nw.Chip.Area()
	for i, c := range nw.Chip.Components {
		p[i] = total * c.Area() / chipArea
	}
	return p
}

func TestGMatrixSymmetricSPD(t *testing.T) {
	nw := newTestNetwork(t, floorplan.NewQuad())
	for level := 0; level < nw.Fan.NumLevels(); level++ {
		g := nw.AssembleG(level)
		if !g.IsSymmetric(1e-12) {
			t.Fatalf("G(fan=%d) not symmetric", level)
		}
		// Row sums must be ≥ 0, strictly positive only at the sink row
		// (the only node connected to ambient).
		for i := 0; i < nw.NumNodes(); i++ {
			var sum float64
			for j := 0; j < nw.NumNodes(); j++ {
				sum += g.At(i, j)
			}
			if i == nw.SinkNode() {
				if sum <= 0 {
					t.Fatalf("sink row sum %v, want > 0", sum)
				}
			} else if math.Abs(sum) > 1e-9 {
				t.Fatalf("row %d sum %v, want 0 (pure conduction)", i, sum)
			}
		}
	}
}

func TestSteadyUniformOrdering(t *testing.T) {
	nw := newTestNetwork(t, floorplan.NewQuad())
	temps, err := nw.Steady(uniformPower(nw, 30), 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	amb := nw.Params.AmbientC
	sink := temps[nw.SinkNode()]
	if sink <= amb {
		t.Fatalf("sink %.2f °C not above ambient %.2f", sink, amb)
	}
	for core := 0; core < 4; core++ {
		sp := temps[nw.SpreaderNode(core)]
		if sp <= sink {
			t.Fatalf("spreader %d (%.2f) not above sink (%.2f)", core, sp, sink)
		}
		_, peak := nw.CorePeak(temps, core)
		if peak <= sp {
			t.Fatalf("core %d peak (%.2f) not above its spreader (%.2f)", core, peak, sp)
		}
	}
}

func TestSteadyEnergyBalance(t *testing.T) {
	nw := newTestNetwork(t, floorplan.NewQuad())
	total := 42.0
	temps, err := nw.Steady(uniformPower(nw, total), 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	// All injected heat must leave through the sink: g_conv·(T_sink − T_amb).
	out := nw.Fan.Conductance(1) * (temps[nw.SinkNode()] - nw.Params.AmbientC)
	if math.Abs(out-total)/total > 1e-6 {
		t.Fatalf("energy balance: in %.4f W, out %.4f W", total, out)
	}
}

func TestSteadyEnergyBalanceWithTEC(t *testing.T) {
	chip := floorplan.NewQuad()
	nw := newTestNetwork(t, chip)
	ts := tec.NewState(tec.Array(chip, tec.DefaultDevice()))
	for _, l := range ts.CoreDevices(0) {
		ts.Set(l, true)
	}
	ts.Advance(1) // past engagement
	total := 42.0
	temps, err := nw.Steady(uniformPower(nw, total), 1, ts)
	if err != nil {
		t.Fatal(err)
	}
	// Heat out = die power + Joule heat of the 9 active devices (the Peltier
	// pump only relocates heat; the model deposits the extracted heat plus
	// I²R on the spreader side).
	joule := float64(tec.DevicesPerCore) * tec.DefaultDevice().JouleHeat(tec.DriveCurrent)
	out := nw.Fan.Conductance(1) * (temps[nw.SinkNode()] - nw.Params.AmbientC)
	want := total + joule
	if math.Abs(out-want)/want > 1e-4 {
		t.Fatalf("energy balance with TEC: out %.4f W, want %.4f W", out, want)
	}
}

func TestFanLevelMonotone(t *testing.T) {
	nw := newTestNetwork(t, floorplan.NewQuad())
	p := uniformPower(nw, 40)
	var prevPeak float64 = -1
	for level := 0; level < nw.Fan.NumLevels(); level++ {
		temps, err := nw.Steady(p, level, nil)
		if err != nil {
			t.Fatal(err)
		}
		_, peak := nw.PeakDie(temps)
		if peak <= prevPeak {
			t.Fatalf("slower fan level %d did not raise peak: %.2f vs %.2f", level, peak, prevPeak)
		}
		prevPeak = peak
	}
}

// Property: temperatures are monotone in injected power.
func TestSteadyMonotoneInPower(t *testing.T) {
	nw := newTestNetwork(t, floorplan.NewQuad())
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p1 := make([]float64, nw.NumDie())
		p2 := make([]float64, nw.NumDie())
		for i := range p1 {
			p1[i] = rng.Float64() * 0.3
			p2[i] = p1[i] + rng.Float64()*0.2 // p2 ≥ p1 everywhere
		}
		t1, err1 := nw.Steady(p1, 2, nil)
		t2, err2 := nw.Steady(p2, 2, nil)
		if err1 != nil || err2 != nil {
			return false
		}
		for i := range t1 {
			if t2[i] < t1[i]-1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

func TestTECCoolsHotCore(t *testing.T) {
	chip := floorplan.NewQuad()
	nw := newTestNetwork(t, chip)
	// Core 0 hot: all its power in the logic blocks; other cores idle.
	p := make([]float64, nw.NumDie())
	for _, i := range chip.CoreComponents(0) {
		c := chip.Components[i]
		if c.Kind == floorplan.KindLogic {
			p[i] = 6.0 * c.Area() / 3.0 // ≈ 6 W over the logic area
		}
	}
	base, err := nw.Steady(p, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	_, basePeak := nw.CorePeak(base, 0)

	ts := tec.NewState(tec.Array(chip, tec.DefaultDevice()))
	for _, l := range ts.CoreDevices(0) {
		ts.Set(l, true)
	}
	ts.Advance(1)
	cooled, err := nw.Steady(p, 1, ts)
	if err != nil {
		t.Fatal(err)
	}
	_, coolPeak := nw.CorePeak(cooled, 0)
	drop := basePeak - coolPeak
	if drop < 1.5 || drop > 30 {
		t.Fatalf("9 TECs dropped the hot-core peak by %.2f °C; want a few degrees", drop)
	}
	// The relocated heat warms the sink slightly.
	if cooled[nw.SinkNode()] <= base[nw.SinkNode()] {
		t.Fatal("TEC Joule heat should warm the sink")
	}
}

func TestUnengagedTECOnlyHeats(t *testing.T) {
	chip := floorplan.NewQuad()
	nw := newTestNetwork(t, chip)
	p := uniformPower(nw, 20)
	base, _ := nw.Steady(p, 1, nil)
	ts := tec.NewState(tec.Array(chip, tec.DefaultDevice()))
	for _, l := range ts.CoreDevices(0) {
		ts.Set(l, true)
	}
	// Do NOT advance past the engagement delay: devices draw power and
	// dissipate Joule heat but pump nothing.
	hot, err := nw.Steady(p, 1, ts)
	if err != nil {
		t.Fatal(err)
	}
	_, basePeak := nw.CorePeak(base, 0)
	_, hotPeak := nw.CorePeak(hot, 0)
	if hotPeak < basePeak {
		t.Fatalf("unengaged TECs cooled the core: %.3f < %.3f", hotPeak, basePeak)
	}
}

func TestTransientConvergesToSteady(t *testing.T) {
	chip := floorplan.NewQuad()
	nw := newTestNetwork(t, chip)
	p := uniformPower(nw, 35)
	steady, err := nw.Steady(p, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := nw.NewTransient(1, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	temps := make([]float64, nw.NumNodes())
	for i := range temps {
		temps[i] = nw.Params.AmbientC
	}
	// Integrate well past the sink time constant.
	for step := 0; step < 6000; step++ {
		tr.Step(temps, p, nil)
	}
	for i := range temps {
		if math.Abs(temps[i]-steady[i]) > 0.1 {
			t.Fatalf("node %d: transient %.3f vs steady %.3f", i, temps[i], steady[i])
		}
	}
}

func TestTransientMonotoneWarmup(t *testing.T) {
	chip := floorplan.NewQuad()
	nw := newTestNetwork(t, chip)
	p := uniformPower(nw, 35)
	tr, _ := nw.NewTransient(0, 0.01)
	temps := make([]float64, nw.NumNodes())
	for i := range temps {
		temps[i] = nw.Params.AmbientC
	}
	_, prev := nw.PeakDie(temps)
	for step := 0; step < 50; step++ {
		tr.Step(temps, p, nil)
		_, peak := nw.PeakDie(temps)
		if peak < prev-1e-9 {
			t.Fatalf("warm-up not monotone at step %d: %.4f < %.4f", step, peak, prev)
		}
		prev = peak
	}
}

func TestTransientBadDT(t *testing.T) {
	nw := newTestNetwork(t, floorplan.NewQuad())
	if _, err := nw.NewTransient(0, 0); err == nil {
		t.Fatal("expected error for dt=0")
	}
	if _, err := nw.NewTransient(0, -1); err == nil {
		t.Fatal("expected error for dt<0")
	}
}

func TestTransientFactorCacheReuse(t *testing.T) {
	nw := newTestNetwork(t, floorplan.NewQuad())
	a, err := nw.NewTransient(2, 0.001)
	if err != nil {
		t.Fatal(err)
	}
	b, err := nw.NewTransient(2, 0.001)
	if err != nil {
		t.Fatal(err)
	}
	if a.factor != b.factor {
		t.Fatal("transient factor not cached")
	}
	c, _ := nw.NewTransient(3, 0.001)
	if c.factor == a.factor {
		t.Fatal("distinct fan levels must not share a factor")
	}
	if a.DT() != 0.001 || a.FanLevel() != 2 {
		t.Fatal("accessors wrong")
	}
}

func TestTECPowerEq9(t *testing.T) {
	chip := floorplan.NewQuad()
	nw := newTestNetwork(t, chip)
	ts := tec.NewState(tec.Array(chip, tec.DefaultDevice()))
	temps := make([]float64, nw.NumNodes())
	linFill(temps, 60)
	temps[nw.SpreaderNode(0)] = 65 // Δθ = 5 over core 0
	if got := nw.TECPower(temps, nil); got != 0 {
		t.Fatalf("nil state TEC power = %v", got)
	}
	if got := nw.TECPower(temps, ts); got != 0 {
		t.Fatalf("all-off TEC power = %v", got)
	}
	devs := ts.CoreDevices(0)
	ts.Set(devs[0], true)
	d := tec.DefaultDevice()
	want := d.Power(tec.DriveCurrent, 5)
	if got := nw.TECPower(temps, ts); math.Abs(got-want) > 1e-9 {
		t.Fatalf("TEC power = %v, want %v", got, want)
	}
	// Negative Δθ clamps to zero: power is pure Joule.
	temps[nw.SpreaderNode(0)] = 50
	if got := nw.TECPower(temps, ts); math.Abs(got-d.JouleHeat(tec.DriveCurrent)) > 1e-9 {
		t.Fatalf("TEC power with adverse Δθ = %v", got)
	}
}

func linFill(v []float64, x float64) {
	for i := range v {
		v[i] = x
	}
}

func TestRCInterp(t *testing.T) {
	// At dt → 0 the temperature stays put; at dt ≫ τ it reaches steady.
	if got := RCInterp(100, 50, 1.0, 1e-9); math.Abs(got-50) > 1e-6 {
		t.Fatalf("tiny step moved temperature to %v", got)
	}
	if got := RCInterp(100, 50, 1.0, 100); math.Abs(got-100) > 1e-6 {
		t.Fatalf("long step reached %v, want 100", got)
	}
	// One time constant covers 1 − 1/e of the gap.
	got := RCInterp(100, 50, 2.0, 2.0)
	want := 100 - 50*math.Exp(-1)
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("one-τ step = %v, want %v", got, want)
	}
}

func TestDieTimeConstantRange(t *testing.T) {
	nw := newTestNetwork(t, floorplan.NewQuad())
	for i := 0; i < nw.NumDie(); i++ {
		tau := nw.DieTimeConstant(i)
		// Die-node constants are sub-millisecond to a few ms, far below the
		// 2 ms control period — the basis for the paper's Eq. (5) usage.
		if tau <= 0 || tau > 0.05 {
			t.Fatalf("component %d time constant %.4g s implausible", i, tau)
		}
	}
}

func TestSCC16PeakInCalibratedRange(t *testing.T) {
	// With ~126 W concentrated in core logic (the cholesky-16 base
	// scenario), the peak at fan level 1 must land in the high-80s/low-90s
	// and clear 95 °C at fan level 2 minus a margin — the regime Table I
	// and Fig. 4 operate in. Full calibration against Table I lives in the
	// workload/exp packages; this is the thermal-stack sanity band.
	chip := floorplan.NewSCC16()
	nw := newTestNetwork(t, chip)
	p := make([]float64, nw.NumDie())
	perCore := 126.0 / 16
	for core := 0; core < 16; core++ {
		for _, i := range chip.CoreComponents(core) {
			c := chip.Components[i]
			switch c.Kind {
			case floorplan.KindLogic:
				p[i] = perCore * 0.55 * c.Area() / 3.0
			case floorplan.KindArray:
				p[i] = perCore * 0.35 * c.Area() / 5.155
			default:
				p[i] = perCore * 0.10 * c.Area() / 1.205
			}
		}
	}
	temps, err := nw.Steady(p, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	_, peak := nw.PeakDie(temps)
	if peak < 75 || peak > 100 {
		t.Fatalf("SCC16 base peak %.2f °C outside the calibration band", peak)
	}
	temps2, _ := nw.Steady(p, 1, nil)
	_, peak2 := nw.PeakDie(temps2)
	if peak2-peak < 1 || peak2-peak > 15 {
		t.Fatalf("fan level 1→2 peak delta %.2f °C outside the Fig. 4 band", peak2-peak)
	}
}

// The backward-Euler integrator must track the closed-form single-node RC
// response T(t) = Ts + (T0 − Ts)·e^(−t/τ) that the paper's Eq. (4)/(5)
// interpolation is built on. We validate on the sink node after the fast
// states have equilibrated: its trajectory is a single exponential with
// τ = C_sink/G_conv.
func TestTransientMatchesAnalyticRC(t *testing.T) {
	chip := floorplan.NewQuad()
	nw := newTestNetwork(t, chip)
	p := uniformPower(nw, 30)
	steady, err := nw.Steady(p, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	dt := 0.05
	tr, err := nw.NewTransient(1, dt)
	if err != nil {
		t.Fatal(err)
	}
	temps := make([]float64, nw.NumNodes())
	for i := range temps {
		temps[i] = nw.Params.AmbientC
	}
	// Let the die/spreader states settle (they are ~1000× faster).
	for i := 0; i < 40; i++ {
		tr.Step(temps, p, nil)
	}
	sink := nw.SinkNode()
	t0 := temps[sink]
	ts := steady[sink]
	tau := nw.Fan.SinkCapacity / nw.Fan.Conductance(1)
	// March one time constant and compare against the exponential. The
	// backward-Euler discretization factor (1+dt/τ)^-n replaces e^(−t/τ);
	// at dt = τ/400 they differ by <0.2 %.
	steps := int(tau / dt)
	for i := 0; i < steps; i++ {
		tr.Step(temps, p, nil)
	}
	elapsed := float64(steps) * dt
	want := ts + (t0-ts)*math.Exp(-elapsed/tau)
	if math.Abs(temps[sink]-want) > 0.05*(ts-t0) {
		t.Fatalf("sink after 1τ: %.3f, analytic %.3f (T0=%.3f Ts=%.3f)", temps[sink], want, t0, ts)
	}
}

func TestSteadyFactorCachedPerFanLevel(t *testing.T) {
	nw := newTestNetwork(t, floorplan.NewQuad())
	p := uniformPower(nw, 20)
	// Two solves at the same level share the factorization (same result,
	// exercised via the cache map); a different level yields different
	// temperatures.
	t1, err := nw.Steady(p, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	t2, err := nw.Steady(p, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := range t1 {
		if t1[i] != t2[i] {
			t.Fatal("repeated steady solve not deterministic")
		}
	}
	t3, _ := nw.Steady(p, 3, nil)
	if t3[nw.SinkNode()] <= t1[nw.SinkNode()] {
		t.Fatal("slower fan level did not warm the sink")
	}
}

func TestAmbientShiftsEverything(t *testing.T) {
	chip := floorplan.NewQuad()
	p1 := DefaultParams()
	p2 := DefaultParams()
	p2.AmbientC = p1.AmbientC + 10
	nw1 := NewNetwork(chip, fan.DynatronR16(), p1)
	nw2 := NewNetwork(chip, fan.DynatronR16(), p2)
	pw := uniformPower(nw1, 25)
	t1, _ := nw1.Steady(pw, 1, nil)
	t2, _ := nw2.Steady(pw, 1, nil)
	// A pure-conduction network shifts rigidly with ambient (Peltier off).
	for i := range t1 {
		if math.Abs((t2[i]-t1[i])-10) > 1e-6 {
			t.Fatalf("node %d shifted by %.4f, want 10", i, t2[i]-t1[i])
		}
	}
}

func TestSteadyIntoWarmStartFewerIterations(t *testing.T) {
	chip := floorplan.NewQuad()
	nw := newTestNetwork(t, chip)
	ts := tec.NewState(tec.Array(chip, tec.DefaultDevice()))
	for _, l := range ts.CoreDevices(0) {
		ts.Set(l, true)
	}
	ts.Advance(1)
	p := uniformPower(nw, 30)
	cold, err := nw.Steady(p, 1, ts)
	if err != nil {
		t.Fatal(err)
	}
	// Warm start from the solution: SteadyInto must converge immediately
	// and leave the answer unchanged.
	warm := append([]float64(nil), cold...)
	if err := nw.SteadyInto(warm, p, 1, ts); err != nil {
		t.Fatal(err)
	}
	for i := range warm {
		// One Peltier refinement pass from the converged point moves the
		// solution by at most the fixed-point tolerance.
		if math.Abs(warm[i]-cold[i]) > 2e-3 {
			t.Fatalf("warm start drifted at node %d: %v vs %v", i, warm[i], cold[i])
		}
	}
}
