package thermal

import (
	"fmt"
	"math"

	"tecfan/internal/fan"
	"tecfan/internal/floorplan"
	"tecfan/internal/linalg"
	"tecfan/internal/tec"
)

// Grid is the fine-resolution validation model: the same layered stack as
// Network, but with the die discretized into a uniform cell grid instead of
// one node per floorplan component — the analogue of HotSpot's grid mode
// versus its block mode. It exists to validate the compact model: the
// experiments run on Network (fast, control-oriented); Grid checks that
// lumping components into single nodes does not distort peaks or gradients
// (see TestGridValidatesCompactModel).
type Grid struct {
	Chip   *floorplan.Chip
	Fan    *fan.Model
	Params Params

	Nx, Ny int     // cells across / down the die
	Cell   float64 // cell edge, mm (square cells)

	n            int // total nodes: Nx*Ny die cells + cores + 1 sink
	spreaderBase int
	sinkNode     int
	mat          *linalg.CSR // conduction matrix, fan leg excluded
	// cover[c] lists (cell, fraction-of-component-area) for component c.
	cover [][]cellFrac
}

type cellFrac struct {
	cell int
	frac float64
}

// NewGrid discretizes the chip at the given cell size (mm). Cell sizes that
// do not divide the die evenly are shrunk to the next exact divisor.
func NewGrid(chip *floorplan.Chip, fm *fan.Model, p Params, cellMM float64) (*Grid, error) {
	if cellMM <= 0 {
		return nil, fmt.Errorf("thermal: non-positive cell size")
	}
	nx := int(math.Ceil(chip.W / cellMM))
	ny := int(math.Ceil(chip.H / cellMM))
	g := &Grid{
		Chip: chip, Fan: fm, Params: p,
		Nx: nx, Ny: ny,
		Cell:         chip.W / float64(nx), // exact divisor of the width
		spreaderBase: nx * ny,
		sinkNode:     nx*ny + chip.NumCores(),
	}
	// Use independent x/y cell dimensions if the aspect ratio demands it;
	// here the floorplan is close enough to square cells that forcing the
	// width divisor and checking height coverage suffices.
	g.n = g.sinkNode + 1
	g.assemble()
	g.computeCover()
	return g, nil
}

// cellIndex maps grid coordinates to a node index.
func (g *Grid) cellIndex(ix, iy int) int { return iy*g.Nx + ix }

// cellDims returns the physical cell dimensions (mm).
func (g *Grid) cellDims() (w, h float64) {
	return g.Chip.W / float64(g.Nx), g.Chip.H / float64(g.Ny)
}

// coreOfCell returns the core tile containing a cell's centre.
func (g *Grid) coreOfCell(ix, iy int) int {
	cw, ch := g.cellDims()
	cx := (float64(ix) + 0.5) * cw
	cy := (float64(iy) + 0.5) * ch
	col := int(cx / floorplan.TileW)
	row := int(cy / floorplan.TileH)
	if col >= g.Chip.TileCols {
		col = g.Chip.TileCols - 1
	}
	if row >= g.Chip.TileRows {
		row = g.Chip.TileRows - 1
	}
	return row*g.Chip.TileCols + col
}

// assemble builds the conduction matrix.
func (g *Grid) assemble() {
	p := g.Params
	cw, ch := g.cellDims()
	var items []linalg.Coord
	add := func(a, b int, cond float64) {
		items = append(items,
			linalg.Coord{Row: a, Col: a, Val: cond},
			linalg.Coord{Row: b, Col: b, Val: cond},
			linalg.Coord{Row: a, Col: b, Val: -cond},
			linalg.Coord{Row: b, Col: a, Val: -cond},
		)
	}
	// Lateral die conduction between adjacent cells.
	gx := p.DieConductivity * p.DieThickness * (ch * mm) / (cw * mm)
	gy := p.DieConductivity * p.DieThickness * (cw * mm) / (ch * mm)
	for iy := 0; iy < g.Ny; iy++ {
		for ix := 0; ix < g.Nx; ix++ {
			c := g.cellIndex(ix, iy)
			if ix+1 < g.Nx {
				add(c, g.cellIndex(ix+1, iy), gx)
			}
			if iy+1 < g.Ny {
				add(c, g.cellIndex(ix, iy+1), gy)
			}
		}
	}
	// Vertical die → spreader region per cell.
	rVert := p.DieThickness/p.DieConductivity + p.TIMThickness/p.TIMConductivity
	cellArea := cw * ch * mm * mm
	for iy := 0; iy < g.Ny; iy++ {
		for ix := 0; ix < g.Nx; ix++ {
			add(g.cellIndex(ix, iy), g.spreaderBase+g.coreOfCell(ix, iy), cellArea/rVert)
		}
	}
	// Spreader lateral + vertical, identical to the compact model.
	for core := 0; core < g.Chip.NumCores(); core++ {
		row := core / g.Chip.TileCols
		col := core % g.Chip.TileCols
		sp := g.spreaderBase + core
		add(sp, g.sinkNode, p.RegionSinkConductance)
		if col+1 < g.Chip.TileCols {
			l := floorplan.TileH * mm
			d := floorplan.TileW * mm
			add(sp, sp+1, p.SpreaderConductivity*p.SpreaderThickness*l/d*p.SpreaderLateralScale)
		}
		if row+1 < g.Chip.TileRows {
			l := floorplan.TileW * mm
			d := floorplan.TileH * mm
			add(sp, sp+g.Chip.TileCols, p.SpreaderConductivity*p.SpreaderThickness*l/d*p.SpreaderLateralScale)
		}
	}
	g.mat = linalg.NewCSR(g.n, items)
}

// computeCover precomputes component→cell area overlaps.
func (g *Grid) computeCover() {
	cw, ch := g.cellDims()
	g.cover = make([][]cellFrac, len(g.Chip.Components))
	for ci, comp := range g.Chip.Components {
		x0 := int(comp.X / cw)
		x1 := int(math.Ceil((comp.X + comp.W) / cw))
		y0 := int(comp.Y / ch)
		y1 := int(math.Ceil((comp.Y + comp.H) / ch))
		if x1 > g.Nx {
			x1 = g.Nx
		}
		if y1 > g.Ny {
			y1 = g.Ny
		}
		area := comp.Area()
		for iy := y0; iy < y1; iy++ {
			for ix := x0; ix < x1; ix++ {
				ox := math.Min(float64(ix+1)*cw, comp.X+comp.W) - math.Max(float64(ix)*cw, comp.X)
				oy := math.Min(float64(iy+1)*ch, comp.Y+comp.H) - math.Max(float64(iy)*ch, comp.Y)
				if ox > 0 && oy > 0 {
					g.cover[ci] = append(g.cover[ci], cellFrac{
						cell: g.cellIndex(ix, iy),
						frac: ox * oy / area,
					})
				}
			}
		}
	}
}

// NumCells returns the die cell count.
func (g *Grid) NumCells() int { return g.Nx * g.Ny }

// Steady solves the grid model for per-component powers (uniform density
// within each component) at a fan level. It returns per-node temperatures
// (cells first) via Jacobi-preconditioned CG.
func (g *Grid) Steady(compPower []float64, fanLevel int) ([]float64, error) {
	return g.SteadyTEC(compPower, fanLevel, nil)
}

// SteadyTEC is Steady with embedded TEC devices: engaged devices pump
// Peltier heat from the die cells they cover (exact device footprints on
// the grid, finer than the compact model's per-component apportioning)
// into their core's spreader region, plus split Joule heat. The linear
// Peltier terms are converged by the same fixed-point iteration the
// compact model uses.
func (g *Grid) SteadyTEC(compPower []float64, fanLevel int, ts *tec.State) ([]float64, error) {
	if len(compPower) != len(g.Chip.Components) {
		return nil, fmt.Errorf("thermal: power vector length %d, want %d", len(compPower), len(g.Chip.Components))
	}
	base := make([]float64, g.n)
	for ci, p := range compPower {
		for _, cf := range g.cover[ci] {
			base[cf.cell] += p * cf.frac
		}
	}
	gconv := g.Fan.Conductance(fanLevel)
	base[g.sinkNode] += gconv * g.Params.AmbientC

	mat := linalg.NewCSR(g.n, append(g.coords(), linalg.Coord{Row: g.sinkNode, Col: g.sinkNode, Val: gconv}))
	t := make([]float64, g.n)
	for i := range t {
		t[i] = g.Params.AmbientC
	}
	rhs := make([]float64, g.n)
	for iter := 0; iter < 50; iter++ {
		copy(rhs, base)
		g.peltierRHS(rhs, t, ts)
		prevPeak := maxSlice(t[:g.NumCells()])
		res := mat.SolveCG(rhs, t, linalg.CGOptions{Tol: 1e-9, MaxIter: 20 * g.n})
		if !res.Converged {
			return nil, fmt.Errorf("thermal: grid CG did not converge (residual %g)", res.Residual)
		}
		if ts == nil || math.Abs(maxSlice(t[:g.NumCells()])-prevPeak) < 1e-3 {
			return t, nil
		}
	}
	return nil, fmt.Errorf("thermal: grid Peltier fixed point did not converge")
}

// peltierRHS adds TEC source terms at grid resolution: each engaged device
// extracts Peltier heat from the cells under its exact footprint.
func (g *Grid) peltierRHS(rhs, t []float64, ts *tec.State) {
	if ts == nil {
		return
	}
	cw, ch := g.cellDims()
	for l := 0; l < ts.Len(); l++ {
		i := ts.Current(l)
		if i <= 0 {
			continue
		}
		pl := ts.Placement(l)
		sp := g.spreaderBase + pl.Core
		joule := pl.Device.JouleHeat(i)
		rhs[sp] += 0.5 * joule
		pump := ts.Engaged(l)
		// Cells overlapped by the device footprint.
		x0 := int(pl.X / cw)
		x1 := int(math.Ceil((pl.X + pl.Device.Width) / cw))
		y0 := int(pl.Y / ch)
		y1 := int(math.Ceil((pl.Y + pl.Device.Height) / ch))
		if x1 > g.Nx {
			x1 = g.Nx
		}
		if y1 > g.Ny {
			y1 = g.Ny
		}
		devArea := pl.Device.Width * pl.Device.Height
		for iy := y0; iy < y1; iy++ {
			for ix := x0; ix < x1; ix++ {
				ox := math.Min(float64(ix+1)*cw, pl.X+pl.Device.Width) - math.Max(float64(ix)*cw, pl.X)
				oy := math.Min(float64(iy+1)*ch, pl.Y+pl.Device.Height) - math.Max(float64(iy)*ch, pl.Y)
				if ox <= 0 || oy <= 0 {
					continue
				}
				frac := ox * oy / devArea
				cell := g.cellIndex(ix, iy)
				rhs[cell] += 0.5 * joule * frac
				if pump {
					q := pl.Device.PumpCoefficient(i) * frac * (t[cell] + 273.15)
					rhs[cell] -= q
					rhs[sp] += q
				}
			}
		}
	}
}

func maxSlice(xs []float64) float64 {
	m := math.Inf(-1)
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}

// coords re-extracts the base matrix triplets (cheap relative to the solve).
func (g *Grid) coords() []linalg.Coord {
	out := make([]linalg.Coord, 0, g.mat.NNZ())
	for r := 0; r < g.mat.N; r++ {
		for k := g.mat.RowPtr[r]; k < g.mat.RowPtr[r+1]; k++ {
			out = append(out, linalg.Coord{Row: r, Col: g.mat.ColIdx[k], Val: g.mat.Vals[k]})
		}
	}
	return out
}

// capacities returns the per-node heat capacities of the grid stack.
func (g *Grid) capacities() []float64 {
	p := g.Params
	cw, ch := g.cellDims()
	capn := make([]float64, g.n)
	cellCap := p.DieVolHeat * (cw * mm) * (ch * mm) * p.DieThickness * p.DieCapScale
	for i := 0; i < g.NumCells(); i++ {
		capn[i] = cellCap
	}
	tileArea := floorplan.TileW * floorplan.TileH * mm * mm
	for core := 0; core < g.Chip.NumCores(); core++ {
		capn[g.spreaderBase+core] = p.SpreaderVolHeat * tileArea * p.SpreaderAreaScale * p.SpreaderThickness
	}
	capn[g.sinkNode] = g.Fan.SinkCapacity
	return capn
}

// GridTransient integrates the grid model with backward Euler; each step
// solves the SPD system (C/dt + G)·T' = C/dt·T + P with CG, warm-started
// from the previous field.
type GridTransient struct {
	g    *Grid
	mat  *linalg.CSR
	capn []float64
	dt   float64
	rhs  []float64
}

// NewTransient builds a grid integrator for a fan level and step.
func (g *Grid) NewTransient(fanLevel int, dt float64) (*GridTransient, error) {
	if dt <= 0 {
		return nil, fmt.Errorf("thermal: non-positive dt")
	}
	capn := g.capacities()
	items := g.coords()
	items = append(items, linalg.Coord{Row: g.sinkNode, Col: g.sinkNode, Val: g.Fan.Conductance(fanLevel)})
	for i, c := range capn {
		items = append(items, linalg.Coord{Row: i, Col: i, Val: c / dt})
	}
	return &GridTransient{
		g:    g,
		mat:  linalg.NewCSR(g.n, items),
		capn: capn,
		dt:   dt,
		rhs:  make([]float64, g.n),
	}, nil
}

// Step advances t in place by one dt under per-component powers and a fan
// level fixed at construction.
func (tr *GridTransient) Step(t []float64, compPower []float64, fanLevel int) error {
	g := tr.g
	if len(compPower) != len(g.Chip.Components) || len(t) != g.n {
		return fmt.Errorf("thermal: grid transient shape mismatch")
	}
	for i := range tr.rhs {
		tr.rhs[i] = tr.capn[i] / tr.dt * t[i]
	}
	for ci, p := range compPower {
		for _, cf := range g.cover[ci] {
			tr.rhs[cf.cell] += p * cf.frac
		}
	}
	tr.rhs[g.sinkNode] += g.Fan.Conductance(fanLevel) * g.Params.AmbientC
	res := tr.mat.SolveCG(tr.rhs, t, linalg.CGOptions{Tol: 1e-9, MaxIter: 10 * g.n})
	if !res.Converged {
		return fmt.Errorf("thermal: grid transient CG stalled (residual %g)", res.Residual)
	}
	return nil
}

// PeakCell returns the hottest die cell and its temperature.
func (g *Grid) PeakCell(t []float64) (cell int, tC float64) {
	cell, tC = -1, math.Inf(-1)
	for i := 0; i < g.NumCells(); i++ {
		if t[i] > tC {
			cell, tC = i, t[i]
		}
	}
	return cell, tC
}

// ComponentMean returns the area-weighted mean temperature of a component's
// cells — directly comparable to the compact model's node temperature.
func (g *Grid) ComponentMean(t []float64, comp int) float64 {
	var sum, fr float64
	for _, cf := range g.cover[comp] {
		sum += t[cf.cell] * cf.frac
		fr += cf.frac
	}
	if fr == 0 {
		return math.NaN()
	}
	return sum / fr
}
