package schedfile

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

type doc struct {
	Seed  int64 `json:"seed"`
	Rules []struct {
		Action string `json:"action"`
	} `json:"rules"`
}

func (d *doc) validate() error {
	for i, r := range d.Rules {
		if r.Action == "" {
			return fmt.Errorf("rule %d: missing action", i)
		}
	}
	return nil
}

func write(t *testing.T, body string) string {
	t.Helper()
	p := filepath.Join(t.TempDir(), "sched.json")
	if err := os.WriteFile(p, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestLoadOK(t *testing.T) {
	p := write(t, `{"seed": 7, "rules": [{"action": "nan"}]}`)
	var d doc
	if err := Load(p, &d, d.validate); err != nil {
		t.Fatalf("Load: %v", err)
	}
	if d.Seed != 7 || len(d.Rules) != 1 {
		t.Fatalf("decoded %+v", d)
	}
}

func TestLoadErrorsCarryPath(t *testing.T) {
	cases := []struct {
		name, body, want string
	}{
		{"malformed", `{"seed": `, "sched.json"},
		{"unknown field", `{"sede": 7}`, `unknown field "sede"`},
		{"trailing content", `{"seed": 7} {"seed": 8}`, "trailing content"},
		{"validation", `{"rules": [{"action": ""}]}`, "rule 0: missing action"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			p := write(t, c.body)
			var d doc
			err := Load(p, &d, d.validate)
			if err == nil {
				t.Fatal("Load accepted a bad document")
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Fatalf("error %q does not mention %q", err, c.want)
			}
			if !strings.Contains(err.Error(), p) {
				t.Fatalf("error %q does not carry the path %q", err, p)
			}
		})
	}
}

func TestLoadMissingFile(t *testing.T) {
	p := filepath.Join(t.TempDir(), "absent.json")
	var d doc
	err := Load(p, &d, nil)
	if err == nil || !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("want wrapped ErrNotExist, got %v", err)
	}
	if !strings.Contains(err.Error(), p) {
		t.Fatalf("error %q does not carry the path", err)
	}
}
