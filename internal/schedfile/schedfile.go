// Package schedfile is the one way fault-schedule files enter the process.
// Before it existed, netfault, diskfault, and numfault each had their own
// ReadFile+ParseSchedule convention with three different error shapes; a typo
// in a drill's JSON produced "unexpected end of JSON input" with no hint of
// which file or which rule. Load gives every schedule the same contract:
// strict decoding (unknown fields are typos, not extensions), the file path on
// every error, and the injector's own rule-index context preserved through
// validation. The campaign spec (internal/campaign) loads through the same
// door, so a composite spec that embeds all three schedules reports errors
// like "schedule specs/compound.json: diskfault: rule 2: unknown action".
package schedfile

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
)

// Load reads a JSON schedule from path, strictly decodes it into v, and runs
// validate. Every error — unreadable file, malformed JSON, unknown field,
// failed validation — is wrapped with the file path so a drill failure names
// the document at fault.
func Load(path string, v any, validate func() error) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("schedule %s: %w", path, err)
	}
	return Parse(path, data, v, validate)
}

// Parse decodes data into v under the same strict rules as Load, labeling
// errors with name (a path or any other provenance string). Unknown fields
// and trailing content after the document are rejected: a schedule file is a
// single JSON object and a misspelled key must fail loudly, not silently
// disable the rule it was meant to configure.
func Parse(name string, data []byte, v any, validate func() error) error {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("schedule %s: %w", name, err)
	}
	if dec.More() {
		return fmt.Errorf("schedule %s: trailing content after the JSON document", name)
	}
	if validate != nil {
		if err := validate(); err != nil {
			return fmt.Errorf("schedule %s: %w", name, err)
		}
	}
	return nil
}
