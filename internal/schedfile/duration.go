package schedfile

import (
	"encoding/json"
	"fmt"
	"time"
)

// Duration is a time.Duration that accepts both Go duration strings ("30ms")
// and nanosecond numbers in JSON, so schedule files stay human-writable. It
// began life in netfault; every schedule format (net, clock, campaign) now
// shares this one definition through the same loader door.
type Duration time.Duration

// UnmarshalJSON accepts "250ms"-style strings or integer nanoseconds.
func (d *Duration) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err == nil {
		v, err := time.ParseDuration(s)
		if err != nil {
			return fmt.Errorf("schedfile: bad duration %q: %w", s, err)
		}
		*d = Duration(v)
		return nil
	}
	var n int64
	if err := json.Unmarshal(b, &n); err != nil {
		return fmt.Errorf("schedfile: bad duration %s", b)
	}
	*d = Duration(n)
	return nil
}

// MarshalJSON emits the string form.
func (d Duration) MarshalJSON() ([]byte, error) {
	return json.Marshal(time.Duration(d).String())
}

// Std returns the wrapped time.Duration.
func (d Duration) Std() time.Duration { return time.Duration(d) }
