package benchgate

import (
	"bytes"
	"os"
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: tecfan
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkSteadySolve       	     100	    212484 ns/op	   29904 B/op	       0 allocs/op
BenchmarkTransientStep-8   	     100	    159630 ns/op	       0 B/op	       0 allocs/op
BenchmarkSystolic-8        	     100	        52.91 ns/op	        36.00 MACs/eval	       0 B/op	       0 allocs/op
PASS
ok  	tecfan	0.117s
`

func TestParseGoBench(t *testing.T) {
	got, err := ParseGoBench(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3: %v", len(got), got)
	}
	ts, ok := got["BenchmarkTransientStep"]
	if !ok {
		t.Fatal("GOMAXPROCS suffix not stripped")
	}
	if ts.NsPerOp != 159630 || ts.AllocsPerOp != 0 {
		t.Fatalf("TransientStep = %+v", ts)
	}
	// The custom MACs/eval metric must not displace the real ones.
	if sys := got["BenchmarkSystolic"]; sys.NsPerOp != 52.91 || sys.BytesPerOp != 0 {
		t.Fatalf("Systolic = %+v", sys)
	}
}

func TestMedianOddEven(t *testing.T) {
	runs := []map[string]Metrics{
		{"A": {NsPerOp: 100, AllocsPerOp: 1}},
		{"A": {NsPerOp: 300, AllocsPerOp: 1}},
		{"A": {NsPerOp: 200, AllocsPerOp: 1}, "B": {NsPerOp: 10}},
	}
	m := Median(runs)
	if m["A"].NsPerOp != 200 {
		t.Fatalf("odd median = %v, want 200", m["A"].NsPerOp)
	}
	// B appears in one run only: reduced over what exists.
	if m["B"].NsPerOp != 10 {
		t.Fatalf("sparse median = %v, want 10", m["B"].NsPerOp)
	}
	even := Median(runs[:2])
	if even["A"].NsPerOp != 200 {
		t.Fatalf("even median = %v, want 200", even["A"].NsPerOp)
	}
}

func TestCompareAllocsGateEverywhere(t *testing.T) {
	base := &Baseline{Schema: Schema, CPU: "cpuA",
		Benchmarks: map[string]Metrics{"BenchmarkX": {NsPerOp: 100, AllocsPerOp: 0}}}
	cur := &Baseline{Schema: Schema, CPU: "cpuB", // different machine
		Benchmarks: map[string]Metrics{"BenchmarkX": {NsPerOp: 500, AllocsPerOp: 2}}}
	regs := Compare(base, cur, 0.15)
	if len(regs) != 1 || regs[0].Metric != "allocs/op" {
		t.Fatalf("want exactly the allocs regression on a foreign CPU, got %v", regs)
	}
}

func TestCompareNsGatesOnlyOnMatchingCPU(t *testing.T) {
	base := &Baseline{Schema: Schema, CPU: "cpuA",
		Benchmarks: map[string]Metrics{"BenchmarkX": {NsPerOp: 100}}}
	within := &Baseline{Schema: Schema, CPU: "cpuA",
		Benchmarks: map[string]Metrics{"BenchmarkX": {NsPerOp: 114}}}
	if regs := Compare(base, within, 0.15); len(regs) != 0 {
		t.Fatalf("+14%% inside the band flagged: %v", regs)
	}
	beyond := &Baseline{Schema: Schema, CPU: "cpuA",
		Benchmarks: map[string]Metrics{"BenchmarkX": {NsPerOp: 120}}}
	regs := Compare(base, beyond, 0.15)
	if len(regs) != 1 || regs[0].Metric != "ns/op" {
		t.Fatalf("+20%% on a matching CPU not flagged: %v", regs)
	}
}

func TestCompareMissingBenchmark(t *testing.T) {
	base := &Baseline{Schema: Schema, CPU: "c",
		Benchmarks: map[string]Metrics{"BenchmarkGone": {NsPerOp: 1}}}
	cur := &Baseline{Schema: Schema, CPU: "c", Benchmarks: map[string]Metrics{}}
	regs := Compare(base, cur, 0.15)
	if len(regs) != 1 || regs[0].Metric != "missing" {
		t.Fatalf("dropped benchmark not flagged: %v", regs)
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	b := &Baseline{Schema: Schema, CPU: "c",
		Benchmarks: map[string]Metrics{"BenchmarkX": {NsPerOp: 1.5, BytesPerOp: 16, AllocsPerOp: 1}}}
	var buf bytes.Buffer
	if err := b.Save(&buf); err != nil {
		t.Fatal(err)
	}
	path := t.TempDir() + "/b.json"
	if err := writeFile(path, buf.Bytes()); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.CPU != b.CPU || got.Benchmarks["BenchmarkX"] != b.Benchmarks["BenchmarkX"] {
		t.Fatalf("round trip: %+v", got)
	}
	// Wrong schema refuses.
	if err := writeFile(path, []byte(`{"schema":99,"cpu":"c","benchmarks":{"B":{}}}`)); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(path); err == nil {
		t.Fatal("schema 99 accepted")
	}
}

func writeFile(path string, data []byte) error {
	return os.WriteFile(path, data, 0o644)
}
