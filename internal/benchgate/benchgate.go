// Package benchgate implements the performance regression gate behind
// `tecfan-bench -gobench -gate` and scripts/bench_gate.sh: it parses
// `go test -bench` output, reduces repeated runs to per-metric medians,
// and compares the result against a committed baseline (BENCH_10.json).
//
// The comparison policy encodes what each metric means for this repo:
//
//   - allocs/op regressions always fail. The hot-path allocation
//     discipline (DESIGN.md §18) holds steady-state allocation counts at
//     exact integers — usually zero — so any increase is a real code
//     change, never measurement noise, regardless of what machine the
//     gate runs on.
//   - ns/op regressions beyond the tolerance fail only when the current
//     CPU fingerprint matches the baseline's. Wall-time comparisons
//     across different machines are meaningless; across identical ones
//     the tolerance band absorbs scheduler jitter.
//   - a benchmark present in the baseline but missing from the current
//     run fails: silently dropping a benchmark is how a gate goes blind.
package benchgate

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

// Schema is the BENCH_*.json format version.
const Schema = 1

// Metrics holds one benchmark's measured values.
type Metrics struct {
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
}

// Baseline is the persisted form of one gate measurement (BENCH_10.json).
type Baseline struct {
	Schema     int                `json:"schema"`
	CPU        string             `json:"cpu"`
	Benchmarks map[string]Metrics `json:"benchmarks"`
}

// CPUFingerprint identifies the machine class a measurement was taken on,
// from the same source `go test -bench` prints in its cpu: banner.
func CPUFingerprint() string {
	model := "unknown"
	if data, err := os.ReadFile("/proc/cpuinfo"); err == nil {
		for _, line := range strings.Split(string(data), "\n") {
			if name, val, ok := strings.Cut(line, ":"); ok && strings.TrimSpace(name) == "model name" {
				model = strings.TrimSpace(val)
				break
			}
		}
	}
	return runtime.GOOS + "/" + runtime.GOARCH + " " + model
}

// ParseGoBench extracts per-benchmark metrics from one `go test -bench
// -benchmem` output stream. Benchmark names are normalized by stripping
// the -GOMAXPROCS suffix; non-benchmark lines (pkg banners, PASS, metric
// extensions like MACs/eval) are skipped.
func ParseGoBench(r io.Reader) (map[string]Metrics, error) {
	out := map[string]Metrics{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 4 {
			continue
		}
		name := fields[0]
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		var m Metrics
		seen := false
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch fields[i+1] {
			case "ns/op":
				m.NsPerOp = v
				seen = true
			case "B/op":
				m.BytesPerOp = v
			case "allocs/op":
				m.AllocsPerOp = v
			}
		}
		if seen {
			out[name] = m
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("benchgate: reading bench output: %w", err)
	}
	return out, nil
}

// Median reduces repeated runs to a per-benchmark, per-metric median —
// the standard defense against a single noisy run. A benchmark missing
// from some runs is reduced over the runs that have it.
func Median(runs []map[string]Metrics) map[string]Metrics {
	byName := map[string][]Metrics{}
	for _, run := range runs {
		for name, m := range run {
			byName[name] = append(byName[name], m)
		}
	}
	out := make(map[string]Metrics, len(byName))
	for name, ms := range byName {
		out[name] = Metrics{
			NsPerOp:     medianOf(ms, func(m Metrics) float64 { return m.NsPerOp }),
			BytesPerOp:  medianOf(ms, func(m Metrics) float64 { return m.BytesPerOp }),
			AllocsPerOp: medianOf(ms, func(m Metrics) float64 { return m.AllocsPerOp }),
		}
	}
	return out
}

func medianOf(ms []Metrics, get func(Metrics) float64) float64 {
	vals := make([]float64, len(ms))
	for i, m := range ms {
		vals[i] = get(m)
	}
	sort.Float64s(vals)
	n := len(vals)
	if n%2 == 1 {
		return vals[n/2]
	}
	return (vals[n/2-1] + vals[n/2]) / 2
}

// Regression is one gate failure.
type Regression struct {
	Benchmark string
	Metric    string // "ns/op", "allocs/op", or "missing"
	Base, Cur float64
	Detail    string
}

func (r Regression) String() string {
	if r.Metric == "missing" {
		return fmt.Sprintf("%s: present in baseline but not measured (%s)", r.Benchmark, r.Detail)
	}
	return fmt.Sprintf("%s: %s %.6g -> %.6g (%s)", r.Benchmark, r.Metric, r.Base, r.Cur, r.Detail)
}

// Compare gates cur against base with the given ns/op tolerance fraction
// (0.15 = +15%). See the package comment for the policy. Benchmarks new in
// cur pass silently — they gate once they enter the baseline.
func Compare(base, cur *Baseline, nsTol float64) []Regression {
	var regs []Regression
	names := make([]string, 0, len(base.Benchmarks))
	for name := range base.Benchmarks {
		names = append(names, name)
	}
	sort.Strings(names)
	sameCPU := base.CPU == cur.CPU
	for _, name := range names {
		b := base.Benchmarks[name]
		c, ok := cur.Benchmarks[name]
		if !ok {
			regs = append(regs, Regression{Benchmark: name, Metric: "missing",
				Detail: "a deleted or renamed benchmark must be removed from the baseline explicitly"})
			continue
		}
		if c.AllocsPerOp > b.AllocsPerOp {
			regs = append(regs, Regression{Benchmark: name, Metric: "allocs/op",
				Base: b.AllocsPerOp, Cur: c.AllocsPerOp,
				Detail: "allocation regressions gate on every machine"})
		}
		if sameCPU && b.NsPerOp > 0 && c.NsPerOp > b.NsPerOp*(1+nsTol) {
			regs = append(regs, Regression{Benchmark: name, Metric: "ns/op",
				Base: b.NsPerOp, Cur: c.NsPerOp,
				Detail: fmt.Sprintf("+%.1f%% exceeds the %.0f%% band on a matching CPU",
					100*(c.NsPerOp/b.NsPerOp-1), 100*nsTol)})
		}
	}
	return regs
}

// Load reads a baseline file and validates its schema.
func Load(path string) (*Baseline, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var b Baseline
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("benchgate: %s: %w", path, err)
	}
	if b.Schema != Schema {
		return nil, fmt.Errorf("benchgate: %s: schema %d, want %d", path, b.Schema, Schema)
	}
	if len(b.Benchmarks) == 0 {
		return nil, fmt.Errorf("benchgate: %s: no benchmarks", path)
	}
	return &b, nil
}

// Save writes a baseline as deterministic, diff-friendly JSON.
func (b *Baseline) Save(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(b)
}
