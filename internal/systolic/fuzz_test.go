package systolic

import (
	"math"
	"testing"
)

// FuzzQuantize checks the fixed-point format over arbitrary floats: the
// quantized value always lies within the representable range and within
// half a step of the input when the input is in range.
func FuzzQuantize(f *testing.F) {
	f.Add(0.0)
	f.Add(1.5)
	f.Add(-31.75)
	f.Add(1e300)
	f.Add(-1e300)
	f.Add(0.1249999)
	f.Fuzz(func(t *testing.T, x float64) {
		if math.IsNaN(x) {
			return
		}
		for _, q := range []Q{Q8, Q16} {
			raw := q.Quantize(x)
			v := q.Value(raw)
			if v > q.Max()+1e-9 || v < -q.Max()-q.Step()-1e-9 {
				t.Fatalf("%d-bit: %v quantized outside range: %v", q.Bits, x, v)
			}
			if math.Abs(x) <= q.Max() {
				if math.Abs(v-x) > q.Step()/2+1e-12 {
					t.Fatalf("%d-bit: in-range %v rounded to %v (step %v)", q.Bits, x, v, q.Step())
				}
			}
		}
	})
}
