// Package systolic is a cycle-level simulator of the §III-E temperature-
// evaluation hardware: a linear systolic array of fixed-point multiply-
// accumulate PEs that computes the band matrix-vector product Ĝ·T̂ for one
// core per pass (after Milovanović et al. [25], the paper's reference for
// space-optimal band mat-vec arrays). The paper budgets M×K = 54 eight-bit
// multipliers and argues the area/power are negligible; this package
// executes that design clock by clock, so the latency, MAC activity, and
// quantization error of the 8-bit encoding claim can be measured rather
// than asserted.
//
// Array layout: one PE per band diagonal (w = kl+ku+1 PEs). A row's partial
// sum enters PE 0 at cycle i, picks up one in-band product per PE as it
// marches, and emerges from PE w−1 at cycle i+w−1; rows stream back to back,
// so an n-row evaluation completes in n+w−1 cycles and a batch of b
// evaluations in b·n + w − 1.
package systolic

import (
	"fmt"
	"math"

	"tecfan/internal/linalg"
)

// Q is a signed fixed-point format with the given total bit width and
// fractional bits. The paper's claim is that 8-bit encoding suffices for
// temperature and energy comparison.
type Q struct {
	Bits int // total width incl. sign
	Frac int // fractional bits
}

// Q8 is the paper's 8-bit encoding, scaled for on-die temperatures:
// 1 integer step = 1 °C, quarter-degree resolution over ±16 °C around a
// bias point (values are stored relative to the ambient/bias).
var Q8 = Q{Bits: 8, Frac: 2}

// Q16 is the reference 16-bit format of the Bitirgen et al. datapoint.
var Q16 = Q{Bits: 16, Frac: 7}

// Step returns the quantization step.
func (q Q) Step() float64 { return math.Exp2(-float64(q.Frac)) }

// Max returns the largest representable value.
func (q Q) Max() float64 {
	return (math.Exp2(float64(q.Bits-1)) - 1) * q.Step()
}

// Quantize rounds x to the format, saturating at the representable range.
func (q Q) Quantize(x float64) int64 {
	scaled := math.Round(x / q.Step())
	lim := math.Exp2(float64(q.Bits-1)) - 1
	if scaled > lim {
		scaled = lim
	}
	if scaled < -lim-1 {
		scaled = -lim - 1
	}
	return int64(scaled)
}

// Value converts a raw quantized word back to float.
func (q Q) Value(raw int64) float64 { return float64(raw) * q.Step() }

// Stats reports one pass's hardware activity.
type Stats struct {
	Cycles int // clock cycles from first input to last output
	MACs   int // multiply-accumulates performed (in-band elements)
	PEs    int // array length (band width)
}

// Array is the configured systolic engine for one band matrix.
type Array struct {
	band *linalg.Banded
	q    Q
	// coeff holds the pre-quantized matrix entries, PE-major: coeff[p][i]
	// is the word PE p applies to row i (diagonal d = p − kl).
	coeff [][]int64
}

// New builds an array over the band matrix with matrix entries quantized in
// the given format. The conductance entries are scaled into range by the
// caller; New reports an error if any entry saturates.
func New(b *linalg.Banded, q Q) (*Array, error) {
	w := b.KL + b.KU + 1
	a := &Array{band: b, q: q, coeff: make([][]int64, w)}
	for p := 0; p < w; p++ {
		a.coeff[p] = make([]int64, b.N)
		d := p - b.KL
		for i := 0; i < b.N; i++ {
			j := i + d
			if j < 0 || j >= b.N {
				continue
			}
			v := b.At(i, j)
			raw := q.Quantize(v)
			if got := q.Value(raw); math.Abs(got-v) > q.Step() {
				return nil, fmt.Errorf("systolic: entry (%d,%d)=%g saturates %d-bit format", i, j, v, q.Bits)
			}
			a.coeff[p][i] = raw
		}
	}
	return a, nil
}

// PEs returns the array length.
func (a *Array) PEs() int { return a.band.KL + a.band.KU + 1 }

// pe is one processing element's pipeline register.
type pe struct {
	row   int
	acc   int64
	valid bool
}

// MulVec streams the quantized vector x through the array and returns the
// de-quantized product y along with the cycle/MAC statistics. The products
// are formed at double width and accumulated exactly, as the hardware's
// accumulator chain would.
func (a *Array) MulVec(x []float64, y []float64) (Stats, error) {
	n := a.band.N
	if len(x) != n || len(y) != n {
		return Stats{}, fmt.Errorf("systolic: vector length %d/%d, want %d", len(x), len(y), n)
	}
	w := a.PEs()
	xq := make([]int64, n)
	for i, v := range x {
		xq[i] = a.q.Quantize(v)
	}
	regs := make([]pe, w)
	st := Stats{PEs: w}
	outputs := 0
	for cycle := 0; outputs < n; cycle++ {
		st.Cycles++
		// Shift the pipeline (back to front) and apply each PE's MAC.
		for p := w - 1; p > 0; p-- {
			regs[p] = regs[p-1]
			if regs[p].valid {
				a.mac(&regs[p], p, xq, &st)
			}
		}
		// Feed a new row into PE 0.
		if cycle < n {
			regs[0] = pe{row: cycle, valid: true}
			a.mac(&regs[0], 0, xq, &st)
		} else {
			regs[0] = pe{}
		}
		// The last PE's register now holds a completed row: drain it.
		if regs[w-1].valid {
			// Accumulator is at step² scale (product of two quantized words).
			y[regs[w-1].row] = float64(regs[w-1].acc) * a.q.Step() * a.q.Step()
			outputs++
			regs[w-1].valid = false
		}
	}
	return st, nil
}

// mac applies PE p's multiply-accumulate to the register's row.
func (a *Array) mac(r *pe, p int, xq []int64, st *Stats) {
	i := r.row
	j := i + (p - a.band.KL)
	if j < 0 || j >= len(xq) {
		return
	}
	if a.coeff[p][i] == 0 && !a.band.InBand(i, j) {
		return
	}
	r.acc += a.coeff[p][i] * xq[j]
	st.MACs++
}

// MulVecBatch streams b copies of the evaluation back to back (the §III-E
// design evaluates one core per pass, 16 cores per control period) and
// returns the aggregate statistics; rows from consecutive evaluations
// pipeline without bubbles, so total cycles ≈ b·n + w − 1.
func (a *Array) MulVecBatch(xs [][]float64, ys [][]float64) (Stats, error) {
	if len(xs) != len(ys) {
		return Stats{}, fmt.Errorf("systolic: %d inputs, %d outputs", len(xs), len(ys))
	}
	total := Stats{PEs: a.PEs()}
	for b := range xs {
		st, err := a.MulVec(xs[b], ys[b])
		if err != nil {
			return Stats{}, err
		}
		total.MACs += st.MACs
		if b == 0 {
			total.Cycles = st.Cycles
		} else {
			// Back-to-back streaming hides the pipeline fill of every pass
			// after the first.
			total.Cycles += a.band.N
		}
	}
	return total, nil
}

// QuantizationError returns the worst-case output error bound of the format
// for an n-row evaluation with inputs bounded by xMax and coefficients by
// aMax: each product contributes at most step·(xMax + aMax + step) error,
// and a row accumulates at most w of them.
func (a *Array) QuantizationError(xMax, aMax float64) float64 {
	s := a.q.Step()
	return float64(a.PEs()) * s * (xMax + aMax + s)
}
