package systolic

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"tecfan/internal/linalg"
)

func tridiag(n int, lo, di, hi float64) *linalg.Banded {
	b := linalg.NewBanded(n, 1, 1)
	for i := 0; i < n; i++ {
		b.Set(i, i, di)
		if i > 0 {
			b.Set(i, i-1, lo)
		}
		if i < n-1 {
			b.Set(i, i+1, hi)
		}
	}
	return b
}

func TestQuantizeRoundTrip(t *testing.T) {
	q := Q8
	for _, x := range []float64{0, 0.25, -0.25, 1, -3.75, 31.75} {
		raw := q.Quantize(x)
		if got := q.Value(raw); got != x {
			t.Fatalf("representable %v round-tripped to %v", x, got)
		}
	}
	// Step and range.
	if q.Step() != 0.25 {
		t.Fatalf("Q8 step %v", q.Step())
	}
	if q.Max() != 31.75 {
		t.Fatalf("Q8 max %v", q.Max())
	}
	// Saturation.
	if got := q.Value(q.Quantize(1000)); got != q.Max() {
		t.Fatalf("positive saturation %v", got)
	}
	if got := q.Value(q.Quantize(-1000)); got != -q.Max()-q.Step() {
		t.Fatalf("negative saturation %v", got)
	}
}

func TestQuantizeRounding(t *testing.T) {
	q := Q8
	if q.Quantize(0.13) != 1 { // nearest multiple of 0.25 is 0.25
		t.Fatalf("rounding wrong: %d", q.Quantize(0.13))
	}
	if q.Quantize(0.12) != 0 {
		t.Fatalf("rounding wrong: %d", q.Quantize(0.12))
	}
}

func TestArrayMatchesFloatMulVec(t *testing.T) {
	n := 18 // the paper's M
	b := tridiag(n, -0.5, 1.25, -0.75)
	a, err := New(b, Q16)
	if err != nil {
		t.Fatal(err)
	}
	x := make([]float64, n)
	for i := range x {
		x[i] = float64(i%7) - 3 // exactly representable in Q16
	}
	want := make([]float64, n)
	b.MulVec(x, want)
	got := make([]float64, n)
	st, err := a.MulVec(x, got)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-9 {
			t.Fatalf("row %d: systolic %v vs float %v", i, got[i], want[i])
		}
	}
	// Classic pipeline latency: n + w − 1 cycles.
	if st.Cycles != n+a.PEs()-1 {
		t.Fatalf("cycles = %d, want %d", st.Cycles, n+a.PEs()-1)
	}
	// MAC count equals the in-band element count.
	if st.MACs != b.MACCount() {
		t.Fatalf("MACs = %d, band has %d elements", st.MACs, b.MACCount())
	}
	if st.PEs != 3 {
		t.Fatalf("PEs = %d, want 3 for a tridiagonal array", st.PEs)
	}
}

// Property: the systolic result tracks the float result within the
// analytical quantization bound for random banded systems.
func TestArrayQuantizationBound(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(20)
		kl := rng.Intn(3)
		ku := rng.Intn(3)
		b := linalg.NewBanded(n, kl, ku)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if b.InBand(i, j) {
					b.Set(i, j, rng.Float64()*4-2)
				}
			}
		}
		a, err := New(b, Q8)
		if err != nil {
			return false
		}
		x := make([]float64, n)
		for i := range x {
			x[i] = rng.Float64()*20 - 10
		}
		want := make([]float64, n)
		b.MulVec(x, want)
		got := make([]float64, n)
		if _, err := a.MulVec(x, got); err != nil {
			return false
		}
		bound := a.QuantizationError(10, 2)
		for i := range want {
			if math.Abs(got[i]-want[i]) > bound {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestArraySaturationRejected(t *testing.T) {
	b := tridiag(4, 0, 1e6, 0) // way outside Q8
	if _, err := New(b, Q8); err == nil {
		t.Fatal("saturating coefficients accepted")
	}
}

func TestMulVecShapeErrors(t *testing.T) {
	b := tridiag(5, -1, 2, -1)
	a, _ := New(b, Q16)
	if _, err := a.MulVec(make([]float64, 3), make([]float64, 5)); err == nil {
		t.Fatal("short input accepted")
	}
	if _, err := a.MulVec(make([]float64, 5), make([]float64, 3)); err == nil {
		t.Fatal("short output accepted")
	}
}

func TestBatchPipelining(t *testing.T) {
	// The §III-E usage: 16 cores' evaluations streamed back to back.
	n, cores := 18, 16
	b := tridiag(n, -0.5, 1.5, -0.5)
	a, _ := New(b, Q16)
	xs := make([][]float64, cores)
	ys := make([][]float64, cores)
	for c := range xs {
		xs[c] = make([]float64, n)
		ys[c] = make([]float64, n)
		for i := range xs[c] {
			xs[c][i] = float64((c+i)%9) - 4
		}
	}
	st, err := a.MulVecBatch(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	wantCycles := cores*n + a.PEs() - 1
	if st.Cycles != wantCycles {
		t.Fatalf("batch cycles = %d, want %d (b·n + w − 1)", st.Cycles, wantCycles)
	}
	// Each pass is correct.
	want := make([]float64, n)
	for c := range xs {
		b.MulVec(xs[c], want)
		for i := range want {
			if math.Abs(ys[c][i]-want[i]) > 1e-9 {
				t.Fatalf("batch %d row %d wrong", c, i)
			}
		}
	}
	if _, err := a.MulVecBatch(xs, ys[:3]); err == nil {
		t.Fatal("mismatched batch accepted")
	}
}

func TestPaperScaleClaim(t *testing.T) {
	// One 18-component core with K=3 neighbours (tridiagonal band) at 8
	// bits: 52 MACs per pass (the paper budgets M·K = 54 with edge rows
	// padded), 20 cycles of latency — a per-period cost of 16·18+2 = 290
	// cycles for the whole chip, trivially within a 2 ms period at any
	// plausible clock.
	b := tridiag(18, -0.4, 1.0, -0.4)
	a, err := New(b, Q8)
	if err != nil {
		t.Fatal(err)
	}
	x := make([]float64, 18)
	y := make([]float64, 18)
	st, _ := a.MulVec(x, y)
	if st.MACs > 54 {
		t.Fatalf("MACs %d exceed the paper's 54 budget", st.MACs)
	}
	if st.Cycles != 20 {
		t.Fatalf("latency %d cycles, want 20", st.Cycles)
	}
}
