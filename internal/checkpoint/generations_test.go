package checkpoint

import (
	"bytes"
	"errors"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"tecfan/internal/diskfault"
)

func TestGenStoreWriteRotateRead(t *testing.T) {
	dir := t.TempDir()
	g := NewGenStore(diskfault.OS, filepath.Join(dir, "job.ckpt"), 3, t.Logf)
	for i, s := range []string{"snap-1", "snap-2", "snap-3", "snap-4"} {
		if err := g.Write([]byte(s)); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
	}
	got, err := g.Read()
	if err != nil || string(got) != "snap-4" {
		t.Fatalf("Read = %q, %v", got, err)
	}
	// Generations hold the prior snapshots, newest first.
	for i, want := range []string{"snap-3", "snap-2"} {
		p, err := ReadFile(g.Paths()[i+1])
		if err != nil || string(p) != want {
			t.Fatalf("gen %d = %q, %v (want %q)", i+1, p, err, want)
		}
	}
	// Only keep generations exist; snap-1 was dropped.
	if _, err := os.Stat(g.Path() + ".g3"); !os.IsNotExist(err) {
		t.Fatalf("over-retained generation: %v", err)
	}
}

func TestGenStoreFallbackOnCorruptHead(t *testing.T) {
	dir := t.TempDir()
	g := NewGenStore(diskfault.OS, filepath.Join(dir, "job.ckpt"), 3, t.Logf)
	for _, s := range []string{"old", "newer", "newest"} {
		if err := g.Write([]byte(s)); err != nil {
			t.Fatal(err)
		}
	}
	// Flip a payload bit in the head; checksum must catch it.
	raw, _ := os.ReadFile(g.Path())
	raw[len(raw)-1] ^= 0x40
	if err := os.WriteFile(g.Path(), raw, 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := g.Read()
	if err != nil || string(got) != "newer" {
		t.Fatalf("fallback Read = %q, %v (want the .g1 snapshot)", got, err)
	}
	if _, err := os.Stat(g.Path() + ".bad-1"); err != nil {
		t.Fatalf("corrupt head not quarantined: %v", err)
	}
	if g.Quarantined() != 1 {
		t.Fatalf("Quarantined() = %d", g.Quarantined())
	}
}

func TestGenStoreAllCorrupt(t *testing.T) {
	dir := t.TempDir()
	g := NewGenStore(diskfault.OS, filepath.Join(dir, "job.ckpt"), 2, t.Logf)
	_ = g.Write([]byte("a"))
	_ = g.Write([]byte("b"))
	for _, p := range g.Paths() {
		if err := os.WriteFile(p, []byte("garbage"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := g.Read(); !errors.Is(err, ErrNoGeneration) {
		t.Fatalf("all-corrupt Read = %v, want ErrNoGeneration", err)
	}
}

func TestGenStoreMissingIsNotExist(t *testing.T) {
	g := NewGenStore(diskfault.OS, filepath.Join(t.TempDir(), "nope.ckpt"), 3, t.Logf)
	if _, err := g.Read(); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("missing Read = %v, want fs.ErrNotExist", err)
	}
}

func TestGenStoreCorruptHeadNotRotated(t *testing.T) {
	dir := t.TempDir()
	g := NewGenStore(diskfault.OS, filepath.Join(dir, "job.ckpt"), 3, t.Logf)
	if err := g.Write([]byte("good")); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(g.Path(), []byte("rot"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := g.Write([]byte("fresh")); err != nil {
		t.Fatal(err)
	}
	// The corrupt head must have been quarantined, not promoted to .g1.
	if p, err := ReadFile(g.Path() + ".g1"); err == nil && string(p) == "rot" {
		t.Fatal("corruption cycled into the generation chain")
	}
	if _, err := os.Stat(g.Path() + ".bad-1"); err != nil {
		t.Fatalf("corrupt head not quarantined on write: %v", err)
	}
	got, err := g.Read()
	if err != nil || string(got) != "fresh" {
		t.Fatalf("Read = %q, %v", got, err)
	}
}

func TestGenStoreScrubRepairs(t *testing.T) {
	dir := t.TempDir()
	g := NewGenStore(diskfault.OS, filepath.Join(dir, "job.ckpt"), 3, t.Logf)
	for _, s := range []string{"one", "two", "three"} {
		if err := g.Write([]byte(s)); err != nil {
			t.Fatal(err)
		}
	}
	// Rot the middle generation.
	if err := os.WriteFile(g.Path()+".g1", []byte("xxxx"), 0o644); err != nil {
		t.Fatal(err)
	}
	repaired, err := g.Scrub()
	if err != nil || repaired != 1 {
		t.Fatalf("Scrub = %d, %v (want 1 repair)", repaired, err)
	}
	// Repaired slot holds the newest good snapshot and verifies.
	p, err := ReadFile(g.Path() + ".g1")
	if err != nil || string(p) != "three" {
		t.Fatalf("repaired gen = %q, %v", p, err)
	}
	// The rotted bytes were quarantined for post-mortem.
	if _, err := os.Stat(g.Path() + ".g1.bad-1"); err != nil {
		t.Fatalf("rotted bytes not quarantined: %v", err)
	}
	// A second scrub finds nothing to do.
	if repaired, err := g.Scrub(); err != nil || repaired != 0 {
		t.Fatalf("second Scrub = %d, %v", repaired, err)
	}
}

func TestGenStoreRemoveAll(t *testing.T) {
	dir := t.TempDir()
	g := NewGenStore(diskfault.OS, filepath.Join(dir, "job.ckpt"), 3, t.Logf)
	for _, s := range []string{"a", "b", "c"} {
		_ = g.Write([]byte(s))
	}
	if err := g.RemoveAll(); err != nil {
		t.Fatal(err)
	}
	ents, _ := os.ReadDir(dir)
	for _, e := range ents {
		if !strings.Contains(e.Name(), ".bad") {
			t.Fatalf("leftover file %s after RemoveAll", e.Name())
		}
	}
}

func TestQuarantineUniqueNames(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "f.ckpt")
	for i := 1; i <= 3; i++ {
		if err := os.WriteFile(path, []byte("junk"), 0o644); err != nil {
			t.Fatal(err)
		}
		dst, err := Quarantine(diskfault.OS, path)
		if err != nil {
			t.Fatal(err)
		}
		want := path + ".bad-" + string(rune('0'+i))
		if dst != want {
			t.Fatalf("quarantine %d landed at %s, want %s", i, dst, want)
		}
	}
	for i := 1; i <= 3; i++ {
		if _, err := os.Stat(path + ".bad-" + string(rune('0'+i))); err != nil {
			t.Fatalf("quarantine %d clobbered: %v", i, err)
		}
	}
}

// FuzzGenerationFallback writes a chain of known snapshots, lets the fuzzer
// mangle the files on disk — truncations, bit flips, partial interleavings —
// and asserts the one invariant that matters: Read never returns a payload
// that is not exactly the newest still-verifiable snapshot. Wrong bytes with
// a nil error would be a silent wrong answer; any error is acceptable.
func FuzzGenerationFallback(f *testing.F) {
	f.Add(0, 0, uint8(0x01), int64(10))
	f.Add(1, 50, uint8(0x80), int64(-1))
	f.Add(2, 3, uint8(0xFF), int64(0))
	f.Fuzz(func(t *testing.T, which, offset int, flip uint8, truncate int64) {
		dir := t.TempDir()
		g := NewGenStore(diskfault.OS, filepath.Join(dir, "j.ckpt"), 3, nil)
		snaps := [][]byte{[]byte("snapshot-alpha"), []byte("snapshot-beta"), []byte("snapshot-gamma")}
		for _, s := range snaps {
			if err := g.Write(s); err != nil {
				t.Fatal(err)
			}
		}
		paths := g.Paths()
		// Mangle one generation as directed by the fuzz input.
		target := paths[abs(which)%len(paths)]
		raw, err := os.ReadFile(target)
		if err != nil {
			t.Fatal(err)
		}
		if truncate >= 0 && truncate < int64(len(raw)) {
			raw = raw[:truncate]
		}
		if len(raw) > 0 && flip != 0 {
			raw[abs(offset)%len(raw)] ^= flip
		}
		if err := os.WriteFile(target, raw, 0o644); err != nil {
			t.Fatal(err)
		}
		// Independently compute the newest generation that still verifies.
		var want []byte
		for _, p := range paths {
			if payload, err := ReadFileFS(diskfault.OS, p); err == nil {
				want = payload
				break
			}
		}
		got, err := g.Read()
		if err != nil {
			return // refusal is always acceptable
		}
		if want == nil {
			t.Fatalf("Read returned %q though no generation verifies", got)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("Read returned %q, newest verifiable generation holds %q", got, want)
		}
		// It must also be one of the snapshots we actually wrote.
		ok := false
		for _, s := range snaps {
			if bytes.Equal(got, s) {
				ok = true
			}
		}
		if !ok {
			t.Fatalf("Read returned %q, never a written snapshot", got)
		}
	})
}

func abs(x int) int {
	if x < 0 {
		if x == -x { // MinInt
			return 0
		}
		return -x
	}
	return x
}
