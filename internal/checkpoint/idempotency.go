package checkpoint

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"sync"
	"sync/atomic"

	"tecfan/internal/diskfault"
)

// IdemStore is the daemon's durable idempotency table: client token → job
// id, persisted through the same checksummed envelope and atomic-rename
// discipline as job checkpoints, in the same state directory — so a retried
// job submission is deduplicated even across a daemon crash and restart.
//
// The table is tiny (two short strings per entry) and rewritten whole on
// every mutation; at the default cap of 4096 entries that is a <256 KiB
// atomic write on a path that only runs once per *new* job submission.
// Entries beyond the cap evict oldest-first: an idempotency token only needs
// to outlive its client's retry horizon, not the daemon's lifetime.
type IdemStore struct {
	fs   diskfault.FS
	path string
	max  int

	mu  sync.Mutex
	m   map[string]idemEntry
	seq uint64

	quarantined atomic.Int64
}

type idemEntry struct {
	JobID string `json:"job_id"`
	Seq   uint64 `json:"seq"`
}

// idemPayload is the JSON inside the envelope.
type idemPayload struct {
	Entries map[string]idemEntry `json:"entries"`
	Seq     uint64               `json:"seq"`
}

// DefaultIdemMaxEntries caps the table when OpenIdemStore is given max <= 0.
const DefaultIdemMaxEntries = 4096

// OpenIdemStore is OpenIdemStoreFS over the real filesystem.
func OpenIdemStore(path string, max int) (*IdemStore, error) {
	return OpenIdemStoreFS(diskfault.OS, path, max, nil)
}

// OpenIdemStoreFS loads the table at path through the seam; the file need
// not exist yet. An unreadable table (torn write that beat the atomic
// rename, version skew, bit rot) is quarantined to a unique "<path>.bad-N"
// name and replaced by an empty one: losing dedup state degrades a retry to
// at-most-one-duplicate-visible-as-409, never to a crash loop. Quarantine
// failures are logged and counted, never fatal — the corrupt file is left
// in place and the fresh table simply renames over it on the next persist.
func OpenIdemStoreFS(fsys diskfault.FS, path string, max int, logf func(string, ...any)) (*IdemStore, error) {
	if fsys == nil {
		fsys = diskfault.OS
	}
	if max <= 0 {
		max = DefaultIdemMaxEntries
	}
	if logf == nil {
		logf = func(string, ...any) {}
	}
	s := &IdemStore{fs: fsys, path: path, max: max, m: map[string]idemEntry{}}
	quarantine := func(cause error) {
		dst, qerr := Quarantine(fsys, path)
		if qerr != nil {
			logf("checkpoint: idempotency table %s unreadable (%v) and not quarantined: %v",
				path, cause, qerr)
			return
		}
		s.quarantined.Add(1)
		logf("checkpoint: quarantined idempotency table %s -> %s: %v", path, dst, cause)
	}
	payload, err := ReadFileFS(fsys, path)
	switch {
	case os.IsNotExist(err):
		return s, nil
	case err != nil:
		quarantine(err)
		return s, nil
	}
	var p idemPayload
	if jerr := json.Unmarshal(payload, &p); jerr != nil {
		quarantine(jerr)
		return s, nil
	}
	if p.Entries != nil {
		s.m = p.Entries
	}
	s.seq = p.Seq
	return s, nil
}

// Quarantined reports how many corrupt table files have been renamed aside.
func (s *IdemStore) Quarantined() int64 { return s.quarantined.Load() }

// Get returns the job id recorded for a token.
func (s *IdemStore) Get(token string) (string, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.m[token]
	return e.JobID, ok
}

// Put durably records token → job id. The write lands on disk before Put
// returns; a crash immediately after still dedups the retry.
func (s *IdemStore) Put(token, jobID string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.seq++
	s.m[token] = idemEntry{JobID: jobID, Seq: s.seq}
	s.evictLocked()
	return s.persistLocked()
}

// Delete durably forgets a token (used to roll back a reservation whose
// submission was refused, and to sweep crash-window orphans at startup).
func (s *IdemStore) Delete(token string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.m[token]; !ok {
		return nil
	}
	delete(s.m, token)
	return s.persistLocked()
}

// All returns a copy of the token → job id table.
func (s *IdemStore) All() map[string]string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]string, len(s.m))
	for t, e := range s.m {
		out[t] = e.JobID
	}
	return out
}

// Len reports the number of live entries.
func (s *IdemStore) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.m)
}

func (s *IdemStore) evictLocked() {
	if len(s.m) <= s.max {
		return
	}
	type te struct {
		token string
		seq   uint64
	}
	all := make([]te, 0, len(s.m))
	for t, e := range s.m {
		all = append(all, te{t, e.Seq})
	}
	sort.Slice(all, func(i, j int) bool { return all[i].seq < all[j].seq })
	for _, e := range all[:len(s.m)-s.max] {
		delete(s.m, e.token)
	}
}

func (s *IdemStore) persistLocked() error {
	payload, err := json.Marshal(idemPayload{Entries: s.m, Seq: s.seq})
	if err != nil {
		return fmt.Errorf("checkpoint: encoding idempotency table: %w", err)
	}
	return WriteFileFS(s.fs, s.path, payload)
}
