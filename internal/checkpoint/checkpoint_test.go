package checkpoint

import (
	"bytes"
	"encoding/binary"
	"errors"
	"os"
	"path/filepath"
	"testing"
)

func TestRoundTrip(t *testing.T) {
	for _, payload := range [][]byte{nil, {}, []byte("x"), bytes.Repeat([]byte{0xA5}, 10_000)} {
		data, err := Encode(payload)
		if err != nil {
			t.Fatalf("Encode: %v", err)
		}
		got, err := Decode(data)
		if err != nil {
			t.Fatalf("Decode: %v", err)
		}
		if !bytes.Equal(got, payload) {
			t.Fatalf("round trip mismatch: %d bytes in, %d out", len(payload), len(got))
		}
	}
}

func TestDecodeRejectsCorruption(t *testing.T) {
	base, err := Encode([]byte("the payload under test"))
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name    string
		mutate  func([]byte) []byte
		wantErr error
	}{
		{"empty", func(d []byte) []byte { return nil }, ErrTruncated},
		{"short header", func(d []byte) []byte { return d[:10] }, ErrTruncated},
		{"truncated payload", func(d []byte) []byte { return d[:len(d)-5] }, ErrTruncated},
		{"bad magic", func(d []byte) []byte { d[0] ^= 0xFF; return d }, ErrBadMagic},
		{"version skew", func(d []byte) []byte {
			binary.BigEndian.PutUint32(d[8:12], Version+1)
			return d
		}, ErrBadVersion},
		{"absurd length", func(d []byte) []byte {
			binary.BigEndian.PutUint32(d[12:16], MaxPayload+1)
			return d
		}, ErrTooLarge},
		{"flipped payload bit", func(d []byte) []byte { d[len(d)-1] ^= 1; return d }, ErrChecksum},
		{"flipped checksum bit", func(d []byte) []byte { d[20] ^= 1; return d }, ErrChecksum},
		{"trailing garbage", func(d []byte) []byte { return append(d, 0) }, ErrTrailingGap},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			data := tc.mutate(append([]byte(nil), base...))
			if _, err := Decode(data); !errors.Is(err, tc.wantErr) {
				t.Fatalf("Decode error = %v, want %v", err, tc.wantErr)
			}
		})
	}
}

func TestEncodeRejectsOversize(t *testing.T) {
	if _, err := Encode(make([]byte, MaxPayload+1)); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("Encode oversize error = %v, want %v", err, ErrTooLarge)
	}
}

func TestWriteReadFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "state.ckpt")
	payload := []byte("durable state")
	if err := WriteFile(path, payload); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("ReadFile = %q, want %q", got, payload)
	}
	// Overwrite is atomic: the new content fully replaces the old.
	if err := WriteFile(path, []byte("v2")); err != nil {
		t.Fatalf("WriteFile overwrite: %v", err)
	}
	if got, err = ReadFile(path); err != nil || string(got) != "v2" {
		t.Fatalf("ReadFile after overwrite = %q, %v", got, err)
	}
	// No temporary files left behind.
	entries, err := os.ReadDir(filepath.Dir(path))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("directory has %d entries after atomic writes, want 1", len(entries))
	}
}

func TestReadFileRejectsTorn(t *testing.T) {
	path := filepath.Join(t.TempDir(), "torn.ckpt")
	data, err := Encode([]byte("about to be torn"))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)-3], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadFile(path); !errors.Is(err, ErrTruncated) {
		t.Fatalf("ReadFile torn error = %v, want %v", err, ErrTruncated)
	}
}

// FuzzDecode asserts the decoder's hard invariant: arbitrary input must
// produce either a valid payload or a typed error — never a panic — and any
// accepted payload must re-encode to the identical envelope.
func FuzzDecode(f *testing.F) {
	good, _ := Encode([]byte("seed payload"))
	f.Add(good)
	f.Add([]byte{})
	f.Add([]byte("TECFCKPT"))
	f.Add(good[:20])
	long, _ := Encode(bytes.Repeat([]byte{7}, 4096))
	f.Add(long)
	f.Fuzz(func(t *testing.T, data []byte) {
		payload, err := Decode(data)
		if err != nil {
			return
		}
		re, err := Encode(payload)
		if err != nil {
			t.Fatalf("accepted payload fails to re-encode: %v", err)
		}
		if !bytes.Equal(re, data) {
			t.Fatalf("decode/encode not a fixpoint for accepted input")
		}
	})
}
