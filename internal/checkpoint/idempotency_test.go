package checkpoint

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

func TestIdemStoreRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "idem.idem")
	s, err := OpenIdemStore(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get("tok"); ok {
		t.Fatal("empty store had an entry")
	}
	if err := s.Put("tok", "job-1"); err != nil {
		t.Fatal(err)
	}
	if id, ok := s.Get("tok"); !ok || id != "job-1" {
		t.Fatalf("Get = %q, %v", id, ok)
	}

	// A fresh open on the same path sees the durable entry.
	s2, err := OpenIdemStore(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	if id, ok := s2.Get("tok"); !ok || id != "job-1" {
		t.Fatalf("reopened Get = %q, %v", id, ok)
	}

	if err := s2.Delete("tok"); err != nil {
		t.Fatal(err)
	}
	if err := s2.Delete("tok"); err != nil { // idempotent delete
		t.Fatal(err)
	}
	s3, err := OpenIdemStore(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := s3.Get("tok"); ok {
		t.Fatal("deleted entry survived reopen")
	}
}

func TestIdemStoreEvictsOldest(t *testing.T) {
	path := filepath.Join(t.TempDir(), "idem.idem")
	s, err := OpenIdemStore(path, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		if err := s.Put(fmt.Sprintf("tok-%d", i), fmt.Sprintf("job-%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	if s.Len() != 4 {
		t.Fatalf("Len = %d, want 4", s.Len())
	}
	for _, gone := range []string{"tok-0", "tok-1"} {
		if _, ok := s.Get(gone); ok {
			t.Errorf("oldest entry %s survived eviction", gone)
		}
	}
	for _, kept := range []string{"tok-2", "tok-3", "tok-4", "tok-5"} {
		if _, ok := s.Get(kept); !ok {
			t.Errorf("recent entry %s evicted", kept)
		}
	}
}

func TestIdemStoreQuarantinesCorrupt(t *testing.T) {
	path := filepath.Join(t.TempDir(), "idem.idem")
	if err := os.WriteFile(path, []byte("not an envelope"), 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := OpenIdemStore(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 0 {
		t.Fatalf("corrupt store loaded %d entries", s.Len())
	}
	if _, err := os.Stat(path + ".bad-1"); err != nil {
		t.Fatalf("corrupt table not quarantined: %v", err)
	}
	if n := s.Quarantined(); n != 1 {
		t.Fatalf("Quarantined() = %d, want 1", n)
	}
	// The store remains usable after quarantine.
	if err := s.Put("tok", "job-1"); err != nil {
		t.Fatal(err)
	}
	s2, err := OpenIdemStore(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	if id, ok := s2.Get("tok"); !ok || id != "job-1" {
		t.Fatalf("post-quarantine Get = %q, %v", id, ok)
	}
}

func TestIdemStoreAll(t *testing.T) {
	s, err := OpenIdemStore(filepath.Join(t.TempDir(), "idem.idem"), 0)
	if err != nil {
		t.Fatal(err)
	}
	_ = s.Put("a", "job-a")
	_ = s.Put("b", "job-b")
	all := s.All()
	if len(all) != 2 || all["a"] != "job-a" || all["b"] != "job-b" {
		t.Fatalf("All = %v", all)
	}
	// The copy is detached from the store.
	delete(all, "a")
	if _, ok := s.Get("a"); !ok {
		t.Fatal("mutating All()'s copy reached the store")
	}
}
