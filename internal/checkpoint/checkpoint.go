// Package checkpoint provides the on-disk envelope the control-plane daemon
// persists run state through: a small, versioned, length-framed, checksummed
// container around an opaque payload, written atomically.
//
// The envelope guards against every mundane way a crash corrupts a file —
// truncation mid-write, a stale format after an upgrade, bit rot — by
// refusing, with a typed error, to decode anything that does not verify.
// The daemon treats an unreadable checkpoint as "start the job from
// scratch", never as a crash.
//
// Layout (all integers big-endian):
//
//	offset size  field
//	0      8     magic "TECFCKPT"
//	8      4     format version
//	12     4     payload length n
//	16     32    SHA-256 over payload
//	48     n     payload
//
// The payload encoding is the caller's business (the daemon uses gob); this
// package only guarantees that Decode returns exactly the bytes Encode was
// given, or an error.
package checkpoint

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"path/filepath"

	"tecfan/internal/diskfault"
)

// Version is the current envelope format version. Decode rejects any other
// value: state layouts change between releases, and silently gob-decoding an
// old layout into new structs corrupts the resumed run much later.
const Version = 1

// magic marks envelope files; 8 bytes so a glance at a hexdump identifies
// them.
var magic = [8]byte{'T', 'E', 'C', 'F', 'C', 'K', 'P', 'T'}

const headerSize = 8 + 4 + 4 + sha256.Size

// MaxPayload bounds a payload a decoder will accept (64 MiB). A corrupt
// length field must not make a reader allocate unbounded memory.
const MaxPayload = 64 << 20

// Typed decode failures, distinguishable with errors.Is.
var (
	ErrBadMagic    = errors.New("checkpoint: bad magic")
	ErrBadVersion  = errors.New("checkpoint: unsupported version")
	ErrTruncated   = errors.New("checkpoint: truncated")
	ErrChecksum    = errors.New("checkpoint: checksum mismatch")
	ErrTooLarge    = errors.New("checkpoint: payload too large")
	ErrTrailingGap = errors.New("checkpoint: trailing garbage")
)

// Encode wraps a payload in the envelope.
func Encode(payload []byte) ([]byte, error) {
	if len(payload) > MaxPayload {
		return nil, fmt.Errorf("%w: %d bytes (max %d)", ErrTooLarge, len(payload), MaxPayload)
	}
	out := make([]byte, headerSize+len(payload))
	copy(out[0:8], magic[:])
	binary.BigEndian.PutUint32(out[8:12], Version)
	binary.BigEndian.PutUint32(out[12:16], uint32(len(payload)))
	sum := sha256.Sum256(payload)
	copy(out[16:16+sha256.Size], sum[:])
	copy(out[headerSize:], payload)
	return out, nil
}

// Decode verifies an envelope and returns its payload (a fresh copy). Every
// malformed input — short, wrong magic, version-skewed, length-lying,
// bit-flipped — returns a typed error; Decode never panics.
func Decode(data []byte) ([]byte, error) {
	if len(data) < headerSize {
		return nil, fmt.Errorf("%w: %d bytes, header needs %d", ErrTruncated, len(data), headerSize)
	}
	if !bytes.Equal(data[0:8], magic[:]) {
		return nil, ErrBadMagic
	}
	if v := binary.BigEndian.Uint32(data[8:12]); v != Version {
		return nil, fmt.Errorf("%w: %d (want %d)", ErrBadVersion, v, Version)
	}
	n := binary.BigEndian.Uint32(data[12:16])
	if n > MaxPayload {
		return nil, fmt.Errorf("%w: header claims %d bytes (max %d)", ErrTooLarge, n, MaxPayload)
	}
	if uint64(len(data)) < headerSize+uint64(n) {
		return nil, fmt.Errorf("%w: header claims %d payload bytes, %d present",
			ErrTruncated, n, len(data)-headerSize)
	}
	if uint64(len(data)) > headerSize+uint64(n) {
		return nil, fmt.Errorf("%w: %d bytes past the declared payload",
			ErrTrailingGap, uint64(len(data))-headerSize-uint64(n))
	}
	payload := data[headerSize : headerSize+int(n)]
	sum := sha256.Sum256(payload)
	if !bytes.Equal(sum[:], data[16:16+sha256.Size]) {
		return nil, ErrChecksum
	}
	return append([]byte(nil), payload...), nil
}

// WriteFileFS atomically persists an enveloped payload through the given
// filesystem seam: write to a temporary file in the same directory, fsync,
// rename over the destination, fsync the directory. A crash at any point
// leaves either the old file or the new one, never a torn mix. (A lying
// fsync — simulated by diskfault, delivered by some real drives — can still
// void that guarantee; generation fallback and the scrubber exist for the
// corruption that slips through.)
func WriteFileFS(fsys diskfault.FS, path string, payload []byte) error {
	data, err := Encode(payload)
	if err != nil {
		return err
	}
	dir := filepath.Dir(path)
	tmp, err := fsys.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	tmpName := tmp.Name()
	defer fsys.Remove(tmpName) // no-op after a successful rename
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return fmt.Errorf("checkpoint: writing %s: %w", tmpName, err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("checkpoint: syncing %s: %w", tmpName, err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("checkpoint: closing %s: %w", tmpName, err)
	}
	if err := fsys.Rename(tmpName, path); err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	// Directory fsync makes the rename itself durable; best effort on
	// filesystems that refuse it.
	_ = fsys.SyncDir(dir)
	return nil
}

// WriteFile is WriteFileFS over the real filesystem.
func WriteFile(path string, payload []byte) error {
	return WriteFileFS(diskfault.OS, path, payload)
}

// ReadFileFS loads and verifies an enveloped file through the seam,
// returning the payload.
func ReadFileFS(fsys diskfault.FS, path string) ([]byte, error) {
	fi, err := fsys.Stat(path)
	if err != nil {
		return nil, err
	}
	if fi.Size() > headerSize+MaxPayload {
		return nil, fmt.Errorf("%w: file is %d bytes", ErrTooLarge, fi.Size())
	}
	data, err := fsys.ReadFile(path)
	if err != nil {
		return nil, err
	}
	payload, err := Decode(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return payload, nil
}

// ReadFile is ReadFileFS over the real filesystem.
func ReadFile(path string) ([]byte, error) {
	return ReadFileFS(diskfault.OS, path)
}
