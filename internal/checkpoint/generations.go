package checkpoint

import (
	"errors"
	"fmt"
	"io/fs"
	"sync/atomic"

	"tecfan/internal/diskfault"
)

// ErrNoGeneration means every generation of a checkpoint — head and rotated
// copies alike — is missing or fails verification. Callers treat it like a
// missing checkpoint: start the job from scratch, never guess at state.
var ErrNoGeneration = errors.New("checkpoint: no verifiable generation")

// Quarantine renames path aside to a unique "<path>.bad-N" name so the
// corrupt bytes survive for post-mortem without shadowing a live file or
// clobbering evidence from an earlier incident. It returns the chosen name.
func Quarantine(fsys diskfault.FS, path string) (string, error) {
	for n := 1; ; n++ {
		dst := fmt.Sprintf("%s.bad-%d", path, n)
		if _, err := fsys.Stat(dst); err == nil {
			continue // taken by a previous quarantine
		} else if !errors.Is(err, fs.ErrNotExist) {
			return "", fmt.Errorf("checkpoint: probing quarantine name %s: %w", dst, err)
		}
		if err := fsys.Rename(path, dst); err != nil {
			return "", fmt.Errorf("checkpoint: quarantining %s: %w", path, err)
		}
		return dst, nil
	}
}

// GenStore keeps the last Keep generations of one checkpoint file: the head
// at path and rotated copies at path.g1 (newest) through path.g(Keep-1)
// (oldest). Writes rotate then land atomically on the head; reads fall back
// from a corrupt or truncated head to the newest generation that still
// verifies, quarantining what failed. Scrub re-verifies every generation in
// place and repairs the corrupt ones from the newest good copy.
//
// GenStore methods are not internally locked — the daemon serializes all
// access to one job's checkpoint (checkpoint writes happen on the worker
// goroutine; the scrubber takes the daemon's storage mutex).
type GenStore struct {
	fs   diskfault.FS
	path string
	keep int
	logf func(format string, args ...any)

	quarantined atomic.Int64
}

// DefaultKeepGenerations is the generation count used when NewGenStore is
// given keep <= 0: the head plus two fallbacks. One fallback covers a single
// corrupted write; the second survives "head corrupt, then crash during the
// repair of g1".
const DefaultKeepGenerations = 3

// NewGenStore wraps path as a generational checkpoint. keep counts the head
// itself; keep=1 disables rotation entirely.
func NewGenStore(fsys diskfault.FS, path string, keep int, logf func(string, ...any)) *GenStore {
	if fsys == nil {
		fsys = diskfault.OS
	}
	if keep <= 0 {
		keep = DefaultKeepGenerations
	}
	if logf == nil {
		logf = func(string, ...any) {}
	}
	return &GenStore{fs: fsys, path: path, keep: keep, logf: logf}
}

// Path returns the head path.
func (g *GenStore) Path() string { return g.path }

// Quarantined reports how many corrupt files this store has renamed aside.
func (g *GenStore) Quarantined() int64 { return g.quarantined.Load() }

// genPath returns the path of generation i (0 = head).
func (g *GenStore) genPath(i int) string {
	if i == 0 {
		return g.path
	}
	return fmt.Sprintf("%s.g%d", g.path, i)
}

// Paths returns every generation path, newest first.
func (g *GenStore) Paths() []string {
	out := make([]string, g.keep)
	for i := range out {
		out[i] = g.genPath(i)
	}
	return out
}

// Write persists a new snapshot: the current head is rotated to .g1 (older
// generations shifting down, the oldest dropped), then the payload lands on
// the head via the atomic envelope write. A corrupt head is quarantined
// instead of rotated, so corruption never cycles through the generation
// chain. The moment with no head on disk is harmless: Read falls back to
// .g1, which holds exactly the bytes the head held.
func (g *GenStore) Write(payload []byte) error {
	g.rotate()
	return WriteFileFS(g.fs, g.path, payload)
}

// rotate shifts generations down by one slot. Rotation is best-effort: if a
// rename fails the write still proceeds — a stale or missing fallback is
// strictly better than refusing to persist fresh state.
func (g *GenStore) rotate() {
	if g.keep <= 1 {
		return
	}
	if _, err := ReadFileFS(g.fs, g.path); err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return // nothing to rotate
		}
		// The head exists but does not verify: quarantine it rather than
		// promoting corruption into the fallback chain.
		g.quarantineGen(0, err)
		return
	}
	// Drop the oldest, then shift .g(k) → .g(k+1), head → .g1.
	_ = g.fs.Remove(g.genPath(g.keep - 1))
	for i := g.keep - 2; i >= 0; i-- {
		if _, err := g.fs.Stat(g.genPath(i)); err != nil {
			continue
		}
		if err := g.fs.Rename(g.genPath(i), g.genPath(i+1)); err != nil {
			g.logf("checkpoint: rotating %s: %v", g.genPath(i), err)
		}
	}
}

// Read returns the newest verifiable snapshot, falling back through the
// generations. A generation that exists but fails verification is
// quarantined and logged, and the next one is tried. The error is
// fs.ErrNotExist when no generation exists at all, ErrNoGeneration when
// files existed but none verified.
func (g *GenStore) Read() ([]byte, error) {
	sawAny := false
	for i := 0; i < g.keep; i++ {
		payload, err := ReadFileFS(g.fs, g.genPath(i))
		if err == nil {
			if i > 0 {
				g.logf("checkpoint: %s: head unreadable, resumed from generation %d (%s)",
					g.path, i, g.genPath(i))
			}
			return payload, nil
		}
		if errors.Is(err, fs.ErrNotExist) {
			continue
		}
		sawAny = true
		g.quarantineGen(i, err)
	}
	if sawAny {
		return nil, fmt.Errorf("%w: %s", ErrNoGeneration, g.path)
	}
	return nil, &fs.PathError{Op: "open", Path: g.path, Err: fs.ErrNotExist}
}

// quarantineGen renames generation i aside and counts it. I/O errors during
// the rename (the disk may be the thing that is broken) are logged, not
// fatal: the corrupt file is simply left in place and will fail again.
func (g *GenStore) quarantineGen(i int, cause error) {
	path := g.genPath(i)
	dst, qerr := Quarantine(g.fs, path)
	if qerr != nil {
		g.logf("checkpoint: %s failed verification (%v) and could not be quarantined: %v",
			path, cause, qerr)
		return
	}
	g.quarantined.Add(1)
	g.logf("checkpoint: quarantined %s -> %s: %v", path, dst, cause)
}

// Scrub re-verifies every generation and repairs the broken ones by
// re-copying the newest good snapshot over them (quarantining the corrupt
// bytes first). It returns how many generations were repaired. With no good
// generation left nothing can be repaired; corrupt files are still
// quarantined so the next read fails fast and clean.
func (g *GenStore) Scrub() (repaired int, err error) {
	type state struct {
		payload []byte
		bad     bool
	}
	states := make([]state, g.keep)
	var newest []byte
	for i := 0; i < g.keep; i++ {
		payload, rerr := ReadFileFS(g.fs, g.genPath(i))
		switch {
		case rerr == nil:
			states[i].payload = payload
			if newest == nil {
				newest = payload
			}
		case errors.Is(rerr, fs.ErrNotExist):
			// Absent slots are normal (young store, dropped oldest).
		default:
			states[i].bad = true
			g.quarantineGen(i, rerr)
		}
	}
	if newest == nil {
		return 0, nil
	}
	for i, st := range states {
		if !st.bad {
			continue
		}
		if werr := WriteFileFS(g.fs, g.genPath(i), newest); werr != nil {
			g.logf("checkpoint: scrub could not repair %s: %v", g.genPath(i), werr)
			if err == nil {
				err = werr
			}
			continue
		}
		repaired++
		g.logf("checkpoint: scrub repaired %s from newest good generation", g.genPath(i))
	}
	return repaired, err
}

// RemoveAll deletes every generation (job finished, checkpoint obsolete).
// Quarantined .bad-N files are deliberately left for post-mortem.
func (g *GenStore) RemoveAll() error {
	var first error
	for i := 0; i < g.keep; i++ {
		if err := g.fs.Remove(g.genPath(i)); err != nil && !errors.Is(err, fs.ErrNotExist) {
			if first == nil {
				first = err
			}
		}
	}
	return first
}
