package client

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"tecfan/internal/clockfault"
)

// BreakerState is the circuit breaker's phase.
type BreakerState int

const (
	// BreakerClosed passes every request, counting consecutive failures.
	BreakerClosed BreakerState = iota
	// BreakerOpen rejects every request until the cooldown elapses.
	BreakerOpen
	// BreakerHalfOpen admits a bounded budget of probe requests; enough
	// successes close the breaker, any failure reopens it.
	BreakerHalfOpen
)

func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	default:
		return fmt.Sprintf("BreakerState(%d)", int(s))
	}
}

// ErrCircuitOpen reports a request rejected by the breaker without touching
// the network. Match with errors.Is; errors.As against *OpenError recovers
// the suggested wait.
var ErrCircuitOpen = errors.New("client: circuit breaker open")

// OpenError is the concrete rejection: RetryIn is how long until the breaker
// will next admit a probe (zero when the half-open probe budget is the
// limiting factor rather than the cooldown clock).
type OpenError struct {
	State   BreakerState
	RetryIn time.Duration
}

func (e *OpenError) Error() string {
	return fmt.Sprintf("%v (%s, retry in %s)", ErrCircuitOpen, e.State, e.RetryIn)
}

func (e *OpenError) Unwrap() error { return ErrCircuitOpen }

// BreakerConfig tunes the circuit breaker. Zero values take the defaults.
type BreakerConfig struct {
	// FailureThreshold is the run of consecutive transport failures that
	// opens the breaker (default 5).
	FailureThreshold int
	// Cooldown is how long the breaker stays open before admitting probes
	// (default 2 s).
	Cooldown time.Duration
	// ProbeBudget caps in-flight half-open probes (default 1): a struggling
	// server gets a trickle, not the full retry storm.
	ProbeBudget int
	// SuccessThreshold is the probe successes required to close (default 2).
	SuccessThreshold int
	// Disabled turns the breaker into a pass-through.
	Disabled bool

	clock clockfault.Clock // time seam; client.New threads its Clock here
}

func (c *BreakerConfig) fillDefaults() {
	if c.FailureThreshold <= 0 {
		c.FailureThreshold = 5
	}
	if c.Cooldown <= 0 {
		c.Cooldown = 2 * time.Second
	}
	if c.ProbeBudget <= 0 {
		c.ProbeBudget = 1
	}
	if c.SuccessThreshold <= 0 {
		c.SuccessThreshold = 2
	}
	c.clock = clockfault.Or(c.clock)
}

// Breaker is a classic closed/open/half-open circuit breaker guarding the
// transport. "Failure" means the server could not be reached or answered a
// 5xx; application-level errors (4xx) count as successes — the wire works.
//
// Outcomes are generation-scoped: every state transition starts a new
// generation, and a record handed out by Allow is a no-op once its
// generation has passed. Without this, a slow probe admitted in one
// half-open window could record into a later one — refunding a probe slot it
// was never charged in that window (letting more than ProbeBudget probes
// fly) and counting a stale success toward the new window's close threshold.
type Breaker struct {
	cfg BreakerConfig

	mu        sync.Mutex
	state     BreakerState
	gen       uint64 // bumped on every state transition
	failures  int
	successes int
	probes    int // in-flight half-open probes
	openedAt  clockfault.Mono
}

// NewBreaker builds a breaker in the closed state.
func NewBreaker(cfg BreakerConfig) *Breaker {
	cfg.fillDefaults()
	return &Breaker{cfg: cfg}
}

// State reports the current phase (for tests and operator logging).
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// transitionLocked moves to a new state, starting a fresh generation with
// clean counters: records from the old generation become no-ops.
func (b *Breaker) transitionLocked(s BreakerState) {
	b.state = s
	b.gen++
	b.failures = 0
	b.successes = 0
	b.probes = 0
}

// Allow asks permission to attempt a request. A nil error admits the request
// and hands back a record func that MUST be called exactly once with the
// outcome; the record is bound to the breaker generation that admitted it,
// so an outcome arriving after the breaker has since transitioned is
// discarded rather than misattributed. A non-nil error is an *OpenError
// wrapping ErrCircuitOpen.
func (b *Breaker) Allow() (record func(success bool), err error) {
	if b.cfg.Disabled {
		return func(bool) {}, nil
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerOpen:
		wait := b.cfg.Cooldown - b.cfg.clock.Since(b.openedAt)
		if wait > 0 {
			return nil, &OpenError{State: BreakerOpen, RetryIn: wait}
		}
		// Cooldown served: transition to half-open and admit this request
		// as the first probe.
		b.transitionLocked(BreakerHalfOpen)
		b.probes = 1
	case BreakerHalfOpen:
		if b.probes >= b.cfg.ProbeBudget {
			return nil, &OpenError{State: BreakerHalfOpen, RetryIn: 0}
		}
		b.probes++
	case BreakerClosed:
		// Pass-through; failures accumulate via the record below.
	}
	gen := b.gen
	return func(success bool) { b.record(gen, success) }, nil
}

// record applies an admitted request's outcome, provided the breaker is
// still in the generation that admitted it.
func (b *Breaker) record(gen uint64, success bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if gen != b.gen {
		// Stale generation: the window this probe was charged against is
		// gone (the breaker opened, reopened, or closed since). Its outcome
		// must neither refund the current window's probe budget nor count
		// toward its thresholds.
		return
	}
	switch b.state {
	case BreakerClosed:
		if success {
			b.failures = 0
			return
		}
		b.failures++
		if b.failures >= b.cfg.FailureThreshold {
			b.transitionLocked(BreakerOpen)
			b.openedAt = b.cfg.clock.Mono()
		}
	case BreakerHalfOpen:
		b.probes--
		if !success {
			// One failed probe is proof enough: reopen and restart the
			// cooldown clock.
			b.transitionLocked(BreakerOpen)
			b.openedAt = b.cfg.clock.Mono()
			return
		}
		b.successes++
		if b.successes >= b.cfg.SuccessThreshold {
			b.transitionLocked(BreakerClosed)
		}
	case BreakerOpen:
		// Unreachable: entering Open bumps the generation, so any record
		// from before the transition was already discarded above.
	}
}
