package client

import (
	"errors"
	"fmt"
	"sync"
	"time"
)

// BreakerState is the circuit breaker's phase.
type BreakerState int

const (
	// BreakerClosed passes every request, counting consecutive failures.
	BreakerClosed BreakerState = iota
	// BreakerOpen rejects every request until the cooldown elapses.
	BreakerOpen
	// BreakerHalfOpen admits a bounded budget of probe requests; enough
	// successes close the breaker, any failure reopens it.
	BreakerHalfOpen
)

func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	default:
		return fmt.Sprintf("BreakerState(%d)", int(s))
	}
}

// ErrCircuitOpen reports a request rejected by the breaker without touching
// the network. Match with errors.Is; errors.As against *OpenError recovers
// the suggested wait.
var ErrCircuitOpen = errors.New("client: circuit breaker open")

// OpenError is the concrete rejection: RetryIn is how long until the breaker
// will next admit a probe (zero when the half-open probe budget is the
// limiting factor rather than the cooldown clock).
type OpenError struct {
	State   BreakerState
	RetryIn time.Duration
}

func (e *OpenError) Error() string {
	return fmt.Sprintf("%v (%s, retry in %s)", ErrCircuitOpen, e.State, e.RetryIn)
}

func (e *OpenError) Unwrap() error { return ErrCircuitOpen }

// BreakerConfig tunes the circuit breaker. Zero values take the defaults.
type BreakerConfig struct {
	// FailureThreshold is the run of consecutive transport failures that
	// opens the breaker (default 5).
	FailureThreshold int
	// Cooldown is how long the breaker stays open before admitting probes
	// (default 2 s).
	Cooldown time.Duration
	// ProbeBudget caps in-flight half-open probes (default 1): a struggling
	// server gets a trickle, not the full retry storm.
	ProbeBudget int
	// SuccessThreshold is the probe successes required to close (default 2).
	SuccessThreshold int
	// Disabled turns the breaker into a pass-through.
	Disabled bool

	now func() time.Time // test seam
}

func (c *BreakerConfig) fillDefaults() {
	if c.FailureThreshold <= 0 {
		c.FailureThreshold = 5
	}
	if c.Cooldown <= 0 {
		c.Cooldown = 2 * time.Second
	}
	if c.ProbeBudget <= 0 {
		c.ProbeBudget = 1
	}
	if c.SuccessThreshold <= 0 {
		c.SuccessThreshold = 2
	}
	if c.now == nil {
		c.now = time.Now
	}
}

// Breaker is a classic closed/open/half-open circuit breaker guarding the
// transport. "Failure" means the server could not be reached or answered a
// 5xx; application-level errors (4xx) count as successes — the wire works.
type Breaker struct {
	cfg BreakerConfig

	mu        sync.Mutex
	state     BreakerState
	failures  int
	successes int
	probes    int // in-flight half-open probes
	openedAt  time.Time
}

// NewBreaker builds a breaker in the closed state.
func NewBreaker(cfg BreakerConfig) *Breaker {
	cfg.fillDefaults()
	return &Breaker{cfg: cfg}
}

// State reports the current phase (for tests and operator logging).
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// Allow asks permission to attempt a request. A nil return admits the
// request and MUST be paired with exactly one Record call. A non-nil return
// is an *OpenError wrapping ErrCircuitOpen.
func (b *Breaker) Allow() error {
	if b.cfg.Disabled {
		return nil
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		return nil
	case BreakerOpen:
		wait := b.cfg.Cooldown - b.cfg.now().Sub(b.openedAt)
		if wait > 0 {
			return &OpenError{State: BreakerOpen, RetryIn: wait}
		}
		// Cooldown served: transition to half-open and admit this request
		// as the first probe.
		b.state = BreakerHalfOpen
		b.successes = 0
		b.probes = 1
		return nil
	case BreakerHalfOpen:
		if b.probes >= b.cfg.ProbeBudget {
			return &OpenError{State: BreakerHalfOpen, RetryIn: 0}
		}
		b.probes++
		return nil
	}
	return nil
}

// Record reports the outcome of a request admitted by Allow.
func (b *Breaker) Record(success bool) {
	if b.cfg.Disabled {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		if success {
			b.failures = 0
			return
		}
		b.failures++
		if b.failures >= b.cfg.FailureThreshold {
			b.state = BreakerOpen
			b.openedAt = b.cfg.now()
		}
	case BreakerHalfOpen:
		if b.probes > 0 {
			b.probes--
		}
		if !success {
			// One failed probe is proof enough: reopen and restart the
			// cooldown clock.
			b.state = BreakerOpen
			b.openedAt = b.cfg.now()
			return
		}
		b.successes++
		if b.successes >= b.cfg.SuccessThreshold {
			b.state = BreakerClosed
			b.failures = 0
		}
	case BreakerOpen:
		// A straggler from before the breaker opened; its outcome carries no
		// new information.
	}
}
