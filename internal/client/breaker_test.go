package client

import (
	"errors"
	"testing"
	"time"

	"tecfan/internal/clockfault"
)

// newFakeClock is the hand-advanced clock for breaker tests.
func newFakeClock() *clockfault.Manual {
	return clockfault.NewManual(time.Unix(0, 0))
}

func testBreaker(clk *clockfault.Manual) *Breaker {
	return NewBreaker(BreakerConfig{
		FailureThreshold: 3,
		Cooldown:         time.Second,
		ProbeBudget:      2,
		SuccessThreshold: 2,
		clock:            clk,
	})
}

// allowRecord admits one request and immediately records its outcome — the
// common no-concurrency pattern throughout these tests.
func allowRecord(t *testing.T, b *Breaker, success bool) {
	t.Helper()
	record, err := b.Allow()
	if err != nil {
		t.Fatalf("Allow = %v", err)
	}
	record(success)
}

// TestBreakerTransitions walks the full state machine under a scripted
// fault schedule: closed → open on the failure run, fast-fail while open,
// half-open after cooldown with a bounded probe budget, reopen on a failed
// probe, and close again after enough successful probes.
func TestBreakerTransitions(t *testing.T) {
	clk := newFakeClock()
	b := testBreaker(clk)

	if b.State() != BreakerClosed {
		t.Fatalf("initial state = %v", b.State())
	}
	// Interleaved success resets the consecutive-failure count.
	for _, ok := range []bool{false, false, true, false, false} {
		allowRecord(t, b, ok)
	}
	if b.State() != BreakerClosed {
		t.Fatalf("state after interrupted failure run = %v, want closed", b.State())
	}
	// The third consecutive failure opens it.
	allowRecord(t, b, false)
	if b.State() != BreakerOpen {
		t.Fatalf("state after failure threshold = %v, want open", b.State())
	}

	// Open: rejects with the cooldown remainder.
	_, err := b.Allow()
	if !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("open Allow = %v, want ErrCircuitOpen", err)
	}
	var oe *OpenError
	if !errors.As(err, &oe) || oe.RetryIn <= 0 || oe.RetryIn > time.Second {
		t.Fatalf("open rejection = %+v", oe)
	}

	// Cooldown served: half-open admits ProbeBudget probes, rejects beyond.
	clk.Advance(time.Second + time.Millisecond)
	rec1, err := b.Allow()
	if err != nil {
		t.Fatalf("first probe refused: %v", err)
	}
	if b.State() != BreakerHalfOpen {
		t.Fatalf("state after cooldown = %v, want half-open", b.State())
	}
	rec2, err := b.Allow()
	if err != nil {
		t.Fatalf("second probe refused: %v", err)
	}
	if _, err := b.Allow(); !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("probe beyond budget = %v, want ErrCircuitOpen", err)
	}

	// A failed probe reopens immediately and restarts the cooldown.
	rec1(false)
	if b.State() != BreakerOpen {
		t.Fatalf("state after failed probe = %v, want open", b.State())
	}
	rec2(true) // straggler from the fenced-off half-open window: ignored
	if b.State() != BreakerOpen {
		t.Fatalf("straggler success changed state to %v", b.State())
	}

	// Recover: cooldown, then SuccessThreshold successful probes close it.
	clk.Advance(time.Second + time.Millisecond)
	for i := 0; i < 2; i++ {
		allowRecord(t, b, true)
	}
	if b.State() != BreakerClosed {
		t.Fatalf("state after successful probes = %v, want closed", b.State())
	}
	// And the failure count restarted: one failure does not re-open.
	allowRecord(t, b, false)
	if b.State() != BreakerClosed {
		t.Fatalf("single post-recovery failure opened the breaker")
	}
}

// TestBreakerHalfOpenProbeBudgetRace is the regression test for the stale-
// generation bug: a probe admitted in one half-open window that records
// after the breaker has reopened and re-entered half-open must not refund
// the new window's probe budget, nor count toward its success threshold —
// and a success that does close the breaker must leave it fully reset.
func TestBreakerHalfOpenProbeBudgetRace(t *testing.T) {
	clk := newFakeClock()
	b := NewBreaker(BreakerConfig{
		FailureThreshold: 1,
		Cooldown:         time.Second,
		ProbeBudget:      2,
		SuccessThreshold: 2,
		clock:            clk,
	})

	// Open the breaker, serve the cooldown, and exhaust the probe budget
	// with two slow in-flight probes A and B.
	allowRecord(t, b, false)
	clk.Advance(time.Second + time.Millisecond)
	recA, err := b.Allow()
	if err != nil {
		t.Fatal(err)
	}
	recB, err := b.Allow()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.Allow(); !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("third probe admitted past the budget: %v", err)
	}

	// A fails: reopen. B is now a zombie of the dead half-open window.
	recA(false)
	if b.State() != BreakerOpen {
		t.Fatalf("state after failed probe = %v", b.State())
	}

	// Next cooldown: a fresh half-open window admits probe C.
	clk.Advance(time.Second + time.Millisecond)
	recC, err := b.Allow()
	if err != nil {
		t.Fatal(err)
	}

	// The zombie B records a success. Before the generation fence this
	// decremented the live window's in-flight count (letting budget+1 probes
	// fly) and banked a phantom success toward SuccessThreshold.
	recB(true)
	if b.State() != BreakerHalfOpen {
		t.Fatalf("stale success moved state to %v", b.State())
	}
	// Budget still accounts C as in flight: exactly one more slot, not two.
	recD, err := b.Allow()
	if err != nil {
		t.Fatalf("second slot of the new window refused: %v", err)
	}
	if _, err := b.Allow(); !errors.Is(err, ErrCircuitOpen) {
		t.Fatal("stale record refunded the probe budget: third concurrent probe admitted")
	}

	// And the phantom success must not have banked: C's single success may
	// not close a SuccessThreshold=2 breaker on its own.
	recC(true)
	if b.State() != BreakerClosed {
		// still half-open, one success short — correct
	} else {
		t.Fatal("stale success counted toward the new window's close threshold")
	}

	// D's success is the legitimate second: now it closes, fully reset.
	recD(true)
	if b.State() != BreakerClosed {
		t.Fatalf("state after two live successes = %v, want closed", b.State())
	}

	// Fully reset means: the next failure run needs the full threshold
	// again, and a fresh open → half-open cycle gets its whole probe budget.
	allowRecord(t, b, false) // FailureThreshold=1 → open
	if b.State() != BreakerOpen {
		t.Fatalf("post-close failure did not open: %v", b.State())
	}
	clk.Advance(time.Second + time.Millisecond)
	if _, err := b.Allow(); err != nil {
		t.Fatalf("fresh window probe 1: %v", err)
	}
	if _, err := b.Allow(); err != nil {
		t.Fatalf("fresh window probe 2: probe budget not reset on close: %v", err)
	}
}

func TestBreakerDisabled(t *testing.T) {
	b := NewBreaker(BreakerConfig{Disabled: true, FailureThreshold: 1})
	for i := 0; i < 10; i++ {
		record, err := b.Allow()
		if err != nil {
			t.Fatalf("disabled breaker rejected: %v", err)
		}
		record(false)
	}
	if b.State() != BreakerClosed {
		t.Fatalf("disabled breaker state = %v", b.State())
	}
}

func TestBreakerStateString(t *testing.T) {
	for s, want := range map[BreakerState]string{
		BreakerClosed: "closed", BreakerOpen: "open", BreakerHalfOpen: "half-open",
	} {
		if s.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(s), s, want)
		}
	}
}
