package client

import (
	"errors"
	"sync"
	"testing"
	"time"
)

// fakeClock is a hand-advanced clock for breaker tests.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func testBreaker(clk *fakeClock) *Breaker {
	return NewBreaker(BreakerConfig{
		FailureThreshold: 3,
		Cooldown:         time.Second,
		ProbeBudget:      2,
		SuccessThreshold: 2,
		now:              clk.now,
	})
}

// TestBreakerTransitions walks the full state machine under a scripted
// fault schedule: closed → open on the failure run, fast-fail while open,
// half-open after cooldown with a bounded probe budget, reopen on a failed
// probe, and close again after enough successful probes.
func TestBreakerTransitions(t *testing.T) {
	clk := &fakeClock{t: time.Unix(0, 0)}
	b := testBreaker(clk)

	if b.State() != BreakerClosed {
		t.Fatalf("initial state = %v", b.State())
	}
	// Interleaved success resets the consecutive-failure count.
	for _, ok := range []bool{false, false, true, false, false} {
		if err := b.Allow(); err != nil {
			t.Fatalf("closed Allow = %v", err)
		}
		b.Record(ok)
	}
	if b.State() != BreakerClosed {
		t.Fatalf("state after interrupted failure run = %v, want closed", b.State())
	}
	// The third consecutive failure opens it.
	if err := b.Allow(); err != nil {
		t.Fatal(err)
	}
	b.Record(false)
	if b.State() != BreakerOpen {
		t.Fatalf("state after failure threshold = %v, want open", b.State())
	}

	// Open: rejects with the cooldown remainder.
	err := b.Allow()
	if !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("open Allow = %v, want ErrCircuitOpen", err)
	}
	var oe *OpenError
	if !errors.As(err, &oe) || oe.RetryIn <= 0 || oe.RetryIn > time.Second {
		t.Fatalf("open rejection = %+v", oe)
	}

	// Cooldown served: half-open admits ProbeBudget probes, rejects beyond.
	clk.advance(time.Second + time.Millisecond)
	if err := b.Allow(); err != nil {
		t.Fatalf("first probe refused: %v", err)
	}
	if b.State() != BreakerHalfOpen {
		t.Fatalf("state after cooldown = %v, want half-open", b.State())
	}
	if err := b.Allow(); err != nil {
		t.Fatalf("second probe refused: %v", err)
	}
	if err := b.Allow(); !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("probe beyond budget = %v, want ErrCircuitOpen", err)
	}

	// A failed probe reopens immediately and restarts the cooldown.
	b.Record(false)
	if b.State() != BreakerOpen {
		t.Fatalf("state after failed probe = %v, want open", b.State())
	}
	b.Record(true) // straggler from the pre-open era: ignored
	if b.State() != BreakerOpen {
		t.Fatalf("straggler success changed state to %v", b.State())
	}

	// Recover: cooldown, then SuccessThreshold successful probes close it.
	clk.advance(time.Second + time.Millisecond)
	for i := 0; i < 2; i++ {
		if err := b.Allow(); err != nil {
			t.Fatalf("recovery probe %d refused: %v", i, err)
		}
		b.Record(true)
	}
	if b.State() != BreakerClosed {
		t.Fatalf("state after successful probes = %v, want closed", b.State())
	}
	// And the failure count restarted: one failure does not re-open.
	if err := b.Allow(); err != nil {
		t.Fatal(err)
	}
	b.Record(false)
	if b.State() != BreakerClosed {
		t.Fatalf("single post-recovery failure opened the breaker")
	}
}

func TestBreakerDisabled(t *testing.T) {
	b := NewBreaker(BreakerConfig{Disabled: true, FailureThreshold: 1})
	for i := 0; i < 10; i++ {
		if err := b.Allow(); err != nil {
			t.Fatalf("disabled breaker rejected: %v", err)
		}
		b.Record(false)
	}
	if b.State() != BreakerClosed {
		t.Fatalf("disabled breaker state = %v", b.State())
	}
}

func TestBreakerStateString(t *testing.T) {
	for s, want := range map[BreakerState]string{
		BreakerClosed: "closed", BreakerOpen: "open", BreakerHalfOpen: "half-open",
	} {
		if s.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(s), s, want)
		}
	}
}
