// Package client is the hardened Go client for the tecfand control-plane
// API. Every call carries a per-attempt deadline; transient failures —
// connection resets, timeouts, 5xx, 429 — are retried under exponential
// backoff with full jitter, honoring the server's Retry-After hint when one
// is present; a circuit breaker stops the retry storm from hammering a
// server that is down; and job submission carries an idempotency key, so a
// retried POST whose first attempt actually landed is deduplicated
// server-side instead of enqueuing the job twice.
//
// The package exists because TECfan is a runtime controller: telemetry and
// actuation flow over a transport the paper assumes lossless but deployment
// never provides. The netfault chaos proxy plus this client are the proof
// that the control plane's exactly-once contract survives a lossy wire.
package client

import (
	"bytes"
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	mrand "math/rand"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync"
	"time"

	"tecfan/internal/clockfault"
	"tecfan/internal/daemon"
)

// Config tunes a Client. Zero values take the documented defaults.
type Config struct {
	// BaseURL is the daemon (or chaos proxy) endpoint, e.g.
	// "http://127.0.0.1:8023". Required.
	BaseURL string
	// HTTPClient overrides the transport (default: a fresh http.Client; the
	// per-attempt deadline comes from RequestTimeout, not Client.Timeout).
	HTTPClient *http.Client
	// RequestTimeout bounds each attempt (default 10 s). A blackholed
	// connection costs one RequestTimeout, then the retry path takes over.
	RequestTimeout time.Duration
	// MaxRetries is how many times a failed call is retried beyond the first
	// attempt (default 8).
	MaxRetries int
	// BackoffBase/BackoffMax shape the full-jitter backoff: attempt i sleeps
	// uniform [0, min(BackoffMax, BackoffBase·2^i)) (defaults 100 ms / 5 s).
	// A server Retry-After hint overrides the computed backoff entirely.
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// Breaker tunes the circuit breaker shared by all calls on this client.
	Breaker BreakerConfig
	// Seed seeds the jitter stream (0: time-seeded).
	Seed int64
	// Logf receives retry decisions (default: silent).
	Logf func(format string, args ...any)
	// Clock is the time seam for retry backoff, breaker cooldown, and seed
	// derivation (default clockfault.OS); tecfan-worker wires a FaultClock
	// here under -clockfault-schedule.
	Clock clockfault.Clock
	// Observer, when non-nil, sees every attempt the client makes — including
	// ones that never reached the wire (breaker-denied) or never got a
	// response (transport error). The crucible records these into a
	// client-observed history its oracles judge; nothing in the client's own
	// behavior depends on it. Called synchronously: keep it fast and safe for
	// concurrent use.
	Observer func(ObservedCall)

	sleep func(ctx context.Context, d time.Duration) error // test seam
}

// ObservedCall is one client attempt as Config.Observer sees it.
type ObservedCall struct {
	// Method and Path identify the API call; Retry is the 0-based attempt
	// index within it.
	Method string
	Path   string
	Retry  int
	// Status is the HTTP status, or 0 when no response arrived; Err carries
	// the breaker/transport error in that case.
	Status int
	Err    string
	// RequestID echoes the daemon's X-Request-ID response header.
	RequestID string
	// ReadyState echoes the daemon's X-Tecfand-Ready header: "ok" or the
	// "; "-joined unreadiness reasons stamped on this exact response.
	ReadyState string
}

func (c *Config) fillDefaults() error {
	if c.BaseURL == "" {
		return errors.New("client: BaseURL is required")
	}
	if c.HTTPClient == nil {
		c.HTTPClient = &http.Client{}
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 10 * time.Second
	}
	if c.MaxRetries < 0 {
		return errors.New("client: MaxRetries must be non-negative")
	}
	if c.MaxRetries == 0 {
		c.MaxRetries = 8
	}
	if c.BackoffBase <= 0 {
		c.BackoffBase = 100 * time.Millisecond
	}
	if c.BackoffMax <= 0 {
		c.BackoffMax = 5 * time.Second
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	c.Clock = clockfault.Or(c.Clock)
	if c.sleep == nil {
		c.sleep = c.Clock.Sleep
	}
	return nil
}

// StatusError is a non-2xx response that was not (or could no longer be)
// retried. Status carries the HTTP code, Msg the server's error body.
type StatusError struct {
	Status     int
	Msg        string
	RequestID  string
	RetryAfter time.Duration
}

func (e *StatusError) Error() string {
	return fmt.Sprintf("client: server answered %d: %s", e.Status, e.Msg)
}

// ErrNotDone reports a result requested before the job finished.
var ErrNotDone = errors.New("client: job not done")

// Client is a hardened tecfand API client. It is safe for concurrent use.
type Client struct {
	cfg Config
	br  *Breaker

	rngMu sync.Mutex
	rng   *mrand.Rand
}

// New validates the config and builds a client.
func New(cfg Config) (*Client, error) {
	if err := cfg.fillDefaults(); err != nil {
		return nil, err
	}
	if _, err := url.Parse(cfg.BaseURL); err != nil {
		return nil, fmt.Errorf("client: bad BaseURL %q: %w", cfg.BaseURL, err)
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = cfg.Clock.Now().UnixNano()
	}
	brCfg := cfg.Breaker
	if brCfg.clock == nil {
		brCfg.clock = cfg.Clock
	}
	return &Client{
		cfg: cfg,
		br:  NewBreaker(brCfg),
		rng: mrand.New(mrand.NewSource(seed)),
	}, nil
}

// Breaker exposes the client's circuit breaker for state inspection.
func (c *Client) Breaker() *Breaker { return c.br }

// observe delivers an attempt record to the configured Observer, if any.
func (c *Client) observe(oc ObservedCall) {
	if c.cfg.Observer != nil {
		c.cfg.Observer(oc)
	}
}

// backoffDelay draws the full-jitter delay for retry i (0-based):
// uniform [0, min(BackoffMax, BackoffBase·2^i)).
func (c *Client) backoffDelay(retry int) time.Duration {
	ceil := c.cfg.BackoffBase
	for i := 0; i < retry && ceil < c.cfg.BackoffMax; i++ {
		ceil *= 2
	}
	if ceil > c.cfg.BackoffMax {
		ceil = c.cfg.BackoffMax
	}
	c.rngMu.Lock()
	defer c.rngMu.Unlock()
	return time.Duration(c.rng.Float64() * float64(ceil))
}

// NewIdempotencyKey mints a fresh random idempotency token. Submit calls it
// automatically; hold one yourself when the same logical submission must
// dedup across client restarts (the soak drill does).
func NewIdempotencyKey() string {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand failing is a broken platform; fall back to time so the
		// client still functions, at reduced collision resistance.
		//lint:tecfan-ignore allocfree -- broken-platform fallback: unreachable unless crypto/rand fails
		return fmt.Sprintf("key-%x", time.Now().UnixNano()) //lint:tecfan-ignore monotime -- package-level fallback with no clock in reach; collision resistance only, no timing decision
	}
	return "key-" + hex.EncodeToString(b[:])
}

// retryAfter parses a Retry-After header as delay-seconds (the only form
// tecfand emits); 0 means absent or unparseable.
func retryAfter(resp *http.Response) time.Duration {
	if resp == nil {
		return 0
	}
	v := resp.Header.Get("Retry-After")
	if v == "" {
		return 0
	}
	if secs, err := strconv.Atoi(strings.TrimSpace(v)); err == nil && secs >= 0 {
		return time.Duration(secs) * time.Second
	}
	return 0
}

// retryableStatus reports whether an HTTP status is worth retrying: the
// shedding and server-fault family, never client errors.
func retryableStatus(status int) bool {
	switch status {
	case http.StatusTooManyRequests, http.StatusInternalServerError,
		http.StatusBadGateway, http.StatusServiceUnavailable,
		http.StatusGatewayTimeout:
		return true
	}
	return false
}

// call is the hardened request core: breaker gate, per-attempt deadline,
// retry classification, Retry-After-aware backoff. A 2xx decodes into out
// (when non-nil) and returns the response status.
func (c *Client) call(ctx context.Context, method, path string, body []byte, header http.Header, out any) (int, error) {
	var lastErr error
	for retry := 0; ; retry++ {
		status, err := c.attempt(ctx, retry, method, path, body, header, out)
		if err == nil {
			return status, nil
		}
		lastErr = err
		if ctx.Err() != nil {
			return 0, fmt.Errorf("client: %s %s: %w (last error: %v)", method, path, ctx.Err(), err)
		}
		var se *StatusError
		if errors.As(err, &se) && !retryableStatus(se.Status) {
			return se.Status, err // permanent: 4xx application errors
		}
		if retry >= c.cfg.MaxRetries {
			return 0, fmt.Errorf("client: %s %s: giving up after %d attempts: %w", method, path, retry+1, lastErr)
		}
		delay := c.retryDelay(err, retry)
		c.cfg.Logf("client: %s %s attempt %d failed (%v); retrying in %s", method, path, retry+1, err, delay)
		if serr := c.cfg.sleep(ctx, delay); serr != nil {
			return 0, fmt.Errorf("client: %s %s: %w (last error: %v)", method, path, serr, lastErr)
		}
	}
}

// retryDelay picks the wait before the next attempt. Precedence: the
// server's Retry-After hint, then the breaker's cooldown remainder, then the
// client's own full-jitter backoff.
func (c *Client) retryDelay(err error, retry int) time.Duration {
	var se *StatusError
	if errors.As(err, &se) && se.RetryAfter > 0 {
		return se.RetryAfter
	}
	var oe *OpenError
	if errors.As(err, &oe) && oe.RetryIn > 0 {
		return oe.RetryIn
	}
	return c.backoffDelay(retry)
}

// attempt performs one request under the breaker and the per-attempt
// deadline.
func (c *Client) attempt(ctx context.Context, retry int, method, path string, body []byte, header http.Header, out any) (int, error) {
	record, err := c.br.Allow()
	if err != nil {
		c.observe(ObservedCall{Method: method, Path: path, Retry: retry, Err: err.Error()})
		return 0, err
	}
	actx, cancel := context.WithTimeout(ctx, c.cfg.RequestTimeout)
	defer cancel()
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(actx, method, c.cfg.BaseURL+path, rd)
	if err != nil {
		record(true) // config error, not transport health
		return 0, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	for k, vs := range header {
		for _, v := range vs {
			req.Header.Set(k, v)
		}
	}
	resp, err := c.cfg.HTTPClient.Do(req)
	if err != nil {
		record(false)
		c.observe(ObservedCall{Method: method, Path: path, Retry: retry, Err: err.Error()})
		return 0, fmt.Errorf("client: %w", err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		record(false)
		c.observe(ObservedCall{Method: method, Path: path, Retry: retry, Err: err.Error()})
		return 0, fmt.Errorf("client: reading response: %w", err)
	}
	// The wire worked: only 5xx counts against the breaker. 429 means the
	// server is alive and shedding deliberately — pacing is Retry-After's
	// job, not the breaker's.
	record(resp.StatusCode < 500)
	c.observe(ObservedCall{
		Method: method, Path: path, Retry: retry, Status: resp.StatusCode,
		RequestID:  resp.Header.Get("X-Request-ID"),
		ReadyState: resp.Header.Get(daemon.ReadyHeader),
	})

	if resp.StatusCode >= 300 {
		return resp.StatusCode, &StatusError{
			Status:     resp.StatusCode,
			Msg:        errorBody(data),
			RequestID:  resp.Header.Get("X-Request-ID"),
			RetryAfter: retryAfter(resp),
		}
	}
	if out != nil {
		switch o := out.(type) {
		case *[]byte:
			*o = data
		default:
			if err := json.Unmarshal(data, out); err != nil {
				return resp.StatusCode, fmt.Errorf("client: decoding %s %s response: %w", method, path, err)
			}
		}
	}
	return resp.StatusCode, nil
}

// errorBody extracts the daemon's {"error": ...} message, falling back to
// the raw (truncated) body.
func errorBody(data []byte) string {
	var e struct {
		Error string `json:"error"`
	}
	if json.Unmarshal(data, &e) == nil && e.Error != "" {
		return e.Error
	}
	s := strings.TrimSpace(string(data))
	if len(s) > 200 {
		s = s[:200] + "..."
	}
	return s
}

// submitResponse is the daemon's POST /jobs body.
type submitResponse struct {
	ID           string `json:"id"`
	Deduplicated bool   `json:"deduplicated,omitempty"`
}

// Submit submits a job under a freshly minted idempotency key: however many
// times the POST is retried, at most one job is enqueued.
func (c *Client) Submit(ctx context.Context, spec daemon.JobSpec) (string, error) {
	id, _, err := c.SubmitWithKey(ctx, NewIdempotencyKey(), spec)
	return id, err
}

// SubmitWithKey submits a job under a caller-held idempotency key and
// reports whether the server deduplicated it against an earlier submission
// with the same key (including one made before a daemon restart).
func (c *Client) SubmitWithKey(ctx context.Context, key string, spec daemon.JobSpec) (id string, deduplicated bool, err error) {
	if key == "" {
		return "", false, errors.New("client: empty idempotency key")
	}
	body, err := json.Marshal(spec)
	if err != nil {
		return "", false, fmt.Errorf("client: encoding spec: %w", err)
	}
	h := http.Header{}
	h.Set("Idempotency-Key", key)
	var sr submitResponse
	if _, err := c.call(ctx, http.MethodPost, "/jobs", body, h, &sr); err != nil {
		return "", false, err
	}
	if sr.ID == "" {
		return "", false, errors.New("client: submit response carried no job id")
	}
	return sr.ID, sr.Deduplicated, nil
}

// Job fetches a job's status.
func (c *Client) Job(ctx context.Context, id string) (daemon.JobView, error) {
	var v daemon.JobView
	_, err := c.call(ctx, http.MethodGet, "/jobs/"+url.PathEscape(id), nil, nil, &v)
	return v, err
}

// Jobs lists every job the daemon knows, in submission order.
func (c *Client) Jobs(ctx context.Context) ([]daemon.JobView, error) {
	var vs []daemon.JobView
	_, err := c.call(ctx, http.MethodGet, "/jobs", nil, nil, &vs)
	return vs, err
}

// Cancel requests cancellation of a queued or running job.
func (c *Client) Cancel(ctx context.Context, id string) error {
	_, err := c.call(ctx, http.MethodDelete, "/jobs/"+url.PathEscape(id), nil, nil, nil)
	return err
}

// Result fetches the durable result of a finished job as raw JSON bytes
// (raw so drills can byte-compare against a reference run). An unfinished
// job returns ErrNotDone.
func (c *Client) Result(ctx context.Context, id string) ([]byte, error) {
	var data []byte
	status, err := c.call(ctx, http.MethodGet, "/jobs/"+url.PathEscape(id)+"/result", nil, nil, &data)
	if status == http.StatusConflict {
		return nil, fmt.Errorf("%w: %s", ErrNotDone, id)
	}
	return data, err
}

// Wait polls until the job reaches a terminal state (done, failed,
// canceled) or ctx expires. Transient polling errors are absorbed — under
// chaos the daemon may be mid-restart — and polling simply continues.
func (c *Client) Wait(ctx context.Context, id string, poll time.Duration) (daemon.JobView, error) {
	if poll <= 0 {
		poll = 200 * time.Millisecond
	}
	for {
		v, err := c.Job(ctx, id)
		if err == nil {
			switch v.State {
			case daemon.StateDone, daemon.StateFailed, daemon.StateCanceled:
				return v, nil
			}
		} else {
			var se *StatusError
			if errors.As(err, &se) && se.Status == http.StatusNotFound {
				// A 404 is not transient: the job is unknown (or its token
				// was swept after a crash window) — surface it.
				return daemon.JobView{}, err
			}
			if ctx.Err() != nil {
				return daemon.JobView{}, err
			}
		}
		if serr := c.cfg.sleep(ctx, poll); serr != nil {
			return daemon.JobView{}, fmt.Errorf("client: waiting for %s: %w", id, serr)
		}
	}
}

// Live reports daemon liveness (GET /livez).
func (c *Client) Live(ctx context.Context) error {
	_, err := c.call(ctx, http.MethodGet, "/livez", nil, nil, nil)
	return err
}

// Ready reports daemon readiness (GET /readyz): nil only when the daemon is
// accepting work.
func (c *Client) Ready(ctx context.Context) error {
	_, err := c.call(ctx, http.MethodGet, "/readyz", nil, nil, nil)
	return err
}
