package client

import (
	"bytes"
	"context"
	"fmt"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"tecfan/internal/daemon"
	"tecfan/internal/netfault"
)

// startDaemon runs a real daemon.Server behind its real HTTP handler.
func startDaemon(t *testing.T, mut func(*daemon.Config)) (*daemon.Server, *httptest.Server) {
	t.Helper()
	cfg := daemon.Config{
		StateDir:        t.TempDir(),
		Workers:         2,
		QueueDepth:      32,
		CheckpointEvery: 1,
		WatchdogTimeout: -1,
		Logf:            t.Logf,
	}
	if mut != nil {
		mut(&cfg)
	}
	srv, err := daemon.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		hs.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
	})
	return srv, hs
}

func drillSpec(id string) daemon.JobSpec {
	return daemon.JobSpec{
		ID:      id,
		Kind:    daemon.KindTrace,
		Bench:   "cholesky",
		Threads: 16,
		Policy:  "TECfan-FT",
		Scale:   0.001,
	}
}

// TestClientHonorsDaemonShedding drives the daemon's real token-bucket 429
// path through the client: with a zero refill rate and burst 1, the second
// submission is shed with Retry-After, and the client must sleep exactly the
// daemon's hint (not its own sub-second backoff) before giving up.
func TestClientHonorsDaemonShedding(t *testing.T) {
	_, hs := startDaemon(t, func(cfg *daemon.Config) {
		cfg.SubmitRate = 0.000001 // effectively no refill
		cfg.SubmitBurst = 1
	})

	rec := &sleepRecorder{}
	c := testClient(t, hs.URL, rec, func(cfg *Config) {
		cfg.MaxRetries = 2
		cfg.BackoffBase = time.Millisecond
		cfg.BackoffMax = 10 * time.Millisecond
	})

	ctx := context.Background()
	if _, err := c.Submit(ctx, drillSpec("shed-0")); err != nil {
		t.Fatalf("first submit: %v", err)
	}
	_, err := c.Submit(ctx, drillSpec("shed-1"))
	if err == nil {
		t.Fatal("second submit got past an exhausted bucket")
	}
	delays := rec.all()
	if len(delays) != 2 {
		t.Fatalf("client slept %d times, want 2 retries", len(delays))
	}
	for i, d := range delays {
		// The bucket's Retry-After is whole seconds (min 1); the client's own
		// backoff here tops out at 10ms, so any >=1s sleep proves the server
		// hint won.
		if d < time.Second {
			t.Errorf("retry %d slept %s; daemon's Retry-After (>=1s) not honored", i, d)
		}
	}
}

// TestClientSubmitDedupAgainstDaemon proves the end-to-end idempotency
// contract: replaying a key returns the original job id with
// deduplicated=true and enqueues nothing new.
func TestClientSubmitDedupAgainstDaemon(t *testing.T) {
	srv, hs := startDaemon(t, nil)
	c := testClient(t, hs.URL, nil, nil)

	ctx := context.Background()
	key := NewIdempotencyKey()
	id1, dup1, err := c.SubmitWithKey(ctx, key, drillSpec("dedup-0"))
	if err != nil || dup1 {
		t.Fatalf("first submit = dup %v, %v", dup1, err)
	}
	id2, dup2, err := c.SubmitWithKey(ctx, key, drillSpec("dedup-0"))
	if err != nil || !dup2 || id2 != id1 {
		t.Fatalf("replay = %q dup %v, %v; want %q dup true", id2, dup2, err, id1)
	}
	if got := len(srv.Jobs()); got != 1 {
		t.Fatalf("daemon holds %d jobs after replay, want 1", got)
	}
}

// TestSoakExactlyOnceThroughChaos is the in-process soak drill: a real
// daemon behind a seeded netfault proxy (latency + drops + resets + a
// periodic partition window), hammered by concurrent clients that retry
// with idempotency keys. Every job must complete exactly once, and every
// result must be byte-identical to a fault-free reference run.
func TestSoakExactlyOnceThroughChaos(t *testing.T) {
	if testing.Short() {
		t.Skip("soak drill skipped in -short mode")
	}
	const jobs = 6

	// Reference pass: no proxy, no faults.
	reference := make(map[string][]byte, jobs)
	{
		_, hs := startDaemon(t, nil)
		c := testClient(t, hs.URL, nil, nil)
		ctx := context.Background()
		for i := 0; i < jobs; i++ {
			id := fmt.Sprintf("soak-%d", i)
			if _, err := c.Submit(ctx, drillSpec(id)); err != nil {
				t.Fatalf("reference submit %s: %v", id, err)
			}
		}
		for i := 0; i < jobs; i++ {
			id := fmt.Sprintf("soak-%d", i)
			if _, err := c.Wait(ctx, id, 5*time.Millisecond); err != nil {
				t.Fatalf("reference wait %s: %v", id, err)
			}
			data, err := c.Result(ctx, id)
			if err != nil {
				t.Fatalf("reference result %s: %v", id, err)
			}
			reference[id] = data
		}
	}

	// Chaos pass: same jobs through an adversarial proxy.
	srv, hs := startDaemon(t, nil)
	sched := netfault.Schedule{
		Base: netfault.Fault{
			Latency: netfault.Duration(2 * time.Millisecond),
			Jitter:  netfault.Duration(3 * time.Millisecond),
			Drop:    0.15,
			Reset:   0.10,
		},
		Windows: []netfault.Window{{
			From:      netfault.Duration(50 * time.Millisecond),
			To:        netfault.Duration(120 * time.Millisecond),
			Partition: true,
		}},
		Period: netfault.Duration(400 * time.Millisecond),
	}
	proxy, err := netfault.New("127.0.0.1:0", hs.Listener.Addr().String(), sched, 42, &netfault.Options{Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()

	var wg sync.WaitGroup
	errs := make(chan error, jobs)
	for i := 0; i < jobs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			id := fmt.Sprintf("soak-%d", i)
			cfg := Config{
				BaseURL:        "http://" + proxy.Addr(),
				RequestTimeout: 2 * time.Second,
				MaxRetries:     40,
				BackoffBase:    10 * time.Millisecond,
				BackoffMax:     200 * time.Millisecond,
				Seed:           int64(1000 + i),
				Breaker: BreakerConfig{
					FailureThreshold: 8,
					Cooldown:         100 * time.Millisecond,
					ProbeBudget:      2,
					SuccessThreshold: 1,
				},
			}
			c, err := New(cfg)
			if err != nil {
				errs <- err
				return
			}
			ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
			defer cancel()
			key := NewIdempotencyKey()
			// Submit twice with the same key on purpose: the second pass is a
			// client that lost the first response and replays.
			if _, _, err := c.SubmitWithKey(ctx, key, drillSpec(id)); err != nil {
				errs <- fmt.Errorf("%s: submit: %w", id, err)
				return
			}
			if _, dup, err := c.SubmitWithKey(ctx, key, drillSpec(id)); err != nil {
				errs <- fmt.Errorf("%s: replay: %w", id, err)
				return
			} else if !dup {
				errs <- fmt.Errorf("%s: replay was not deduplicated", id)
				return
			}
			if _, err := c.Wait(ctx, id, 20*time.Millisecond); err != nil {
				errs <- fmt.Errorf("%s: wait: %w", id, err)
				return
			}
			data, err := c.Result(ctx, id)
			if err != nil {
				errs <- fmt.Errorf("%s: result: %w", id, err)
				return
			}
			if !bytes.Equal(data, reference[id]) {
				errs <- fmt.Errorf("%s: chaos result differs from fault-free reference", id)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if t.Failed() {
		return
	}
	if got := len(srv.Jobs()); got != jobs {
		t.Fatalf("daemon ran %d jobs, want exactly %d (duplicate submissions leaked through)", got, jobs)
	}
}
