package client

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"tecfan/internal/pool"
)

// Pool endpoints: the worker side of the coordinator protocol. Fencing
// rejections (410 Gone) and dropped jobs (404) are deliberate, permanent
// answers — 4xx, so the retry core surfaces them after a single attempt
// instead of hammering a coordinator that has already moved the shard on —
// and are mapped back onto pool.ErrFenced / pool.ErrShardGone so worker code
// can errors.Is against the same sentinels the coordinator uses.

// mapPoolErr translates a pool endpoint's status error onto the pool
// sentinels.
func mapPoolErr(err error) error {
	var se *StatusError
	if !errors.As(err, &se) {
		return err
	}
	switch se.Status {
	case http.StatusGone:
		return fmt.Errorf("%w: %s", pool.ErrFenced, se.Msg)
	case http.StatusNotFound:
		return fmt.Errorf("%w: %s", pool.ErrShardGone, se.Msg)
	}
	return err
}

// PoolClaim asks the coordinator for a shard lease. A nil response with nil
// error means no work is currently available.
func (c *Client) PoolClaim(ctx context.Context, worker string) (*pool.ClaimResponse, error) {
	body, err := json.Marshal(pool.ClaimRequest{Worker: worker})
	if err != nil {
		return nil, fmt.Errorf("client: encoding claim: %w", err)
	}
	var data []byte
	status, err := c.call(ctx, http.MethodPost, "/pool/claim", body, nil, &data)
	if err != nil {
		return nil, mapPoolErr(err)
	}
	if status == http.StatusNoContent || len(data) == 0 {
		return nil, nil
	}
	return pool.DecodeClaimResponse(data)
}

// PoolHeartbeat renews a shard lease.
func (c *Client) PoolHeartbeat(ctx context.Context, hb *pool.HeartbeatRequest) (*pool.HeartbeatResponse, error) {
	body, err := json.Marshal(hb)
	if err != nil {
		return nil, fmt.Errorf("client: encoding heartbeat: %w", err)
	}
	var resp pool.HeartbeatResponse
	if _, err := c.call(ctx, http.MethodPost, "/pool/heartbeat", body, nil, &resp); err != nil {
		return nil, mapPoolErr(err)
	}
	return &resp, nil
}

// PoolCheckpoint uploads a shard progress snapshot.
func (c *Client) PoolCheckpoint(ctx context.Context, up *pool.CheckpointUpload) error {
	body, err := json.Marshal(up)
	if err != nil {
		return fmt.Errorf("client: encoding checkpoint upload: %w", err)
	}
	if _, err := c.call(ctx, http.MethodPost, "/pool/checkpoint", body, nil, nil); err != nil {
		return mapPoolErr(err)
	}
	return nil
}

// PoolComplete reports a shard's final result. Safe to retry: completion is
// idempotent under the granted token.
func (c *Client) PoolComplete(ctx context.Context, cr *pool.CompleteRequest) error {
	body, err := json.Marshal(cr)
	if err != nil {
		return fmt.Errorf("client: encoding complete: %w", err)
	}
	if _, err := c.call(ctx, http.MethodPost, "/pool/complete", body, nil, nil); err != nil {
		return mapPoolErr(err)
	}
	return nil
}

// PoolStats fetches the coordinator's counters (GET /pool/stats).
func (c *Client) PoolStats(ctx context.Context) (pool.Stats, error) {
	var st pool.Stats
	_, err := c.call(ctx, http.MethodGet, "/pool/stats", nil, nil, &st)
	return st, err
}
