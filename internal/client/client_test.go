package client

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"tecfan/internal/daemon"
)

// sleepRecorder replaces the client's sleep with an instant recorder.
type sleepRecorder struct {
	mu     sync.Mutex
	delays []time.Duration
}

func (r *sleepRecorder) sleep(ctx context.Context, d time.Duration) error {
	r.mu.Lock()
	r.delays = append(r.delays, d)
	r.mu.Unlock()
	return ctx.Err()
}

func (r *sleepRecorder) all() []time.Duration {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]time.Duration(nil), r.delays...)
}

func testClient(t *testing.T, url string, rec *sleepRecorder, mut func(*Config)) *Client {
	t.Helper()
	cfg := Config{
		BaseURL:     url,
		MaxRetries:  4,
		BackoffBase: 50 * time.Millisecond,
		BackoffMax:  time.Second,
		Seed:        1,
		Logf:        t.Logf,
	}
	if rec != nil {
		cfg.sleep = rec.sleep
	}
	if mut != nil {
		mut(&cfg)
	}
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("empty BaseURL accepted")
	}
	if _, err := New(Config{BaseURL: "http://x", MaxRetries: -1}); err == nil {
		t.Fatal("negative MaxRetries accepted")
	}
}

// TestRetryAfterHonored: a 429 with Retry-After pauses for the server's
// hint, not the client's own (much smaller) backoff.
func TestRetryAfterHonored(t *testing.T) {
	var calls atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			w.Header().Set("Retry-After", "3")
			w.WriteHeader(http.StatusTooManyRequests)
			_, _ = w.Write([]byte(`{"error":"shed"}`))
			return
		}
		w.WriteHeader(http.StatusAccepted)
		_, _ = w.Write([]byte(`{"id":"job-1"}`))
	}))
	defer srv.Close()

	rec := &sleepRecorder{}
	c := testClient(t, srv.URL, rec, nil)
	id, _, err := c.SubmitWithKey(context.Background(), "tok", daemon.JobSpec{Kind: daemon.KindTrace, Bench: "cholesky", Threads: 16})
	if err != nil || id != "job-1" {
		t.Fatalf("submit = %q, %v", id, err)
	}
	delays := rec.all()
	if len(delays) != 1 || delays[0] != 3*time.Second {
		t.Fatalf("slept %v, want exactly the server's 3s hint", delays)
	}
	if calls.Load() != 2 {
		t.Fatalf("server saw %d calls, want 2", calls.Load())
	}
}

// TestBackoffFullJitterBounds: without a Retry-After hint, retry i sleeps
// uniform [0, min(max, base·2^i)) — never beyond the cap.
func TestBackoffFullJitterBounds(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusServiceUnavailable)
	}))
	defer srv.Close()

	rec := &sleepRecorder{}
	c := testClient(t, srv.URL, rec, func(cfg *Config) {
		cfg.MaxRetries = 6
		cfg.Breaker.Disabled = true
	})
	_, err := c.Jobs(context.Background())
	if err == nil {
		t.Fatal("always-503 server produced a success")
	}
	delays := rec.all()
	if len(delays) != 6 {
		t.Fatalf("recorded %d delays, want 6", len(delays))
	}
	base, max := 50*time.Millisecond, time.Second
	for i, d := range delays {
		ceil := base << i
		if ceil > max {
			ceil = max
		}
		if d < 0 || d > ceil {
			t.Errorf("retry %d slept %s, want within [0, %s]", i, d, ceil)
		}
	}
}

// TestIdempotencyKeyStableAcrossRetries: every retry of one submission
// carries the same Idempotency-Key — the property server-side dedup needs.
func TestIdempotencyKeyStableAcrossRetries(t *testing.T) {
	var mu sync.Mutex
	var keys []string
	var calls int
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		keys = append(keys, r.Header.Get("Idempotency-Key"))
		calls++
		n := calls
		mu.Unlock()
		if n < 3 {
			w.WriteHeader(http.StatusBadGateway)
			return
		}
		w.WriteHeader(http.StatusAccepted)
		_, _ = w.Write([]byte(`{"id":"job-7"}`))
	}))
	defer srv.Close()

	c := testClient(t, srv.URL, &sleepRecorder{}, nil)
	id, err := c.Submit(context.Background(), daemon.JobSpec{Kind: daemon.KindTrace, Bench: "cholesky", Threads: 16})
	if err != nil || id != "job-7" {
		t.Fatalf("submit = %q, %v", id, err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(keys) != 3 {
		t.Fatalf("server saw %d attempts, want 3", len(keys))
	}
	for i, k := range keys {
		if k == "" || k != keys[0] {
			t.Fatalf("attempt %d key %q differs from first %q", i, k, keys[0])
		}
	}
	if _, _, err := c.SubmitWithKey(context.Background(), "", daemon.JobSpec{}); err == nil {
		t.Fatal("empty idempotency key accepted")
	}
}

// TestPermanentErrorsNotRetried: 4xx application errors surface immediately.
func TestPermanentErrorsNotRetried(t *testing.T) {
	var calls atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusBadRequest)
		_, _ = w.Write([]byte(`{"error":"bad spec"}`))
	}))
	defer srv.Close()

	c := testClient(t, srv.URL, &sleepRecorder{}, nil)
	_, err := c.Job(context.Background(), "nope")
	var se *StatusError
	if !errors.As(err, &se) || se.Status != http.StatusBadRequest || se.Msg != "bad spec" {
		t.Fatalf("err = %v", err)
	}
	if calls.Load() != 1 {
		t.Fatalf("400 was retried: %d calls", calls.Load())
	}
}

// TestBreakerOpensUnderFaultSchedule: consecutive transport failures open
// the breaker, after which calls fail fast without touching the server;
// once the server heals and the cooldown passes, probes close it again.
func TestBreakerOpensUnderFaultSchedule(t *testing.T) {
	var healthy atomic.Bool
	var calls atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		if !healthy.Load() {
			w.WriteHeader(http.StatusInternalServerError)
			return
		}
		_, _ = w.Write([]byte(`[]`))
	}))
	defer srv.Close()

	clk := newFakeClock()
	c := testClient(t, srv.URL, &sleepRecorder{}, func(cfg *Config) {
		cfg.MaxRetries = 2
		cfg.Breaker = BreakerConfig{
			FailureThreshold: 3,
			Cooldown:         10 * time.Second,
			ProbeBudget:      1,
			SuccessThreshold: 1,
			clock:            clk,
		}
	})

	// Fault phase: each call makes up to 3 attempts; the threshold trips
	// during the first call.
	if _, err := c.Jobs(context.Background()); err == nil {
		t.Fatal("faulty phase succeeded")
	}
	if got := c.Breaker().State(); got != BreakerOpen {
		t.Fatalf("breaker after failures = %v, want open", got)
	}
	seen := calls.Load()
	if _, err := c.Jobs(context.Background()); !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("open-breaker call = %v, want ErrCircuitOpen", err)
	}
	if calls.Load() != seen {
		t.Fatal("open breaker still let requests reach the server")
	}

	// Heal phase: cooldown elapses, one probe closes it, traffic flows.
	healthy.Store(true)
	clk.Advance(11 * time.Second)
	if _, err := c.Jobs(context.Background()); err != nil {
		t.Fatalf("post-heal call failed: %v", err)
	}
	if got := c.Breaker().State(); got != BreakerClosed {
		t.Fatalf("breaker after heal = %v, want closed", got)
	}
}

// TestWaitPollsToTerminal: Wait keeps polling through transient errors and
// returns the terminal view.
func TestWaitPollsToTerminal(t *testing.T) {
	var calls atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch calls.Add(1) {
		case 1:
			w.WriteHeader(http.StatusInternalServerError) // daemon mid-restart
		case 2:
			_ = json.NewEncoder(w).Encode(daemon.JobView{ID: "j", State: daemon.StateRunning})
		default:
			_ = json.NewEncoder(w).Encode(daemon.JobView{ID: "j", State: daemon.StateDone})
		}
	}))
	defer srv.Close()

	c := testClient(t, srv.URL, &sleepRecorder{}, func(cfg *Config) { cfg.MaxRetries = 0 })
	v, err := c.Wait(context.Background(), "j", time.Millisecond)
	if err != nil || v.State != daemon.StateDone {
		t.Fatalf("Wait = %+v, %v", v, err)
	}
}

// TestWaitUnknownJobSurfaces404: a 404 is not transient; Wait must not spin
// on a job that does not exist.
func TestWaitUnknownJobSurfaces404(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusNotFound)
		_, _ = w.Write([]byte(`{"error":"no such job"}`))
	}))
	defer srv.Close()
	c := testClient(t, srv.URL, &sleepRecorder{}, nil)
	_, err := c.Wait(context.Background(), "ghost", time.Millisecond)
	var se *StatusError
	if !errors.As(err, &se) || se.Status != http.StatusNotFound {
		t.Fatalf("Wait on unknown job = %v, want 404 StatusError", err)
	}
}

// TestResultNotDone maps the daemon's 409 polling answer to ErrNotDone.
func TestResultNotDone(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusConflict)
		_ = json.NewEncoder(w).Encode(daemon.JobView{ID: "j", State: daemon.StateRunning})
	}))
	defer srv.Close()
	c := testClient(t, srv.URL, &sleepRecorder{}, nil)
	if _, err := c.Result(context.Background(), "j"); !errors.Is(err, ErrNotDone) {
		t.Fatalf("Result on running job = %v, want ErrNotDone", err)
	}
}

// TestPerAttemptDeadline: a hung server costs one RequestTimeout per
// attempt, not forever.
func TestPerAttemptDeadline(t *testing.T) {
	hang := make(chan struct{})
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-hang
	}))
	defer srv.Close()
	defer close(hang) // LIFO: unpark handlers before srv.Close waits on them
	c := testClient(t, srv.URL, &sleepRecorder{}, func(cfg *Config) {
		cfg.RequestTimeout = 50 * time.Millisecond
		cfg.MaxRetries = 1
	})
	start := time.Now()
	_, err := c.Jobs(context.Background())
	if err == nil {
		t.Fatal("hung server produced a success")
	}
	if el := time.Since(start); el > 2*time.Second {
		t.Fatalf("two bounded attempts took %s", el)
	}
}
