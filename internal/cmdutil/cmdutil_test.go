package cmdutil

import (
	"os"
	"strings"
	"testing"
	"time"
)

type fakeSystem struct{}

func (fakeSystem) Benchmarks() []string { return []string{"cholesky/16", "fft/4"} }
func (fakeSystem) Policies() []string   { return []string{"TECfan", "fan-only"} }

func TestCheckBench(t *testing.T) {
	sys := fakeSystem{}
	if err := CheckBench(sys, "cholesky", 16); err != nil {
		t.Errorf("valid bench rejected: %v", err)
	}
	err := CheckBench(sys, "cholesky", 8)
	if err == nil || !strings.Contains(err.Error(), "cholesky/16") {
		t.Errorf("invalid thread count: err = %v, want the valid list", err)
	}
}

func TestCheckPolicy(t *testing.T) {
	sys := fakeSystem{}
	if err := CheckPolicy(sys, "TECfan"); err != nil {
		t.Errorf("valid policy rejected: %v", err)
	}
	if err := CheckPolicy(sys, "nope"); err == nil {
		t.Error("unknown policy accepted")
	}
}

func TestCheckAddr(t *testing.T) {
	for _, addr := range []string{":8023", "127.0.0.1:0", "localhost:9999"} {
		if err := CheckAddr("addr", addr); err != nil {
			t.Errorf("CheckAddr(%q) = %v, want nil", addr, err)
		}
	}
	for _, addr := range []string{"", "nohost", "1.2.3.4"} {
		if err := CheckAddr("addr", addr); err == nil {
			t.Errorf("CheckAddr(%q) accepted", addr)
		}
	}
}

func TestCheckPort(t *testing.T) {
	for _, port := range []int{1, 8080, 65535} {
		if err := CheckPort("port", port, false); err != nil {
			t.Errorf("CheckPort(%d) = %v, want nil", port, err)
		}
	}
	for _, port := range []int{0, -1, 65536, 1 << 20} {
		if err := CheckPort("port", port, false); err == nil {
			t.Errorf("CheckPort(%d, zeroOK=false) accepted", port)
		}
	}
	if err := CheckPort("port", 0, true); err != nil {
		t.Errorf("CheckPort(0, zeroOK=true) = %v, want nil (0 = disabled)", err)
	}
	if err := CheckPort("port", -1, true); err == nil {
		t.Error("CheckPort(-1, zeroOK=true) accepted")
	}
}

func TestCheckBaseURL(t *testing.T) {
	for _, u := range []string{"http://127.0.0.1:8023", "https://coord.example", "http://localhost:1/base"} {
		if err := CheckBaseURL("coordinator", u); err != nil {
			t.Errorf("CheckBaseURL(%q) = %v, want nil", u, err)
		}
	}
	for _, u := range []string{"", "bad url", "127.0.0.1:8023", "ftp://host", "http://"} {
		if err := CheckBaseURL("coordinator", u); err == nil {
			t.Errorf("CheckBaseURL(%q) accepted", u)
		}
	}
}

func TestCheckExistingDir(t *testing.T) {
	dir := t.TempDir()
	if err := CheckExistingDir("dir", dir); err != nil {
		t.Errorf("existing dir rejected: %v", err)
	}
	if err := CheckExistingDir("dir", ""); err == nil {
		t.Error("empty path accepted")
	}
	if err := CheckExistingDir("dir", dir+"/missing"); err == nil {
		t.Error("missing path accepted")
	}
	file := dir + "/f"
	if err := os.WriteFile(file, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := CheckExistingDir("dir", file); err == nil {
		t.Error("regular file accepted as directory")
	}
}

func TestCheckFileExists(t *testing.T) {
	dir := t.TempDir()
	file := dir + "/f.json"
	if err := os.WriteFile(file, []byte("{}"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := CheckFileExists("baseline", file); err != nil {
		t.Errorf("existing file rejected: %v", err)
	}
	if err := CheckFileExists("baseline", ""); err == nil {
		t.Error("empty path accepted")
	}
	if err := CheckFileExists("baseline", dir+"/missing.json"); err == nil {
		t.Error("missing path accepted")
	}
	if err := CheckFileExists("baseline", dir); err == nil {
		t.Error("directory accepted as file")
	}
}

func TestCheckDurations(t *testing.T) {
	if err := CheckPositiveDuration("t", time.Second); err != nil {
		t.Error(err)
	}
	if err := CheckPositiveDuration("t", 0); err == nil {
		t.Error("zero accepted as positive duration")
	}
	if err := CheckNonNegativeDuration("t", 0); err != nil {
		t.Error(err)
	}
	if err := CheckNonNegativeDuration("t", -time.Second); err == nil {
		t.Error("negative accepted as non-negative duration")
	}
}

func TestCheckPositiveInt(t *testing.T) {
	if err := CheckPositiveInt("n", 1); err != nil {
		t.Error(err)
	}
	if err := CheckPositiveInt("n", 0); err == nil {
		t.Error("zero accepted as positive int")
	}
}

func TestCheckProbability(t *testing.T) {
	for _, p := range []float64{0, 0.5, 1} {
		if err := CheckProbability("p", p); err != nil {
			t.Errorf("CheckProbability(%g) = %v", p, err)
		}
	}
	for _, p := range []float64{-0.01, 1.01} {
		if err := CheckProbability("p", p); err == nil {
			t.Errorf("CheckProbability(%g) accepted", p)
		}
	}
}

func TestCheckPackagePattern(t *testing.T) {
	for _, pat := range []string{"./...", ".", "tecfan/internal/sim", "std", "./cmd/tecfan-lint"} {
		if err := CheckPackagePattern("tecfan-lint", pat); err != nil {
			t.Errorf("CheckPackagePattern(%q) = %v", pat, err)
		}
	}
	bad := map[string]string{
		"":            "empty",
		"-json":       "flag-looking",
		"./... extra": "embedded space",
		"a\tb":        "embedded tab",
		"a\nb":        "embedded newline",
	}
	for pat, why := range bad {
		if err := CheckPackagePattern("tecfan-lint", pat); err == nil {
			t.Errorf("CheckPackagePattern(%q) accepted (%s)", pat, why)
		}
	}
}

func TestCheckOneOf(t *testing.T) {
	if err := CheckOneOf("mode", "text", "text", "json"); err != nil {
		t.Error(err)
	}
	err := CheckOneOf("mode", "xml", "text", "json")
	if err == nil {
		t.Fatal("invalid enum value accepted")
	}
	if !strings.Contains(err.Error(), "text, json") {
		t.Errorf("error %q does not list the valid values", err)
	}
}
