// Package cmdutil holds the flag-validation helpers shared by the cmd/
// tools: every tool checks its -bench/-policy arguments eagerly, before any
// simulation starts, and a bad value fails with the list of valid choices
// instead of surfacing minutes later from deep inside a run.
package cmdutil

import (
	"fmt"
	"net"
	"strings"
	"time"
)

// System is the slice of the tecfan.System surface the helpers need; taking
// an interface avoids an import cycle with the root package.
type System interface {
	Benchmarks() []string
	Policies() []string
}

// CheckBench validates a benchmark/thread-count pair against the Table I
// configurations ("name/threads").
func CheckBench(sys System, bench string, threads int) error {
	want := fmt.Sprintf("%s/%d", bench, threads)
	valid := sys.Benchmarks()
	for _, b := range valid {
		if b == want {
			return nil
		}
	}
	return fmt.Errorf("unknown benchmark %q (valid: %s)", want, strings.Join(valid, ", "))
}

// CheckPolicy validates a policy name.
func CheckPolicy(sys System, name string) error {
	valid := sys.Policies()
	for _, p := range valid {
		if p == name {
			return nil
		}
	}
	return fmt.Errorf("unknown policy %q (valid: %s)", name, strings.Join(valid, ", "))
}

// CheckAddr validates a host:port listen/dial address eagerly, so a typo
// fails at flag parse time rather than as a bind error after state is built.
func CheckAddr(flagName, addr string) error {
	if addr == "" {
		return fmt.Errorf("-%s must not be empty", flagName)
	}
	if _, _, err := net.SplitHostPort(addr); err != nil {
		return fmt.Errorf("-%s: %q is not host:port: %v", flagName, addr, err)
	}
	return nil
}

// CheckPositiveDuration rejects zero and negative durations for flags where
// "no timeout" is not a sensible interpretation.
func CheckPositiveDuration(flagName string, d time.Duration) error {
	if d <= 0 {
		return fmt.Errorf("-%s must be > 0, got %v", flagName, d)
	}
	return nil
}

// CheckNonNegativeDuration rejects negative durations for flags where zero
// means "disabled".
func CheckNonNegativeDuration(flagName string, d time.Duration) error {
	if d < 0 {
		return fmt.Errorf("-%s must be >= 0, got %v", flagName, d)
	}
	return nil
}

// CheckPositiveInt rejects values below 1 for counts that must exist.
func CheckPositiveInt(flagName string, n int) error {
	if n < 1 {
		return fmt.Errorf("-%s must be >= 1, got %d", flagName, n)
	}
	return nil
}

// CheckProbability rejects values outside [0, 1].
func CheckProbability(flagName string, p float64) error {
	if p < 0 || p > 1 {
		return fmt.Errorf("-%s must be within [0, 1], got %g", flagName, p)
	}
	return nil
}

// PrintLists prints the valid benchmarks and policies — the body of every
// tool's -list flag.
func PrintLists(sys System) {
	fmt.Println("benchmarks:")
	for _, b := range sys.Benchmarks() {
		fmt.Printf("  %s\n", b)
	}
	fmt.Println("policies:")
	for _, p := range sys.Policies() {
		fmt.Printf("  %s\n", p)
	}
}
