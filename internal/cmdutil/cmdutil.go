// Package cmdutil holds the flag-validation helpers shared by the cmd/
// tools: every tool checks its -bench/-policy arguments eagerly, before any
// simulation starts, and a bad value fails with the list of valid choices
// instead of surfacing minutes later from deep inside a run.
package cmdutil

import (
	"fmt"
	"strings"
)

// System is the slice of the tecfan.System surface the helpers need; taking
// an interface avoids an import cycle with the root package.
type System interface {
	Benchmarks() []string
	Policies() []string
}

// CheckBench validates a benchmark/thread-count pair against the Table I
// configurations ("name/threads").
func CheckBench(sys System, bench string, threads int) error {
	want := fmt.Sprintf("%s/%d", bench, threads)
	valid := sys.Benchmarks()
	for _, b := range valid {
		if b == want {
			return nil
		}
	}
	return fmt.Errorf("unknown benchmark %q (valid: %s)", want, strings.Join(valid, ", "))
}

// CheckPolicy validates a policy name.
func CheckPolicy(sys System, name string) error {
	valid := sys.Policies()
	for _, p := range valid {
		if p == name {
			return nil
		}
	}
	return fmt.Errorf("unknown policy %q (valid: %s)", name, strings.Join(valid, ", "))
}

// PrintLists prints the valid benchmarks and policies — the body of every
// tool's -list flag.
func PrintLists(sys System) {
	fmt.Println("benchmarks:")
	for _, b := range sys.Benchmarks() {
		fmt.Printf("  %s\n", b)
	}
	fmt.Println("policies:")
	for _, p := range sys.Policies() {
		fmt.Printf("  %s\n", p)
	}
}
