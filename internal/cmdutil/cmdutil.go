// Package cmdutil holds the flag-validation helpers shared by the cmd/
// tools: every tool checks its -bench/-policy arguments eagerly, before any
// simulation starts, and a bad value fails with the list of valid choices
// instead of surfacing minutes later from deep inside a run.
package cmdutil

import (
	"fmt"
	"net"
	"net/url"
	"os"
	"strings"
	"time"
)

// System is the slice of the tecfan.System surface the helpers need; taking
// an interface avoids an import cycle with the root package.
type System interface {
	Benchmarks() []string
	Policies() []string
}

// CheckBench validates a benchmark/thread-count pair against the Table I
// configurations ("name/threads").
func CheckBench(sys System, bench string, threads int) error {
	want := fmt.Sprintf("%s/%d", bench, threads)
	valid := sys.Benchmarks()
	for _, b := range valid {
		if b == want {
			return nil
		}
	}
	return fmt.Errorf("unknown benchmark %q (valid: %s)", want, strings.Join(valid, ", "))
}

// CheckPolicy validates a policy name.
func CheckPolicy(sys System, name string) error {
	valid := sys.Policies()
	for _, p := range valid {
		if p == name {
			return nil
		}
	}
	return fmt.Errorf("unknown policy %q (valid: %s)", name, strings.Join(valid, ", "))
}

// CheckAddr validates a host:port listen/dial address eagerly, so a typo
// fails at flag parse time rather than as a bind error after state is built.
func CheckAddr(flagName, addr string) error {
	if addr == "" {
		return fmt.Errorf("-%s must not be empty", flagName)
	}
	if _, _, err := net.SplitHostPort(addr); err != nil {
		return fmt.Errorf("-%s: %q is not host:port: %v", flagName, addr, err)
	}
	return nil
}

// CheckBaseURL validates an http(s) base-URL flag eagerly. url.Parse alone
// is too lenient — it accepts almost any string — so a worker pointed at a
// garbage coordinator URL would otherwise retry forever instead of failing
// at startup.
func CheckBaseURL(flagName, raw string) error {
	if raw == "" {
		return fmt.Errorf("-%s must not be empty", flagName)
	}
	u, err := url.Parse(raw)
	if err != nil {
		return fmt.Errorf("-%s: %q: %v", flagName, raw, err)
	}
	if u.Scheme != "http" && u.Scheme != "https" {
		return fmt.Errorf("-%s: %q must be an http:// or https:// URL", flagName, raw)
	}
	if u.Host == "" {
		return fmt.Errorf("-%s: %q has no host", flagName, raw)
	}
	return nil
}

// CheckPort validates a TCP/UDP port number flag. zeroOK admits 0 for flags
// where it means "disabled" (health endpoints) or "kernel-assigned".
func CheckPort(flagName string, port int, zeroOK bool) error {
	if port == 0 && zeroOK {
		return nil
	}
	if port < 1 || port > 65535 {
		if zeroOK {
			return fmt.Errorf("-%s must be 0 or within [1, 65535], got %d", flagName, port)
		}
		return fmt.Errorf("-%s must be within [1, 65535], got %d", flagName, port)
	}
	return nil
}

// CheckExistingDir validates that a path flag names an existing directory —
// eagerly, so a worker pointed at a missing scratch dir fails at startup
// instead of on its first checkpoint write mid-shard.
func CheckExistingDir(flagName, path string) error {
	if path == "" {
		return fmt.Errorf("-%s must not be empty", flagName)
	}
	info, err := os.Stat(path)
	if err != nil {
		return fmt.Errorf("-%s: %v", flagName, err)
	}
	if !info.IsDir() {
		return fmt.Errorf("-%s: %q is not a directory", flagName, path)
	}
	return nil
}

// CheckFileExists validates that a path flag names an existing regular file
// — eagerly, so a tool pointed at a missing baseline or cache file fails at
// flag parsing instead of deep inside its run.
func CheckFileExists(flagName, path string) error {
	if path == "" {
		return fmt.Errorf("-%s must not be empty", flagName)
	}
	info, err := os.Stat(path)
	if err != nil {
		return fmt.Errorf("-%s: %v", flagName, err)
	}
	if info.IsDir() {
		return fmt.Errorf("-%s: %q is a directory, not a file", flagName, path)
	}
	return nil
}

// CheckPositiveDuration rejects zero and negative durations for flags where
// "no timeout" is not a sensible interpretation.
func CheckPositiveDuration(flagName string, d time.Duration) error {
	if d <= 0 {
		return fmt.Errorf("-%s must be > 0, got %v", flagName, d)
	}
	return nil
}

// CheckNonNegativeDuration rejects negative durations for flags where zero
// means "disabled".
func CheckNonNegativeDuration(flagName string, d time.Duration) error {
	if d < 0 {
		return fmt.Errorf("-%s must be >= 0, got %v", flagName, d)
	}
	return nil
}

// CheckPositiveInt rejects values below 1 for counts that must exist.
func CheckPositiveInt(flagName string, n int) error {
	if n < 1 {
		return fmt.Errorf("-%s must be >= 1, got %d", flagName, n)
	}
	return nil
}

// CheckProbability rejects values outside [0, 1].
func CheckProbability(flagName string, p float64) error {
	if p < 0 || p > 1 {
		return fmt.Errorf("-%s must be within [0, 1], got %g", flagName, p)
	}
	return nil
}

// CheckPackagePattern validates a go-tool package pattern argument
// ("./...", "tecfan/internal/sim", "std") eagerly, so tecfan-lint rejects
// a flag-looking or whitespace-mangled argument before spending seconds in
// `go list`.
func CheckPackagePattern(flagName, pattern string) error {
	if pattern == "" {
		return fmt.Errorf("%s: package pattern must not be empty", flagName)
	}
	if strings.HasPrefix(pattern, "-") {
		return fmt.Errorf("%s: package pattern %q looks like a flag; flags must precede patterns", flagName, pattern)
	}
	if strings.ContainsAny(pattern, " \t\n") {
		return fmt.Errorf("%s: package pattern %q contains whitespace", flagName, pattern)
	}
	return nil
}

// CheckOneOf validates an enum-valued flag against its allowed values.
func CheckOneOf(flagName, got string, valid ...string) error {
	for _, v := range valid {
		if got == v {
			return nil
		}
	}
	return fmt.Errorf("-%s must be one of %s, got %q", flagName, strings.Join(valid, ", "), got)
}

// PrintLists prints the valid benchmarks and policies — the body of every
// tool's -list flag.
func PrintLists(sys System) {
	fmt.Println("benchmarks:")
	for _, b := range sys.Benchmarks() {
		fmt.Printf("  %s\n", b)
	}
	fmt.Println("policies:")
	for _, p := range sys.Policies() {
		fmt.Printf("  %s\n", p)
	}
}
