package viz

import (
	"bytes"
	"encoding/xml"
	"strings"
	"testing"

	"tecfan/internal/fan"
	"tecfan/internal/floorplan"
	"tecfan/internal/tec"
	"tecfan/internal/thermal"
)

// wellFormed checks that the output parses as XML.
func wellFormed(t *testing.T, svg []byte) {
	t.Helper()
	dec := xml.NewDecoder(bytes.NewReader(svg))
	for {
		_, err := dec.Token()
		if err != nil {
			if err.Error() == "EOF" {
				return
			}
			t.Fatalf("SVG not well-formed XML: %v", err)
		}
	}
}

func TestFloorplanSVG(t *testing.T) {
	chip := floorplan.NewQuad()
	tecs := tec.Array(chip, tec.DefaultDevice())
	var buf bytes.Buffer
	if err := Floorplan(&buf, chip, tecs); err != nil {
		t.Fatal(err)
	}
	svg := buf.String()
	wellFormed(t, buf.Bytes())
	// One rect per component plus one per TEC (and no fewer).
	rects := strings.Count(svg, "<rect")
	if rects < len(chip.Components)+len(tecs) {
		t.Fatalf("%d rects for %d components + %d TECs", rects, len(chip.Components), len(tecs))
	}
	if !strings.Contains(svg, "FPMul") {
		t.Fatal("component labels missing")
	}
	// TEC outlines are red-stroked.
	if !strings.Contains(svg, `stroke="#c00"`) {
		t.Fatal("TEC outlines missing")
	}
}

func TestFloorplanWithoutTECs(t *testing.T) {
	var buf bytes.Buffer
	if err := Floorplan(&buf, floorplan.NewQuad(), nil); err != nil {
		t.Fatal(err)
	}
	wellFormed(t, buf.Bytes())
}

func TestComponentHeatmap(t *testing.T) {
	chip := floorplan.NewQuad()
	nw := thermal.NewNetwork(chip, fan.DynatronR16(), thermal.DefaultParams())
	p := make([]float64, len(chip.Components))
	for i, c := range chip.Components {
		p[i] = 30 * c.Area() / chip.Area()
	}
	temps, err := nw.Steady(p, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := ComponentHeatmap(&buf, chip, temps); err != nil {
		t.Fatal(err)
	}
	wellFormed(t, buf.Bytes())
	svg := buf.String()
	if !strings.Contains(svg, "°C") {
		t.Fatal("scale bar labels missing")
	}
	if !strings.Contains(svg, "<title>") {
		t.Fatal("hover titles missing")
	}
	// Short temperature vector is rejected.
	if err := ComponentHeatmap(&buf, chip, temps[:3]); err == nil {
		t.Fatal("short vector accepted")
	}
}

func TestGridHeatmap(t *testing.T) {
	chip := floorplan.NewQuad()
	g, err := thermal.NewGrid(chip, fan.DynatronR16(), thermal.DefaultParams(), 0.3)
	if err != nil {
		t.Fatal(err)
	}
	p := make([]float64, len(chip.Components))
	fpmul := chip.Lookup(1, "FPMul")
	p[fpmul] = 3
	temps, err := g.Steady(p, 1)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := GridHeatmap(&buf, g, temps); err != nil {
		t.Fatal(err)
	}
	wellFormed(t, buf.Bytes())
	if strings.Count(buf.String(), "<rect") < g.NumCells() {
		t.Fatalf("fewer rects than cells")
	}
	if err := GridHeatmap(&buf, g, temps[:5]); err == nil {
		t.Fatal("short vector accepted")
	}
}

func TestColorRamp(t *testing.T) {
	// Endpoints and clamping.
	if colorFor(0) != colorFor(-1) {
		t.Fatal("low clamp broken")
	}
	if colorFor(1) != colorFor(2) {
		t.Fatal("high clamp broken")
	}
	if colorFor(0) == colorFor(1) {
		t.Fatal("ramp is degenerate")
	}
	// Format is a valid rgb() triple.
	if !strings.HasPrefix(colorFor(0.3), "rgb(") {
		t.Fatalf("bad color %q", colorFor(0.3))
	}
}

func TestTempRange(t *testing.T) {
	lo, hi := tempRange([]float64{50, 70, 60})
	if lo != 50 || hi != 70 {
		t.Fatalf("range (%v,%v)", lo, hi)
	}
	// Degenerate input is padded so the ramp does not divide by zero.
	lo, hi = tempRange([]float64{55, 55})
	if hi <= lo {
		t.Fatal("degenerate range not padded")
	}
}
