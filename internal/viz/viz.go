// Package viz renders floorplans and thermal fields as standalone SVG —
// the visual counterpart of HotSpot's grid dumps. It has two products:
//
//   - Floorplan: the chip's component rectangles with labels, for sanity-
//     checking geometry and TEC placement;
//   - Heatmap: a temperature field (per-component from the compact model or
//     per-cell from the grid model) colour-mapped over the floorplan, with
//     a scale bar.
//
// Everything is plain string assembly over the standard library; the output
// loads in any browser.
package viz

import (
	"fmt"
	"io"
	"math"
	"strings"

	"tecfan/internal/floorplan"
	"tecfan/internal/tec"
	"tecfan/internal/thermal"
)

// pxPerMM controls output resolution.
const pxPerMM = 40.0

// header opens an SVG document of the given chip dimensions (mm), leaving
// room for a scale bar on the right when wantBar is set.
func header(b *strings.Builder, wmm, hmm float64, wantBar bool) (wpx, hpx float64) {
	wpx = wmm * pxPerMM
	hpx = hmm * pxPerMM
	total := wpx
	if wantBar {
		total += 70
	}
	fmt.Fprintf(b, `<svg xmlns="http://www.w3.org/2000/svg" width="%.0f" height="%.0f" viewBox="0 0 %.0f %.0f">`+"\n",
		total, hpx, total, hpx)
	return wpx, hpx
}

// Floorplan renders the chip's components. TEC placements, when non-nil,
// are drawn as outlined squares over their tiles.
func Floorplan(w io.Writer, chip *floorplan.Chip, tecs []tec.Placement) error {
	var b strings.Builder
	header(&b, chip.W, chip.H, false)
	fills := map[floorplan.Kind]string{
		floorplan.KindLogic: "#f4cccc",
		floorplan.KindArray: "#cfe2f3",
		floorplan.KindWire:  "#d9ead3",
		floorplan.KindVR:    "#fff2cc",
	}
	for _, c := range chip.Components {
		fmt.Fprintf(&b, `<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="%s" stroke="#666" stroke-width="0.5"/>`+"\n",
			c.X*pxPerMM, c.Y*pxPerMM, c.W*pxPerMM, c.H*pxPerMM, fills[c.Kind])
		if c.W*pxPerMM > 28 && c.H*pxPerMM > 11 {
			fmt.Fprintf(&b, `<text x="%.1f" y="%.1f" font-size="8" font-family="sans-serif" fill="#333">%s</text>`+"\n",
				c.X*pxPerMM+2, c.Y*pxPerMM+9, c.Name)
		}
	}
	for _, p := range tecs {
		fmt.Fprintf(&b, `<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="none" stroke="#c00" stroke-width="1.2"/>`+"\n",
			p.X*pxPerMM, p.Y*pxPerMM, p.Device.Width*pxPerMM, p.Device.Height*pxPerMM)
	}
	b.WriteString("</svg>\n")
	_, err := io.WriteString(w, b.String())
	return err
}

// colorFor maps a normalized temperature u ∈ [0,1] onto a blue→red ramp.
func colorFor(u float64) string {
	if u < 0 {
		u = 0
	}
	if u > 1 {
		u = 1
	}
	// Blue (40,60,200) → yellow (250,220,60) → red (200,20,30).
	var r, g, bl float64
	if u < 0.5 {
		t := u * 2
		r = 40 + t*(250-40)
		g = 60 + t*(220-60)
		bl = 200 + t*(60-200)
	} else {
		t := (u - 0.5) * 2
		r = 250 + t*(200-250)
		g = 220 + t*(20-220)
		bl = 60 + t*(30-60)
	}
	return fmt.Sprintf("rgb(%.0f,%.0f,%.0f)", r, g, bl)
}

// scaleBar draws the colour legend.
func scaleBar(b *strings.Builder, xpx, hpx, tMin, tMax float64) {
	const steps = 32
	barH := hpx * 0.8
	y0 := hpx * 0.1
	for i := 0; i < steps; i++ {
		u := 1 - float64(i)/float64(steps-1)
		fmt.Fprintf(b, `<rect x="%.1f" y="%.1f" width="16" height="%.2f" fill="%s"/>`+"\n",
			xpx+10, y0+float64(i)*barH/steps, barH/steps+0.5, colorFor(u))
	}
	fmt.Fprintf(b, `<text x="%.1f" y="%.1f" font-size="10" font-family="sans-serif">%.1f°C</text>`+"\n",
		xpx+28, y0+8, tMax)
	fmt.Fprintf(b, `<text x="%.1f" y="%.1f" font-size="10" font-family="sans-serif">%.1f°C</text>`+"\n",
		xpx+28, y0+barH, tMin)
}

// tempRange returns min/max over a slice, padded when degenerate.
func tempRange(ts []float64) (lo, hi float64) {
	lo, hi = math.Inf(1), math.Inf(-1)
	for _, t := range ts {
		if t < lo {
			lo = t
		}
		if t > hi {
			hi = t
		}
	}
	if hi-lo < 1e-9 {
		hi = lo + 1
	}
	return lo, hi
}

// ComponentHeatmap renders per-component temperatures (the compact model's
// die nodes) over the floorplan.
func ComponentHeatmap(w io.Writer, chip *floorplan.Chip, dieTemps []float64) error {
	if len(dieTemps) < len(chip.Components) {
		return fmt.Errorf("viz: %d temperatures for %d components", len(dieTemps), len(chip.Components))
	}
	var b strings.Builder
	wpx, hpx := header(&b, chip.W, chip.H, true)
	lo, hi := tempRange(dieTemps[:len(chip.Components)])
	for i, c := range chip.Components {
		u := (dieTemps[i] - lo) / (hi - lo)
		fmt.Fprintf(&b, `<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="%s" stroke="#444" stroke-width="0.3"><title>%s %.2f°C</title></rect>`+"\n",
			c.X*pxPerMM, c.Y*pxPerMM, c.W*pxPerMM, c.H*pxPerMM, colorFor(u), c.ID(), dieTemps[i])
	}
	scaleBar(&b, wpx, hpx, lo, hi)
	b.WriteString("</svg>\n")
	_, err := io.WriteString(w, b.String())
	return err
}

// GridHeatmap renders a grid-model temperature field cell by cell.
func GridHeatmap(w io.Writer, g *thermal.Grid, temps []float64) error {
	if len(temps) < g.NumCells() {
		return fmt.Errorf("viz: %d temperatures for %d cells", len(temps), g.NumCells())
	}
	var b strings.Builder
	wpx, hpx := header(&b, g.Chip.W, g.Chip.H, true)
	lo, hi := tempRange(temps[:g.NumCells()])
	cw := g.Chip.W / float64(g.Nx) * pxPerMM
	ch := g.Chip.H / float64(g.Ny) * pxPerMM
	for iy := 0; iy < g.Ny; iy++ {
		for ix := 0; ix < g.Nx; ix++ {
			tcell := temps[iy*g.Nx+ix]
			u := (tcell - lo) / (hi - lo)
			fmt.Fprintf(&b, `<rect x="%.2f" y="%.2f" width="%.2f" height="%.2f" fill="%s"/>`+"\n",
				float64(ix)*cw, float64(iy)*ch, cw+0.5, ch+0.5, colorFor(u))
		}
	}
	// Overlay component outlines for orientation.
	for _, c := range g.Chip.Components {
		fmt.Fprintf(&b, `<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="none" stroke="#000" stroke-width="0.3" stroke-opacity="0.4"/>`+"\n",
			c.X*pxPerMM, c.Y*pxPerMM, c.W*pxPerMM, c.H*pxPerMM)
	}
	scaleBar(&b, wpx, hpx, lo, hi)
	b.WriteString("</svg>\n")
	_, err := io.WriteString(w, b.String())
	return err
}
