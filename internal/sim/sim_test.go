package sim

import (
	"errors"
	"math"
	"testing"

	"tecfan/internal/fan"
	"tecfan/internal/floorplan"
	"tecfan/internal/power"
	"tecfan/internal/tec"
	"tecfan/internal/thermal"
	"tecfan/internal/workload"
)

// testBench builds a small 4-core benchmark for the quad chip: 2 ms of work
// per core at max DVFS, moderate power.
func testBench(coreDyn float64) *workload.Benchmark {
	return &workload.Benchmark{
		Name:         "ut",
		Threads:      4,
		TotalInst:    4 * 2e6, // 2 ms per core at 1 GIPS
		ActiveCores:  []int{0, 1, 2, 3},
		Weights:      workload.WeightsFromDensity(workload.UniformMults()),
		CoreDyn:      coreDyn,
		IdleDyn:      0.3,
		BaseIPS:      1e9,
		Phases:       []workload.Phase{{Frac: 1, Activity: 1}},
		TargetTimeMS: 2.0,
	}
}

type env struct {
	chip *floorplan.Chip
	fm   *fan.Model
	nw   *thermal.Network
	tbl  *power.DVFSTable
	leak power.Leakage
	arr  []tec.Placement
}

func newEnv() *env {
	chip := floorplan.NewQuad()
	fm := fan.DynatronR16()
	return &env{
		chip: chip,
		fm:   fm,
		nw:   thermal.NewNetwork(chip, fm, thermal.DefaultParams()),
		tbl:  power.SCCTable(),
		leak: power.DefaultLeakage(),
		arr:  tec.Array(chip, tec.DefaultDevice()),
	}
}

func (e *env) config(b *workload.Benchmark, threshold float64) Config {
	return Config{
		Chip: e.chip, Fan: e.fm, Network: e.nw, DVFS: e.tbl, Leak: e.leak,
		TECs: e.arr, Bench: b, Threshold: threshold,
		FanLevel: 1, Step: 100e-6, ControlPeriod: 500e-6,
	}
}

// noop is a controller that does nothing (Fan-only semantics).
type noop struct{ calls int }

func (n *noop) Name() string                  { return "noop" }
func (n *noop) Control(*Observation) Decision { n.calls++; return Decision{} }
func (n *noop) Reset()                        {}

// throttler pins every core to the lowest DVFS level.
type throttler struct{}

func (throttler) Name() string { return "throttler" }
func (throttler) Control(obs *Observation) Decision {
	d := make([]int, len(obs.DVFS))
	return Decision{DVFS: d}
}
func (throttler) Reset() {}

// tecAll turns every TEC on at the first opportunity.
type tecAll struct{}

func (tecAll) Name() string { return "tecAll" }
func (tecAll) Control(obs *Observation) Decision {
	on := make([]bool, len(obs.TECOn))
	for i := range on {
		on[i] = true
	}
	return Decision{TECOn: on}
}
func (tecAll) Reset() {}

func TestRunCompletesOnTime(t *testing.T) {
	e := newEnv()
	b := testBench(2.0)
	r, err := NewRunner(e.config(b, 120), &noop{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatal("run did not complete")
	}
	// At max DVFS and constant activity, execution time ≈ TotalInst/(4·IPS);
	// the jitterless IPS here is BaseIPS·(0.85+0.15·1) = BaseIPS.
	want := 2e-3
	if math.Abs(res.Metrics.Time-want)/want > 0.05 {
		t.Fatalf("time %.4g s, want ≈ %.4g", res.Metrics.Time, want)
	}
	if res.Metrics.Energy <= 0 || res.Metrics.AvgPower <= 0 {
		t.Fatalf("bad metrics %+v", res.Metrics)
	}
	// Fan power at level 1 alone is 3.8 W; chip adds more.
	if res.Metrics.AvgPower < e.fm.Power(1) {
		t.Fatalf("avg power %.2f below fan floor", res.Metrics.AvgPower)
	}
	if res.Metrics.ViolationRatio != 0 {
		t.Fatalf("violations at a 120 °C threshold: %v", res.Metrics.ViolationRatio)
	}
}

func TestThrottlingDoublesTime(t *testing.T) {
	e := newEnv()
	b := testBench(2.0)
	rFast, _ := NewRunner(e.config(b, 120), &noop{})
	fast, err := rFast.Run()
	if err != nil {
		t.Fatal(err)
	}
	rSlow, _ := NewRunner(e.config(b, 120), throttler{})
	slow, err := rSlow.Run()
	if err != nil {
		t.Fatal(err)
	}
	ratio := slow.Metrics.Time / fast.Metrics.Time
	// Lowest level halves the frequency: expect ≈ 2× (first control period
	// still runs at max).
	if ratio < 1.6 || ratio > 2.2 {
		t.Fatalf("throttled/normal time ratio %.2f, want ≈ 2", ratio)
	}
	if slow.Metrics.AvgPower >= fast.Metrics.AvgPower {
		t.Fatal("throttling must cut average power")
	}
}

func TestTECControllerLowersPeak(t *testing.T) {
	e := newEnv()
	b := testBench(5.0) // hot
	// Concentrate power under the TEC array: a uniform-density workload
	// peaks on the (uncovered) L2 block, which TECs cannot reach.
	b.Weights = workload.WeightsFromDensity(workload.DensityMults{
		Logic: 1.5, Array: 0.7, Wire: 0.8, VR: 0.45,
		Overrides: map[string]float64{"FPMul": 6.0, "IntExec": 4.0},
	})
	rOff, _ := NewRunner(e.config(b, 200), &noop{})
	off, err := rOff.Run()
	if err != nil {
		t.Fatal(err)
	}
	rOn, _ := NewRunner(e.config(b, 200), tecAll{})
	on, err := rOn.Run()
	if err != nil {
		t.Fatal(err)
	}
	if on.Metrics.PeakTemp >= off.Metrics.PeakTemp {
		t.Fatalf("TECs did not lower peak: %.2f vs %.2f", on.Metrics.PeakTemp, off.Metrics.PeakTemp)
	}
	// TEC electrical power must show up in the chip energy.
	if on.Metrics.AvgPower <= off.Metrics.AvgPower {
		t.Fatal("36 powered TECs should raise chip power")
	}
}

func TestViolationAccounting(t *testing.T) {
	e := newEnv()
	b := testBench(5.0)
	r, _ := NewRunner(e.config(b, 50), &noop{}) // threshold far below reality
	res, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics.ViolationRatio < 0.9 {
		t.Fatalf("violation ratio %.2f, expected ~1 with a 50 °C threshold", res.Metrics.ViolationRatio)
	}
}

func TestTraceRecording(t *testing.T) {
	e := newEnv()
	b := testBench(2.0)
	cfg := e.config(b, 120)
	cfg.RecordTrace = true
	r, _ := NewRunner(cfg, &noop{})
	res, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Trace) == 0 {
		t.Fatal("no trace recorded")
	}
	// Control period 500 µs over ~2 ms → ≈4 points; times increasing.
	prev := 0.0
	for _, p := range res.Trace {
		if p.Time <= prev {
			t.Fatalf("trace times not increasing: %v after %v", p.Time, prev)
		}
		prev = p.Time
		if p.PeakTemp < 45 || p.ChipPower <= 0 || p.FanLevel != 1 {
			t.Fatalf("bad trace point %+v", p)
		}
	}
}

func TestControllerCalledEveryPeriod(t *testing.T) {
	e := newEnv()
	b := testBench(2.0)
	cfg := e.config(b, 120)
	cfg.MaxWarmStarts = 1
	n := &noop{}
	r, _ := NewRunner(cfg, n)
	if _, err := r.Run(); err != nil {
		t.Fatal(err)
	}
	// ~2 ms at 500 µs period → ≈4 calls.
	if n.calls < 3 || n.calls > 6 {
		t.Fatalf("controller called %d times, want ≈4", n.calls)
	}
}

func TestWarmStartConverges(t *testing.T) {
	e := newEnv()
	b := testBench(3.0)
	r, _ := NewRunner(e.config(b, 120), &noop{})
	res, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.WarmStarts < 1 || res.WarmStarts > 5 {
		t.Fatalf("warm starts = %d", res.WarmStarts)
	}
}

func TestConfigValidation(t *testing.T) {
	e := newEnv()
	b := testBench(2.0)
	if _, err := NewRunner(Config{}, &noop{}); err == nil {
		t.Fatal("empty config accepted")
	}
	cfg := e.config(b, 0)
	if _, err := NewRunner(cfg, &noop{}); err == nil {
		t.Fatal("zero threshold accepted")
	}
	cfg = e.config(b, 100)
	cfg.FanLevel = 9
	if _, err := NewRunner(cfg, &noop{}); err == nil {
		t.Fatal("bad fan level accepted")
	}
	cfg = e.config(b, 100)
	if _, err := NewRunner(cfg, nil); err == nil {
		t.Fatal("nil controller accepted")
	}
}

// badController returns a malformed DVFS vector.
type badController struct{}

func (badController) Name() string                  { return "bad" }
func (badController) Control(*Observation) Decision { return Decision{DVFS: []int{1}} }
func (badController) Reset()                        {}

func TestMalformedDecision(t *testing.T) {
	e := newEnv()
	b := testBench(2.0)
	r, _ := NewRunner(e.config(b, 120), badController{})
	if _, err := r.Run(); err == nil {
		t.Fatal("malformed DVFS decision accepted")
	}
}

func TestIdleCoresBurnIdlePower(t *testing.T) {
	e := newEnv()
	b := testBench(2.0)
	b.ActiveCores = []int{0} // single-threaded
	b.TotalInst = 2e6
	r, _ := NewRunner(e.config(b, 120), &noop{})
	res, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatal("run did not complete")
	}
	// Chip power ≈ 1 active core + 3 idle + leak + fan: well below the
	// 4-active case but above fan + leakage alone.
	full := testBench(2.0)
	rf, _ := NewRunner(e.config(full, 120), &noop{})
	fres, _ := rf.Run()
	if res.Metrics.AvgPower >= fres.Metrics.AvgPower {
		t.Fatal("1-thread run should draw less power than 4-thread run")
	}
}

// Two identical runs must produce bit-identical metrics: the whole stack —
// trace jitter, thermal solves, controller decisions — is deterministic.
func TestRunDeterministic(t *testing.T) {
	e := newEnv()
	run := func() Result {
		b := testBench(4.0)
		b.JitterAmp = 0.05
		b.Seed = 42
		r, err := NewRunner(e.config(b, 120), tecAll{})
		if err != nil {
			t.Fatal(err)
		}
		res, err := r.Run()
		if err != nil {
			t.Fatal(err)
		}
		return *res
	}
	a, b := run(), run()
	if a.Metrics != b.Metrics {
		t.Fatalf("nondeterministic metrics:\n%+v\n%+v", a.Metrics, b.Metrics)
	}
	if a.WarmStarts != b.WarmStarts {
		t.Fatalf("warm starts differ: %d vs %d", a.WarmStarts, b.WarmStarts)
	}
}

// The controller must not be able to corrupt the simulation by mutating
// the observation it receives.
type mutator struct{}

func (mutator) Name() string { return "mutator" }
func (mutator) Control(obs *Observation) Decision {
	// Scribble over every observed slice, including the temperatures.
	for i := range obs.DynPower {
		obs.DynPower[i] = -1e9
	}
	for i := range obs.CoreIPS {
		obs.CoreIPS[i] = -1e9
	}
	for i := range obs.Temps {
		obs.Temps[i] = 1e9
	}
	for i := range obs.DVFS {
		obs.DVFS[i] = -5
	}
	return Decision{}
}
func (mutator) Reset() {}

func TestObservationMutationIsHarmless(t *testing.T) {
	e := newEnv()
	b := testBench(2.0)
	r1, _ := NewRunner(e.config(b, 120), &noop{})
	clean, err := r1.Run()
	if err != nil {
		t.Fatal(err)
	}
	r2, _ := NewRunner(e.config(b, 120), mutator{})
	dirty, err := r2.Run()
	if err != nil {
		t.Fatal(err)
	}
	// Observations are copies; energy accounting must be unaffected by
	// controller scribbling.
	if math.Abs(clean.Metrics.Energy-dirty.Metrics.Energy)/clean.Metrics.Energy > 1e-9 {
		t.Fatalf("controller mutation changed energy: %v vs %v", clean.Metrics.Energy, dirty.Metrics.Energy)
	}
}

// A deliberately livelocked run (the cap set below even the full-speed
// runtime stands in for a controller that never lets the workload finish)
// must hit MaxTimeFactor and report it as an explicit *TimeCapError, never
// as silent truncation.
func TestMaxTimeFactorCap(t *testing.T) {
	e := newEnv()
	b := testBench(2.0)
	cfg := e.config(b, 120)
	cfg.MaxTimeFactor = 0.4 // cap below even the full-speed runtime
	cfg.MaxWarmStarts = 1
	r, _ := NewRunner(cfg, &noop{})
	res, err := r.Run()
	if err == nil {
		t.Fatal("capped run returned no error")
	}
	var tce *TimeCapError
	if !errors.As(err, &tce) {
		t.Fatalf("cap surfaced as %T (%v), want *TimeCapError", err, err)
	}
	if tce.Retired >= tce.Budget {
		t.Fatalf("cap error claims completion: %+v", tce)
	}
	if res == nil {
		t.Fatal("no partial result alongside the cap error")
	}
	if res.Completed {
		t.Fatal("capped run reported completion")
	}
	if res.Metrics.Time <= 0 {
		t.Fatal("no time accumulated before the cap")
	}
}

// flipFlop behaves differently on alternate warm-start iterations (it counts
// Reset calls), so consecutive peak temperatures never settle and the
// warm-start loop cannot converge.
type flipFlop struct{ resets int }

func (f *flipFlop) Name() string { return "flipFlop" }
func (f *flipFlop) Reset()       { f.resets++ }
func (f *flipFlop) Control(obs *Observation) Decision {
	if f.resets%2 == 0 {
		return Decision{}
	}
	d := make([]int, len(obs.DVFS))
	return Decision{DVFS: d}
}

// Warm-start must stop at MaxWarmStarts without convergence and say so.
func TestWarmStartNonConvergence(t *testing.T) {
	e := newEnv()
	b := testBench(3.0)
	cfg := e.config(b, 120)
	cfg.MaxWarmStarts = 3
	cfg.WarmStartTol = 0.01 // tighter than the flip-flop's peak swing
	r, _ := NewRunner(cfg, &flipFlop{resets: -1})
	res, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Converged {
		t.Fatal("oscillating controller reported warm-start convergence")
	}
	if res.WarmStarts != cfg.MaxWarmStarts {
		t.Fatalf("stopped after %d warm starts, want %d", res.WarmStarts, cfg.MaxWarmStarts)
	}
	// A stable controller on the same setup must converge and say so.
	r2, _ := NewRunner(e.config(b, 120), &noop{})
	res2, err := r2.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !res2.Converged {
		t.Fatal("stable run did not report convergence")
	}
}

// recordingSensors counts observations and scribbles a marker temperature.
type recordingSensors struct {
	calls  int
	resets int
}

func (s *recordingSensors) Observe(obs *Observation) {
	s.calls++
	obs.Temps[0] = 33.25
}
func (s *recordingSensors) Reset() { s.resets++ }

// markerReader verifies the controller sees the sensor model's output.
type markerReader struct{ sawMarker bool }

func (m *markerReader) Name() string { return "markerReader" }
func (m *markerReader) Reset()       {}
func (m *markerReader) Control(obs *Observation) Decision {
	if obs.Temps[0] == 33.25 {
		m.sawMarker = true
	}
	return Decision{}
}

func TestSensorModelInterceptsObservations(t *testing.T) {
	e := newEnv()
	b := testBench(2.0)
	cfg := e.config(b, 120)
	s := &recordingSensors{}
	cfg.Sensors = s
	mr := &markerReader{}
	r, _ := NewRunner(cfg, mr)
	clean, errClean := NewRunner(e.config(b, 120), &noop{})
	if errClean != nil {
		t.Fatal(errClean)
	}
	res, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	if s.calls == 0 || s.resets == 0 {
		t.Fatalf("sensor model not driven: %d calls, %d resets", s.calls, s.resets)
	}
	if !mr.sawMarker {
		t.Fatal("controller never saw the corrupted observation")
	}
	// Corruption must not leak into the physical run.
	cres, err := clean.Run()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Metrics.Energy-cres.Metrics.Energy)/cres.Metrics.Energy > 1e-9 {
		t.Fatalf("sensor corruption changed physical energy: %v vs %v",
			res.Metrics.Energy, cres.Metrics.Energy)
	}
}

// vetoActuators drops every DVFS request and forces all TECs off.
type vetoActuators struct{ filtered int }

func (a *vetoActuators) FilterDecision(now float64, cur ActuatorState, dec *Decision) {
	a.filtered++
	dec.DVFS = nil
	if dec.TECAmps != nil {
		for i := range dec.TECAmps {
			dec.TECAmps[i] = 0
		}
	}
	if dec.TECOn != nil {
		for i := range dec.TECOn {
			dec.TECOn[i] = false
		}
	}
}
func (a *vetoActuators) FilterFan(now float64, level int) int { return level }
func (a *vetoActuators) Reset()                               {}

func TestActuatorModelVetoesDecisions(t *testing.T) {
	e := newEnv()
	b := testBench(2.0)
	cfg := e.config(b, 120)
	va := &vetoActuators{}
	cfg.Actuators = va
	// The throttler asks for minimum DVFS every period; with requests
	// dropped the run must finish at full speed.
	r, _ := NewRunner(cfg, throttler{})
	res, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	if va.filtered == 0 {
		t.Fatal("actuator model never consulted")
	}
	rFast, _ := NewRunner(e.config(b, 120), &noop{})
	fast, err := rFast.Run()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Metrics.Time-fast.Metrics.Time)/fast.Metrics.Time > 0.05 {
		t.Fatalf("vetoed throttler ran in %.4gs, full-speed run %.4gs",
			res.Metrics.Time, fast.Metrics.Time)
	}
}

// stuckFan pins the physical fan to one level regardless of requests.
type stuckFan struct{ level int }

func (s stuckFan) FilterDecision(now float64, cur ActuatorState, dec *Decision) {}
func (s stuckFan) FilterFan(now float64, level int) int                         { return s.level }
func (s stuckFan) Reset()                                                       {}

func TestActuatorModelSticksFan(t *testing.T) {
	e := newEnv()
	b := testBench(2.0)
	cfg := e.config(b, 120)
	cfg.FanPeriod = 500e-6
	cfg.RecordTrace = true
	cfg.MaxWarmStarts = 1
	cfg.Actuators = stuckFan{level: 4}
	fs := &fanStepper{}
	r, _ := NewRunner(cfg, fs)
	res, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	if fs.calls == 0 {
		t.Fatal("FanControl never invoked")
	}
	last := res.Trace[len(res.Trace)-1]
	if last.FanLevel != 4 {
		t.Fatalf("stuck fan ended at level %d, want 4", last.FanLevel)
	}
}

// fanStepper implements FanController and asks for one level slower at
// every fan boundary; the sim must apply it and refactor the integrator.
type fanStepper struct{ calls int }

func (f *fanStepper) Name() string                  { return "fanStepper" }
func (f *fanStepper) Control(*Observation) Decision { return Decision{} }
func (f *fanStepper) Reset()                        {}
func (f *fanStepper) FanControl(obs *Observation) int {
	f.calls++
	return obs.FanLevel + 1
}

func TestFanControllerInvoked(t *testing.T) {
	e := newEnv()
	b := testBench(2.0)
	cfg := e.config(b, 120)
	cfg.FanPeriod = 500e-6 // fire several times within the 2 ms run
	cfg.RecordTrace = true
	cfg.MaxWarmStarts = 1
	fs := &fanStepper{}
	r, _ := NewRunner(cfg, fs)
	res, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	if fs.calls == 0 {
		t.Fatal("FanControl never invoked")
	}
	// The trace must show the fan slowing over the run.
	last := res.Trace[len(res.Trace)-1]
	if last.FanLevel <= cfg.FanLevel {
		t.Fatalf("fan level did not move: %d", last.FanLevel)
	}
}

func TestDecisionCurrentValidation(t *testing.T) {
	e := newEnv()
	b := testBench(2.0)
	r, _ := NewRunner(e.config(b, 120), badAmps{})
	if _, err := r.Run(); err == nil {
		t.Fatal("malformed TEC current vector accepted")
	}
}

type badAmps struct{}

func (badAmps) Name() string { return "badAmps" }
func (badAmps) Control(*Observation) Decision {
	return Decision{TECAmps: []float64{6}}
}
func (badAmps) Reset() {}
