package sim

import (
	"context"
	"errors"
	"math"
	"testing"

	"tecfan/internal/floats"
	"tecfan/internal/numguard"
)

// tempCorruptor implements NumFaultInjector: it poisons temps[0] at one
// step. A transient corruptor skips the retry (the step fallback must
// recover byte-identically); a persistent one re-fires on retry (the
// violation must be confirmed).
type tempCorruptor struct {
	step       int
	persistent bool
	value      float64
	fired      int
}

func (c *tempCorruptor) CorruptPower(step int, retry bool, power []float64) bool { return false }
func (c *tempCorruptor) CorruptTemps(step int, retry bool, temps []float64) bool {
	if step != c.step || (retry && !c.persistent) {
		return false
	}
	temps[0] = c.value
	c.fired++
	return true
}

// powerCorruptor poisons the power vector instead.
type powerCorruptor struct {
	step       int
	persistent bool
}

func (c *powerCorruptor) CorruptTemps(step int, retry bool, temps []float64) bool { return false }
func (c *powerCorruptor) CorruptPower(step int, retry bool, power []float64) bool {
	if step != c.step || (retry && !c.persistent) {
		return false
	}
	power[0] = math.Inf(1)
	return true
}

// escalator is a noop controller that can absorb a numeric divergence.
type escalator struct {
	noop
	escalated []numguard.Violation
}

func (e *escalator) EscalateNumeric(v numguard.Violation) { e.escalated = append(e.escalated, v) }

// A clean run must carry a zeroed health block: the auditor is always on,
// and on a healthy run it must observe nothing.
func TestNumGuardCleanRunHealth(t *testing.T) {
	e := newEnv()
	b := testBench(2.0)
	r, _ := NewRunner(e.config(b, 120), &noop{})
	res, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	h := res.Numeric
	if h == nil {
		t.Fatal("result carries no NumericHealth block")
	}
	if h.Refinements != 0 || h.RecoveredSteps != 0 || h.HeldSteps != 0 || h.Violations != 0 || h.FailSafe || h.Diagnosis != nil {
		t.Fatalf("clean run reported numeric activity: %+v", h)
	}
}

// A transient NaN upset must be absorbed by the step retry and leave the
// run bit-identical to the fault-free execution — the recovery path may not
// perturb a single ULP of the metrics.
func TestNumGuardTransientUpsetRecoversByteIdentical(t *testing.T) {
	e := newEnv()
	run := func(inj NumFaultInjector) *Result {
		b := testBench(2.0)
		cfg := e.config(b, 120)
		cfg.NumFaults = inj
		r, err := NewRunner(cfg, &noop{})
		if err != nil {
			t.Fatal(err)
		}
		res, err := r.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	clean := run(nil)
	c := &tempCorruptor{step: 7, value: math.NaN()}
	upset := run(c)
	if c.fired == 0 {
		t.Fatal("corruptor never fired")
	}
	if upset.Numeric.RecoveredSteps == 0 {
		t.Fatalf("transient upset not recorded as recovered: %+v", upset.Numeric)
	}
	if upset.Numeric.Violations != 0 || upset.Numeric.FailSafe {
		t.Fatalf("transient upset escalated: %+v", upset.Numeric)
	}
	if clean.Metrics != upset.Metrics {
		t.Fatalf("recovered run is not bit-identical:\nclean %+v\nupset %+v", clean.Metrics, upset.Metrics)
	}
	for i := range clean.FinalTemps {
		if clean.FinalTemps[i] != upset.FinalTemps[i] {
			t.Fatalf("final temps differ at node %d: %v vs %v", i, clean.FinalTemps[i], upset.FinalTemps[i])
		}
	}
}

// A persistent fault under a controller with no fail-safe must refuse
// cleanly: typed error, partial result with finite metrics, structured
// diagnosis — never completion with corrupt numbers.
func TestNumGuardPersistentFaultRefusesCleanly(t *testing.T) {
	e := newEnv()
	b := testBench(2.0)
	cfg := e.config(b, 120)
	cfg.NumFaults = &tempCorruptor{step: 7, persistent: true, value: math.Inf(1)}
	r, err := NewRunner(cfg, &noop{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := r.Run()
	var de *DivergenceError
	if !errors.As(err, &de) {
		t.Fatalf("err = %v, want *DivergenceError", err)
	}
	if de.V.Kind != numguard.KindNonFiniteTemp {
		t.Fatalf("diagnosis kind = %s, want %s", de.V.Kind, numguard.KindNonFiniteTemp)
	}
	if de.V.Step != 7 || de.V.Node != 0 {
		t.Fatalf("diagnosis places fault at step %d node %d, want 7/0", de.V.Step, de.V.Node)
	}
	if res == nil {
		t.Fatal("no partial result alongside the refusal")
	}
	if res.Numeric == nil || res.Numeric.Violations == 0 || res.Numeric.Diagnosis == nil {
		t.Fatalf("partial result carries no diagnosis: %+v", res.Numeric)
	}
	if !floats.Finite(res.Metrics.Energy) || !floats.Finite(res.Metrics.PeakTemp) {
		t.Fatalf("partial metrics contain non-finite values: %+v", res.Metrics)
	}
	if !floats.AllFinite(res.FinalTemps) {
		t.Fatal("partial final temps contain non-finite values")
	}
}

// The same persistent fault under an escalating controller must complete in
// fail-safe: diagnosis recorded, escalation delivered once, all outputs
// finite.
func TestNumGuardPersistentFaultEscalates(t *testing.T) {
	e := newEnv()
	b := testBench(2.0)
	cfg := e.config(b, 120)
	cfg.NumFaults = &tempCorruptor{step: 7, persistent: true, value: math.NaN()}
	esc := &escalator{}
	r, err := NewRunner(cfg, esc)
	if err != nil {
		t.Fatal(err)
	}
	res, err := r.Run()
	if err != nil {
		t.Fatalf("escalating run errored: %v", err)
	}
	if !res.Completed {
		t.Fatal("escalated run did not complete")
	}
	h := res.Numeric
	if h == nil || !h.FailSafe || h.Diagnosis == nil {
		t.Fatalf("fail-safe not recorded: %+v", h)
	}
	if h.HeldSteps == 0 {
		t.Fatalf("no held steps recorded: %+v", h)
	}
	if len(esc.escalated) != 1 {
		t.Fatalf("controller escalated %d times, want exactly 1 (first diagnosis wins)", len(esc.escalated))
	}
	if esc.escalated[0].Kind != numguard.KindNonFiniteTemp {
		t.Fatalf("escalated kind = %s", esc.escalated[0].Kind)
	}
	if !floats.Finite(res.Metrics.Energy) || !floats.AllFinite(res.FinalTemps) {
		t.Fatal("fail-safe run leaked non-finite values into outputs")
	}
}

// A persistent power-vector fault follows the same ladder through the
// power-rebuild fallback.
func TestNumGuardPowerFaultLadder(t *testing.T) {
	e := newEnv()
	b := testBench(2.0)

	cfg := e.config(b, 120)
	cfg.NumFaults = &powerCorruptor{step: 3}
	r, _ := NewRunner(cfg, &noop{})
	res, err := r.Run()
	if err != nil {
		t.Fatalf("transient power fault not recovered: %v", err)
	}
	if res.Numeric.RecoveredSteps == 0 {
		t.Fatalf("recovery not recorded: %+v", res.Numeric)
	}

	cfg = e.config(b, 120)
	cfg.NumFaults = &powerCorruptor{step: 3, persistent: true}
	r, _ = NewRunner(cfg, &noop{})
	_, err = r.Run()
	var de *DivergenceError
	if !errors.As(err, &de) {
		t.Fatalf("persistent power fault: err = %v, want *DivergenceError", err)
	}
	if de.V.Kind != numguard.KindNonPhysicalPower {
		t.Fatalf("diagnosis kind = %s, want %s", de.V.Kind, numguard.KindNonPhysicalPower)
	}
}

// The auditor's state must ride in checkpoints: a run resumed mid-way —
// after a transient upset was absorbed — finishes with the same metrics and
// the same numeric health as the uninterrupted run.
func TestNumGuardStateSurvivesResume(t *testing.T) {
	e := newEnv()
	b := testBench(2.0)

	cfg := e.config(b, 120)
	cfg.NumFaults = &tempCorruptor{step: 2, value: math.NaN()}
	cfg.CheckpointEvery = 1
	var snaps []*Snapshot
	cfg.OnCheckpoint = func(s *Snapshot) error { snaps = append(snaps, s); return nil }
	r, _ := NewRunner(cfg, &noop{})
	full, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps) < 2 {
		t.Fatalf("only %d checkpoints taken", len(snaps))
	}
	snap := snaps[1]
	if snap.Numeric == nil {
		t.Fatal("snapshot carries no numeric state")
	}
	if snap.Numeric.Recovered == 0 {
		t.Fatalf("recovery before the checkpoint not in snapshot: %+v", snap.Numeric)
	}

	cfg2 := e.config(b, 120)
	cfg2.NumFaults = &tempCorruptor{step: 2, value: math.NaN()} // same schedule; already past by snap
	r2, _ := NewRunner(cfg2, &noop{})
	resumed, err := r2.Resume(context.Background(), snap)
	if err != nil {
		t.Fatal(err)
	}
	if full.Metrics != resumed.Metrics {
		t.Fatalf("resumed metrics differ:\nfull    %+v\nresumed %+v", full.Metrics, resumed.Metrics)
	}
	if *full.Numeric != *resumed.Numeric {
		t.Fatalf("resumed numeric health differs:\nfull    %+v\nresumed %+v", full.Numeric, resumed.Numeric)
	}
}

// A pre-numguard snapshot (Numeric == nil) must resume without tripping the
// energy tripwire: the integral is seeded from the accumulator.
func TestNumGuardResumeFromLegacySnapshot(t *testing.T) {
	e := newEnv()
	b := testBench(2.0)
	cfg := e.config(b, 120)
	cfg.CheckpointEvery = 1
	var snaps []*Snapshot
	cfg.OnCheckpoint = func(s *Snapshot) error { snaps = append(snaps, s); return nil }
	r, _ := NewRunner(cfg, &noop{})
	full, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	snap := snaps[1]
	snap.Numeric = nil // simulate a checkpoint written before this layer existed
	r2, _ := NewRunner(e.config(b, 120), &noop{})
	resumed, err := r2.Resume(context.Background(), snap)
	if err != nil {
		t.Fatal(err)
	}
	if resumed.Numeric.Violations != 0 || resumed.Numeric.FailSafe {
		t.Fatalf("legacy resume tripped the auditor: %+v", resumed.Numeric)
	}
	if full.Metrics != resumed.Metrics {
		t.Fatalf("legacy resume changed metrics:\nfull    %+v\nresumed %+v", full.Metrics, resumed.Metrics)
	}
}
