package sim

import (
	"context"
	"math"
	"testing"

	"tecfan/internal/numguard"
)

// newTestStepLoop builds a fresh loop over the quad chip with TECs and the
// given controller, positioned at t=0.
func newTestStepLoop(t testing.TB, ctl Controller) *stepLoop {
	t.Helper()
	e := newEnv()
	b := testBench(2.0)
	r, err := NewRunner(e.config(b, 120), ctl)
	if err != nil {
		t.Fatal(err)
	}
	init, err := r.initialTemps()
	if err != nil {
		t.Fatal(err)
	}
	guard := numguard.New(numguard.DefaultConfig())
	s, err := r.newStepLoop(init, nil, nil, 0, math.Inf(1), nil, guard)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestStepZeroAllocs proves the acceptance criterion of the hot-path
// allocation discipline (DESIGN.md §18): the per-step simulation kernel —
// power evaluation, audited thermal step, instruction progress, metrics,
// observation accumulation — performs zero heap allocations in the
// fault-free steady state. The allocfree/scratchalias/hotcall analyzers
// keep this true statically; this test is the dynamic proof.
func TestStepZeroAllocs(t *testing.T) {
	s := newTestStepLoop(t, &noop{})
	ctx := context.Background()
	// Warm up through several control boundaries so every lazily grown
	// buffer has reached its steady size.
	for i := 0; i < 50; i++ {
		if err := s.step(); err != nil {
			t.Fatal(err)
		}
		if _, err := s.boundaries(ctx); err != nil {
			t.Fatal(err)
		}
	}
	var stepErr error
	allocs := testing.AllocsPerRun(200, func() {
		if err := s.step(); err != nil {
			stepErr = err
		}
	})
	if stepErr != nil {
		t.Fatal(stepErr)
	}
	if allocs != 0 {
		t.Fatalf("stepLoop.step allocates %.1f per call; the 2 ms control loop must be allocation-free", allocs)
	}
}

// TestBoundariesObservationReuse proves the boundary observation buffers
// are actually reused: across many control boundaries with a controller in
// the loop, per-boundary allocations stay bounded (the noop controller and
// the runner's own boundary path allocate nothing once warm).
func TestBoundariesObservationReuse(t *testing.T) {
	s := newTestStepLoop(t, &noop{})
	ctx := context.Background()
	for i := 0; i < 50; i++ {
		if err := s.step(); err != nil {
			t.Fatal(err)
		}
		if _, err := s.boundaries(ctx); err != nil {
			t.Fatal(err)
		}
	}
	var loopErr error
	allocs := testing.AllocsPerRun(50, func() {
		if err := s.step(); err != nil {
			loopErr = err
			return
		}
		if _, err := s.boundaries(ctx); err != nil {
			loopErr = err
		}
	})
	if loopErr != nil {
		t.Fatal(loopErr)
	}
	if allocs != 0 {
		t.Fatalf("step+boundaries allocates %.1f per iteration with a stateless controller; observation buffers are not being reused", allocs)
	}
}

// BenchmarkStep measures the per-step simulation kernel in isolation — the
// number the bench gate (scripts/bench_gate.sh, BENCH_10.json) tracks for
// the inner loop, allocs/op included.
func BenchmarkStep(b *testing.B) {
	s := newTestStepLoop(b, &noop{})
	ctx := context.Background()
	for i := 0; i < 50; i++ {
		if err := s.step(); err != nil {
			b.Fatal(err)
		}
		if _, err := s.boundaries(ctx); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.step(); err != nil {
			b.Fatal(err)
		}
	}
}
