// Package sim couples the workload, power, thermal, TEC, fan, and DVFS
// models into the discrete-time co-simulation the paper runs on
// SESC+HotSpot (§IV-B): per-step it evaluates dynamic power from the
// workload trace at the current DVFS levels, ground-truth quadratic leakage
// from the current temperatures (the temperature–leakage loop the authors
// patched into HotSpot's transient routine), integrates the RC network, and
// advances per-core instruction progress. A pluggable controller is invoked
// every lower-level control period (2 ms) and, optionally, every higher-level
// fan period.
//
// Following §IV-C, a benchmark run executes at a fixed fan level after a
// warm-start procedure that reproduces the paper's convergence loop: repeat
// the run with the previous final temperatures as the initial condition
// until consecutive peak temperatures differ by less than 0.5 °C.
package sim

import (
	"context"
	"errors"
	"fmt"
	"math"

	"tecfan/internal/fan"
	"tecfan/internal/floats"
	"tecfan/internal/floorplan"
	"tecfan/internal/linalg"
	"tecfan/internal/numguard"
	"tecfan/internal/perf"
	"tecfan/internal/power"
	"tecfan/internal/tec"
	"tecfan/internal/thermal"
	"tecfan/internal/workload"
)

// Observation is what a controller sees at a control boundary: the
// previous-interval measurements the paper's models consume (P(k−1),
// IPS(k−1), T(k−1)).
type Observation struct {
	Time      float64   // simulation time, s
	Temps     []float64 // current node temperatures (die first), °C
	DynPower  []float64 // avg per-component dynamic power over last period, W
	CoreIPS   []float64 // avg per-core IPS over last period
	DVFS      []int     // current per-core levels
	TECOn     []bool    // current TEC on/off vector
	TECAmps   []float64 // current per-device drive currents, A (0 = off)
	FanLevel  int
	Threshold float64
}

// Decision is a controller's actuator request. Nil slices mean "unchanged".
// TECAmps, when set, takes precedence over TECOn and drives each device at
// the given current — the variable-current extension of §III.
type Decision struct {
	DVFS    []int
	TECOn   []bool
	TECAmps []float64
}

// Controller is the lower-level (2 ms) decision maker.
type Controller interface {
	Name() string
	Control(obs *Observation) Decision
	// Reset clears internal state between warm-start iterations.
	Reset()
}

// SensorModel transforms each Observation before a controller sees it — the
// fault-injection seam for stuck, noisy, dropped-out, or biased sensors. The
// observation's slices are private copies of the live state, so a model may
// mutate them freely without corrupting the simulation.
type SensorModel interface {
	Observe(obs *Observation)
	// Reset clears internal state (stuck-value memory, noise streams)
	// between warm-start iterations.
	Reset()
}

// ActuatorState describes the currently applied actuator configuration,
// handed to an ActuatorModel so persistent faults (a device stuck on, a
// dropped request) can be expressed relative to what is physically in
// effect. Slices are private copies.
type ActuatorState struct {
	DVFS     []int
	TECAmps  []float64 // nil when the run has no TECs
	FanLevel int
}

// ActuatorModel intercepts controller requests before they reach the
// physical actuators — the fault-injection seam for failed TEC devices,
// a stuck fan, or ignored DVFS requests.
type ActuatorModel interface {
	// FilterDecision may mutate dec in place; setting a slice to nil drops
	// that request entirely (the actuator keeps its current state). It is
	// also invoked once at t = 0 with an empty decision so always-on faults
	// apply from the first step.
	FilterDecision(now float64, cur ActuatorState, dec *Decision)
	// FilterFan maps a requested fan level to the level actually applied.
	FilterFan(now float64, level int) int
	// Reset clears internal state between warm-start iterations.
	Reset()
}

// FanController is optionally implemented by controllers that drive the fan
// at the higher level (TECfan's outer loop). Others run at the fixed level
// chosen by the experiment driver.
type FanController interface {
	FanControl(obs *Observation) int
}

// NumFaultInjector corrupts the integrator's inputs and outputs per a
// seeded schedule — the numerical-chaos seam (implemented by
// numfault.Injector) that proves the numguard auditor catches every
// violation. Injection must be a pure function of (step, retry), carrying
// no draw-count state, so resumed runs replay identical faults.
type NumFaultInjector interface {
	// CorruptPower may corrupt the per-component power vector before the
	// thermal step; CorruptTemps may corrupt the temperature vector after
	// it. retry restricts the injection to persistent rules (the step
	// fallback re-attempt). Both report whether anything fired.
	CorruptPower(step int, retry bool, power []float64) bool
	CorruptTemps(step int, retry bool, temps []float64) bool
}

// NumericEscalator is optionally implemented by controllers that can absorb
// a confirmed numeric divergence: the simulator reports the structured
// diagnosis once and keeps stepping with the last good state held, letting
// the controller wind the run down in its fail-safe. Controllers without it
// cause the run to refuse cleanly with a *DivergenceError instead.
type NumericEscalator interface {
	EscalateNumeric(v numguard.Violation)
}

// StateCodec is optionally implemented by controllers, sensor models, and
// actuator models whose internal state must survive checkpoint/restore.
// MarshalState captures the complete mutable state; UnmarshalState replaces
// the receiver's state wholesale (no merging), so a restored run continues
// bitwise-identically to the uninterrupted one. Stateless components simply
// don't implement it.
type StateCodec interface {
	MarshalState() ([]byte, error)
	UnmarshalState(data []byte) error
}

// Config assembles one simulation run.
type Config struct {
	Chip      *floorplan.Chip
	Fan       *fan.Model
	Network   *thermal.Network
	DVFS      *power.DVFSTable
	Leak      power.Leakage
	TECs      []tec.Placement
	Bench     *workload.Benchmark
	Threshold float64 // T_th, °C

	FanLevel      int     // initial / fixed fan level
	Step          float64 // integration step, s (default 100 µs)
	ControlPeriod float64 // lower-level period, s (default 2 ms)
	FanPeriod     float64 // higher-level period, s (default 1 s)

	// InitDVFS is the starting per-core level (default: max).
	InitDVFS int
	// MaxTimeFactor caps the run at factor × the base execution time
	// (default 4): a safety net against livelocked controllers.
	MaxTimeFactor float64
	// RecordTrace enables per-control-period trace capture.
	RecordTrace bool
	// WarmStartTol is the paper's convergence criterion on consecutive
	// peak temperatures (default 0.5 °C).
	WarmStartTol float64
	// MaxWarmStarts bounds the convergence loop (default 5).
	MaxWarmStarts int

	// Sensors, when non-nil, corrupts every observation before the
	// controller reads it.
	Sensors SensorModel
	// Actuators, when non-nil, intercepts every controller request before
	// it is applied.
	Actuators ActuatorModel
	// NumFaults, when non-nil, injects scheduled numerical corruption into
	// the step loop — the proof harness for the always-on invariant
	// auditor.
	NumFaults NumFaultInjector
	// Guard overrides the numguard envelope and tolerances; nil selects
	// numguard.DefaultConfig(). The auditor itself is always on.
	Guard *numguard.Config

	// CheckpointEvery takes a state snapshot every N control periods
	// (0 = never). Snapshots are also taken once at the cancellation point
	// when the run context is canceled, so graceful shutdown always leaves a
	// resumable checkpoint behind.
	CheckpointEvery int
	// OnCheckpoint receives every snapshot; a non-nil error aborts the run.
	// The snapshot is freshly allocated and safe to retain or serialize.
	OnCheckpoint func(*Snapshot) error
}

func (c *Config) fillDefaults() {
	if c.Step == 0 {
		c.Step = 100e-6
	}
	if c.ControlPeriod == 0 {
		c.ControlPeriod = 2e-3
	}
	if c.FanPeriod == 0 {
		c.FanPeriod = 1.0
	}
	if c.MaxTimeFactor == 0 {
		c.MaxTimeFactor = 4
	}
	if c.WarmStartTol == 0 {
		c.WarmStartTol = 0.5
	}
	if c.MaxWarmStarts == 0 {
		c.MaxWarmStarts = 5
	}
	if c.InitDVFS == 0 {
		c.InitDVFS = c.DVFS.Max()
	}
}

// TracePoint is one control-period sample of the run.
type TracePoint struct {
	Time      float64
	PeakTemp  float64
	PeakComp  int
	ChipPower float64
	FanLevel  int
	TECsOn    int
	MeanDVFS  float64
}

// Result is the outcome of one simulation run.
type Result struct {
	Metrics    perf.Metrics
	Trace      []TracePoint
	FinalTemps []float64
	WarmStarts int
	// Completed reports whether every active core retired its budget
	// before the MaxTimeFactor cap. An incomplete run is also reported as
	// a *TimeCapError from Run, so truncation is never silent.
	Completed bool
	// Converged reports whether the warm-start loop met WarmStartTol
	// before MaxWarmStarts ran out.
	Converged bool
	// Numeric is the NumericHealth block: refinement and recovery counters
	// from the invariant auditor, plus the structured diagnosis when a
	// divergence was confirmed. Never nil on a Result returned by Run.
	Numeric *numguard.Health

	finalDVFS []int
	finalAmps []float64
}

// TimeCapError reports that a run was stopped by the MaxTimeFactor safety
// net before the workload completed — a livelocked or over-throttling
// controller. The partial Result is still returned alongside it.
type TimeCapError struct {
	Time    float64 // simulation time at the cap, s
	Retired float64 // instructions retired
	Budget  float64 // instruction budget
}

func (e *TimeCapError) Error() string {
	return fmt.Sprintf("sim: MaxTimeFactor cap hit at t=%.4gs with %.3g of %.3g instructions retired (livelocked or over-throttled controller)",
		e.Time, e.Retired, e.Budget)
}

// DivergenceError reports a confirmed numeric divergence in a run whose
// controller cannot absorb it (it does not implement NumericEscalator): the
// run refuses to continue rather than emit corrupt metrics. The partial
// Result — finite metrics up to the divergence point plus the NumericHealth
// diagnosis — is returned alongside.
type DivergenceError struct {
	V numguard.Violation
}

func (e *DivergenceError) Error() string {
	return fmt.Sprintf("sim: confirmed numeric divergence: %s", e.V.String())
}

// Snapshot is the complete mid-run state captured at a control boundary: the
// thermal field, actuator configuration, workload progress, metric
// accumulators, warm-start loop position, and the opaque serialized state of
// every StateCodec component. Resume on an identically configured Runner
// continues the run bitwise-identically to an uninterrupted one.
type Snapshot struct {
	// SimTime/StepIdx locate the boundary the snapshot was taken at.
	SimTime float64
	StepIdx int
	// WarmStart is the 0-based warm-start iteration in progress; PrevPeak is
	// the previous iteration's peak temperature (+Inf on the first).
	WarmStart int
	PrevPeak  float64

	Temps    []float64
	DVFS     []int
	TEC      *tec.StateSnapshot // nil when the run has no TECs
	FanLevel int

	InstDone  []float64
	TotalDone float64

	Acc   perf.AccumulatorState
	Trace []TracePoint

	// Numeric is the invariant auditor's state (energy integral, recovery
	// counters, diagnosis). Nil in snapshots written before the auditor
	// existed; resume then seeds the energy integral from Acc.
	Numeric *numguard.State

	// Serialized StateCodec blobs; nil when the component is stateless (or
	// absent). Sensors and Actuators may hold identical blobs when one
	// object implements both seams — restoring both is then idempotent.
	Controller []byte
	Sensors    []byte
	Actuators  []byte
}

// Runner executes simulation runs for one configuration.
type Runner struct {
	cfg Config
	ctl Controller
}

// NewRunner validates the configuration and builds a runner.
func NewRunner(cfg Config, ctl Controller) (*Runner, error) {
	if cfg.Chip == nil || cfg.Fan == nil || cfg.Network == nil || cfg.DVFS == nil || cfg.Bench == nil {
		return nil, fmt.Errorf("sim: incomplete config")
	}
	cfg.fillDefaults()
	if cfg.Threshold <= 0 {
		return nil, fmt.Errorf("sim: threshold %v must be positive", cfg.Threshold)
	}
	if cfg.FanLevel < 0 || cfg.FanLevel >= cfg.Fan.NumLevels() {
		return nil, fmt.Errorf("sim: fan level %d out of range", cfg.FanLevel)
	}
	if ctl == nil {
		return nil, fmt.Errorf("sim: nil controller")
	}
	return &Runner{cfg: cfg, ctl: ctl}, nil
}

// Run performs the warm-start loop and returns the converged run's result.
// Both the thermal field and the actuator state (DVFS levels, TEC on/off)
// carry across iterations, mirroring §IV-B: the paper repeats each
// simulation with the previous result as the initial condition until the
// peak temperatures of consecutive runs differ by less than 0.5 °C, so the
// reported run reflects steady controller behaviour, not its cold-start
// descent.
func (r *Runner) Run() (*Result, error) { return r.RunContext(context.Background()) }

// RunContext is Run under a context: cancellation is observed at every
// control boundary (within one control period of simulated work), the
// partial Result is returned alongside the wrapped context error, and — when
// checkpointing is configured — a final snapshot is emitted at the
// cancellation point so the run can be resumed later.
func (r *Runner) RunContext(ctx context.Context) (*Result, error) {
	return r.run(ctx, nil)
}

// Resume continues a run from a Snapshot previously emitted through
// Config.OnCheckpoint. The Runner must be configured identically to the one
// that produced the snapshot (same chip, benchmark, thresholds, periods) and
// hold fresh controller/sensor/actuator instances of the same types; their
// serialized state is restored before simulation restarts. The continued run
// is bitwise-identical to the uninterrupted one.
func (r *Runner) Resume(ctx context.Context, snap *Snapshot) (*Result, error) {
	if snap == nil {
		return nil, fmt.Errorf("sim: nil snapshot")
	}
	if err := r.validateSnapshot(snap); err != nil {
		return nil, err
	}
	if err := restoreCodec("controller", r.ctl, snap.Controller); err != nil {
		return nil, err
	}
	if err := restoreCodec("sensors", r.cfg.Sensors, snap.Sensors); err != nil {
		return nil, err
	}
	if err := restoreCodec("actuators", r.cfg.Actuators, snap.Actuators); err != nil {
		return nil, err
	}
	return r.run(ctx, snap)
}

// validateSnapshot rejects snapshots whose shape cannot belong to this
// runner's configuration before any state is overwritten.
func (r *Runner) validateSnapshot(snap *Snapshot) error {
	cfg := &r.cfg
	if n := cfg.Network.NumNodes(); len(snap.Temps) != n {
		return fmt.Errorf("sim: snapshot has %d node temperatures, want %d", len(snap.Temps), n)
	}
	if n := cfg.Chip.NumCores(); len(snap.DVFS) != n || len(snap.InstDone) != n {
		return fmt.Errorf("sim: snapshot DVFS/progress for %d/%d cores, want %d",
			len(snap.DVFS), len(snap.InstDone), n)
	}
	if (snap.TEC != nil) != (cfg.TECs != nil) {
		return fmt.Errorf("sim: snapshot TEC state mismatches configuration")
	}
	if snap.FanLevel < 0 || snap.FanLevel >= cfg.Fan.NumLevels() {
		return fmt.Errorf("sim: snapshot fan level %d out of range", snap.FanLevel)
	}
	if snap.WarmStart < 0 || snap.WarmStart >= cfg.MaxWarmStarts {
		return fmt.Errorf("sim: snapshot warm-start %d outside [0, %d)", snap.WarmStart, cfg.MaxWarmStarts)
	}
	if snap.StepIdx < 0 || snap.SimTime < 0 || !floats.Finite(snap.SimTime) {
		return fmt.Errorf("sim: snapshot position t=%v step=%d invalid", snap.SimTime, snap.StepIdx)
	}
	if !floats.AllFinite(snap.Temps) {
		return fmt.Errorf("sim: snapshot temperature field contains non-finite values")
	}
	return nil
}

// restoreCodec loads a serialized state blob into a component. A blob
// without a StateCodec (or the reverse) means the resume-side component is
// not the type that produced the snapshot — an error, never a silent skip.
func restoreCodec(what string, comp any, blob []byte) error {
	codec, ok := comp.(StateCodec)
	if blob == nil {
		if ok {
			return fmt.Errorf("sim: snapshot carries no %s state but the %s is stateful", what, what)
		}
		return nil
	}
	if !ok {
		return fmt.Errorf("sim: snapshot carries %s state but the %s cannot restore it", what, what)
	}
	if err := codec.UnmarshalState(blob); err != nil {
		return fmt.Errorf("sim: restoring %s state: %w", what, err)
	}
	return nil
}

// marshalCodec captures a component's state blob (nil for stateless ones).
func marshalCodec(what string, comp any) ([]byte, error) {
	codec, ok := comp.(StateCodec)
	if !ok {
		return nil, nil
	}
	blob, err := codec.MarshalState()
	if err != nil {
		return nil, fmt.Errorf("sim: capturing %s state: %w", what, err)
	}
	return blob, nil
}

// run drives the warm-start loop, starting fresh or from a snapshot.
func (r *Runner) run(ctx context.Context, snap *Snapshot) (*Result, error) {
	cfg := &r.cfg
	var init []float64
	var initDVFS []int
	var initAmps []float64
	prevPeak := math.Inf(1)
	ws0 := 0
	if snap != nil {
		ws0, prevPeak = snap.WarmStart, snap.PrevPeak
	} else {
		// Initial condition: steady state at mean power with initial
		// actuators — the "default uniform initial temperature" of §IV-B,
		// improved to the nearby steady state so the convergence loop is
		// short.
		var err error
		init, err = r.initialTemps()
		if err != nil {
			return nil, err
		}
	}
	// One auditor per run: its counters and diagnosis describe the whole
	// warm-start loop, and it rides in every checkpoint.
	gcfg := numguard.DefaultConfig()
	if cfg.Guard != nil {
		gcfg = *cfg.Guard
	}
	guard := numguard.New(gcfg)
	var res *Result
	var err error
	for ws := ws0; ws < cfg.MaxWarmStarts; ws++ {
		if snap == nil {
			// A resumed iteration restores state instead of resetting it.
			r.ctl.Reset()
			if cfg.Sensors != nil {
				cfg.Sensors.Reset()
			}
			if cfg.Actuators != nil {
				cfg.Actuators.Reset()
			}
		}
		res, err = r.runOnce(ctx, init, initDVFS, initAmps, ws, prevPeak, snap, guard)
		snap = nil
		if err != nil {
			var tce *TimeCapError
			if errors.As(err, &tce) && res != nil {
				// The cap is an explicit, inspectable error; the partial
				// result rides along for diagnosis.
				res.WarmStarts = ws + 1
				return res, err
			}
			if res != nil {
				// Cancellation: the partial result rides along too.
				res.WarmStarts = ws + 1
				return res, err
			}
			return nil, err
		}
		res.WarmStarts = ws + 1
		if math.Abs(res.Metrics.PeakTemp-prevPeak) < cfg.WarmStartTol {
			res.Converged = true
			return res, nil
		}
		prevPeak = res.Metrics.PeakTemp
		init = res.FinalTemps
		initDVFS = res.finalDVFS
		initAmps = res.finalAmps
	}
	return res, nil
}

// initialTemps solves the steady state under mean base-scenario power.
func (r *Runner) initialTemps() ([]float64, error) {
	cfg := &r.cfg
	nComp := len(cfg.Chip.Components)
	p := make([]float64, nComp)
	scale := cfg.DVFS.ScaleFromMax(cfg.InitDVFS)
	for core := 0; core < cfg.Chip.NumCores(); core++ {
		cfg.Bench.AddDynPower(cfg.Chip, core, 0.5, scale, p)
	}
	// One leakage pass at a fixed nominal temperature is close enough for
	// an initial guess; the warm-start loop refines. (Deliberately not tied
	// to the threshold, so identical workloads start identically regardless
	// of T_th.)
	leak := make([]float64, nComp)
	temps := make([]float64, cfg.Network.NumNodes())
	for i := range temps {
		temps[i] = 75
	}
	cfg.Leak.PerComponent(cfg.Chip, temps, power.ModelQuad, leak)
	for i := range p {
		p[i] += leak[i]
	}
	return cfg.Network.Steady(p, cfg.FanLevel, nil)
}

// runOnce simulates one full benchmark execution from the given initial
// temperatures and (optionally) carried-over actuator state, or — when snap
// is non-nil — continues a checkpointed execution from its exact mid-run
// state. ws and prevPeak are the warm-start loop position, recorded into any
// snapshot taken so a resumed run rejoins the loop where it left off.
func (r *Runner) runOnce(ctx context.Context, init []float64, initDVFS []int, initAmps []float64, ws int, prevPeak float64, snap *Snapshot, guard *numguard.Auditor) (*Result, error) {
	cfg := &r.cfg
	chip := cfg.Chip
	nComp := len(chip.Components)
	nCores := chip.NumCores()
	bench := cfg.Bench

	var temps []float64
	dvfs := make([]int, nCores)
	var ts *tec.State
	fanLevel := cfg.FanLevel

	// Completion follows the paper's Eq. (12)/(13) semantics: execution
	// time is inversely proportional to the aggregate chip IPS, i.e. the
	// run ends when the total retired instructions reach the budget (work
	// redistributes across threads), not when the slowest thread crosses a
	// barrier. Per-core progress still drives each core's activity phase.
	progress := make([]float64, nCores) // fraction of per-core budget retired
	instDone := make([]float64, nCores)
	instPerCore := bench.InstPerCore()
	var totalDone float64

	var acc perf.Accumulator
	var trace []TracePoint
	now := 0.0
	stepIdx := 0

	if snap != nil {
		temps = append([]float64(nil), snap.Temps...)
		copy(dvfs, snap.DVFS)
		if cfg.TECs != nil {
			ts = tec.NewState(cfg.TECs)
			if err := ts.RestoreSnapshot(*snap.TEC); err != nil {
				return nil, err
			}
		}
		fanLevel = snap.FanLevel
		copy(instDone, snap.InstDone)
		totalDone = snap.TotalDone
		for core := range progress {
			progress[core] = instDone[core] / instPerCore
			if progress[core] > 1 {
				progress[core] = 1
			}
		}
		acc.SetState(snap.Acc)
		if snap.Numeric != nil {
			guard.SetState(*snap.Numeric)
		} else {
			// Pre-numguard checkpoint: align the energy tripwire with the
			// history it did not witness.
			guard.SetState(numguard.State{})
			guard.SeedEnergy(acc.Energy)
		}
		trace = append(trace, snap.Trace...)
		now, stepIdx = snap.SimTime, snap.StepIdx
	} else {
		guard.BeginIteration()
		temps = append([]float64(nil), init...)
		for i := range dvfs {
			dvfs[i] = cfg.InitDVFS
		}
		if initDVFS != nil {
			copy(dvfs, initDVFS)
		}
		if cfg.TECs != nil {
			ts = tec.NewState(cfg.TECs)
			// Carried-over devices re-engage within the first 20 µs step.
			for l, amps := range initAmps {
				ts.SetCurrent(l, amps)
			}
		}
		if cfg.Actuators != nil {
			// Persistent actuator faults (a stuck fan, a device failed on)
			// apply from the very first step, not the first control boundary.
			fanLevel = cfg.Fan.Clamp(cfg.Actuators.FilterFan(0, fanLevel))
			dec := Decision{}
			cfg.Actuators.FilterDecision(0, r.actuatorState(dvfs, ts, fanLevel), &dec)
			if err := r.applyDecision(dec, dvfs, ts); err != nil {
				return nil, err
			}
		}
	}
	tr, err := cfg.Network.NewTransient(fanLevel, cfg.Step)
	if err != nil {
		return nil, err
	}

	dyn := make([]float64, nComp)
	leak := make([]float64, nComp)
	total := make([]float64, nComp)
	prevTemps := make([]float64, len(temps))
	// Per-control-period accumulators for the observation. Snapshots are
	// taken only at control boundaries, right after these are zeroed, so a
	// resumed run correctly starts them empty.
	obsDyn := make([]float64, nComp)
	obsIPS := make([]float64, nCores)
	coreIPS := make([]float64, nCores)

	// Cap generously: the base time stretched by the worst-case frequency
	// ratio, times the safety factor.
	maxTime := cfg.MaxTimeFactor * (bench.TargetTimeMS / 1000) / cfg.DVFS.FreqRatio(cfg.DVFS.Max(), 0)

	stepsPerCtl := int(math.Round(cfg.ControlPeriod / cfg.Step))
	if stepsPerCtl < 1 {
		stepsPerCtl = 1
	}
	stepsPerFan := int(math.Round(cfg.FanPeriod / cfg.Step))

	done := func() bool { return totalDone >= bench.TotalInst }

	// snapshot captures the complete loop state at the current (control
	// boundary) position.
	snapshot := func() (*Snapshot, error) {
		s := &Snapshot{
			SimTime:   now,
			StepIdx:   stepIdx,
			WarmStart: ws,
			PrevPeak:  prevPeak,
			Temps:     append([]float64(nil), temps...),
			DVFS:      append([]int(nil), dvfs...),
			FanLevel:  fanLevel,
			InstDone:  append([]float64(nil), instDone...),
			TotalDone: totalDone,
			Acc:       acc.State(),
			Trace:     append([]TracePoint(nil), trace...),
		}
		ns := guard.State()
		s.Numeric = &ns
		if ts != nil {
			tsnap := ts.Snapshot()
			s.TEC = &tsnap
		}
		var err error
		if s.Controller, err = marshalCodec("controller", r.ctl); err != nil {
			return nil, err
		}
		if s.Sensors, err = marshalCodec("sensors", cfg.Sensors); err != nil {
			return nil, err
		}
		if s.Actuators, err = marshalCodec("actuators", cfg.Actuators); err != nil {
			return nil, err
		}
		return s, nil
	}

	// partial builds the result carrying whatever finite metrics accumulated
	// so far plus the numeric health block — used on cancellation, on a
	// refused divergence, and (with Completed filled in) at the end.
	partial := func() *Result {
		res := &Result{
			Metrics:    acc.Snapshot(),
			Trace:      trace,
			FinalTemps: temps,
			Completed:  false,
			Numeric:    guard.Health(),
			finalDVFS:  append([]int(nil), dvfs...),
		}
		if ts != nil {
			res.finalAmps = ts.Currents()
		}
		return res
	}

	// confirm records a confirmed divergence with the actuator configuration
	// filled in, then either escalates it into the controller's sticky
	// fail-safe (NumericEscalator) or returns the refusal error for
	// controllers that cannot absorb it.
	confirm := func(v *numguard.Violation) error {
		v.FanLevel = fanLevel
		if ts != nil {
			v.TECsOn = ts.CountOn()
		}
		guard.Confirm(v)
		if esc, ok := r.ctl.(NumericEscalator); ok {
			if !guard.State().FailSafe {
				guard.SetFailSafe()
				esc.EscalateNumeric(*v)
			}
			return nil
		}
		return &DivergenceError{V: *v}
	}

	// stepAttempt integrates one thermal step from prevTemps and audits the
	// outcome. tr.Step writes temps only on success, and a retry re-runs with
	// bit-identical inputs, so a transient upset recovers byte-identically to
	// the fault-free execution.
	stepAttempt := func(retry bool) *numguard.Violation {
		copy(temps, prevTemps)
		if stepErr := tr.Step(temps, total, ts); stepErr != nil {
			return &numguard.Violation{
				Kind: numguard.KindSolverResidual, Step: stepIdx, Time: now,
				Node: -1, Detail: stepErr.Error(),
			}
		}
		if cfg.NumFaults != nil {
			cfg.NumFaults.CorruptTemps(stepIdx, retry, temps)
		}
		return guard.CheckTemps(stepIdx, now, temps)
	}

	for !done() && now < maxTime {
		// Power evaluation at the current state.
		for i := range dyn {
			dyn[i] = 0
		}
		for core := 0; core < nCores; core++ {
			scale := cfg.DVFS.ScaleFromMax(dvfs[core])
			bench.AddDynPower(chip, core, progress[core], scale, dyn)
		}
		cfg.Leak.PerComponent(chip, temps, power.ModelQuad, leak)
		for i := range total {
			total[i] = dyn[i] + leak[i]
		}
		if cfg.NumFaults != nil {
			cfg.NumFaults.CorruptPower(stepIdx, false, total)
		}
		if v := guard.CheckPowerVec(stepIdx, now, total); v != nil {
			// Step fallback: rebuild the vector from its inputs. A transient
			// upset vanishes; a persistent fault re-fires and is a confirmed
			// divergence — the run then continues on the clean rebuild.
			for i := range total {
				total[i] = dyn[i] + leak[i]
			}
			if cfg.NumFaults != nil {
				cfg.NumFaults.CorruptPower(stepIdx, true, total)
			}
			if v2 := guard.CheckPowerVec(stepIdx, now, total); v2 != nil {
				for i := range total {
					total[i] = dyn[i] + leak[i]
				}
				guard.NoteHeld()
				if err := confirm(v2); err != nil {
					return partial(), err
				}
			} else {
				guard.NoteRecovered()
			}
		}

		// Thermal step, audited: a violation (solver refusal, non-finite or
		// out-of-envelope temperature) is retried once with identical inputs;
		// a second violation holds the last good temperature state and
		// confirms the divergence.
		if ts != nil {
			ts.Advance(now)
		}
		copy(prevTemps, temps)
		if v := stepAttempt(false); v != nil {
			if v2 := stepAttempt(true); v2 != nil {
				copy(temps, prevTemps)
				guard.NoteHeld()
				if err := confirm(v2); err != nil {
					return partial(), err
				}
			} else {
				guard.NoteRecovered()
			}
		}
		guard.AddRefinements(tr.TakeRefinements())

		// Instruction progress at the current frequencies. Every active
		// core retires work until the chip-wide budget completes.
		for _, core := range bench.ActiveCores {
			fr := cfg.DVFS.FreqRatio(cfg.DVFS.Max(), dvfs[core])
			ips := bench.IPS(core, progress[core]) * fr
			coreIPS[core] = ips
			instDone[core] += ips * cfg.Step
			totalDone += ips * cfg.Step
			progress[core] = instDone[core] / instPerCore
			if progress[core] > 1 {
				progress[core] = 1
			}
		}

		// Metrics.
		var dynSum, ipsSum float64
		for _, v := range total {
			dynSum += v
		}
		for _, v := range coreIPS {
			ipsSum += v
		}
		tecPower := cfg.Network.TECPower(temps, ts)
		chipPower := dynSum + tecPower + cfg.Fan.Power(fanLevel)
		_, peak := cfg.Network.PeakDie(temps)
		// The temperature audit above guarantees a finite field, so a
		// non-finite peak would mean the auditor itself is broken: refuse
		// loudly rather than feed it to perf.Metrics.
		if !floats.Finite(peak) {
			return partial(), fmt.Errorf("sim: non-finite peak temperature %s out of the integrator at t=%.4gs", linalg.SafeFloat(peak), now)
		}
		if v := guard.CheckChipPower(stepIdx, now, chipPower); v != nil {
			// Chip power is an output-side aggregate with no second
			// computation path to retry: hold zero for this step so the
			// accumulator stays finite, and confirm.
			guard.NoteHeld()
			if err := confirm(v); err != nil {
				return partial(), err
			}
			chipPower = 0
		}
		acc.Add(cfg.Step, chipPower, ipsSum, peak, cfg.Threshold)
		guard.AddEnergy(cfg.Step, chipPower)

		// Observation accumulation.
		for i := range obsDyn {
			obsDyn[i] += dyn[i] / float64(stepsPerCtl)
		}
		for i := range obsIPS {
			obsIPS[i] += coreIPS[i] / float64(stepsPerCtl)
		}

		now += cfg.Step
		stepIdx++

		// Lower-level control boundary.
		if stepIdx%stepsPerCtl == 0 {
			// Controllers get copies of the live state: a buggy or
			// adversarial controller must not be able to corrupt the
			// simulation by writing through the observation.
			obs := &Observation{
				Time:      now,
				Temps:     append([]float64(nil), temps...),
				DynPower:  obsDyn,
				CoreIPS:   obsIPS,
				DVFS:      append([]int(nil), dvfs...),
				FanLevel:  fanLevel,
				Threshold: cfg.Threshold,
			}
			if ts != nil {
				obs.TECOn = ts.OnMask()
				obs.TECAmps = ts.Currents()
			}
			if cfg.Sensors != nil {
				cfg.Sensors.Observe(obs)
			}
			dec := r.ctl.Control(obs)
			if cfg.Actuators != nil {
				cfg.Actuators.FilterDecision(now, r.actuatorState(dvfs, ts, fanLevel), &dec)
			}
			if err := r.applyDecision(dec, dvfs, ts); err != nil {
				return nil, err
			}
			// Boundary audits: the metrics energy against the independent
			// ∫power·dt integral, and the applied actuator configuration
			// against its hardware ranges.
			if v := guard.CheckEnergy(stepIdx, now, acc.Energy); v != nil {
				if err := confirm(v); err != nil {
					return partial(), err
				}
			}
			if v := guard.CheckActuators(stepIdx, now, fanLevel, cfg.Fan.NumLevels()-1, dvfs, cfg.DVFS.Max()); v != nil {
				if err := confirm(v); err != nil {
					return partial(), err
				}
			}
			if cfg.RecordTrace {
				pc, pt := cfg.Network.PeakDie(temps)
				var md float64
				for _, l := range dvfs {
					md += float64(l)
				}
				nOn := 0
				if ts != nil {
					nOn = ts.CountOn()
				}
				trace = append(trace, TracePoint{
					Time: now, PeakTemp: pt, PeakComp: pc, ChipPower: chipPower,
					FanLevel: fanLevel, TECsOn: nOn, MeanDVFS: md / float64(nCores),
				})
			}
			for i := range obsDyn {
				obsDyn[i] = 0
			}
			for i := range obsIPS {
				obsIPS[i] = 0
			}
		}

		// Higher-level fan boundary.
		if fc, ok := r.ctl.(FanController); ok && stepsPerFan > 0 && stepIdx%stepsPerFan == 0 {
			obs := &Observation{
				Time:     now,
				Temps:    append([]float64(nil), temps...),
				DVFS:     append([]int(nil), dvfs...),
				FanLevel: fanLevel, Threshold: cfg.Threshold,
			}
			if ts != nil {
				obs.TECOn = ts.OnMask()
				obs.TECAmps = ts.Currents()
			}
			if cfg.Sensors != nil {
				cfg.Sensors.Observe(obs)
			}
			req := fc.FanControl(obs)
			if cfg.Actuators != nil {
				req = cfg.Actuators.FilterFan(now, req)
			}
			if nl := cfg.Fan.Clamp(req); nl != fanLevel {
				fanLevel = nl
				if tr, err = cfg.Network.NewTransient(fanLevel, cfg.Step); err != nil {
					return nil, err
				}
			}
		}

		// Cancellation and checkpointing, at control boundaries only: this
		// bounds the response to a cancel at one control period, and places
		// every snapshot right after the observation accumulators were
		// zeroed, so a resumed run restarts them empty — bitwise-identical
		// to the uninterrupted execution.
		if stepIdx%stepsPerCtl == 0 {
			if err := ctx.Err(); err != nil {
				if cfg.OnCheckpoint != nil {
					if s, serr := snapshot(); serr == nil {
						_ = cfg.OnCheckpoint(s) // best effort on the way out
					}
				}
				return partial(), fmt.Errorf("sim: canceled at t=%.4gs: %w", now, err)
			}
			if cfg.CheckpointEvery > 0 && cfg.OnCheckpoint != nil &&
				(stepIdx/stepsPerCtl)%cfg.CheckpointEvery == 0 {
				s, err := snapshot()
				if err != nil {
					return nil, err
				}
				if err := cfg.OnCheckpoint(s); err != nil {
					return nil, fmt.Errorf("sim: checkpoint at t=%.4gs: %w", now, err)
				}
			}
		}
	}

	res := partial()
	res.Completed = done()
	if !res.Completed {
		return res, &TimeCapError{Time: now, Retired: totalDone, Budget: bench.TotalInst}
	}
	return res, nil
}

// actuatorState snapshots the currently applied actuator configuration for
// an ActuatorModel.
func (r *Runner) actuatorState(dvfs []int, ts *tec.State, fanLevel int) ActuatorState {
	st := ActuatorState{
		DVFS:     append([]int(nil), dvfs...),
		FanLevel: fanLevel,
	}
	if ts != nil {
		st.TECAmps = ts.Currents()
	}
	return st
}

// applyDecision validates and applies a (possibly fault-filtered) decision
// to the live actuator state.
func (r *Runner) applyDecision(dec Decision, dvfs []int, ts *tec.State) error {
	cfg := &r.cfg
	if dec.DVFS != nil {
		if len(dec.DVFS) != len(dvfs) {
			return fmt.Errorf("sim: controller returned %d DVFS levels", len(dec.DVFS))
		}
		for i, l := range dec.DVFS {
			dvfs[i] = cfg.DVFS.Clamp(l)
		}
	}
	if ts != nil {
		switch {
		case dec.TECAmps != nil:
			if len(dec.TECAmps) != ts.Len() {
				return fmt.Errorf("sim: controller returned %d TEC currents", len(dec.TECAmps))
			}
			for l, amps := range dec.TECAmps {
				ts.SetCurrent(l, amps)
			}
		case dec.TECOn != nil:
			ts.SetMask(dec.TECOn)
		}
	}
	return nil
}
