// Package sim couples the workload, power, thermal, TEC, fan, and DVFS
// models into the discrete-time co-simulation the paper runs on
// SESC+HotSpot (§IV-B): per-step it evaluates dynamic power from the
// workload trace at the current DVFS levels, ground-truth quadratic leakage
// from the current temperatures (the temperature–leakage loop the authors
// patched into HotSpot's transient routine), integrates the RC network, and
// advances per-core instruction progress. A pluggable controller is invoked
// every lower-level control period (2 ms) and, optionally, every higher-level
// fan period.
//
// Following §IV-C, a benchmark run executes at a fixed fan level after a
// warm-start procedure that reproduces the paper's convergence loop: repeat
// the run with the previous final temperatures as the initial condition
// until consecutive peak temperatures differ by less than 0.5 °C.
package sim

import (
	"errors"
	"fmt"
	"math"

	"tecfan/internal/fan"
	"tecfan/internal/floorplan"
	"tecfan/internal/perf"
	"tecfan/internal/power"
	"tecfan/internal/tec"
	"tecfan/internal/thermal"
	"tecfan/internal/workload"
)

// Observation is what a controller sees at a control boundary: the
// previous-interval measurements the paper's models consume (P(k−1),
// IPS(k−1), T(k−1)).
type Observation struct {
	Time      float64   // simulation time, s
	Temps     []float64 // current node temperatures (die first), °C
	DynPower  []float64 // avg per-component dynamic power over last period, W
	CoreIPS   []float64 // avg per-core IPS over last period
	DVFS      []int     // current per-core levels
	TECOn     []bool    // current TEC on/off vector
	TECAmps   []float64 // current per-device drive currents, A (0 = off)
	FanLevel  int
	Threshold float64
}

// Decision is a controller's actuator request. Nil slices mean "unchanged".
// TECAmps, when set, takes precedence over TECOn and drives each device at
// the given current — the variable-current extension of §III.
type Decision struct {
	DVFS    []int
	TECOn   []bool
	TECAmps []float64
}

// Controller is the lower-level (2 ms) decision maker.
type Controller interface {
	Name() string
	Control(obs *Observation) Decision
	// Reset clears internal state between warm-start iterations.
	Reset()
}

// SensorModel transforms each Observation before a controller sees it — the
// fault-injection seam for stuck, noisy, dropped-out, or biased sensors. The
// observation's slices are private copies of the live state, so a model may
// mutate them freely without corrupting the simulation.
type SensorModel interface {
	Observe(obs *Observation)
	// Reset clears internal state (stuck-value memory, noise streams)
	// between warm-start iterations.
	Reset()
}

// ActuatorState describes the currently applied actuator configuration,
// handed to an ActuatorModel so persistent faults (a device stuck on, a
// dropped request) can be expressed relative to what is physically in
// effect. Slices are private copies.
type ActuatorState struct {
	DVFS     []int
	TECAmps  []float64 // nil when the run has no TECs
	FanLevel int
}

// ActuatorModel intercepts controller requests before they reach the
// physical actuators — the fault-injection seam for failed TEC devices,
// a stuck fan, or ignored DVFS requests.
type ActuatorModel interface {
	// FilterDecision may mutate dec in place; setting a slice to nil drops
	// that request entirely (the actuator keeps its current state). It is
	// also invoked once at t = 0 with an empty decision so always-on faults
	// apply from the first step.
	FilterDecision(now float64, cur ActuatorState, dec *Decision)
	// FilterFan maps a requested fan level to the level actually applied.
	FilterFan(now float64, level int) int
	// Reset clears internal state between warm-start iterations.
	Reset()
}

// FanController is optionally implemented by controllers that drive the fan
// at the higher level (TECfan's outer loop). Others run at the fixed level
// chosen by the experiment driver.
type FanController interface {
	FanControl(obs *Observation) int
}

// Config assembles one simulation run.
type Config struct {
	Chip      *floorplan.Chip
	Fan       *fan.Model
	Network   *thermal.Network
	DVFS      *power.DVFSTable
	Leak      power.Leakage
	TECs      []tec.Placement
	Bench     *workload.Benchmark
	Threshold float64 // T_th, °C

	FanLevel      int     // initial / fixed fan level
	Step          float64 // integration step, s (default 100 µs)
	ControlPeriod float64 // lower-level period, s (default 2 ms)
	FanPeriod     float64 // higher-level period, s (default 1 s)

	// InitDVFS is the starting per-core level (default: max).
	InitDVFS int
	// MaxTimeFactor caps the run at factor × the base execution time
	// (default 4): a safety net against livelocked controllers.
	MaxTimeFactor float64
	// RecordTrace enables per-control-period trace capture.
	RecordTrace bool
	// WarmStartTol is the paper's convergence criterion on consecutive
	// peak temperatures (default 0.5 °C).
	WarmStartTol float64
	// MaxWarmStarts bounds the convergence loop (default 5).
	MaxWarmStarts int

	// Sensors, when non-nil, corrupts every observation before the
	// controller reads it.
	Sensors SensorModel
	// Actuators, when non-nil, intercepts every controller request before
	// it is applied.
	Actuators ActuatorModel
}

func (c *Config) fillDefaults() {
	if c.Step == 0 {
		c.Step = 100e-6
	}
	if c.ControlPeriod == 0 {
		c.ControlPeriod = 2e-3
	}
	if c.FanPeriod == 0 {
		c.FanPeriod = 1.0
	}
	if c.MaxTimeFactor == 0 {
		c.MaxTimeFactor = 4
	}
	if c.WarmStartTol == 0 {
		c.WarmStartTol = 0.5
	}
	if c.MaxWarmStarts == 0 {
		c.MaxWarmStarts = 5
	}
	if c.InitDVFS == 0 {
		c.InitDVFS = c.DVFS.Max()
	}
}

// TracePoint is one control-period sample of the run.
type TracePoint struct {
	Time      float64
	PeakTemp  float64
	PeakComp  int
	ChipPower float64
	FanLevel  int
	TECsOn    int
	MeanDVFS  float64
}

// Result is the outcome of one simulation run.
type Result struct {
	Metrics    perf.Metrics
	Trace      []TracePoint
	FinalTemps []float64
	WarmStarts int
	// Completed reports whether every active core retired its budget
	// before the MaxTimeFactor cap. An incomplete run is also reported as
	// a *TimeCapError from Run, so truncation is never silent.
	Completed bool
	// Converged reports whether the warm-start loop met WarmStartTol
	// before MaxWarmStarts ran out.
	Converged bool

	finalDVFS []int
	finalAmps []float64
}

// TimeCapError reports that a run was stopped by the MaxTimeFactor safety
// net before the workload completed — a livelocked or over-throttling
// controller. The partial Result is still returned alongside it.
type TimeCapError struct {
	Time    float64 // simulation time at the cap, s
	Retired float64 // instructions retired
	Budget  float64 // instruction budget
}

func (e *TimeCapError) Error() string {
	return fmt.Sprintf("sim: MaxTimeFactor cap hit at t=%.4gs with %.3g of %.3g instructions retired (livelocked or over-throttled controller)",
		e.Time, e.Retired, e.Budget)
}

// Runner executes simulation runs for one configuration.
type Runner struct {
	cfg Config
	ctl Controller
}

// NewRunner validates the configuration and builds a runner.
func NewRunner(cfg Config, ctl Controller) (*Runner, error) {
	if cfg.Chip == nil || cfg.Fan == nil || cfg.Network == nil || cfg.DVFS == nil || cfg.Bench == nil {
		return nil, fmt.Errorf("sim: incomplete config")
	}
	cfg.fillDefaults()
	if cfg.Threshold <= 0 {
		return nil, fmt.Errorf("sim: threshold %v must be positive", cfg.Threshold)
	}
	if cfg.FanLevel < 0 || cfg.FanLevel >= cfg.Fan.NumLevels() {
		return nil, fmt.Errorf("sim: fan level %d out of range", cfg.FanLevel)
	}
	if ctl == nil {
		return nil, fmt.Errorf("sim: nil controller")
	}
	return &Runner{cfg: cfg, ctl: ctl}, nil
}

// Run performs the warm-start loop and returns the converged run's result.
// Both the thermal field and the actuator state (DVFS levels, TEC on/off)
// carry across iterations, mirroring §IV-B: the paper repeats each
// simulation with the previous result as the initial condition until the
// peak temperatures of consecutive runs differ by less than 0.5 °C, so the
// reported run reflects steady controller behaviour, not its cold-start
// descent.
func (r *Runner) Run() (*Result, error) {
	cfg := &r.cfg
	// Initial condition: steady state at mean power with initial actuators —
	// the "default uniform initial temperature" of §IV-B, improved to the
	// nearby steady state so the convergence loop is short.
	init, err := r.initialTemps()
	if err != nil {
		return nil, err
	}
	var initDVFS []int
	var initAmps []float64
	var prevPeak float64 = math.Inf(1)
	var res *Result
	for ws := 0; ws < cfg.MaxWarmStarts; ws++ {
		r.ctl.Reset()
		if cfg.Sensors != nil {
			cfg.Sensors.Reset()
		}
		if cfg.Actuators != nil {
			cfg.Actuators.Reset()
		}
		res, err = r.runOnce(init, initDVFS, initAmps)
		if err != nil {
			var tce *TimeCapError
			if errors.As(err, &tce) && res != nil {
				// The cap is an explicit, inspectable error; the partial
				// result rides along for diagnosis.
				res.WarmStarts = ws + 1
				return res, err
			}
			return nil, err
		}
		res.WarmStarts = ws + 1
		if math.Abs(res.Metrics.PeakTemp-prevPeak) < cfg.WarmStartTol {
			res.Converged = true
			return res, nil
		}
		prevPeak = res.Metrics.PeakTemp
		init = res.FinalTemps
		initDVFS = res.finalDVFS
		initAmps = res.finalAmps
	}
	return res, nil
}

// initialTemps solves the steady state under mean base-scenario power.
func (r *Runner) initialTemps() ([]float64, error) {
	cfg := &r.cfg
	nComp := len(cfg.Chip.Components)
	p := make([]float64, nComp)
	scale := cfg.DVFS.ScaleFromMax(cfg.InitDVFS)
	for core := 0; core < cfg.Chip.NumCores(); core++ {
		cfg.Bench.AddDynPower(cfg.Chip, core, 0.5, scale, p)
	}
	// One leakage pass at a fixed nominal temperature is close enough for
	// an initial guess; the warm-start loop refines. (Deliberately not tied
	// to the threshold, so identical workloads start identically regardless
	// of T_th.)
	leak := make([]float64, nComp)
	temps := make([]float64, cfg.Network.NumNodes())
	for i := range temps {
		temps[i] = 75
	}
	cfg.Leak.PerComponent(cfg.Chip, temps, power.ModelQuad, leak)
	for i := range p {
		p[i] += leak[i]
	}
	return cfg.Network.Steady(p, cfg.FanLevel, nil)
}

// runOnce simulates one full benchmark execution from the given initial
// temperatures and (optionally) carried-over actuator state.
func (r *Runner) runOnce(init []float64, initDVFS []int, initAmps []float64) (*Result, error) {
	cfg := &r.cfg
	chip := cfg.Chip
	nComp := len(chip.Components)
	nCores := chip.NumCores()
	bench := cfg.Bench

	temps := append([]float64(nil), init...)
	dvfs := make([]int, nCores)
	for i := range dvfs {
		dvfs[i] = cfg.InitDVFS
	}
	if initDVFS != nil {
		copy(dvfs, initDVFS)
	}
	var ts *tec.State
	if cfg.TECs != nil {
		ts = tec.NewState(cfg.TECs)
		// Carried-over devices re-engage within the first 20 µs step.
		for l, amps := range initAmps {
			ts.SetCurrent(l, amps)
		}
	}
	fanLevel := cfg.FanLevel
	if cfg.Actuators != nil {
		// Persistent actuator faults (a stuck fan, a device failed on)
		// apply from the very first step, not the first control boundary.
		fanLevel = cfg.Fan.Clamp(cfg.Actuators.FilterFan(0, fanLevel))
		dec := Decision{}
		cfg.Actuators.FilterDecision(0, r.actuatorState(dvfs, ts, fanLevel), &dec)
		if err := r.applyDecision(dec, dvfs, ts); err != nil {
			return nil, err
		}
	}
	tr, err := cfg.Network.NewTransient(fanLevel, cfg.Step)
	if err != nil {
		return nil, err
	}

	// Completion follows the paper's Eq. (12)/(13) semantics: execution
	// time is inversely proportional to the aggregate chip IPS, i.e. the
	// run ends when the total retired instructions reach the budget (work
	// redistributes across threads), not when the slowest thread crosses a
	// barrier. Per-core progress still drives each core's activity phase.
	progress := make([]float64, nCores) // fraction of per-core budget retired
	instDone := make([]float64, nCores)
	instPerCore := bench.InstPerCore()
	var totalDone float64

	dyn := make([]float64, nComp)
	leak := make([]float64, nComp)
	total := make([]float64, nComp)
	// Per-control-period accumulators for the observation.
	obsDyn := make([]float64, nComp)
	obsIPS := make([]float64, nCores)
	coreIPS := make([]float64, nCores)

	// Cap generously: the base time stretched by the worst-case frequency
	// ratio, times the safety factor.
	maxTime := cfg.MaxTimeFactor * (bench.TargetTimeMS / 1000) / cfg.DVFS.FreqRatio(cfg.DVFS.Max(), 0)

	var acc perf.Accumulator
	var trace []TracePoint
	stepsPerCtl := int(math.Round(cfg.ControlPeriod / cfg.Step))
	if stepsPerCtl < 1 {
		stepsPerCtl = 1
	}
	stepsPerFan := int(math.Round(cfg.FanPeriod / cfg.Step))

	now := 0.0
	stepIdx := 0
	done := func() bool { return totalDone >= bench.TotalInst }

	for !done() && now < maxTime {
		// Power evaluation at the current state.
		for i := range dyn {
			dyn[i] = 0
		}
		for core := 0; core < nCores; core++ {
			scale := cfg.DVFS.ScaleFromMax(dvfs[core])
			bench.AddDynPower(chip, core, progress[core], scale, dyn)
		}
		cfg.Leak.PerComponent(chip, temps, power.ModelQuad, leak)
		for i := range total {
			total[i] = dyn[i] + leak[i]
		}

		// Thermal step.
		if ts != nil {
			ts.Advance(now)
		}
		tr.Step(temps, total, ts)

		// Instruction progress at the current frequencies. Every active
		// core retires work until the chip-wide budget completes.
		for _, core := range bench.ActiveCores {
			fr := cfg.DVFS.FreqRatio(cfg.DVFS.Max(), dvfs[core])
			ips := bench.IPS(core, progress[core]) * fr
			coreIPS[core] = ips
			instDone[core] += ips * cfg.Step
			totalDone += ips * cfg.Step
			progress[core] = instDone[core] / instPerCore
			if progress[core] > 1 {
				progress[core] = 1
			}
		}

		// Metrics.
		var dynSum, ipsSum float64
		for _, v := range total {
			dynSum += v
		}
		for _, v := range coreIPS {
			ipsSum += v
		}
		tecPower := cfg.Network.TECPower(temps, ts)
		chipPower := dynSum + tecPower + cfg.Fan.Power(fanLevel)
		_, peak := cfg.Network.PeakDie(temps)
		// Integrator sanity guard: a diverged thermal solve or non-physical
		// power must surface as an error, not propagate into perf.Metrics.
		if math.IsNaN(peak) || math.IsInf(peak, 0) {
			return nil, fmt.Errorf("sim: non-finite peak temperature %v out of the integrator at t=%.4gs", peak, now)
		}
		if math.IsNaN(chipPower) || math.IsInf(chipPower, 0) || chipPower < 0 {
			return nil, fmt.Errorf("sim: non-physical chip power %v W at t=%.4gs", chipPower, now)
		}
		acc.Add(cfg.Step, chipPower, ipsSum, peak, cfg.Threshold)

		// Observation accumulation.
		for i := range obsDyn {
			obsDyn[i] += dyn[i] / float64(stepsPerCtl)
		}
		for i := range obsIPS {
			obsIPS[i] += coreIPS[i] / float64(stepsPerCtl)
		}

		now += cfg.Step
		stepIdx++

		// Lower-level control boundary.
		if stepIdx%stepsPerCtl == 0 {
			// Controllers get copies of the live state: a buggy or
			// adversarial controller must not be able to corrupt the
			// simulation by writing through the observation.
			obs := &Observation{
				Time:      now,
				Temps:     append([]float64(nil), temps...),
				DynPower:  obsDyn,
				CoreIPS:   obsIPS,
				DVFS:      append([]int(nil), dvfs...),
				FanLevel:  fanLevel,
				Threshold: cfg.Threshold,
			}
			if ts != nil {
				obs.TECOn = ts.OnMask()
				obs.TECAmps = ts.Currents()
			}
			if cfg.Sensors != nil {
				cfg.Sensors.Observe(obs)
			}
			dec := r.ctl.Control(obs)
			if cfg.Actuators != nil {
				cfg.Actuators.FilterDecision(now, r.actuatorState(dvfs, ts, fanLevel), &dec)
			}
			if err := r.applyDecision(dec, dvfs, ts); err != nil {
				return nil, err
			}
			if cfg.RecordTrace {
				pc, pt := cfg.Network.PeakDie(temps)
				var md float64
				for _, l := range dvfs {
					md += float64(l)
				}
				nOn := 0
				if ts != nil {
					nOn = ts.CountOn()
				}
				trace = append(trace, TracePoint{
					Time: now, PeakTemp: pt, PeakComp: pc, ChipPower: chipPower,
					FanLevel: fanLevel, TECsOn: nOn, MeanDVFS: md / float64(nCores),
				})
			}
			for i := range obsDyn {
				obsDyn[i] = 0
			}
			for i := range obsIPS {
				obsIPS[i] = 0
			}
		}

		// Higher-level fan boundary.
		if fc, ok := r.ctl.(FanController); ok && stepsPerFan > 0 && stepIdx%stepsPerFan == 0 {
			obs := &Observation{
				Time:     now,
				Temps:    append([]float64(nil), temps...),
				DVFS:     append([]int(nil), dvfs...),
				FanLevel: fanLevel, Threshold: cfg.Threshold,
			}
			if ts != nil {
				obs.TECOn = ts.OnMask()
				obs.TECAmps = ts.Currents()
			}
			if cfg.Sensors != nil {
				cfg.Sensors.Observe(obs)
			}
			req := fc.FanControl(obs)
			if cfg.Actuators != nil {
				req = cfg.Actuators.FilterFan(now, req)
			}
			if nl := cfg.Fan.Clamp(req); nl != fanLevel {
				fanLevel = nl
				if tr, err = cfg.Network.NewTransient(fanLevel, cfg.Step); err != nil {
					return nil, err
				}
			}
		}
	}

	res := &Result{
		Metrics:    acc.Snapshot(),
		Trace:      trace,
		FinalTemps: temps,
		Completed:  done(),
		finalDVFS:  append([]int(nil), dvfs...),
	}
	if ts != nil {
		res.finalAmps = ts.Currents()
	}
	if !res.Completed {
		return res, &TimeCapError{Time: now, Retired: totalDone, Budget: bench.TotalInst}
	}
	return res, nil
}

// actuatorState snapshots the currently applied actuator configuration for
// an ActuatorModel.
func (r *Runner) actuatorState(dvfs []int, ts *tec.State, fanLevel int) ActuatorState {
	st := ActuatorState{
		DVFS:     append([]int(nil), dvfs...),
		FanLevel: fanLevel,
	}
	if ts != nil {
		st.TECAmps = ts.Currents()
	}
	return st
}

// applyDecision validates and applies a (possibly fault-filtered) decision
// to the live actuator state.
func (r *Runner) applyDecision(dec Decision, dvfs []int, ts *tec.State) error {
	cfg := &r.cfg
	if dec.DVFS != nil {
		if len(dec.DVFS) != len(dvfs) {
			return fmt.Errorf("sim: controller returned %d DVFS levels", len(dec.DVFS))
		}
		for i, l := range dec.DVFS {
			dvfs[i] = cfg.DVFS.Clamp(l)
		}
	}
	if ts != nil {
		switch {
		case dec.TECAmps != nil:
			if len(dec.TECAmps) != ts.Len() {
				return fmt.Errorf("sim: controller returned %d TEC currents", len(dec.TECAmps))
			}
			for l, amps := range dec.TECAmps {
				ts.SetCurrent(l, amps)
			}
		case dec.TECOn != nil:
			ts.SetMask(dec.TECOn)
		}
	}
	return nil
}
