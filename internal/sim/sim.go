// Package sim couples the workload, power, thermal, TEC, fan, and DVFS
// models into the discrete-time co-simulation the paper runs on
// SESC+HotSpot (§IV-B): per-step it evaluates dynamic power from the
// workload trace at the current DVFS levels, ground-truth quadratic leakage
// from the current temperatures (the temperature–leakage loop the authors
// patched into HotSpot's transient routine), integrates the RC network, and
// advances per-core instruction progress. A pluggable controller is invoked
// every lower-level control period (2 ms) and, optionally, every higher-level
// fan period.
//
// Following §IV-C, a benchmark run executes at a fixed fan level after a
// warm-start procedure that reproduces the paper's convergence loop: repeat
// the run with the previous final temperatures as the initial condition
// until consecutive peak temperatures differ by less than 0.5 °C.
package sim

import (
	"context"
	"errors"
	"fmt"
	"math"

	"tecfan/internal/fan"
	"tecfan/internal/floats"
	"tecfan/internal/floorplan"
	"tecfan/internal/linalg"
	"tecfan/internal/numguard"
	"tecfan/internal/perf"
	"tecfan/internal/power"
	"tecfan/internal/tec"
	"tecfan/internal/thermal"
	"tecfan/internal/workload"
)

// Observation is what a controller sees at a control boundary: the
// previous-interval measurements the paper's models consume (P(k−1),
// IPS(k−1), T(k−1)).
type Observation struct {
	Time      float64   // simulation time, s
	Temps     []float64 // current node temperatures (die first), °C
	DynPower  []float64 // avg per-component dynamic power over last period, W
	CoreIPS   []float64 // avg per-core IPS over last period
	DVFS      []int     // current per-core levels
	TECOn     []bool    // current TEC on/off vector
	TECAmps   []float64 // current per-device drive currents, A (0 = off)
	FanLevel  int
	Threshold float64
}

// Decision is a controller's actuator request. Nil slices mean "unchanged".
// TECAmps, when set, takes precedence over TECOn and drives each device at
// the given current — the variable-current extension of §III.
type Decision struct {
	DVFS    []int
	TECOn   []bool
	TECAmps []float64
}

// Controller is the lower-level (2 ms) decision maker.
type Controller interface {
	Name() string
	Control(obs *Observation) Decision
	// Reset clears internal state between warm-start iterations.
	Reset()
}

// SensorModel transforms each Observation before a controller sees it — the
// fault-injection seam for stuck, noisy, dropped-out, or biased sensors. The
// observation's slices are private copies of the live state, so a model may
// mutate them freely without corrupting the simulation. The copies live in
// buffers the runner reuses across boundaries, though: an Observation is
// valid only for the duration of the call it is handed to, and a model (or
// controller) that retains measurements across periods must deep-copy them.
type SensorModel interface {
	Observe(obs *Observation)
	// Reset clears internal state (stuck-value memory, noise streams)
	// between warm-start iterations.
	Reset()
}

// ActuatorState describes the currently applied actuator configuration,
// handed to an ActuatorModel so persistent faults (a device stuck on, a
// dropped request) can be expressed relative to what is physically in
// effect. Slices are private copies.
type ActuatorState struct {
	DVFS     []int
	TECAmps  []float64 // nil when the run has no TECs
	FanLevel int
}

// ActuatorModel intercepts controller requests before they reach the
// physical actuators — the fault-injection seam for failed TEC devices,
// a stuck fan, or ignored DVFS requests.
type ActuatorModel interface {
	// FilterDecision may mutate dec in place; setting a slice to nil drops
	// that request entirely (the actuator keeps its current state). It is
	// also invoked once at t = 0 with an empty decision so always-on faults
	// apply from the first step.
	FilterDecision(now float64, cur ActuatorState, dec *Decision)
	// FilterFan maps a requested fan level to the level actually applied.
	FilterFan(now float64, level int) int
	// Reset clears internal state between warm-start iterations.
	Reset()
}

// FanController is optionally implemented by controllers that drive the fan
// at the higher level (TECfan's outer loop). Others run at the fixed level
// chosen by the experiment driver.
type FanController interface {
	FanControl(obs *Observation) int
}

// NumFaultInjector corrupts the integrator's inputs and outputs per a
// seeded schedule — the numerical-chaos seam (implemented by
// numfault.Injector) that proves the numguard auditor catches every
// violation. Injection must be a pure function of (step, retry), carrying
// no draw-count state, so resumed runs replay identical faults.
type NumFaultInjector interface {
	// CorruptPower may corrupt the per-component power vector before the
	// thermal step; CorruptTemps may corrupt the temperature vector after
	// it. retry restricts the injection to persistent rules (the step
	// fallback re-attempt). Both report whether anything fired.
	CorruptPower(step int, retry bool, power []float64) bool
	CorruptTemps(step int, retry bool, temps []float64) bool
}

// NumericEscalator is optionally implemented by controllers that can absorb
// a confirmed numeric divergence: the simulator reports the structured
// diagnosis once and keeps stepping with the last good state held, letting
// the controller wind the run down in its fail-safe. Controllers without it
// cause the run to refuse cleanly with a *DivergenceError instead.
type NumericEscalator interface {
	EscalateNumeric(v numguard.Violation)
}

// StateCodec is optionally implemented by controllers, sensor models, and
// actuator models whose internal state must survive checkpoint/restore.
// MarshalState captures the complete mutable state; UnmarshalState replaces
// the receiver's state wholesale (no merging), so a restored run continues
// bitwise-identically to the uninterrupted one. Stateless components simply
// don't implement it.
type StateCodec interface {
	MarshalState() ([]byte, error)
	UnmarshalState(data []byte) error
}

// Config assembles one simulation run.
type Config struct {
	Chip      *floorplan.Chip
	Fan       *fan.Model
	Network   *thermal.Network
	DVFS      *power.DVFSTable
	Leak      power.Leakage
	TECs      []tec.Placement
	Bench     *workload.Benchmark
	Threshold float64 // T_th, °C

	FanLevel      int     // initial / fixed fan level
	Step          float64 // integration step, s (default 100 µs)
	ControlPeriod float64 // lower-level period, s (default 2 ms)
	FanPeriod     float64 // higher-level period, s (default 1 s)

	// InitDVFS is the starting per-core level (default: max).
	InitDVFS int
	// MaxTimeFactor caps the run at factor × the base execution time
	// (default 4): a safety net against livelocked controllers.
	MaxTimeFactor float64
	// RecordTrace enables per-control-period trace capture.
	RecordTrace bool
	// WarmStartTol is the paper's convergence criterion on consecutive
	// peak temperatures (default 0.5 °C).
	WarmStartTol float64
	// MaxWarmStarts bounds the convergence loop (default 5).
	MaxWarmStarts int

	// Sensors, when non-nil, corrupts every observation before the
	// controller reads it.
	Sensors SensorModel
	// Actuators, when non-nil, intercepts every controller request before
	// it is applied.
	Actuators ActuatorModel
	// NumFaults, when non-nil, injects scheduled numerical corruption into
	// the step loop — the proof harness for the always-on invariant
	// auditor.
	NumFaults NumFaultInjector
	// Guard overrides the numguard envelope and tolerances; nil selects
	// numguard.DefaultConfig(). The auditor itself is always on.
	Guard *numguard.Config

	// CheckpointEvery takes a state snapshot every N control periods
	// (0 = never). Snapshots are also taken once at the cancellation point
	// when the run context is canceled, so graceful shutdown always leaves a
	// resumable checkpoint behind.
	CheckpointEvery int
	// OnCheckpoint receives every snapshot; a non-nil error aborts the run.
	// The snapshot is freshly allocated and safe to retain or serialize.
	OnCheckpoint func(*Snapshot) error
}

func (c *Config) fillDefaults() {
	if c.Step == 0 {
		c.Step = 100e-6
	}
	if c.ControlPeriod == 0 {
		c.ControlPeriod = 2e-3
	}
	if c.FanPeriod == 0 {
		c.FanPeriod = 1.0
	}
	if c.MaxTimeFactor == 0 {
		c.MaxTimeFactor = 4
	}
	if c.WarmStartTol == 0 {
		c.WarmStartTol = 0.5
	}
	if c.MaxWarmStarts == 0 {
		c.MaxWarmStarts = 5
	}
	if c.InitDVFS == 0 {
		c.InitDVFS = c.DVFS.Max()
	}
}

// TracePoint is one control-period sample of the run.
type TracePoint struct {
	Time      float64
	PeakTemp  float64
	PeakComp  int
	ChipPower float64
	FanLevel  int
	TECsOn    int
	MeanDVFS  float64
}

// Result is the outcome of one simulation run.
type Result struct {
	Metrics    perf.Metrics
	Trace      []TracePoint
	FinalTemps []float64
	WarmStarts int
	// Completed reports whether every active core retired its budget
	// before the MaxTimeFactor cap. An incomplete run is also reported as
	// a *TimeCapError from Run, so truncation is never silent.
	Completed bool
	// Converged reports whether the warm-start loop met WarmStartTol
	// before MaxWarmStarts ran out.
	Converged bool
	// Numeric is the NumericHealth block: refinement and recovery counters
	// from the invariant auditor, plus the structured diagnosis when a
	// divergence was confirmed. Never nil on a Result returned by Run.
	Numeric *numguard.Health

	finalDVFS []int
	finalAmps []float64
}

// TimeCapError reports that a run was stopped by the MaxTimeFactor safety
// net before the workload completed — a livelocked or over-throttling
// controller. The partial Result is still returned alongside it.
type TimeCapError struct {
	Time    float64 // simulation time at the cap, s
	Retired float64 // instructions retired
	Budget  float64 // instruction budget
}

func (e *TimeCapError) Error() string {
	return fmt.Sprintf("sim: MaxTimeFactor cap hit at t=%.4gs with %.3g of %.3g instructions retired (livelocked or over-throttled controller)",
		e.Time, e.Retired, e.Budget)
}

// DivergenceError reports a confirmed numeric divergence in a run whose
// controller cannot absorb it (it does not implement NumericEscalator): the
// run refuses to continue rather than emit corrupt metrics. The partial
// Result — finite metrics up to the divergence point plus the NumericHealth
// diagnosis — is returned alongside.
type DivergenceError struct {
	V numguard.Violation
}

func (e *DivergenceError) Error() string {
	return fmt.Sprintf("sim: confirmed numeric divergence: %s", e.V.String())
}

// Snapshot is the complete mid-run state captured at a control boundary: the
// thermal field, actuator configuration, workload progress, metric
// accumulators, warm-start loop position, and the opaque serialized state of
// every StateCodec component. Resume on an identically configured Runner
// continues the run bitwise-identically to an uninterrupted one.
type Snapshot struct {
	// SimTime/StepIdx locate the boundary the snapshot was taken at.
	SimTime float64
	StepIdx int
	// WarmStart is the 0-based warm-start iteration in progress; PrevPeak is
	// the previous iteration's peak temperature (+Inf on the first).
	WarmStart int
	PrevPeak  float64

	Temps    []float64
	DVFS     []int
	TEC      *tec.StateSnapshot // nil when the run has no TECs
	FanLevel int

	InstDone  []float64
	TotalDone float64

	Acc   perf.AccumulatorState
	Trace []TracePoint

	// Numeric is the invariant auditor's state (energy integral, recovery
	// counters, diagnosis). Nil in snapshots written before the auditor
	// existed; resume then seeds the energy integral from Acc.
	Numeric *numguard.State

	// Serialized StateCodec blobs; nil when the component is stateless (or
	// absent). Sensors and Actuators may hold identical blobs when one
	// object implements both seams — restoring both is then idempotent.
	Controller []byte
	Sensors    []byte
	Actuators  []byte
}

// Runner executes simulation runs for one configuration.
type Runner struct {
	cfg Config
	ctl Controller
}

// NewRunner validates the configuration and builds a runner.
func NewRunner(cfg Config, ctl Controller) (*Runner, error) {
	if cfg.Chip == nil || cfg.Fan == nil || cfg.Network == nil || cfg.DVFS == nil || cfg.Bench == nil {
		return nil, fmt.Errorf("sim: incomplete config")
	}
	cfg.fillDefaults()
	if cfg.Threshold <= 0 {
		return nil, fmt.Errorf("sim: threshold %v must be positive", cfg.Threshold)
	}
	if cfg.FanLevel < 0 || cfg.FanLevel >= cfg.Fan.NumLevels() {
		return nil, fmt.Errorf("sim: fan level %d out of range", cfg.FanLevel)
	}
	if ctl == nil {
		return nil, fmt.Errorf("sim: nil controller")
	}
	return &Runner{cfg: cfg, ctl: ctl}, nil
}

// Run performs the warm-start loop and returns the converged run's result.
// Both the thermal field and the actuator state (DVFS levels, TEC on/off)
// carry across iterations, mirroring §IV-B: the paper repeats each
// simulation with the previous result as the initial condition until the
// peak temperatures of consecutive runs differ by less than 0.5 °C, so the
// reported run reflects steady controller behaviour, not its cold-start
// descent.
func (r *Runner) Run() (*Result, error) { return r.RunContext(context.Background()) }

// RunContext is Run under a context: cancellation is observed at every
// control boundary (within one control period of simulated work), the
// partial Result is returned alongside the wrapped context error, and — when
// checkpointing is configured — a final snapshot is emitted at the
// cancellation point so the run can be resumed later.
func (r *Runner) RunContext(ctx context.Context) (*Result, error) {
	return r.run(ctx, nil)
}

// Resume continues a run from a Snapshot previously emitted through
// Config.OnCheckpoint. The Runner must be configured identically to the one
// that produced the snapshot (same chip, benchmark, thresholds, periods) and
// hold fresh controller/sensor/actuator instances of the same types; their
// serialized state is restored before simulation restarts. The continued run
// is bitwise-identical to the uninterrupted one.
func (r *Runner) Resume(ctx context.Context, snap *Snapshot) (*Result, error) {
	if snap == nil {
		return nil, fmt.Errorf("sim: nil snapshot")
	}
	if err := r.validateSnapshot(snap); err != nil {
		return nil, err
	}
	if err := restoreCodec("controller", r.ctl, snap.Controller); err != nil {
		return nil, err
	}
	if err := restoreCodec("sensors", r.cfg.Sensors, snap.Sensors); err != nil {
		return nil, err
	}
	if err := restoreCodec("actuators", r.cfg.Actuators, snap.Actuators); err != nil {
		return nil, err
	}
	return r.run(ctx, snap)
}

// validateSnapshot rejects snapshots whose shape cannot belong to this
// runner's configuration before any state is overwritten.
func (r *Runner) validateSnapshot(snap *Snapshot) error {
	cfg := &r.cfg
	if n := cfg.Network.NumNodes(); len(snap.Temps) != n {
		return fmt.Errorf("sim: snapshot has %d node temperatures, want %d", len(snap.Temps), n)
	}
	if n := cfg.Chip.NumCores(); len(snap.DVFS) != n || len(snap.InstDone) != n {
		return fmt.Errorf("sim: snapshot DVFS/progress for %d/%d cores, want %d",
			len(snap.DVFS), len(snap.InstDone), n)
	}
	if (snap.TEC != nil) != (cfg.TECs != nil) {
		return fmt.Errorf("sim: snapshot TEC state mismatches configuration")
	}
	if snap.FanLevel < 0 || snap.FanLevel >= cfg.Fan.NumLevels() {
		return fmt.Errorf("sim: snapshot fan level %d out of range", snap.FanLevel)
	}
	if snap.WarmStart < 0 || snap.WarmStart >= cfg.MaxWarmStarts {
		return fmt.Errorf("sim: snapshot warm-start %d outside [0, %d)", snap.WarmStart, cfg.MaxWarmStarts)
	}
	if snap.StepIdx < 0 || snap.SimTime < 0 || !floats.Finite(snap.SimTime) {
		return fmt.Errorf("sim: snapshot position t=%v step=%d invalid", snap.SimTime, snap.StepIdx)
	}
	if !floats.AllFinite(snap.Temps) {
		return fmt.Errorf("sim: snapshot temperature field contains non-finite values")
	}
	return nil
}

// restoreCodec loads a serialized state blob into a component. A blob
// without a StateCodec (or the reverse) means the resume-side component is
// not the type that produced the snapshot — an error, never a silent skip.
func restoreCodec(what string, comp any, blob []byte) error {
	codec, ok := comp.(StateCodec)
	if blob == nil {
		if ok {
			return fmt.Errorf("sim: snapshot carries no %s state but the %s is stateful", what, what)
		}
		return nil
	}
	if !ok {
		return fmt.Errorf("sim: snapshot carries %s state but the %s cannot restore it", what, what)
	}
	if err := codec.UnmarshalState(blob); err != nil {
		return fmt.Errorf("sim: restoring %s state: %w", what, err)
	}
	return nil
}

// marshalCodec captures a component's state blob (nil for stateless ones).
func marshalCodec(what string, comp any) ([]byte, error) {
	codec, ok := comp.(StateCodec)
	if !ok {
		return nil, nil
	}
	blob, err := codec.MarshalState()
	if err != nil {
		return nil, fmt.Errorf("sim: capturing %s state: %w", what, err)
	}
	return blob, nil
}

// run drives the warm-start loop, starting fresh or from a snapshot.
func (r *Runner) run(ctx context.Context, snap *Snapshot) (*Result, error) {
	cfg := &r.cfg
	var init []float64
	var initDVFS []int
	var initAmps []float64
	prevPeak := math.Inf(1)
	ws0 := 0
	if snap != nil {
		ws0, prevPeak = snap.WarmStart, snap.PrevPeak
	} else {
		// Initial condition: steady state at mean power with initial
		// actuators — the "default uniform initial temperature" of §IV-B,
		// improved to the nearby steady state so the convergence loop is
		// short.
		var err error
		init, err = r.initialTemps()
		if err != nil {
			return nil, err
		}
	}
	// One auditor per run: its counters and diagnosis describe the whole
	// warm-start loop, and it rides in every checkpoint.
	gcfg := numguard.DefaultConfig()
	if cfg.Guard != nil {
		gcfg = *cfg.Guard
	}
	guard := numguard.New(gcfg)
	var res *Result
	var err error
	for ws := ws0; ws < cfg.MaxWarmStarts; ws++ {
		if snap == nil {
			// A resumed iteration restores state instead of resetting it.
			r.ctl.Reset()
			if cfg.Sensors != nil {
				cfg.Sensors.Reset()
			}
			if cfg.Actuators != nil {
				cfg.Actuators.Reset()
			}
		}
		res, err = r.runOnce(ctx, init, initDVFS, initAmps, ws, prevPeak, snap, guard)
		snap = nil
		if err != nil {
			var tce *TimeCapError
			if errors.As(err, &tce) && res != nil {
				// The cap is an explicit, inspectable error; the partial
				// result rides along for diagnosis.
				res.WarmStarts = ws + 1
				return res, err
			}
			if res != nil {
				// Cancellation: the partial result rides along too.
				res.WarmStarts = ws + 1
				return res, err
			}
			return nil, err
		}
		res.WarmStarts = ws + 1
		if math.Abs(res.Metrics.PeakTemp-prevPeak) < cfg.WarmStartTol {
			res.Converged = true
			return res, nil
		}
		prevPeak = res.Metrics.PeakTemp
		init = res.FinalTemps
		initDVFS = res.finalDVFS
		initAmps = res.finalAmps
	}
	return res, nil
}

// initialTemps solves the steady state under mean base-scenario power.
func (r *Runner) initialTemps() ([]float64, error) {
	cfg := &r.cfg
	nComp := len(cfg.Chip.Components)
	p := make([]float64, nComp)
	scale := cfg.DVFS.ScaleFromMax(cfg.InitDVFS)
	for core := 0; core < cfg.Chip.NumCores(); core++ {
		cfg.Bench.AddDynPower(cfg.Chip, core, 0.5, scale, p)
	}
	// One leakage pass at a fixed nominal temperature is close enough for
	// an initial guess; the warm-start loop refines. (Deliberately not tied
	// to the threshold, so identical workloads start identically regardless
	// of T_th.)
	leak := make([]float64, nComp)
	temps := make([]float64, cfg.Network.NumNodes())
	for i := range temps {
		temps[i] = 75
	}
	cfg.Leak.PerComponent(cfg.Chip, temps, power.ModelQuad, leak)
	for i := range p {
		p[i] += leak[i]
	}
	return cfg.Network.Steady(p, cfg.FanLevel, nil)
}

// runOnce simulates one full benchmark execution from the given initial
// temperatures and (optionally) carried-over actuator state, or — when snap
// is non-nil — continues a checkpointed execution from its exact mid-run
// state. ws and prevPeak are the warm-start loop position, recorded into any
// snapshot taken so a resumed run rejoins the loop where it left off.
func (r *Runner) runOnce(ctx context.Context, init []float64, initDVFS []int, initAmps []float64, ws int, prevPeak float64, snap *Snapshot, guard *numguard.Auditor) (*Result, error) {
	s, err := r.newStepLoop(init, initDVFS, initAmps, ws, prevPeak, snap, guard)
	if err != nil {
		return nil, err
	}
	for !s.done() && s.now < s.maxTime {
		if err := s.step(); err != nil {
			return s.partial(), err
		}
		if res, err := s.boundaries(ctx); err != nil {
			return res, err
		}
	}
	res := s.partial()
	res.Completed = s.done()
	if !res.Completed {
		return res, &TimeCapError{Time: s.now, Retired: s.totalDone, Budget: s.bench.TotalInst}
	}
	return res, nil
}

// stepLoop is the complete mutable state of one benchmark execution,
// extracted from runOnce so the per-step kernel is a named hot function the
// allocation analyzers police (DESIGN.md §18): step and stepAttempt are on
// the hot set — their fault-free steady-state path performs zero
// allocations — while the control/fan boundaries, snapshots, and refusal
// paths are cold methods over the same state.
type stepLoop struct {
	r     *Runner
	cfg   *Config
	guard *numguard.Auditor
	bench *workload.Benchmark

	// Warm-start loop position, recorded into snapshots.
	ws       int
	prevPeak float64

	nComp, nCores int

	temps, prevTemps []float64
	dvfs             []int
	ts               *tec.State
	fanLevel         int
	tr               *thermal.Transient

	// Completion follows the paper's Eq. (12)/(13) semantics: execution
	// time is inversely proportional to the aggregate chip IPS, i.e. the
	// run ends when the total retired instructions reach the budget (work
	// redistributes across threads), not when the slowest thread crosses a
	// barrier. Per-core progress still drives each core's activity phase.
	progress    []float64 // fraction of per-core budget retired
	instDone    []float64
	instPerCore float64
	totalDone   float64

	acc     perf.Accumulator
	trace   []TracePoint
	now     float64
	stepIdx int

	dyn, leak, total []float64
	// Per-control-period accumulators for the observation. Snapshots are
	// taken only at control boundaries, right after these are zeroed, so a
	// resumed run correctly starts them empty.
	obsDyn, obsIPS, coreIPS []float64

	stepsPerCtl, stepsPerFan int
	maxTime                  float64
	chipPower                float64 // last step's value, for the boundary trace point

	// The reusable boundary observation and its backing buffers; see
	// fillObs for the lifetime contract.
	obs        Observation
	obsTemps   []float64
	obsDVFS    []int
	obsTECOn   []bool
	obsTECAmps []float64
}

// newStepLoop builds the loop state for one execution, either fresh from
// the given initial conditions or restored mid-run from a snapshot.
func (r *Runner) newStepLoop(init []float64, initDVFS []int, initAmps []float64, ws int, prevPeak float64, snap *Snapshot, guard *numguard.Auditor) (*stepLoop, error) {
	cfg := &r.cfg
	chip := cfg.Chip
	s := &stepLoop{
		r: r, cfg: cfg, guard: guard, bench: cfg.Bench,
		ws: ws, prevPeak: prevPeak,
		nComp: len(chip.Components), nCores: chip.NumCores(),
		fanLevel: cfg.FanLevel,
	}
	s.dvfs = make([]int, s.nCores)
	s.progress = make([]float64, s.nCores)
	s.instDone = make([]float64, s.nCores)
	s.instPerCore = s.bench.InstPerCore()

	if snap != nil {
		s.temps = append([]float64(nil), snap.Temps...)
		copy(s.dvfs, snap.DVFS)
		if cfg.TECs != nil {
			s.ts = tec.NewState(cfg.TECs)
			if err := s.ts.RestoreSnapshot(*snap.TEC); err != nil {
				return nil, err
			}
		}
		s.fanLevel = snap.FanLevel
		copy(s.instDone, snap.InstDone)
		s.totalDone = snap.TotalDone
		for core := range s.progress {
			s.progress[core] = s.instDone[core] / s.instPerCore
			if s.progress[core] > 1 {
				s.progress[core] = 1
			}
		}
		s.acc.SetState(snap.Acc)
		if snap.Numeric != nil {
			guard.SetState(*snap.Numeric)
		} else {
			// Pre-numguard checkpoint: align the energy tripwire with the
			// history it did not witness.
			guard.SetState(numguard.State{})
			guard.SeedEnergy(s.acc.Energy)
		}
		s.trace = append(s.trace, snap.Trace...)
		s.now, s.stepIdx = snap.SimTime, snap.StepIdx
	} else {
		guard.BeginIteration()
		s.temps = append([]float64(nil), init...)
		for i := range s.dvfs {
			s.dvfs[i] = cfg.InitDVFS
		}
		if initDVFS != nil {
			copy(s.dvfs, initDVFS)
		}
		if cfg.TECs != nil {
			s.ts = tec.NewState(cfg.TECs)
			// Carried-over devices re-engage within the first 20 µs step.
			for l, amps := range initAmps {
				s.ts.SetCurrent(l, amps)
			}
		}
		if cfg.Actuators != nil {
			// Persistent actuator faults (a stuck fan, a device failed on)
			// apply from the very first step, not the first control boundary.
			s.fanLevel = cfg.Fan.Clamp(cfg.Actuators.FilterFan(0, s.fanLevel))
			dec := Decision{}
			cfg.Actuators.FilterDecision(0, r.actuatorState(s.dvfs, s.ts, s.fanLevel), &dec)
			if err := r.applyDecision(dec, s.dvfs, s.ts); err != nil {
				return nil, err
			}
		}
	}
	var err error
	if s.tr, err = cfg.Network.NewTransient(s.fanLevel, cfg.Step); err != nil {
		return nil, err
	}

	s.dyn = make([]float64, s.nComp)
	s.leak = make([]float64, s.nComp)
	s.total = make([]float64, s.nComp)
	s.prevTemps = make([]float64, len(s.temps))
	s.obsDyn = make([]float64, s.nComp)
	s.obsIPS = make([]float64, s.nCores)
	s.coreIPS = make([]float64, s.nCores)

	// Cap generously: the base time stretched by the worst-case frequency
	// ratio, times the safety factor.
	s.maxTime = cfg.MaxTimeFactor * (s.bench.TargetTimeMS / 1000) / cfg.DVFS.FreqRatio(cfg.DVFS.Max(), 0)

	s.stepsPerCtl = int(math.Round(cfg.ControlPeriod / cfg.Step))
	if s.stepsPerCtl < 1 {
		s.stepsPerCtl = 1
	}
	s.stepsPerFan = int(math.Round(cfg.FanPeriod / cfg.Step))
	return s, nil
}

// done reports whether the chip-wide instruction budget is retired.
func (s *stepLoop) done() bool { return s.totalDone >= s.bench.TotalInst }

// snapshot captures the complete loop state at the current (control
// boundary) position.
func (s *stepLoop) snapshot() (*Snapshot, error) {
	snap := &Snapshot{
		SimTime:   s.now,
		StepIdx:   s.stepIdx,
		WarmStart: s.ws,
		PrevPeak:  s.prevPeak,
		Temps:     append([]float64(nil), s.temps...),
		DVFS:      append([]int(nil), s.dvfs...),
		FanLevel:  s.fanLevel,
		InstDone:  append([]float64(nil), s.instDone...),
		TotalDone: s.totalDone,
		Acc:       s.acc.State(),
		Trace:     append([]TracePoint(nil), s.trace...),
	}
	ns := s.guard.State()
	snap.Numeric = &ns
	if s.ts != nil {
		tsnap := s.ts.Snapshot()
		snap.TEC = &tsnap
	}
	var err error
	if snap.Controller, err = marshalCodec("controller", s.r.ctl); err != nil {
		return nil, err
	}
	if snap.Sensors, err = marshalCodec("sensors", s.cfg.Sensors); err != nil {
		return nil, err
	}
	if snap.Actuators, err = marshalCodec("actuators", s.cfg.Actuators); err != nil {
		return nil, err
	}
	return snap, nil
}

// partial builds the result carrying whatever finite metrics accumulated
// so far plus the numeric health block — used on cancellation, on a
// refused divergence, and (with Completed filled in) at the end.
func (s *stepLoop) partial() *Result {
	res := &Result{
		Metrics:    s.acc.Snapshot(),
		Trace:      s.trace,
		FinalTemps: s.temps,
		Completed:  false,
		Numeric:    s.guard.Health(),
		finalDVFS:  append([]int(nil), s.dvfs...),
	}
	if s.ts != nil {
		res.finalAmps = s.ts.Currents()
	}
	return res
}

// confirm records a confirmed divergence with the actuator configuration
// filled in, then either escalates it into the controller's sticky
// fail-safe (NumericEscalator) or returns the refusal error for
// controllers that cannot absorb it.
func (s *stepLoop) confirm(v *numguard.Violation) error {
	v.FanLevel = s.fanLevel
	if s.ts != nil {
		v.TECsOn = s.ts.CountOn()
	}
	s.guard.Confirm(v)
	if esc, ok := s.r.ctl.(NumericEscalator); ok {
		if !s.guard.State().FailSafe {
			s.guard.SetFailSafe()
			esc.EscalateNumeric(*v)
		}
		return nil
	}
	return &DivergenceError{V: *v}
}

// stepAttempt integrates one thermal step from prevTemps and audits the
// outcome. tr.Step writes temps only on success, and a retry re-runs with
// bit-identical inputs, so a transient upset recovers byte-identically to
// the fault-free execution.
func (s *stepLoop) stepAttempt(retry bool) *numguard.Violation {
	copy(s.temps, s.prevTemps)
	if stepErr := s.tr.Step(s.temps, s.total, s.ts); stepErr != nil {
		//lint:tecfan-ignore allocfree -- solver-refusal path: builds the violation at most once per refused step
		return &numguard.Violation{Kind: numguard.KindSolverResidual, Step: s.stepIdx, Time: s.now, Node: -1, Detail: stepErr.Error()} //lint:tecfan-ignore hotcall -- refusal path: stringifies the solver error once
	}
	if s.cfg.NumFaults != nil {
		s.cfg.NumFaults.CorruptTemps(s.stepIdx, retry, s.temps)
	}
	return s.guard.CheckTemps(s.stepIdx, s.now, s.temps)
}

// step advances the simulation one thermal step: power evaluation, the
// audited integration, instruction progress, metrics, and observation
// accumulation. It is the control loop's per-step kernel — the fault-free
// steady-state path performs zero allocations (TestStepZeroAllocs proves
// it; the analyzers and the bench gate keep it true).
func (s *stepLoop) step() error {
	cfg := s.cfg
	// Power evaluation at the current state.
	for i := range s.dyn {
		s.dyn[i] = 0
	}
	for core := 0; core < s.nCores; core++ {
		scale := cfg.DVFS.ScaleFromMax(s.dvfs[core])
		s.bench.AddDynPower(cfg.Chip, core, s.progress[core], scale, s.dyn)
	}
	cfg.Leak.PerComponent(cfg.Chip, s.temps, power.ModelQuad, s.leak)
	for i := range s.total {
		s.total[i] = s.dyn[i] + s.leak[i]
	}
	if cfg.NumFaults != nil {
		cfg.NumFaults.CorruptPower(s.stepIdx, false, s.total)
	}
	if v := s.guard.CheckPowerVec(s.stepIdx, s.now, s.total); v != nil {
		// Step fallback: rebuild the vector from its inputs. A transient
		// upset vanishes; a persistent fault re-fires and is a confirmed
		// divergence — the run then continues on the clean rebuild.
		for i := range s.total {
			s.total[i] = s.dyn[i] + s.leak[i]
		}
		if cfg.NumFaults != nil {
			cfg.NumFaults.CorruptPower(s.stepIdx, true, s.total)
		}
		if v2 := s.guard.CheckPowerVec(s.stepIdx, s.now, s.total); v2 != nil {
			for i := range s.total {
				s.total[i] = s.dyn[i] + s.leak[i]
			}
			s.guard.NoteHeld()
			if err := s.confirm(v2); err != nil { //lint:tecfan-ignore hotcall -- confirmed-divergence path: runs at most once per confirmed fault
				return err
			}
		} else {
			s.guard.NoteRecovered()
		}
	}

	// Thermal step, audited: a violation (solver refusal, non-finite or
	// out-of-envelope temperature) is retried once with identical inputs;
	// a second violation holds the last good temperature state and
	// confirms the divergence.
	if s.ts != nil {
		s.ts.Advance(s.now)
	}
	copy(s.prevTemps, s.temps)
	if v := s.stepAttempt(false); v != nil {
		if v2 := s.stepAttempt(true); v2 != nil {
			copy(s.temps, s.prevTemps)
			s.guard.NoteHeld()
			if err := s.confirm(v2); err != nil { //lint:tecfan-ignore hotcall -- confirmed-divergence path: runs at most once per confirmed fault
				return err
			}
		} else {
			s.guard.NoteRecovered()
		}
	}
	s.guard.AddRefinements(s.tr.TakeRefinements())

	// Instruction progress at the current frequencies. Every active
	// core retires work until the chip-wide budget completes.
	for _, core := range s.bench.ActiveCores {
		fr := cfg.DVFS.FreqRatio(cfg.DVFS.Max(), s.dvfs[core])
		ips := s.bench.IPS(core, s.progress[core]) * fr
		s.coreIPS[core] = ips
		s.instDone[core] += ips * cfg.Step
		s.totalDone += ips * cfg.Step
		s.progress[core] = s.instDone[core] / s.instPerCore
		if s.progress[core] > 1 {
			s.progress[core] = 1
		}
	}

	// Metrics.
	var dynSum, ipsSum float64
	for _, v := range s.total {
		dynSum += v
	}
	for _, v := range s.coreIPS {
		ipsSum += v
	}
	tecPower := cfg.Network.TECPower(s.temps, s.ts)
	chipPower := dynSum + tecPower + cfg.Fan.Power(s.fanLevel)
	_, peak := cfg.Network.PeakDie(s.temps)
	// The temperature audit above guarantees a finite field, so a
	// non-finite peak would mean the auditor itself is broken: refuse
	// loudly rather than feed it to perf.Metrics.
	if !floats.Finite(peak) {
		//lint:tecfan-ignore allocfree -- auditor-breach refusal: formats the diagnosis at most once per run
		return fmt.Errorf("sim: non-finite peak temperature %s out of the integrator at t=%.4gs", linalg.SafeFloat(peak), s.now) //lint:tecfan-ignore hotcall -- refusal path: fmt and SafeFloat run at most once per run
	}
	if v := s.guard.CheckChipPower(s.stepIdx, s.now, chipPower); v != nil {
		// Chip power is an output-side aggregate with no second
		// computation path to retry: hold zero for this step so the
		// accumulator stays finite, and confirm.
		s.guard.NoteHeld()
		if err := s.confirm(v); err != nil { //lint:tecfan-ignore hotcall -- confirmed-divergence path: runs at most once per confirmed fault
			return err
		}
		chipPower = 0
	}
	s.acc.Add(cfg.Step, chipPower, ipsSum, peak, cfg.Threshold)
	s.guard.AddEnergy(cfg.Step, chipPower)
	s.chipPower = chipPower

	// Observation accumulation.
	for i := range s.obsDyn {
		s.obsDyn[i] += s.dyn[i] / float64(s.stepsPerCtl)
	}
	for i := range s.obsIPS {
		s.obsIPS[i] += s.coreIPS[i] / float64(s.stepsPerCtl)
	}

	s.now += cfg.Step
	s.stepIdx++
	return nil
}

// fillObs populates the reusable boundary observation from the live state.
// The slices are copies (a sensor model may corrupt them freely without
// touching the simulation), but the backing buffers are REUSED across
// boundaries: an Observation is valid only for the duration of the
// controller call it is handed to, and controllers that retain
// measurements across periods must deep-copy them (core.Controller does).
// withPower selects the lower-level form carrying the per-period power and
// IPS accumulators; the fan-boundary form leaves DynPower/CoreIPS nil,
// which is how consumers tell the two apart.
func (s *stepLoop) fillObs(withPower bool) *Observation {
	o := &s.obs
	s.obsTemps = append(s.obsTemps[:0], s.temps...)
	s.obsDVFS = append(s.obsDVFS[:0], s.dvfs...)
	o.Time = s.now
	o.Temps = s.obsTemps
	o.DVFS = s.obsDVFS
	o.FanLevel = s.fanLevel
	o.Threshold = s.cfg.Threshold
	o.DynPower, o.CoreIPS = nil, nil
	if withPower {
		o.DynPower, o.CoreIPS = s.obsDyn, s.obsIPS
	}
	o.TECOn, o.TECAmps = nil, nil
	if s.ts != nil {
		s.obsTECOn = s.ts.OnMaskInto(s.obsTECOn)
		s.obsTECAmps = s.ts.CurrentsInto(s.obsTECAmps)
		o.TECOn, o.TECAmps = s.obsTECOn, s.obsTECAmps
	}
	return o
}

// boundaries runs the control, fan, and checkpoint work due after the step
// that just completed. A non-nil error aborts the run; the accompanying
// result — nil for plumbing failures, a partial result for refusals — is
// exactly what runOnce should hand back.
func (s *stepLoop) boundaries(ctx context.Context) (*Result, error) {
	cfg, r := s.cfg, s.r

	// Lower-level control boundary.
	if s.stepIdx%s.stepsPerCtl == 0 {
		obs := s.fillObs(true)
		if cfg.Sensors != nil {
			cfg.Sensors.Observe(obs)
		}
		dec := r.ctl.Control(obs)
		if cfg.Actuators != nil {
			cfg.Actuators.FilterDecision(s.now, r.actuatorState(s.dvfs, s.ts, s.fanLevel), &dec)
		}
		if err := r.applyDecision(dec, s.dvfs, s.ts); err != nil {
			return nil, err
		}
		// Boundary audits: the metrics energy against the independent
		// ∫power·dt integral, and the applied actuator configuration
		// against its hardware ranges.
		if v := s.guard.CheckEnergy(s.stepIdx, s.now, s.acc.Energy); v != nil {
			if err := s.confirm(v); err != nil {
				return s.partial(), err
			}
		}
		if v := s.guard.CheckActuators(s.stepIdx, s.now, s.fanLevel, cfg.Fan.NumLevels()-1, s.dvfs, cfg.DVFS.Max()); v != nil {
			if err := s.confirm(v); err != nil {
				return s.partial(), err
			}
		}
		if cfg.RecordTrace {
			pc, pt := cfg.Network.PeakDie(s.temps)
			var md float64
			for _, l := range s.dvfs {
				md += float64(l)
			}
			nOn := 0
			if s.ts != nil {
				nOn = s.ts.CountOn()
			}
			s.trace = append(s.trace, TracePoint{
				Time: s.now, PeakTemp: pt, PeakComp: pc, ChipPower: s.chipPower,
				FanLevel: s.fanLevel, TECsOn: nOn, MeanDVFS: md / float64(s.nCores),
			})
		}
		for i := range s.obsDyn {
			s.obsDyn[i] = 0
		}
		for i := range s.obsIPS {
			s.obsIPS[i] = 0
		}
	}

	// Higher-level fan boundary.
	if fc, ok := r.ctl.(FanController); ok && s.stepsPerFan > 0 && s.stepIdx%s.stepsPerFan == 0 {
		obs := s.fillObs(false)
		if cfg.Sensors != nil {
			cfg.Sensors.Observe(obs)
		}
		req := fc.FanControl(obs)
		if cfg.Actuators != nil {
			req = cfg.Actuators.FilterFan(s.now, req)
		}
		if nl := cfg.Fan.Clamp(req); nl != s.fanLevel {
			s.fanLevel = nl
			var err error
			if s.tr, err = cfg.Network.NewTransient(s.fanLevel, cfg.Step); err != nil {
				return nil, err
			}
		}
	}

	// Cancellation and checkpointing, at control boundaries only: this
	// bounds the response to a cancel at one control period, and places
	// every snapshot right after the observation accumulators were
	// zeroed, so a resumed run restarts them empty — bitwise-identical
	// to the uninterrupted execution.
	if s.stepIdx%s.stepsPerCtl == 0 {
		if err := ctx.Err(); err != nil {
			if cfg.OnCheckpoint != nil {
				if snap, serr := s.snapshot(); serr == nil {
					_ = cfg.OnCheckpoint(snap) // best effort on the way out
				}
			}
			return s.partial(), fmt.Errorf("sim: canceled at t=%.4gs: %w", s.now, err)
		}
		if cfg.CheckpointEvery > 0 && cfg.OnCheckpoint != nil &&
			(s.stepIdx/s.stepsPerCtl)%cfg.CheckpointEvery == 0 {
			snap, err := s.snapshot()
			if err != nil {
				return nil, err
			}
			if err := cfg.OnCheckpoint(snap); err != nil {
				return nil, fmt.Errorf("sim: checkpoint at t=%.4gs: %w", s.now, err)
			}
		}
	}
	return nil, nil
}

// actuatorState snapshots the currently applied actuator configuration for
// an ActuatorModel.
func (r *Runner) actuatorState(dvfs []int, ts *tec.State, fanLevel int) ActuatorState {
	st := ActuatorState{
		DVFS:     append([]int(nil), dvfs...),
		FanLevel: fanLevel,
	}
	if ts != nil {
		st.TECAmps = ts.Currents()
	}
	return st
}

// applyDecision validates and applies a (possibly fault-filtered) decision
// to the live actuator state.
func (r *Runner) applyDecision(dec Decision, dvfs []int, ts *tec.State) error {
	cfg := &r.cfg
	if dec.DVFS != nil {
		if len(dec.DVFS) != len(dvfs) {
			return fmt.Errorf("sim: controller returned %d DVFS levels", len(dec.DVFS))
		}
		for i, l := range dec.DVFS {
			dvfs[i] = cfg.DVFS.Clamp(l)
		}
	}
	if ts != nil {
		switch {
		case dec.TECAmps != nil:
			if len(dec.TECAmps) != ts.Len() {
				return fmt.Errorf("sim: controller returned %d TEC currents", len(dec.TECAmps))
			}
			for l, amps := range dec.TECAmps {
				ts.SetCurrent(l, amps)
			}
		case dec.TECOn != nil:
			ts.SetMask(dec.TECOn)
		}
	}
	return nil
}
