// Package floats holds the approved float-comparison helpers enforced by
// the floatcmp analyzer (DESIGN.md §13): solver outputs — temperatures,
// powers, energies — carry rounding error, so exact ==/!= on them is
// either dead or architecture-dependent. Near is the default; Same exists
// so the rare intentional exact compare is spelled loudly instead of
// looking like a bug.
package floats

import "math"

// Near reports whether a and b agree within eps, absolutely or relative
// to the larger magnitude — the standard mixed tolerance, so it works for
// both ~0 residuals and ~350 K temperatures with one epsilon.
func Near(a, b, eps float64) bool {
	if a == b { //lint:tecfan-ignore floatcmp -- this package defines the approved comparison
		return true
	}
	d := math.Abs(a - b)
	if d <= eps {
		return true
	}
	m := math.Max(math.Abs(a), math.Abs(b))
	return d <= eps*m
}

// Same is an intentional exact comparison: bitwise-equal semantics for
// sentinels and for the byte-identical replay proofs, where values must
// round-trip exactly, not approximately. (NaN compares unequal to itself,
// as with ==.)
func Same(a, b float64) bool {
	return a == b //lint:tecfan-ignore floatcmp -- this package defines the approved comparison
}

// Finite reports whether v is an ordinary number: not NaN and not ±Inf.
// This is the approved spelling for integrator guards and invariant
// audits; hand-rolled !IsNaN checks tend to forget the infinities (the
// exact bug the pivot checks in linalg had).
func Finite(v float64) bool {
	return !math.IsNaN(v) && !math.IsInf(v, 0)
}

// AllFinite reports whether every element of vs is finite. It is the
// vector form of Finite, for auditing whole temperature or power vectors
// per step without allocating.
func AllFinite(vs []float64) bool {
	for _, v := range vs {
		if !Finite(v) {
			return false
		}
	}
	return true
}
