package floats

import (
	"math"
	"testing"
)

func TestFinite(t *testing.T) {
	cases := []struct {
		v    float64
		want bool
	}{
		{0, true},
		{-273.15, true},
		{math.MaxFloat64, true},
		{-math.MaxFloat64, true},
		{math.SmallestNonzeroFloat64, true},
		{math.NaN(), false},
		{math.Inf(1), false},
		{math.Inf(-1), false},
	}
	for _, c := range cases {
		if got := Finite(c.v); got != c.want {
			t.Errorf("Finite(%v) = %v, want %v", c.v, got, c.want)
		}
	}
}

func TestAllFinite(t *testing.T) {
	if !AllFinite(nil) {
		t.Error("AllFinite(nil) = false, want true (vacuous)")
	}
	if !AllFinite([]float64{1, 2, 3}) {
		t.Error("AllFinite on finite slice = false")
	}
	for _, bad := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		vs := []float64{1, bad, 3}
		if AllFinite(vs) {
			t.Errorf("AllFinite with %v = true, want false", bad)
		}
	}
}

func TestNear(t *testing.T) {
	if !Near(1, 1+1e-12, 1e-9) {
		t.Error("Near should accept tiny relative error")
	}
	if Near(1, 2, 1e-9) {
		t.Error("Near should reject large error")
	}
	if !Near(0, 1e-12, 1e-9) {
		t.Error("Near should accept tiny absolute error at zero")
	}
}

func TestSame(t *testing.T) {
	if !Same(3.5, 3.5) {
		t.Error("Same(3.5, 3.5) = false")
	}
	if Same(math.NaN(), math.NaN()) {
		t.Error("Same(NaN, NaN) = true, want false (== semantics)")
	}
}
