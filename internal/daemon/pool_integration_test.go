// Pool-mode integration tests: a real coordinator daemon over HTTP, real
// worker loops from internal/worker, real simulations at tiny scale. They
// live in an external test package because the worker reaches the daemon
// through internal/client, which itself imports daemon.
package daemon_test

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"tecfan/internal/client"
	"tecfan/internal/daemon"
	"tecfan/internal/pool"
	"tecfan/internal/worker"
)

// logBuffer is a concurrency-safe Logf sink the tests grep for fencing lines.
type logBuffer struct {
	mu sync.Mutex
	b  strings.Builder
}

func (l *logBuffer) logf(format string, args ...any) {
	l.mu.Lock()
	defer l.mu.Unlock()
	fmt.Fprintf(&l.b, format+"\n", args...)
}

func (l *logBuffer) String() string {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.b.String()
}

func startDaemonHTTP(t *testing.T, cfg daemon.Config) (*daemon.Server, string) {
	t.Helper()
	s, err := daemon.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		srv.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = s.Shutdown(ctx)
	})
	return s, srv.URL
}

func poolClient(t *testing.T, url string) *client.Client {
	t.Helper()
	cl, err := client.New(client.Config{BaseURL: url, Logf: t.Logf, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	return cl
}

// startWorkers launches n worker loops against the coordinator and stops
// them at test cleanup.
func startWorkers(t *testing.T, url string, n int) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		w, err := worker.New(worker.Config{
			Client: poolClient(t, url),
			Name:   fmt.Sprintf("itw%d", i),
			Poll:   20 * time.Millisecond,
			Logf:   t.Logf,
		})
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			_ = w.Run(ctx)
		}()
	}
	t.Cleanup(func() { cancel(); wg.Wait() })
}

// runJob submits a spec, waits for it to finish, and returns the durable
// result bytes.
func runJob(t *testing.T, cl *client.Client, spec daemon.JobSpec) []byte {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	id, err := cl.Submit(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	v, err := cl.Wait(ctx, id, 50*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if v.State != daemon.StateDone {
		t.Fatalf("job %s ended %s: %s", id, v.State, v.Error)
	}
	data, err := cl.Result(ctx, id)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func chaosCmpSpec() daemon.JobSpec {
	return daemon.JobSpec{
		ID: "pool-cmp", Kind: daemon.KindChaos,
		Bench: "cholesky", Threads: 16, Scale: 0.001,
		Policies:  []string{"TECfan-FT"},
		Scenarios: []string{"sensor-dropout", "tec-fail-off", "fan-stuck-slow"},
		Seed:      7,
	}
}

// TestPooledChaosByteIdenticalToInProcess is the core tentpole check in
// miniature: the same chaos sweep run (a) in-process and (b) sharded across
// two workers at chunk 1 must produce byte-identical result files.
func TestPooledChaosByteIdenticalToInProcess(t *testing.T) {
	refCfg := daemon.Config{
		StateDir: t.TempDir(), CheckpointEvery: 1, WatchdogTimeout: -1, Logf: t.Logf,
	}
	_, refURL := startDaemonHTTP(t, refCfg)
	want := runJob(t, poolClient(t, refURL), chaosCmpSpec())

	poolCfg := daemon.Config{
		StateDir: t.TempDir(), CheckpointEvery: 1, WatchdogTimeout: -1, Logf: t.Logf,
		PoolEnabled: true, PoolChunk: 1, PoolLeaseTTL: 5 * time.Second,
	}
	_, poolURL := startDaemonHTTP(t, poolCfg)
	startWorkers(t, poolURL, 2)
	got := runJob(t, poolClient(t, poolURL), chaosCmpSpec())

	if !bytes.Equal(got, want) {
		t.Fatalf("pooled result differs from in-process run:\npooled: %s\nref:    %s", got, want)
	}
}

// TestPooledTable1ByteIdenticalToInProcess covers the whole-table job kinds
// the pool introduced to the daemon.
func TestPooledTable1ByteIdenticalToInProcess(t *testing.T) {
	spec := daemon.JobSpec{ID: "t1-cmp", Kind: daemon.KindTable1, Scale: 0.001}

	refCfg := daemon.Config{
		StateDir: t.TempDir(), CheckpointEvery: 1, WatchdogTimeout: -1, Logf: t.Logf,
	}
	_, refURL := startDaemonHTTP(t, refCfg)
	want := runJob(t, poolClient(t, refURL), spec)

	poolCfg := daemon.Config{
		StateDir: t.TempDir(), CheckpointEvery: 1, WatchdogTimeout: -1, Logf: t.Logf,
		PoolEnabled: true, PoolChunk: 3, PoolLeaseTTL: 5 * time.Second,
	}
	_, poolURL := startDaemonHTTP(t, poolCfg)
	startWorkers(t, poolURL, 2)
	got := runJob(t, poolClient(t, poolURL), spec)

	if !bytes.Equal(got, want) {
		t.Fatalf("pooled table1 result differs from in-process run:\npooled: %s\nref:    %s", got, want)
	}
}

// TestPoolZombieFencedOverHTTP drives the zombie-writer scenario end to end
// over the wire: a worker claims a shard, goes silent past its lease, and
// its late checkpoint upload must be answered 410 (mapped back to
// pool.ErrFenced by the client), logged by the coordinator, and the shard
// must be regranted to a live worker that then finishes the job.
func TestPoolZombieFencedOverHTTP(t *testing.T) {
	var logs logBuffer
	cfg := daemon.Config{
		StateDir: t.TempDir(), CheckpointEvery: 1, WatchdogTimeout: -1, Logf: logs.logf,
		PoolEnabled: true, PoolChunk: 1, PoolLeaseTTL: 200 * time.Millisecond,
	}
	_, url := startDaemonHTTP(t, cfg)
	cl := poolClient(t, url)

	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	id, err := cl.Submit(ctx, chaosCmpSpec())
	if err != nil {
		t.Fatal(err)
	}

	// The zombie claims the first shard and never heartbeats.
	var grant *pool.ClaimResponse
	for grant == nil {
		if grant, err = cl.PoolClaim(ctx, "zombie"); err != nil {
			t.Fatal(err)
		}
		if grant == nil {
			time.Sleep(10 * time.Millisecond)
		}
	}
	time.Sleep(300 * time.Millisecond) // outlive the lease

	// The stall ends; the zombie tries to upload progress under its dead
	// token. The coordinator must reject and log the fencing.
	err = cl.PoolCheckpoint(ctx, &pool.CheckpointUpload{
		Worker: "zombie", JobID: grant.JobID, ShardID: grant.Shard.ID,
		Token: grant.Token, Data: []byte("stale progress"),
	})
	if !errors.Is(err, pool.ErrFenced) {
		t.Fatalf("zombie checkpoint upload = %v, want ErrFenced", err)
	}
	if !strings.Contains(logs.String(), "fenced checkpoint upload") {
		t.Fatalf("coordinator did not log the fenced upload:\n%s", logs.String())
	}

	// A completion under the dead token is equally rejected.
	err = cl.PoolComplete(ctx, &pool.CompleteRequest{
		Worker: "zombie", JobID: grant.JobID, ShardID: grant.Shard.ID,
		Token: grant.Token, Result: []byte("stale result"),
	})
	if !errors.Is(err, pool.ErrFenced) {
		t.Fatalf("zombie complete = %v, want ErrFenced", err)
	}

	// Live workers pick the shard back up and finish the sweep.
	startWorkers(t, url, 2)
	v, err := cl.Wait(ctx, id, 50*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if v.State != daemon.StateDone {
		t.Fatalf("job ended %s: %s", v.State, v.Error)
	}

	st, err := cl.PoolStats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	// 3 shards, each completed exactly once despite the zombie's grant.
	if st.Completes != 3 {
		t.Fatalf("completes = %d, want 3 (exactly-once violated): %+v", st.Completes, st)
	}
	if st.FencedRejects < 2 || st.ExpiredLeases < 1 {
		t.Fatalf("fencing counters too low: %+v", st)
	}
}

// TestPoolReadyzRequiresWorkers: a pool-mode coordinator with no live
// workers cannot make progress and must fail readiness until one polls.
func TestPoolReadyzRequiresWorkers(t *testing.T) {
	cfg := daemon.Config{
		StateDir: t.TempDir(), WatchdogTimeout: -1, Logf: t.Logf,
		PoolEnabled: true, PoolLeaseTTL: 5 * time.Second,
	}
	_, url := startDaemonHTTP(t, cfg)
	cl := poolClient(t, url)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	// Plain GET: a 503 is retryable to the hardened client, and here the 503
	// is the expected answer, not a fault to ride out.
	resp, err := http.Get(url + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("readyz = %d with zero live workers, want 503", resp.StatusCode)
	}
	if _, err := cl.PoolClaim(ctx, "probe"); err != nil {
		t.Fatal(err)
	}
	if err := cl.Ready(ctx); err != nil {
		t.Fatalf("readyz failed with a live worker: %v", err)
	}
}
