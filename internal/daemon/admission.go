package daemon

import (
	"context"
	"math"
	"net/http"
	"regexp"
	"sync"
	"sync/atomic"
	"time"

	"tecfan/internal/clockfault"
)

// tokenBucket is the submission admission controller: a classic token
// bucket refilled continuously at rate tokens/second up to burst. take
// spends one token or reports how long until one is available, which the
// HTTP layer turns into 429 + Retry-After — bounded, honest shedding
// instead of a queue that melts under a retry storm.
type tokenBucket struct {
	mu     sync.Mutex
	rate   float64
	burst  float64
	tokens float64
	primed bool
	last   clockfault.Mono
	clock  clockfault.Clock
}

// newTokenBucket builds a full bucket; rate < 0 disables admission control.
func newTokenBucket(rate float64, burst int, clock clockfault.Clock) *tokenBucket {
	if rate < 0 {
		return nil
	}
	return &tokenBucket{rate: rate, burst: float64(burst), tokens: float64(burst), clock: clock}
}

// take spends a token. When the bucket is empty it returns false and the
// wait until the next token exists.
func (b *tokenBucket) take() (bool, time.Duration) {
	if b == nil {
		return true, 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	now := b.clock.Mono()
	if b.primed {
		b.tokens += now.Sub(b.last).Seconds() * b.rate
		if b.tokens > b.burst {
			b.tokens = b.burst
		}
	}
	b.primed = true
	b.last = now
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	if b.rate == 0 {
		return false, time.Hour // rate 0 with an empty bucket never refills
	}
	need := (1 - b.tokens) / b.rate
	return false, time.Duration(need * float64(time.Second))
}

// retryAfterSeconds rounds a wait up to whole seconds for the Retry-After
// header (minimum 1: "0" would invite an immediate identical retry).
func retryAfterSeconds(d time.Duration) int {
	s := int(math.Ceil(d.Seconds()))
	if s < 1 {
		s = 1
	}
	return s
}

// requestIDKey is the context key the middleware stores the request id
// under.
type requestIDKey struct{}

var requestIDRe = regexp.MustCompile(`^[A-Za-z0-9._-]{1,64}$`)

// reqSeq numbers generated request ids within this process.
var reqSeq atomic.Uint64

// withRequestID accepts a well-formed client X-Request-ID or mints one,
// echoes it on the response, and stores it in the request context so
// handlers can weave it into the job log. The id is how an operator joins a
// client-side retry trace to the daemon-side job history.
func (s *Server) withRequestID(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		rid := r.Header.Get("X-Request-ID")
		if !requestIDRe.MatchString(rid) {
			rid = s.newRequestID()
		}
		w.Header().Set("X-Request-ID", rid)
		next.ServeHTTP(w, r.WithContext(context.WithValue(r.Context(), requestIDKey{}, rid)))
	})
}

func (s *Server) newRequestID() string {
	s.mu.Lock()
	n := s.cfg.rng.Uint32()
	s.mu.Unlock()
	return "req-" + itoaHex(uint64(n)) + "-" + itoaHex(reqSeq.Add(1))
}

// itoaHex is a tiny allocation-free hex formatter for request ids.
func itoaHex(v uint64) string {
	const digits = "0123456789abcdef"
	if v == 0 {
		return "0"
	}
	var buf [16]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = digits[v&0xf]
		v >>= 4
	}
	return string(buf[i:])
}

// requestID recovers the middleware-assigned id from a request context.
func requestID(r *http.Request) string {
	if v, ok := r.Context().Value(requestIDKey{}).(string); ok {
		return v
	}
	return ""
}

// withRequestTimeout bounds each request's handling with a context
// deadline, so one wedged handler cannot hold a connection (and its
// goroutine) forever.
func withRequestTimeout(next http.Handler, d time.Duration) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		ctx, cancel := context.WithTimeout(r.Context(), d)
		defer cancel()
		next.ServeHTTP(w, r.WithContext(ctx))
	})
}
