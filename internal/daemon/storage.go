package daemon

import (
	"fmt"
	"regexp"

	"tecfan/internal/checkpoint"
	"tecfan/internal/diskfault"
)

// ErrStorageDegraded is returned for submissions while the daemon is in
// ENOSPC degraded mode: accepting a job whose spec cannot be persisted would
// silently drop the exactly-once guarantee, so new work is shed instead.
var ErrStorageDegraded = fmt.Errorf("daemon: storage degraded (out of space)")

// ckptFileRe picks checkpoint files — the head "<id>.ckpt" and rotated
// generations "<id>.ckpt.gN" — out of a state-dir listing, capturing the job
// id. Quarantined ".bad-N" files and in-flight ".tmp*" files do not match.
var ckptFileRe = regexp.MustCompile(`^(.+)\.ckpt(\.g[0-9]+)?$`)

// gens returns (creating on first use) the generational checkpoint store for
// a job. Stores are cached so quarantine counters survive across calls.
func (s *Server) gens(id string) *checkpoint.GenStore {
	s.mu.Lock()
	defer s.mu.Unlock()
	g, ok := s.genStores[id]
	if !ok {
		g = checkpoint.NewGenStore(s.cfg.FS, s.ckptPath(id), s.cfg.CheckpointKeep, s.cfg.Logf)
		s.genStores[id] = g
	}
	return g
}

// dropGens forgets a finished job's store after its files are removed.
func (s *Server) dropGens(id string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if g, ok := s.genStores[id]; ok {
		s.quarantinedRetired.Add(g.Quarantined())
		delete(s.genStores, id)
	}
}

// quarantinedTotal sums quarantines across every live store, retired
// stores, and the idempotency table.
func (s *Server) quarantinedTotal() int64 {
	s.mu.Lock()
	n := s.quarantinedRetired.Load()
	for _, g := range s.genStores {
		n += g.Quarantined()
	}
	s.mu.Unlock()
	return n + s.idem.Quarantined()
}

// noteStorageError inspects a state-write failure and flips the daemon into
// degraded mode on ENOSPC. Other errors are the caller's problem (EIO on one
// file does not mean the disk is full).
func (s *Server) noteStorageError(err error) {
	if err == nil || !diskfault.IsNoSpace(err) {
		return
	}
	if s.degraded.CompareAndSwap(false, true) {
		s.cfg.Logf("daemon: state dir out of space: entering degraded mode " +
			"(shedding new submissions, skipping checkpoints, reads still served)")
	}
}

// StorageDegraded reports whether the daemon is currently shedding work
// because the state dir has no space.
func (s *Server) StorageDegraded() bool { return s.degraded.Load() }

// storageProbe is the degraded-mode recovery loop: while degraded, it
// periodically test-writes the state dir and leaves degraded mode the moment
// a probe lands — space came back (operator deleted files, quota raised).
func (s *Server) storageProbe() {
	defer s.wg.Done()
	t := s.cfg.Clock.NewTicker(s.cfg.StorageProbeInterval)
	defer t.Stop()
	for {
		select {
		case <-s.rootCtx.Done():
			return
		case <-t.C():
		}
		if !s.degraded.Load() {
			continue
		}
		if err := s.stateDirWritable(); err != nil {
			continue // still full (or newly broken); stay degraded
		}
		if s.degraded.CompareAndSwap(true, false) {
			s.cfg.Logf("daemon: state dir writable again: leaving degraded mode")
		}
	}
}

// scrubber periodically re-verifies every checkpoint generation on disk and
// repairs corrupt ones from the newest good copy — bit rot is found while
// the fallback chain still has redundancy, not at resume time when it is
// the only copy left.
func (s *Server) scrubber() {
	defer s.wg.Done()
	t := s.cfg.Clock.NewTicker(s.cfg.ScrubInterval)
	defer t.Stop()
	for {
		select {
		case <-s.rootCtx.Done():
			return
		case <-t.C():
		}
		s.ScrubNow()
	}
}

// ScrubNow runs one scrub pass over every job with checkpoint files in the
// state dir, returning how many generations were repaired. Degraded mode
// skips the pass: repairs are writes, and writes are what is failing.
func (s *Server) ScrubNow() int {
	if s.degraded.Load() {
		return 0
	}
	entries, err := s.cfg.FS.ReadDir(s.cfg.StateDir)
	if err != nil {
		s.cfg.Logf("daemon: scrub: listing state dir: %v", err)
		return 0
	}
	seen := map[string]bool{}
	var ids []string
	for _, e := range entries {
		m := ckptFileRe.FindStringSubmatch(e.Name())
		if m == nil || seen[m[1]] {
			continue
		}
		seen[m[1]] = true
		ids = append(ids, m[1])
	}
	total := 0
	for _, id := range ids {
		g := s.gens(id)
		s.ioMu.Lock()
		n, serr := g.Scrub()
		s.ioMu.Unlock()
		total += n
		if serr != nil {
			s.noteStorageError(serr)
		}
	}
	s.scrubPasses.Add(1)
	if total > 0 {
		s.scrubRepairs.Add(int64(total))
		s.cfg.Logf("daemon: scrub pass repaired %d checkpoint generation(s)", total)
	}
	return total
}

// StorageStats is the /storage payload: the observability surface for the
// storage-robustness machinery.
type StorageStats struct {
	Degraded           bool  `json:"degraded"`
	SkippedCheckpoints int64 `json:"skipped_checkpoints"`
	Quarantined        int64 `json:"quarantined"`
	ScrubPasses        int64 `json:"scrub_passes"`
	ScrubRepairs       int64 `json:"scrub_repairs"`
	CheckpointKeep     int   `json:"checkpoint_keep"`
}

// StorageStats returns a snapshot of the storage counters.
func (s *Server) StorageStats() StorageStats {
	return StorageStats{
		Degraded:           s.degraded.Load(),
		SkippedCheckpoints: s.skippedWrites.Load(),
		Quarantined:        s.quarantinedTotal(),
		ScrubPasses:        s.scrubPasses.Load(),
		ScrubRepairs:       s.scrubRepairs.Load(),
		CheckpointKeep:     s.cfg.CheckpointKeep,
	}
}
