package daemon

import "tecfan/internal/numguard"

// NumericDivergence ties a confirmed numeric divergence to the job whose run
// produced it — the operator-facing record behind the /readyz reason.
type NumericDivergence struct {
	Job string             `json:"job"`
	V   numguard.Violation `json:"violation"`
}

// noteDiverged records a confirmed divergence for id. The first diagnosis
// per job sticks (later violations are usually consequences of the first),
// and the record survives until daemon restart: a control plane that watched
// a solve diverge should stay visibly unhealthy until a human looks.
func (s *Server) noteDiverged(id string, v numguard.Violation) {
	s.numMu.Lock()
	defer s.numMu.Unlock()
	if s.diverged == nil {
		s.diverged = map[string]numguard.Violation{}
	}
	if _, ok := s.diverged[id]; ok {
		return
	}
	s.diverged[id] = v
	s.divergedOrder = append(s.divergedOrder, id)
	s.cfg.Logf("daemon: job %s: numeric divergence confirmed: %s", id, v.String())
}

// NumericDivergences lists the sticky divergence records in the order they
// were confirmed.
func (s *Server) NumericDivergences() []NumericDivergence {
	s.numMu.Lock()
	defer s.numMu.Unlock()
	out := make([]NumericDivergence, 0, len(s.divergedOrder))
	for _, id := range s.divergedOrder {
		out = append(out, NumericDivergence{Job: id, V: s.diverged[id]})
	}
	return out
}
