package daemon

import (
	"bytes"
	"context"
	"encoding/gob"
	"encoding/json"
	"errors"
	"fmt"

	"tecfan/internal/checkpoint"
	"tecfan/internal/exp"
	"tecfan/internal/fault"
	"tecfan/internal/numguard"
	"tecfan/internal/perf"
	"tecfan/internal/pool"
	"tecfan/internal/sim"
	"tecfan/internal/workload"
)

// persistedJob is the gob payload inside a job's checkpoint envelope. It
// carries everything the next incarnation needs: the spec (so the job is
// re-runnable even with zero progress), the derived threshold (so a restarted
// trace job does not re-derive it against a drifted base scenario — it cannot
// drift, but pinning it makes that a non-question), and the progress itself —
// a sim snapshot for trace jobs, finished rows for chaos sweeps.
type persistedJob struct {
	Spec      JobSpec
	Threshold float64
	Snap      *sim.Snapshot
	Rows      []exp.ChaosRow
	// Table1/Fig4 row-level progress.
	T1Rows  []exp.Table1Row
	F4Cases []exp.Fig4Case
	// Pool is the lease/fencing/result state when the job runs on the worker
	// pool: persisted before every grant and completion ack, so a restarted
	// coordinator can never regrant a token a worker already holds.
	Pool *pool.PersistedState
}

// persistJob checkpoints a job's state through its generational store: the
// previous snapshot rotates to a fallback slot, the new one lands atomically
// on the head. While the daemon is in ENOSPC degraded mode the write is
// skipped (and counted) instead of attempted: in-flight jobs keep computing,
// they just stop widening the checkpoint — at worst a restart recomputes
// from the last pre-degradation snapshot, which is exactly the crash
// guarantee the daemon already makes.
func (s *Server) persistJob(rec *persistedJob) error {
	if s.degraded.Load() {
		s.skippedWrites.Add(1)
		s.cfg.Logf("daemon: job %s: checkpoint skipped (storage degraded)", rec.Spec.ID)
		return nil
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(rec); err != nil {
		return fmt.Errorf("daemon: encoding job %s: %w", rec.Spec.ID, err)
	}
	g := s.gens(rec.Spec.ID)
	s.ioMu.Lock()
	err := g.Write(buf.Bytes())
	s.ioMu.Unlock()
	if err != nil {
		s.noteStorageError(err)
	}
	return err
}

// loadJob reads the newest verifiable checkpoint generation, falling back
// (and quarantining) past corrupt or truncated ones.
func (s *Server) loadJob(id string) (*persistedJob, error) {
	g := s.gens(id)
	s.ioMu.Lock()
	payload, err := g.Read()
	s.ioMu.Unlock()
	if err != nil {
		return nil, err
	}
	var rec persistedJob
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&rec); err != nil {
		return nil, fmt.Errorf("daemon: decoding job %s: %w", id, err)
	}
	return &rec, nil
}

// testRunHook, when non-nil, replaces job execution entirely — the seam the
// supervisor tests use to inject panics and stalls without faking a
// simulation that misbehaves on cue.
var testRunHook func(ctx context.Context, id string, spec JobSpec) error

// runAttempt executes one supervised attempt of a job, resuming from the
// persisted checkpoint when one carries progress. Panics are recovered into
// errors so the supervisor treats them like any other restartable failure.
func (s *Server) runAttempt(ctx context.Context, id string, spec JobSpec) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("daemon: job %s panicked: %v", id, r)
		}
	}()
	if testRunHook != nil {
		return testRunHook(ctx, id, spec)
	}
	rec, lerr := s.loadJob(id)
	if lerr != nil {
		// First run after a crash that beat the spec persist, or a corrupt
		// checkpoint: start from the spec we hold in memory.
		rec = &persistedJob{Spec: spec}
	}
	if s.pool != nil {
		return s.runPooled(ctx, id, spec, rec)
	}
	switch spec.Kind {
	case KindTrace:
		return s.runTrace(ctx, id, spec, rec)
	case KindChaos:
		return s.runChaos(ctx, id, spec, rec)
	case KindTable1:
		return s.runTable1(ctx, id, spec, rec)
	case KindFig4:
		return s.runFig4(ctx, id, spec, rec)
	default:
		return fmt.Errorf("daemon: job %s: unknown kind %q", id, spec.Kind)
	}
}

// traceResult is the durable result of a trace job. The full per-period
// trace is included deliberately: the CI crash drill byte-compares a resumed
// run's result file against an uninterrupted run's, and the trace is where
// non-determinism would hide.
type traceResult struct {
	Spec       JobSpec          `json:"spec"`
	Threshold  float64          `json:"threshold"`
	Completed  bool             `json:"completed"`
	Metrics    perf.Metrics     `json:"metrics"`
	FinalTemps []float64        `json:"final_temps"`
	Trace      []sim.TracePoint `json:"trace"`
	// Numeric is the run's NumericHealth block: refinement/recovery counters
	// from the invariant auditor plus the structured diagnosis when a
	// divergence was confirmed.
	Numeric *numguard.Health `json:"numeric_health,omitempty"`
}

func (s *Server) runTrace(ctx context.Context, id string, spec JobSpec, rec *persistedJob) error {
	env := exp.NewEnv()
	if spec.Scale > 0 {
		env.Scale = spec.Scale
	}
	if spec.Scenario != "" {
		sc, err := fault.ByName(spec.Scenario)
		if err != nil {
			return err
		}
		env.Faults = &sc
		env.FaultSeed = spec.Seed
	}
	env.NumFaults = s.cfg.NumFaults
	b, err := workload.ByName(spec.Bench, spec.Threads, env.Leak)
	if err != nil {
		return err
	}
	sb := env.Scaled(b)

	threshold := rec.Threshold
	if threshold == 0 {
		threshold = spec.Threshold
	}
	if threshold == 0 {
		// Derive from the base scenario, then pin it in the checkpoint so
		// every future attempt runs against the identical threshold.
		base, err := env.BaseScenarioContext(ctx, sb)
		if err != nil {
			return fmt.Errorf("daemon: job %s base scenario: %w", id, err)
		}
		threshold = base.Metrics.PeakTemp
	}
	if err := s.persistJob(&persistedJob{Spec: spec, Threshold: threshold, Snap: rec.Snap}); err != nil {
		return err
	}

	cfg := env.SimConfig(sb, threshold, spec.FanLevel)
	cfg.RecordTrace = true
	cfg.CheckpointEvery = s.cfg.CheckpointEvery
	cfg.OnCheckpoint = func(snap *sim.Snapshot) error {
		s.heartbeat(id)
		if err := s.persistJob(&persistedJob{Spec: spec, Threshold: threshold, Snap: snap}); err != nil {
			// A checkpoint is an optimization, not correctness: failing to
			// widen it (torn write, EIO, ENOSPC — the latter just flipped
			// the daemon degraded) costs recompute-after-crash, never a
			// wrong result. Log and keep running, exactly as the sweep
			// jobs treat row-persist failures.
			s.cfg.Logf("daemon: job %s: checkpoint not persisted: %v", id, err)
		}
		return nil
	}
	ctl := env.Controllers()[spec.Policy]
	if ctl == nil {
		return fmt.Errorf("daemon: job %s: unknown policy %q (valid: %v)", id, spec.Policy, exp.AllPolicies())
	}
	r, err := sim.NewRunner(cfg, ctl)
	if err != nil {
		return err
	}
	var res *sim.Result
	if rec.Snap != nil {
		res, err = r.Resume(ctx, rec.Snap)
	} else {
		res, err = r.RunContext(ctx)
	}
	if err != nil {
		// A refused divergence is deterministic — restarting from the
		// checkpoint replays the identical fault — so record it for /readyz
		// before the supervisor burns its remaining attempts.
		var de *sim.DivergenceError
		if errors.As(err, &de) {
			s.noteDiverged(id, de.V)
		}
		return err
	}
	if res.Numeric != nil && res.Numeric.FailSafe && res.Numeric.Diagnosis != nil {
		s.noteDiverged(id, *res.Numeric.Diagnosis)
	}
	return s.writeResult(id, traceResult{
		Spec: spec, Threshold: threshold, Completed: res.Completed,
		Metrics: res.Metrics, FinalTemps: res.FinalTemps, Trace: res.Trace,
		Numeric: res.Numeric,
	})
}

func (s *Server) runChaos(ctx context.Context, id string, spec JobSpec, rec *persistedJob) error {
	env := exp.NewEnv()
	if spec.Scale > 0 {
		env.Scale = spec.Scale
	}
	rows := append([]exp.ChaosRow(nil), rec.Rows...)
	opt := exp.ChaosOptions{
		Bench: spec.Bench, Threads: spec.Threads,
		Policies: spec.Policies, Scenarios: spec.Scenarios, Seed: spec.Seed,
		Done: rec.Rows,
		OnRow: func(row exp.ChaosRow) {
			s.heartbeat(id)
			rows = appendRow(rows, row)
			if err := s.persistJob(&persistedJob{Spec: spec, Rows: rows}); err != nil {
				s.cfg.Logf("daemon: job %s: persisting row %s/%s: %v", id, row.Scenario, row.Policy, err)
			}
		},
	}
	res, err := env.ChaosContext(ctx, opt)
	if err != nil {
		// Partial rows are already persisted row-by-row; surface the error
		// for the supervisor to classify (cancel vs restartable).
		return err
	}
	return s.writeResult(id, res)
}

// table1Result / fig4Result are the durable results of the whole-table jobs.
type table1Result struct {
	Spec JobSpec         `json:"spec"`
	Rows []exp.Table1Row `json:"rows"`
}

type fig4Result struct {
	Spec  JobSpec        `json:"spec"`
	Cases []exp.Fig4Case `json:"cases"`
}

func (s *Server) runTable1(ctx context.Context, id string, spec JobSpec, rec *persistedJob) error {
	env := exp.NewEnv()
	if spec.Scale > 0 {
		env.Scale = spec.Scale
	}
	rows := append([]exp.Table1Row(nil), rec.T1Rows...)
	all, err := env.Table1Opt(ctx, exp.Table1Options{
		Done: rec.T1Rows,
		OnRow: func(row exp.Table1Row) {
			s.heartbeat(id)
			rows = appendT1Row(rows, row)
			if err := s.persistJob(&persistedJob{Spec: spec, T1Rows: rows}); err != nil {
				s.cfg.Logf("daemon: job %s: persisting row %s-%d: %v", id, row.Workload, row.Threads, err)
			}
		},
	})
	if err != nil {
		return err
	}
	return s.writeResult(id, table1Result{Spec: spec, Rows: all})
}

func (s *Server) runFig4(ctx context.Context, id string, spec JobSpec, rec *persistedJob) error {
	env := exp.NewEnv()
	if spec.Scale > 0 {
		env.Scale = spec.Scale
	}
	cases := append([]exp.Fig4Case(nil), rec.F4Cases...)
	all, err := env.Fig4Opt(ctx, exp.Fig4Options{
		Done: rec.F4Cases,
		OnRow: func(c exp.Fig4Case) {
			s.heartbeat(id)
			cases = appendF4Case(cases, c)
			if err := s.persistJob(&persistedJob{Spec: spec, F4Cases: cases}); err != nil {
				s.cfg.Logf("daemon: job %s: persisting case %s-%d: %v", id, c.Bench, c.Threads, err)
			}
		},
	})
	if err != nil {
		return err
	}
	return s.writeResult(id, fig4Result{Spec: spec, Cases: all})
}

// appendRow adds a row, replacing any earlier row for the same cell — OnRow
// replays Done rows, and a row must not appear twice in the checkpoint.
func appendRow(rows []exp.ChaosRow, row exp.ChaosRow) []exp.ChaosRow {
	for i := range rows {
		if rows[i].Scenario == row.Scenario && rows[i].Policy == row.Policy {
			rows[i] = row
			return rows
		}
	}
	return append(rows, row)
}

// appendT1Row / appendF4Case are appendRow for the whole-table sweeps, keyed
// the same way their Done replay matches.
func appendT1Row(rows []exp.Table1Row, row exp.Table1Row) []exp.Table1Row {
	for i := range rows {
		if rows[i].Workload == row.Workload && rows[i].Threads == row.Threads {
			rows[i] = row
			return rows
		}
	}
	return append(rows, row)
}

func appendF4Case(cases []exp.Fig4Case, c exp.Fig4Case) []exp.Fig4Case {
	for i := range cases {
		if cases[i].Bench == c.Bench && cases[i].Threads == c.Threads {
			cases[i] = c
			return cases
		}
	}
	return append(cases, c)
}

// writeResult durably persists the job's result through the checkpoint
// envelope: atomic rename so a crash can never tear it, and a SHA-256
// checksum so a result rotted on disk is refused instead of served as
// truth after restart. (This used to hand-roll the temp+fsync+rename
// dance; the atomicwrite analyzer now pins all state writes to
// internal/checkpoint.)
func (s *Server) writeResult(id string, v any) error {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return fmt.Errorf("daemon: encoding result %s: %w", id, err)
	}
	data = append(data, '\n')
	if err := checkpoint.WriteFileFS(s.cfg.FS, s.resultPath(id), data); err != nil {
		s.noteStorageError(err)
		return fmt.Errorf("daemon: result %s: %w", id, err)
	}
	return nil
}
