package daemon

import (
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"syscall"
	"testing"
	"time"

	"tecfan/internal/checkpoint"
	"tecfan/internal/diskfault"
)

// enospcToggle wraps a real FS and, while tripped, refuses every file
// creation with ENOSPC — a full disk an operator later clears. It also
// counts creation attempts so tests can prove degraded mode stops trying.
type enospcToggle struct {
	diskfault.FS
	full     atomic.Bool
	attempts atomic.Int64
}

func (f *enospcToggle) enospc(op, name string) error {
	return &os.PathError{Op: op, Path: name, Err: syscall.ENOSPC}
}

func (f *enospcToggle) CreateTemp(dir, pattern string) (diskfault.File, error) {
	f.attempts.Add(1)
	if f.full.Load() {
		return nil, f.enospc("createtemp", filepath.Join(dir, pattern))
	}
	return f.FS.CreateTemp(dir, pattern)
}

func (f *enospcToggle) Create(name string) (diskfault.File, error) {
	f.attempts.Add(1)
	if f.full.Load() {
		return nil, f.enospc("create", name)
	}
	return f.FS.Create(name)
}

func waitCond(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestENOSPCDegradedMode walks the full degraded-mode arc: a state write
// hits ENOSPC, the daemon sheds submissions with 503 and flips /readyz,
// stops attempting state writes, keeps serving reads — then auto-recovers
// the moment the probe lands again.
func TestENOSPCDegradedMode(t *testing.T) {
	fs := &enospcToggle{FS: diskfault.OS}
	cfg := fastConfig(t)
	cfg.FS = fs
	cfg.ScrubInterval = -1 // deterministic: no background writes
	cfg.StorageProbeInterval = 10 * time.Millisecond
	s := newTestServer(t, cfg)
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	// Complete a tiny job while healthy so a durable result exists to read
	// back during the outage.
	id, err := s.Submit(JobSpec{ID: "pre", Kind: KindTrace, Bench: "cholesky",
		Threads: 16, Policy: "TECfan", Scale: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, s, id, StateDone)

	// The disk fills; the next state write trips degraded mode.
	fs.full.Store(true)
	if err := s.persistJob(&persistedJob{Spec: JobSpec{ID: "x"}}); !diskfault.IsNoSpace(err) {
		t.Fatalf("persist on full disk = %v, want ENOSPC", err)
	}
	if !s.StorageDegraded() {
		t.Fatal("daemon not degraded after ENOSPC")
	}

	// Submissions are shed with 503 + Retry-After.
	resp, err := http.Post(srv.URL+"/jobs", "application/json",
		strings.NewReader(`{"id":"shed","kind":"trace","bench":"cholesky","threads":16}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submit while degraded = %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("shed submission missing Retry-After")
	}

	// /readyz flips with the storage reason.
	resp, err = http.Get(srv.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	body := make([]byte, 1024)
	n, _ := resp.Body.Read(body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("readyz while degraded = %d, want 503", resp.StatusCode)
	}
	if !strings.Contains(string(body[:n]), "storage degraded") {
		t.Fatalf("readyz reasons missing storage: %s", body[:n])
	}

	// While degraded no state write is attempted: persistJob skips without
	// touching the filesystem and counts the skip.
	before := fs.attempts.Load()
	if err := s.persistJob(&persistedJob{Spec: JobSpec{ID: "y"}}); err != nil {
		t.Fatalf("degraded persist should skip, got %v", err)
	}
	// The probe goroutine also creates files; tolerate those by checking
	// only that persistJob itself added no attempt synchronously... it
	// cannot be distinguished by count alone, so assert via the skip
	// counter AND that the checkpoint file never appeared.
	if got := s.StorageStats().SkippedCheckpoints; got == 0 {
		t.Fatal("skipped-checkpoint counter not incremented")
	}
	if _, err := os.Stat(s.ckptPath("y")); !os.IsNotExist(err) {
		t.Fatalf("state file written while degraded: %v", err)
	}
	_ = before

	// Reads still work: status list and the pre-outage result both serve.
	resp, err = http.Get(srv.URL + "/jobs/pre/result")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("result read while degraded = %d, want 200", resp.StatusCode)
	}

	// Space returns; the probe notices and the daemon recovers on its own.
	fs.full.Store(false)
	waitCond(t, "degraded mode to clear", func() bool { return !s.StorageDegraded() })
	resp, err = http.Post(srv.URL+"/jobs", "application/json",
		strings.NewReader(`{"id":"after","kind":"trace","bench":"cholesky","threads":16,"scale":0.01}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit after recovery = %d, want 202", resp.StatusCode)
	}
	waitState(t, s, "after", StateDone)
}

// TestENOSPCDegradedEntryViaFaultFS proves the detection path against the
// real fault filesystem: a seeded schedule that refuses checkpoint and
// probe creations with ENOSPC flips the daemon degraded and keeps it there,
// because the probe keeps failing too.
func TestENOSPCDegradedEntryViaFaultFS(t *testing.T) {
	ffs, err := diskfault.New(diskfault.Schedule{Rules: []diskfault.Rule{
		{Action: diskfault.ActENOSPC, Path: "*.ckpt.tmp*"},
		{Action: diskfault.ActENOSPC, Path: ".readyz-probe-*"},
	}}, &diskfault.Options{Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	cfg := fastConfig(t)
	cfg.FS = ffs
	cfg.ScrubInterval = -1
	cfg.StorageProbeInterval = 5 * time.Millisecond
	s := newTestServer(t, cfg)

	if err := s.persistJob(&persistedJob{Spec: JobSpec{ID: "j"}}); !diskfault.IsNoSpace(err) {
		t.Fatalf("persist through fault FS = %v, want ENOSPC", err)
	}
	if !s.StorageDegraded() {
		t.Fatal("fault-FS ENOSPC did not trip degraded mode")
	}
	if _, err := s.Submit(JobSpec{ID: "shed", Kind: KindTrace, Bench: "cholesky", Threads: 16}); err != ErrStorageDegraded {
		t.Fatalf("submit while degraded = %v, want ErrStorageDegraded", err)
	}
	// Give the probe a few cycles: it must NOT clear degraded while the
	// schedule still refuses probe files.
	time.Sleep(30 * time.Millisecond)
	if !s.StorageDegraded() {
		t.Fatal("degraded cleared while probes still fail")
	}
}

// TestScrubRepairsThroughDaemon corrupts a rotated generation on disk and
// lets the daemon's scrub pass find and repair it from the good head.
func TestScrubRepairsThroughDaemon(t *testing.T) {
	cfg := fastConfig(t)
	cfg.ScrubInterval = -1 // drive scrubs by hand
	s := newTestServer(t, cfg)
	spec := JobSpec{ID: "scrubme", Kind: KindTrace, Bench: "cholesky", Threads: 16}
	if err := s.persistJob(&persistedJob{Spec: spec}); err != nil {
		t.Fatal(err)
	}
	if err := s.persistJob(&persistedJob{Spec: spec, Threshold: 1}); err != nil {
		t.Fatal(err)
	}
	g1 := s.ckptPath("scrubme") + ".g1"
	if err := os.WriteFile(g1, []byte("bit rot"), 0o644); err != nil {
		t.Fatal(err)
	}
	if n := s.ScrubNow(); n != 1 {
		t.Fatalf("ScrubNow repaired %d generations, want 1", n)
	}
	if _, err := checkpoint.ReadFile(g1); err != nil {
		t.Fatalf("repaired generation does not verify: %v", err)
	}
	st := s.StorageStats()
	if st.ScrubRepairs != 1 || st.Quarantined == 0 {
		t.Fatalf("stats = %+v, want 1 repair and a quarantine", st)
	}
}

// TestResumeFromFallbackGeneration corrupts the checkpoint head between two
// daemon incarnations; the restart must resume from the .g1 fallback rather
// than forgetting the job.
func TestResumeFromFallbackGeneration(t *testing.T) {
	cfg := fastConfig(t)
	cfg.ScrubInterval = -1
	s := newTestServer(t, cfg)
	spec := JobSpec{ID: "fall", Kind: KindTrace, Bench: "cholesky", Threads: 16,
		Policy: "TECfan", Scale: 0.01}
	if err := s.persistJob(&persistedJob{Spec: spec}); err != nil {
		t.Fatal(err)
	}
	if err := s.persistJob(&persistedJob{Spec: spec, Threshold: 42}); err != nil {
		t.Fatal(err)
	}
	head := s.ckptPath("fall")
	raw, _ := os.ReadFile(head)
	raw[len(raw)-1] ^= 0x01
	if err := os.WriteFile(head, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	// Second incarnation over the same state dir: recover() must find the
	// job via the surviving .g1 fallback (a failed recovery would ignore
	// the id entirely), quarantine the rotten head, and run it to done.
	cfg2 := cfg
	s2 := newTestServer(t, cfg2)
	if _, ok := s2.Job("fall"); !ok {
		t.Fatal("job not re-queued from fallback generation")
	}
	if _, err := os.Stat(head + ".bad-1"); err != nil {
		t.Fatalf("corrupt head not quarantined: %v", err)
	}
	waitState(t, s2, "fall", StateDone)
}
