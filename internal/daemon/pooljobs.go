package daemon

import (
	"context"
	"fmt"

	"tecfan/internal/exp"
	"tecfan/internal/pool"
)

// runPooled executes a job through the worker pool: plan the shards, hand
// them to the coordinator for leasing, wait for every shard to complete
// (workers drive all progress through the /pool endpoints), then merge the
// shard payloads into the same result shape the in-process path writes —
// the pool_drill byte-compares the two.
func (s *Server) runPooled(ctx context.Context, id string, spec JobSpec, rec *persistedJob) error {
	shards, err := pool.Plan(pool.SweepSpec{
		Kind:            string(spec.Kind),
		Bench:           spec.Bench,
		Threads:         spec.Threads,
		Scale:           spec.Scale,
		Seed:            spec.Seed,
		Policy:          spec.Policy,
		FanLevel:        spec.FanLevel,
		Threshold:       spec.Threshold,
		Scenario:        spec.Scenario,
		Policies:        spec.Policies,
		Scenarios:       spec.Scenarios,
		CheckpointEvery: s.cfg.CheckpointEvery,
		Chunk:           s.cfg.PoolChunk,
	})
	if err != nil {
		return err
	}
	done, err := s.pool.AddJob(id, shards, rec.Pool, pool.JobHooks{
		Persist: func(st *pool.PersistedState) error {
			return s.persistJob(&persistedJob{Spec: spec, Pool: st})
		},
		OnEvent: func(event, shardID string) {
			// Worker progress is job liveness: without this, a long shard on
			// a healthy worker would trip the coordinator-side watchdog.
			s.heartbeat(id)
		},
	})
	if err != nil {
		return err
	}
	defer s.pool.DropJob(id)
	select {
	case <-done:
	case <-ctx.Done():
		return ctx.Err()
	}
	payloads, ok := s.pool.Results(id)
	if !ok {
		// done closed without results: the job was dropped underneath us.
		return fmt.Errorf("daemon: job %s: pool job dropped before completion", id)
	}
	return s.mergePooled(id, spec, payloads)
}

// mergePooled concatenates shard result payloads (already in plan order,
// which the planner guarantees equals single-process emission order) into
// the job's result file.
func (s *Server) mergePooled(id string, spec JobSpec, payloads [][]byte) error {
	switch spec.Kind {
	case KindTrace:
		var sr pool.TraceShardResult
		if err := pool.DecodePayload(payloads[0], &sr); err != nil {
			return fmt.Errorf("daemon: job %s: %w", id, err)
		}
		if sr.Numeric != nil && sr.Numeric.FailSafe && sr.Numeric.Diagnosis != nil {
			// The worker rode out a confirmed divergence in the controller's
			// fail-safe; the coordinator's /readyz must latch it exactly as it
			// would for an in-process run.
			s.noteDiverged(id, *sr.Numeric.Diagnosis)
		}
		return s.writeResult(id, traceResult{
			Spec: spec, Threshold: sr.Threshold, Completed: sr.Completed,
			Metrics: sr.Metrics, FinalTemps: sr.FinalTemps, Trace: sr.Trace,
			Numeric: sr.Numeric,
		})
	case KindChaos:
		out := &exp.ChaosResult{Bench: spec.Bench, Threads: spec.Threads, Seed: spec.Seed}
		for i, p := range payloads {
			var sr pool.ChaosShardResult
			if err := pool.DecodePayload(p, &sr); err != nil {
				return fmt.Errorf("daemon: job %s shard %d: %w", id, i, err)
			}
			// Every shard re-derives the same deterministic threshold; take
			// the first.
			if i == 0 {
				out.Threshold = sr.Threshold
			}
			out.Rows = append(out.Rows, sr.Rows...)
		}
		return s.writeResult(id, out)
	case KindTable1:
		res := table1Result{Spec: spec}
		for i, p := range payloads {
			var sr pool.Table1ShardResult
			if err := pool.DecodePayload(p, &sr); err != nil {
				return fmt.Errorf("daemon: job %s shard %d: %w", id, i, err)
			}
			res.Rows = append(res.Rows, sr.Rows...)
		}
		return s.writeResult(id, res)
	case KindFig4:
		res := fig4Result{Spec: spec}
		for i, p := range payloads {
			var sr pool.Fig4ShardResult
			if err := pool.DecodePayload(p, &sr); err != nil {
				return fmt.Errorf("daemon: job %s shard %d: %w", id, i, err)
			}
			res.Cases = append(res.Cases, sr.Cases...)
		}
		return s.writeResult(id, res)
	default:
		return fmt.Errorf("daemon: job %s: unknown kind %q", id, spec.Kind)
	}
}
