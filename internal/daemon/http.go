package daemon

import (
	"encoding/json"
	"errors"
	"net/http"
	"os"
)

// maxBodyBytes bounds a submission body; a JobSpec is a few hundred bytes.
const maxBodyBytes = 1 << 20

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, map[string]string{"error": msg})
}

// handleHealthz is pure liveness: the process is up and serving.
func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// handleReadyz is readiness: a draining daemon answers 503 so load balancers
// stop sending it work while in-flight jobs checkpoint out.
func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	if s.Draining() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ready"})
}

// handleSubmit admits a job. A full queue sheds the request with 429 and a
// Retry-After hint rather than buffering unboundedly.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec JobSpec
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, "bad job spec: "+err.Error())
		return
	}
	id, err := s.Submit(spec)
	switch {
	case err == nil:
		writeJSON(w, http.StatusAccepted, map[string]string{"id": id})
	case errors.Is(err, ErrQueueFull):
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, err.Error())
	case errors.Is(err, ErrDraining):
		writeError(w, http.StatusServiceUnavailable, err.Error())
	case errors.Is(err, ErrDuplicateID):
		writeError(w, http.StatusConflict, err.Error())
	default:
		writeError(w, http.StatusBadRequest, err.Error())
	}
}

func (s *Server) handleList(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.Jobs())
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	v, ok := s.Job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "no such job")
		return
	}
	writeJSON(w, http.StatusOK, v)
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	if err := s.Cancel(r.PathValue("id")); err != nil {
		writeError(w, http.StatusNotFound, err.Error())
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// handleResult serves the durable result file of a finished job; an
// unfinished job answers 409 with its current state so clients can poll.
func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	v, ok := s.Job(id)
	if !ok {
		writeError(w, http.StatusNotFound, "no such job")
		return
	}
	if v.State != StateDone {
		writeJSON(w, http.StatusConflict, v)
		return
	}
	data, err := os.ReadFile(s.resultPath(id))
	if err != nil {
		writeError(w, http.StatusInternalServerError, "result file unreadable: "+err.Error())
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_, _ = w.Write(data)
}
