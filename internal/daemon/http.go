package daemon

import (
	"encoding/json"
	"errors"
	"net/http"
	"strconv"
	"strings"

	"tecfan/internal/checkpoint"
)

// maxBodyBytes bounds a submission body; a JobSpec is a few hundred bytes.
const maxBodyBytes = 1 << 20

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, map[string]string{"error": msg})
}

// handleHealthz is pure liveness: the process is up and serving. It backs
// both /healthz (historical) and /livez (the conventional pair to /readyz).
func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// readyReasons collects every reason the daemon cannot usefully accept work
// right now. With probeDisk set it additionally write-probes the state dir —
// an expensive check (512 synced bytes through the FS seam, which also
// advances the diskfault op counter) that only the dedicated /readyz endpoint
// pays for; the cheap variant backs the per-response X-Tecfand-Ready header.
func (s *Server) readyReasons(probeDisk bool) []string {
	var reasons []string
	if s.Draining() {
		reasons = append(reasons, "draining")
	}
	if len(s.queue) >= cap(s.queue) {
		reasons = append(reasons, "queue full")
	}
	if s.StorageDegraded() {
		reasons = append(reasons, "storage degraded: state dir out of space")
	} else if probeDisk {
		if err := s.stateDirWritable(); err != nil {
			reasons = append(reasons, "state dir unwritable: "+err.Error())
		}
	}
	if s.pool != nil && s.pool.LiveWorkers() == 0 {
		// Pool mode executes nothing in-process: with no worker polling,
		// accepted jobs would only sit in the lease table.
		reasons = append(reasons, "no live workers")
	}
	for _, d := range s.NumericDivergences() {
		// Sticky by design, like the FT controller's fail-safe: a daemon that
		// watched a solve diverge stays visibly unhealthy until restarted.
		reasons = append(reasons, "numeric fail-safe: job "+d.Job+": "+string(d.V.Kind))
	}
	return reasons
}

// ReadyHeader carries the daemon's cheap readiness reasons on every response:
// "ok" when ready, otherwise the "; "-joined reason list. External /readyz
// polling can only sample readiness *between* requests; this header pins the
// daemon's self-reported state to the exact response a client observed, which
// is what makes the crucible's readiness-consistency oracle sound (no 2xx
// submission may ever ride a response stamped draining or storage degraded).
const ReadyHeader = "X-Tecfand-Ready"

// withReadyHeader stamps ReadyHeader before the handler runs, using only the
// cheap readiness checks — never the state-dir write probe, which would turn
// every request into disk I/O and perturb scheduled disk-fault op counters.
func (s *Server) withReadyHeader(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if reasons := s.readyReasons(false); len(reasons) > 0 {
			w.Header().Set(ReadyHeader, strings.Join(reasons, "; "))
		} else {
			w.Header().Set(ReadyHeader, "ok")
		}
		next.ServeHTTP(w, r)
	})
}

// handleReadyz is readiness: 503 with the reasons while the daemon cannot
// usefully accept work — draining, admission queue full, or the checkpoint
// state dir unwritable (a daemon that cannot checkpoint must not take jobs
// it would lose). Load balancers and drill scripts gate on it.
func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	reasons := s.readyReasons(true)
	if len(reasons) > 0 {
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{
			"status": "unready", "reasons": reasons,
		})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"status": "ready", "queue_depth": len(s.queue), "queue_cap": cap(s.queue),
	})
}

// stateDirWritable probes that a checkpoint could land right now: it writes
// and syncs a few hundred bytes through the seam (a zero-byte create can
// succeed on a full disk — the bytes are what ENOSPC refuses). The probe
// file is scratch by design — it must NOT be a checkpoint: we are testing
// the directory, and an envelope write that failed halfway would leave a
// plausible-looking .ckpt for recover() to trip on.
func (s *Server) stateDirWritable() error {
	f, err := s.cfg.FS.CreateTemp(s.cfg.StateDir, ".readyz-probe-*")
	if err != nil {
		return err
	}
	name := f.Name()
	if _, err := f.Write(make([]byte, 512)); err != nil {
		_ = f.Close()
		_ = s.cfg.FS.Remove(name)
		return err
	}
	if err := f.Sync(); err != nil {
		_ = f.Close()
		_ = s.cfg.FS.Remove(name)
		return err
	}
	_ = f.Close()
	return s.cfg.FS.Remove(name)
}

// handleSubmit admits a job. The token bucket and the bounded queue both
// shed with 429 and a Retry-After hint rather than buffering unboundedly;
// an Idempotency-Key header makes the submission safely retryable — a
// replayed token returns the original job with 200 instead of enqueuing a
// duplicate.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	rid := requestID(r)
	if ok, wait := s.admit.take(); !ok {
		w.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds(wait)))
		writeError(w, http.StatusTooManyRequests, "daemon: submission rate limit")
		return
	}
	var spec JobSpec
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, "bad job spec: "+err.Error())
		return
	}
	token := r.Header.Get("Idempotency-Key")
	id, dup, err := s.SubmitIdempotent(spec, token, rid)
	switch {
	case err == nil && dup:
		writeJSON(w, http.StatusOK, map[string]any{"id": id, "deduplicated": true})
	case err == nil:
		s.cfg.Logf("daemon: request %s: job %s submitted (idempotency=%q)", rid, id, token)
		writeJSON(w, http.StatusAccepted, map[string]string{"id": id})
	case errors.Is(err, ErrQueueFull):
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, err.Error())
	case errors.Is(err, ErrStorageDegraded):
		// Retryable by design: degraded mode ends the moment space returns.
		w.Header().Set("Retry-After", "5")
		writeError(w, http.StatusServiceUnavailable, err.Error())
	case errors.Is(err, ErrDraining):
		writeError(w, http.StatusServiceUnavailable, err.Error())
	case errors.Is(err, ErrDuplicateID):
		writeError(w, http.StatusConflict, err.Error())
	default:
		writeError(w, http.StatusBadRequest, err.Error())
	}
}

func (s *Server) handleList(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.Jobs())
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	v, ok := s.Job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "no such job")
		return
	}
	writeJSON(w, http.StatusOK, v)
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	if err := s.Cancel(r.PathValue("id")); err != nil {
		writeError(w, http.StatusNotFound, err.Error())
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// handleResult serves the durable result file of a finished job; an
// unfinished job answers 409 with its current state so clients can poll.
func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	v, ok := s.Job(id)
	if !ok {
		writeError(w, http.StatusNotFound, "no such job")
		return
	}
	if v.State != StateDone {
		writeJSON(w, http.StatusConflict, v)
		return
	}
	// The envelope checksum is verified on read: a result rotted on disk
	// surfaces as a 500 here instead of being served as truth.
	data, err := checkpoint.ReadFileFS(s.cfg.FS, s.resultPath(id))
	if err != nil {
		writeError(w, http.StatusInternalServerError, "result file unreadable: "+err.Error())
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_, _ = w.Write(data)
}

// handleStorage serves the storage-robustness counters: degraded flag,
// skipped checkpoints, quarantines, scrub activity. The diskfault drill
// polls it to prove the scrubber repaired an injected corruption.
func (s *Server) handleStorage(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.StorageStats())
}
