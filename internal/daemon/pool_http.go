package daemon

import (
	"errors"
	"io"
	"net/http"

	"tecfan/internal/pool"
)

// Pool protocol endpoints (mounted only when PoolEnabled). Status mapping:
// a stale fencing token answers 410 Gone and a dropped job 404 — both 4xx,
// so the hardened client surfaces them to the worker after one attempt
// instead of retrying a verdict that will never change.

// readPoolBody slurps a pool request body under the pool's own blob bound
// (checkpoint uploads legitimately exceed the submit endpoint's 1 MiB cap).
func readPoolBody(w http.ResponseWriter, r *http.Request) ([]byte, bool) {
	data, err := io.ReadAll(http.MaxBytesReader(w, r.Body, pool.MaxBlobBytes+1))
	if err != nil {
		writeError(w, http.StatusBadRequest, "reading body: "+err.Error())
		return nil, false
	}
	return data, true
}

// writePoolError maps the coordinator's sentinels onto statuses.
func writePoolError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, pool.ErrFenced):
		writeError(w, http.StatusGone, err.Error())
	case errors.Is(err, pool.ErrShardGone):
		writeError(w, http.StatusNotFound, err.Error())
	case errors.Is(err, pool.ErrWireSyntax), errors.Is(err, pool.ErrWireField),
		errors.Is(err, pool.ErrWireTooLarge):
		writeError(w, http.StatusBadRequest, err.Error())
	default:
		writeError(w, http.StatusInternalServerError, err.Error())
	}
}

func (s *Server) handlePoolClaim(w http.ResponseWriter, r *http.Request) {
	data, ok := readPoolBody(w, r)
	if !ok {
		return
	}
	cr, err := pool.DecodeClaimRequest(data)
	if err != nil {
		writePoolError(w, err)
		return
	}
	grant, err := s.pool.Claim(cr.Worker)
	if err != nil {
		writePoolError(w, err)
		return
	}
	if grant == nil {
		w.WriteHeader(http.StatusNoContent)
		return
	}
	writeJSON(w, http.StatusOK, grant)
}

func (s *Server) handlePoolHeartbeat(w http.ResponseWriter, r *http.Request) {
	data, ok := readPoolBody(w, r)
	if !ok {
		return
	}
	hb, err := pool.DecodeHeartbeat(data)
	if err != nil {
		writePoolError(w, err)
		return
	}
	resp, err := s.pool.Heartbeat(hb)
	if err != nil {
		writePoolError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handlePoolCheckpoint(w http.ResponseWriter, r *http.Request) {
	data, ok := readPoolBody(w, r)
	if !ok {
		return
	}
	up, err := pool.DecodeCheckpointUpload(data)
	if err != nil {
		writePoolError(w, err)
		return
	}
	if err := s.pool.UploadCheckpoint(up); err != nil {
		writePoolError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) handlePoolComplete(w http.ResponseWriter, r *http.Request) {
	data, ok := readPoolBody(w, r)
	if !ok {
		return
	}
	cr, err := pool.DecodeComplete(data)
	if err != nil {
		writePoolError(w, err)
		return
	}
	if err := s.pool.Complete(cr); err != nil {
		writePoolError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) handlePoolStats(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.pool.Stats())
}

// handlePoolLeases serves the coordinator's lease ledger — the raw material
// for the crucible's lease-safety oracle and for operators chasing a fencing
// incident.
func (s *Server) handlePoolLeases(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.PoolLeases())
}

// PoolLeases snapshots the lease ledger (empty when pooling is disabled).
func (s *Server) PoolLeases() []pool.LeaseEvent {
	if s.pool == nil {
		return []pool.LeaseEvent{}
	}
	return s.pool.Leases()
}
