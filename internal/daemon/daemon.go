// Package daemon is the crash-safe control plane for the TECfan stack: a
// long-running HTTP server that executes simulations and chaos sweeps as
// supervised jobs. Every job checkpoints its full run state (thermal field,
// controller memory — including the fault-tolerant controller's fault log —
// workload progress, RNG streams) through internal/checkpoint on a
// configurable cadence, so a crash, SIGKILL, or power loss costs at most one
// checkpoint interval of recomputation and never changes the result: resumed
// runs are bitwise-identical to uninterrupted ones.
//
// The supervisor isolates panics per attempt, restarts failed attempts from
// the latest checkpoint under exponential backoff with jitter, and a
// watchdog cancels attempts whose control loop stops emitting heartbeats.
// The admission queue is bounded: a full queue sheds load with 429 and a
// Retry-After hint instead of buffering unboundedly. SIGTERM drains
// gracefully — in-flight jobs are canceled at their next control boundary,
// which persists a final checkpoint for the next incarnation to resume.
package daemon

import (
	"context"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"log"
	"math/rand"
	"net/http"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"tecfan/internal/checkpoint"
	"tecfan/internal/clockfault"
	"tecfan/internal/diskfault"
	"tecfan/internal/numfault"
	"tecfan/internal/numguard"
	"tecfan/internal/pool"
)

// Config tunes the daemon. Zero values take the documented defaults.
type Config struct {
	// StateDir holds job checkpoints (<id>.ckpt) and results
	// (<id>.result — the same atomic checkpoint envelope). Required.
	StateDir string
	// Workers is the number of concurrent job executors (default 1: the
	// simulations are CPU-bound and single-threaded).
	Workers int
	// QueueDepth bounds the admission queue; submissions beyond it are shed
	// with 429 (default 8).
	QueueDepth int
	// CheckpointEvery is the sim-level checkpoint cadence in control periods
	// (default 25, i.e. every 50 ms of simulated time at the paper's 2 ms
	// period). Chaos sweeps checkpoint per finished row regardless.
	CheckpointEvery int
	// MaxAttempts caps supervisor restarts per job, counting the first run
	// (default 3).
	MaxAttempts int
	// BackoffBase/BackoffMax shape the restart backoff: base·2^(attempt-1)
	// plus up to 50 % jitter, capped (defaults 200 ms / 10 s).
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// WatchdogTimeout restarts an attempt whose run loop has not emitted a
	// checkpoint or row for this long (default 2 m; <0 disables).
	WatchdogTimeout time.Duration
	// SubmitRate and SubmitBurst shape the token-bucket admission control on
	// POST /jobs: sustained submissions per second and the burst above it
	// (defaults 50/s, burst 100; SubmitRate < 0 disables the bucket).
	SubmitRate  float64
	SubmitBurst int
	// RequestTimeout bounds each HTTP request's handling (default 30 s;
	// < 0 disables).
	RequestTimeout time.Duration
	// IdemMaxEntries caps the durable idempotency table (default 4096,
	// evicting oldest-first beyond it).
	IdemMaxEntries int
	// PoolEnabled switches execution from in-process to the worker pool: the
	// daemon becomes a coordinator that shards jobs, leases the shards to
	// tecfan-worker processes under fencing tokens, and merges their results.
	PoolEnabled bool
	// PoolLeaseTTL is how long a worker's shard lease survives without a
	// heartbeat before it is fenced and reassigned (default 10 s).
	PoolLeaseTTL time.Duration
	// PoolChunk is how many sweep rows ride in one shard (default 2).
	PoolChunk int
	// FS is the filesystem seam every durable byte flows through (default
	// the real filesystem; tests and the disk-chaos drill inject a
	// diskfault.FaultFS).
	FS diskfault.FS
	// NumFaults, when non-nil, arms the numerical-chaos injector for every
	// trace job this daemon runs — the numfault drill's seam, mirroring the
	// diskfault schedule flag.
	NumFaults *numfault.Schedule
	// CheckpointKeep is how many generations of each job checkpoint to
	// retain, head included (default 3; 1 disables rotation). Reads fall
	// back from a corrupt head to the newest verifiable generation.
	CheckpointKeep int
	// ScrubInterval is the cadence of the background scrubber that
	// re-verifies checkpoint envelopes on disk and repairs corrupt
	// generations from a good copy (default 30 s; < 0 disables).
	ScrubInterval time.Duration
	// StorageProbeInterval is how often, while in ENOSPC degraded mode, the
	// daemon test-writes the state dir to detect recovered space
	// (default 2 s).
	StorageProbeInterval time.Duration
	// Logf receives operational log lines (default log.Printf).
	Logf func(format string, args ...any)

	// Clock is the time seam (default clockfault.OS). Watchdog staleness,
	// restart backoff, lease expiry, and admission refill all run on this
	// clock's monotonic arithmetic; its wall side only feeds seeds and logs.
	Clock clockfault.Clock

	rng   *rand.Rand                                       // jitter source; tests may seed it
	sleep func(ctx context.Context, d time.Duration) error // restart-backoff timer; tests may record it
}

func (c *Config) fillDefaults() error {
	if c.StateDir == "" {
		return fmt.Errorf("daemon: StateDir is required")
	}
	if c.Workers <= 0 {
		c.Workers = 1
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 8
	}
	if c.CheckpointEvery <= 0 {
		c.CheckpointEvery = 25
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 3
	}
	if c.BackoffBase <= 0 {
		c.BackoffBase = 200 * time.Millisecond
	}
	if c.BackoffMax <= 0 {
		c.BackoffMax = 10 * time.Second
	}
	if c.WatchdogTimeout == 0 {
		c.WatchdogTimeout = 2 * time.Minute
	}
	if c.SubmitRate == 0 {
		c.SubmitRate = 50
	}
	if c.SubmitBurst <= 0 {
		c.SubmitBurst = 100
	}
	if c.RequestTimeout == 0 {
		c.RequestTimeout = 30 * time.Second
	}
	if c.IdemMaxEntries <= 0 {
		c.IdemMaxEntries = checkpoint.DefaultIdemMaxEntries
	}
	if c.PoolLeaseTTL <= 0 {
		c.PoolLeaseTTL = pool.DefaultLeaseTTL
	}
	if c.PoolChunk <= 0 {
		c.PoolChunk = pool.DefaultChunk
	}
	if c.FS == nil {
		c.FS = diskfault.OS
	}
	if c.CheckpointKeep <= 0 {
		c.CheckpointKeep = checkpoint.DefaultKeepGenerations
	}
	if c.ScrubInterval == 0 {
		c.ScrubInterval = 30 * time.Second
	}
	if c.StorageProbeInterval <= 0 {
		c.StorageProbeInterval = 2 * time.Second
	}
	if c.Logf == nil {
		c.Logf = log.Printf
	}
	c.Clock = clockfault.Or(c.Clock)
	if c.rng == nil {
		c.rng = rand.New(rand.NewSource(c.Clock.Now().UnixNano()))
	}
	if c.sleep == nil {
		c.sleep = c.Clock.Sleep
	}
	return nil
}

// JobKind selects what a job runs.
type JobKind string

const (
	// KindTrace runs one benchmark under one policy at a fixed fan level
	// with trace recording — the checkpoint-heavy workhorse.
	KindTrace JobKind = "trace"
	// KindChaos runs a chaos sweep, checkpointing per finished row.
	KindChaos JobKind = "chaos"
	// KindTable1 reproduces the Table I base-scenario rows, checkpointing per
	// finished row.
	KindTable1 JobKind = "table1"
	// KindFig4 reproduces the §V-B comparison over the Table I benchmarks,
	// checkpointing per finished case.
	KindFig4 JobKind = "fig4"
)

// JobSpec is the client-facing description of a job. The same spec always
// produces the same result: thresholds derive deterministically from the
// base scenario when not given, and every random stream is seeded.
type JobSpec struct {
	// ID names the job; optional (a random one is assigned). Client-chosen
	// IDs make results addressable across daemon restarts.
	ID   string  `json:"id,omitempty"`
	Kind JobKind `json:"kind"`

	Bench   string  `json:"bench"`
	Threads int     `json:"threads"`
	Scale   float64 `json:"scale,omitempty"` // instruction-budget scale (default 1)

	// Trace jobs.
	Policy    string  `json:"policy,omitempty"`    // default "TECfan"
	FanLevel  int     `json:"fan_level,omitempty"` // 0 = fastest
	Threshold float64 `json:"threshold,omitempty"` // 0 = base-scenario peak
	Scenario  string  `json:"scenario,omitempty"`  // optional fault scenario
	Seed      int64   `json:"seed,omitempty"`      // fault-target/noise seed

	// Chaos jobs.
	Policies  []string `json:"policies,omitempty"`
	Scenarios []string `json:"scenarios,omitempty"`
}

// JobState is a job's lifecycle phase.
type JobState string

const (
	StateQueued   JobState = "queued"
	StateRunning  JobState = "running"
	StateDone     JobState = "done"
	StateFailed   JobState = "failed"
	StateCanceled JobState = "canceled"
)

// JobView is the status record served over HTTP.
type JobView struct {
	ID       string   `json:"id"`
	Kind     JobKind  `json:"kind"`
	State    JobState `json:"state"`
	Attempts int      `json:"attempts"`
	Error    string   `json:"error,omitempty"`
	// Resumed reports that this incarnation picked the job up from a
	// previous process's checkpoint.
	Resumed bool    `json:"resumed,omitempty"`
	Spec    JobSpec `json:"spec"`
	// RequestID is the X-Request-ID of the submission that created the job,
	// tying every job-log line back to the client call that caused it.
	RequestID string `json:"request_id,omitempty"`
}

// job is the in-memory record.
type job struct {
	spec      JobSpec
	state     JobState
	attempts  int
	err       string
	resumed   bool
	requestID string             // X-Request-ID of the creating submission
	cancel    context.CancelFunc // cancels the job (all attempts)
	done      chan struct{}      // closed when the job reaches a terminal state
}

// Server is the control-plane daemon.
type Server struct {
	cfg Config

	mu    sync.Mutex
	jobs  map[string]*job
	order []string

	queue    chan string
	draining bool

	// idem is the durable idempotency table; idemMu serializes tokened
	// submissions so two concurrent retries of the same POST cannot both
	// miss the table and enqueue twice.
	idem   *checkpoint.IdemStore
	idemMu sync.Mutex

	admit *tokenBucket

	// pool is the worker-pool coordinator; nil when PoolEnabled is false
	// (execution stays in-process).
	pool *pool.Coordinator

	// beats records the last liveness signal per running job for the
	// watchdog; attemptCancel the per-attempt cancel it may fire.
	beats         map[string]clockfault.Mono
	attemptCancel map[string]context.CancelFunc

	// genStores caches the per-job generational checkpoint stores (guarded
	// by mu); ioMu serializes generation rotation against the scrubber so a
	// repair never clobbers a checkpoint landing at the same instant.
	genStores map[string]*checkpoint.GenStore
	ioMu      sync.Mutex

	// diverged records jobs whose run confirmed a numeric divergence; the
	// record is sticky (like the FT controller's fail-safe) and surfaces as
	// a /readyz reason until the operator restarts the daemon. numMu guards
	// it; divergedOrder keeps reporting deterministic.
	numMu         sync.Mutex
	diverged      map[string]numguard.Violation
	divergedOrder []string

	// Storage-robustness state: degraded flips on ENOSPC (submissions shed,
	// checkpoints skipped) and back off when a probe write lands again.
	degraded           atomic.Bool
	skippedWrites      atomic.Int64
	scrubPasses        atomic.Int64
	scrubRepairs       atomic.Int64
	quarantinedRetired atomic.Int64

	wg       sync.WaitGroup
	rootCtx  context.Context
	rootStop context.CancelFunc
}

// New builds a Server, creating StateDir if needed and resuming any
// interrupted jobs found there.
func New(cfg Config) (*Server, error) {
	if err := cfg.fillDefaults(); err != nil {
		return nil, err
	}
	if err := cfg.FS.MkdirAll(cfg.StateDir, 0o755); err != nil {
		return nil, fmt.Errorf("daemon: %w", err)
	}
	idem, err := checkpoint.OpenIdemStoreFS(cfg.FS, filepath.Join(cfg.StateDir, "idempotency.idem"), cfg.IdemMaxEntries, cfg.Logf)
	if err != nil {
		return nil, fmt.Errorf("daemon: %w", err)
	}
	ctx, stop := context.WithCancel(context.Background())
	s := &Server{
		cfg:           cfg,
		jobs:          map[string]*job{},
		queue:         make(chan string, cfg.QueueDepth),
		idem:          idem,
		admit:         newTokenBucket(cfg.SubmitRate, cfg.SubmitBurst, cfg.Clock),
		beats:         map[string]clockfault.Mono{},
		attemptCancel: map[string]context.CancelFunc{},
		genStores:     map[string]*checkpoint.GenStore{},
		rootCtx:       ctx,
		rootStop:      stop,
	}
	if cfg.PoolEnabled {
		s.pool = pool.New(pool.Config{
			LeaseTTL: cfg.PoolLeaseTTL,
			Logf:     cfg.Logf,
			Clock:    cfg.Clock,
		})
	}
	if err := s.recover(); err != nil {
		stop()
		return nil, err
	}
	s.sweepIdempotency()
	for i := 0; i < cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	if cfg.WatchdogTimeout > 0 {
		s.wg.Add(1)
		go s.watchdog()
	}
	if cfg.ScrubInterval > 0 {
		s.wg.Add(1)
		go s.scrubber()
	}
	s.wg.Add(1)
	go s.storageProbe()
	return s, nil
}

var (
	idRe    = regexp.MustCompile(`^[A-Za-z0-9_-]{1,64}$`)
	tokenRe = regexp.MustCompile(`^[A-Za-z0-9._-]{1,128}$`)
)

// Submit validates and enqueues a job. A full queue returns ErrQueueFull; a
// draining server returns ErrDraining.
func (s *Server) Submit(spec JobSpec) (string, error) {
	return s.submit(spec, "")
}

// SubmitIdempotent submits a job under a client idempotency token: a token
// the daemon has seen before — in this incarnation or any earlier one, the
// table is durable — returns the original job's id with dup=true instead of
// enqueuing a second copy. requestID is the submission's X-Request-ID, woven
// into the job log.
//
// Ordering is the exactly-once argument: the token is recorded durably
// BEFORE the job is enqueued and its spec persisted. A crash between the two
// leaves a token pointing at a job that never existed; startup sweeps such
// orphans (sweepIdempotency), so the client's retry submits afresh — one
// run, not zero, not two. The reverse order would leave a persisted job the
// retry could not be matched to, and the retry would enqueue a duplicate.
func (s *Server) SubmitIdempotent(spec JobSpec, token, requestID string) (id string, dup bool, err error) {
	if token == "" {
		id, err = s.submit(spec, requestID)
		return id, false, err
	}
	if !tokenRe.MatchString(token) {
		return "", false, fmt.Errorf("daemon: invalid idempotency token %q", token)
	}
	if err := validateSpec(&spec); err != nil {
		// Reject garbage before burning a durable table entry on it.
		return "", false, err
	}
	s.idemMu.Lock()
	defer s.idemMu.Unlock()
	if prior, ok := s.idem.Get(token); ok {
		s.cfg.Logf("daemon: request %s: idempotency token replay -> job %s", requestID, prior)
		return prior, true, nil
	}
	if spec.ID == "" {
		s.mu.Lock()
		spec.ID = s.newID()
		s.mu.Unlock()
	}
	if err := s.idem.Put(token, spec.ID); err != nil {
		return "", false, fmt.Errorf("daemon: recording idempotency token: %w", err)
	}
	id, err = s.submit(spec, requestID)
	if err != nil {
		// The reservation must not outlive the refusal, or every retry of a
		// shed submission would be "deduplicated" into a job that was never
		// accepted.
		if derr := s.idem.Delete(token); derr != nil {
			s.cfg.Logf("daemon: rolling back idempotency token: %v", derr)
		}
		return "", false, err
	}
	return id, false, nil
}

func (s *Server) submit(spec JobSpec, requestID string) (string, error) {
	if err := validateSpec(&spec); err != nil {
		return "", err
	}
	if s.degraded.Load() {
		// A spec that cannot be persisted would vanish in a crash; shed it
		// with a retryable status instead of making a promise the disk
		// cannot keep.
		return "", ErrStorageDegraded
	}
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return "", ErrDraining
	}
	if spec.ID == "" {
		spec.ID = s.newID()
	}
	if _, exists := s.jobs[spec.ID]; exists {
		s.mu.Unlock()
		return "", fmt.Errorf("%w: %s", ErrDuplicateID, spec.ID)
	}
	j := &job{spec: spec, state: StateQueued, requestID: requestID, done: make(chan struct{})}
	select {
	case s.queue <- spec.ID:
	default:
		s.mu.Unlock()
		return "", ErrQueueFull
	}
	s.jobs[spec.ID] = j
	s.order = append(s.order, spec.ID)
	s.mu.Unlock()
	// Persist the bare spec immediately: a crash before the first checkpoint
	// must still resume (restart) the job, not forget it.
	if err := s.persistJob(&persistedJob{Spec: spec}); err != nil {
		s.cfg.Logf("daemon: persisting spec for %s: %v", spec.ID, err)
	}
	return spec.ID, nil
}

// sweepIdempotency drops tokens whose job left no trace on disk: the crash
// landed between the token write and the job-spec write, so the submission
// never happened — the client's retry must be allowed to start it fresh.
func (s *Server) sweepIdempotency() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for token, id := range s.idem.All() {
		if _, ok := s.jobs[id]; ok {
			continue
		}
		s.cfg.Logf("daemon: sweeping orphaned idempotency token for job %s (crash before spec persisted)", id)
		if err := s.idem.Delete(token); err != nil {
			s.cfg.Logf("daemon: sweeping idempotency token: %v", err)
		}
	}
}

// Typed submission failures.
var (
	ErrQueueFull   = fmt.Errorf("daemon: queue full")
	ErrDraining    = fmt.Errorf("daemon: draining")
	ErrDuplicateID = fmt.Errorf("daemon: duplicate job id")
)

func validateSpec(spec *JobSpec) error {
	if spec.ID != "" && !idRe.MatchString(spec.ID) {
		return fmt.Errorf("daemon: invalid job id %q", spec.ID)
	}
	switch spec.Kind {
	case KindTrace, KindChaos:
		if spec.Bench == "" {
			return fmt.Errorf("daemon: bench is required")
		}
		if spec.Threads <= 0 {
			return fmt.Errorf("daemon: threads must be positive")
		}
	case KindTable1, KindFig4:
		// Whole-table sweeps over the fixed Table I set: no bench selection.
	default:
		return fmt.Errorf("daemon: unknown job kind %q", spec.Kind)
	}
	if spec.Scale < 0 {
		return fmt.Errorf("daemon: scale must be non-negative")
	}
	if spec.Kind == KindTrace && spec.Policy == "" {
		spec.Policy = "TECfan"
	}
	return nil
}

func (s *Server) newID() string {
	// Collision-proof within the map we hold the lock on.
	for {
		var raw [4]byte
		binary.BigEndian.PutUint32(raw[:], s.cfg.rng.Uint32())
		id := "job-" + hex.EncodeToString(raw[:])
		if _, ok := s.jobs[id]; !ok {
			return id
		}
	}
}

// Cancel requests cancellation of a queued or running job.
func (s *Server) Cancel(id string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return fmt.Errorf("daemon: no such job %s", id)
	}
	switch j.state {
	case StateQueued:
		j.state = StateCanceled
		j.err = "canceled before start"
		close(j.done)
	case StateRunning:
		if j.cancel != nil {
			j.cancel()
		}
	}
	return nil
}

// Job returns a job's status view.
func (s *Server) Job(id string) (JobView, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return JobView{}, false
	}
	return s.viewLocked(id, j), true
}

// Jobs lists every job in submission order.
func (s *Server) Jobs() []JobView {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]JobView, 0, len(s.order))
	for _, id := range s.order {
		out = append(out, s.viewLocked(id, s.jobs[id]))
	}
	return out
}

func (s *Server) viewLocked(id string, j *job) JobView {
	return JobView{
		ID: id, Kind: j.spec.Kind, State: j.state, Attempts: j.attempts,
		Error: j.err, Resumed: j.resumed, Spec: j.spec, RequestID: j.requestID,
	}
}

// Draining reports whether the server has begun shutdown.
func (s *Server) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// Shutdown drains the daemon: no new submissions, running jobs are canceled
// at their next control boundary (persisting a final checkpoint), and the
// workers exit. It returns when every worker has stopped or ctx expires.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return nil
	}
	s.draining = true
	close(s.queue)
	for _, j := range s.jobs {
		if j.state == StateRunning && j.cancel != nil {
			j.cancel()
		}
	}
	s.mu.Unlock()
	s.rootStop()

	done := make(chan struct{})
	go func() { s.wg.Wait(); close(done) }()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("daemon: shutdown timed out: %w", ctx.Err())
	}
}

// worker consumes the queue until drain.
func (s *Server) worker() {
	defer s.wg.Done()
	for id := range s.queue {
		s.mu.Lock()
		j, ok := s.jobs[id]
		if !ok || j.state != StateQueued {
			s.mu.Unlock()
			continue // canceled while queued
		}
		jobCtx, cancel := context.WithCancel(s.rootCtx)
		j.state = StateRunning
		j.cancel = cancel
		s.mu.Unlock()
		s.runSupervised(jobCtx, id, j)
		cancel()
	}
}

// runSupervised executes a job's attempts under the restart policy. Each
// attempt resumes from the latest persisted checkpoint, so a panic or a
// watchdog kill costs at most one checkpoint interval of recomputation.
func (s *Server) runSupervised(jobCtx context.Context, id string, j *job) {
	for attempt := 1; ; attempt++ {
		s.mu.Lock()
		j.attempts = attempt
		s.mu.Unlock()

		attemptCtx, attemptCancel := context.WithCancel(jobCtx)
		s.mu.Lock()
		s.attemptCancel[id] = attemptCancel
		s.beats[id] = s.cfg.Clock.Mono()
		s.mu.Unlock()

		err := s.runAttempt(attemptCtx, id, j.spec)
		attemptCancel()
		s.mu.Lock()
		delete(s.attemptCancel, id)
		delete(s.beats, id)
		s.mu.Unlock()

		switch {
		case err == nil:
			s.finish(id, j, StateDone, "")
			return
		case jobCtx.Err() != nil:
			// Job-level cancellation (client DELETE or daemon drain). The
			// final checkpoint was persisted at the cancellation boundary.
			s.finish(id, j, StateCanceled, err.Error())
			return
		case attempt >= s.cfg.MaxAttempts:
			//lint:tecfan-ignore allocfree -- terminal-failure path: formats the failure note at most once per exhausted job
			s.finish(id, j, StateFailed, fmt.Sprintf("attempt %d/%d: %v", attempt, s.cfg.MaxAttempts, err))
			return
		}
		// Restartable failure: panic, watchdog cancel, or a transient error.
		delay := s.restartDelay(attempt)
		s.cfg.Logf("daemon: job %s attempt %d failed (%v); restarting from checkpoint in %s", id, attempt, err, delay)
		if serr := s.cfg.sleep(jobCtx, delay); serr != nil {
			s.finish(id, j, StateCanceled, serr.Error())
			return
		}
	}
}

// restartDelay draws the jittered supervised-restart delay for a 1-based
// attempt number, holding the rng's lock.
func (s *Server) restartDelay(attempt int) time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	return backoffDelay(s.cfg.rng, s.cfg.BackoffBase, s.cfg.BackoffMax, attempt)
}

// backoffDelay computes the restart backoff: base·2^(attempt-1) capped at
// max, plus up to 50 % jitter, the sum capped at max again — so every delay
// lies in [base, max] regardless of attempt number or rng draw.
func backoffDelay(rng *rand.Rand, base, max time.Duration, attempt int) time.Duration {
	d := base
	for i := 1; i < attempt && d < max; i++ {
		d *= 2
	}
	if d > max {
		d = max
	}
	d += time.Duration(rng.Float64() * float64(d) / 2)
	if d > max {
		d = max
	}
	if d < base {
		d = base
	}
	return d
}

func (s *Server) finish(id string, j *job, st JobState, msg string) {
	s.mu.Lock()
	j.state = st
	j.err = msg
	rid := j.requestID
	close(j.done)
	s.mu.Unlock()
	if st == StateDone {
		// The result file is durable; the checkpoint (all generations) has
		// served its purpose. Quarantined .bad-N files stay for post-mortem.
		g := s.gens(id)
		s.ioMu.Lock()
		_ = g.RemoveAll()
		s.ioMu.Unlock()
		s.dropGens(id)
	}
	if rid != "" {
		s.cfg.Logf("daemon: job %s -> %s (request %s)", id, st, rid)
	} else {
		s.cfg.Logf("daemon: job %s -> %s", id, st)
	}
}

// heartbeat records attempt liveness; the run loop calls it from every
// checkpoint and chaos-row emission.
func (s *Server) heartbeat(id string) {
	s.mu.Lock()
	s.beats[id] = s.cfg.Clock.Mono()
	s.mu.Unlock()
}

// watchdog cancels attempts whose control loop has stalled — a hung solver,
// a deadlock — converting the stall into a supervised restart from the
// latest checkpoint.
func (s *Server) watchdog() {
	defer s.wg.Done()
	interval := s.cfg.WatchdogTimeout / 4
	if interval < 10*time.Millisecond {
		interval = 10 * time.Millisecond
	}
	t := s.cfg.Clock.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-s.rootCtx.Done():
			return
		case <-t.C():
		}
		now := s.cfg.Clock.Mono()
		s.mu.Lock()
		for id, last := range s.beats {
			if now.Sub(last) > s.cfg.WatchdogTimeout {
				if cancel, ok := s.attemptCancel[id]; ok {
					s.cfg.Logf("daemon: watchdog: job %s silent for %s, canceling attempt", id, now.Sub(last).Round(time.Millisecond))
					cancel()
					s.beats[id] = now // one kick per timeout window
				}
			}
		}
		s.mu.Unlock()
	}
}

// Wait blocks until the job reaches a terminal state or ctx expires.
func (s *Server) Wait(ctx context.Context, id string) error {
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		return fmt.Errorf("daemon: no such job %s", id)
	}
	select {
	case <-j.done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (s *Server) ckptPath(id string) string {
	return filepath.Join(s.cfg.StateDir, id+".ckpt")
}

func (s *Server) resultPath(id string) string {
	return filepath.Join(s.cfg.StateDir, id+".result")
}

// Handler returns the daemon's HTTP API, wrapped in the request-ID and
// per-request-timeout middleware.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /livez", s.handleHealthz)
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	mux.HandleFunc("POST /jobs", s.handleSubmit)
	mux.HandleFunc("GET /jobs", s.handleList)
	mux.HandleFunc("GET /jobs/{id}", s.handleJob)
	mux.HandleFunc("DELETE /jobs/{id}", s.handleCancel)
	mux.HandleFunc("GET /jobs/{id}/result", s.handleResult)
	mux.HandleFunc("GET /storage", s.handleStorage)
	if s.pool != nil {
		mux.HandleFunc("POST /pool/claim", s.handlePoolClaim)
		mux.HandleFunc("POST /pool/heartbeat", s.handlePoolHeartbeat)
		mux.HandleFunc("POST /pool/checkpoint", s.handlePoolCheckpoint)
		mux.HandleFunc("POST /pool/complete", s.handlePoolComplete)
		mux.HandleFunc("GET /pool/stats", s.handlePoolStats)
		mux.HandleFunc("GET /pool/leases", s.handlePoolLeases)
	}
	var h http.Handler = mux
	if s.cfg.RequestTimeout > 0 {
		h = withRequestTimeout(h, s.cfg.RequestTimeout)
	}
	// Outermost so even timeout/request-ID rejections carry the ready state.
	return s.withReadyHeader(s.withRequestID(h))
}

// isSpecOnly reports whether a persisted record carries no progress yet.
func isSpecOnly(rec *persistedJob) bool {
	return rec.Snap == nil && len(rec.Rows) == 0 && rec.Threshold == 0 &&
		len(rec.T1Rows) == 0 && len(rec.F4Cases) == 0 && rec.Pool == nil
}

// recover scans StateDir on startup: jobs with results load as done; jobs
// with only a checkpoint re-enter the queue and resume where they left off.
// Job ids are derived from head files AND rotated generations, so a job
// whose head was quarantined but whose .gN fallbacks survive still resumes.
func (s *Server) recover() error {
	entries, err := s.cfg.FS.ReadDir(s.cfg.StateDir)
	if err != nil {
		return fmt.Errorf("daemon: %w", err)
	}
	seen := map[string]bool{}
	for _, e := range entries {
		m := ckptFileRe.FindStringSubmatch(e.Name())
		if m == nil || seen[m[1]] {
			continue
		}
		id := m[1]
		seen[id] = true
		rec, err := s.loadJob(id)
		if err != nil {
			// No generation of this checkpoint verifies (torn write beaten by
			// the atomic rename, version skew after an upgrade, rot). Not a
			// crash: loadJob already quarantined the corpses; log, move on.
			s.cfg.Logf("daemon: ignoring unreadable checkpoint for %s: %v", id, err)
			continue
		}
		if _, err := s.cfg.FS.Stat(s.resultPath(id)); err == nil {
			// Finished before the previous incarnation died; the checkpoint
			// outlived its usefulness.
			_ = s.gens(id).RemoveAll()
			s.dropGens(id)
			continue
		}
		j := &job{spec: rec.Spec, state: StateQueued, resumed: true, done: make(chan struct{})}
		select {
		case s.queue <- id:
			s.jobs[id] = j
			s.order = append(s.order, id)
			s.cfg.Logf("daemon: resuming job %s from checkpoint (progress: %v)", id, !isSpecOnly(rec))
		default:
			return fmt.Errorf("daemon: %d interrupted jobs exceed queue depth %d", len(entries), s.cfg.QueueDepth)
		}
	}
	// Results without live jobs stay on disk and are served directly; list
	// them so GET /jobs shows history across restarts.
	for _, e := range entries {
		name := e.Name()
		if !strings.HasSuffix(name, ".result") {
			continue
		}
		id := strings.TrimSuffix(name, ".result")
		if _, ok := s.jobs[id]; ok {
			continue
		}
		j := &job{spec: JobSpec{ID: id}, state: StateDone, resumed: true, done: make(chan struct{})}
		close(j.done)
		s.jobs[id] = j
		s.order = append(s.order, id)
	}
	return nil
}
