package daemon

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"tecfan/internal/checkpoint"
)

// fastConfig is a test-sized daemon: millisecond backoff, quiet logs.
func fastConfig(t *testing.T) Config {
	t.Helper()
	return Config{
		StateDir:        t.TempDir(),
		CheckpointEvery: 1,
		BackoffBase:     time.Millisecond,
		BackoffMax:      10 * time.Millisecond,
		WatchdogTimeout: -1, // off unless a test wants it
		Logf:            t.Logf,
		rng:             rand.New(rand.NewSource(1)),
	}
}

func newTestServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = s.Shutdown(ctx)
	})
	return s
}

// traceSpec is the small real simulation job used by end-to-end tests.
func traceSpec(id string) JobSpec {
	return JobSpec{
		ID: id, Kind: KindTrace,
		Bench: "cholesky", Threads: 16, Policy: "TECfan-FT", Scale: 0.2,
	}
}

func waitState(t *testing.T, s *Server, id string, want JobState) JobView {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := s.Wait(ctx, id); err != nil {
		t.Fatalf("waiting for %s: %v", id, err)
	}
	v, ok := s.Job(id)
	if !ok {
		t.Fatalf("job %s vanished", id)
	}
	if v.State != want {
		t.Fatalf("job %s state = %s (%s), want %s", id, v.State, v.Error, want)
	}
	return v
}

func TestSubmitValidation(t *testing.T) {
	s := newTestServer(t, fastConfig(t))
	bad := []JobSpec{
		{},                                     // no kind
		{Kind: "nope", Bench: "x", Threads: 1}, // unknown kind
		{Kind: KindTrace, Threads: 1},          // no bench
		{Kind: KindTrace, Bench: "x"},          // no threads
		{Kind: KindTrace, Bench: "x", Threads: 1, ID: "bad id!"}, // invalid id
	}
	for _, spec := range bad {
		if _, err := s.Submit(spec); err == nil {
			t.Errorf("Submit(%+v) accepted", spec)
		}
	}
}

// TestJobLifecycleHTTP drives the full happy path over the wire: submit a
// real simulation job, poll status, fetch the durable result.
func TestJobLifecycleHTTP(t *testing.T) {
	s := newTestServer(t, fastConfig(t))
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	for _, path := range []string{"/healthz", "/readyz"} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s = %d", path, resp.StatusCode)
		}
	}

	body, _ := json.Marshal(traceSpec("http-e2e"))
	resp, err := http.Post(srv.URL+"/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var sub struct{ ID string }
	if err := json.NewDecoder(resp.Body).Decode(&sub); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted || sub.ID != "http-e2e" {
		t.Fatalf("submit = %d id=%q", resp.StatusCode, sub.ID)
	}

	// A result request before completion answers 409 with the status.
	if resp, err = http.Get(srv.URL + "/jobs/http-e2e/result"); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict && resp.StatusCode != http.StatusOK {
		t.Fatalf("early result = %d", resp.StatusCode)
	}

	waitState(t, s, "http-e2e", StateDone)

	if resp, err = http.Get(srv.URL + "/jobs/http-e2e/result"); err != nil {
		t.Fatal(err)
	}
	var res struct {
		Threshold float64 `json:"threshold"`
		Completed bool    `json:"completed"`
		Trace     []struct{ Time float64 }
	}
	if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !res.Completed || res.Threshold <= 0 || len(res.Trace) == 0 {
		t.Fatalf("result = %d completed=%v threshold=%v trace=%d points",
			resp.StatusCode, res.Completed, res.Threshold, len(res.Trace))
	}

	if resp, err = http.Get(srv.URL + "/jobs/nope"); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("GET /jobs/nope = %d", resp.StatusCode)
	}
}

// TestQueueSheddingHTTP fills the bounded queue behind a deliberately slow
// job and asserts the overflow submission is shed with 429 + Retry-After.
func TestQueueSheddingHTTP(t *testing.T) {
	block := make(chan struct{})
	testRunHook = func(ctx context.Context, id string, spec JobSpec) error {
		select {
		case <-block:
			return nil
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	defer func() { testRunHook = nil }()

	cfg := fastConfig(t)
	cfg.Workers = 1
	cfg.QueueDepth = 2
	s := newTestServer(t, cfg)
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	submit := func(id string) *http.Response {
		body, _ := json.Marshal(traceSpec(id))
		resp, err := http.Post(srv.URL+"/jobs", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp
	}

	// First job occupies the worker; wait until it leaves the queue.
	if resp := submit("slow"); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit slow = %d", resp.StatusCode)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if v, _ := s.Job("slow"); v.State == StateRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("slow job never started")
		}
		time.Sleep(time.Millisecond)
	}
	// Two more fill the queue; the third overflows.
	for _, id := range []string{"q1", "q2"} {
		if resp := submit(id); resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit %s = %d", id, resp.StatusCode)
		}
	}
	resp := submit("overflow")
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overflow submit = %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	close(block)
	for _, id := range []string{"slow", "q1", "q2"} {
		waitState(t, s, id, StateDone)
	}
}

// TestSupervisorPanicRestart: a job that panics on its first attempt is
// isolated and restarted, and succeeds on the second attempt.
func TestSupervisorPanicRestart(t *testing.T) {
	var attempts atomic.Int32
	testRunHook = func(ctx context.Context, id string, spec JobSpec) error {
		if attempts.Add(1) == 1 {
			panic("first attempt explodes")
		}
		return nil
	}
	defer func() { testRunHook = nil }()

	s := newTestServer(t, fastConfig(t))
	id, err := s.Submit(traceSpec("panicky"))
	if err != nil {
		t.Fatal(err)
	}
	v := waitState(t, s, id, StateDone)
	if v.Attempts != 2 {
		t.Fatalf("attempts = %d, want 2", v.Attempts)
	}
}

// TestSupervisorGivesUp: a job that fails every attempt ends failed after
// MaxAttempts, not in an infinite restart loop.
func TestSupervisorGivesUp(t *testing.T) {
	var attempts atomic.Int32
	testRunHook = func(ctx context.Context, id string, spec JobSpec) error {
		attempts.Add(1)
		return errors.New("always broken")
	}
	defer func() { testRunHook = nil }()

	cfg := fastConfig(t)
	cfg.MaxAttempts = 3
	s := newTestServer(t, cfg)
	id, err := s.Submit(traceSpec("doomed"))
	if err != nil {
		t.Fatal(err)
	}
	v := waitState(t, s, id, StateFailed)
	if got := attempts.Load(); got != 3 {
		t.Fatalf("ran %d attempts, want 3", got)
	}
	if !strings.Contains(v.Error, "always broken") {
		t.Fatalf("terminal error %q does not carry the cause", v.Error)
	}
}

// TestWatchdogRestartsStalledAttempt: an attempt that stops heartbeating is
// canceled by the watchdog and the job is restarted.
func TestWatchdogRestartsStalledAttempt(t *testing.T) {
	var attempts atomic.Int32
	testRunHook = func(ctx context.Context, id string, spec JobSpec) error {
		if attempts.Add(1) == 1 {
			<-ctx.Done() // stall silently until the watchdog fires
			return ctx.Err()
		}
		return nil
	}
	defer func() { testRunHook = nil }()

	cfg := fastConfig(t)
	cfg.WatchdogTimeout = 50 * time.Millisecond
	s := newTestServer(t, cfg)
	id, err := s.Submit(traceSpec("stalled"))
	if err != nil {
		t.Fatal(err)
	}
	v := waitState(t, s, id, StateDone)
	if v.Attempts != 2 {
		t.Fatalf("attempts = %d, want 2 (watchdog restart)", v.Attempts)
	}
}

// TestDrainShedsAndCancels: after Shutdown begins, readiness flips, new
// submissions are refused, and running jobs are canceled.
func TestDrainShedsAndCancels(t *testing.T) {
	started := make(chan struct{})
	testRunHook = func(ctx context.Context, id string, spec JobSpec) error {
		close(started)
		<-ctx.Done()
		return ctx.Err()
	}
	defer func() { testRunHook = nil }()

	s := newTestServer(t, fastConfig(t))
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	if _, err := s.Submit(traceSpec("inflight")); err != nil {
		t.Fatal(err)
	}
	<-started

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(srv.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("readyz while drained = %d, want 503", resp.StatusCode)
	}
	if _, err := s.Submit(traceSpec("late")); !errors.Is(err, ErrDraining) {
		t.Fatalf("submit while drained = %v, want ErrDraining", err)
	}
	v, _ := s.Job("inflight")
	if v.State != StateCanceled {
		t.Fatalf("in-flight job state after drain = %s, want canceled", v.State)
	}
}

// TestRestartResumesAndMatches is the in-process kill-and-resume drill: run a
// job partway on one daemon, drain it (persisting the cancellation
// checkpoint), bring up a second daemon on the same state dir, and require
// its finished result to be byte-identical to an uninterrupted daemon's.
func TestRestartResumesAndMatches(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second simulation")
	}
	spec := traceSpec("drill")

	// Uninterrupted reference on its own state dir.
	refDir := t.TempDir()
	refCfg := fastConfig(t)
	refCfg.StateDir = refDir
	ref := newTestServer(t, refCfg)
	if _, err := ref.Submit(spec); err != nil {
		t.Fatal(err)
	}
	waitState(t, ref, "drill", StateDone)
	want, err := os.ReadFile(ref.resultPath("drill"))
	if err != nil {
		t.Fatal(err)
	}

	// Interrupted: drain once the first mid-run checkpoint lands.
	dir := t.TempDir()
	cfg1 := fastConfig(t)
	cfg1.StateDir = dir
	s1, err := New(cfg1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s1.Submit(spec); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(60 * time.Second)
	for {
		rec, err := s1.loadJob("drill")
		if err == nil && rec.Snap != nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no mid-run checkpoint appeared")
		}
		time.Sleep(5 * time.Millisecond)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s1.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	if v, _ := s1.Job("drill"); v.State == StateDone {
		t.Skip("job finished before the drain landed; nothing to resume")
	}

	// Second incarnation resumes from the checkpoint and finishes.
	cfg2 := fastConfig(t)
	cfg2.StateDir = dir
	s2 := newTestServer(t, cfg2)
	v := waitState(t, s2, "drill", StateDone)
	if !v.Resumed {
		t.Fatal("restarted job not marked resumed")
	}
	got, err := os.ReadFile(s2.resultPath("drill"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("resumed result differs from uninterrupted run (%d vs %d bytes)", len(got), len(want))
	}
	// The served checkpoint is cleaned up once the result is durable.
	if _, err := os.Stat(s2.ckptPath("drill")); !os.IsNotExist(err) {
		t.Fatalf("checkpoint survived completion: %v", err)
	}
}

// TestRecoverIgnoresCorruptCheckpoint: a torn checkpoint on disk must not
// prevent startup — it is quarantined and logged.
func TestRecoverIgnoresCorruptCheckpoint(t *testing.T) {
	cfg := fastConfig(t)
	if err := os.WriteFile(cfg.StateDir+"/torn.ckpt", []byte("TECFCKPT but torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	s := newTestServer(t, cfg)
	if _, ok := s.Job("torn"); ok {
		t.Fatal("corrupt checkpoint produced a job")
	}
	if _, err := os.Stat(cfg.StateDir + "/torn.ckpt.bad-1"); err != nil {
		t.Fatalf("corrupt checkpoint not quarantined: %v", err)
	}
}

// TestChaosJobEndToEnd runs a tiny chaos sweep through the daemon and checks
// the durable result parses with the expected rows.
func TestChaosJobEndToEnd(t *testing.T) {
	s := newTestServer(t, fastConfig(t))
	id, err := s.Submit(JobSpec{
		ID: "chaos", Kind: KindChaos,
		Bench: "cholesky", Threads: 16, Scale: 0.001,
		Policies: []string{"TECfan-FT"}, Scenarios: []string{"sensor-dropout", "tec-fail-off"},
		Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, s, id, StateDone)
	data, err := checkpoint.ReadFile(s.resultPath(id))
	if err != nil {
		t.Fatal(err)
	}
	var res struct {
		Rows []struct{ Scenario, Policy string }
	}
	if err := json.Unmarshal(data, &res); err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("chaos result has %d rows, want 2: %s", len(res.Rows), data)
	}
}

// TestDuplicateID: a client-chosen id collides with an existing job.
func TestDuplicateID(t *testing.T) {
	block := make(chan struct{})
	defer close(block)
	testRunHook = func(ctx context.Context, id string, spec JobSpec) error {
		select {
		case <-block:
		case <-ctx.Done():
		}
		return nil
	}
	defer func() { testRunHook = nil }()
	s := newTestServer(t, fastConfig(t))
	if _, err := s.Submit(traceSpec("dup")); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Submit(traceSpec("dup")); !errors.Is(err, ErrDuplicateID) {
		t.Fatalf("duplicate submit = %v, want ErrDuplicateID", err)
	}
}

// sanity: the config defaulting never leaves a zero that matters.
func TestConfigDefaults(t *testing.T) {
	c := Config{StateDir: t.TempDir()}
	if err := c.fillDefaults(); err != nil {
		t.Fatal(err)
	}
	if c.Workers < 1 || c.QueueDepth < 1 || c.CheckpointEvery < 1 ||
		c.MaxAttempts < 1 || c.BackoffBase <= 0 || c.BackoffMax <= 0 ||
		c.WatchdogTimeout == 0 || c.Logf == nil || c.rng == nil {
		t.Fatalf("defaults incomplete: %+v", c)
	}
	if err := (&Config{}).fillDefaults(); err == nil {
		t.Fatal("empty StateDir accepted")
	}
}
