package daemon

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"sync"
	"testing"
	"time"

	"tecfan/internal/clockfault"
)

// TestBackoffDelayBounds: every jittered restart delay stays within
// [base, cap] for any attempt number and any rng draw.
func TestBackoffDelayBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	base, cap := 200*time.Millisecond, 10*time.Second
	for attempt := 1; attempt <= 40; attempt++ {
		for draw := 0; draw < 200; draw++ {
			d := backoffDelay(rng, base, cap, attempt)
			if d < base || d > cap {
				t.Fatalf("attempt %d: delay %s outside [%s, %s]", attempt, d, base, cap)
			}
		}
	}
	// The exponential floor: attempt 1 never exceeds 1.5x base, attempt 3
	// never falls below 4x base (until the cap bites).
	for draw := 0; draw < 200; draw++ {
		if d := backoffDelay(rng, base, cap, 1); d > base+base/2 {
			t.Fatalf("attempt 1 delay %s exceeds 1.5x base", d)
		}
		if d := backoffDelay(rng, base, cap, 3); d < 4*base {
			t.Fatalf("attempt 3 delay %s below 4x base", d)
		}
	}
}

// TestSupervisorBackoffInjectable: with a recording fake sleep, a job that
// fails twice restarts without any real waiting, and the recorded delays lie
// within [base, cap] — the restart-backoff bounds are unit-testable without
// wall-clock sleeps.
func TestSupervisorBackoffInjectable(t *testing.T) {
	var mu sync.Mutex
	var delays []time.Duration

	cfg := fastConfig(t)
	cfg.BackoffBase = 5 * time.Second // would dominate the test if really slept
	cfg.BackoffMax = 40 * time.Second
	cfg.MaxAttempts = 3
	cfg.sleep = func(ctx context.Context, d time.Duration) error {
		mu.Lock()
		delays = append(delays, d)
		mu.Unlock()
		return ctx.Err()
	}
	fails := 0
	testRunHook = func(ctx context.Context, id string, spec JobSpec) error {
		if fails++; fails <= 2 {
			return errors.New("transient")
		}
		return nil
	}
	defer func() { testRunHook = nil }()

	start := time.Now()
	s := newTestServer(t, cfg)
	id, err := s.Submit(traceSpec("backoff"))
	if err != nil {
		t.Fatal(err)
	}
	v := waitState(t, s, id, StateDone)
	if v.Attempts != 3 {
		t.Fatalf("attempts = %d, want 3", v.Attempts)
	}
	if el := time.Since(start); el > 2*time.Second {
		t.Fatalf("fake sleep still took %s of wall clock", el)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(delays) != 2 {
		t.Fatalf("recorded %d delays, want 2", len(delays))
	}
	for i, d := range delays {
		if d < cfg.BackoffBase || d > cfg.BackoffMax {
			t.Errorf("delay %d = %s outside [%s, %s]", i, d, cfg.BackoffBase, cfg.BackoffMax)
		}
	}
	// Attempt 2's delay must reflect the doubled exponential floor.
	if delays[1] < 2*cfg.BackoffBase {
		t.Errorf("second delay %s below 2x base", delays[1])
	}
}

// TestSubmitIdempotent: a replayed token returns the original job id without
// enqueuing a second job; distinct tokens create distinct jobs.
func TestSubmitIdempotent(t *testing.T) {
	block := make(chan struct{})
	defer close(block)
	testRunHook = func(ctx context.Context, id string, spec JobSpec) error {
		select {
		case <-block:
		case <-ctx.Done():
		}
		return nil
	}
	defer func() { testRunHook = nil }()

	s := newTestServer(t, fastConfig(t))
	spec := traceSpec("")
	id1, dup, err := s.SubmitIdempotent(spec, "tok-a", "req-1")
	if err != nil || dup {
		t.Fatalf("first submit: id=%q dup=%v err=%v", id1, dup, err)
	}
	id2, dup, err := s.SubmitIdempotent(spec, "tok-a", "req-2")
	if err != nil || !dup || id2 != id1 {
		t.Fatalf("replay: id=%q dup=%v err=%v (want %q, true)", id2, dup, err, id1)
	}
	id3, dup, err := s.SubmitIdempotent(spec, "tok-b", "req-3")
	if err != nil || dup || id3 == id1 {
		t.Fatalf("fresh token: id=%q dup=%v err=%v", id3, dup, err)
	}
	if n := len(s.Jobs()); n != 2 {
		t.Fatalf("two logical submissions produced %d jobs", n)
	}
	// Invalid tokens are rejected before touching the table.
	if _, _, err := s.SubmitIdempotent(spec, "bad token!", ""); err == nil {
		t.Fatal("invalid token accepted")
	}
}

// TestIdempotencySurvivesRestart: the token table is durable — a daemon
// restarted on the same state dir still dedups a token its predecessor saw.
func TestIdempotencySurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	cfg1 := fastConfig(t)
	cfg1.StateDir = dir
	s1, err := New(cfg1)
	if err != nil {
		t.Fatal(err)
	}
	id1, _, err := s1.SubmitIdempotent(traceSpec(""), "tok-restart", "req-1")
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, s1, id1, StateDone)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s1.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}

	cfg2 := fastConfig(t)
	cfg2.StateDir = dir
	s2 := newTestServer(t, cfg2)
	before := len(s2.Jobs())
	id2, dup, err := s2.SubmitIdempotent(traceSpec(""), "tok-restart", "req-2")
	if err != nil || !dup || id2 != id1 {
		t.Fatalf("post-restart replay: id=%q dup=%v err=%v (want %q, true)", id2, dup, err, id1)
	}
	if after := len(s2.Jobs()); after != before {
		t.Fatalf("replay after restart grew the job list %d -> %d", before, after)
	}
}

// TestIdempotencySweepsOrphans: a token whose job left no checkpoint or
// result (crash between the token write and the spec write) is swept at
// startup so the retry can run the job fresh.
func TestIdempotencySweepsOrphans(t *testing.T) {
	dir := t.TempDir()
	// Simulate the crash window: a durable token pointing at a job that was
	// never persisted.
	pre, err := New(Config{StateDir: dir, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	if err := pre.idem.Put("tok-orphan", "job-never-born"); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	_ = pre.Shutdown(ctx)

	s := newTestServer(t, Config{StateDir: dir, Logf: t.Logf,
		BackoffBase: time.Millisecond, BackoffMax: 10 * time.Millisecond, WatchdogTimeout: -1})
	if _, ok := s.idem.Get("tok-orphan"); ok {
		t.Fatal("orphaned token survived startup sweep")
	}
	// The retried submission starts the job for real this time.
	id, dup, err := s.SubmitIdempotent(traceSpec(""), "tok-orphan", "req-retry")
	if err != nil || dup {
		t.Fatalf("retry after sweep: id=%q dup=%v err=%v", id, dup, err)
	}
	if id == "job-never-born" {
		t.Fatal("retry was matched to the phantom job")
	}
	waitState(t, s, id, StateDone)
}

// TestIdempotentSubmitRollsBackOnRefusal: a shed submission must not leave
// its token behind, or every retry would dedup into a job that was never
// accepted.
func TestIdempotentSubmitRollsBackOnRefusal(t *testing.T) {
	block := make(chan struct{})
	defer close(block)
	testRunHook = func(ctx context.Context, id string, spec JobSpec) error {
		select {
		case <-block:
		case <-ctx.Done():
		}
		return nil
	}
	defer func() { testRunHook = nil }()

	cfg := fastConfig(t)
	cfg.Workers = 1
	cfg.QueueDepth = 1
	s := newTestServer(t, cfg)
	// Fill the worker and the queue.
	if _, err := s.Submit(traceSpec("fill-worker")); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if v, _ := s.Job("fill-worker"); v.State == StateRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("fill job never started")
		}
		time.Sleep(time.Millisecond)
	}
	if _, err := s.Submit(traceSpec("fill-queue")); err != nil {
		t.Fatal(err)
	}

	if _, _, err := s.SubmitIdempotent(traceSpec(""), "tok-shed", "req-1"); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("overflow submit = %v, want ErrQueueFull", err)
	}
	if _, ok := s.idem.Get("tok-shed"); ok {
		t.Fatal("token survived a shed submission")
	}
}

// TestReadyzGating: /readyz flips to 503 when the queue is full and when the
// checkpoint dir stops being writable, and reports why.
func TestReadyzGating(t *testing.T) {
	block := make(chan struct{})
	defer close(block)
	testRunHook = func(ctx context.Context, id string, spec JobSpec) error {
		select {
		case <-block:
		case <-ctx.Done():
		}
		return nil
	}
	defer func() { testRunHook = nil }()

	cfg := fastConfig(t)
	cfg.Workers = 1
	cfg.QueueDepth = 1
	s := newTestServer(t, cfg)
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	readyz := func() (int, string) {
		resp, err := http.Get(srv.URL + "/readyz")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var body struct {
			Reasons []string `json:"reasons"`
		}
		_ = json.NewDecoder(resp.Body).Decode(&body)
		reason := ""
		if len(body.Reasons) > 0 {
			reason = body.Reasons[0]
		}
		return resp.StatusCode, reason
	}

	if code, _ := readyz(); code != http.StatusOK {
		t.Fatalf("idle readyz = %d, want 200", code)
	}

	// Fill the worker, then the queue: readiness must flip.
	if _, err := s.Submit(traceSpec("w")); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if v, _ := s.Job("w"); v.State == StateRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("job never started")
		}
		time.Sleep(time.Millisecond)
	}
	if _, err := s.Submit(traceSpec("q")); err != nil {
		t.Fatal(err)
	}
	if code, reason := readyz(); code != http.StatusServiceUnavailable || reason != "queue full" {
		t.Fatalf("full-queue readyz = %d %q, want 503 \"queue full\"", code, reason)
	}

	// A vanished state dir (the strongest form of "unwritable" that works
	// regardless of uid) must also unready the daemon.
	if err := os.RemoveAll(cfg.StateDir); err != nil {
		t.Fatal(err)
	}
	if code, _ := readyz(); code != http.StatusServiceUnavailable {
		t.Fatalf("unwritable-state readyz = %d, want 503", code)
	}
	if err := os.MkdirAll(cfg.StateDir, 0o755); err != nil {
		t.Fatal(err)
	}
}

// TestSubmitRateLimit: the token bucket sheds POST /jobs beyond the burst
// with 429 + Retry-After, and refills with the (fake) clock.
func TestSubmitRateLimit(t *testing.T) {
	block := make(chan struct{})
	defer close(block)
	testRunHook = func(ctx context.Context, id string, spec JobSpec) error {
		select {
		case <-block:
		case <-ctx.Done():
		}
		return nil
	}
	defer func() { testRunHook = nil }()

	clk := clockfault.NewManual(time.Unix(1000, 0))
	cfg := fastConfig(t)
	cfg.QueueDepth = 64
	cfg.SubmitRate = 1
	cfg.SubmitBurst = 2
	cfg.Clock = clk
	s := newTestServer(t, cfg)
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	submit := func() *http.Response {
		body, _ := json.Marshal(traceSpec(""))
		resp, err := http.Post(srv.URL+"/jobs", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp
	}
	for i := 0; i < 2; i++ {
		if resp := submit(); resp.StatusCode != http.StatusAccepted {
			t.Fatalf("burst submit %d = %d", i, resp.StatusCode)
		}
	}
	resp := submit()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-rate submit = %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("rate-limited 429 without Retry-After")
	}
	// Advance the clock: a token refills and the next submission is admitted.
	clk.Advance(1500 * time.Millisecond)
	if resp := submit(); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("post-refill submit = %d, want 202", resp.StatusCode)
	}
}

// TestRequestIDPropagation: a client X-Request-ID is echoed and recorded on
// the job; an absent or malformed one is replaced with a generated id.
func TestRequestIDPropagation(t *testing.T) {
	s := newTestServer(t, fastConfig(t))
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	body, _ := json.Marshal(traceSpec("rid-job"))
	req, _ := http.NewRequest(http.MethodPost, srv.URL+"/jobs", bytes.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Request-ID", "drill-42")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get("X-Request-ID"); got != "drill-42" {
		t.Fatalf("echoed request id = %q, want drill-42", got)
	}
	v, ok := s.Job("rid-job")
	if !ok || v.RequestID != "drill-42" {
		t.Fatalf("job request id = %q, want drill-42", v.RequestID)
	}

	// Malformed ids are replaced, not propagated.
	req, _ = http.NewRequest(http.MethodGet, srv.URL+"/jobs", nil)
	req.Header.Set("X-Request-ID", "bad id with spaces")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get("X-Request-ID"); got == "" || got == "bad id with spaces" {
		t.Fatalf("malformed request id handled as %q", got)
	}
	waitState(t, s, "rid-job", StateDone)
}

// TestTokenBucket exercises the bucket directly: burst, exhaustion, refill,
// and the disabled (< 0 rate) pass-through.
func TestTokenBucket(t *testing.T) {
	clock := clockfault.NewManual(time.Unix(0, 0))
	b := newTokenBucket(2, 3, clock)
	for i := 0; i < 3; i++ {
		if ok, _ := b.take(); !ok {
			t.Fatalf("burst take %d refused", i)
		}
	}
	ok, wait := b.take()
	if ok || wait <= 0 {
		t.Fatalf("empty bucket take = %v wait %s", ok, wait)
	}
	clock.Advance(time.Second) // refills 2 tokens
	for i := 0; i < 2; i++ {
		if ok, _ := b.take(); !ok {
			t.Fatalf("post-refill take %d refused", i)
		}
	}
	if ok, _ := b.take(); ok {
		t.Fatal("bucket over-refilled")
	}
	if disabled := newTokenBucket(-1, 0, clock); disabled != nil {
		t.Fatal("negative rate should disable the bucket")
	}
	var nilBucket *tokenBucket
	if ok, _ := nilBucket.take(); !ok {
		t.Fatal("disabled bucket refused")
	}
}
