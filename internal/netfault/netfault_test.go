package netfault

import (
	"bytes"
	"encoding/json"
	"errors"
	"io"
	"net"
	"os"
	"testing"
	"time"
)

// echoServer accepts connections and echoes bytes back until closed.
func echoServer(t *testing.T) net.Listener {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				defer c.Close()
				_, _ = io.Copy(c, c)
			}()
		}
	}()
	t.Cleanup(func() { ln.Close() })
	return ln
}

func newProxy(t *testing.T, target string, sched Schedule, seed int64) *Proxy {
	t.Helper()
	p, err := New("127.0.0.1:0", target, sched, seed, &Options{Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { p.Close() })
	return p
}

// roundTrip sends msg through conn and reads len(msg) bytes back.
func roundTrip(t *testing.T, addr string, msg []byte, timeout time.Duration) ([]byte, error) {
	t.Helper()
	c, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, err
	}
	defer c.Close()
	_ = c.SetDeadline(time.Now().Add(timeout))
	if _, err := c.Write(msg); err != nil {
		return nil, err
	}
	got := make([]byte, len(msg))
	if _, err := io.ReadFull(c, got); err != nil {
		return nil, err
	}
	return got, nil
}

func TestPassThrough(t *testing.T) {
	ln := echoServer(t)
	p := newProxy(t, ln.Addr().String(), Schedule{}, 1)
	msg := []byte("hello through the fault-free proxy")
	got, err := roundTrip(t, p.Addr(), msg, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatalf("echo = %q, want %q", got, msg)
	}
}

func TestLatencyDelaysTraffic(t *testing.T) {
	ln := echoServer(t)
	const lat = 60 * time.Millisecond
	p := newProxy(t, ln.Addr().String(), Schedule{Base: Fault{Latency: Duration(lat)}}, 1)
	start := time.Now()
	if _, err := roundTrip(t, p.Addr(), []byte("ping"), 5*time.Second); err != nil {
		t.Fatal(err)
	}
	// Request and response each cross the proxy once: >= 2x latency.
	if rtt := time.Since(start); rtt < 2*lat {
		t.Fatalf("round trip took %s, want >= %s", rtt, 2*lat)
	}
}

func TestDropBlackholesConnection(t *testing.T) {
	ln := echoServer(t)
	p := newProxy(t, ln.Addr().String(), Schedule{Base: Fault{Drop: 1}}, 1)
	_, err := roundTrip(t, p.Addr(), []byte("into the void"), 200*time.Millisecond)
	var nerr net.Error
	if !errors.As(err, &nerr) || !nerr.Timeout() {
		t.Fatalf("blackholed round trip = %v, want deadline timeout", err)
	}
}

func TestPartitionWindow(t *testing.T) {
	ln := echoServer(t)
	sched := Schedule{Windows: []Window{{From: 0, To: Duration(300 * time.Millisecond), Partition: true}}}
	p := newProxy(t, ln.Addr().String(), sched, 1)

	// Inside the window: connection is reset (or refused) immediately.
	if _, err := roundTrip(t, p.Addr(), []byte("x"), 150*time.Millisecond); err == nil {
		t.Fatal("round trip succeeded during partition")
	}
	// After the window closes traffic flows again.
	time.Sleep(350 * time.Millisecond)
	got, err := roundTrip(t, p.Addr(), []byte("after"), 2*time.Second)
	if err != nil {
		t.Fatalf("post-partition round trip: %v", err)
	}
	if string(got) != "after" {
		t.Fatalf("post-partition echo = %q", got)
	}
}

func TestResetSeversConnection(t *testing.T) {
	ln := echoServer(t)
	p := newProxy(t, ln.Addr().String(), Schedule{Base: Fault{Reset: 1}}, 1)
	// Reset fires after at most 4096 forwarded bytes; push more than that and
	// require a connection error rather than a clean echo.
	msg := bytes.Repeat([]byte("R"), 64<<10)
	if _, err := roundTrip(t, p.Addr(), msg, 2*time.Second); err == nil {
		t.Fatal("64 KiB round trip survived reset=1")
	}
}

func TestBandwidthCapPacesTransfer(t *testing.T) {
	ln := echoServer(t)
	// 64 KiB/s cap, 8 KiB payload: the echo path alone needs >= ~125 ms.
	p := newProxy(t, ln.Addr().String(), Schedule{Base: Fault{BandwidthBPS: 64 << 10}}, 1)
	msg := bytes.Repeat([]byte("b"), 8<<10)
	start := time.Now()
	got, err := roundTrip(t, p.Addr(), msg, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatal("capped transfer corrupted payload")
	}
	if el := time.Since(start); el < 100*time.Millisecond {
		t.Fatalf("8 KiB at 64 KiB/s took %s, want >= 100ms", el)
	}
}

func TestScheduleAt(t *testing.T) {
	sched := Schedule{
		Base:   Fault{Latency: Duration(10 * time.Millisecond)},
		Period: Duration(1 * time.Second),
		Windows: []Window{
			{From: Duration(200 * time.Millisecond), To: Duration(400 * time.Millisecond), Partition: true},
			{From: Duration(500 * time.Millisecond), To: Duration(700 * time.Millisecond),
				Fault: Fault{Drop: 0.5}},
		},
	}
	if err := sched.Validate(); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		t    time.Duration
		drop float64
		part bool
	}{
		{0, 0, false},
		{250 * time.Millisecond, 0, true},
		{600 * time.Millisecond, 0.5, false},
		{900 * time.Millisecond, 0, false},
		{1250 * time.Millisecond, 0, true},    // wraps into the partition window
		{2600 * time.Millisecond, 0.5, false}, // wraps into the drop window
	}
	for _, c := range cases {
		f, part := sched.At(c.t)
		if part != c.part || f.Drop != c.drop {
			t.Errorf("At(%s) = drop %v partition %v, want drop %v partition %v",
				c.t, f.Drop, part, c.drop, c.part)
		}
	}
}

func TestScheduleValidate(t *testing.T) {
	bad := []Schedule{
		{Base: Fault{Drop: 1.5}},
		{Base: Fault{Reset: -0.1}},
		{Base: Fault{Latency: Duration(-time.Second)}},
		{Base: Fault{BandwidthBPS: -1}},
		{Windows: []Window{{From: Duration(time.Second), To: Duration(time.Second)}}},
		{Period: Duration(time.Second),
			Windows: []Window{{From: 0, To: Duration(2 * time.Second)}}},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("schedule %d validated: %+v", i, s)
		}
	}
}

func TestParseScheduleJSON(t *testing.T) {
	data := []byte(`{
		"base": {"latency": "20ms", "jitter": "10ms", "drop": 0.1},
		"period": "3s",
		"windows": [{"from": "1s", "to": "1500ms", "partition": true}]
	}`)
	s, err := ParseSchedule(data)
	if err != nil {
		t.Fatal(err)
	}
	if s.Base.Latency.Std() != 20*time.Millisecond || len(s.Windows) != 1 || !s.Windows[0].Partition {
		t.Fatalf("parsed schedule = %+v", s)
	}
	// Round-trips through MarshalJSON as duration strings.
	out, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(out, []byte(`"20ms"`)) {
		t.Fatalf("marshaled schedule lacks string durations: %s", out)
	}
	if _, err := ParseSchedule([]byte(`{"base": {"drop": 2}}`)); err == nil {
		t.Fatal("invalid schedule parsed")
	}
	if _, err := ParseSchedule([]byte(`{`)); err == nil {
		t.Fatal("truncated JSON parsed")
	}
}

// TestDeterministicDecisions: two proxies with the same seed make the same
// per-connection drop decisions in accept order.
func TestDeterministicDecisions(t *testing.T) {
	decisions := func(seed int64) []bool {
		out := make([]bool, 32)
		for seq := int64(1); seq <= 32; seq++ {
			out[seq-1] = connRNG(seed, seq, 0).Float64() < 0.5
		}
		return out
	}
	a, b := decisions(42), decisions(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("decision %d differs for identical seeds", i)
		}
	}
	c := decisions(43)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical decision streams")
	}
}

func TestCloseSeversLiveConnections(t *testing.T) {
	ln := echoServer(t)
	p := newProxy(t, ln.Addr().String(), Schedule{}, 1)
	c, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Write([]byte("keepalive")); err != nil {
		t.Fatal(err)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	_ = c.SetReadDeadline(time.Now().Add(2 * time.Second))
	buf := make([]byte, 64)
	for {
		if _, err := c.Read(buf); err != nil {
			if os.IsTimeout(err) {
				t.Fatal("connection survived proxy Close")
			}
			return // reset or EOF: severed as required
		}
	}
}
