// Package netfault is a seeded, schedule-driven chaos proxy for exercising
// the control plane under network failure. It sits between a client and a TCP
// server (the tecfand daemon in every drill this repo runs) and impairs
// traffic according to a Schedule: added latency with jitter, probabilistic
// connection blackholing, mid-stream connection resets, a bandwidth cap, and
// timed full-partition windows during which no connection survives.
//
// The proxy is usable two ways: in-process from tests (New on a 127.0.0.1:0
// listener, point the client at Addr) and standalone via cmd/tecfan-netchaos.
// All probabilistic decisions derive from a base seed plus a per-connection
// sequence number, so a drill's fault pattern is reproducible given the same
// connection order.
package netfault

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"tecfan/internal/schedfile"
)

// Duration is the shared schedule-file duration type ("30ms" strings or
// nanosecond numbers); the definition moved to schedfile so every schedule
// format can use it, and this alias keeps netfault's existing API intact.
type Duration = schedfile.Duration

// Fault is the set of impairments active at an instant.
type Fault struct {
	// Latency is added to every forwarded chunk, each direction.
	Latency Duration `json:"latency,omitempty"`
	// Jitter adds a uniform [0, Jitter) extra delay per chunk.
	Jitter Duration `json:"jitter,omitempty"`
	// Drop is the probability a new connection is blackholed: accepted,
	// never forwarded, never answered — the client's deadline must save it.
	Drop float64 `json:"drop,omitempty"`
	// Reset is the probability a connection is RST-closed mid-stream after a
	// random number of forwarded bytes.
	Reset float64 `json:"reset,omitempty"`
	// BandwidthBPS caps forwarded bytes/second per direction (0 = unlimited).
	BandwidthBPS int64 `json:"bandwidth_bps,omitempty"`
}

func (f Fault) validate() error {
	if f.Latency < 0 || f.Jitter < 0 {
		return fmt.Errorf("netfault: latency/jitter must be non-negative")
	}
	if f.Drop < 0 || f.Drop > 1 {
		return fmt.Errorf("netfault: drop probability %v outside [0,1]", f.Drop)
	}
	if f.Reset < 0 || f.Reset > 1 {
		return fmt.Errorf("netfault: reset probability %v outside [0,1]", f.Reset)
	}
	if f.BandwidthBPS < 0 {
		return fmt.Errorf("netfault: bandwidth must be non-negative")
	}
	return nil
}

// Window overrides the base fault over [From, To) measured from proxy start
// (modulo Schedule.Period when set). A Partition window severs everything:
// new connections are reset at accept and established ones are reset at
// their next forwarded chunk.
type Window struct {
	From      Duration `json:"from"`
	To        Duration `json:"to"`
	Partition bool     `json:"partition,omitempty"`
	Fault     Fault    `json:"fault,omitempty"`
}

// Schedule drives the proxy: a base fault, override windows, and an optional
// repeat period. With Period > 0 the timeline wraps, so a short aggressive
// cycle (say a 500 ms partition every 3 s) runs for as long as the drill does.
type Schedule struct {
	Base    Fault    `json:"base"`
	Windows []Window `json:"windows,omitempty"`
	Period  Duration `json:"period,omitempty"`
}

// Validate rejects malformed schedules eagerly, before any traffic flows.
func (s Schedule) Validate() error {
	if err := s.Base.validate(); err != nil {
		return fmt.Errorf("base: %w", err)
	}
	if s.Period < 0 {
		return fmt.Errorf("netfault: period must be non-negative")
	}
	for i, w := range s.Windows {
		if w.From < 0 || w.To <= w.From {
			return fmt.Errorf("netfault: window %d: need 0 <= from < to, got [%s, %s)", i, w.From.Std(), w.To.Std())
		}
		if s.Period > 0 && w.To.Std() > s.Period.Std() {
			return fmt.Errorf("netfault: window %d ends at %s, past period %s", i, w.To.Std(), s.Period.Std())
		}
		if err := w.Fault.validate(); err != nil {
			return fmt.Errorf("window %d: %w", i, err)
		}
	}
	return nil
}

// At resolves the schedule at elapsed time t: the active fault and whether a
// partition is in force. Later windows win when windows overlap.
func (s Schedule) At(t time.Duration) (Fault, bool) {
	if s.Period > 0 {
		t %= s.Period.Std()
	}
	f, part := s.Base, false
	for _, w := range s.Windows {
		if t >= w.From.Std() && t < w.To.Std() {
			if w.Partition {
				part = true
			}
			f = w.Fault
		}
	}
	return f, part
}

// ParseSchedule decodes a JSON schedule and validates it.
func ParseSchedule(data []byte) (Schedule, error) {
	var s Schedule
	if err := json.Unmarshal(data, &s); err != nil {
		return Schedule{}, fmt.Errorf("netfault: parsing schedule: %w", err)
	}
	if err := s.Validate(); err != nil {
		return Schedule{}, err
	}
	return s, nil
}

// ParseScheduleFile loads and validates a schedule from a JSON file through
// the shared schedfile loader, so errors carry the file path and window index.
func ParseScheduleFile(path string) (Schedule, error) {
	var s Schedule
	// Validate has a value receiver, so bind it after decoding via a closure.
	if err := schedfile.Load(path, &s, func() error { return s.Validate() }); err != nil {
		return Schedule{}, err
	}
	return s, nil
}

// Proxy is a running chaos proxy.
type Proxy struct {
	target string
	sched  Schedule
	seed   int64
	logf   func(format string, args ...any)
	now    func() time.Time // test seam

	ln    net.Listener
	start time.Time
	seq   atomic.Int64

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup
}

// Options tunes a Proxy beyond the schedule.
type Options struct {
	// Logf receives per-connection fault decisions (default: silent).
	Logf func(format string, args ...any)
}

// New validates the schedule, starts listening on listenAddr (host:0 picks a
// free port — the in-process test pattern), and begins serving. Close stops
// it and severs every live connection.
func New(listenAddr, target string, sched Schedule, seed int64, opts *Options) (*Proxy, error) {
	if err := sched.Validate(); err != nil {
		return nil, err
	}
	if _, _, err := net.SplitHostPort(target); err != nil {
		return nil, fmt.Errorf("netfault: target %q: %w", target, err)
	}
	ln, err := net.Listen("tcp", listenAddr)
	if err != nil {
		return nil, fmt.Errorf("netfault: %w", err)
	}
	p := &Proxy{
		target: target,
		sched:  sched,
		seed:   seed,
		logf:   func(string, ...any) {},
		now:    time.Now,
		ln:     ln,
		start:  time.Now(),
		conns:  map[net.Conn]struct{}{},
	}
	if opts != nil && opts.Logf != nil {
		p.logf = opts.Logf
	}
	p.wg.Add(1)
	go p.serve()
	return p, nil
}

// Addr returns the proxy's listen address ("127.0.0.1:port").
func (p *Proxy) Addr() string { return p.ln.Addr().String() }

// Close stops accepting, resets every live connection, and waits for the
// connection handlers to exit.
func (p *Proxy) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil
	}
	p.closed = true
	for c := range p.conns {
		hardClose(c)
	}
	p.mu.Unlock()
	err := p.ln.Close()
	p.wg.Wait()
	return err
}

func (p *Proxy) elapsed() time.Duration { return p.now().Sub(p.start) }

func (p *Proxy) track(c net.Conn) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return false
	}
	p.conns[c] = struct{}{}
	return true
}

func (p *Proxy) untrack(c net.Conn) {
	p.mu.Lock()
	delete(p.conns, c)
	p.mu.Unlock()
}

func (p *Proxy) serve() {
	defer p.wg.Done()
	for {
		c, err := p.ln.Accept()
		if err != nil {
			return // listener closed
		}
		seq := p.seq.Add(1)
		p.wg.Add(1)
		go func() {
			defer p.wg.Done()
			p.handle(c, seq)
		}()
	}
}

// hardClose resets a TCP connection (SetLinger 0 → RST) rather than closing
// it politely; the peer sees ECONNRESET, the failure mode the client's retry
// path must absorb.
func hardClose(c net.Conn) {
	if tc, ok := c.(*net.TCPConn); ok {
		_ = tc.SetLinger(0)
	}
	_ = c.Close()
}

// connRNG derives the per-connection random stream: decisions depend only on
// the base seed and the connection's accept sequence number.
func connRNG(seed, seq, salt int64) *rand.Rand {
	return rand.New(rand.NewSource(seed ^ (seq * 0x9E3779B97F4A7C) ^ (salt << 40)))
}

func (p *Proxy) handle(client net.Conn, seq int64) {
	if !p.track(client) {
		hardClose(client)
		return
	}
	defer p.untrack(client)
	defer client.Close()

	f, partitioned := p.sched.At(p.elapsed())
	if partitioned {
		p.logf("netfault: conn %d: partition active, resetting", seq)
		hardClose(client)
		return
	}
	rng := connRNG(p.seed, seq, 0)
	if rng.Float64() < f.Drop {
		p.logf("netfault: conn %d: blackholed", seq)
		p.blackhole(client)
		return
	}
	server, err := net.DialTimeout("tcp", p.target, 5*time.Second)
	if err != nil {
		p.logf("netfault: conn %d: target unreachable: %v", seq, err)
		hardClose(client)
		return
	}
	if !p.track(server) {
		hardClose(server)
		return
	}
	defer p.untrack(server)
	defer server.Close()

	// A reset, when drawn, fires after a random number of forwarded bytes so
	// it lands anywhere in the exchange: mid-request, mid-response, between.
	resetAfter := int64(-1)
	if rng.Float64() < f.Reset {
		resetAfter = 1 + rng.Int63n(4096)
		p.logf("netfault: conn %d: will reset after %d bytes", seq, resetAfter)
	}
	var forwarded atomic.Int64

	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		p.pump(server, client, seq, connRNG(p.seed, seq, 1), resetAfter, &forwarded)
	}()
	go func() {
		defer wg.Done()
		p.pump(client, server, seq, connRNG(p.seed, seq, 2), resetAfter, &forwarded)
	}()
	wg.Wait()
}

// blackhole swallows a connection: reads are discarded, nothing is ever
// written back. The connection ends when the client gives up (its deadline)
// or the proxy closes.
func (p *Proxy) blackhole(client net.Conn) {
	_, _ = io.Copy(io.Discard, client)
}

// pump forwards src→dst chunk by chunk, re-resolving the schedule per chunk
// so latency changes, bandwidth caps, and partition windows apply to
// connections already in flight.
func (p *Proxy) pump(dst, src net.Conn, seq int64, rng *rand.Rand, resetAfter int64, forwarded *atomic.Int64) {
	buf := make([]byte, 16<<10)
	for {
		n, err := src.Read(buf)
		if n > 0 {
			f, partitioned := p.sched.At(p.elapsed())
			if partitioned {
				p.logf("netfault: conn %d: partition cut mid-stream", seq)
				hardClose(src)
				hardClose(dst)
				return
			}
			total := forwarded.Add(int64(n))
			if resetAfter >= 0 && total >= resetAfter {
				p.logf("netfault: conn %d: reset after %d bytes", seq, total)
				hardClose(src)
				hardClose(dst)
				return
			}
			if d := chunkDelay(f, rng, n); d > 0 {
				time.Sleep(d)
			}
			if _, werr := dst.Write(buf[:n]); werr != nil {
				return
			}
		}
		if err != nil {
			// Half-close politely so the peer's read sees EOF; the other
			// pump direction keeps draining until its own EOF.
			if tc, ok := dst.(*net.TCPConn); ok {
				_ = tc.CloseWrite()
			}
			return
		}
	}
}

// chunkDelay is the per-chunk impairment delay: fixed latency, uniform
// jitter, and bandwidth pacing for the chunk's size.
func chunkDelay(f Fault, rng *rand.Rand, n int) time.Duration {
	d := f.Latency.Std()
	if j := f.Jitter.Std(); j > 0 {
		d += time.Duration(rng.Int63n(int64(j)))
	}
	if f.BandwidthBPS > 0 {
		d += time.Duration(int64(n) * int64(time.Second) / f.BandwidthBPS)
	}
	return d
}
