// Package testenv provides shared fixtures for tests across the TECfan
// packages: prebuilt quad/SCC16 environments (chip, fan, thermal network,
// DVFS table, leakage, TEC array) and small synthetic benchmarks that finish
// in a few simulated milliseconds.
package testenv

import (
	"tecfan/internal/fan"
	"tecfan/internal/floorplan"
	"tecfan/internal/power"
	"tecfan/internal/sim"
	"tecfan/internal/tec"
	"tecfan/internal/thermal"
	"tecfan/internal/workload"
)

// Env bundles one chip's model stack.
type Env struct {
	Chip *floorplan.Chip
	Fan  *fan.Model
	NW   *thermal.Network
	DVFS *power.DVFSTable
	Leak power.Leakage
	TECs []tec.Placement
}

// NewQuad builds a 4-core environment.
func NewQuad() *Env {
	chip := floorplan.NewQuad()
	fm := fan.DynatronR16()
	return &Env{
		Chip: chip,
		Fan:  fm,
		NW:   thermal.NewNetwork(chip, fm, thermal.DefaultParams()),
		DVFS: power.SCCTable(),
		Leak: power.DefaultLeakage(),
		TECs: tec.Array(chip, tec.DefaultDevice()),
	}
}

// NewSCC16 builds the full 16-core environment.
func NewSCC16() *Env {
	chip := floorplan.NewSCC16()
	fm := fan.DynatronR16()
	return &Env{
		Chip: chip,
		Fan:  fm,
		NW:   thermal.NewNetwork(chip, fm, thermal.DefaultParams()),
		DVFS: power.SCCTable(),
		Leak: power.DefaultLeakage(),
		TECs: tec.Array(chip, tec.DefaultDevice()),
	}
}

// MiniBench returns a short uniform benchmark running on the first nActive
// cores with the given per-core dynamic power and duration (ms of work at
// max DVFS).
func MiniBench(nActive int, coreDyn, durMS float64) *workload.Benchmark {
	active := make([]int, nActive)
	for i := range active {
		active[i] = i
	}
	return &workload.Benchmark{
		Name:         "mini",
		Threads:      nActive,
		TotalInst:    float64(nActive) * 1e9 * durMS / 1000,
		ActiveCores:  active,
		Weights:      workload.WeightsFromDensity(workload.UniformMults()),
		CoreDyn:      coreDyn,
		IdleDyn:      0.3,
		BaseIPS:      1e9,
		Phases:       []workload.Phase{{Frac: 1, Activity: 1}},
		TargetTimeMS: durMS,
	}
}

// HotBench is MiniBench with power concentrated in the execution logic,
// producing strong local hot spots (lu-like).
func HotBench(nActive int, coreDyn, durMS float64) *workload.Benchmark {
	b := MiniBench(nActive, coreDyn, durMS)
	b.Weights = workload.WeightsFromDensity(workload.DensityMults{
		Logic: 1.5, Array: 0.7, Wire: 0.8, VR: 0.45,
		Overrides: map[string]float64{"FPMul": 7.0, "IntExec": 5.0},
	})
	return b
}

// Config returns a sim.Config over the environment with fast test timing.
func (e *Env) Config(b *workload.Benchmark, threshold float64) sim.Config {
	return sim.Config{
		Chip: e.Chip, Fan: e.Fan, Network: e.NW, DVFS: e.DVFS, Leak: e.Leak,
		TECs: e.TECs, Bench: b, Threshold: threshold,
		FanLevel: 1, Step: 100e-6, ControlPeriod: 500e-6,
	}
}

// BasePeak returns the steady-state peak die temperature of the benchmark's
// base scenario (max DVFS, given fan level, TECs off) — the per-workload
// threshold rule of §IV.
func (e *Env) BasePeak(b *workload.Benchmark, fanLevel int) (float64, error) {
	p := make([]float64, len(e.Chip.Components))
	for core := 0; core < e.Chip.NumCores(); core++ {
		b.AddDynPower(e.Chip, core, 0.5, 1.0, p)
	}
	leak := make([]float64, len(e.Chip.Components))
	temps := make([]float64, e.NW.NumNodes())
	for i := range temps {
		temps[i] = 70
	}
	// Two leakage refinement passes.
	for pass := 0; pass < 2; pass++ {
		e.Leak.PerComponent(e.Chip, temps, power.ModelQuad, leak)
		total := make([]float64, len(p))
		for i := range p {
			total[i] = p[i] + leak[i]
		}
		t, err := e.NW.Steady(total, fanLevel, nil)
		if err != nil {
			return 0, err
		}
		temps = t
	}
	_, peak := e.NW.PeakDie(temps)
	return peak, nil
}
