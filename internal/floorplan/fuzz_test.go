package floorplan

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadFLP hardens the HotSpot parser against malformed input: it must
// return an error or a well-formed unit list, never panic, and every
// accepted unit must have positive dimensions.
func FuzzReadFLP(f *testing.F) {
	f.Add("unit 1.0e-3 1.0e-3 0 0\n")
	f.Add("# comment\nu1 2e-3 1e-3 0 0\nu2 1e-3 1e-3 2e-3 0\n")
	f.Add("")
	f.Add("a b c d e\n")
	f.Add("x 1 1 -5 -5\n")
	f.Add("n 1e300 1e300 1e300 1e300\n")
	var chip bytes.Buffer
	if err := WriteFLP(&chip, NewQuad()); err != nil {
		f.Fatal(err)
	}
	f.Add(chip.String())
	f.Fuzz(func(t *testing.T, input string) {
		units, err := ReadFLP(strings.NewReader(input))
		if err != nil {
			return
		}
		if len(units) == 0 {
			t.Fatal("accepted input produced no units")
		}
		for _, u := range units {
			if u.W <= 0 || u.H <= 0 {
				t.Fatalf("accepted unit with non-positive size: %+v", u)
			}
		}
	})
}
