package floorplan

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestTileHas18Components(t *testing.T) {
	tile := TileComponents()
	if len(tile) != ComponentsPerTile {
		t.Fatalf("tile has %d components, want %d", len(tile), ComponentsPerTile)
	}
	seen := map[string]bool{}
	for _, c := range tile {
		if seen[c.Name] {
			t.Fatalf("duplicate component name %q", c.Name)
		}
		seen[c.Name] = true
		if c.Core != -1 {
			t.Fatalf("tile-local component %q has core %d", c.Name, c.Core)
		}
	}
}

func TestTileAreaConservation(t *testing.T) {
	var sum float64
	for _, c := range TileComponents() {
		sum += c.Area()
	}
	want := TileW * TileH
	if math.Abs(sum-want) > 1e-9 {
		t.Fatalf("component areas sum to %.6f mm², tile is %.6f mm²", sum, want)
	}
}

func TestTileWithinBounds(t *testing.T) {
	for _, c := range TileComponents() {
		if c.X < -1e-12 || c.Y < -1e-12 || c.X+c.W > TileW+1e-12 || c.Y+c.H > TileH+1e-12 {
			t.Fatalf("component %q escapes the tile: x=%v y=%v w=%v h=%v", c.Name, c.X, c.Y, c.W, c.H)
		}
		if c.W <= 0 || c.H <= 0 {
			t.Fatalf("component %q has non-positive size", c.Name)
		}
	}
}

func TestVRAreaMatchesPaper(t *testing.T) {
	for _, c := range TileComponents() {
		if c.Name == "VR" {
			if math.Abs(c.Area()-2.2) > 1e-9 {
				t.Fatalf("VR area = %.3f mm², paper budgets 2.2 mm²", c.Area())
			}
			return
		}
	}
	t.Fatal("no VR component")
}

func TestSCC16Dimensions(t *testing.T) {
	chip := NewSCC16()
	if chip.NumCores() != 16 {
		t.Fatalf("NumCores = %d", chip.NumCores())
	}
	if math.Abs(chip.W-10.4) > 1e-9 || math.Abs(chip.H-14.4) > 1e-9 {
		t.Fatalf("chip is %.2f×%.2f mm, paper says 10.4×14.4", chip.W, chip.H)
	}
	if len(chip.Components) != 16*ComponentsPerTile {
		t.Fatalf("chip has %d components", len(chip.Components))
	}
	if math.Abs(chip.TotalComponentArea()-chip.Area()) > 1e-6 {
		t.Fatalf("area leak: components %.4f vs die %.4f", chip.TotalComponentArea(), chip.Area())
	}
}

func TestQuadChip(t *testing.T) {
	chip := NewQuad()
	if chip.NumCores() != 4 {
		t.Fatalf("NumCores = %d", chip.NumCores())
	}
	if chip.Overlaps() {
		t.Fatal("quad chip has overlapping components")
	}
}

func TestNewChipPanicsOnBadGrid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewChip(0, 4)
}

func TestNoOverlaps(t *testing.T) {
	if NewSCC16().Overlaps() {
		t.Fatal("SCC16 floorplan has overlapping components")
	}
}

func TestLookup(t *testing.T) {
	chip := NewSCC16()
	for core := 0; core < 16; core++ {
		i := chip.Lookup(core, "FPMul")
		if i < 0 {
			t.Fatalf("FPMul missing on core %d", core)
		}
		if chip.Components[i].Core != core || chip.CoreOf(i) != core {
			t.Fatalf("Lookup returned wrong core")
		}
	}
	if chip.Lookup(0, "NoSuch") != -1 {
		t.Fatal("Lookup of missing component should be -1")
	}
	if chip.Lookup(99, "FPMul") != -1 {
		t.Fatal("Lookup of missing core should be -1")
	}
}

func TestCoreComponents(t *testing.T) {
	chip := NewSCC16()
	for core := 0; core < 16; core++ {
		idx := chip.CoreComponents(core)
		if len(idx) != ComponentsPerTile {
			t.Fatalf("core %d has %d components", core, len(idx))
		}
		for _, i := range idx {
			if chip.Components[i].Core != core {
				t.Fatalf("component %d not owned by core %d", i, core)
			}
		}
	}
}

func TestAdjacencySymmetricAndOrdered(t *testing.T) {
	chip := NewQuad()
	edges := chip.Adjacency()
	if len(edges) == 0 {
		t.Fatal("no adjacency edges")
	}
	seen := map[[2]int]bool{}
	for _, e := range edges {
		if e.A >= e.B {
			t.Fatalf("edge not ordered: %v", e)
		}
		if e.Length <= 0 {
			t.Fatalf("edge with non-positive length: %v", e)
		}
		k := [2]int{e.A, e.B}
		if seen[k] {
			t.Fatalf("duplicate edge %v", e)
		}
		seen[k] = true
	}
}

func TestAdjacencyKnownNeighbours(t *testing.T) {
	chip := NewChip(1, 1)
	find := func(name string) int {
		i := chip.Lookup(0, name)
		if i < 0 {
			t.Fatalf("missing %s", name)
		}
		return i
	}
	adjacent := func(a, b int) bool {
		for _, e := range chip.Adjacency() {
			if (e.A == a && e.B == b) || (e.A == b && e.B == a) {
				return true
			}
		}
		return false
	}
	// FPMul spans row 1, so it touches everything in rows 0 and 2 of the
	// left column.
	fpmul := find("FPMul")
	for _, n := range []string{"FPMap", "IntMap", "IntQ", "IntReg", "FPReg", "FPQ", "LdStQ", "IntExec", "VR"} {
		if !adjacent(fpmul, find(n)) {
			t.Fatalf("FPMul should touch %s", n)
		}
	}
	// Non-neighbours.
	if adjacent(fpmul, find("Router")) {
		t.Fatal("FPMul must not touch Router")
	}
	if adjacent(find("FPMap"), find("IntQ")) {
		t.Fatal("FPMap and IntQ only share a corner, not an edge")
	}
}

func TestInterTileAdjacency(t *testing.T) {
	chip := NewChip(1, 2) // two tiles side by side
	// Core 0's VR column (right edge) must touch core 1's left-column blocks.
	vr0 := chip.Lookup(0, "VR")
	fpmap1 := chip.Lookup(1, "FPMap")
	found := false
	for _, e := range chip.Adjacency() {
		if (e.A == vr0 && e.B == fpmap1) || (e.A == fpmap1 && e.B == vr0) {
			found = true
		}
	}
	if !found {
		t.Fatal("tiles are thermally disconnected: c0/VR should touch c1/FPMap")
	}
}

func TestSharedEdgeLengths(t *testing.T) {
	a := Component{X: 0, Y: 0, W: 1, H: 1}
	b := Component{X: 1, Y: 0.5, W: 1, H: 1}
	if got := sharedEdge(a, b); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("sharedEdge = %v, want 0.5", got)
	}
	c := Component{X: 5, Y: 5, W: 1, H: 1}
	if got := sharedEdge(a, c); got != 0 {
		t.Fatalf("distant rectangles share %v", got)
	}
	// Corner touch only.
	d := Component{X: 1, Y: 1, W: 1, H: 1}
	if got := sharedEdge(a, d); got != 0 {
		t.Fatalf("corner touch shares %v", got)
	}
}

func TestComponentHelpers(t *testing.T) {
	c := Component{Name: "X", Core: 3, X: 1, Y: 2, W: 2, H: 4}
	if c.Area() != 8 {
		t.Fatalf("Area = %v", c.Area())
	}
	if c.CenterX() != 2 || c.CenterY() != 4 {
		t.Fatalf("center = (%v,%v)", c.CenterX(), c.CenterY())
	}
	if c.ID() != "c3/X" {
		t.Fatalf("ID = %q", c.ID())
	}
}

func TestKindString(t *testing.T) {
	cases := map[Kind]string{KindLogic: "logic", KindArray: "array", KindWire: "wire", KindVR: "vr", Kind(9): "kind(9)"}
	for k, want := range cases {
		if k.String() != want {
			t.Fatalf("Kind(%d).String() = %q, want %q", int(k), k.String(), want)
		}
	}
}

func TestComponentNames(t *testing.T) {
	names := ComponentNames()
	if len(names) != ComponentsPerTile {
		t.Fatalf("ComponentNames len = %d", len(names))
	}
	want := map[string]bool{"FPMul": true, "L2": true, "Router": true, "VR": true, "ICache": true}
	for _, n := range names {
		delete(want, n)
	}
	if len(want) != 0 {
		t.Fatalf("missing expected names: %v", want)
	}
}

// Property: for arbitrary chip grids, area is conserved, nothing overlaps,
// and every component's neighbours are mutual.
func TestChipInvariantsProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rows := 1 + rng.Intn(3)
		cols := 1 + rng.Intn(3)
		chip := NewChip(rows, cols)
		if chip.Overlaps() {
			return false
		}
		if math.Abs(chip.TotalComponentArea()-chip.Area()) > 1e-6 {
			return false
		}
		// Every core has exactly 18 components.
		for core := 0; core < chip.NumCores(); core++ {
			if len(chip.CoreComponents(core)) != ComponentsPerTile {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
