package floorplan

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestFLPRoundTrip(t *testing.T) {
	chip := NewQuad()
	var buf bytes.Buffer
	if err := WriteFLP(&buf, chip); err != nil {
		t.Fatal(err)
	}
	units, err := ReadFLP(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(units) != len(chip.Components) {
		t.Fatalf("%d units, want %d", len(units), len(chip.Components))
	}
	// Every component must round-trip geometrically (name-keyed).
	byName := map[string]FLPUnit{}
	for _, u := range units {
		byName[u.Name] = u
	}
	for _, c := range chip.Components {
		name := strings.ReplaceAll(c.ID(), "/", "_")
		u, ok := byName[name]
		if !ok {
			t.Fatalf("unit %q missing after round trip", name)
		}
		if math.Abs(u.X-c.X) > 1e-6 || math.Abs(u.Y-c.Y) > 1e-6 ||
			math.Abs(u.W-c.W) > 1e-6 || math.Abs(u.H-c.H) > 1e-6 {
			t.Fatalf("%s moved: (%v,%v,%v,%v) vs (%v,%v,%v,%v)",
				name, u.X, u.Y, u.W, u.H, c.X, c.Y, c.W, c.H)
		}
	}
}

func TestReadFLPHotSpotSample(t *testing.T) {
	// A fragment in stock HotSpot ev6.flp style: metres, bottom-left origin.
	const flp = `
# comment line
Icache	3.175000e-03	3.175000e-03	0.000000e+00	1.270000e-02
Dcache	3.175000e-03	3.175000e-03	3.175000e-03	1.270000e-02
FPMul	2.000000e-03	1.000000e-03	0.000000e+00	0.000000e+00
`
	units, err := ReadFLP(strings.NewReader(flp))
	if err != nil {
		t.Fatal(err)
	}
	if len(units) != 3 {
		t.Fatalf("%d units", len(units))
	}
	// Die height inferred: top of the caches = 12.7 + 3.175 = 15.875 mm.
	// Icache sits at the TOP in our convention (y = 0).
	if units[0].Name != "Icache" || math.Abs(units[0].Y) > 1e-9 {
		t.Fatalf("Icache at y=%v, want 0 (top)", units[0].Y)
	}
	// FPMul at the bottom: y = 15.875 − 1 = 14.875 mm.
	if math.Abs(units[2].Y-14.875) > 1e-9 {
		t.Fatalf("FPMul y = %v, want 14.875", units[2].Y)
	}
	if math.Abs(units[0].W-3.175) > 1e-9 {
		t.Fatalf("Icache width %v mm", units[0].W)
	}
}

func TestReadFLPErrors(t *testing.T) {
	cases := map[string]string{
		"too few fields": "a 1 2 3\n",
		"bad number":     "a x 2 3 4\n",
		"zero dimension": "a 0 2 3 4\n",
		"empty":          "# only a comment\n",
	}
	for name, flp := range cases {
		if _, err := ReadFLP(strings.NewReader(flp)); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
}

func TestChipFromFLP(t *testing.T) {
	const flp = `
core_Icache	2.0e-03	1.0e-03	0.0e+00	1.0e-03
core_FPMul	2.0e-03	1.0e-03	0.0e+00	0.0e+00
router0	1.0e-03	2.0e-03	2.0e-03	0.0e+00
`
	units, err := ReadFLP(strings.NewReader(flp))
	if err != nil {
		t.Fatal(err)
	}
	chip, err := ChipFromFLP(units)
	if err != nil {
		t.Fatal(err)
	}
	if len(chip.Components) != 3 {
		t.Fatalf("%d components", len(chip.Components))
	}
	if math.Abs(chip.W-3.0) > 1e-9 || math.Abs(chip.H-2.0) > 1e-9 {
		t.Fatalf("die %v x %v mm, want 3 x 2", chip.W, chip.H)
	}
	// Kind inference.
	if i := chip.Lookup(0, "core_Icache"); chip.Components[i].Kind != KindArray {
		t.Fatal("Icache not classified as array")
	}
	if i := chip.Lookup(0, "router0"); chip.Components[i].Kind != KindWire {
		t.Fatal("router not classified as wire")
	}
	if i := chip.Lookup(0, "core_FPMul"); chip.Components[i].Kind != KindLogic {
		t.Fatal("FPMul not classified as logic")
	}
	// Adjacency works on the imported plan.
	if len(chip.Adjacency()) == 0 {
		t.Fatal("imported floorplan has no adjacency")
	}
	if chip.Overlaps() {
		t.Fatal("imported floorplan overlaps")
	}
}

func TestChipFromFLPDuplicate(t *testing.T) {
	units := []FLPUnit{
		{Name: "a", W: 1, H: 1},
		{Name: "a", W: 1, H: 1, X: 1},
	}
	if _, err := ChipFromFLP(units); err == nil {
		t.Fatal("duplicate unit names accepted")
	}
	if _, err := ChipFromFLP(nil); err == nil {
		t.Fatal("empty unit list accepted")
	}
}
