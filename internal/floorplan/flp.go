package floorplan

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"tecfan/internal/floats"
)

// HotSpot .flp interop. HotSpot (the paper's §IV-B thermal simulator) reads
// floorplans as whitespace-separated lines of
//
//	<unit-name> <width-m> <height-m> <left-x-m> <bottom-y-m>
//
// with '#' comments, dimensions in metres, and a bottom-left origin. This
// file converts between that format and our Chip (millimetres, top-left
// origin), so floorplans can round-trip with real HotSpot assets: our core
// tiles can be analysed by stock HotSpot, and HotSpot floorplans can drive
// this library's thermal and placement machinery.

// WriteFLP emits the chip's components in HotSpot .flp format. Names are
// the globally unique "cN_Name" identifiers (HotSpot forbids '/').
func WriteFLP(w io.Writer, chip *Chip) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# %dx%d-tile CMP floorplan, %g x %g mm (tecfan)\n",
		chip.TileRows, chip.TileCols, chip.W, chip.H)
	fmt.Fprintln(bw, "# unit-name\twidth\theight\tleft-x\tbottom-y")
	for _, c := range chip.Components {
		// HotSpot's origin is bottom-left; ours top-left.
		bottom := chip.H - (c.Y + c.H)
		fmt.Fprintf(bw, "c%d_%s\t%.6e\t%.6e\t%.6e\t%.6e\n",
			c.Core, c.Name, c.W*mmToM, c.H*mmToM, c.X*mmToM, bottom*mmToM)
	}
	return bw.Flush()
}

const mmToM = 1e-3

// FLPUnit is one parsed HotSpot floorplan unit in this library's
// conventions (mm, top-left origin).
type FLPUnit struct {
	Name string
	X, Y float64 // top-left, mm
	W, H float64 // mm
}

// ReadFLP parses a HotSpot .flp stream. The die height must be supplied by
// the caller only when the file leaves it ambiguous; passing 0 infers it
// from the bounding box of the units.
func ReadFLP(r io.Reader) ([]FLPUnit, error) {
	sc := bufio.NewScanner(r)
	type raw struct {
		name          string
		w, h, x, bttm float64
	}
	var rows []raw
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		if len(fields) < 5 {
			return nil, fmt.Errorf("floorplan: flp line %d: %d fields, want ≥5", line, len(fields))
		}
		var vals [4]float64
		for i := 0; i < 4; i++ {
			v, err := strconv.ParseFloat(fields[i+1], 64)
			if err != nil {
				return nil, fmt.Errorf("floorplan: flp line %d field %d: %w", line, i+2, err)
			}
			if i < 2 && v <= 0 {
				return nil, fmt.Errorf("floorplan: flp line %d: non-positive dimension %v", line, v)
			}
			vals[i] = v
		}
		rows = append(rows, raw{name: fields[0], w: vals[0], h: vals[1], x: vals[2], bttm: vals[3]})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("floorplan: empty flp")
	}
	// Infer the die height from the bounding box to flip the y axis.
	var dieH float64
	for _, r := range rows {
		if top := r.bttm + r.h; top > dieH {
			dieH = top
		}
	}
	units := make([]FLPUnit, len(rows))
	for i, r := range rows {
		units[i] = FLPUnit{
			Name: r.name,
			W:    r.w / mmToM,
			H:    r.h / mmToM,
			X:    r.x / mmToM,
			Y:    (dieH - (r.bttm + r.h)) / mmToM,
		}
	}
	return units, nil
}

// ChipFromFLP reconstructs a Chip-like single-"core" floorplan from parsed
// units: every unit becomes a component of core 0 with kind inferred from
// its name (cache/reg/tlb-ish names become arrays). It lets HotSpot
// floorplans drive the thermal network directly.
func ChipFromFLP(units []FLPUnit) (*Chip, error) {
	if len(units) == 0 {
		return nil, fmt.Errorf("floorplan: no units")
	}
	var w, h float64
	for _, u := range units {
		if u.X+u.W > w {
			w = u.X + u.W
		}
		if u.Y+u.H > h {
			h = u.Y + u.H
		}
	}
	chip := &Chip{
		TileRows: 1, TileCols: 1,
		W: w, H: h,
		index: make(map[string]int),
	}
	seen := map[string]bool{}
	for _, u := range units {
		if seen[u.Name] {
			return nil, fmt.Errorf("floorplan: duplicate unit %q", u.Name)
		}
		seen[u.Name] = true
		comp := Component{
			Name: u.Name,
			Core: 0,
			Kind: kindFromName(u.Name),
			X:    u.X, Y: u.Y, W: u.W, H: u.H,
		}
		chip.index[comp.ID()] = len(chip.Components)
		chip.Components = append(chip.Components, comp)
	}
	// Deterministic order: sort by (Y, X) so downstream band extraction is
	// stable regardless of file order.
	sort.SliceStable(chip.Components, func(a, b int) bool {
		ca, cb := chip.Components[a], chip.Components[b]
		if !floats.Same(ca.Y, cb.Y) {
			return ca.Y < cb.Y
		}
		return ca.X < cb.X
	})
	for i, c := range chip.Components {
		chip.index[c.ID()] = i
	}
	return chip, nil
}

// kindFromName guesses a component kind from typical HotSpot unit names.
func kindFromName(name string) Kind {
	n := strings.ToLower(name)
	switch {
	case strings.Contains(n, "cache") || strings.Contains(n, "reg") ||
		strings.Contains(n, "tlb") || strings.Contains(n, "btb") ||
		strings.Contains(n, "bpred") || strings.Contains(n, "l2") ||
		strings.Contains(n, "itb") || strings.Contains(n, "dtb"):
		return KindArray
	case strings.Contains(n, "router") || strings.Contains(n, "link") ||
		strings.Contains(n, "bus"):
		return KindWire
	case strings.Contains(n, "vr") || strings.Contains(n, "regulator"):
		return KindVR
	default:
		return KindLogic
	}
}
