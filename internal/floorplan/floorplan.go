// Package floorplan models the chip geometry of the TECfan target system: a
// 16-core CMP patterned on the Intel Single-chip Cloud Computer (SCC)
// floorplan, where each 2.6 mm × 3.6 mm core tile carries 18 components laid
// out after the Alpha 21264 (paper §IV-A, Fig. 3). The thermal network,
// power model, and TEC placement are all derived from these rectangles.
//
// Geometry is in millimetres with the origin at the top-left of the chip,
// x growing right and y growing down (matching the paper's figure).
package floorplan

import (
	"fmt"
	"math"
)

// Kind classifies a component for the power model: logic blocks have high
// dynamic power density, arrays (caches, register files) are leakier per
// area, wires/uncore sit in between.
type Kind int

const (
	KindLogic Kind = iota // execution units, map/queue logic
	KindArray             // caches, register files, TLBs
	KindWire              // router / interconnect
	KindVR                // on-tile voltage regulator
)

// String returns a stable lowercase name for the kind.
func (k Kind) String() string {
	switch k {
	case KindLogic:
		return "logic"
	case KindArray:
		return "array"
	case KindWire:
		return "wire"
	case KindVR:
		return "vr"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Component is one rectangular floorplan block.
type Component struct {
	Name string  // unique within its tile, e.g. "IntExec"
	Core int     // owning core index, 0-based
	Kind Kind    //
	X, Y float64 // top-left corner, mm (chip coordinates)
	W, H float64 // width and height, mm
}

// Area returns the component area in mm².
func (c Component) Area() float64 { return c.W * c.H }

// CenterX returns the x coordinate of the component centroid.
func (c Component) CenterX() float64 { return c.X + c.W/2 }

// CenterY returns the y coordinate of the component centroid.
func (c Component) CenterY() float64 { return c.Y + c.H/2 }

// ID returns the globally unique "core/name" identifier.
func (c Component) ID() string { return fmt.Sprintf("c%d/%s", c.Core, c.Name) }

// Tile dimensions from the paper: half the dual-core SCC tile.
const (
	TileW = 2.6 // mm
	TileH = 3.6 // mm
)

// ComponentsPerTile is the paper's M = 18 evaluated components per core.
const ComponentsPerTile = 18

// tileSpec describes the canonical tile layout in tile-local coordinates.
// The left 1.8 mm column holds six rows of core logic, the right 0.8 mm
// column the on-tile voltage regulator (2.2 mm², §IV-A), and the bottom
// 0.85 mm strip the private L2 and the mesh router. The rectangles tile the
// 2.6×3.6 area exactly (checked by tests).
var tileSpec = []Component{
	// Row 0 (y 0.00–0.45): rename/map and integer queue logic.
	{Name: "FPMap", Kind: KindLogic, X: 0.00, Y: 0.00, W: 0.45, H: 0.45},
	{Name: "IntMap", Kind: KindLogic, X: 0.45, Y: 0.00, W: 0.45, H: 0.45},
	{Name: "IntQ", Kind: KindLogic, X: 0.90, Y: 0.00, W: 0.45, H: 0.45},
	{Name: "IntReg", Kind: KindArray, X: 1.35, Y: 0.00, W: 0.45, H: 0.45},
	// Row 1 (y 0.45–0.90): the FP multiplier spans the row — the classic
	// Alpha hot spot and the TEC showcase.
	{Name: "FPMul", Kind: KindLogic, X: 0.00, Y: 0.45, W: 1.80, H: 0.45},
	// Row 2 (y 0.90–1.35).
	{Name: "FPReg", Kind: KindArray, X: 0.00, Y: 0.90, W: 0.45, H: 0.45},
	{Name: "FPQ", Kind: KindLogic, X: 0.45, Y: 0.90, W: 0.45, H: 0.45},
	{Name: "LdStQ", Kind: KindLogic, X: 0.90, Y: 0.90, W: 0.45, H: 0.45},
	{Name: "IntExec", Kind: KindLogic, X: 1.35, Y: 0.90, W: 0.45, H: 0.45},
	// Row 3 (y 1.35–1.80).
	{Name: "FPAdd", Kind: KindLogic, X: 0.00, Y: 1.35, W: 0.90, H: 0.45},
	{Name: "ITB", Kind: KindArray, X: 0.90, Y: 1.35, W: 0.90, H: 0.45},
	// Row 4 (y 1.80–2.25).
	{Name: "Bpred", Kind: KindArray, X: 0.00, Y: 1.80, W: 0.90, H: 0.45},
	{Name: "DTB", Kind: KindArray, X: 0.90, Y: 1.80, W: 0.90, H: 0.45},
	// Row 5 (y 2.25–2.75): L1 caches.
	{Name: "ICache", Kind: KindArray, X: 0.00, Y: 2.25, W: 0.90, H: 0.50},
	{Name: "DCache", Kind: KindArray, X: 0.90, Y: 2.25, W: 0.90, H: 0.50},
	// Right column (x 1.80–2.60): quasi-parallel on-chip VR, 0.8×2.75 =
	// 2.2 mm² as budgeted in §IV-A.
	{Name: "VR", Kind: KindVR, X: 1.80, Y: 0.00, W: 0.80, H: 2.75},
	// Bottom strip (y 2.75–3.60): private 256 KB L2 and mesh router.
	{Name: "L2", Kind: KindArray, X: 0.00, Y: 2.75, W: 1.90, H: 0.85},
	{Name: "Router", Kind: KindWire, X: 1.90, Y: 2.75, W: 0.70, H: 0.85},
}

// TileComponents returns a fresh copy of the canonical tile layout in
// tile-local coordinates with Core set to -1.
func TileComponents() []Component {
	out := make([]Component, len(tileSpec))
	copy(out, tileSpec)
	for i := range out {
		out[i].Core = -1
	}
	return out
}

// Chip is a full CMP floorplan: a TileRows×TileCols array of core tiles.
type Chip struct {
	TileRows, TileCols int
	W, H               float64     // chip dimensions, mm
	Components         []Component // all components, core-major order
	index              map[string]int
}

// NewChip builds a tileRows×tileCols chip of canonical tiles. Cores are
// numbered row-major. NewChip panics on non-positive dimensions.
func NewChip(tileRows, tileCols int) *Chip {
	if tileRows <= 0 || tileCols <= 0 {
		panic(fmt.Sprintf("floorplan: invalid tile grid %dx%d", tileRows, tileCols))
	}
	c := &Chip{
		TileRows: tileRows,
		TileCols: tileCols,
		W:        float64(tileCols) * TileW,
		H:        float64(tileRows) * TileH,
		index:    make(map[string]int),
	}
	for r := 0; r < tileRows; r++ {
		for col := 0; col < tileCols; col++ {
			core := r*tileCols + col
			ox := float64(col) * TileW
			oy := float64(r) * TileH
			for _, spec := range tileSpec {
				comp := spec
				comp.Core = core
				comp.X += ox
				comp.Y += oy
				c.index[comp.ID()] = len(c.Components)
				c.Components = append(c.Components, comp)
			}
		}
	}
	return c
}

// NewSCC16 returns the paper's 16-core target: a 4×4 tile array,
// 10.4 mm × 14.4 mm.
func NewSCC16() *Chip { return NewChip(4, 4) }

// NewQuad returns the 4-core chip used for the §V-E OFTEC/Oracle comparison.
func NewQuad() *Chip { return NewChip(2, 2) }

// NumCores returns the number of core tiles.
func (c *Chip) NumCores() int { return c.TileRows * c.TileCols }

// Area returns the die area in mm².
func (c *Chip) Area() float64 { return c.W * c.H }

// Lookup returns the global component index for core/name, or -1.
func (c *Chip) Lookup(core int, name string) int {
	i, ok := c.index[fmt.Sprintf("c%d/%s", core, name)]
	if !ok {
		return -1
	}
	return i
}

// CoreComponents returns the global indices of all components of one core.
func (c *Chip) CoreComponents(core int) []int {
	out := make([]int, 0, ComponentsPerTile)
	for i, comp := range c.Components {
		if comp.Core == core {
			out = append(out, i)
		}
	}
	return out
}

// CoreOf returns the owning core of global component index i.
func (c *Chip) CoreOf(i int) int { return c.Components[i].Core }

// adjTol is the geometric tolerance (mm) for deciding that two rectangles
// share an edge.
const adjTol = 1e-9

// sharedEdge returns the length of the boundary segment two rectangles share,
// or 0 if they are not edge-adjacent.
func sharedEdge(a, b Component) float64 {
	// Vertical shared edge: a's right touching b's left or vice versa.
	if math.Abs((a.X+a.W)-b.X) < adjTol || math.Abs((b.X+b.W)-a.X) < adjTol {
		lo := math.Max(a.Y, b.Y)
		hi := math.Min(a.Y+a.H, b.Y+b.H)
		if hi-lo > adjTol {
			return hi - lo
		}
	}
	// Horizontal shared edge.
	if math.Abs((a.Y+a.H)-b.Y) < adjTol || math.Abs((b.Y+b.H)-a.Y) < adjTol {
		lo := math.Max(a.X, b.X)
		hi := math.Min(a.X+a.W, b.X+b.W)
		if hi-lo > adjTol {
			return hi - lo
		}
	}
	return 0
}

// Edge is one lateral adjacency between two components.
type Edge struct {
	A, B   int     // global component indices, A < B
	Length float64 // shared boundary length, mm
}

// Adjacency returns every pair of edge-adjacent components with the length of
// their shared boundary. Tiles touch their neighbours, so the edge set spans
// cores too — this is the lateral heat-spreading graph.
func (c *Chip) Adjacency() []Edge {
	var edges []Edge
	n := len(c.Components)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if l := sharedEdge(c.Components[i], c.Components[j]); l > 0 {
				edges = append(edges, Edge{A: i, B: j, Length: l})
			}
		}
	}
	return edges
}

// Overlaps reports whether any two components overlap with positive area —
// a well-formed floorplan never does.
func (c *Chip) Overlaps() bool {
	n := len(c.Components)
	for i := 0; i < n; i++ {
		a := c.Components[i]
		for j := i + 1; j < n; j++ {
			b := c.Components[j]
			ox := math.Min(a.X+a.W, b.X+b.W) - math.Max(a.X, b.X)
			oy := math.Min(a.Y+a.H, b.Y+b.H) - math.Max(a.Y, b.Y)
			if ox > adjTol && oy > adjTol {
				return true
			}
		}
	}
	return false
}

// TotalComponentArea sums all component areas (mm²); for a gap-free
// floorplan it equals Area().
func (c *Chip) TotalComponentArea() float64 {
	var a float64
	for _, comp := range c.Components {
		a += comp.Area()
	}
	return a
}

// ComponentNames returns the 18 canonical component names in tile order.
func ComponentNames() []string {
	out := make([]string, len(tileSpec))
	for i, c := range tileSpec {
		out[i] = c.Name
	}
	return out
}
