// Package diskfault is the filesystem seam the control plane's durable
// state flows through, plus a seeded, schedule-driven fault filesystem for
// exercising that state under storage failure.
//
// The seam (FS) covers exactly the operations internal/checkpoint's atomic
// envelope discipline needs — open/create/write/sync/rename/remove/readdir
// and friends — with a passthrough OS default. The fault implementation
// (FaultFS, see faultfs.go) can tear a write at byte k, lie about fsync and
// later discard the unsynced bytes (power-cut simulation), return ENOSPC or
// EIO on the Nth operation, and flip bits on read or silently on write (bit
// rot) — all decisions derived from a base seed plus the global operation
// index, mirroring the seeded-schedule shape of internal/netfault.
//
// Everything above the seam (checkpoint, daemon, pool persistence) is
// forbidden by the atomicwrite analyzer from touching the os file-creation
// primitives directly; this package is the one place allowed to.
package diskfault

import (
	"errors"
	"io"
	"io/fs"
	"os"
	"syscall"
)

// File is the subset of *os.File the state layer uses.
type File interface {
	io.Reader
	io.Writer
	io.Closer
	// Name returns the path the file was opened under.
	Name() string
	// Sync flushes the file's contents to stable storage. On a FaultFS a
	// schedule may make this lie: return nil while the bytes remain volatile
	// and are discarded at the next simulated power cut.
	Sync() error
}

// FS is the filesystem seam. OS is the passthrough default; FaultFS the
// fault-injecting one. Implementations must be safe for concurrent use.
type FS interface {
	// OpenFile is the generalized open; flag/perm as in os.OpenFile.
	OpenFile(name string, flag int, perm os.FileMode) (File, error)
	// Create truncates-or-creates name for writing.
	Create(name string) (File, error)
	// CreateTemp creates a uniquely named scratch file in dir (pattern as in
	// os.CreateTemp) — the first step of every atomic envelope write.
	CreateTemp(dir, pattern string) (File, error)
	// Open opens name read-only.
	Open(name string) (File, error)
	// ReadFile reads the whole of name.
	ReadFile(name string) ([]byte, error)
	// Rename atomically replaces newpath with oldpath.
	Rename(oldpath, newpath string) error
	// Remove deletes name.
	Remove(name string) error
	// ReadDir lists dir, sorted by filename.
	ReadDir(name string) ([]fs.DirEntry, error)
	// Stat describes name.
	Stat(name string) (fs.FileInfo, error)
	// MkdirAll makes path and any missing parents.
	MkdirAll(path string, perm os.FileMode) error
	// SyncDir fsyncs a directory, making renames/removes inside it durable.
	SyncDir(dir string) error
}

// OS is the passthrough FS: every call maps 1:1 onto the os package.
var OS FS = osFS{}

type osFS struct{}

func (osFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	return os.OpenFile(name, flag, perm)
}
func (osFS) Create(name string) (File, error)             { return os.Create(name) }
func (osFS) CreateTemp(dir, pattern string) (File, error) { return os.CreateTemp(dir, pattern) }
func (osFS) Open(name string) (File, error)               { return os.Open(name) }
func (osFS) ReadFile(name string) ([]byte, error)         { return os.ReadFile(name) }
func (osFS) Rename(oldpath, newpath string) error         { return os.Rename(oldpath, newpath) }
func (osFS) Remove(name string) error                     { return os.Remove(name) }
func (osFS) ReadDir(name string) ([]fs.DirEntry, error)   { return os.ReadDir(name) }
func (osFS) Stat(name string) (fs.FileInfo, error)        { return os.Stat(name) }
func (osFS) MkdirAll(path string, perm os.FileMode) error {
	return os.MkdirAll(path, perm)
}

func (osFS) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	serr := d.Sync()
	cerr := d.Close()
	if serr != nil {
		return serr
	}
	return cerr
}

// IsNoSpace reports whether err is (or wraps) ENOSPC — injected by a FaultFS
// schedule or raised by a genuinely full disk. The daemon's degraded mode
// keys off it.
func IsNoSpace(err error) bool { return errors.Is(err, syscall.ENOSPC) }
