package diskfault

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
)

// writeThrough performs the atomic-envelope write sequence (create temp,
// write, sync, close, rename, sync dir) through an FS — the exact shape
// internal/checkpoint uses — and returns the first error.
func writeThrough(fsys FS, path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := fsys.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	name := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := fsys.Rename(name, path); err != nil {
		return err
	}
	return fsys.SyncDir(dir)
}

func TestOSPassthrough(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "x.ckpt")
	if err := writeThrough(OS, path, []byte("hello")); err != nil {
		t.Fatal(err)
	}
	data, err := OS.ReadFile(path)
	if err != nil || string(data) != "hello" {
		t.Fatalf("ReadFile = %q, %v", data, err)
	}
	ents, err := OS.ReadDir(dir)
	if err != nil || len(ents) != 1 {
		t.Fatalf("ReadDir = %v, %v", ents, err)
	}
	if _, err := OS.Stat(path); err != nil {
		t.Fatal(err)
	}
	if err := OS.Remove(path); err != nil {
		t.Fatal(err)
	}
	if _, err := OS.Stat(path); !os.IsNotExist(err) {
		t.Fatalf("Stat after Remove: %v", err)
	}
}

func TestScheduleValidation(t *testing.T) {
	bad := []Schedule{
		{Rules: []Rule{{Action: "melt"}}},
		{Rules: []Rule{{Action: ActENOSPC, Prob: 1.5}}},
		{Rules: []Rule{{Action: ActTear, Ops: []Op{OpRead}}}},
		{Rules: []Rule{{Action: ActLieSync, Ops: []Op{OpWrite}}}},
		{Rules: []Rule{{Action: ActEIO, FromOp: 10, ToOp: 5}}},
		{Rules: []Rule{{Action: ActEIO, Ops: []Op{"scribble"}}}},
		{CrashAtOp: -1},
		{Rules: []Rule{{Action: ActEIO, Path: "[unclosed"}}},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("schedule %d validated: %+v", i, s)
		}
	}
	good, err := ParseSchedule([]byte(`{
		"seed": 42, "crash_at_op": 100,
		"rules": [
			{"action": "enospc", "from_op": 10, "to_op": 20},
			{"action": "tear", "path": "*.ckpt*", "prob": 0.5},
			{"action": "lie_sync", "ops": ["sync"]},
			{"action": "flip_read", "prob": 0.1}
		]}`))
	if err != nil {
		t.Fatal(err)
	}
	if good.Seed != 42 || good.CrashAtOp != 100 || len(good.Rules) != 4 {
		t.Fatalf("parsed schedule %+v", good)
	}
}

func TestInjectedENOSPCWindow(t *testing.T) {
	dir := t.TempDir()
	f2, _ := New(Schedule{Rules: []Rule{{Action: ActENOSPC, FromOp: 2, ToOp: 3}}}, nil)
	if _, err := f2.Stat(dir); err != nil { // op 1: before window
		t.Fatalf("op 1 failed: %v", err)
	}
	if _, err := f2.Stat(dir); !IsNoSpace(err) { // op 2: in window
		t.Fatalf("op 2 = %v, want ENOSPC", err)
	}
	if _, err := f2.Stat(dir); err != nil { // op 3: past window
		t.Fatalf("op 3 failed: %v", err)
	}
}

func TestInjectedEIOMatchesPath(t *testing.T) {
	dir := t.TempDir()
	f, _ := New(Schedule{Rules: []Rule{{Action: ActEIO, Path: "*.ckpt*"}}}, nil)
	if err := writeThrough(f, filepath.Join(dir, "other.dat"), []byte("ok")); err != nil {
		t.Fatalf("non-matching path impaired: %v", err)
	}
	err := writeThrough(f, filepath.Join(dir, "job.ckpt"), []byte("state"))
	if !errors.Is(err, syscall.EIO) {
		t.Fatalf("matching path = %v, want EIO", err)
	}
}

func TestTornWrite(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "t.ckpt")
	f, _ := New(Schedule{Seed: 7, Rules: []Rule{{Action: ActTear, Ops: []Op{OpWrite}}}}, nil)
	file, err := f.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte(strings.Repeat("A", 1024))
	n, werr := file.Write(payload)
	file.Close()
	if werr == nil {
		t.Fatal("torn write reported success")
	}
	if !errors.Is(werr, syscall.EIO) {
		t.Fatalf("torn write error = %v, want wrapped EIO", werr)
	}
	if n >= len(payload) {
		t.Fatalf("torn write committed all %d bytes", n)
	}
	onDisk, _ := os.ReadFile(path)
	if len(onDisk) != n {
		t.Fatalf("disk has %d bytes, write reported %d", len(onDisk), n)
	}
}

func TestBitFlipOnReadIsTransientAndSeeded(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "r.dat")
	orig := []byte(strings.Repeat("B", 256))
	if err := os.WriteFile(path, orig, 0o644); err != nil {
		t.Fatal(err)
	}
	mk := func() *FaultFS {
		f, _ := New(Schedule{Seed: 99, Rules: []Rule{{Action: ActFlipRead}}}, nil)
		return f
	}
	a, _ := mk().ReadFile(path)
	b, _ := mk().ReadFile(path)
	if string(a) == string(orig) {
		t.Fatal("read returned pristine data despite flip_read")
	}
	if string(a) != string(b) {
		t.Fatal("same seed and op index produced different corruption")
	}
	onDisk, _ := os.ReadFile(path)
	if string(onDisk) != string(orig) {
		t.Fatal("flip_read corrupted the file on disk")
	}
}

func TestSilentWriteFlipLandsOnDisk(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "w.ckpt")
	f, _ := New(Schedule{Seed: 3, Rules: []Rule{{Action: ActFlipWrite}}}, nil)
	if err := writeThrough(f, path, []byte(strings.Repeat("C", 512))); err != nil {
		t.Fatalf("silent flip must not error: %v", err)
	}
	onDisk, _ := os.ReadFile(path)
	if string(onDisk) == strings.Repeat("C", 512) {
		t.Fatal("flip_write left the file pristine")
	}
	if len(onDisk) != 512 {
		t.Fatalf("flip_write changed length: %d", len(onDisk))
	}
}

// TestPowerCutLosesUnsyncedData: with sync lying, a crash rolls the write
// back entirely — the head keeps its old durable content and the temp file
// vanishes, exactly what a real power cut after buffered-but-unflushed
// writes leaves behind.
func TestPowerCutLosesUnsyncedData(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "p.ckpt")
	if err := writeThrough(OS, path, []byte("old-generation")); err != nil {
		t.Fatal(err)
	}
	f, _ := New(Schedule{Rules: []Rule{{Action: ActLieSync}}}, nil)
	if err := writeThrough(f, path, []byte("new-but-never-synced")); err != nil {
		t.Fatal(err)
	}
	// Before the crash the rename is visible, as on a real kernel.
	if got, _ := os.ReadFile(path); string(got) != "new-but-never-synced" {
		t.Fatalf("pre-crash content = %q", got)
	}
	f.CrashNow()
	if got, _ := os.ReadFile(path); string(got) != "old-generation" {
		t.Fatalf("post-crash content = %q, want the old durable generation", got)
	}
	ents, _ := os.ReadDir(dir)
	for _, e := range ents {
		if strings.Contains(e.Name(), ".tmp") {
			t.Fatalf("temp file %s survived the crash", e.Name())
		}
	}
	if _, err := f.Stat(path); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash op = %v, want ErrCrashed", err)
	}
}

// TestPowerCutKeepsSyncedData: honest syncs make the full sequence durable;
// the crash then has nothing to roll back.
func TestPowerCutKeepsSyncedData(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "s.ckpt")
	f, _ := New(Schedule{}, nil)
	if err := writeThrough(f, path, []byte("durable")); err != nil {
		t.Fatal(err)
	}
	f.CrashNow()
	if got, _ := os.ReadFile(path); string(got) != "durable" {
		t.Fatalf("synced content lost: %q", got)
	}
}

// TestPowerCutUndoesUnsyncedRename: file contents were fsynced but the
// rename's directory entry was not — the crash restores the old head and
// resurrects the temp name, the "either old file or new file" guarantee.
func TestPowerCutUndoesUnsyncedRename(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "r.ckpt")
	if err := writeThrough(OS, path, []byte("old")); err != nil {
		t.Fatal(err)
	}
	// Lie only about directory syncs (path match on the directory's base).
	f, _ := New(Schedule{Rules: []Rule{
		{Action: ActLieSync, Path: filepath.Base(dir)},
	}}, nil)
	if err := writeThrough(f, path, []byte("new")); err != nil {
		t.Fatal(err)
	}
	f.CrashNow()
	if got, _ := os.ReadFile(path); string(got) != "old" {
		t.Fatalf("post-crash head = %q, want the pre-rename content", got)
	}
}

func TestCrashAtOpFiresAndGoesDead(t *testing.T) {
	dir := t.TempDir()
	crashed := false
	f, err := New(Schedule{CrashAtOp: 3}, &Options{OnCrash: func() { crashed = true }})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Stat(dir); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Stat(dir); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Stat(dir); !errors.Is(err, ErrCrashed) {
		t.Fatalf("op 3 = %v, want ErrCrashed", err)
	}
	if !crashed {
		t.Fatal("OnCrash not invoked")
	}
	if !f.Crashed() {
		t.Fatal("Crashed() false after the cut")
	}
	if _, err := f.ReadFile(filepath.Join(dir, "x")); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash ReadFile = %v", err)
	}
}

// TestSeededDeterminism: the same schedule and operation sequence produce
// the same fault pattern.
func TestSeededDeterminism(t *testing.T) {
	run := func() []string {
		dir := t.TempDir()
		var log []string
		f, _ := New(Schedule{Seed: 11, Rules: []Rule{
			{Action: ActEIO, Prob: 0.3},
		}}, nil)
		for i := 0; i < 40; i++ {
			_, err := f.Stat(dir)
			if err != nil {
				log = append(log, "eio")
			} else {
				log = append(log, "ok")
			}
		}
		return log
	}
	a, b := run(), run()
	if strings.Join(a, ",") != strings.Join(b, ",") {
		t.Fatalf("fault pattern not reproducible:\n%v\n%v", a, b)
	}
	eios := 0
	for _, s := range a {
		if s == "eio" {
			eios++
		}
	}
	if eios == 0 || eios == len(a) {
		t.Fatalf("prob 0.3 produced %d/%d failures", eios, len(a))
	}
}

func TestRemoveRolledBackOnCrash(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "keep.ckpt")
	if err := os.WriteFile(path, []byte("precious"), 0o644); err != nil {
		t.Fatal(err)
	}
	f, _ := New(Schedule{}, nil)
	if err := f.Remove(path); err != nil {
		t.Fatal(err)
	}
	f.CrashNow()
	// An unsynced unlink is rolled back: the durable image still exists.
	if got, _ := os.ReadFile(path); string(got) != "precious" {
		t.Fatalf("removed file not restored by crash: %q", got)
	}
}
