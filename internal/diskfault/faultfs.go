package diskfault

import (
	"fmt"
	"io/fs"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"syscall"
)

// ErrCrashed is returned by every operation after a simulated power cut:
// the filesystem is dead until the process "reboots" (constructs a new FS).
var ErrCrashed = fmt.Errorf("diskfault: filesystem dead after simulated power cut")

// Options tunes a FaultFS beyond the schedule.
type Options struct {
	// Logf receives per-operation fault decisions (default: silent). Drill
	// scripts grep these lines for proof the schedule actually fired.
	Logf func(format string, args ...any)
	// OnCrash runs after a simulated power cut has rolled back all volatile
	// bytes — tecfand uses it to exit the process, completing the
	// power-failure illusion. Nil means the FS just goes dead (tests then
	// inspect what survived on the real disk).
	OnCrash func()
}

// FaultFS implements FS over the real filesystem while injecting the faults
// its Schedule prescribes. It maintains a shadow map of "durable images":
// for every path with volatile (not-yet-fsynced) changes, the content a real
// disk would still hold after a power cut. A crash (CrashAtOp or CrashNow)
// rolls every such path back to its durable image, so what the next process
// incarnation reads is exactly what a kernel that lost its page cache would
// serve.
type FaultFS struct {
	sched   Schedule
	logf    func(format string, args ...any)
	onCrash func()

	mu      sync.Mutex
	op      int64
	crashed bool
	shadow  map[string]shadowEntry
}

// shadowEntry is a path's durable image: the bytes an honest disk holds
// (or absent, for a file whose creation was never synced). content marks
// entries guarding unsynced file *data*, which a directory fsync must not
// commit — only a successful file Sync clears them.
type shadowEntry struct {
	data    []byte
	absent  bool
	content bool
}

// New validates the schedule and builds a FaultFS.
func New(sched Schedule, opts *Options) (*FaultFS, error) {
	if err := sched.Validate(); err != nil {
		return nil, err
	}
	f := &FaultFS{
		sched:  sched,
		logf:   func(string, ...any) {},
		shadow: map[string]shadowEntry{},
	}
	if opts != nil && opts.Logf != nil {
		f.logf = opts.Logf
	}
	if opts != nil {
		f.onCrash = opts.OnCrash
	}
	return f, nil
}

// Ops returns the global operation counter (for tests and drills).
func (f *FaultFS) Ops() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.op
}

// Crashed reports whether the simulated power cut has fired.
func (f *FaultFS) Crashed() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.crashed
}

// CrashNow forces the power cut immediately, independent of CrashAtOp.
func (f *FaultFS) CrashNow() {
	f.mu.Lock()
	defer f.mu.Unlock()
	if !f.crashed {
		f.crashLocked()
	}
}

// decision is the set of impairments drawn for one operation.
type decision struct {
	n         int64
	err       error
	tear      bool
	flipWrite bool
	flipRead  bool
	lieSync   bool
	rng       *rand.Rand
}

// opRNG derives the per-(operation, rule) random stream, so a drill's fault
// pattern is reproducible given the same operation order.
func opRNG(seed, n, rule int64) *rand.Rand {
	return rand.New(rand.NewSource(seed ^ (n * 0x9E3779B97F4A7C) ^ (rule << 40)))
}

// step advances the operation counter, fires the power cut when due, and
// evaluates every matching rule. The first errno rule to fire wins; tear /
// flip / lie decisions accumulate alongside.
func (f *FaultFS) step(op Op, path string) (decision, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.crashed {
		return decision{}, ErrCrashed
	}
	f.op++
	n := f.op
	if f.sched.CrashAtOp > 0 && n >= f.sched.CrashAtOp {
		f.crashLocked()
		return decision{}, ErrCrashed
	}
	d := decision{n: n}
	base := filepath.Base(path)
	for i, r := range f.sched.Rules {
		if !r.matches(op, base, n) {
			continue
		}
		rng := opRNG(f.sched.Seed, n, int64(i))
		prob := r.Prob
		if prob == 0 {
			prob = 1
		}
		if rng.Float64() >= prob {
			continue
		}
		switch r.Action {
		case ActENOSPC:
			f.logf("diskfault: op %d: injected ENOSPC on %s %s", n, op, path)
			return decision{}, fmt.Errorf("diskfault: injected ENOSPC on %s %s (op %d): %w", op, path, n, syscall.ENOSPC)
		case ActEIO:
			f.logf("diskfault: op %d: injected EIO on %s %s", n, op, path)
			return decision{}, fmt.Errorf("diskfault: injected EIO on %s %s (op %d): %w", op, path, n, syscall.EIO)
		case ActTear:
			d.tear = true
		case ActFlipWrite:
			d.flipWrite = true
		case ActFlipRead:
			d.flipRead = true
		case ActLieSync:
			d.lieSync = true
		}
		if d.rng == nil {
			d.rng = rng
		}
	}
	return d, nil
}

// ensureShadow captures path's current on-disk bytes as its durable image,
// unless an image is already held. content upgrades an existing name-only
// entry to a content entry (unsynced data now rides under that name).
func (f *FaultFS) ensureShadow(path string, content bool) {
	path = filepath.Clean(path)
	f.mu.Lock()
	defer f.mu.Unlock()
	if e, ok := f.shadow[path]; ok {
		if content && !e.content {
			e.content = true
			f.shadow[path] = e
		}
		return
	}
	data, err := os.ReadFile(path) //lint:tecfan-ignore lockedio -- the durable-image capture must be atomic with the shadow-map insert: unlocking first would let a concurrent write land and be captured as "durable"
	if err != nil {
		f.shadow[path] = shadowEntry{absent: true, content: content}
		return
	}
	f.shadow[path] = shadowEntry{data: data, content: content}
}

// crashLocked performs the power cut: every path with volatile changes is
// rolled back to its durable image, then the FS goes dead. Called with f.mu
// held.
func (f *FaultFS) crashLocked() {
	f.crashed = true
	for path, e := range f.shadow {
		if e.absent {
			_ = os.Remove(path)
		} else {
			_ = os.WriteFile(path, e.data, 0o644)
		}
	}
	f.logf("diskfault: POWER CUT at op %d: rolled back %d volatile path(s)", f.op, len(f.shadow))
	f.shadow = map[string]shadowEntry{}
	if f.onCrash != nil {
		f.onCrash()
	}
}

// --- FS implementation ----------------------------------------------------

func isWriteFlag(flag int) bool {
	return flag&(os.O_WRONLY|os.O_RDWR|os.O_CREATE|os.O_TRUNC|os.O_APPEND) != 0
}

func (f *FaultFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	op := OpOpen
	if isWriteFlag(flag) {
		op = OpCreate
	}
	if _, err := f.step(op, name); err != nil {
		return nil, err
	}
	if isWriteFlag(flag) {
		// O_TRUNC destroys content at open; the durable image must be taken
		// before the kernel sees the call.
		f.ensureShadow(name, true)
	}
	file, err := os.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &faultFile{fs: f, f: file, name: filepath.Clean(name)}, nil
}

func (f *FaultFS) Create(name string) (File, error) {
	if _, err := f.step(OpCreate, name); err != nil {
		return nil, err
	}
	f.ensureShadow(name, true)
	file, err := os.Create(name)
	if err != nil {
		return nil, err
	}
	return &faultFile{fs: f, f: file, name: filepath.Clean(name)}, nil
}

func (f *FaultFS) CreateTemp(dir, pattern string) (File, error) {
	if _, err := f.step(OpCreate, filepath.Join(dir, pattern)); err != nil {
		return nil, err
	}
	file, err := os.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	name := filepath.Clean(file.Name())
	f.mu.Lock()
	f.shadow[name] = shadowEntry{absent: true, content: true}
	f.mu.Unlock()
	return &faultFile{fs: f, f: file, name: name}, nil
}

func (f *FaultFS) Open(name string) (File, error) {
	if _, err := f.step(OpOpen, name); err != nil {
		return nil, err
	}
	file, err := os.Open(name)
	if err != nil {
		return nil, err
	}
	return &faultFile{fs: f, f: file, name: filepath.Clean(name)}, nil
}

func (f *FaultFS) ReadFile(name string) ([]byte, error) {
	d, err := f.step(OpRead, name)
	if err != nil {
		return nil, err
	}
	data, err := os.ReadFile(name)
	if err != nil {
		return nil, err
	}
	if d.flipRead && len(data) > 0 {
		bit := d.rng.Intn(len(data) * 8)
		data[bit/8] ^= 1 << (bit % 8)
		f.logf("diskfault: op %d: flipped bit %d reading %s", d.n, bit, name)
	}
	return data, nil
}

// Rename is matched against the destination's base name: schedules target
// the state file a rename lands on, not the scratch name it came from.
func (f *FaultFS) Rename(oldpath, newpath string) error {
	if _, err := f.step(OpRename, newpath); err != nil {
		return err
	}
	oldpath, newpath = filepath.Clean(oldpath), filepath.Clean(newpath)
	f.ensureShadow(oldpath, false)
	f.ensureShadow(newpath, false)
	f.mu.Lock()
	oldVolatile := f.shadow[oldpath].content
	f.mu.Unlock()
	if err := os.Rename(oldpath, newpath); err != nil {
		return err
	}
	f.mu.Lock()
	// The inode now at newpath is the one that moved in: its content is
	// volatile iff the source's was. The flag must be overwritten, not merely
	// upgraded — inheriting a content taint from the *replaced* inode would
	// keep newpath volatile forever (no one ever fsyncs the destination file
	// itself), and every later honest sync+rename would still roll back.
	if e, ok := f.shadow[newpath]; ok && e.content != oldVolatile {
		e.content = oldVolatile
		f.shadow[newpath] = e
	}
	// The source entry now guards only the pending name-change (the file is
	// gone from oldpath); any unsynced bytes ride under newpath from here on.
	if e, ok := f.shadow[oldpath]; ok && e.content {
		e.content = false
		f.shadow[oldpath] = e
	}
	f.mu.Unlock()
	return nil
}

func (f *FaultFS) Remove(name string) error {
	if _, err := f.step(OpRemove, name); err != nil {
		return err
	}
	f.ensureShadow(name, false)
	return os.Remove(name)
}

func (f *FaultFS) ReadDir(name string) ([]fs.DirEntry, error) {
	if _, err := f.step(OpReaddir, name); err != nil {
		return nil, err
	}
	return os.ReadDir(name)
}

func (f *FaultFS) Stat(name string) (fs.FileInfo, error) {
	if _, err := f.step(OpStat, name); err != nil {
		return nil, err
	}
	return os.Stat(name)
}

func (f *FaultFS) MkdirAll(path string, perm os.FileMode) error {
	if _, err := f.step(OpMkdir, path); err != nil {
		return err
	}
	return os.MkdirAll(path, perm)
}

// SyncDir makes renames and removes inside dir durable — unless a lie_sync
// rule swallows it. Entries guarding unsynced file content survive even an
// honest directory sync: fsync(dir) commits names, not bytes.
func (f *FaultFS) SyncDir(dir string) error {
	d, err := f.step(OpSync, dir)
	if err != nil {
		return err
	}
	if d.lieSync {
		f.logf("diskfault: op %d: lied about dir sync of %s", d.n, dir)
		return nil
	}
	if err := OS.SyncDir(dir); err != nil {
		return err
	}
	dir = filepath.Clean(dir)
	f.mu.Lock()
	for path, e := range f.shadow {
		if !e.content && filepath.Dir(path) == dir {
			delete(f.shadow, path)
		}
	}
	f.mu.Unlock()
	return nil
}

// --- File implementation --------------------------------------------------

type faultFile struct {
	fs   *FaultFS
	f    *os.File
	name string
}

func (ff *faultFile) Name() string { return ff.name }

func (ff *faultFile) Read(p []byte) (int, error) {
	d, err := ff.fs.step(OpRead, ff.name)
	if err != nil {
		return 0, err
	}
	n, rerr := ff.f.Read(p)
	if d.flipRead && n > 0 {
		bit := d.rng.Intn(n * 8)
		p[bit/8] ^= 1 << (bit % 8)
		ff.fs.logf("diskfault: op %d: flipped bit %d reading %s", d.n, bit, ff.name)
	}
	return n, rerr
}

func (ff *faultFile) Write(p []byte) (int, error) {
	d, err := ff.fs.step(OpWrite, ff.name)
	if err != nil {
		return 0, err
	}
	// The durable image may have been cleared by a mid-stream Sync; anything
	// written after it is volatile again.
	ff.fs.ensureShadow(ff.name, true)
	if d.tear {
		k := 0
		if len(p) > 0 {
			k = d.rng.Intn(len(p))
		}
		n, _ := ff.f.Write(p[:k])
		ff.fs.logf("diskfault: op %d: tore write to %s at byte %d/%d", d.n, ff.name, k, len(p))
		return n, fmt.Errorf("diskfault: torn write to %s after %d/%d bytes (op %d): %w",
			ff.name, k, len(p), d.n, syscall.EIO)
	}
	if d.flipWrite && len(p) > 0 {
		q := append([]byte(nil), p...)
		bit := d.rng.Intn(len(q) * 8)
		q[bit/8] ^= 1 << (bit % 8)
		ff.fs.logf("diskfault: op %d: silently flipped bit %d writing %s", d.n, bit, ff.name)
		return ff.f.Write(q)
	}
	return ff.f.Write(p)
}

func (ff *faultFile) Sync() error {
	d, err := ff.fs.step(OpSync, ff.name)
	if err != nil {
		return err
	}
	if d.lieSync {
		ff.fs.logf("diskfault: op %d: lied about sync of %s", d.n, ff.name)
		return nil
	}
	if err := ff.f.Sync(); err != nil {
		return err
	}
	ff.fs.mu.Lock()
	delete(ff.fs.shadow, ff.name)
	ff.fs.mu.Unlock()
	return nil
}

func (ff *faultFile) Close() error { return ff.f.Close() }
