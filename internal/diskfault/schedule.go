package diskfault

import (
	"encoding/json"
	"fmt"
	"path/filepath"

	"tecfan/internal/schedfile"
)

// Op classifies a filesystem operation for schedule matching. Every FS and
// File method increments one global operation counter and reports exactly
// one Op.
type Op string

const (
	OpOpen    Op = "open"    // Open / OpenFile(read-only)
	OpCreate  Op = "create"  // Create / CreateTemp / OpenFile(write)
	OpRead    Op = "read"    // ReadFile / File.Read
	OpWrite   Op = "write"   // File.Write
	OpSync    Op = "sync"    // File.Sync / SyncDir
	OpRename  Op = "rename"  // Rename
	OpRemove  Op = "remove"  // Remove
	OpReaddir Op = "readdir" // ReadDir
	OpStat    Op = "stat"    // Stat
	OpMkdir   Op = "mkdir"   // MkdirAll
)

var validOps = map[Op]bool{
	OpOpen: true, OpCreate: true, OpRead: true, OpWrite: true, OpSync: true,
	OpRename: true, OpRemove: true, OpReaddir: true, OpStat: true, OpMkdir: true,
}

// Rule actions. Each rule has exactly one action; tear/flip_write apply only
// to write ops, flip_read to read ops, lie_sync to sync ops, and the errno
// actions to any op.
const (
	// ActENOSPC fails the operation with an error wrapping syscall.ENOSPC.
	ActENOSPC = "enospc"
	// ActEIO fails the operation with an error wrapping syscall.EIO.
	ActEIO = "eio"
	// ActTear commits a seeded prefix of the buffer to the file, then fails
	// the write — the classic torn write.
	ActTear = "tear"
	// ActFlipWrite flips one seeded bit in the buffer and reports success —
	// silent corruption that only a read-time checksum can catch.
	ActFlipWrite = "flip_write"
	// ActFlipRead flips one seeded bit in the returned data; the file on
	// disk stays intact (transient rot: a bad cable, a flaky controller).
	ActFlipRead = "flip_read"
	// ActLieSync reports a successful sync without granting durability: the
	// bytes stay volatile and vanish at the next simulated power cut.
	ActLieSync = "lie_sync"
)

// Rule is one impairment: when an operation whose class is in Ops, whose
// file's base name matches Path, and whose global index lies in
// [FromOp, ToOp) comes by, Action fires with probability Prob.
type Rule struct {
	// Ops restricts the rule to these operation classes (empty = the
	// action's natural class, or every class for the errno actions).
	Ops []Op `json:"ops,omitempty"`
	// Path is a filepath.Match glob tested against the file's base name
	// (empty = every path). Directory-level ops match the directory's base.
	Path string `json:"path,omitempty"`
	// FromOp / ToOp bound the rule by the global operation counter
	// (1-based); ToOp 0 means unbounded.
	FromOp int64 `json:"from_op,omitempty"`
	ToOp   int64 `json:"to_op,omitempty"`
	// Action is one of the Act* constants.
	Action string `json:"action"`
	// Prob is the chance the action fires per matching op (default 1).
	Prob float64 `json:"prob,omitempty"`
}

// opsFor returns the operation classes a rule applies to.
func (r Rule) opsFor() []Op {
	if len(r.Ops) > 0 {
		return r.Ops
	}
	switch r.Action {
	case ActTear, ActFlipWrite:
		return []Op{OpWrite}
	case ActFlipRead:
		return []Op{OpRead}
	case ActLieSync:
		return []Op{OpSync}
	default: // errno actions default to every class
		return nil
	}
}

func (r Rule) matches(op Op, base string, n int64) bool {
	if n < r.FromOp || (r.ToOp > 0 && n >= r.ToOp) {
		return false
	}
	ops := r.opsFor()
	if len(ops) > 0 {
		found := false
		for _, o := range ops {
			if o == op {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	if r.Path != "" {
		ok, err := filepath.Match(r.Path, base)
		if err != nil || !ok {
			return false
		}
	}
	return true
}

func (r Rule) validate(i int) error {
	switch r.Action {
	case ActENOSPC, ActEIO, ActTear, ActFlipWrite, ActFlipRead, ActLieSync:
	default:
		return fmt.Errorf("diskfault: rule %d: unknown action %q", i, r.Action)
	}
	for _, o := range r.Ops {
		if !validOps[o] {
			return fmt.Errorf("diskfault: rule %d: unknown op %q", i, o)
		}
	}
	switch r.Action {
	case ActTear, ActFlipWrite:
		for _, o := range r.Ops {
			if o != OpWrite {
				return fmt.Errorf("diskfault: rule %d: action %q applies only to write ops", i, r.Action)
			}
		}
	case ActFlipRead:
		for _, o := range r.Ops {
			if o != OpRead {
				return fmt.Errorf("diskfault: rule %d: action %q applies only to read ops", i, r.Action)
			}
		}
	case ActLieSync:
		for _, o := range r.Ops {
			if o != OpSync {
				return fmt.Errorf("diskfault: rule %d: action %q applies only to sync ops", i, r.Action)
			}
		}
	}
	if r.Prob < 0 || r.Prob > 1 {
		return fmt.Errorf("diskfault: rule %d: probability %v outside [0,1]", i, r.Prob)
	}
	if r.FromOp < 0 {
		return fmt.Errorf("diskfault: rule %d: from_op must be non-negative", i)
	}
	if r.ToOp < 0 || (r.ToOp > 0 && r.ToOp <= r.FromOp) {
		return fmt.Errorf("diskfault: rule %d: need from_op < to_op, got [%d, %d)", i, r.FromOp, r.ToOp)
	}
	if r.Path != "" {
		if _, err := filepath.Match(r.Path, "probe"); err != nil {
			return fmt.Errorf("diskfault: rule %d: bad path pattern %q: %w", i, r.Path, err)
		}
	}
	return nil
}

// Schedule drives a FaultFS: a base seed for every probabilistic draw, an
// optional operation index at which a power cut fires (unsynced bytes are
// discarded, then every later operation fails), and the impairment rules.
type Schedule struct {
	Seed int64 `json:"seed,omitempty"`
	// CrashAtOp, when > 0, simulates a power cut as the counter reaches it:
	// all writes not made durable by an honest sync are rolled back and the
	// filesystem goes dead (ErrCrashed) until the process restarts.
	CrashAtOp int64  `json:"crash_at_op,omitempty"`
	Rules     []Rule `json:"rules,omitempty"`
}

// Validate rejects malformed schedules eagerly, before any I/O flows.
func (s Schedule) Validate() error {
	if s.CrashAtOp < 0 {
		return fmt.Errorf("diskfault: crash_at_op must be non-negative")
	}
	for i, r := range s.Rules {
		if err := r.validate(i); err != nil {
			return err
		}
	}
	return nil
}

// ParseSchedule decodes a JSON schedule and validates it.
func ParseSchedule(data []byte) (Schedule, error) {
	var s Schedule
	if err := json.Unmarshal(data, &s); err != nil {
		return Schedule{}, fmt.Errorf("diskfault: parsing schedule: %w", err)
	}
	if err := s.Validate(); err != nil {
		return Schedule{}, err
	}
	return s, nil
}

// ParseScheduleFile loads and validates a schedule from a JSON file through
// the shared schedfile loader, so errors carry the file path and rule index.
func ParseScheduleFile(path string) (Schedule, error) {
	var s Schedule
	// Validate has a value receiver, so bind it after decoding via a closure.
	if err := schedfile.Load(path, &s, func() error { return s.Validate() }); err != nil {
		return Schedule{}, err
	}
	return s, nil
}
