// Package campaign is the composable chaos layer on top of the repo's five
// bespoke fault injectors. PRs 1–7 each hardened one failure axis — sensor
// faults, crashes, network loss, pool fencing, disk corruption, numerical
// upsets — with its own schedule format and its own drill; nothing exercised
// *compound* faults, which is exactly where control-plane guarantees quietly
// stop holding. A campaign Spec embeds all four schedule formats plus
// process-level actions (kill/stop/restart of the daemon and workers) on one
// shared timeline; episodes run the full daemon(+pool) stack end-to-end while
// a Recorder captures the client-observed history; an oracle catalog judges
// the history (exactly-once, byte-identical-or-refusal, sticky fail-safe,
// no non-finite token, readiness consistency); and a delta-debugging shrinker
// reduces any failing composite schedule to a minimal repro for the committed
// testdata/crucible corpus.
//
// This package is in the nondeterminism analyzer's scope and stays a pure
// function of its inputs: seeds derive via splitmix64, episode pacing and all
// wall-clock orchestration (signals, process spawning, readiness polling
// timers) live in cmd/tecfan-crucible.
package campaign

import (
	"encoding/json"
	"fmt"
	"regexp"
	"sort"
	"strconv"
	"strings"

	"tecfan/internal/clockfault"
	"tecfan/internal/daemon"
	"tecfan/internal/diskfault"
	"tecfan/internal/exp"
	"tecfan/internal/fault"
	"tecfan/internal/netfault"
	"tecfan/internal/numfault"
	"tecfan/internal/schedfile"
)

// Process-action verbs on the episode timeline.
const (
	// ActKill SIGKILLs the target; a killed daemon needs a later ActRestart
	// or the episode can never fetch results.
	ActKill = "kill"
	// ActStop SIGSTOPs the target; it must be resumed (cont) or replaced
	// (kill/restart) later, or the episode would hang on a frozen process.
	ActStop = "stop"
	// ActCont SIGCONTs a stopped target.
	ActCont = "cont"
	// ActRestart SIGKILLs the target and starts a fresh process on the same
	// state dir and address — the crash-recovery path, end to end.
	ActRestart = "restart"
)

// TargetDaemon is the ProcAction target for the tecfand process; workers are
// addressed as "worker:0", "worker:1", ... up to PoolSpec.Workers.
const TargetDaemon = "daemon"

var validProcActions = map[string]bool{
	ActKill: true, ActStop: true, ActCont: true, ActRestart: true,
}

// ProcAction schedules one signal-level event at offset At from episode
// start. Proc actions are exec-only: the in-process episode runner rejects
// specs that carry any (there is no process to signal).
type ProcAction struct {
	At     netfault.Duration `json:"at"`
	Target string            `json:"target"`
	Action string            `json:"action"`
}

// PoolSpec switches the episode stack to coordinator + worker-pool mode.
type PoolSpec struct {
	// Workers is how many tecfan-worker processes (or in-process loops) run.
	Workers int `json:"workers"`
	// Chunk is the coordinator's rows-per-shard (0 = daemon default).
	Chunk int `json:"chunk,omitempty"`
	// LeaseTTL is the shard lease TTL (0 = daemon default).
	LeaseTTL netfault.Duration `json:"lease_ttl,omitempty"`
}

// Spec is one composite chaos campaign: the jobs a client submits, the fault
// lattice active while they run, and the process-level events on the shared
// timeline. The zero fault lattice (no net/disk/num/procs) is the reference
// configuration every chaotic episode is byte-compared against.
type Spec struct {
	// Name labels artifacts and derived idempotency keys.
	Name string `json:"name,omitempty"`
	// Seed is the campaign master seed; per-episode injector seeds derive
	// from it for every embedded schedule whose own seed is 0.
	Seed int64 `json:"seed"`
	// Jobs are submitted in order, each twice under one idempotency key per
	// episode (the replay feeds the exactly-once oracle). Every job needs an
	// explicit, unique ID: the oracles join histories on it. Sensor-fault
	// scenarios (internal/fault) embed per job via JobSpec.Scenario/Seed.
	Jobs []daemon.JobSpec `json:"jobs"`
	// Pool, when set, runs the episode in coordinator+workers mode.
	Pool *PoolSpec `json:"pool,omitempty"`
	// Net interposes the netfault chaos proxy between client and daemon.
	Net *netfault.Schedule `json:"net,omitempty"`
	// NetSeed seeds the proxy's probabilistic draws (0 = derive per episode;
	// the netfault schedule format carries no seed of its own).
	NetSeed int64 `json:"net_seed,omitempty"`
	// Disk arms the diskfault filesystem under the daemon's state dir.
	Disk *diskfault.Schedule `json:"disk,omitempty"`
	// Num arms the numfault injector on the daemon and on every worker.
	Num *numfault.Schedule `json:"num,omitempty"`
	// Clock arms the clockfault injector: the daemon runs under process
	// identity "daemon" and each worker under its own name, so one schedule
	// skews coordinator and workers independently while monotonic
	// arithmetic — and with it lease safety — stays truthful everywhere.
	Clock *clockfault.Schedule `json:"clock,omitempty"`
	// Procs are the signal-level events on the episode timeline.
	Procs []ProcAction `json:"procs,omitempty"`
	// Timeout bounds one episode's wall clock in the exec driver
	// (0 = the driver's default).
	Timeout netfault.Duration `json:"timeout,omitempty"`
}

// LoadSpec reads and validates a campaign spec through the shared schedfile
// loader, so errors carry the file path plus the embedded schedule's own
// rule-index context.
func LoadSpec(path string) (Spec, error) {
	var s Spec
	if err := schedfile.Load(path, &s, func() error { return s.Validate() }); err != nil {
		return Spec{}, err
	}
	return s, nil
}

// ParseSpec decodes and validates a spec from bytes, labeling errors with
// name (same contract as LoadSpec).
func ParseSpec(name string, data []byte) (Spec, error) {
	var s Spec
	if err := schedfile.Parse(name, data, &s, func() error { return s.Validate() }); err != nil {
		return Spec{}, err
	}
	return s, nil
}

// jobIDRe mirrors the daemon's job-id rule.
var jobIDRe = regexp.MustCompile(`^[A-Za-z0-9_-]{1,64}$`)

var validKinds = map[daemon.JobKind]bool{
	daemon.KindTrace: true, daemon.KindChaos: true,
	daemon.KindTable1: true, daemon.KindFig4: true,
}

// Validate rejects malformed specs eagerly — before a single process spawns —
// including proc-action choreography that could only hang or strand an
// episode (a stop never resumed, a daemon killed and never restarted, every
// worker dead before the jobs finish).
func (s Spec) Validate() error {
	if len(s.Jobs) == 0 {
		return fmt.Errorf("campaign: at least one job is required")
	}
	policies := map[string]bool{}
	for _, p := range exp.AllPolicies() {
		policies[p] = true
	}
	seen := map[string]bool{}
	for i, j := range s.Jobs {
		if j.ID == "" {
			return fmt.Errorf("campaign: job %d: explicit id is required (oracles join on it)", i)
		}
		if !jobIDRe.MatchString(j.ID) {
			// Mirrors the daemon's own id rule, rejected here before any
			// process spawns instead of as a 400 mid-episode.
			return fmt.Errorf("campaign: job %d: invalid id %q", i, j.ID)
		}
		if seen[j.ID] {
			return fmt.Errorf("campaign: job %d: duplicate id %q", i, j.ID)
		}
		seen[j.ID] = true
		if !validKinds[j.Kind] {
			return fmt.Errorf("campaign: job %s: unknown kind %q", j.ID, j.Kind)
		}
		if (j.Kind == daemon.KindTrace || j.Kind == daemon.KindChaos) && j.Bench == "" {
			return fmt.Errorf("campaign: job %s: bench is required for kind %q", j.ID, j.Kind)
		}
		if (j.Kind == daemon.KindTrace || j.Kind == daemon.KindChaos) && j.Threads <= 0 {
			return fmt.Errorf("campaign: job %s: threads must be positive", j.ID)
		}
		if j.Scenario != "" {
			if _, err := fault.ByName(j.Scenario); err != nil {
				return fmt.Errorf("campaign: job %s: %w", j.ID, err)
			}
		}
		for _, sc := range j.Scenarios {
			if _, err := fault.ByName(sc); err != nil {
				return fmt.Errorf("campaign: job %s: %w", j.ID, err)
			}
		}
		if j.Policy != "" && !policies[j.Policy] {
			return fmt.Errorf("campaign: job %s: unknown policy %q (valid: %v)", j.ID, j.Policy, exp.AllPolicies())
		}
		for _, p := range j.Policies {
			if !policies[p] {
				return fmt.Errorf("campaign: job %s: unknown policy %q (valid: %v)", j.ID, p, exp.AllPolicies())
			}
		}
	}
	if s.Pool != nil && s.Pool.Workers <= 0 {
		return fmt.Errorf("campaign: pool.workers must be positive")
	}
	if s.Pool != nil && (s.Pool.Chunk < 0 || s.Pool.LeaseTTL < 0) {
		return fmt.Errorf("campaign: pool.chunk and pool.lease_ttl must be non-negative")
	}
	if s.Net != nil {
		if err := s.Net.Validate(); err != nil {
			return fmt.Errorf("campaign: net: %w", err)
		}
	}
	if s.Disk != nil {
		if err := s.Disk.Validate(); err != nil {
			return fmt.Errorf("campaign: disk: %w", err)
		}
	}
	if s.Num != nil {
		if err := s.Num.Validate(); err != nil {
			return fmt.Errorf("campaign: num: %w", err)
		}
	}
	if s.Clock != nil {
		if err := s.Clock.Validate(); err != nil {
			return fmt.Errorf("campaign: clock: %w", err)
		}
	}
	if s.Timeout < 0 {
		return fmt.Errorf("campaign: timeout must be non-negative")
	}
	return s.validateProcs()
}

// validateProcs checks each action in isolation, then the choreography over
// the timeline ordering.
func (s Spec) validateProcs() error {
	for i, p := range s.Procs {
		if p.At < 0 {
			return fmt.Errorf("campaign: proc %d: at must be non-negative", i)
		}
		if !validProcActions[p.Action] {
			return fmt.Errorf("campaign: proc %d: unknown action %q", i, p.Action)
		}
		if p.Target != TargetDaemon {
			idx, ok := workerTarget(p.Target)
			if !ok {
				return fmt.Errorf("campaign: proc %d: target %q (want %q or \"worker:<i>\")", i, p.Target, TargetDaemon)
			}
			if s.Pool == nil {
				return fmt.Errorf("campaign: proc %d: worker target %q without a pool spec", i, p.Target)
			}
			if idx >= s.Pool.Workers {
				return fmt.Errorf("campaign: proc %d: worker index %d out of range (pool has %d)", i, idx, s.Pool.Workers)
			}
		}
	}
	// Replay the timeline per target: a stop must be resumed, a kill without
	// restart leaves the target down for the rest of the episode.
	type state struct{ stopped, dead bool }
	states := map[string]*state{}
	stateOf := func(t string) *state {
		if states[t] == nil {
			states[t] = &state{}
		}
		return states[t]
	}
	for _, p := range TimelineOrder(s.Procs) {
		st := stateOf(p.Target)
		switch p.Action {
		case ActStop:
			st.stopped = true
		case ActCont:
			st.stopped = false
		case ActKill:
			st.stopped, st.dead = false, true
		case ActRestart:
			st.stopped, st.dead = false, false
		}
	}
	if st := states[TargetDaemon]; st != nil && (st.stopped || st.dead) {
		return fmt.Errorf("campaign: the daemon ends the timeline %s: add a %q (or %q) action, or no result can ever be fetched",
			stateWord(st.stopped), ActRestart, ActCont)
	}
	if s.Pool != nil {
		alive := 0
		for i := 0; i < s.Pool.Workers; i++ {
			st := states[fmt.Sprintf("worker:%d", i)]
			if st == nil || (!st.stopped && !st.dead) {
				alive++
			}
		}
		if alive == 0 {
			return fmt.Errorf("campaign: every worker ends the timeline stopped or dead; leases would expire forever and no shard could finish")
		}
	}
	return nil
}

func stateWord(stopped bool) string {
	if stopped {
		return "stopped"
	}
	return "dead"
}

// workerTarget parses "worker:<i>".
func workerTarget(t string) (int, bool) {
	rest, ok := strings.CutPrefix(t, "worker:")
	if !ok {
		return 0, false
	}
	i, err := strconv.Atoi(rest)
	if err != nil || i < 0 {
		return 0, false
	}
	return i, true
}

// TimelineOrder returns the proc actions sorted by At (stable on spec order
// for equal offsets) — the order drivers apply them and validation replays
// them.
func TimelineOrder(procs []ProcAction) []ProcAction {
	out := append([]ProcAction(nil), procs...)
	sort.SliceStable(out, func(i, j int) bool { return out[i].At < out[j].At })
	return out
}

// splitmix64 is the usual finalizer: good avalanche, zero state. Same
// construction numfault uses for per-step draws.
func splitmix64(z uint64) uint64 {
	z += 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// deriveSeed mixes the campaign seed, episode index, and a per-injector salt
// into a non-zero seed, so each episode explores a different corner of the
// fault lattice while staying perfectly replayable.
func deriveSeed(base int64, episode int, salt uint64) int64 {
	h := splitmix64(uint64(base) ^ splitmix64(uint64(episode)*0x9e37+salt))
	if h == 0 {
		h = 1
	}
	return int64(h)
}

// Per-injector salts for deriveSeed.
const (
	saltDisk  = 0xd15c
	saltNum   = 0x40f1
	saltNet   = 0x4e7f
	saltClock = 0xc10c
)

// ForEpisode resolves the spec for one episode: every embedded schedule whose
// seed is 0 gets a seed derived from (Seed, episode). Schedules that already
// carry a non-zero seed are left alone — that is how a minimized repro pins
// the exact failing draw sequence when it is replayed as episode 0 forever.
func (s Spec) ForEpisode(episode int) Spec {
	eff := s.Clone()
	if eff.Disk != nil && eff.Disk.Seed == 0 {
		eff.Disk.Seed = deriveSeed(s.Seed, episode, saltDisk)
	}
	if eff.Num != nil && eff.Num.Seed == 0 {
		eff.Num.Seed = deriveSeed(s.Seed, episode, saltNum)
	}
	if eff.Net != nil && eff.NetSeed == 0 {
		eff.NetSeed = deriveSeed(s.Seed, episode, saltNet)
	}
	if eff.Clock != nil && eff.Clock.Seed == 0 {
		eff.Clock.Seed = deriveSeed(s.Seed, episode, saltClock)
	}
	return eff
}

// WithoutFaults strips the entire fault lattice — network, disk, numeric,
// clock, proc actions — and the pool, leaving the plain in-process daemon running
// the same jobs. This is the reference configuration: a chaotic episode's
// completed results must be byte-identical to it (or carry a declared
// fail-safe / typed refusal; see the oracle catalog).
func (s Spec) WithoutFaults() Spec {
	eff := s.Clone()
	eff.Net, eff.Disk, eff.Num, eff.Clock = nil, nil, nil, nil
	eff.NetSeed = 0
	eff.Procs = nil
	eff.Pool = nil
	return eff
}

// Clone deep-copies the spec through its canonical JSON form.
func (s Spec) Clone() Spec {
	var out Spec
	if err := json.Unmarshal(s.Canonical(), &out); err != nil {
		// A Spec that marshaled cannot fail to unmarshal; this is unreachable
		// short of memory corruption.
		panic("campaign: clone: " + err.Error())
	}
	return out
}

// Canonical returns the spec's canonical JSON encoding — the key the
// shrinker's predicate cache and the corpus dedup use.
func (s Spec) Canonical() []byte {
	data, err := json.Marshal(s)
	if err != nil {
		panic("campaign: marshal: " + err.Error())
	}
	return data
}

// IdempotencyKey derives the stable submission token for a job in an
// episode: resubmitting it (the crucible always submits twice) must dedup
// into the same job, and distinct episodes must never collide.
func IdempotencyKey(campaignName string, episode int, jobID string) string {
	name := campaignName
	if name == "" {
		name = "campaign"
	}
	return fmt.Sprintf("crucible-%s-ep%d-%s", name, episode, jobID)
}
