package campaign

import (
	"bytes"
	"context"
	"strings"
	"testing"
	"time"

	"tecfan/internal/daemon"
	"tecfan/internal/diskfault"
	"tecfan/internal/numfault"
)

// allKindsSpec carries one job of every kind at tiny scale — the meta-test
// workload.
func allKindsSpec() Spec {
	return Spec{
		Name: "meta",
		Seed: 11,
		Jobs: []daemon.JobSpec{
			{ID: "tr", Kind: daemon.KindTrace, Bench: "cholesky", Threads: 16,
				Scale: 0.001, Policy: "TECfan-FT", Seed: 7},
			{ID: "ch", Kind: daemon.KindChaos, Bench: "cholesky", Threads: 16,
				Scale: 0.001, Policies: []string{"TECfan-FT"},
				Scenarios: []string{"sensor-dropout"}, Seed: 7},
			{ID: "t1", Kind: daemon.KindTable1, Scale: 0.001},
			{ID: "f4", Kind: daemon.KindFig4, Scale: 0.001},
		},
	}
}

// TestEmptyLatticeEpisodeIsByteIdenticalToReference is the crucible's
// self-calibration: with no faults armed, an episode for every job kind must
// be oracle-clean and byte-identical to the in-process reference — otherwise
// the harness itself injects noise and every chaotic verdict is suspect.
func TestEmptyLatticeEpisodeIsByteIdenticalToReference(t *testing.T) {
	if testing.Short() {
		t.Skip("runs four real jobs twice")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()
	spec := allKindsSpec()
	opts := &RunOptions{Logf: t.Logf}

	ref, err := Reference(ctx, spec, 0, opts)
	if err != nil {
		t.Fatal(err)
	}
	h, err := RunEpisode(ctx, spec, 0, opts)
	if err != nil {
		t.Fatal(err)
	}
	if vs := Evaluate(h, ref); len(vs) != 0 {
		t.Fatalf("empty-lattice episode must be oracle-clean, got %v", vs)
	}
	if len(h.Results) != len(spec.Jobs) {
		t.Fatalf("want %d results, got %d", len(spec.Jobs), len(h.Results))
	}
	for _, r := range h.Results {
		if r.State != string(daemon.StateDone) {
			t.Fatalf("job %s ended %s: %s", r.JobID, r.State, r.Error)
		}
		if !bytes.Equal(r.Result, ref[r.JobID]) {
			t.Fatalf("job %s: episode result differs from reference:\n%s\nvs\n%s",
				r.JobID, r.Result, ref[r.JobID])
		}
	}
	// Exactly two submissions per job, the replay deduplicated server-side.
	perJob := map[string]int{}
	for _, s := range h.Submissions {
		perJob[s.JobID]++
		if s.Err != "" {
			t.Fatalf("submission of %s failed: %s", s.JobID, s.Err)
		}
	}
	for _, j := range spec.Jobs {
		if perJob[j.ID] != 2 {
			t.Fatalf("job %s submitted %d times, want 2", j.ID, perJob[j.ID])
		}
	}
	dedups := 0
	for _, s := range h.Submissions {
		if s.Deduplicated {
			dedups++
		}
	}
	if dedups != len(spec.Jobs) {
		t.Fatalf("want %d deduplicated replays, got %d", len(spec.Jobs), dedups)
	}
	if len(h.Ready) == 0 || !h.Ready[len(h.Ready)-1].Ready {
		t.Fatalf("daemon should end the episode ready: %+v", h.Ready)
	}
}

// TestInProcPooledEpisode runs a pooled episode (in-process worker loops)
// with a transient numeric upset and checks it stays oracle-clean against
// the plain reference: the FT policy absorbs the one-off upset, declares it
// in numeric_health, and the result-integrity oracle accepts the declared
// divergence.
func TestInProcPooledEpisode(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real pooled jobs")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()
	spec := Spec{
		Name: "pooled",
		Seed: 13,
		Jobs: []daemon.JobSpec{{
			ID: "tr", Kind: daemon.KindTrace, Bench: "cholesky", Threads: 16,
			Scale: 0.001, Policy: "TECfan-FT", Seed: 7,
		}},
		Pool: &PoolSpec{Workers: 2, Chunk: 1},
		Num: &numfault.Schedule{Seed: 21, Rules: []numfault.Rule{
			{Target: "temps", Action: "nan", Index: 0, FromStep: 3, ToStep: 4},
		}},
	}
	opts := &RunOptions{Logf: t.Logf}
	ref, err := Reference(ctx, spec, 0, opts)
	if err != nil {
		t.Fatal(err)
	}
	h, err := RunEpisode(ctx, spec, 0, opts)
	if err != nil {
		t.Fatal(err)
	}
	if vs := Evaluate(h, ref); len(vs) != 0 {
		t.Fatalf("pooled episode with a transient upset must be oracle-clean, got %v", vs)
	}
}

func TestRunEpisodeRejectsExecOnlyFeatures(t *testing.T) {
	ctx := context.Background()
	withProcs := compoundSpec()
	if _, err := RunEpisode(ctx, withProcs, 0, nil); err == nil ||
		!strings.Contains(err.Error(), "proc actions") {
		t.Fatalf("procs must be rejected in-process, got %v", err)
	}
	withCrash := allKindsSpec()
	withCrash.Disk = &diskfault.Schedule{CrashAtOp: 100}
	if _, err := RunEpisode(ctx, withCrash, 0, nil); err == nil ||
		!strings.Contains(err.Error(), "crash_at_op") {
		t.Fatalf("crash_at_op must be rejected in-process, got %v", err)
	}
}
