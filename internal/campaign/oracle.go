package campaign

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"regexp"
	"strings"

	"tecfan/internal/daemon"
	"tecfan/internal/pool"
)

// Violation is one oracle failure: which invariant broke, on which job (when
// attributable), and the evidence.
type Violation struct {
	Oracle string `json:"oracle"`
	JobID  string `json:"job_id,omitempty"`
	Detail string `json:"detail"`
}

func (v Violation) String() string {
	if v.JobID != "" {
		return fmt.Sprintf("%s: job %s: %s", v.Oracle, v.JobID, v.Detail)
	}
	return v.Oracle + ": " + v.Detail
}

// Oracle is one end-to-end invariant over a client-observed history. ref maps
// job ID to the fault-free reference result bytes (from Reference).
type Oracle struct {
	Name  string
	Check func(h *History, ref map[string][]byte) []Violation
}

// Oracle names, stable identifiers for corpus entries and CI logs.
const (
	OracleExactlyOnce      = "exactly-once"
	OracleResultIntegrity  = "result-integrity"
	OracleStickyFailSafe   = "sticky-fail-safe"
	OracleNoNonFinite      = "no-non-finite"
	OracleReadyConsistency = "ready-consistency"
	OracleLeaseSafety      = "lease-safety"
	OracleBoundedLiveness  = "bounded-liveness"
)

// Catalog is the full oracle set, in evaluation order.
func Catalog() []Oracle {
	return []Oracle{
		{OracleExactlyOnce, checkExactlyOnce},
		{OracleResultIntegrity, checkResultIntegrity},
		{OracleStickyFailSafe, checkStickyFailSafe},
		{OracleNoNonFinite, checkNoNonFinite},
		{OracleReadyConsistency, checkReadyConsistency},
		{OracleLeaseSafety, checkLeaseSafety},
		{OracleBoundedLiveness, checkBoundedLiveness},
	}
}

// Evaluate runs the whole catalog and returns every violation.
func Evaluate(h *History, ref map[string][]byte) []Violation {
	var out []Violation
	for _, o := range Catalog() {
		out = append(out, o.Check(h, ref)...)
	}
	return out
}

// checkExactlyOnce: every submission eventually lands, replays of one
// idempotency key always resolve to the same job, and the daemon's final job
// table holds exactly the submitted set — no lost job, no duplicate, no
// stranger.
func checkExactlyOnce(h *History, _ map[string][]byte) []Violation {
	var out []Violation
	byKey := map[string]string{}
	submitted := map[string]bool{}
	for _, s := range h.Submissions {
		if s.Err != "" {
			out = append(out, Violation{OracleExactlyOnce, s.JobID,
				"submission ultimately failed despite retries: " + s.Err})
			continue
		}
		submitted[s.JobID] = true
		if s.ReturnedID != s.JobID {
			out = append(out, Violation{OracleExactlyOnce, s.JobID,
				fmt.Sprintf("submission answered id %q, want the spec id", s.ReturnedID)})
		}
		if prev, ok := byKey[s.Key]; ok && prev != s.ReturnedID {
			out = append(out, Violation{OracleExactlyOnce, s.JobID,
				fmt.Sprintf("idempotency key %q resolved to two jobs: %q then %q", s.Key, prev, s.ReturnedID)})
		}
		byKey[s.Key] = s.ReturnedID
	}
	final := map[string]int{}
	for _, v := range h.Jobs {
		final[v.ID]++
	}
	for _, s := range h.Submissions {
		if s.Err != "" {
			continue
		}
		switch n := final[s.JobID]; {
		case n == 0:
			out = append(out, Violation{OracleExactlyOnce, s.JobID,
				"accepted submission missing from the final job table"})
		case n > 1:
			out = append(out, Violation{OracleExactlyOnce, s.JobID,
				fmt.Sprintf("job appears %d times in the final job table", n)})
		}
		final[s.JobID] = 1 // report once per job, not per replay
	}
	for _, v := range h.Jobs {
		if !submitted[v.ID] {
			out = append(out, Violation{OracleExactlyOnce, v.ID,
				"job table holds a job this episode never submitted"})
		}
	}
	return out
}

// failSafeDeclared reports whether result bytes carry a numeric_health block
// with fail_safe set — the one sanctioned way a completed result's *payload*
// (metrics, trace) may differ from the fault-free reference.
func failSafeDeclared(result []byte) bool {
	var doc struct {
		Numeric *struct {
			FailSafe bool `json:"fail_safe"`
		} `json:"numeric_health"`
	}
	if err := json.Unmarshal(result, &doc); err != nil {
		return false
	}
	return doc.Numeric != nil && doc.Numeric.FailSafe
}

// journalDeclaresActivity reports whether the result's numeric_health journal
// accounts for at least one absorbed event (a recovered or held step, a
// refinement, a violation, or fail-safe). A journal-only divergence from the
// reference is sanctioned exactly when the journal owns up to the absorbed
// faults; a differing journal that claims nothing happened is a lie.
func journalDeclaresActivity(result []byte) bool {
	var doc struct {
		Numeric *struct {
			Refinements    int  `json:"refinements"`
			RecoveredSteps int  `json:"recovered_steps"`
			HeldSteps      int  `json:"held_steps"`
			Violations     int  `json:"violations"`
			FailSafe       bool `json:"fail_safe"`
		} `json:"numeric_health"`
	}
	if err := json.Unmarshal(result, &doc); err != nil {
		return false
	}
	n := doc.Numeric
	if n == nil {
		return false
	}
	return n.Refinements+n.RecoveredSteps+n.HeldSteps+n.Violations > 0 || n.FailSafe
}

// stripJournal removes the top-level numeric_health block from a result
// document and re-marshals the rest canonically (sorted keys, raw value bytes
// preserved), so two results can be compared payload-to-payload. Documents
// that don't parse are returned unchanged — the comparison then falls back to
// whole-byte equality.
func stripJournal(result []byte) []byte {
	var m map[string]json.RawMessage
	if err := json.Unmarshal(result, &m); err != nil {
		return result
	}
	delete(m, "numeric_health")
	out, err := json.Marshal(m)
	if err != nil {
		return result
	}
	return out
}

// payloadIdentical reports whether two result documents are byte-identical
// outside the numeric_health journal.
func payloadIdentical(a, b []byte) bool {
	return bytes.Equal(stripJournal(a), stripJournal(b))
}

// refusalRe matches the typed failure modes a job may legitimately end in:
// a confirmed numerical divergence (plain controllers refuse rather than
// emit garbage) or an explicit cancellation.
var refusalRe = regexp.MustCompile(`confirmed numeric divergence|context canceled|canceled`)

// checkResultIntegrity: a done job's durable result must be byte-identical
// to the fault-free reference, with two sanctioned exceptions: a payload
// divergence declared by the controller's fail-safe, or a journal-only
// divergence (payload byte-identical, numeric_health differs) whose journal
// accounts for the absorbed faults — e.g. recovered_steps counting transient
// upsets the FT policy rode through. A failed job must carry a clean typed
// refusal, not an arbitrary error.
func checkResultIntegrity(h *History, ref map[string][]byte) []Violation {
	var out []Violation
	for _, r := range h.Results {
		switch r.State {
		case "done":
			want, ok := ref[r.JobID]
			if !ok {
				out = append(out, Violation{OracleResultIntegrity, r.JobID,
					"no reference result to compare against"})
				continue
			}
			if len(r.Result) == 0 {
				out = append(out, Violation{OracleResultIntegrity, r.JobID,
					"done job served no result bytes"})
				continue
			}
			if bytes.Equal(r.Result, want) {
				continue
			}
			if failSafeDeclared(r.Result) {
				continue // a declared degraded result, by §15's contract
			}
			if payloadIdentical(r.Result, want) {
				if journalDeclaresActivity(r.Result) {
					continue // journal-only divergence, honestly accounted for
				}
				out = append(out, Violation{OracleResultIntegrity, r.JobID,
					"numeric_health journal differs from the reference yet declares no activity"})
				continue
			}
			out = append(out, Violation{OracleResultIntegrity, r.JobID, fmt.Sprintf(
				"result payload differs from the fault-free reference (%d vs %d bytes) without declaring fail-safe",
				len(r.Result), len(want))})
		case "failed":
			if !refusalRe.MatchString(r.Error) {
				out = append(out, Violation{OracleResultIntegrity, r.JobID,
					"failed without a clean typed refusal: " + r.Error})
			}
		default:
			out = append(out, Violation{OracleResultIntegrity, r.JobID,
				"ended in unexpected state " + r.State})
		}
	}
	return out
}

// failSafeReason marks the sticky /readyz reason runTrace latches.
const failSafeReason = "numeric fail-safe"

// checkStickyFailSafe: within one daemon incarnation, once /readyz reports a
// numeric fail-safe it must keep reporting it — the whole point of the sticky
// latch is that an operator polling later still sees the divergence. A
// restart (new incarnation) legitimately clears it.
func checkStickyFailSafe(h *History, _ map[string][]byte) []Violation {
	var out []Violation
	latched := map[int]int{} // incarnation -> seq of first fail-safe sample
	for _, s := range h.Ready {
		has := false
		for _, reason := range s.Reasons {
			if strings.Contains(reason, failSafeReason) {
				has = true
				break
			}
		}
		if has {
			if _, ok := latched[s.Incarnation]; !ok {
				latched[s.Incarnation] = s.Seq
			}
			continue
		}
		if first, ok := latched[s.Incarnation]; ok {
			out = append(out, Violation{OracleStickyFailSafe, "", fmt.Sprintf(
				"readiness sample %d dropped the fail-safe reason latched at sample %d (incarnation %d)",
				s.Seq, first, s.Incarnation)})
		}
	}
	return out
}

// nonFiniteRe matches a bare NaN/Inf token in plain text (job errors,
// readiness reasons). Diagnoses deliberately spell values out as
// "not-a-number"/"overflow" (numguard), so any match is a leak.
var nonFiniteRe = regexp.MustCompile(`\bNaN\b|[+-]?\bInf\b`)

// nonFiniteValueRe matches a non-finite token in JSON *value* position —
// after a colon, comma, or opening bracket. Valid JSON cannot carry an
// unquoted NaN (encoding/json refuses it), so a value-position hit means a
// hand-rolled formatter leaked one. Tokens inside quoted strings are prose
// (a chaos scenario's Desc says "sensors read NaN" by design) and are fine.
var nonFiniteValueRe = regexp.MustCompile(`[:,\[]\s*(?:NaN|[+-]?Inf)\b`)

// checkNoNonFinite: no result document, job error, or readiness reason may
// carry a non-finite float token.
func checkNoNonFinite(h *History, _ map[string][]byte) []Violation {
	var out []Violation
	for _, r := range h.Results {
		if loc := nonFiniteValueRe.Find(r.Result); loc != nil {
			out = append(out, Violation{OracleNoNonFinite, r.JobID,
				fmt.Sprintf("result carries a non-finite token %q", loc)})
		}
		if nonFiniteRe.MatchString(r.Error) {
			out = append(out, Violation{OracleNoNonFinite, r.JobID,
				"job error carries a non-finite token: " + r.Error})
		}
	}
	for _, v := range h.Jobs {
		if nonFiniteRe.MatchString(v.Error) {
			out = append(out, Violation{OracleNoNonFinite, v.ID,
				"job-table error carries a non-finite token: " + v.Error})
		}
	}
	for _, s := range h.Ready {
		for _, reason := range s.Reasons {
			if nonFiniteRe.MatchString(reason) {
				out = append(out, Violation{OracleNoNonFinite, "",
					"readiness reason carries a non-finite token: " + reason})
			}
		}
	}
	return out
}

// checkReadyConsistency: no submission may be accepted (2xx) on a response
// the daemon itself stamped draining or storage-degraded — both refusals are
// decided atomically inside submit, so an acceptance riding such a response
// means the gate and the admission disagreed.
func checkReadyConsistency(h *History, _ map[string][]byte) []Violation {
	var out []Violation
	for _, c := range h.Calls {
		if c.Method != http.MethodPost || !strings.HasPrefix(c.Path, "/jobs") {
			continue
		}
		if c.Status != http.StatusOK && c.Status != http.StatusAccepted {
			continue
		}
		if strings.Contains(c.ReadyState, "draining") ||
			strings.Contains(c.ReadyState, "storage degraded") {
			out = append(out, Violation{OracleReadyConsistency, "", fmt.Sprintf(
				"call %d: submission accepted (%d) on a response stamped %q",
				c.Seq, c.Status, c.ReadyState)})
		}
	}
	return out
}

// checkLeaseSafety replays the coordinator's lease ledger shard by shard and
// proves the fencing discipline held no matter what the clocks did: tokens
// never move backwards and each grant strictly bumps; a shard never carries
// two holders at once (a grant or re-adoption only lands on an unheld shard);
// an expiry or completion names the actual holder under the holder's own
// token; and a shard completes at most once, with nothing after. A skewed or
// stepped clock may expire leases early or late — that costs reassignment
// work, never safety — so any violation here means wall time leaked into the
// lease arithmetic.
func checkLeaseSafety(h *History, _ map[string][]byte) []Violation {
	var out []Violation
	type shardState struct {
		holder    string
		token     uint64 // highest token observed
		completed bool
	}
	shards := map[string]*shardState{}
	lastSeq := int64(-1)
	for _, e := range h.Leases {
		if e.Seq <= lastSeq {
			out = append(out, Violation{OracleLeaseSafety, e.JobID, fmt.Sprintf(
				"ledger seq went %d -> %d; the coordinator's total order is broken", lastSeq, e.Seq)})
		}
		lastSeq = e.Seq
		key := e.JobID + "/" + e.ShardID
		st := shards[key]
		if st == nil {
			st = &shardState{}
			shards[key] = st
		}
		if st.completed {
			out = append(out, Violation{OracleLeaseSafety, e.JobID, fmt.Sprintf(
				"shard %s saw %q (seq %d) after its completion", e.ShardID, e.Event, e.Seq)})
		}
		switch e.Event {
		case pool.EventGrant:
			if st.holder != "" {
				out = append(out, Violation{OracleLeaseSafety, e.JobID, fmt.Sprintf(
					"shard %s granted to %s while %s still held it (seq %d)",
					e.ShardID, e.Worker, st.holder, e.Seq)})
			}
			if e.Token <= st.token {
				out = append(out, Violation{OracleLeaseSafety, e.JobID, fmt.Sprintf(
					"shard %s grant token %d did not advance past %d (seq %d): a fenced holder's writes could land",
					e.ShardID, e.Token, st.token, e.Seq)})
			}
			st.holder, st.token = e.Worker, e.Token
		case pool.EventReAdopt:
			if st.holder != "" {
				out = append(out, Violation{OracleLeaseSafety, e.JobID, fmt.Sprintf(
					"shard %s re-adopted by %s while %s still held it (seq %d)",
					e.ShardID, e.Worker, st.holder, e.Seq)})
			}
			if e.Token < st.token {
				out = append(out, Violation{OracleLeaseSafety, e.JobID, fmt.Sprintf(
					"shard %s re-adoption token %d below observed %d (seq %d)",
					e.ShardID, e.Token, st.token, e.Seq)})
			}
			st.holder, st.token = e.Worker, e.Token
		case pool.EventExpire:
			if st.holder == "" {
				out = append(out, Violation{OracleLeaseSafety, e.JobID, fmt.Sprintf(
					"shard %s expired an unheld lease (seq %d)", e.ShardID, e.Seq)})
			} else if e.Worker != st.holder {
				out = append(out, Violation{OracleLeaseSafety, e.JobID, fmt.Sprintf(
					"shard %s expiry fenced %s but %s held the lease (seq %d)",
					e.ShardID, e.Worker, st.holder, e.Seq)})
			}
			if e.Token != st.token {
				out = append(out, Violation{OracleLeaseSafety, e.JobID, fmt.Sprintf(
					"shard %s expiry carried token %d, holder held %d (seq %d)",
					e.ShardID, e.Token, st.token, e.Seq)})
			}
			st.holder = ""
		case pool.EventComplete:
			if st.holder == "" {
				out = append(out, Violation{OracleLeaseSafety, e.JobID, fmt.Sprintf(
					"shard %s completed with no lease held (seq %d)", e.ShardID, e.Seq)})
			} else if e.Worker != st.holder {
				out = append(out, Violation{OracleLeaseSafety, e.JobID, fmt.Sprintf(
					"shard %s completed by %s but %s held the lease (seq %d)",
					e.ShardID, e.Worker, st.holder, e.Seq)})
			}
			if e.Token != st.token {
				out = append(out, Violation{OracleLeaseSafety, e.JobID, fmt.Sprintf(
					"shard %s completion carried token %d, lease held %d (seq %d): a fenced completion landed",
					e.ShardID, e.Token, st.token, e.Seq)})
			}
			st.holder = ""
			st.completed = true
		default:
			out = append(out, Violation{OracleLeaseSafety, e.JobID, fmt.Sprintf(
				"ledger carries unknown event %q (seq %d)", e.Event, e.Seq)})
		}
	}
	return out
}

// checkBoundedLiveness: chaos may slow the system down but must never strand
// it — every accepted submission reaches a terminal observation, and the
// final job table holds nothing still queued or running after the episode's
// drain. The clock layer is the classic way to break this: a backoff
// stretched by a forward step, or a lease whose expiry a frozen clock never
// reaches, parks a job forever while every component believes it is waiting
// correctly.
func checkBoundedLiveness(h *History, _ map[string][]byte) []Violation {
	var out []Violation
	terminal := func(st daemon.JobState) bool {
		switch st {
		case daemon.StateDone, daemon.StateFailed, daemon.StateCanceled:
			return true
		}
		return false
	}
	observed := map[string]bool{}
	for _, r := range h.Results {
		if terminal(daemon.JobState(r.State)) {
			observed[r.JobID] = true
		}
	}
	reported := map[string]bool{}
	for _, s := range h.Submissions {
		if s.Err != "" || reported[s.JobID] {
			continue
		}
		reported[s.JobID] = true
		if !observed[s.JobID] {
			out = append(out, Violation{OracleBoundedLiveness, s.JobID,
				"accepted submission never reached a terminal result observation"})
		}
	}
	for _, v := range h.Jobs {
		if !terminal(v.State) {
			out = append(out, Violation{OracleBoundedLiveness, v.ID, fmt.Sprintf(
				"job still %q in the final job table after the episode drained", v.State)})
		}
	}
	return out
}
