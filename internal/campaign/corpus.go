package campaign

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"tecfan/internal/schedfile"
)

// Entry is one committed crucible repro: a campaign spec plus replay
// metadata. The corpus under testdata/crucible is the regression memory of
// every compound-fault bug the crucible ever caught — CI replays all of it
// forever, so a fixed bug that comes back fails loudly with its original
// minimal schedule attached.
type Entry struct {
	// Note says what this entry pins: the incident, the property, or why the
	// spec is shaped the way it is.
	Note string `json:"note,omitempty"`
	// Oracle names the oracle that originally failed, when the entry came out
	// of the minimizer. Documentation only — replay always runs the whole
	// catalog and demands zero violations.
	Oracle string `json:"oracle,omitempty"`
	// Episodes is how many seeded episodes to replay (default 1). Minimized
	// repros carry pinned injector seeds, so one episode is the whole story;
	// hand-written smoke entries may sweep several.
	Episodes int `json:"episodes,omitempty"`
	// Spec is the campaign to replay.
	Spec Spec `json:"spec"`

	// Path is where the entry was loaded from; set by LoadCorpus/LoadEntry,
	// never serialized.
	Path string `json:"-"`
}

// Validate checks the replay metadata and the embedded spec.
func (e Entry) Validate() error {
	if e.Episodes < 0 {
		return fmt.Errorf("campaign: corpus entry: episodes must be non-negative")
	}
	return e.Spec.Validate()
}

// LoadEntry reads one corpus entry, normalizing Episodes to at least 1.
func LoadEntry(path string) (Entry, error) {
	var e Entry
	if err := schedfile.Load(path, &e, func() error { return e.Validate() }); err != nil {
		return Entry{}, err
	}
	if e.Episodes == 0 {
		e.Episodes = 1
	}
	e.Path = path
	return e, nil
}

// LoadCorpus loads every *.json entry under dir, in name order (glob order
// is lexical, so replay order is deterministic). An empty or missing corpus
// is an error: the caller asked to replay regressions that are not there.
func LoadCorpus(dir string) ([]Entry, error) {
	paths, err := filepath.Glob(filepath.Join(dir, "*.json"))
	if err != nil {
		return nil, fmt.Errorf("campaign: corpus %s: %w", dir, err)
	}
	if len(paths) == 0 {
		return nil, fmt.Errorf("campaign: corpus %s: no *.json entries", dir)
	}
	entries := make([]Entry, 0, len(paths))
	for _, p := range paths {
		e, err := LoadEntry(p)
		if err != nil {
			return nil, err
		}
		entries = append(entries, e)
	}
	return entries, nil
}

// WriteEntry writes a corpus entry as indented JSON — the form the minimizer
// emits and humans review in a diff.
func WriteEntry(path string, e Entry) error {
	if err := e.Validate(); err != nil {
		return err
	}
	data, err := json.MarshalIndent(e, "", "  ")
	if err != nil {
		return fmt.Errorf("campaign: encoding corpus entry: %w", err)
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
