package campaign

import (
	"sync"

	"tecfan/internal/client"
	"tecfan/internal/daemon"
	"tecfan/internal/pool"
)

// History is everything one episode's client observed, in observation order.
// It is the single input the oracle catalog judges — nothing an oracle needs
// may live only in a process log. Seq numbers give one total order across the
// record kinds (the recorder hands them out under one lock), so "did the
// fail-safe reason ever un-stick?" is answerable without wall-clock times,
// which would poison determinism and mean nothing across machines anyway.
type History struct {
	Campaign string `json:"campaign,omitempty"`
	Episode  int    `json:"episode"`

	// Calls are every client attempt, including ones that never reached the
	// wire (breaker-denied) or never got a response (transport error).
	Calls []Call `json:"calls"`
	// Submissions are the logical submit outcomes, two per job per episode
	// (the second is the idempotency replay).
	Submissions []Submission `json:"submissions"`
	// Results are the terminal observation per job: state, error, and the
	// durable result bytes for done jobs.
	Results []ResultRecord `json:"results"`
	// Ready are /readyz probe samples, tagged with the daemon incarnation
	// they were taken in (restarts reset sticky state by design).
	Ready []ReadySample `json:"ready"`
	// Procs are the timeline actions the driver actually applied.
	Procs []ProcEvent `json:"procs,omitempty"`
	// Jobs is the final GET /jobs listing.
	Jobs []daemon.JobView `json:"jobs"`
	// Leases is the coordinator's append-only lease ledger (grant / expire /
	// re-adopt / complete), fetched after the final jobs listing. Its Seq is
	// the coordinator's own total order, independent of the History Seq space;
	// the lease-safety oracle replays it per shard.
	Leases []pool.LeaseEvent `json:"leases,omitempty"`
}

// Call is one client attempt (see client.ObservedCall).
type Call struct {
	Seq        int    `json:"seq"`
	Method     string `json:"method"`
	Path       string `json:"path"`
	Retry      int    `json:"retry"`
	Status     int    `json:"status,omitempty"`
	Err        string `json:"err,omitempty"`
	RequestID  string `json:"request_id,omitempty"`
	ReadyState string `json:"ready_state,omitempty"`
}

// Submission is one logical SubmitWithKey outcome.
type Submission struct {
	Seq          int    `json:"seq"`
	JobID        string `json:"job_id"`
	Key          string `json:"key"`
	ReturnedID   string `json:"returned_id,omitempty"`
	Deduplicated bool   `json:"deduplicated,omitempty"`
	Err          string `json:"err,omitempty"`
}

// ResultRecord is a job's terminal observation.
type ResultRecord struct {
	Seq      int    `json:"seq"`
	JobID    string `json:"job_id"`
	State    string `json:"state"`
	Error    string `json:"error,omitempty"`
	Attempts int    `json:"attempts,omitempty"`
	Resumed  bool   `json:"resumed,omitempty"`
	Result   []byte `json:"result,omitempty"`
}

// ReadySample is one /readyz observation.
type ReadySample struct {
	Seq         int      `json:"seq"`
	Incarnation int      `json:"incarnation"`
	Ready       bool     `json:"ready"`
	Reasons     []string `json:"reasons,omitempty"`
}

// ProcEvent is one applied timeline action.
type ProcEvent struct {
	Seq    int    `json:"seq"`
	Target string `json:"target"`
	Action string `json:"action"`
}

// Recorder accumulates a History from concurrent observers: the client's
// per-attempt hook, the driver's readiness prober, the timeline executor.
// All methods are safe for concurrent use; Seq order is assignment order.
type Recorder struct {
	mu          sync.Mutex
	h           History
	seq         int
	incarnation int
}

// NewRecorder starts an empty history for one episode.
func NewRecorder(campaignName string, episode int) *Recorder {
	return &Recorder{h: History{Campaign: campaignName, Episode: episode}}
}

func (r *Recorder) next() int {
	r.seq++
	return r.seq
}

// Observer adapts the recorder to client.Config.Observer.
func (r *Recorder) Observer() func(client.ObservedCall) {
	return func(oc client.ObservedCall) {
		r.mu.Lock()
		defer r.mu.Unlock()
		r.h.Calls = append(r.h.Calls, Call{
			Seq: r.next(), Method: oc.Method, Path: oc.Path, Retry: oc.Retry,
			Status: oc.Status, Err: oc.Err,
			RequestID: oc.RequestID, ReadyState: oc.ReadyState,
		})
	}
}

// Submission records one logical submit outcome.
func (r *Recorder) Submission(jobID, key, returnedID string, dedup bool, err error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := Submission{Seq: r.next(), JobID: jobID, Key: key, ReturnedID: returnedID, Deduplicated: dedup}
	if err != nil {
		s.Err = err.Error()
	}
	r.h.Submissions = append(r.h.Submissions, s)
}

// Result records a job's terminal observation. result may be nil for
// non-done states.
func (r *Recorder) Result(v daemon.JobView, result []byte) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.h.Results = append(r.h.Results, ResultRecord{
		Seq: r.next(), JobID: v.ID, State: string(v.State), Error: v.Error,
		Attempts: v.Attempts, Resumed: v.Resumed, Result: result,
	})
}

// Ready records one /readyz probe under the current daemon incarnation.
func (r *Recorder) Ready(ready bool, reasons []string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.h.Ready = append(r.h.Ready, ReadySample{
		Seq: r.next(), Incarnation: r.incarnation, Ready: ready,
		Reasons: append([]string(nil), reasons...),
	})
}

// Proc records an applied timeline action. A daemon restart bumps the
// incarnation: sticky readiness state legitimately resets across it.
func (r *Recorder) Proc(target, action string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.h.Procs = append(r.h.Procs, ProcEvent{Seq: r.next(), Target: target, Action: action})
	if target == TargetDaemon && action == ActRestart {
		r.incarnation++
	}
}

// Jobs records the final jobs listing.
func (r *Recorder) Jobs(views []daemon.JobView) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.h.Jobs = append([]daemon.JobView(nil), views...)
}

// Leases records the coordinator's lease ledger snapshot.
func (r *Recorder) Leases(events []pool.LeaseEvent) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.h.Leases = append([]pool.LeaseEvent(nil), events...)
}

// History snapshots the accumulated record.
func (r *Recorder) History() *History {
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.h
	return &h
}
