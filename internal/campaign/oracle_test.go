package campaign

import (
	"strings"
	"testing"

	"tecfan/internal/daemon"
	"tecfan/internal/pool"
)

// greenHistory is a violation-free episode: one job submitted twice under one
// key, deduplicated on the replay, done with reference-identical bytes.
func greenHistory() (*History, map[string][]byte) {
	ref := map[string][]byte{"a": []byte(`{"metrics":{"e":1.5}}`)}
	return &History{
		Calls: []Call{
			{Seq: 1, Method: "POST", Path: "/jobs", Status: 202, ReadyState: "ok"},
			{Seq: 2, Method: "POST", Path: "/jobs", Status: 200, ReadyState: "ok"},
		},
		Submissions: []Submission{
			{Seq: 3, JobID: "a", Key: "k", ReturnedID: "a"},
			{Seq: 4, JobID: "a", Key: "k", ReturnedID: "a", Deduplicated: true},
		},
		Results: []ResultRecord{
			{Seq: 5, JobID: "a", State: "done", Result: ref["a"]},
		},
		Ready: []ReadySample{
			{Seq: 6, Incarnation: 0, Ready: true},
		},
		Jobs: []daemon.JobView{{ID: "a", State: daemon.StateDone}},
	}, ref
}

func wantOracle(t *testing.T, vs []Violation, oracle, detail string) {
	t.Helper()
	for _, v := range vs {
		if v.Oracle == oracle && strings.Contains(v.Detail, detail) {
			return
		}
	}
	t.Fatalf("no %s violation mentioning %q in %v", oracle, detail, vs)
}

func TestEvaluateGreenHistory(t *testing.T) {
	h, ref := greenHistory()
	if vs := Evaluate(h, ref); len(vs) != 0 {
		t.Fatalf("green history must produce no violations, got %v", vs)
	}
}

func TestExactlyOnce(t *testing.T) {
	t.Run("failed submission", func(t *testing.T) {
		h, ref := greenHistory()
		h.Submissions[1].Err = "gave up after 4 retries"
		wantOracle(t, Evaluate(h, ref), OracleExactlyOnce, "ultimately failed")
	})
	t.Run("key resolves to two jobs", func(t *testing.T) {
		h, ref := greenHistory()
		h.Submissions[1].ReturnedID = "a2"
		wantOracle(t, Evaluate(h, ref), OracleExactlyOnce, "two jobs")
	})
	t.Run("lost job", func(t *testing.T) {
		h, ref := greenHistory()
		h.Jobs = nil
		wantOracle(t, Evaluate(h, ref), OracleExactlyOnce, "missing from the final job table")
	})
	t.Run("duplicated job", func(t *testing.T) {
		h, ref := greenHistory()
		h.Jobs = append(h.Jobs, h.Jobs[0])
		wantOracle(t, Evaluate(h, ref), OracleExactlyOnce, "2 times")
	})
	t.Run("stranger job", func(t *testing.T) {
		h, ref := greenHistory()
		h.Jobs = append(h.Jobs, daemon.JobView{ID: "ghost", State: daemon.StateDone})
		wantOracle(t, Evaluate(h, ref), OracleExactlyOnce, "never submitted")
	})
}

func TestResultIntegrity(t *testing.T) {
	t.Run("silent divergence", func(t *testing.T) {
		h, ref := greenHistory()
		h.Results[0].Result = []byte(`{"metrics":{"e":1.6}}`)
		wantOracle(t, Evaluate(h, ref), OracleResultIntegrity, "differs from the fault-free reference")
	})
	t.Run("journal-only divergence with declared activity is sanctioned", func(t *testing.T) {
		// Payload identical to the reference; only the numeric_health
		// journal differs, and it accounts for the absorbed upsets.
		h, ref := greenHistory()
		ref["a"] = []byte(`{"metrics":{"e":1.5},"numeric_health":{"recovered_steps":0,"fail_safe":false}}`)
		h.Results[0].Result = []byte(`{"metrics":{"e":1.5},"numeric_health":{"recovered_steps":3,"fail_safe":false}}`)
		if vs := Evaluate(h, ref); len(vs) != 0 {
			t.Fatalf("journal-only divergence with declared recoveries must pass, got %v", vs)
		}
	})
	t.Run("journal-only divergence claiming nothing happened", func(t *testing.T) {
		// The journal differs from the reference yet every counter is zero:
		// a journal that lies about absorbed activity is a violation.
		h, ref := greenHistory()
		ref["a"] = []byte(`{"metrics":{"e":1.5},"numeric_health":{"recovered_steps":0,"held_steps":0,"fail_safe":false}}`)
		h.Results[0].Result = []byte(`{"metrics":{"e":1.5},"numeric_health":{"recovered_steps":0,"fail_safe":false}}`)
		wantOracle(t, Evaluate(h, ref), OracleResultIntegrity, "declares no activity")
	})
	t.Run("payload divergence with an active journal still fails", func(t *testing.T) {
		// Declared recoveries do not excuse a payload that drifted: only
		// fail_safe sanctions metric divergence.
		h, ref := greenHistory()
		h.Results[0].Result = []byte(`{"metrics":{"e":1.6},"numeric_health":{"recovered_steps":3,"fail_safe":false}}`)
		wantOracle(t, Evaluate(h, ref), OracleResultIntegrity, "differs from the fault-free reference")
	})
	t.Run("declared fail-safe is sanctioned", func(t *testing.T) {
		h, ref := greenHistory()
		h.Results[0].Result = []byte(`{"metrics":{"e":9.9},"numeric_health":{"fail_safe":true}}`)
		if vs := Evaluate(h, ref); len(vs) != 0 {
			t.Fatalf("declared fail-safe must pass, got %v", vs)
		}
	})
	t.Run("typed refusal is sanctioned", func(t *testing.T) {
		h, ref := greenHistory()
		h.Results[0] = ResultRecord{Seq: 5, JobID: "a", State: "failed",
			Error: "trace: confirmed numeric divergence at step 41"}
		if vs := Evaluate(h, ref); len(vs) != 0 {
			t.Fatalf("typed refusal must pass, got %v", vs)
		}
	})
	t.Run("arbitrary failure", func(t *testing.T) {
		h, ref := greenHistory()
		h.Results[0] = ResultRecord{Seq: 5, JobID: "a", State: "failed", Error: "segfault adjacent mishap"}
		wantOracle(t, Evaluate(h, ref), OracleResultIntegrity, "without a clean typed refusal")
	})
	t.Run("empty result", func(t *testing.T) {
		h, ref := greenHistory()
		h.Results[0].Result = nil
		wantOracle(t, Evaluate(h, ref), OracleResultIntegrity, "no result bytes")
	})
}

func TestStickyFailSafe(t *testing.T) {
	failSafe := []string{"numeric fail-safe: job a: nan"}
	t.Run("dropped within an incarnation", func(t *testing.T) {
		h, ref := greenHistory()
		h.Results[0].Result = []byte(`{"metrics":{"e":9.9},"numeric_health":{"fail_safe":true}}`)
		h.Ready = []ReadySample{
			{Seq: 6, Incarnation: 0, Ready: false, Reasons: failSafe},
			{Seq: 7, Incarnation: 0, Ready: true},
		}
		wantOracle(t, Evaluate(h, ref), OracleStickyFailSafe, "dropped the fail-safe reason")
	})
	t.Run("reset across a restart is sanctioned", func(t *testing.T) {
		h, ref := greenHistory()
		h.Results[0].Result = []byte(`{"metrics":{"e":9.9},"numeric_health":{"fail_safe":true}}`)
		h.Ready = []ReadySample{
			{Seq: 6, Incarnation: 0, Ready: false, Reasons: failSafe},
			{Seq: 7, Incarnation: 1, Ready: true},
		}
		if vs := Evaluate(h, ref); len(vs) != 0 {
			t.Fatalf("restart legitimately clears the latch, got %v", vs)
		}
	})
}

func TestNoNonFinite(t *testing.T) {
	t.Run("NaN in result", func(t *testing.T) {
		h, ref := greenHistory()
		ref["a"] = []byte(`{"metrics":{"e":NaN}}`)
		h.Results[0].Result = ref["a"] // byte-identical, still a leak
		wantOracle(t, Evaluate(h, ref), OracleNoNonFinite, "non-finite token")
	})
	t.Run("Inf in job error", func(t *testing.T) {
		h, ref := greenHistory()
		h.Jobs[0].Error = "temps blew up to +Inf"
		wantOracle(t, Evaluate(h, ref), OracleNoNonFinite, "non-finite token")
	})
	t.Run("NaN inside a quoted string is prose", func(t *testing.T) {
		h, ref := greenHistory()
		ref["a"] = []byte(`{"metrics":{"e":1.5},"desc":"three die sensors read NaN"}`)
		h.Results[0].Result = ref["a"]
		if vs := Evaluate(h, ref); len(vs) != 0 {
			t.Fatalf("prose mention of NaN in a string value must pass, got %v", vs)
		}
	})
	t.Run("Inf in array value position", func(t *testing.T) {
		h, ref := greenHistory()
		ref["a"] = []byte(`{"temps":[41.2, +Inf, 39.9]}`)
		h.Results[0].Result = ref["a"]
		wantOracle(t, Evaluate(h, ref), OracleNoNonFinite, "non-finite token")
	})
	t.Run("spelled-out diagnosis passes", func(t *testing.T) {
		h, ref := greenHistory()
		ref["a"] = []byte(`{"metrics":{"e":1.5},"numeric_health":{"events":["not-a-number absorbed"]}}`)
		h.Results[0].Result = ref["a"]
		if vs := Evaluate(h, ref); len(vs) != 0 {
			t.Fatalf("spelled-out diagnosis must pass, got %v", vs)
		}
	})
}

func TestReadyConsistency(t *testing.T) {
	t.Run("accepted while draining", func(t *testing.T) {
		h, ref := greenHistory()
		h.Calls[0].ReadyState = "draining"
		wantOracle(t, Evaluate(h, ref), OracleReadyConsistency, "draining")
	})
	t.Run("accepted while storage degraded", func(t *testing.T) {
		h, ref := greenHistory()
		h.Calls[1].ReadyState = "storage degraded: state dir out of space"
		wantOracle(t, Evaluate(h, ref), OracleReadyConsistency, "storage degraded")
	})
	t.Run("rejected while draining is consistent", func(t *testing.T) {
		h, ref := greenHistory()
		h.Calls = append(h.Calls, Call{Seq: 9, Method: "POST", Path: "/jobs", Status: 503, ReadyState: "draining"})
		if vs := Evaluate(h, ref); len(vs) != 0 {
			t.Fatalf("503 while draining is the correct behavior, got %v", vs)
		}
	})
	t.Run("GET while draining is consistent", func(t *testing.T) {
		h, ref := greenHistory()
		h.Calls = append(h.Calls, Call{Seq: 9, Method: "GET", Path: "/jobs/a", Status: 200, ReadyState: "draining"})
		if vs := Evaluate(h, ref); len(vs) != 0 {
			t.Fatalf("reads during drain are fine, got %v", vs)
		}
	})
}

// TestRecorderIncarnation: a daemon restart must bump the incarnation on
// subsequent readiness samples — that is what lets the sticky oracle bless a
// post-restart reset.
func TestRecorderIncarnation(t *testing.T) {
	rec := NewRecorder("t", 0)
	rec.Ready(false, []string{"numeric fail-safe: job a: nan"})
	rec.Proc(TargetDaemon, ActRestart)
	rec.Ready(true, nil)
	h := rec.History()
	if h.Ready[0].Incarnation != 0 || h.Ready[1].Incarnation != 1 {
		t.Fatalf("incarnations = %d, %d; want 0, 1", h.Ready[0].Incarnation, h.Ready[1].Incarnation)
	}
	if vs := Evaluate(h, nil); len(vs) != 0 {
		t.Fatalf("reset across recorded restart must pass, got %v", vs)
	}
	if h.Procs[0].Seq >= h.Ready[1].Seq || h.Ready[0].Seq >= h.Procs[0].Seq {
		t.Fatal("Seq must totally order records across kinds")
	}
}

// greenLedger is a safety-clean shard lifecycle: grant, expiry fencing the
// holder, a re-grant under a bumped token, and one completion.
func greenLedger() []pool.LeaseEvent {
	return []pool.LeaseEvent{
		{Seq: 0, Event: pool.EventGrant, JobID: "a", ShardID: "s0", Worker: "w1", Token: 1},
		{Seq: 1, Event: pool.EventExpire, JobID: "a", ShardID: "s0", Worker: "w1", Token: 1},
		{Seq: 2, Event: pool.EventGrant, JobID: "a", ShardID: "s0", Worker: "w2", Token: 2},
		{Seq: 3, Event: pool.EventComplete, JobID: "a", ShardID: "s0", Worker: "w2", Token: 2},
	}
}

func TestLeaseSafety(t *testing.T) {
	h, ref := greenHistory()
	h.Leases = greenLedger()
	if vs := Evaluate(h, ref); len(vs) != 0 {
		t.Fatalf("clean ledger must be violation-free, got %v", vs)
	}

	// Double grant: a second holder while the first was never fenced.
	h.Leases = []pool.LeaseEvent{
		{Seq: 0, Event: pool.EventGrant, JobID: "a", ShardID: "s0", Worker: "w1", Token: 1},
		{Seq: 1, Event: pool.EventGrant, JobID: "a", ShardID: "s0", Worker: "w2", Token: 2},
	}
	wantOracle(t, checkLeaseSafety(h, ref), OracleLeaseSafety, "while w1 still held it")

	// Token regression on re-grant after an expiry.
	h.Leases = []pool.LeaseEvent{
		{Seq: 0, Event: pool.EventGrant, JobID: "a", ShardID: "s0", Worker: "w1", Token: 2},
		{Seq: 1, Event: pool.EventExpire, JobID: "a", ShardID: "s0", Worker: "w1", Token: 2},
		{Seq: 2, Event: pool.EventGrant, JobID: "a", ShardID: "s0", Worker: "w2", Token: 2},
	}
	wantOracle(t, checkLeaseSafety(h, ref), OracleLeaseSafety, "did not advance")

	// A fenced completion: complete under a token the current lease outran.
	h.Leases = []pool.LeaseEvent{
		{Seq: 0, Event: pool.EventGrant, JobID: "a", ShardID: "s0", Worker: "w1", Token: 1},
		{Seq: 1, Event: pool.EventExpire, JobID: "a", ShardID: "s0", Worker: "w1", Token: 1},
		{Seq: 2, Event: pool.EventGrant, JobID: "a", ShardID: "s0", Worker: "w2", Token: 2},
		{Seq: 3, Event: pool.EventComplete, JobID: "a", ShardID: "s0", Worker: "w1", Token: 1},
	}
	wantOracle(t, checkLeaseSafety(h, ref), OracleLeaseSafety, "completed by w1 but w2 held")

	// Double completion.
	h.Leases = append(greenLedger(),
		pool.LeaseEvent{Seq: 4, Event: pool.EventGrant, JobID: "a", ShardID: "s0", Worker: "w3", Token: 3})
	wantOracle(t, checkLeaseSafety(h, ref), OracleLeaseSafety, "after its completion")

	// Expiry of an unheld lease.
	h.Leases = []pool.LeaseEvent{
		{Seq: 0, Event: pool.EventExpire, JobID: "a", ShardID: "s0", Worker: "w1", Token: 1},
	}
	wantOracle(t, checkLeaseSafety(h, ref), OracleLeaseSafety, "unheld lease")

	// Broken total order.
	h.Leases = []pool.LeaseEvent{
		{Seq: 1, Event: pool.EventGrant, JobID: "a", ShardID: "s0", Worker: "w1", Token: 1},
		{Seq: 1, Event: pool.EventComplete, JobID: "a", ShardID: "s0", Worker: "w1", Token: 1},
	}
	wantOracle(t, checkLeaseSafety(h, ref), OracleLeaseSafety, "total order is broken")
}

func TestBoundedLiveness(t *testing.T) {
	h, ref := greenHistory()
	if vs := checkBoundedLiveness(h, ref); len(vs) != 0 {
		t.Fatalf("green history must be live, got %v", vs)
	}

	// A job stranded mid-run in the final table.
	h.Jobs = []daemon.JobView{{ID: "a", State: daemon.StateRunning}}
	wantOracle(t, checkBoundedLiveness(h, ref), OracleBoundedLiveness, "still \"running\"")

	// An accepted submission that never reached a terminal observation.
	h, ref = greenHistory()
	h.Results = nil
	wantOracle(t, checkBoundedLiveness(h, ref), OracleBoundedLiveness, "never reached a terminal")

	// Failed submissions are the exactly-once oracle's business, not a
	// liveness hole: nothing was accepted, so nothing is owed a terminal.
	h, ref = greenHistory()
	h.Submissions = []Submission{{Seq: 1, JobID: "b", Key: "k", Err: "refused"}}
	h.Results, h.Jobs = nil, nil
	if vs := checkBoundedLiveness(h, ref); len(vs) != 0 {
		t.Fatalf("rejected submissions owe no liveness, got %v", vs)
	}
}
