package campaign

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"tecfan/internal/clockfault"
	"tecfan/internal/daemon"
	"tecfan/internal/schedfile"
)

// clockedPoolSpec is the clock-chaos workload: one pooled trace job split
// across two workers, so every lease-protocol edge (grant, heartbeat renewal,
// expiry, completion) is on the episode's path.
func clockedPoolSpec(seed int64, sched *clockfault.Schedule) Spec {
	return Spec{
		Name: "clocked",
		Seed: seed,
		Jobs: []daemon.JobSpec{{
			ID: "tr", Kind: daemon.KindTrace, Bench: "cholesky", Threads: 16,
			Scale: 0.001, Policy: "TECfan-FT", Seed: 7,
		}},
		Pool:  &PoolSpec{Workers: 2, Chunk: 1},
		Clock: sched,
	}
}

// TestInProcClockChaosEpisode is the issue's acceptance episode: the
// coordinator's wall clock steps 90 seconds backwards while each worker's
// drifts independently, and the merged pooled result must still be
// byte-identical to the fault-free reference with the lease ledger
// safety-clean and every job terminal. Wall-clock lies of this magnitude
// dwarf the lease TTL — only monotonic lease arithmetic survives them.
func TestInProcClockChaosEpisode(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real pooled jobs")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()
	spec := clockedPoolSpec(29, &clockfault.Schedule{Seed: 31, Rules: []clockfault.Rule{
		{Kind: clockfault.KindStep, Proc: "daemon", AtOp: 1,
			Offset: schedfile.Duration(-90 * time.Second)},
		{Kind: clockfault.KindDrift, Proc: "crucible-w*", FromOp: 1, Rate: 0.25},
		{Kind: clockfault.KindJitter, Proc: "crucible-w*", FromOp: 1,
			Max: schedfile.Duration(5 * time.Millisecond), Prob: 0.5},
	}})
	opts := &RunOptions{Logf: t.Logf}
	ref, err := Reference(ctx, spec, 0, opts)
	if err != nil {
		t.Fatal(err)
	}
	h, err := RunEpisode(ctx, spec, 0, opts)
	if err != nil {
		t.Fatal(err)
	}
	if vs := Evaluate(h, ref); len(vs) != 0 {
		t.Fatalf("clock-chaos episode must be oracle-clean, got %v", vs)
	}
	if len(h.Leases) == 0 {
		t.Fatal("pooled episode recorded no lease ledger; the lease-safety oracle judged nothing")
	}
	for _, r := range h.Results {
		if r.State != string(daemon.StateDone) {
			t.Fatalf("job %s ended %s: %s", r.JobID, r.State, r.Error)
		}
		if !bytes.Equal(r.Result, ref[r.JobID]) {
			t.Fatalf("job %s: clock chaos changed the result bytes", r.JobID)
		}
	}
}

// randomSkewSchedule draws an adversarial clock schedule: every process gets
// an independent step of up to ±10 minutes, workers pick up drift and timer
// jitter, and sometimes the coordinator's wall clock freezes outright. Rates
// and offsets deliberately dwarf the pool lease TTL.
func randomSkewSchedule(rng *rand.Rand) *clockfault.Schedule {
	sched := &clockfault.Schedule{Seed: rng.Int63n(1 << 30)}
	procs := []string{"daemon", "crucible-w0", "crucible-w1"}
	for _, proc := range procs {
		if rng.Intn(4) == 0 {
			continue // this process keeps an honest clock
		}
		off := time.Duration(rng.Int63n(int64(10*time.Minute))) - 5*time.Minute
		if off == 0 {
			off = -90 * time.Second
		}
		sched.Rules = append(sched.Rules, clockfault.Rule{
			Kind: clockfault.KindStep, Proc: proc,
			AtOp: 1 + rng.Int63n(5), Offset: schedfile.Duration(off),
		})
	}
	sched.Rules = append(sched.Rules, clockfault.Rule{
		Kind: clockfault.KindDrift, Proc: "crucible-w*", FromOp: 1,
		Rate: rng.Float64()*4 - 2, // up to ±2 s of skew per elapsed second
	})
	if rng.Intn(2) == 0 {
		sched.Rules = append(sched.Rules, clockfault.Rule{
			Kind: clockfault.KindFreeze, Proc: "daemon",
			FromOp: 1 + rng.Int63n(3), ToOp: 10 + rng.Int63n(20),
		})
	}
	sched.Rules = append(sched.Rules, clockfault.Rule{
		Kind: clockfault.KindJitter, Proc: "*", FromOp: 1,
		Max: schedfile.Duration(3 * time.Millisecond), Prob: 0.5,
	})
	if len(sched.Rules) == 0 || sched.Validate() != nil {
		// Cannot happen with the draws above; guard against generator drift.
		sched.Rules = []clockfault.Rule{{Kind: clockfault.KindStep, Proc: "daemon",
			AtOp: 1, Offset: schedfile.Duration(-90 * time.Second)}}
	}
	return sched
}

// TestFencingSafetyUnderRandomSkewProperty quick-checks the lease discipline:
// for every randomized coordinator/worker skew schedule, the episode's lease
// ledger must replay safety-clean and every job must terminate. The property
// is that *no* combination of wall-clock lies reaches the fencing arithmetic
// — not that any particular schedule is survivable.
func TestFencingSafetyUnderRandomSkewProperty(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real pooled episodes per seed")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Minute)
	defer cancel()
	opts := &RunOptions{Logf: func(string, ...any) {}}
	ref, err := Reference(ctx, clockedPoolSpec(1, nil), 0, opts)
	if err != nil {
		t.Fatal(err)
	}
	for seed := int64(0); seed < 8; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(0x5eed<<8 | seed))
			sched := randomSkewSchedule(rng)
			spec := clockedPoolSpec(100+seed, sched)
			h, err := RunEpisode(ctx, spec, 0, opts)
			if err != nil {
				t.Fatalf("schedule %+v: %v", sched, err)
			}
			for _, v := range Evaluate(h, ref) {
				if v.Oracle == OracleLeaseSafety || v.Oracle == OracleBoundedLiveness {
					t.Errorf("schedule %+v: %s", sched, v)
				}
			}
			if len(h.Leases) == 0 {
				t.Error("episode recorded no lease ledger")
			}
		})
	}
}
