package campaign

import (
	"context"
	"errors"
	"testing"

	"tecfan/internal/daemon"
	"tecfan/internal/diskfault"
	"tecfan/internal/netfault"
	"tecfan/internal/numfault"
)

// hasNumRuleFrom reports whether the spec carries a num rule starting at
// exactly step from — the synthetic "bug trigger" the shrink tests plant.
func hasNumRuleFrom(s Spec, from int) bool {
	if s.Num == nil {
		return false
	}
	for _, r := range s.Num.Rules {
		if r.FromStep == from {
			return true
		}
	}
	return false
}

// TestMinimizePlantedRulesToCore is the satellite acceptance test: a 12-rule
// failing schedule whose failure needs exactly two of the rules (FromStep 40
// and FromStep 77, a planted interaction) must minimize to those two rules
// and nothing else — the extra job, the net schedule, and the disk rules all
// drop away.
func TestMinimizePlantedRulesToCore(t *testing.T) {
	spec := Spec{
		Name: "planted",
		Seed: 7,
		Jobs: []daemon.JobSpec{traceJob("a"), traceJob("b")},
		Net: &netfault.Schedule{Base: netfault.Fault{Drop: 0.2}, Windows: []netfault.Window{
			{From: 0, To: netfault.Duration(1e9), Partition: true},
		}},
		Disk: &diskfault.Schedule{Seed: 3, Rules: []diskfault.Rule{
			{Action: diskfault.ActEIO, Prob: 0.1},
			{Action: diskfault.ActLieSync},
		}},
		Num: &numfault.Schedule{Seed: 5},
	}
	for i := 0; i < 12; i++ {
		from := 10 * (i + 1) // 10, 20, ..., 120
		if i == 6 {
			from = 77 // second half of the planted core
		}
		spec.Num.Rules = append(spec.Num.Rules, numfault.Rule{
			Target: "temps", Action: "nan", Index: i,
			FromStep: from, ToStep: from + 1,
		})
	}
	if !hasNumRuleFrom(spec, 40) || !hasNumRuleFrom(spec, 77) {
		t.Fatal("test setup: planted core missing")
	}

	runs := 0
	pred := func(_ context.Context, s Spec) (bool, error) {
		runs++
		return hasNumRuleFrom(s, 40) && hasNumRuleFrom(s, 77), nil
	}
	got, stats, err := Minimize(context.Background(), spec, pred)
	if err != nil {
		t.Fatal(err)
	}
	if got.Num == nil || len(got.Num.Rules) != 2 {
		t.Fatalf("want exactly the 2-rule core, got %+v", got.Num)
	}
	if !hasNumRuleFrom(got, 40) || !hasNumRuleFrom(got, 77) {
		t.Fatalf("wrong rules survived: %+v", got.Num.Rules)
	}
	if got.Net != nil || got.Disk != nil || len(got.Jobs) != 1 || got.Procs != nil {
		t.Fatalf("irrelevant atoms survived minimization: %s", got.Canonical())
	}
	if got.Num.Seed != 5 {
		t.Fatalf("minimization must never touch seeds, got %d", got.Num.Seed)
	}
	if err := got.Validate(); err != nil {
		t.Fatalf("minimized spec must validate: %v", err)
	}
	if stats.AtomsAfter != 2 {
		t.Fatalf("stats.AtomsAfter = %d, want 2", stats.AtomsAfter)
	}
	if stats.Runs != runs {
		t.Fatalf("stats.Runs = %d but predicate ran %d times", stats.Runs, runs)
	}
}

// TestPredicateCache: repeated candidates (ddmin revisits subsets as its
// granularity changes) must hit the canonical-JSON cache, and invalid
// candidates must count as non-failing without a predicate run.
func TestPredicateCache(t *testing.T) {
	runs := 0
	m := &minimizer{cache: map[string]bool{}, pred: func(context.Context, Spec) (bool, error) {
		runs++
		return true, nil
	}}
	spec := Spec{Jobs: []daemon.JobSpec{traceJob("a")}}
	ctx := context.Background()
	for i := 0; i < 3; i++ {
		ok, err := m.fails(ctx, spec)
		if err != nil || !ok {
			t.Fatalf("fails() = %v, %v", ok, err)
		}
	}
	if runs != 1 || m.stats.Runs != 1 || m.stats.CacheHits != 2 {
		t.Fatalf("runs=%d stats=%+v; want 1 run, 2 cache hits", runs, m.stats)
	}
	invalid := Spec{} // no jobs
	if ok, err := m.fails(ctx, invalid); err != nil || ok {
		t.Fatalf("invalid candidate must be non-failing, got %v, %v", ok, err)
	}
	if runs != 1 {
		t.Fatal("invalid candidates must never reach the predicate")
	}
}

// TestMinimizeHalvesWindowToTrigger: a single wide step window whose failure
// is really a single step (500) inside it must narrow to exactly [500, 501).
func TestMinimizeHalvesWindowToTrigger(t *testing.T) {
	spec := Spec{
		Name: "wide-window",
		Jobs: []daemon.JobSpec{traceJob("a")},
		Num: &numfault.Schedule{Seed: 5, Rules: []numfault.Rule{
			{Target: "temps", Action: "nan", FromStep: 0, ToStep: 1000},
		}},
	}
	pred := func(_ context.Context, s Spec) (bool, error) {
		if s.Num == nil {
			return false, nil
		}
		for _, r := range s.Num.Rules {
			if r.FromStep <= 500 && (r.ToStep == 0 || 500 < r.ToStep) {
				return true, nil
			}
		}
		return false, nil
	}
	got, stats, err := Minimize(context.Background(), spec, pred)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Num.Rules) != 1 {
		t.Fatalf("want 1 rule, got %+v", got.Num)
	}
	r := got.Num.Rules[0]
	if r.FromStep != 500 || r.ToStep != 501 {
		t.Fatalf("window must converge on the trigger step: got [%d, %d), want [500, 501)", r.FromStep, r.ToStep)
	}
	if stats.Halvings == 0 {
		t.Fatal("halving steps should have been counted")
	}
}

// TestMinimizeKeepsChoreographyLegal: when the failure needs the daemon
// restart, ddmin must not strand an unmatched kill — candidates that fail
// Validate count as non-failing, so the surviving proc set is always legal.
func TestMinimizeKeepsChoreographyLegal(t *testing.T) {
	spec := compoundSpec()
	spec.Disk.Seed, spec.Num.Seed, spec.NetSeed = 1, 1, 1 // deterministic predicate input
	pred := func(_ context.Context, s Spec) (bool, error) {
		for _, p := range s.Procs {
			if p.Target == TargetDaemon && p.Action == ActRestart {
				return true, nil
			}
		}
		return false, nil
	}
	got, stats, err := Minimize(context.Background(), spec, pred)
	if err != nil {
		t.Fatal(err)
	}
	if err := got.Validate(); err != nil {
		t.Fatalf("minimized spec must validate: %v", err)
	}
	if len(got.Procs) != 1 || got.Procs[0].Action != ActRestart {
		t.Fatalf("want just the restart action, got %+v", got.Procs)
	}
	if got.Net != nil || got.Disk != nil || got.Num != nil || got.Pool != nil {
		t.Fatalf("irrelevant lattice survived: %s", got.Canonical())
	}
	// Timeline halving: an existence-only failure lets the restart slide to
	// the episode start, making the repro as fast as possible to replay.
	if got.Procs[0].At > 1 {
		t.Fatalf("timeline halving should have pulled At to <= 1ns, got %d", got.Procs[0].At)
	}
	if stats.Halvings == 0 {
		t.Fatal("timeline halvings should have been counted")
	}
}

func TestMinimizeRejectsGreenSpec(t *testing.T) {
	spec := Spec{Jobs: []daemon.JobSpec{traceJob("a")}}
	_, _, err := Minimize(context.Background(), spec,
		func(context.Context, Spec) (bool, error) { return false, nil })
	if err == nil {
		t.Fatal("minimizing a non-failing spec must error, not shrink it to nothing")
	}
}

func TestMinimizeHonorsContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	spec := Spec{
		Jobs: []daemon.JobSpec{traceJob("a")},
		Num: &numfault.Schedule{Seed: 5, Rules: []numfault.Rule{
			{Target: "temps", Action: "nan", FromStep: 1, ToStep: 2},
		}},
	}
	_, _, err := Minimize(ctx, spec,
		func(context.Context, Spec) (bool, error) { return true, nil })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
}
