package campaign

import (
	"context"
	"fmt"

	"tecfan/internal/daemon"
	"tecfan/internal/netfault"
)

// Predicate runs one episode of a candidate spec and reports whether it still
// fails — i.e. reproduces at least one oracle violation. The minimizer never
// passes it an invalid spec (candidates that fail Validate count as
// non-failing without a run). The predicate must be deterministic for a given
// spec: minimized repros only mean something if the failing draw sequence is
// pinned, so callers resolve seeds (Spec.ForEpisode) on the failing episode
// BEFORE minimizing and the shrinker never touches a seed field.
type Predicate func(ctx context.Context, s Spec) (bool, error)

// Stats counts the minimizer's work, for drill logs and the shrinker tests.
type Stats struct {
	// AtomsBefore / AtomsAfter are the droppable-element counts going in and
	// coming out of delta debugging.
	AtomsBefore int `json:"atoms_before"`
	AtomsAfter  int `json:"atoms_after"`
	// Runs is how many times the predicate actually ran (cache misses).
	Runs int `json:"runs"`
	// CacheHits is how many candidate evaluations the canonical-JSON cache
	// absorbed.
	CacheHits int `json:"cache_hits"`
	// Halvings is how many window/timeline halving steps stuck.
	Halvings int `json:"halvings"`
}

// Minimize delta-debugs a failing composite schedule down to a minimal
// still-failing repro:
//
//  1. ddmin over the spec's droppable atoms (extra jobs, the pool, the net
//     base fault, each net window, the disk crash point, each disk rule,
//     each num rule, each proc action) until the kept set is 1-minimal —
//     dropping any single remaining atom makes the failure vanish.
//  2. Per-window halving: each bounded num-rule step window and each net
//     window is repeatedly narrowed to whichever half still fails.
//  3. Timeline halving: all time offsets (net windows, period, proc At)
//     are scaled down together while the failure survives, so the repro is
//     also fast to replay.
//
// The input spec must itself fail; Minimize errors out otherwise rather than
// "minimizing" a green schedule to nothing.
func Minimize(ctx context.Context, spec Spec, failing Predicate) (Spec, Stats, error) {
	if err := spec.Validate(); err != nil {
		return spec, Stats{}, fmt.Errorf("campaign: minimize: input spec invalid: %w", err)
	}
	m := &minimizer{pred: failing, cache: map[string]bool{}}
	ok, err := m.fails(ctx, spec)
	if err != nil {
		return spec, m.stats, err
	}
	if !ok {
		return spec, m.stats, fmt.Errorf("campaign: minimize: the input spec does not fail the predicate")
	}

	atoms := atomsOf(spec)
	m.stats.AtomsBefore = len(atoms)
	kept, err := m.ddmin(ctx, spec, atoms)
	if err != nil {
		return spec, m.stats, err
	}
	m.stats.AtomsAfter = len(kept)
	best := buildCandidate(spec, keepSet(kept))

	best, err = m.shrinkWindows(ctx, best)
	if err != nil {
		return best, m.stats, err
	}
	best, err = m.halveTimeline(ctx, best)
	return best, m.stats, err
}

// atomKind enumerates the droppable element classes of a Spec.
type atomKind int

const (
	atomJob atomKind = iota
	atomPool
	atomNetBase
	atomNetWindow
	atomDiskCrash
	atomDiskRule
	atomNumRule
	atomClockRule
	atomProc
)

// atom names one droppable element by its index in the ORIGINAL spec;
// buildCandidate always rebuilds from that original, so indices stay stable
// across the whole ddmin run.
type atom struct {
	kind atomKind
	idx  int
}

// atomsOf enumerates a spec's droppable elements. Job 0 is never an atom —
// a spec needs at least one job to validate, and an episode with no jobs
// cannot witness any oracle.
func atomsOf(s Spec) []atom {
	var out []atom
	for i := 1; i < len(s.Jobs); i++ {
		out = append(out, atom{atomJob, i})
	}
	if s.Pool != nil {
		out = append(out, atom{atomPool, 0})
	}
	if s.Net != nil {
		if s.Net.Base != (netfault.Fault{}) {
			out = append(out, atom{atomNetBase, 0})
		}
		for i := range s.Net.Windows {
			out = append(out, atom{atomNetWindow, i})
		}
	}
	if s.Disk != nil {
		if s.Disk.CrashAtOp > 0 {
			out = append(out, atom{atomDiskCrash, 0})
		}
		for i := range s.Disk.Rules {
			out = append(out, atom{atomDiskRule, i})
		}
	}
	if s.Num != nil {
		for i := range s.Num.Rules {
			out = append(out, atom{atomNumRule, i})
		}
	}
	if s.Clock != nil {
		for i := range s.Clock.Rules {
			out = append(out, atom{atomClockRule, i})
		}
	}
	for i := range s.Procs {
		out = append(out, atom{atomProc, i})
	}
	return out
}

func keepSet(atoms []atom) map[atom]bool {
	m := make(map[atom]bool, len(atoms))
	for _, a := range atoms {
		m[a] = true
	}
	return m
}

// buildCandidate rebuilds the original spec with only the kept atoms, folding
// away injector blocks that end up empty (an empty lattice axis should read
// as absent, both for the predicate and in the committed repro file).
func buildCandidate(orig Spec, kept map[atom]bool) Spec {
	s := orig.Clone()

	jobs := []daemon.JobSpec{s.Jobs[0]}
	for i := 1; i < len(s.Jobs); i++ {
		if kept[atom{atomJob, i}] {
			jobs = append(jobs, s.Jobs[i])
		}
	}
	s.Jobs = jobs

	if s.Pool != nil && !kept[atom{atomPool, 0}] {
		s.Pool = nil
	}
	if s.Net != nil {
		if !kept[atom{atomNetBase, 0}] {
			s.Net.Base = netfault.Fault{}
		}
		var ws []netfault.Window
		for i, w := range s.Net.Windows {
			if kept[atom{atomNetWindow, i}] {
				ws = append(ws, w)
			}
		}
		s.Net.Windows = ws
		if s.Net.Base == (netfault.Fault{}) && len(ws) == 0 {
			s.Net, s.NetSeed = nil, 0
		}
	}
	if s.Disk != nil {
		if !kept[atom{atomDiskCrash, 0}] {
			s.Disk.CrashAtOp = 0
		}
		rules := s.Disk.Rules[:0:0]
		for i, r := range s.Disk.Rules {
			if kept[atom{atomDiskRule, i}] {
				rules = append(rules, r)
			}
		}
		s.Disk.Rules = rules
		if s.Disk.CrashAtOp == 0 && len(rules) == 0 {
			s.Disk = nil
		}
	}
	if s.Num != nil {
		rules := s.Num.Rules[:0:0]
		for i, r := range s.Num.Rules {
			if kept[atom{atomNumRule, i}] {
				rules = append(rules, r)
			}
		}
		s.Num.Rules = rules
		if len(rules) == 0 {
			s.Num = nil
		}
	}
	if s.Clock != nil {
		rules := s.Clock.Rules[:0:0]
		for i, r := range s.Clock.Rules {
			if kept[atom{atomClockRule, i}] {
				rules = append(rules, r)
			}
		}
		s.Clock.Rules = rules
		if len(rules) == 0 {
			s.Clock = nil
		}
	}
	var procs []ProcAction
	for i, p := range s.Procs {
		if kept[atom{atomProc, i}] {
			procs = append(procs, p)
		}
	}
	s.Procs = procs
	return s
}

type minimizer struct {
	pred  Predicate
	cache map[string]bool // canonical JSON -> fails?
	stats Stats
}

// fails evaluates one candidate, through the predicate cache. Invalid
// candidates (e.g. a worker proc action surviving while the pool atom was
// dropped) are non-failing by definition: the minimizer simply keeps the
// atoms such a candidate removed.
func (m *minimizer) fails(ctx context.Context, s Spec) (bool, error) {
	if err := ctx.Err(); err != nil {
		return false, err
	}
	key := string(s.Canonical())
	if v, ok := m.cache[key]; ok {
		m.stats.CacheHits++
		return v, nil
	}
	if err := s.Validate(); err != nil {
		m.cache[key] = false
		return false, nil
	}
	m.stats.Runs++
	ok, err := m.pred(ctx, s)
	if err != nil {
		return false, err
	}
	m.cache[key] = ok
	return ok, nil
}

// ddmin is Zeller's minimizing delta debugging over the atom list: repeatedly
// try dropping chunks (complements of an n-way partition); when nothing can
// be dropped at granularity n, double n; stop when single-atom drops all
// resurrect the pass — the kept set is then 1-minimal.
func (m *minimizer) ddmin(ctx context.Context, orig Spec, atoms []atom) ([]atom, error) {
	cur := atoms
	n := 2
	for len(cur) >= 2 {
		if err := ctx.Err(); err != nil {
			return cur, err
		}
		chunk := (len(cur) + n - 1) / n
		reduced := false
		for start := 0; start < len(cur); start += chunk {
			if err := ctx.Err(); err != nil {
				return cur, err
			}
			end := min(start+chunk, len(cur))
			complement := make([]atom, 0, len(cur)-(end-start))
			complement = append(complement, cur[:start]...)
			complement = append(complement, cur[end:]...)
			ok, err := m.fails(ctx, buildCandidate(orig, keepSet(complement)))
			if err != nil {
				return cur, err
			}
			if ok {
				cur = complement
				n = max(n-1, 2)
				reduced = true
				break
			}
		}
		if !reduced {
			if n >= len(cur) {
				break
			}
			n = min(len(cur), 2*n)
		}
	}
	return cur, nil
}

// shrinkWindows repeatedly narrows each bounded num-rule step window and each
// net window to whichever half still fails, until no half does.
func (m *minimizer) shrinkWindows(ctx context.Context, best Spec) (Spec, error) {
	for changed := true; changed; {
		if err := ctx.Err(); err != nil {
			return best, err
		}
		changed = false
		if best.Num != nil {
			for i := range best.Num.Rules {
				r := best.Num.Rules[i]
				if r.ToStep == 0 || r.ToStep-r.FromStep < 2 {
					continue // unbounded or already a single step
				}
				mid := r.FromStep + (r.ToStep-r.FromStep)/2
				for _, half := range [][2]int{{r.FromStep, mid}, {mid, r.ToStep}} {
					cand := best.Clone()
					cand.Num.Rules[i].FromStep, cand.Num.Rules[i].ToStep = half[0], half[1]
					ok, err := m.fails(ctx, cand)
					if err != nil {
						return best, err
					}
					if ok {
						best, changed = cand, true
						m.stats.Halvings++
						break
					}
				}
			}
		}
		if best.Net != nil {
			for i := range best.Net.Windows {
				w := best.Net.Windows[i]
				if w.To-w.From < 2 {
					continue
				}
				mid := w.From + (w.To-w.From)/2
				for _, half := range [][2]netfault.Duration{{w.From, mid}, {mid, w.To}} {
					cand := best.Clone()
					cand.Net.Windows[i].From, cand.Net.Windows[i].To = half[0], half[1]
					ok, err := m.fails(ctx, cand)
					if err != nil {
						return best, err
					}
					if ok {
						best, changed = cand, true
						m.stats.Halvings++
						break
					}
				}
			}
		}
	}
	return best, nil
}

// halveTimeline scales every time offset — net windows and period, proc At —
// down by two while the failure survives, so the minimized repro also replays
// quickly.
func (m *minimizer) halveTimeline(ctx context.Context, best Spec) (Spec, error) {
	for {
		if err := ctx.Err(); err != nil {
			return best, err
		}
		cand := best.Clone()
		scaled := false
		if cand.Net != nil {
			for i := range cand.Net.Windows {
				w := &cand.Net.Windows[i]
				if w.To-w.From >= 2 || w.From >= 2 {
					w.From, w.To = w.From/2, (w.To+1)/2
					scaled = true
				}
			}
			if cand.Net.Period > 0 {
				half := (cand.Net.Period + 1) / 2
				// Only shrink the period while every window still fits in it.
				fits := true
				for _, w := range cand.Net.Windows {
					if w.To > half {
						fits = false
						break
					}
				}
				if fits && half < cand.Net.Period {
					cand.Net.Period = half
					scaled = true
				}
			}
		}
		for i := range cand.Procs {
			if cand.Procs[i].At >= 2 {
				cand.Procs[i].At /= 2
				scaled = true
			}
		}
		if !scaled {
			return best, nil
		}
		ok, err := m.fails(ctx, cand)
		if err != nil {
			return best, err
		}
		if !ok {
			return best, nil
		}
		best = cand
		m.stats.Halvings++
	}
}
