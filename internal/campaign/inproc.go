package campaign

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"time"

	"tecfan/internal/client"
	"tecfan/internal/clockfault"
	"tecfan/internal/daemon"
	"tecfan/internal/diskfault"
	"tecfan/internal/netfault"
	"tecfan/internal/worker"
)

// RunOptions tunes the in-process episode runner.
type RunOptions struct {
	// Logf receives daemon/worker/client operational lines (default: silent).
	Logf func(format string, args ...any)
	// Poll is the job-wait poll interval (default 20ms).
	Poll time.Duration
}

func (o *RunOptions) logf() func(string, ...any) {
	if o != nil && o.Logf != nil {
		return o.Logf
	}
	return func(string, ...any) {}
}

func (o *RunOptions) poll() time.Duration {
	if o != nil && o.Poll > 0 {
		return o.Poll
	}
	return 20 * time.Millisecond
}

// RunEpisode runs one episode of the spec entirely in-process: a real daemon
// behind httptest, optional worker-pool loops, optional netfault proxy on the
// client path, optional diskfault FS and numfault schedule — and returns the
// client-observed history for the oracles.
//
// Two spec features only the exec driver (cmd/tecfan-crucible) can honor are
// rejected here: proc actions (there is no process to signal) and a disk
// crash point (an in-process daemon cannot die and restart). The meta-tests
// and the shrinker run on this path; full campaigns run on the exec path.
func RunEpisode(ctx context.Context, spec Spec, episode int, opts *RunOptions) (*History, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if len(spec.Procs) > 0 {
		return nil, fmt.Errorf("campaign: in-process runner cannot apply proc actions; use cmd/tecfan-crucible")
	}
	if spec.Disk != nil && spec.Disk.CrashAtOp > 0 {
		return nil, fmt.Errorf("campaign: in-process runner cannot honor disk.crash_at_op; use cmd/tecfan-crucible")
	}
	eff := spec.ForEpisode(episode)
	logf := opts.logf()

	// Each process identity gets its own FaultClock over the shared schedule,
	// so coordinator and workers carry independent skews from one spec.
	clockFor := func(proc string) (clockfault.Clock, error) {
		if eff.Clock == nil {
			return nil, nil
		}
		return clockfault.New(*eff.Clock, proc, &clockfault.Options{Logf: logf})
	}
	daemonClock, err := clockFor(TargetDaemon)
	if err != nil {
		return nil, err
	}

	stateDir, err := os.MkdirTemp("", "crucible-ep")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(stateDir)

	var fs diskfault.FS
	if eff.Disk != nil {
		ffs, err := diskfault.New(*eff.Disk, &diskfault.Options{Logf: logf})
		if err != nil {
			return nil, err
		}
		fs = ffs
	}
	srv, err := daemon.New(daemon.Config{
		StateDir:    stateDir,
		FS:          fs,
		NumFaults:   eff.Num,
		PoolEnabled: eff.Pool != nil,
		PoolChunk:   poolChunk(eff.Pool),
		PoolLeaseTTL: func() time.Duration {
			if eff.Pool != nil {
				return eff.Pool.LeaseTTL.Std()
			}
			return 0
		}(),
		Clock: daemonClock,
		Logf:  logf,
	})
	if err != nil {
		return nil, err
	}
	hs := httptest.NewServer(srv.Handler())
	defer func() {
		hs.Close()
		sctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_ = srv.Shutdown(sctx)
	}()

	// The client reaches the daemon through the chaos proxy when the spec has
	// one; workers and the post-episode inspection always go direct — network
	// chaos models a flaky client path, not a corrupted state store.
	baseURL := hs.URL
	if eff.Net != nil {
		proxy, err := netfault.New("127.0.0.1:0", strings.TrimPrefix(hs.URL, "http://"),
			*eff.Net, eff.NetSeed, &netfault.Options{Logf: logf})
		if err != nil {
			return nil, err
		}
		defer proxy.Close()
		baseURL = "http://" + proxy.Addr()
	}

	if eff.Pool != nil {
		stop, err := startPoolWorkers(hs.URL, eff, clockFor, logf)
		if err != nil {
			return nil, err
		}
		defer stop()
	}

	rec := NewRecorder(eff.Name, episode)
	cl, err := client.New(client.Config{
		BaseURL: baseURL, Logf: logf, Seed: 1, Observer: rec.Observer(),
	})
	if err != nil {
		return nil, err
	}
	direct, err := client.New(client.Config{BaseURL: hs.URL, Logf: logf, Seed: 2})
	if err != nil {
		return nil, err
	}

	sampleReady(rec, hs.URL)
	for _, j := range eff.Jobs {
		key := IdempotencyKey(eff.Name, episode, j.ID)
		// Twice under one key: the replay feeds the exactly-once oracle.
		for replay := 0; replay < 2; replay++ {
			id, dedup, err := cl.SubmitWithKey(ctx, key, j)
			rec.Submission(j.ID, key, id, dedup, err)
		}
		sampleReady(rec, hs.URL)
	}
	for _, j := range eff.Jobs {
		v, err := cl.Wait(ctx, j.ID, opts.poll())
		if err != nil {
			return rec.History(), fmt.Errorf("campaign: waiting for job %s: %w", j.ID, err)
		}
		var result []byte
		if v.State == daemon.StateDone {
			// Inspection goes direct: the result bytes being judged are the
			// daemon's durable state, not a chaos-mangled copy of it.
			result, err = direct.Result(ctx, j.ID)
			if err != nil {
				return rec.History(), fmt.Errorf("campaign: fetching result of done job %s: %w", j.ID, err)
			}
		}
		rec.Result(v, result)
		sampleReady(rec, hs.URL)
	}
	views, err := direct.Jobs(ctx)
	if err != nil {
		return rec.History(), fmt.Errorf("campaign: final jobs listing: %w", err)
	}
	rec.Jobs(views)
	rec.Leases(srv.PoolLeases())
	sampleReady(rec, hs.URL)
	return rec.History(), nil
}

func poolChunk(p *PoolSpec) int {
	if p == nil {
		return 0
	}
	return p.Chunk
}

// startPoolWorkers launches the spec's worker loops against the coordinator,
// each armed with the same numeric fault schedule the daemon carries (the
// exec driver passes the same schedule via -numfault-schedule) and its own
// per-identity FaultClock (via -clockfault-schedule there).
func startPoolWorkers(coordURL string, eff Spec, clockFor func(string) (clockfault.Clock, error), logf func(string, ...any)) (stop func(), err error) {
	wctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{}, eff.Pool.Workers)
	started := 0
	for i := 0; i < eff.Pool.Workers; i++ {
		name := fmt.Sprintf("crucible-w%d", i)
		wclk, err := clockFor(name)
		if err != nil {
			cancel()
			return nil, err
		}
		wcl, err := client.New(client.Config{BaseURL: coordURL, Logf: logf, Seed: int64(10 + i), Clock: wclk})
		if err != nil {
			cancel()
			return nil, err
		}
		w, err := worker.New(worker.Config{
			Client:    wcl,
			Name:      name,
			Poll:      20 * time.Millisecond,
			Logf:      logf,
			Clock:     wclk,
			NumFaults: eff.Num,
		})
		if err != nil {
			cancel()
			return nil, err
		}
		started++
		go func() {
			defer func() { done <- struct{}{} }()
			_ = w.Run(wctx)
		}()
	}
	return func() {
		cancel()
		for i := 0; i < started; i++ {
			<-done
		}
	}, nil
}

// sampleReady probes GET /readyz directly on the daemon (never through the
// proxy: a readiness sample lost to network chaos is not evidence about the
// daemon) and records the sample. Probe transport errors are skipped — the
// sticky oracle judges only what the daemon actually said.
func sampleReady(rec *Recorder, daemonURL string) {
	resp, err := http.Get(daemonURL + "/readyz")
	if err != nil {
		return
	}
	defer resp.Body.Close()
	var body struct {
		Status  string   `json:"status"`
		Reasons []string `json:"reasons"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		return
	}
	rec.Ready(resp.StatusCode == http.StatusOK, body.Reasons)
}

// Reference runs the spec's fault-free configuration (WithoutFaults) for the
// same episode and returns job ID -> durable result bytes — the byte-identity
// baseline the result-integrity oracle compares chaotic episodes against.
// Every job must complete in the reference run; anything else is an error in
// the spec itself, not a chaos finding.
func Reference(ctx context.Context, spec Spec, episode int, opts *RunOptions) (map[string][]byte, error) {
	h, err := RunEpisode(ctx, spec.WithoutFaults(), episode, opts)
	if err != nil {
		return nil, fmt.Errorf("campaign: reference run: %w", err)
	}
	ref := make(map[string][]byte, len(h.Results))
	for _, r := range h.Results {
		if r.State != string(daemon.StateDone) {
			return nil, fmt.Errorf("campaign: reference run: job %s ended %s: %s", r.JobID, r.State, r.Error)
		}
		ref[r.JobID] = r.Result
	}
	for _, j := range spec.Jobs {
		if _, ok := ref[j.ID]; !ok {
			return nil, fmt.Errorf("campaign: reference run: job %s produced no result", j.ID)
		}
	}
	return ref, nil
}
