package campaign

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"time"

	"tecfan/internal/clockfault"
	"tecfan/internal/daemon"
	"tecfan/internal/diskfault"
	"tecfan/internal/netfault"
	"tecfan/internal/numfault"
	"tecfan/internal/schedfile"
)

func traceJob(id string) daemon.JobSpec {
	return daemon.JobSpec{
		ID: id, Kind: daemon.KindTrace,
		Bench: "cholesky", Threads: 16, Scale: 0.001, Policy: "TECfan-FT", Seed: 7,
	}
}

// compoundSpec exercises every axis at once: two jobs, a pool, network
// windows, disk rules, numeric rules, and a proc timeline that stays legal
// (the stopped worker resumes, the killed daemon restarts).
func compoundSpec() Spec {
	return Spec{
		Name: "compound",
		Seed: 42,
		Jobs: []daemon.JobSpec{traceJob("a"), traceJob("b")},
		Pool: &PoolSpec{Workers: 2},
		Net: &netfault.Schedule{
			Base: netfault.Fault{Drop: 0.1},
			Windows: []netfault.Window{
				{From: 0, To: netfault.Duration(1e9), Partition: true},
			},
		},
		Disk: &diskfault.Schedule{Rules: []diskfault.Rule{
			{Action: diskfault.ActEIO, Prob: 0.5},
		}},
		Num: &numfault.Schedule{Rules: []numfault.Rule{
			{Target: "temps", Action: "nan", Index: 0, FromStep: 10, ToStep: 11},
		}},
		Clock: &clockfault.Schedule{Rules: []clockfault.Rule{
			{Kind: clockfault.KindStep, Proc: "daemon", AtOp: 1,
				Offset: schedfile.Duration(-90 * time.Second)},
			{Kind: clockfault.KindDrift, Proc: "crucible-w*", FromOp: 1, Rate: 0.5},
		}},
		Procs: []ProcAction{
			{At: netfault.Duration(2e9), Target: "worker:0", Action: ActStop},
			{At: netfault.Duration(3e9), Target: "worker:0", Action: ActCont},
			{At: netfault.Duration(4e9), Target: TargetDaemon, Action: ActKill},
			{At: netfault.Duration(5e9), Target: TargetDaemon, Action: ActRestart},
		},
	}
}

func TestValidateAcceptsCompound(t *testing.T) {
	if err := compoundSpec().Validate(); err != nil {
		t.Fatalf("compound spec should validate: %v", err)
	}
}

func TestValidateRejects(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Spec)
		want   string
	}{
		{"no jobs", func(s *Spec) { s.Jobs = nil }, "at least one job"},
		{"missing id", func(s *Spec) { s.Jobs[0].ID = "" }, "explicit id"},
		{"bad id", func(s *Spec) { s.Jobs[0].ID = "bad id!" }, "invalid id"},
		{"duplicate id", func(s *Spec) { s.Jobs[1].ID = s.Jobs[0].ID }, "duplicate id"},
		{"bad kind", func(s *Spec) { s.Jobs[0].Kind = "mystery" }, "unknown kind"},
		{"no bench", func(s *Spec) { s.Jobs[0].Bench = "" }, "bench is required"},
		{"bad policy", func(s *Spec) { s.Jobs[0].Policy = "YOLO" }, "unknown policy"},
		{"bad scenario", func(s *Spec) { s.Jobs[0].Scenario = "gremlins" }, "unknown scenario"},
		{"bad scenarios entry", func(s *Spec) { s.Jobs[0].Scenarios = []string{"gremlins"} }, "unknown scenario"},
		{"zero workers", func(s *Spec) { s.Pool.Workers = 0 }, "pool.workers"},
		{"bad net", func(s *Spec) { s.Net.Base.Drop = 2 }, "campaign: net:"},
		{"bad disk rule", func(s *Spec) { s.Disk.Rules[0].Action = "melt" }, "campaign: disk:"},
		{"bad num rule", func(s *Spec) { s.Num.Rules[0].Action = "melt" }, "campaign: num:"},
		{"negative timeout", func(s *Spec) { s.Timeout = -1 }, "timeout"},
		{"bad proc action", func(s *Spec) { s.Procs[0].Action = "defenestrate" }, "unknown action"},
		{"bad proc target", func(s *Spec) { s.Procs[0].Target = "coffee" }, `target "coffee"`},
		{"worker target without pool", func(s *Spec) { s.Pool = nil }, "without a pool spec"},
		{"worker index out of range", func(s *Spec) { s.Procs[0].Target = "worker:7" }, "out of range"},
		{"daemon never restarted", func(s *Spec) { s.Procs = s.Procs[:3] }, "daemon ends the timeline dead"},
		{"worker never resumed", func(s *Spec) {
			s.Procs = s.Procs[:1]
			s.Procs[0].Target = "worker:0"
			s.Pool.Workers = 1
		}, "every worker ends the timeline"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := compoundSpec()
			tc.mutate(&s)
			err := s.Validate()
			if err == nil {
				t.Fatal("want validation error, got nil")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// TestChoreographyOrderIsByAt: proc choreography must replay in timeline
// order, not spec order — a restart listed first but scheduled last still
// saves a kill listed last but scheduled first.
func TestChoreographyOrderIsByAt(t *testing.T) {
	s := compoundSpec()
	s.Procs = []ProcAction{
		{At: netfault.Duration(5e9), Target: TargetDaemon, Action: ActRestart},
		{At: netfault.Duration(2e9), Target: TargetDaemon, Action: ActKill},
	}
	if err := s.Validate(); err != nil {
		t.Fatalf("kill-then-restart by At should validate: %v", err)
	}
	s.Procs[0].At, s.Procs[1].At = s.Procs[1].At, s.Procs[0].At
	if err := s.Validate(); err == nil {
		t.Fatal("restart-then-kill by At must be rejected: the daemon ends dead")
	}
}

func TestForEpisodeDerivesOnlyZeroSeeds(t *testing.T) {
	s := compoundSpec()
	s.Num.Seed = 999 // pinned: a minimized repro must keep its exact draws

	e0 := s.ForEpisode(0)
	e1 := s.ForEpisode(1)
	if e0.Num.Seed != 999 || e1.Num.Seed != 999 {
		t.Fatalf("pinned num seed was overridden: %d / %d", e0.Num.Seed, e1.Num.Seed)
	}
	if e0.Disk.Seed == 0 || e0.NetSeed == 0 {
		t.Fatal("zero seeds must be derived to non-zero")
	}
	if e0.Disk.Seed == e1.Disk.Seed || e0.NetSeed == e1.NetSeed {
		t.Fatal("different episodes must derive different seeds")
	}
	if e0.Disk.Seed == e0.NetSeed {
		t.Fatal("different injectors must derive different seeds")
	}
	again := s.ForEpisode(0)
	if again.Disk.Seed != e0.Disk.Seed || again.NetSeed != e0.NetSeed {
		t.Fatal("seed derivation must be deterministic")
	}
	if s.Disk.Seed != 0 || s.NetSeed != 0 {
		t.Fatal("ForEpisode must not mutate the input spec")
	}
}

func TestWithoutFaultsStripsTheLattice(t *testing.T) {
	ref := compoundSpec().WithoutFaults()
	if ref.Net != nil || ref.Disk != nil || ref.Num != nil || ref.Procs != nil || ref.Pool != nil || ref.NetSeed != 0 {
		t.Fatalf("WithoutFaults left lattice behind: %+v", ref)
	}
	if len(ref.Jobs) != 2 {
		t.Fatalf("WithoutFaults must keep the jobs, got %d", len(ref.Jobs))
	}
	if err := ref.Validate(); err != nil {
		t.Fatalf("reference spec should validate: %v", err)
	}
}

// TestIdempotencyKeyFitsDaemonRule: derived keys must satisfy the daemon's
// Idempotency-Key token rule or every crucible submission would 400.
func TestIdempotencyKeyFitsDaemonRule(t *testing.T) {
	tokenRe := regexp.MustCompile(`^[A-Za-z0-9._-]{1,128}$`)
	for _, key := range []string{
		IdempotencyKey("compound", 0, "a"),
		IdempotencyKey("", 12, "job_41-x"),
	} {
		if !tokenRe.MatchString(key) {
			t.Fatalf("key %q violates the daemon token rule", key)
		}
	}
	if IdempotencyKey("c", 0, "a") == IdempotencyKey("c", 1, "a") {
		t.Fatal("episodes must not share keys")
	}
}

func TestLoadSpecErrorsCarryPath(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(path, []byte(`{"jobs": []}`), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := LoadSpec(path)
	if err == nil || !strings.Contains(err.Error(), path) {
		t.Fatalf("LoadSpec error %q should carry the file path", err)
	}

	good := compoundSpec()
	goodPath := filepath.Join(dir, "good.json")
	if err := WriteEntry(goodPath, Entry{Spec: good}); err != nil {
		t.Fatal(err)
	}
	e, err := LoadEntry(goodPath)
	if err != nil {
		t.Fatal(err)
	}
	if e.Episodes != 1 {
		t.Fatalf("LoadEntry must default episodes to 1, got %d", e.Episodes)
	}
	if string(e.Spec.Canonical()) != string(good.Canonical()) {
		t.Fatal("corpus round-trip changed the spec")
	}
}

func TestLoadCorpus(t *testing.T) {
	dir := t.TempDir()
	if _, err := LoadCorpus(dir); err == nil {
		t.Fatal("empty corpus must be an error, not a silent green replay")
	}
	for _, name := range []string{"b.json", "a.json"} {
		if err := WriteEntry(filepath.Join(dir, name), Entry{Note: name, Spec: compoundSpec()}); err != nil {
			t.Fatal(err)
		}
	}
	entries, err := LoadCorpus(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 || entries[0].Note != "a.json" || entries[1].Note != "b.json" {
		t.Fatalf("corpus order must be lexical by name: %+v", entries)
	}
	if entries[0].Episodes != 1 {
		t.Fatalf("episodes must default to 1, got %d", entries[0].Episodes)
	}
}
