package tec

import (
	"math"
	"testing"
	"testing/quick"

	"tecfan/internal/floorplan"
)

func TestPowerMatchesEq9(t *testing.T) {
	d := DefaultDevice()
	// Eq. (9): P = r·I² + α·I·Δθ.
	i, dTheta := DriveCurrent, 5.0
	want := d.Resistance*i*i + d.Seebeck*i*dTheta
	if got := d.Power(i, dTheta); math.Abs(got-want) > 1e-12 {
		t.Fatalf("Power = %v, want %v", got, want)
	}
}

func TestEnergyConservation(t *testing.T) {
	// Qh − Qc must equal the electrical input power for any temperatures.
	d := DefaultDevice()
	f := func(coldC, hotC float64) bool {
		coldC = 20 + math.Mod(math.Abs(coldC), 80)
		hotC = 20 + math.Mod(math.Abs(hotC), 80)
		qc := d.ColdSideHeat(DriveCurrent, coldC, hotC)
		qh := d.HotSideHeat(DriveCurrent, coldC, hotC)
		p := d.Power(DriveCurrent, hotC-coldC)
		return math.Abs((qh-qc)-p) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestColdSideHeatPositiveAtSmallDeltaT(t *testing.T) {
	d := DefaultDevice()
	// The device must actually cool (absorb heat) when both sides are at
	// similar temperature — otherwise it is useless as a cooler.
	if q := d.ColdSideHeat(DriveCurrent, 80, 80); q <= 0 {
		t.Fatalf("Qc = %v at ΔT=0; device cannot cool", q)
	}
	// And pumping must defeat backflow up to a few kelvin of adverse ΔT.
	if q := d.ColdSideHeat(DriveCurrent, 80, 83); q <= 0 {
		t.Fatalf("Qc = %v at ΔT=3 K; too weak", q)
	}
}

func TestMaxDeltaTPlausible(t *testing.T) {
	d := DefaultDevice()
	dt := d.MaxDeltaT(DriveCurrent, 80)
	// Thin-film superlattice coolers manage single-digit to low-double-digit
	// ΔTmax at moderate current.
	if dt < 2 || dt > 20 {
		t.Fatalf("ΔTmax = %.2f K, outside the plausible 2–20 K band", dt)
	}
	// Consistency: at ΔT = ΔTmax the cold side absorbs ~zero heat.
	if q := d.ColdSideHeat(DriveCurrent, 80, 80+dt); math.Abs(q) > 1e-9 {
		t.Fatalf("Qc at ΔTmax = %v, want 0", q)
	}
}

func TestHigherCurrentPumpsMore(t *testing.T) {
	d := DefaultDevice()
	q4 := d.ColdSideHeat(4, 80, 80)
	q6 := d.ColdSideHeat(6, 80, 80)
	if q6 <= q4 {
		t.Fatalf("Qc(6A)=%v should exceed Qc(4A)=%v in this regime", q6, q4)
	}
	if DriveCurrent > d.MaxCurrent {
		t.Fatal("drive current exceeds the safe maximum")
	}
}

func TestArrayGeometry(t *testing.T) {
	chip := floorplan.NewSCC16()
	arr := Array(chip, DefaultDevice())
	if len(arr) != 16*DevicesPerCore {
		t.Fatalf("array size = %d, want %d", len(arr), 16*DevicesPerCore)
	}
	for _, p := range arr {
		// Every device must land fully inside its core tile.
		col := p.Core % chip.TileCols
		row := p.Core / chip.TileCols
		ox := float64(col) * floorplan.TileW
		oy := float64(row) * floorplan.TileH
		if p.X < ox-1e-9 || p.Y < oy-1e-9 ||
			p.X+p.Device.Width > ox+floorplan.TileW+1e-9 ||
			p.Y+p.Device.Height > oy+floorplan.TileH+1e-9 {
			t.Fatalf("device %d/%d escapes tile", p.Core, p.Index)
		}
		// Cover fractions sum to 1 (device fully over die) and cover only
		// the owning core.
		var sum float64
		for ci, f := range p.Cover {
			if chip.Components[ci].Core != p.Core {
				t.Fatalf("device %d/%d covers foreign core", p.Core, p.Index)
			}
			if f <= 0 || f > 1+1e-9 {
				t.Fatalf("bad cover fraction %v", f)
			}
			sum += f
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("cover fractions sum to %v, want 1", sum)
		}
	}
}

func TestArrayCoversHotComponents(t *testing.T) {
	chip := floorplan.NewSCC16()
	arr := Array(chip, DefaultDevice())
	// The FPMul of core 0 (the archetypal hot spot) must be under at least
	// one device.
	fpmul := chip.Lookup(0, "FPMul")
	covered := false
	for _, p := range arr {
		if p.Core == 0 && p.Cover[fpmul] > 0 {
			covered = true
		}
	}
	if !covered {
		t.Fatal("FPMul is not covered by any TEC")
	}
}

func TestStateSwitchingAndEngagement(t *testing.T) {
	chip := floorplan.NewQuad()
	st := NewState(Array(chip, DefaultDevice()))
	if st.Len() != 4*DevicesPerCore {
		t.Fatalf("Len = %d", st.Len())
	}
	st.Advance(1.0)
	st.Set(3, true)
	if !st.On(3) {
		t.Fatal("device 3 should be on")
	}
	if st.Engaged(3) {
		t.Fatal("device 3 cannot be engaged before the 20 µs delay")
	}
	st.Advance(1.0 + 25e-6)
	if !st.Engaged(3) {
		t.Fatal("device 3 should be engaged after the delay")
	}
	// Re-setting an already-on device must not restart the clock.
	st.Set(3, true)
	if !st.Engaged(3) {
		t.Fatal("re-set restarted the engagement clock")
	}
	st.Set(3, false)
	if st.On(3) || st.Engaged(3) {
		t.Fatal("device 3 should be fully off")
	}
	if st.CountOn() != 0 {
		t.Fatalf("CountOn = %d", st.CountOn())
	}
}

func TestStateMaskRoundTrip(t *testing.T) {
	chip := floorplan.NewQuad()
	st := NewState(Array(chip, DefaultDevice()))
	mask := make([]bool, st.Len())
	mask[0], mask[7], mask[20] = true, true, true
	st.SetMask(mask)
	if st.CountOn() != 3 {
		t.Fatalf("CountOn = %d, want 3", st.CountOn())
	}
	got := st.OnMask()
	for i := range mask {
		if got[i] != mask[i] {
			t.Fatalf("mask mismatch at %d", i)
		}
	}
	// OnMask must be a copy, not a view.
	got[0] = false
	if !st.On(0) {
		t.Fatal("OnMask leaked internal state")
	}
}

func TestStateMaskLengthPanics(t *testing.T) {
	st := NewState(Array(floorplan.NewQuad(), DefaultDevice()))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	st.SetMask(make([]bool, 3))
}

func TestCoreDevices(t *testing.T) {
	st := NewState(Array(floorplan.NewQuad(), DefaultDevice()))
	for core := 0; core < 4; core++ {
		devs := st.CoreDevices(core)
		if len(devs) != DevicesPerCore {
			t.Fatalf("core %d has %d devices", core, len(devs))
		}
		for _, l := range devs {
			if st.Placement(l).Core != core {
				t.Fatal("CoreDevices returned foreign device")
			}
		}
	}
}

func TestClone(t *testing.T) {
	st := NewState(Array(floorplan.NewQuad(), DefaultDevice()))
	st.Advance(5)
	st.Set(1, true)
	c := st.Clone()
	c.Set(2, true)
	if st.On(2) {
		t.Fatal("clone mutated original")
	}
	if !c.On(1) || c.Now() != 5 {
		t.Fatal("clone lost state")
	}
}

func TestSetCurrentGraded(t *testing.T) {
	st := NewState(Array(floorplan.NewQuad(), DefaultDevice()))
	st.Advance(0.5)
	st.SetCurrent(2, 4)
	if !st.On(2) || st.Current(2) != 4 {
		t.Fatalf("current = %v, on = %v", st.Current(2), st.On(2))
	}
	if st.Engaged(2) {
		t.Fatal("engaged before the delay")
	}
	st.Advance(0.5 + 25e-6)
	if !st.Engaged(2) {
		t.Fatal("not engaged after the delay")
	}
	// Changing between positive currents must not restart the clock.
	st.SetCurrent(2, 6)
	if !st.Engaged(2) {
		t.Fatal("current change restarted the engagement clock")
	}
	// Off and back on restarts it.
	st.SetCurrent(2, 0)
	st.SetCurrent(2, 2)
	if st.Engaged(2) {
		t.Fatal("re-energized device engaged instantly")
	}
	cur := st.Currents()
	if cur[2] != 2 {
		t.Fatalf("Currents()[2] = %v", cur[2])
	}
	cur[2] = 99
	if st.Current(2) == 99 {
		t.Fatal("Currents leaked internal state")
	}
}

func TestSetCurrentRejectsUnsafe(t *testing.T) {
	st := NewState(Array(floorplan.NewQuad(), DefaultDevice()))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic above MaxCurrent (the >8 A hazard of [10])")
		}
	}()
	st.SetCurrent(0, 9)
}

func TestSetCurrentRejectsNegative(t *testing.T) {
	st := NewState(Array(floorplan.NewQuad(), DefaultDevice()))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for negative current")
		}
	}()
	st.SetCurrent(0, -1)
}

func TestUniformArrayGeometry(t *testing.T) {
	chip := floorplan.NewQuad()
	arr := UniformArray(chip, DefaultDevice())
	if len(arr) != 4*DevicesPerCore {
		t.Fatalf("uniform array size %d", len(arr))
	}
	for _, p := range arr {
		var sum float64
		for ci, f := range p.Cover {
			if chip.Components[ci].Core != p.Core {
				t.Fatal("uniform device covers foreign core")
			}
			sum += f
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("uniform device cover sums to %v", sum)
		}
	}
	// The two placements must differ (rows shifted).
	al := Array(chip, DefaultDevice())
	same := true
	for i := range arr {
		if arr[i].Y != al[i].Y {
			same = false
			break
		}
	}
	if same {
		t.Fatal("uniform and aligned placements identical")
	}
}
