// Package tec models the thin-film thermoelectric cooler devices of the
// TECfan system (§III, §IV-C): 0.5 mm × 0.5 mm superlattice films after Long
// & Memik [10], nine per core in a 3×3 array embedded in the thermal
// interface material, each switched on/off by a power transistor at a fixed
// 6 A drive current (8 A being flagged unsafe in [10]).
//
// The electro-thermal behaviour follows the standard Peltier equations. With
// Seebeck coefficient S, electrical resistance R, through-plane thermal
// conductance K, drive current I, cold-side absolute temperature Tc and
// hot-side Th:
//
//	Qc = S·I·Tc − ½I²R − K(Th−Tc)   heat absorbed at the die side
//	Qh = S·I·Th + ½I²R − K(Th−Tc)   heat released at the spreader side
//	P  = Qh − Qc = I²R + S·I·(Th−Tc)
//
// which is exactly the paper's Eq. (9) with r = R and α = S. The Peltier
// terms are linear in temperature, so the thermal package can fold an active
// device into its (then mildly non-symmetric) conductance system.
package tec

import (
	"fmt"
	"math"

	"tecfan/internal/floorplan"
)

// Device holds the physical parameters of one thin-film TEC.
type Device struct {
	Seebeck     float64 // S, V/K (effective module value)
	Resistance  float64 // R, Ω
	Conductance float64 // K, W/K through-plane (always present, on or off)
	Width       float64 // mm
	Height      float64 // mm
	MaxCurrent  float64 // A; drive above this is rejected
	EngageDelay float64 // s; Peltier effect engagement latency (≈20 µs [9])
}

// DefaultDevice returns the device used throughout the paper's experiments,
// calibrated so that a fully-active 3×3 array cools a hot core tile by a few
// degrees — the magnitude Fig. 4(b) exhibits (fan level 2 + TECs ≈ fan
// level 1).
func DefaultDevice() Device {
	return Device{
		Seebeck:     5.0e-4, // V/K → pumps S·I·T ≈ 1.05 W/device at 6 A
		Resistance:  0.0025, // Ω → I²R = 90 mW at 6 A
		Conductance: 0.055,  // W/K (0.25 mm², ~8 µm film) → ΔTmax ≈ 18 K
		Width:       0.5,    // mm
		Height:      0.5,    // mm
		MaxCurrent:  8,      // A, overheating danger threshold [10]
		EngageDelay: 20e-6,  // s
	}
}

// DriveCurrent is the fixed on-state current (A). The paper conservatively
// drives at 6 A.
const DriveCurrent = 6.0

// JouleHeat returns the resistive dissipation I²R (W) at current i.
func (d Device) JouleHeat(i float64) float64 { return i * i * d.Resistance }

// PumpCoefficient returns S·I (W/K of absolute cold-side temperature): the
// coefficient of the linear Peltier extraction term.
func (d Device) PumpCoefficient(i float64) float64 { return d.Seebeck * i }

// Power returns the electrical power (Eq. 9): r·I² + α·I·Δθ, where dTheta is
// the hot-minus-cold temperature difference in kelvin.
func (d Device) Power(i, dTheta float64) float64 {
	return d.JouleHeat(i) + d.Seebeck*i*dTheta
}

// ColdSideHeat returns Qc, the net heat absorbed at the cold side (W), for
// cold/hot side temperatures in °C.
func (d Device) ColdSideHeat(i, coldC, hotC float64) float64 {
	tc := coldC + 273.15
	return d.Seebeck*i*tc - 0.5*d.JouleHeat(i) - d.Conductance*(hotC-coldC)
}

// HotSideHeat returns Qh, the heat released at the hot side (W).
func (d Device) HotSideHeat(i, coldC, hotC float64) float64 {
	th := hotC + 273.15
	return d.Seebeck*i*th + 0.5*d.JouleHeat(i) - d.Conductance*(hotC-coldC)
}

// MaxDeltaT returns the classical maximum steady temperature differential
// the device can sustain at current i with zero heat load:
// ΔTmax = (S·I·Tc − ½I²R)/K (taking Tc at the given cold temperature, °C).
func (d Device) MaxDeltaT(i, coldC float64) float64 {
	return (d.Seebeck*i*(coldC+273.15) - 0.5*d.JouleHeat(i)) / d.Conductance
}

// ArrayDim is the paper's per-core TEC array: 3×3 devices.
const ArrayDim = 3

// DevicesPerCore is L per core (9).
const DevicesPerCore = ArrayDim * ArrayDim

// Placement positions one device over a core tile and precomputes which die
// components it covers (by area overlap), so the thermal model can apportion
// the Peltier extraction.
type Placement struct {
	Core   int
	Index  int     // 0..8 within the 3×3 array
	X, Y   float64 // top-left, chip coordinates, mm
	Device Device
	// Cover maps global component indices to the fraction of the DEVICE
	// area overlapping that component; fractions sum to ≤ 1.
	Cover map[int]float64
	// CoverList is Cover as a component-ordered slice. Numeric code must
	// accumulate over this list, never over the map: Go randomizes map
	// iteration order, and floating-point sums taken in varying order drift
	// in the last ulp, which breaks bitwise-reproducible (and hence
	// checkpoint/resumable) simulation.
	CoverList []CoverEntry
}

// CoverEntry is one (component, overlap fraction) pair of a placement.
type CoverEntry struct {
	Comp int
	Frac float64
}

// Array builds the 3×3 placements for every core of a chip. Following the
// placement-optimization result of Long & Memik [10] (the paper's TEC
// reference), the three device rows are aligned with the floorplan's
// highest-power-density rows rather than spaced uniformly: row 0 sits on
// the FP multiplier (the archetypal hot spot), row 1 on the FPAdd/ITB row,
// and row 2 on the L1 caches. Columns span the 1.8 mm logic width.
func Array(chip *floorplan.Chip, dev Device) []Placement {
	var out []Placement
	// Tile-local device centres (mm).
	colX := [ArrayDim]float64{0.30, 0.90, 1.50}
	rowY := [ArrayDim]float64{0.675, 1.575, 2.475}
	for core := 0; core < chip.NumCores(); core++ {
		tileCol := core % chip.TileCols
		tileRow := core / chip.TileCols
		ox := float64(tileCol) * floorplan.TileW
		oy := float64(tileRow) * floorplan.TileH
		for m := 0; m < ArrayDim; m++ {
			for k := 0; k < ArrayDim; k++ {
				p := Placement{
					Core:   core,
					Index:  m*ArrayDim + k,
					X:      ox + colX[k] - dev.Width/2,
					Y:      oy + rowY[m] - dev.Height/2,
					Device: dev,
					Cover:  map[int]float64{},
				}
				p.computeCover(chip)
				out = append(out, p)
			}
		}
	}
	return out
}

// UniformArray builds the naive alternative placement: a 3×3 grid spaced
// uniformly over the logic region (x ∈ [0, 1.8], y ∈ [0, 2.75] tile-local)
// instead of aligned with the hot floorplan rows. Used by the placement
// ablation to quantify what [10]-style placement optimization buys.
func UniformArray(chip *floorplan.Chip, dev Device) []Placement {
	var out []Placement
	const (
		regionW = 1.8
		regionH = 2.75
	)
	for core := 0; core < chip.NumCores(); core++ {
		tileCol := core % chip.TileCols
		tileRow := core / chip.TileCols
		ox := float64(tileCol) * floorplan.TileW
		oy := float64(tileRow) * floorplan.TileH
		for m := 0; m < ArrayDim; m++ {
			for k := 0; k < ArrayDim; k++ {
				cx := regionW * (2*float64(k) + 1) / (2 * ArrayDim)
				cy := regionH * (2*float64(m) + 1) / (2 * ArrayDim)
				p := Placement{
					Core:   core,
					Index:  m*ArrayDim + k,
					X:      ox + cx - dev.Width/2,
					Y:      oy + cy - dev.Height/2,
					Device: dev,
					Cover:  map[int]float64{},
				}
				p.computeCover(chip)
				out = append(out, p)
			}
		}
	}
	return out
}

// computeCover fills p.Cover with the per-component overlap fractions and
// mirrors them into the component-ordered CoverList (chip.Components is
// scanned in index order, so no extra sort is needed).
func (p *Placement) computeCover(chip *floorplan.Chip) {
	devArea := p.Device.Width * p.Device.Height
	for i, c := range chip.Components {
		if c.Core != p.Core {
			continue
		}
		ox := math.Min(p.X+p.Device.Width, c.X+c.W) - math.Max(p.X, c.X)
		oy := math.Min(p.Y+p.Device.Height, c.Y+c.H) - math.Max(p.Y, c.Y)
		if ox > 0 && oy > 0 {
			p.Cover[i] = ox * oy / devArea
			p.CoverList = append(p.CoverList, CoverEntry{Comp: i, Frac: ox * oy / devArea})
		}
	}
}

// State tracks the drive state and engagement timing of every TEC on the
// chip. The paper's main design switches devices on/off at the fixed 6 A
// via power transistors; the variable-current alternative it discusses
// (per-device current control through a dedicated on-chip VR, §III) is
// supported through SetCurrent, enabling the current-control ablation.
// Turning a device on starts the 20 µs Peltier engagement clock; the device
// consumes electrical power immediately but pumps heat only once engaged
// (a conservative model, per §IV-C).
type State struct {
	placements []Placement
	current    []float64 // drive current per device, A; 0 = off
	engageAt   []float64 // simulation time at which pumping becomes active
	now        float64
}

// NewState creates an all-off state over the given placements.
func NewState(placements []Placement) *State {
	return &State{
		placements: placements,
		current:    make([]float64, len(placements)),
		engageAt:   make([]float64, len(placements)),
	}
}

// Len returns the number of devices.
func (s *State) Len() int { return len(s.placements) }

// Placement returns device l's placement.
func (s *State) Placement(l int) Placement { return s.placements[l] }

// Advance moves the engagement clock to simulation time t (seconds).
func (s *State) Advance(t float64) { s.now = t }

// Now returns the current simulation time.
func (s *State) Now() float64 { return s.now }

// Set switches device l on (at the fixed DriveCurrent) or off. Switching on
// records the engagement deadline; switching off is immediate (heat pumping
// stops with the current).
func (s *State) Set(l int, on bool) {
	if on {
		s.SetCurrent(l, DriveCurrent)
	} else {
		s.SetCurrent(l, 0)
	}
}

// SetCurrent drives device l at the given current (A), the variable-current
// extension. Currents above the device's safe maximum are rejected with a
// panic — the paper flags >8 A as an overheating hazard [10]. Moving from
// off to any positive current restarts the engagement clock; changing
// between positive currents does not.
func (s *State) SetCurrent(l int, amps float64) {
	if amps < 0 || amps > s.placements[l].Device.MaxCurrent {
		panic(fmt.Sprintf("tec: current %.1f A outside [0, %.1f]", amps, s.placements[l].Device.MaxCurrent))
	}
	if amps > 0 && s.current[l] == 0 {
		s.engageAt[l] = s.now + s.placements[l].Device.EngageDelay
	}
	s.current[l] = amps
}

// Reset returns every device to off with a cleared engagement clock — the
// reuse hook that lets a per-candidate evaluation loop keep one State alive
// instead of allocating a fresh one per estimate.
func (s *State) Reset() {
	for i := range s.current {
		s.current[i] = 0
		s.engageAt[i] = 0
	}
	s.now = 0
}

// Current returns device l's drive current (A), 0 when off.
func (s *State) Current(l int) float64 { return s.current[l] }

// On reports whether device l is switched on (drawing power).
func (s *State) On(l int) bool { return s.current[l] > 0 }

// Engaged reports whether device l is actively pumping heat (on and past its
// engagement delay).
func (s *State) Engaged(l int) bool {
	return s.current[l] > 0 && s.now >= s.engageAt[l]
}

// CountOn returns the number of powered devices.
func (s *State) CountOn() int {
	n := 0
	for _, v := range s.current {
		if v > 0 {
			n++
		}
	}
	return n
}

// CoreDevices returns the indices of the devices on a core.
func (s *State) CoreDevices(core int) []int {
	var out []int
	for l, p := range s.placements {
		if p.Core == core {
			out = append(out, l)
		}
	}
	return out
}

// OnMask returns a copy of the on/off vector.
func (s *State) OnMask() []bool {
	out := make([]bool, len(s.current))
	for i, v := range s.current {
		out[i] = v > 0
	}
	return out
}

// OnMaskInto writes the on/off vector into dst, growing it only when dst is
// too small, and returns the filled slice — the reusable-buffer counterpart
// of OnMask.
func (s *State) OnMaskInto(dst []bool) []bool {
	if cap(dst) < len(s.current) {
		dst = make([]bool, len(s.current))
	}
	dst = dst[:len(s.current)]
	for i, v := range s.current {
		dst[i] = v > 0
	}
	return dst
}

// SetMask applies a full on/off vector (used by exhaustive-search policies).
func (s *State) SetMask(mask []bool) {
	if len(mask) != len(s.current) {
		panic(fmt.Sprintf("tec: mask length %d, want %d", len(mask), len(s.current)))
	}
	for l, v := range mask {
		s.Set(l, v)
	}
}

// Currents returns a copy of the per-device current vector.
func (s *State) Currents() []float64 {
	return append([]float64(nil), s.current...)
}

// CurrentsInto writes the per-device current vector into dst, growing it
// only when dst is too small, and returns the filled slice.
func (s *State) CurrentsInto(dst []float64) []float64 {
	if cap(dst) < len(s.current) {
		dst = make([]float64, len(s.current))
	}
	dst = dst[:len(s.current)]
	copy(dst, s.current)
	return dst
}

// Clone returns an independent copy of the state.
func (s *State) Clone() *State {
	return &State{
		placements: s.placements,
		current:    append([]float64(nil), s.current...),
		engageAt:   append([]float64(nil), s.engageAt...),
		now:        s.now,
	}
}

// StateSnapshot is the serializable drive state of a TEC array: per-device
// currents, engagement deadlines, and the engagement clock. It captures
// everything NewState + replayed commands would reconstruct, so a restored
// run continues bitwise-identically.
type StateSnapshot struct {
	Current  []float64
	EngageAt []float64
	Now      float64
}

// Snapshot exports the mutable state for checkpointing.
func (s *State) Snapshot() StateSnapshot {
	return StateSnapshot{
		Current:  append([]float64(nil), s.current...),
		EngageAt: append([]float64(nil), s.engageAt...),
		Now:      s.now,
	}
}

// RestoreSnapshot loads a previously exported state. The snapshot must match
// the placement count the state was built over.
func (s *State) RestoreSnapshot(snap StateSnapshot) error {
	if len(snap.Current) != len(s.placements) || len(snap.EngageAt) != len(s.placements) {
		return fmt.Errorf("tec: snapshot for %d/%d devices, state has %d",
			len(snap.Current), len(snap.EngageAt), len(s.placements))
	}
	copy(s.current, snap.Current)
	copy(s.engageAt, snap.EngageAt)
	s.now = snap.Now
	return nil
}
