package pool

import (
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"testing"
	"time"

	"tecfan/internal/clockfault"
)

// newFakeClock is the deterministic time source driving lease expiry in tests.
func newFakeClock() *clockfault.Manual {
	return clockfault.NewManual(time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC))
}

func testShards(n int) []ShardSpec {
	out := make([]ShardSpec, n)
	for i := range out {
		out[i] = ShardSpec{ID: fmt.Sprintf("s%d", i), Kind: KindChaos}
	}
	return out
}

func TestClaimGrantAndComplete(t *testing.T) {
	clk := newFakeClock()
	c := New(Config{LeaseTTL: time.Second, Clock: clk})
	var persisted *PersistedState
	done, err := c.AddJob("j", testShards(2), nil, JobHooks{
		Persist: func(st *PersistedState) error { persisted = st; return nil },
	})
	if err != nil {
		t.Fatal(err)
	}

	g1, err := c.Claim("w1")
	if err != nil || g1 == nil {
		t.Fatalf("claim: %v %v", g1, err)
	}
	if g1.Shard.ID != "s0" || g1.Token != 1 {
		t.Fatalf("first grant = %s token %d, want s0 token 1", g1.Shard.ID, g1.Token)
	}
	if persisted == nil || persisted.Shards[0].Token != 1 {
		t.Fatalf("grant not persisted before reply: %+v", persisted)
	}
	g2, err := c.Claim("w2")
	if err != nil || g2 == nil || g2.Shard.ID != "s1" {
		t.Fatalf("second claim: %v %v", g2, err)
	}
	if g3, err := c.Claim("w3"); err != nil || g3 != nil {
		t.Fatalf("no-work claim should be nil,nil; got %v %v", g3, err)
	}

	for _, g := range []*ClaimResponse{g1, g2} {
		w := "w1"
		if g.Shard.ID == "s1" {
			w = "w2"
		}
		if err := c.Complete(&CompleteRequest{
			Worker: w, JobID: "j", ShardID: g.Shard.ID, Token: g.Token, Result: []byte("r"),
		}); err != nil {
			t.Fatalf("complete %s: %v", g.Shard.ID, err)
		}
	}
	select {
	case <-done:
	default:
		t.Fatal("job done channel not closed after all shards completed")
	}
	if res, ok := c.Results("j"); !ok || len(res) != 2 {
		t.Fatalf("results: %v %v", res, ok)
	}
	// Retrying a completed shard with the same token is an idempotent OK.
	if err := c.Complete(&CompleteRequest{
		Worker: "w1", JobID: "j", ShardID: "s0", Token: g1.Token, Result: []byte("r"),
	}); err != nil {
		t.Fatalf("idempotent complete retry: %v", err)
	}
}

func TestLeaseExpiryFencesAndReassigns(t *testing.T) {
	clk := newFakeClock()
	var logBuf strings.Builder
	var logMu sync.Mutex
	c := New(Config{LeaseTTL: time.Second, Clock: clk, Logf: func(f string, a ...any) {
		logMu.Lock()
		defer logMu.Unlock()
		fmt.Fprintf(&logBuf, f+"\n", a...)
	}})
	if _, err := c.AddJob("j", testShards(1), nil, JobHooks{}); err != nil {
		t.Fatal(err)
	}
	g1, err := c.Claim("w1")
	if err != nil || g1 == nil {
		t.Fatal(err)
	}

	// Within the TTL the holder renews freely.
	clk.Advance(500 * time.Millisecond)
	if _, err := c.Heartbeat(&HeartbeatRequest{Worker: "w1", JobID: "j", ShardID: "s0", Token: g1.Token}); err != nil {
		t.Fatalf("in-lease heartbeat: %v", err)
	}

	// Past the TTL the lease is fenced on the holder's own heartbeat...
	clk.Advance(2 * time.Second)
	if _, err := c.Heartbeat(&HeartbeatRequest{Worker: "w1", JobID: "j", ShardID: "s0", Token: g1.Token}); !errors.Is(err, ErrFenced) {
		t.Fatalf("expired heartbeat: want ErrFenced, got %v", err)
	}
	// ...and the shard regrants under a strictly higher token.
	g2, err := c.Claim("w2")
	if err != nil || g2 == nil {
		t.Fatal(err)
	}
	if g2.Token <= g1.Token {
		t.Fatalf("regrant token %d not above fenced token %d", g2.Token, g1.Token)
	}

	// The zombie's late writes are all no-ops.
	if err := c.UploadCheckpoint(&CheckpointUpload{
		Worker: "w1", JobID: "j", ShardID: "s0", Token: g1.Token, Data: []byte("z"),
	}); !errors.Is(err, ErrFenced) {
		t.Fatalf("zombie checkpoint upload: want ErrFenced, got %v", err)
	}
	if err := c.Complete(&CompleteRequest{
		Worker: "w1", JobID: "j", ShardID: "s0", Token: g1.Token, Result: []byte("z"),
	}); !errors.Is(err, ErrFenced) {
		t.Fatalf("zombie complete: want ErrFenced, got %v", err)
	}
	logMu.Lock()
	logs := logBuf.String()
	logMu.Unlock()
	if !strings.Contains(logs, "fenced checkpoint upload") {
		t.Fatalf("fenced upload not logged:\n%s", logs)
	}

	// The new holder's checkpoint and completion land normally, and the
	// zombie's rejected checkpoint never replaced a good one.
	if err := c.UploadCheckpoint(&CheckpointUpload{
		Worker: "w2", JobID: "j", ShardID: "s0", Token: g2.Token, Data: []byte("good"),
	}); err != nil {
		t.Fatal(err)
	}
	if err := c.Complete(&CompleteRequest{
		Worker: "w2", JobID: "j", ShardID: "s0", Token: g2.Token, Result: []byte("done"),
	}); err != nil {
		t.Fatal(err)
	}
	st := c.Stats()
	if st.FencedRejects < 2 || st.ExpiredLeases < 1 || st.ShardsDone != 1 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestCheckpointHandoffToNextClaimant(t *testing.T) {
	clk := newFakeClock()
	c := New(Config{LeaseTTL: time.Second, Clock: clk})
	if _, err := c.AddJob("j", testShards(1), nil, JobHooks{}); err != nil {
		t.Fatal(err)
	}
	g1, _ := c.Claim("w1")
	if err := c.UploadCheckpoint(&CheckpointUpload{
		Worker: "w1", JobID: "j", ShardID: "s0", Token: g1.Token, Data: []byte("progress"),
	}); err != nil {
		t.Fatal(err)
	}
	clk.Advance(3 * time.Second) // kill w1 by silence
	g2, err := c.Claim("w2")
	if err != nil || g2 == nil {
		t.Fatal(err)
	}
	if string(g2.Checkpoint) != "progress" {
		t.Fatalf("reassigned grant checkpoint = %q, want dead worker's upload", g2.Checkpoint)
	}
}

func TestCoordinatorRestartReAdoption(t *testing.T) {
	clk := newFakeClock()
	var persisted *PersistedState
	hooks := JobHooks{Persist: func(st *PersistedState) error { persisted = st; return nil }}
	c := New(Config{LeaseTTL: time.Second, Clock: clk})
	if _, err := c.AddJob("j", testShards(2), nil, hooks); err != nil {
		t.Fatal(err)
	}
	g1, _ := c.Claim("w1")
	if err := c.Complete(&CompleteRequest{
		Worker: "w1", JobID: "j", ShardID: "s0", Token: g1.Token, Result: []byte("r0"),
	}); err != nil {
		t.Fatal(err)
	}
	g2, _ := c.Claim("w1")

	// "Restart": a fresh coordinator restored from the persisted state.
	c2 := New(Config{LeaseTTL: time.Second, Clock: clk})
	if _, err := c2.AddJob("j", testShards(2), persisted, hooks); err != nil {
		t.Fatal(err)
	}
	// The live worker's heartbeat under its still-current token re-adopts
	// the lease rather than fencing the worker.
	if _, err := c2.Heartbeat(&HeartbeatRequest{
		Worker: "w1", JobID: "j", ShardID: g2.Shard.ID, Token: g2.Token,
	}); err != nil {
		t.Fatalf("re-adoption heartbeat: %v", err)
	}
	// The re-adopted shard is not up for grabs.
	if g, err := c2.Claim("w2"); err != nil || g != nil {
		t.Fatalf("claim after re-adoption: %v %v", g, err)
	}
	// And the done shard stayed done with its result intact.
	if err := c2.Complete(&CompleteRequest{
		Worker: "w1", JobID: "j", ShardID: g2.Shard.ID, Token: g2.Token, Result: []byte("r1"),
	}); err != nil {
		t.Fatal(err)
	}
	res, ok := c2.Results("j")
	if !ok || string(res[0]) != "r0" || string(res[1]) != "r1" {
		t.Fatalf("restored results: %q ok=%v", res, ok)
	}
}

func TestPersistFailureRefusesGrantAndCompletion(t *testing.T) {
	clk := newFakeClock()
	fail := true
	c := New(Config{LeaseTTL: time.Second, Clock: clk})
	if _, err := c.AddJob("j", testShards(1), nil, JobHooks{
		Persist: func(*PersistedState) error {
			if fail {
				return errors.New("disk gone")
			}
			return nil
		},
	}); err != nil {
		t.Fatal(err)
	}
	if g, err := c.Claim("w1"); err == nil {
		t.Fatalf("claim with failing persist should refuse, got %+v", g)
	}
	fail = false
	g, err := c.Claim("w1")
	if err != nil || g == nil {
		t.Fatal(err)
	}
	fail = true
	if err := c.Complete(&CompleteRequest{
		Worker: "w1", JobID: "j", ShardID: "s0", Token: g.Token, Result: []byte("r"),
	}); err == nil {
		t.Fatal("complete with failing persist should refuse the ack")
	}
	// Not durable means not done: the retry (persist healthy again) must
	// actually re-record, not short-circuit through the idempotent path.
	fail = false
	if err := c.Complete(&CompleteRequest{
		Worker: "w1", JobID: "j", ShardID: "s0", Token: g.Token, Result: []byte("r"),
	}); err != nil {
		t.Fatalf("retry after persist recovered: %v", err)
	}
	if res, ok := c.Results("j"); !ok || string(res[0]) != "r" {
		t.Fatalf("results after retry: %q ok=%v", res, ok)
	}
}

func TestDropJobAnswersShardGone(t *testing.T) {
	clk := newFakeClock()
	c := New(Config{LeaseTTL: time.Second, Clock: clk})
	done, _ := c.AddJob("j", testShards(1), nil, JobHooks{})
	g, _ := c.Claim("w1")
	c.DropJob("j")
	select {
	case <-done:
	default:
		t.Fatal("drop must unblock the job waiter")
	}
	if _, err := c.Heartbeat(&HeartbeatRequest{
		Worker: "w1", JobID: "j", ShardID: "s0", Token: g.Token,
	}); !errors.Is(err, ErrShardGone) {
		t.Fatalf("heartbeat after drop: want ErrShardGone, got %v", err)
	}
}

// TestFencingTokensStrictlyMonotonicProperty drives a seeded random schedule
// of grants, heartbeats, expiries, completions, and coordinator
// crash-restore cycles, and asserts the property fencing correctness rests
// on: the sequence of tokens any worker ever observes for a given shard is
// strictly increasing — including across coordinator restarts, because
// observable tokens are persisted before they are handed out.
func TestFencingTokensStrictlyMonotonicProperty(t *testing.T) {
	for seed := int64(1); seed <= 20; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			clk := newFakeClock()
			const nShards = 4
			store := map[string]*PersistedState{}
			hooks := func(job string) JobHooks {
				return JobHooks{Persist: func(st *PersistedState) error {
					// Deep-copy: the coordinator may keep mutating its shards.
					cp := &PersistedState{Shards: append([]PersistedShard(nil), st.Shards...)}
					store[job] = cp
					return nil
				}}
			}
			newCoord := func() *Coordinator {
				c := New(Config{LeaseTTL: time.Second, Clock: clk})
				if _, err := c.AddJob("j", testShards(nShards), store["j"], hooks("j")); err != nil {
					t.Fatal(err)
				}
				return c
			}
			c := newCoord()

			lastObserved := map[string]uint64{} // shard → highest token ever granted
			held := map[string]*ClaimResponse{} // worker → live grant
			workers := []string{"w1", "w2", "w3", "w4"}

			for step := 0; step < 400; step++ {
				w := workers[rng.Intn(len(workers))]
				switch op := rng.Intn(10); {
				case op < 4: // claim
					g, err := c.Claim(w)
					if err != nil || g == nil {
						continue
					}
					if prev, ok := lastObserved[g.Shard.ID]; ok && g.Token <= prev {
						t.Fatalf("step %d: shard %s granted token %d after %d was observed",
							step, g.Shard.ID, g.Token, prev)
					}
					lastObserved[g.Shard.ID] = g.Token
					held[w] = g
				case op < 7: // heartbeat whatever this worker holds
					g := held[w]
					if g == nil {
						continue
					}
					if _, err := c.Heartbeat(&HeartbeatRequest{
						Worker: w, JobID: g.JobID, ShardID: g.Shard.ID, Token: g.Token,
					}); err != nil {
						delete(held, w) // fenced or gone: abandon
					}
				case op < 8: // complete
					g := held[w]
					if g == nil {
						continue
					}
					c.Complete(&CompleteRequest{
						Worker: w, JobID: g.JobID, ShardID: g.Shard.ID, Token: g.Token,
						Result: []byte("r"),
					})
					delete(held, w)
				case op < 9: // time passes; maybe past lease expiry
					clk.Advance(time.Duration(rng.Intn(1500)) * time.Millisecond)
				default: // coordinator crash + restore from persisted state
					c = newCoord()
				}
			}
		})
	}
}

func TestPlanChaosShardsPreserveSweepOrder(t *testing.T) {
	shards, err := Plan(SweepSpec{
		Kind: KindChaos, Bench: "cholesky", Threads: 16, Seed: 7,
		Policies:  []string{"TECfan", "TECfan-FT"},
		Scenarios: []string{"a", "b", "c"},
		Chunk:     2,
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []struct {
		id    string
		pol   string
		scens []string
	}{
		{"chaos/TECfan/0", "TECfan", []string{"a", "b"}},
		{"chaos/TECfan/1", "TECfan", []string{"c"}},
		{"chaos/TECfan-FT/0", "TECfan-FT", []string{"a", "b"}},
		{"chaos/TECfan-FT/1", "TECfan-FT", []string{"c"}},
	}
	if len(shards) != len(want) {
		t.Fatalf("got %d shards, want %d", len(shards), len(want))
	}
	for i, w := range want {
		sh := shards[i]
		if sh.ID != w.id || sh.Policy != w.pol || fmt.Sprint(sh.Scenarios) != fmt.Sprint(w.scens) {
			t.Fatalf("shard %d = %+v, want %+v", i, sh, w)
		}
		if sh.Bench != "cholesky" || sh.Threads != 16 || sh.Seed != 7 {
			t.Fatalf("shard %d lost job fields: %+v", i, sh)
		}
	}
}

func TestPlanTraceAndTables(t *testing.T) {
	tr, err := Plan(SweepSpec{Kind: KindTrace, Bench: "fft", Threads: 4, Policy: "TECfan", CheckpointEvery: 50})
	if err != nil || len(tr) != 1 || tr[0].ID != "trace" || tr[0].CheckpointEvery != 50 {
		t.Fatalf("trace plan: %+v err %v", tr, err)
	}
	t1, err := Plan(SweepSpec{Kind: KindTable1, Chunk: 3})
	if err != nil || len(t1) == 0 {
		t.Fatalf("table1 plan: %v", err)
	}
	total := 0
	for i, sh := range t1 {
		if sh.ID != fmt.Sprintf("table1/%d", i) {
			t.Fatalf("shard id %q", sh.ID)
		}
		for _, idx := range sh.Indices {
			if idx != total {
				t.Fatalf("indices not contiguous in table order: %+v", t1)
			}
			total++
		}
	}
	f4, err := Plan(SweepSpec{Kind: KindFig4, Chunk: 100})
	if err != nil || len(f4) != 1 || len(f4[0].Indices) != total {
		t.Fatalf("fig4 plan: %+v err %v (table1 rows %d)", f4, err, total)
	}
	if _, err := Plan(SweepSpec{Kind: "nope"}); err == nil {
		t.Fatal("unknown kind must refuse")
	}
}
