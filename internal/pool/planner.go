package pool

import (
	"fmt"
	"strconv"

	"tecfan/internal/exp"
	"tecfan/internal/fault"
	"tecfan/internal/power"
	"tecfan/internal/workload"
)

// Job kinds a sweep can be sharded into. Values match the daemon's JobKind
// strings so specs round-trip without translation.
const (
	KindTrace  = "trace"
	KindChaos  = "chaos"
	KindTable1 = "table1"
	KindFig4   = "fig4"
)

// DefaultChunk is the number of sweep rows (chaos scenarios, table/figure
// benchmark indices) bundled into one shard when SweepSpec.Chunk is zero.
// Small chunks mean finer-grained reassignment after worker death; the
// checkpoint handoff makes even intra-shard progress survivable, so this is
// a latency knob, not a correctness one.
const DefaultChunk = 2

// ShardSpec is one self-contained unit of work: a worker needs nothing but
// this (plus the optional checkpoint from a previous holder) to execute it.
// Shard IDs are stable across replanning — same sweep, same shards — which
// is what lets a restarted coordinator re-adopt live workers mid-shard.
type ShardSpec struct {
	ID      string  `json:"id"`
	Kind    string  `json:"kind"`
	Bench   string  `json:"bench,omitempty"`
	Threads int     `json:"threads,omitempty"`
	Scale   float64 `json:"scale,omitempty"`
	Seed    int64   `json:"seed,omitempty"`

	// Trace shards.
	Policy          string  `json:"policy,omitempty"`
	FanLevel        int     `json:"fan_level,omitempty"`
	Threshold       float64 `json:"threshold,omitempty"`
	Scenario        string  `json:"scenario,omitempty"`
	CheckpointEvery int     `json:"checkpoint_every,omitempty"`

	// Chaos shards: one policy, a chunk of scenarios.
	Scenarios []string `json:"scenarios,omitempty"`

	// Table1/Fig4 shards: benchmark indices into workload.Table1 order.
	Indices []int `json:"indices,omitempty"`
}

// SweepSpec describes a whole job for the planner. It mirrors the daemon's
// JobSpec plus the sharding knobs the daemon owns.
type SweepSpec struct {
	Kind            string
	Bench           string
	Threads         int
	Scale           float64
	Seed            int64
	Policy          string
	FanLevel        int
	Threshold       float64
	Scenario        string
	Policies        []string
	Scenarios       []string
	CheckpointEvery int
	Chunk           int
}

// Plan deterministically shards a sweep. The shard order is the merge order:
// concatenating shard results in plan order must reproduce the row order of
// the equivalent single-process run (per policy, per scenario for chaos;
// benchmark order for table1/fig4), which is what makes the pooled result
// byte-identical to the non-pooled one.
func Plan(s SweepSpec) ([]ShardSpec, error) {
	chunk := s.Chunk
	if chunk <= 0 {
		chunk = DefaultChunk
	}
	base := ShardSpec{
		Kind: s.Kind, Bench: s.Bench, Threads: s.Threads,
		Scale: s.Scale, Seed: s.Seed,
	}
	switch s.Kind {
	case KindTrace:
		// A trace job is a single simulation: one shard, resumable through
		// sim snapshots rather than row splits.
		sh := base
		sh.ID = "trace"
		sh.Policy = s.Policy
		sh.FanLevel = s.FanLevel
		sh.Threshold = s.Threshold
		sh.Scenario = s.Scenario
		sh.CheckpointEvery = s.CheckpointEvery
		return []ShardSpec{sh}, nil
	case KindChaos:
		pols := s.Policies
		if len(pols) == 0 {
			pols = exp.DefaultChaosPolicies()
		}
		scens := s.Scenarios
		if len(scens) == 0 {
			scens = fault.Names()
		}
		var out []ShardSpec
		for _, p := range pols {
			for n, i := 0, 0; i < len(scens); n, i = n+1, i+chunk {
				end := i + chunk
				if end > len(scens) {
					end = len(scens)
				}
				sh := base
				sh.ID = "chaos/" + p + "/" + strconv.Itoa(n)
				sh.Policy = p
				sh.Scenarios = append([]string(nil), scens[i:end]...)
				out = append(out, sh)
			}
		}
		return out, nil
	case KindTable1, KindFig4:
		n := len(workload.Table1(power.DefaultLeakage()))
		var out []ShardSpec
		for c, i := 0, 0; i < n; c, i = c+1, i+chunk {
			end := i + chunk
			if end > n {
				end = n
			}
			sh := base
			sh.ID = s.Kind + "/" + strconv.Itoa(c)
			for j := i; j < end; j++ {
				sh.Indices = append(sh.Indices, j)
			}
			out = append(out, sh)
		}
		return out, nil
	default:
		return nil, fmt.Errorf("pool: unknown job kind %q", s.Kind)
	}
}
