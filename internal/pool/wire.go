// Package pool is the coordinator side of the tecfand worker pool: it
// shards jobs into independently executable pieces, grants time-bounded
// leases over them to worker processes, and makes worker death survivable.
//
// The safety core is the fencing token: a per-shard counter bumped on every
// grant (and on every forced lease revocation), persisted durably before the
// grant is answered. A worker that stalls, is SIGKILLed, or is partitioned
// loses its lease; the shard is regranted under a higher token, and every
// late write — heartbeat, checkpoint upload, completion — arriving under the
// old token is rejected as a zombie write. Completion is idempotent under
// the current token, so a worker retrying a complete whose ack was lost
// cannot double-finish a shard: exactly-once end to end.
package pool

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
)

// Wire size bounds. A decoder must never let a hostile or corrupt length
// make it allocate unboundedly.
const (
	// MaxControlBytes bounds claim and heartbeat messages — a few short
	// strings and a token.
	MaxControlBytes = 1 << 16
	// MaxBlobBytes bounds checkpoint uploads and shard results (sim
	// snapshots and full traces ride in them).
	MaxBlobBytes = 64 << 20
)

// Typed wire-decode failures, distinguishable with errors.Is.
var (
	ErrWireTooLarge = errors.New("pool: wire message too large")
	ErrWireSyntax   = errors.New("pool: malformed wire message")
	ErrWireField    = errors.New("pool: invalid wire field")
)

// ClaimRequest asks the coordinator for a shard lease.
type ClaimRequest struct {
	Worker string `json:"worker"`
}

// ClaimResponse grants a shard lease: the shard to run, the fencing token
// every subsequent write must carry, the lease duration the worker must
// renew within, and the last checkpoint the previous holder uploaded (nil on
// a fresh shard) for the worker to resume from.
type ClaimResponse struct {
	JobID      string    `json:"job_id"`
	Shard      ShardSpec `json:"shard"`
	Token      uint64    `json:"token"`
	LeaseMS    int64     `json:"lease_ms"`
	Checkpoint []byte    `json:"checkpoint,omitempty"`
}

// HeartbeatRequest renews a lease.
type HeartbeatRequest struct {
	Worker  string `json:"worker"`
	JobID   string `json:"job_id"`
	ShardID string `json:"shard_id"`
	Token   uint64 `json:"token"`
}

// HeartbeatResponse carries the renewed lease duration.
type HeartbeatResponse struct {
	LeaseMS int64 `json:"lease_ms"`
}

// CheckpointUpload carries a mid-shard progress snapshot. The payload is
// opaque to the coordinator; it is handed verbatim to whichever worker next
// claims the shard.
type CheckpointUpload struct {
	Worker  string `json:"worker"`
	JobID   string `json:"job_id"`
	ShardID string `json:"shard_id"`
	Token   uint64 `json:"token"`
	Data    []byte `json:"data"`
}

// CompleteRequest carries a shard's final result payload.
type CompleteRequest struct {
	Worker  string `json:"worker"`
	JobID   string `json:"job_id"`
	ShardID string `json:"shard_id"`
	Token   uint64 `json:"token"`
	Result  []byte `json:"result"`
}

// decodeStrict is the shared wire decoder: bounded size, strict JSON (no
// unknown fields, no trailing garbage), and — because fencing tokens decode
// into uint64 — any negative, fractional, or overflowing token is a syntax
// error here, never a silent wrap to a token that might outfence a live
// lease.
func decodeStrict(data []byte, max int, v any) error {
	if len(data) > max {
		return fmt.Errorf("%w: %d bytes (max %d)", ErrWireTooLarge, len(data), max)
	}
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("%w: %v", ErrWireSyntax, err)
	}
	// A second value after the first (e.g. smuggled trailing JSON) is as
	// malformed as a syntax error.
	if dec.More() {
		return fmt.Errorf("%w: trailing data", ErrWireSyntax)
	}
	return nil
}

// checkID validates a wire identifier: non-empty and bounded, so log lines
// and map keys stay sane even for hostile senders.
func checkID(field, v string) error {
	if v == "" {
		return fmt.Errorf("%w: %s is empty", ErrWireField, field)
	}
	if len(v) > 128 {
		return fmt.Errorf("%w: %s is %d bytes (max 128)", ErrWireField, field, len(v))
	}
	return nil
}

// DecodeClaimRequest parses and validates a claim.
func DecodeClaimRequest(data []byte) (*ClaimRequest, error) {
	var cr ClaimRequest
	if err := decodeStrict(data, MaxControlBytes, &cr); err != nil {
		return nil, err
	}
	if err := checkID("worker", cr.Worker); err != nil {
		return nil, err
	}
	return &cr, nil
}

// DecodeClaimResponse parses a lease grant (the worker-side decoder).
func DecodeClaimResponse(data []byte) (*ClaimResponse, error) {
	var cr ClaimResponse
	if err := decodeStrict(data, MaxBlobBytes, &cr); err != nil {
		return nil, err
	}
	if err := checkID("job_id", cr.JobID); err != nil {
		return nil, err
	}
	if err := checkID("shard id", cr.Shard.ID); err != nil {
		return nil, err
	}
	if cr.LeaseMS <= 0 {
		return nil, fmt.Errorf("%w: lease_ms %d", ErrWireField, cr.LeaseMS)
	}
	return &cr, nil
}

// DecodeHeartbeat parses and validates a lease renewal.
func DecodeHeartbeat(data []byte) (*HeartbeatRequest, error) {
	var hb HeartbeatRequest
	if err := decodeStrict(data, MaxControlBytes, &hb); err != nil {
		return nil, err
	}
	for _, c := range []struct{ f, v string }{
		{"worker", hb.Worker}, {"job_id", hb.JobID}, {"shard_id", hb.ShardID},
	} {
		if err := checkID(c.f, c.v); err != nil {
			return nil, err
		}
	}
	return &hb, nil
}

// DecodeCheckpointUpload parses and validates a checkpoint upload.
func DecodeCheckpointUpload(data []byte) (*CheckpointUpload, error) {
	var up CheckpointUpload
	if err := decodeStrict(data, MaxBlobBytes, &up); err != nil {
		return nil, err
	}
	for _, c := range []struct{ f, v string }{
		{"worker", up.Worker}, {"job_id", up.JobID}, {"shard_id", up.ShardID},
	} {
		if err := checkID(c.f, c.v); err != nil {
			return nil, err
		}
	}
	return &up, nil
}

// DecodeComplete parses and validates a shard completion.
func DecodeComplete(data []byte) (*CompleteRequest, error) {
	var cr CompleteRequest
	if err := decodeStrict(data, MaxBlobBytes, &cr); err != nil {
		return nil, err
	}
	for _, c := range []struct{ f, v string }{
		{"worker", cr.Worker}, {"job_id", cr.JobID}, {"shard_id", cr.ShardID},
	} {
		if err := checkID(c.f, c.v); err != nil {
			return nil, err
		}
	}
	if len(cr.Result) == 0 {
		return nil, fmt.Errorf("%w: empty result payload", ErrWireField)
	}
	return &cr, nil
}
