package pool

import (
	"bytes"
	"encoding/gob"
	"fmt"

	"tecfan/internal/exp"
	"tecfan/internal/numguard"
	"tecfan/internal/perf"
	"tecfan/internal/sim"
)

// Shard checkpoint and result payloads. They ride the wire as opaque bytes —
// the coordinator stores and forwards them without understanding them — so
// their encoding is gob, same as the daemon's job checkpoints, and the
// structs below are the contract between the worker that writes a payload
// and the worker (or merging coordinator) that reads it.

// ChaosCheckpoint is a chaos shard's mid-flight progress: rows finished so
// far within the shard, replayed through ChaosOptions.Done by the next
// holder.
type ChaosCheckpoint struct {
	Rows []exp.ChaosRow
}

// ChaosShardResult is a finished chaos shard: its rows in emission order,
// plus the threshold the shard derived (identical across shards of a job —
// the base scenario is deterministic — so the merger can take any one).
type ChaosShardResult struct {
	Threshold float64
	Rows      []exp.ChaosRow
}

// TraceCheckpoint is a trace shard's progress: the pinned threshold and the
// simulator snapshot to resume from.
type TraceCheckpoint struct {
	Threshold float64
	Snap      *sim.Snapshot
}

// TraceShardResult is a finished trace shard, carrying everything the
// daemon's result file needs — including the numguard health block, so a
// divergence a worker survived in fail-safe reaches the coordinator's result
// file and sticky /readyz exactly as an in-process run's would. (Gob tolerates
// the new field in either direction, but coordinator and workers are built
// from one tree in every drill, so mixed versions never actually meet.)
type TraceShardResult struct {
	Threshold  float64
	Completed  bool
	Metrics    perf.Metrics
	FinalTemps []float64
	Trace      []sim.TracePoint
	Numeric    *numguard.Health
}

// Table1Checkpoint is a table1 shard's progress: rows finished so far,
// parallel to a prefix of the shard's Indices.
type Table1Checkpoint struct {
	Rows []exp.Table1Row
}

// Table1ShardResult is a finished table1 shard.
type Table1ShardResult struct {
	Rows []exp.Table1Row
}

// Fig4Checkpoint is a fig4 shard's progress: cases finished so far, parallel
// to a prefix of the shard's Indices.
type Fig4Checkpoint struct {
	Cases []exp.Fig4Case
}

// Fig4ShardResult is a finished fig4 shard.
type Fig4ShardResult struct {
	Cases []exp.Fig4Case
}

// EncodePayload gob-encodes a shard payload.
func EncodePayload(v any) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		return nil, fmt.Errorf("pool: encoding payload: %w", err)
	}
	return buf.Bytes(), nil
}

// DecodePayload gob-decodes a shard payload into v, bounding the input the
// same way the wire decoders do.
func DecodePayload(data []byte, v any) error {
	if len(data) > MaxBlobBytes {
		return fmt.Errorf("%w: payload %d bytes (max %d)", ErrWireTooLarge, len(data), MaxBlobBytes)
	}
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(v); err != nil {
		return fmt.Errorf("pool: decoding payload: %w", err)
	}
	return nil
}
