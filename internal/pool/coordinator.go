package pool

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"tecfan/internal/clockfault"
)

// Sentinel errors surfaced to the HTTP layer (and through it to workers).
var (
	// ErrFenced rejects a write carrying a stale fencing token: the sender
	// lost its lease (death, stall, partition) and the shard moved on. The
	// only correct worker response is to abandon the shard.
	ErrFenced = errors.New("pool: fenced: stale lease token")
	// ErrShardGone rejects a write for a shard or job the coordinator no
	// longer tracks — the job was canceled or dropped.
	ErrShardGone = errors.New("pool: shard gone")
)

// DefaultLeaseTTL is the lease duration when Config.LeaseTTL is zero.
const DefaultLeaseTTL = 10 * time.Second

// Config parameterizes a Coordinator.
type Config struct {
	// LeaseTTL is how long a granted lease lives without renewal.
	LeaseTTL time.Duration
	// Logf receives coordinator events; nil discards them.
	Logf func(format string, args ...any)
	// Clock is the time seam; nil means clockfault.OS. Lease expiry and
	// worker liveness are judged exclusively by this clock's monotonic
	// arithmetic, so a wall-clock step (NTP, operator, fault injection) can
	// neither mass-expire live leases nor immortalize dead ones.
	Clock clockfault.Clock
}

// JobHooks are the per-job callbacks the job owner (the daemon) provides.
type JobHooks struct {
	// Persist durably stores the job's pool state. It is called with the
	// coordinator lock held, BEFORE any grant or completion is acknowledged:
	// a token a worker has seen is always a token that survives coordinator
	// restart, which is what makes regranting a live token impossible.
	Persist func(*PersistedState) error
	// OnEvent observes job progress ("grant", "checkpoint", "complete") —
	// the daemon feeds it into the supervisor watchdog so a pooled job with
	// active workers never reads as stalled.
	OnEvent func(event, shardID string)
}

// PersistedState is the durable pool state of one job, embedded by the
// daemon into the job's checkpoint envelope.
type PersistedState struct {
	Shards []PersistedShard
}

// PersistedShard is one shard's durable state. Lease holder and expiry are
// deliberately absent: leases are volatile, and after a coordinator restart
// a live holder re-establishes its lease by heartbeating its still-current
// token (re-adoption), while a dead one simply never comes back.
type PersistedShard struct {
	ID         string
	Token      uint64
	Done       bool
	Checkpoint []byte
	Result     []byte
}

// Stats is the coordinator's observable state, served at /pool/stats and
// polled by the drill to pace its kills.
type Stats struct {
	WorkersLive   int   `json:"workers_live"`
	Jobs          int   `json:"jobs"`
	ShardsTotal   int   `json:"shards_total"`
	ShardsDone    int   `json:"shards_done"`
	Grants        int64 `json:"grants"`
	Completes     int64 `json:"completes"`
	FencedRejects int64 `json:"fenced_rejects"`
	ExpiredLeases int64 `json:"expired_leases"`
}

type shardState int

const (
	shardPending shardState = iota
	shardLeased
	shardDone
)

type shard struct {
	spec       ShardSpec
	token      uint64
	state      shardState
	holder     string
	expiry     clockfault.Mono
	checkpoint []byte
	result     []byte
}

type poolJob struct {
	id     string
	shards []*shard // plan order == merge order
	hooks  JobHooks
	done   chan struct{}
}

func (j *poolJob) allDone() bool {
	for _, sh := range j.shards {
		if sh.state != shardDone {
			return false
		}
	}
	return true
}

func (j *poolJob) persisted() *PersistedState {
	st := &PersistedState{Shards: make([]PersistedShard, len(j.shards))}
	for i, sh := range j.shards {
		st.Shards[i] = PersistedShard{
			ID: sh.spec.ID, Token: sh.token, Done: sh.state == shardDone,
			Checkpoint: sh.checkpoint, Result: sh.result,
		}
	}
	return st
}

// Coordinator owns the lease table: it shards nothing and executes nothing,
// it only decides who may work on what, under which fencing token, and for
// how long. All methods are safe for concurrent use.
type Coordinator struct {
	cfg Config

	mu       sync.Mutex
	jobs     map[string]*poolJob
	jobOrder []string
	lastSeen map[string]clockfault.Mono
	ledger   []LeaseEvent

	grants, completes, fenced, expired int64
}

// New creates a Coordinator.
func New(cfg Config) *Coordinator {
	if cfg.LeaseTTL <= 0 {
		cfg.LeaseTTL = DefaultLeaseTTL
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	cfg.Clock = clockfault.Or(cfg.Clock)
	return &Coordinator{
		cfg:      cfg,
		jobs:     map[string]*poolJob{},
		lastSeen: map[string]clockfault.Mono{},
	}
}

// AddJob registers a job's shards for distribution. restore, when non-nil,
// reapplies a previously persisted state (matched by shard ID): done shards
// stay done, tokens resume from their high-water mark, and checkpoints are
// handed to the next claimant. The returned channel closes when every shard
// completes.
func (c *Coordinator) AddJob(id string, shards []ShardSpec, restore *PersistedState, hooks JobHooks) (<-chan struct{}, error) {
	if len(shards) == 0 {
		return nil, fmt.Errorf("pool: job %s: empty shard plan", id)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.jobs[id]; ok {
		return nil, fmt.Errorf("pool: job %s already registered", id)
	}
	j := &poolJob{id: id, hooks: hooks, done: make(chan struct{})}
	prev := map[string]PersistedShard{}
	if restore != nil {
		for _, ps := range restore.Shards {
			prev[ps.ID] = ps
		}
	}
	for _, spec := range shards {
		sh := &shard{spec: spec}
		if ps, ok := prev[spec.ID]; ok {
			sh.token = ps.Token
			sh.checkpoint = ps.Checkpoint
			if ps.Done {
				sh.state = shardDone
				sh.result = ps.Result
			}
		}
		j.shards = append(j.shards, sh)
	}
	c.jobs[id] = j
	c.jobOrder = append(c.jobOrder, id)
	if j.allDone() {
		close(j.done)
	}
	return j.done, nil
}

// DropJob forgets a job. In-flight workers learn on their next call, which
// answers ErrShardGone, and abandon the shard.
func (c *Coordinator) DropJob(id string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	j, ok := c.jobs[id]
	if !ok {
		return
	}
	delete(c.jobs, id)
	for i, jid := range c.jobOrder {
		if jid == id {
			c.jobOrder = append(c.jobOrder[:i], c.jobOrder[i+1:]...)
			break
		}
	}
	// Unblock any waiter; the caller dropping the job knows it is aborting.
	select {
	case <-j.done:
	default:
		close(j.done)
	}
}

// Results returns the job's shard result payloads in plan order. ok is false
// until every shard is done.
func (c *Coordinator) Results(id string) (payloads [][]byte, ok bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	j, found := c.jobs[id]
	if !found || !j.allDone() {
		return nil, false
	}
	out := make([][]byte, len(j.shards))
	for i, sh := range j.shards {
		out[i] = sh.result
	}
	return out, true
}

// expireLocked fences every lease past its expiry: the shard returns to
// pending under a bumped token, so any still-running holder's subsequent
// writes are rejected. Called with c.mu held, lazily from worker-driven
// entry points — worker polling is the pool's clock, no background sweeper.
func (c *Coordinator) expireLocked(now clockfault.Mono) {
	for _, id := range c.jobOrder {
		for _, sh := range c.jobs[id].shards {
			if sh.state == shardLeased && now.After(sh.expiry) {
				c.expireShardLocked(id, sh)
			}
		}
	}
}

// expireShardLocked fences one overdue lease. Called with c.mu held.
func (c *Coordinator) expireShardLocked(jobID string, sh *shard) {
	c.cfg.Logf("pool: lease expired: job %s shard %s holder %s token %d",
		jobID, sh.spec.ID, sh.holder, sh.token)
	c.recordLocked(EventExpire, jobID, sh.spec.ID, sh.holder, sh.token)
	sh.state = shardPending
	sh.holder = ""
	sh.token++
	c.expired++
}

// Claim grants the first pending shard in plan order to worker, bumping and
// durably persisting its fencing token before the grant is returned. A nil
// response with nil error means no work is available.
func (c *Coordinator) Claim(worker string) (*ClaimResponse, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.cfg.Clock.Mono()
	c.lastSeen[worker] = now
	c.expireLocked(now)
	for _, id := range c.jobOrder {
		j := c.jobs[id]
		for _, sh := range j.shards {
			if sh.state != shardPending {
				continue
			}
			sh.token++
			sh.state = shardLeased
			sh.holder = worker
			sh.expiry = now.Add(c.cfg.LeaseTTL)
			if j.hooks.Persist != nil {
				if err := j.hooks.Persist(j.persisted()); err != nil {
					// The grant must not be visible without a durable token:
					// revert the lease (the bumped in-memory token was never
					// observed, so monotonicity is intact) and refuse.
					sh.state = shardPending
					sh.holder = ""
					return nil, fmt.Errorf("pool: persisting grant of %s/%s: %w", id, sh.spec.ID, err)
				}
			}
			c.grants++
			c.cfg.Logf("pool: granted job %s shard %s to %s token %d", id, sh.spec.ID, worker, sh.token)
			c.recordLocked(EventGrant, id, sh.spec.ID, worker, sh.token)
			if j.hooks.OnEvent != nil {
				j.hooks.OnEvent("grant", sh.spec.ID)
			}
			return &ClaimResponse{
				JobID: id, Shard: sh.spec, Token: sh.token,
				LeaseMS:    c.cfg.LeaseTTL.Milliseconds(),
				Checkpoint: sh.checkpoint,
			}, nil
		}
	}
	return nil, nil
}

// lookupLocked resolves a write's shard and applies the fencing rules shared
// by heartbeat, checkpoint upload, and completion.
func (c *Coordinator) lookupLocked(kind, workerName, jobID, shardID string, token uint64) (*poolJob, *shard, error) {
	j, ok := c.jobs[jobID]
	if !ok {
		return nil, nil, fmt.Errorf("%w: job %s", ErrShardGone, jobID)
	}
	for _, sh := range j.shards {
		if sh.spec.ID != shardID {
			continue
		}
		if token != sh.token {
			c.fenced++
			c.cfg.Logf("pool: fenced %s from %s: job %s shard %s token %d (current %d)",
				kind, workerName, jobID, shardID, token, sh.token)
			return nil, nil, fmt.Errorf("%w: %s token %d superseded by %d", ErrFenced, shardID, token, sh.token)
		}
		return j, sh, nil
	}
	return nil, nil, fmt.Errorf("%w: job %s shard %s", ErrShardGone, jobID, shardID)
}

// Heartbeat renews a lease. Three non-error outcomes share a current token:
// a live lease renews; a pending shard with no holder — the signature of a
// coordinator restart with the worker still running — is re-adopted by its
// holder; a done shard answers OK (the completing worker's trailing beat).
// An expired lease is fenced on the spot, even before reassignment: the
// holder must learn it lost the lease at the earliest opportunity.
func (c *Coordinator) Heartbeat(hb *HeartbeatRequest) (*HeartbeatResponse, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.cfg.Clock.Mono()
	c.lastSeen[hb.Worker] = now
	j, sh, err := c.lookupLocked("heartbeat", hb.Worker, hb.JobID, hb.ShardID, hb.Token)
	if err != nil {
		return nil, err
	}
	resp := &HeartbeatResponse{LeaseMS: c.cfg.LeaseTTL.Milliseconds()}
	switch sh.state {
	case shardDone:
		return resp, nil
	case shardLeased:
		if sh.holder != hb.Worker {
			// Unreachable while tokens are unique per grant, but fail safe.
			c.fenced++
			return nil, fmt.Errorf("%w: %s held by %s", ErrFenced, hb.ShardID, sh.holder)
		}
		if now.After(sh.expiry) {
			c.expireShardLocked(hb.JobID, sh)
			c.fenced++
			return nil, fmt.Errorf("%w: %s lease expired", ErrFenced, hb.ShardID)
		}
		sh.expiry = now.Add(c.cfg.LeaseTTL)
		return resp, nil
	default: // pending + current token: re-adoption after coordinator restart
		sh.state = shardLeased
		sh.holder = hb.Worker
		sh.expiry = now.Add(c.cfg.LeaseTTL)
		c.cfg.Logf("pool: re-adopted job %s shard %s holder %s token %d",
			hb.JobID, sh.spec.ID, hb.Worker, sh.token)
		c.recordLocked(EventReAdopt, hb.JobID, sh.spec.ID, hb.Worker, sh.token)
		if j.hooks.OnEvent != nil {
			j.hooks.OnEvent("re-adopt", sh.spec.ID)
		}
		return resp, nil
	}
}

// UploadCheckpoint stores a shard's progress snapshot and renews the lease.
// The snapshot is persisted so it survives coordinator restart — that is the
// whole point of uploading it — but a persist failure only logs: the
// in-memory copy still serves reassignment, and the next upload retries.
func (c *Coordinator) UploadCheckpoint(up *CheckpointUpload) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.cfg.Clock.Mono()
	c.lastSeen[up.Worker] = now
	j, sh, err := c.lookupLocked("checkpoint upload", up.Worker, up.JobID, up.ShardID, up.Token)
	if err != nil {
		return err
	}
	if sh.state != shardLeased || sh.holder != up.Worker {
		c.fenced++
		c.cfg.Logf("pool: fenced checkpoint upload from %s: job %s shard %s not leased to it",
			up.Worker, up.JobID, up.ShardID)
		return fmt.Errorf("%w: %s not leased to %s", ErrFenced, up.ShardID, up.Worker)
	}
	if now.After(sh.expiry) {
		c.expireShardLocked(up.JobID, sh)
		c.fenced++
		c.cfg.Logf("pool: fenced checkpoint upload from %s: job %s shard %s lease expired",
			up.Worker, up.JobID, up.ShardID)
		return fmt.Errorf("%w: %s lease expired", ErrFenced, up.ShardID)
	}
	sh.checkpoint = up.Data
	sh.expiry = now.Add(c.cfg.LeaseTTL)
	if j.hooks.Persist != nil {
		if err := j.hooks.Persist(j.persisted()); err != nil {
			c.cfg.Logf("pool: persisting checkpoint of %s/%s: %v", up.JobID, up.ShardID, err)
		}
	}
	if j.hooks.OnEvent != nil {
		j.hooks.OnEvent("checkpoint", sh.spec.ID)
	}
	return nil
}

// Complete records a shard's result. The done state and payload are
// persisted BEFORE the ack, so a completion the coordinator acknowledged can
// never un-happen; a retry of an already-done shard under the same token is
// answered OK without re-recording — together, exactly-once.
func (c *Coordinator) Complete(cr *CompleteRequest) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.cfg.Clock.Mono()
	c.lastSeen[cr.Worker] = now
	j, sh, err := c.lookupLocked("complete", cr.Worker, cr.JobID, cr.ShardID, cr.Token)
	if err != nil {
		return err
	}
	if sh.state == shardDone {
		return nil // idempotent retry of a lost ack
	}
	if sh.state != shardLeased || sh.holder != cr.Worker {
		c.fenced++
		return fmt.Errorf("%w: %s not leased to %s", ErrFenced, cr.ShardID, cr.Worker)
	}
	if now.After(sh.expiry) {
		c.expireShardLocked(cr.JobID, sh)
		c.fenced++
		c.cfg.Logf("pool: fenced complete from %s: job %s shard %s lease expired",
			cr.Worker, cr.JobID, cr.ShardID)
		return fmt.Errorf("%w: %s lease expired", ErrFenced, cr.ShardID)
	}
	sh.state = shardDone
	sh.holder = ""
	sh.result = cr.Result
	if j.hooks.Persist != nil {
		if err := j.hooks.Persist(j.persisted()); err != nil {
			// Not durable means not done: revert so the worker's retry (or a
			// reassignment) completes it again.
			sh.state = shardLeased
			sh.holder = cr.Worker
			sh.result = nil
			return fmt.Errorf("pool: persisting completion of %s/%s: %w", cr.JobID, cr.ShardID, err)
		}
	}
	c.completes++
	c.cfg.Logf("pool: completed job %s shard %s by %s token %d", cr.JobID, sh.spec.ID, cr.Worker, sh.token)
	c.recordLocked(EventComplete, cr.JobID, sh.spec.ID, cr.Worker, sh.token)
	if j.hooks.OnEvent != nil {
		j.hooks.OnEvent("complete", sh.spec.ID)
	}
	if j.allDone() {
		close(j.done)
	}
	return nil
}

// LiveWorkers counts workers seen within two lease TTLs.
func (c *Coordinator) LiveWorkers() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.liveWorkersLocked(c.cfg.Clock.Mono())
}

func (c *Coordinator) liveWorkersLocked(now clockfault.Mono) int {
	n := 0
	for _, seen := range c.lastSeen {
		if now.Sub(seen) <= 2*c.cfg.LeaseTTL {
			n++
		}
	}
	return n
}

// Stats snapshots the coordinator's counters.
func (c *Coordinator) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := Stats{
		WorkersLive:   c.liveWorkersLocked(c.cfg.Clock.Mono()),
		Jobs:          len(c.jobs),
		Grants:        c.grants,
		Completes:     c.completes,
		FencedRejects: c.fenced,
		ExpiredLeases: c.expired,
	}
	for _, j := range c.jobs {
		st.ShardsTotal += len(j.shards)
		for _, sh := range j.shards {
			if sh.state == shardDone {
				st.ShardsDone++
			}
		}
	}
	return st
}
