package pool

// Lease lifecycle event names, as recorded in the ledger and asserted by the
// crucible's lease-safety oracle.
const (
	// EventGrant is a fresh lease grant under a newly bumped token.
	EventGrant = "grant"
	// EventExpire is a lease fenced for missing its renewal deadline.
	EventExpire = "expire"
	// EventReAdopt is a live holder re-establishing its lease after a
	// coordinator restart (pending shard + current token).
	EventReAdopt = "re-adopt"
	// EventComplete is a shard's single effective completion.
	EventComplete = "complete"
)

// LeaseEvent is one entry in the coordinator's lease ledger: an append-only
// record of every grant, expiry, re-adoption, and completion, in the total
// order the coordinator decided them (Seq). The crucible's lease-safety
// oracle replays this ledger to prove fencing-token monotonicity and
// exactly-once completion under clock chaos; /pool/leases serves it.
type LeaseEvent struct {
	Seq     int64  `json:"seq"`
	Event   string `json:"event"`
	JobID   string `json:"job_id"`
	ShardID string `json:"shard_id"`
	Worker  string `json:"worker,omitempty"`
	Token   uint64 `json:"token"`
}

// recordLocked appends one ledger entry. Called with c.mu held, so Seq is a
// true total order over lease decisions.
func (c *Coordinator) recordLocked(event, jobID, shardID, worker string, token uint64) {
	c.ledger = append(c.ledger, LeaseEvent{
		Seq: int64(len(c.ledger)), Event: event,
		JobID: jobID, ShardID: shardID, Worker: worker, Token: token,
	})
}

// Leases snapshots the lease ledger.
func (c *Coordinator) Leases() []LeaseEvent {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]LeaseEvent, len(c.ledger))
	copy(out, c.ledger)
	return out
}
