package pool

import (
	"bytes"
	"encoding/json"
	"errors"
	"strings"
	"testing"
)

func TestDecodeHeartbeatValid(t *testing.T) {
	hb, err := DecodeHeartbeat([]byte(`{"worker":"w1","job_id":"j","shard_id":"s0","token":18446744073709551615}`))
	if err != nil {
		t.Fatal(err)
	}
	if hb.Token != ^uint64(0) {
		t.Fatalf("token = %d", hb.Token)
	}
}

func TestDecodeHeartbeatRejects(t *testing.T) {
	cases := []struct {
		name string
		in   string
		want error
	}{
		{"empty", ``, ErrWireSyntax},
		{"truncated", `{"worker":"w1","job_id":"j"`, ErrWireSyntax},
		{"trailing", `{"worker":"w","job_id":"j","shard_id":"s","token":1}{}`, ErrWireSyntax},
		{"unknown field", `{"worker":"w","job_id":"j","shard_id":"s","token":1,"x":1}`, ErrWireSyntax},
		{"negative token", `{"worker":"w","job_id":"j","shard_id":"s","token":-1}`, ErrWireSyntax},
		{"fractional token", `{"worker":"w","job_id":"j","shard_id":"s","token":1.5}`, ErrWireSyntax},
		{"overflow token", `{"worker":"w","job_id":"j","shard_id":"s","token":18446744073709551616}`, ErrWireSyntax},
		{"missing worker", `{"job_id":"j","shard_id":"s","token":1}`, ErrWireField},
		{"long id", `{"worker":"` + strings.Repeat("a", 200) + `","job_id":"j","shard_id":"s","token":1}`, ErrWireField},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := DecodeHeartbeat([]byte(tc.in)); !errors.Is(err, tc.want) {
				t.Fatalf("got %v, want %v", err, tc.want)
			}
		})
	}
	big := append([]byte(`{"worker":"`), bytes.Repeat([]byte("a"), MaxControlBytes)...)
	if _, err := DecodeHeartbeat(big); !errors.Is(err, ErrWireTooLarge) {
		t.Fatalf("oversized: %v", err)
	}
}

func TestDecodeClaimResponseRoundTrip(t *testing.T) {
	in := &ClaimResponse{
		JobID: "j", Token: 7, LeaseMS: 2000, Checkpoint: []byte("ck"),
		Shard: ShardSpec{ID: "chaos/TECfan/0", Kind: KindChaos, Bench: "fft", Threads: 4,
			Policy: "TECfan", Scenarios: []string{"a", "b"}},
	}
	data, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	out, err := DecodeClaimResponse(data)
	if err != nil {
		t.Fatal(err)
	}
	if out.Shard.ID != in.Shard.ID || out.Token != 7 || string(out.Checkpoint) != "ck" {
		t.Fatalf("round trip: %+v", out)
	}
	if _, err := DecodeClaimResponse([]byte(`{"job_id":"j","shard":{"id":"s"},"token":1,"lease_ms":0}`)); !errors.Is(err, ErrWireField) {
		t.Fatalf("zero lease: %v", err)
	}
}

func TestDecodeCompleteRejectsEmptyResult(t *testing.T) {
	if _, err := DecodeComplete([]byte(`{"worker":"w","job_id":"j","shard_id":"s","token":1,"result":""}`)); !errors.Is(err, ErrWireField) {
		t.Fatalf("empty result: %v", err)
	}
}

// FuzzDecodeHeartbeat hammers the control-message decoder: whatever the
// bytes, it must return cleanly — no panic — and any accepted message must
// satisfy the field invariants the coordinator relies on.
func FuzzDecodeHeartbeat(f *testing.F) {
	f.Add([]byte(`{"worker":"w1","job_id":"j","shard_id":"s0","token":1}`))
	f.Add([]byte(`{"worker":"w1","job_id":"j","shard_id":"s0","token":18446744073709551616}`))
	f.Add([]byte(`{"worker":"w1","job_id":"j","shard_id":"s0","token":-3}`))
	f.Add([]byte(`{"worker":"","job_id":"","shard_id":"","token":0}`))
	f.Add([]byte(`{"worker":"w1"`))
	f.Add([]byte(`null`))
	f.Add([]byte(`[]`))
	f.Fuzz(func(t *testing.T, data []byte) {
		hb, err := DecodeHeartbeat(data)
		if err != nil {
			return
		}
		if hb.Worker == "" || hb.JobID == "" || hb.ShardID == "" {
			t.Fatalf("accepted heartbeat with empty id: %+v", hb)
		}
		if len(hb.Worker) > 128 || len(hb.JobID) > 128 || len(hb.ShardID) > 128 {
			t.Fatalf("accepted oversized id: %+v", hb)
		}
	})
}

// FuzzDecodeClaimResponse does the same for the worker-side lease decoder —
// the message a hostile or corrupted coordinator could use to wedge a worker.
func FuzzDecodeClaimResponse(f *testing.F) {
	good, _ := json.Marshal(&ClaimResponse{
		JobID: "j", Token: 1, LeaseMS: 1000,
		Shard: ShardSpec{ID: "s", Kind: KindChaos, Scenarios: []string{"a"}},
	})
	f.Add(good)
	f.Add([]byte(`{"job_id":"j","shard":{"id":"s"},"token":18446744073709551616,"lease_ms":1}`))
	f.Add([]byte(`{"job_id":"j","shard":{},"token":1,"lease_ms":1}`))
	f.Add([]byte(`{"job_id":"j","shard":{"id":"s"},"token":1,"lease_ms":-5}`))
	f.Add([]byte(`{}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		cr, err := DecodeClaimResponse(data)
		if err != nil {
			return
		}
		if cr.JobID == "" || cr.Shard.ID == "" {
			t.Fatalf("accepted claim with empty id: %+v", cr)
		}
		if cr.LeaseMS <= 0 {
			t.Fatalf("accepted non-positive lease: %+v", cr)
		}
	})
}
