package linalg

import (
	"runtime"
	"sort"
	"sync"
)

// Coord is one (row, col, value) triplet used while assembling a sparse
// matrix.
type Coord struct {
	Row, Col int
	Val      float64
}

// CSR is a compressed-sparse-row matrix. The thermal network assembles its
// conductance matrix in triplet form and converts once; mat-vec against CSR is
// the inner loop of the transient integrator.
type CSR struct {
	N       int // square dimension
	RowPtr  []int
	ColIdx  []int
	Vals    []float64
	diagIdx []int // index into Vals of each diagonal entry, -1 if absent
}

// NewCSR builds an n×n CSR matrix from triplets. Duplicate (row, col) entries
// are summed, matching finite-difference assembly semantics.
func NewCSR(n int, items []Coord) *CSR {
	sorted := make([]Coord, len(items))
	copy(sorted, items)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].Row != sorted[j].Row {
			return sorted[i].Row < sorted[j].Row
		}
		return sorted[i].Col < sorted[j].Col
	})
	m := &CSR{N: n, RowPtr: make([]int, n+1)}
	for i := 0; i < len(sorted); {
		j := i + 1
		v := sorted[i].Val
		for j < len(sorted) && sorted[j].Row == sorted[i].Row && sorted[j].Col == sorted[i].Col {
			v += sorted[j].Val
			j = j + 1
		}
		m.ColIdx = append(m.ColIdx, sorted[i].Col)
		m.Vals = append(m.Vals, v)
		m.RowPtr[sorted[i].Row+1]++
		i = j
	}
	for r := 0; r < n; r++ {
		m.RowPtr[r+1] += m.RowPtr[r]
	}
	m.diagIdx = make([]int, n)
	for r := 0; r < n; r++ {
		m.diagIdx[r] = -1
		for k := m.RowPtr[r]; k < m.RowPtr[r+1]; k++ {
			if m.ColIdx[k] == r {
				m.diagIdx[r] = k
				break
			}
		}
	}
	return m
}

// NNZ returns the number of stored entries.
func (m *CSR) NNZ() int { return len(m.Vals) }

// At returns element (i, j); zero if not stored. O(row nnz).
func (m *CSR) At(i, j int) float64 {
	for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
		if m.ColIdx[k] == j {
			return m.Vals[k]
		}
	}
	return 0
}

// Diag returns the stored diagonal entry of row i (0 if absent).
func (m *CSR) Diag(i int) float64 {
	if k := m.diagIdx[i]; k >= 0 {
		return m.Vals[k]
	}
	return 0
}

// MulVec computes y = M·x serially. y must not alias x.
func (m *CSR) MulVec(x, y []float64) {
	if len(x) != m.N || len(y) != m.N {
		panic(ErrShape)
	}
	for r := 0; r < m.N; r++ {
		var s float64
		for k := m.RowPtr[r]; k < m.RowPtr[r+1]; k++ {
			s += m.Vals[k] * x[m.ColIdx[k]]
		}
		y[r] = s
	}
}

// Dense expands the matrix to dense form (for factorization or debugging).
func (m *CSR) Dense() *Dense {
	d := NewDense(m.N, m.N)
	for r := 0; r < m.N; r++ {
		for k := m.RowPtr[r]; k < m.RowPtr[r+1]; k++ {
			d.Add(r, m.ColIdx[k], m.Vals[k])
		}
	}
	return d
}

// parCutoff is the matrix size below which ParMulVec falls back to the serial
// kernel; goroutine fan-out costs more than it saves on tiny systems.
const parCutoff = 512

// ParMulVec computes y = M·x, splitting rows across GOMAXPROCS workers. The
// transient thermal integrator calls this thousands of times per simulated
// second.
func (m *CSR) ParMulVec(x, y []float64) {
	if m.N < parCutoff {
		m.MulVec(x, y)
		return
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > m.N {
		workers = m.N
	}
	chunk := (m.N + workers - 1) / workers
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > m.N {
			hi = m.N
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for r := lo; r < hi; r++ {
				var s float64
				for k := m.RowPtr[r]; k < m.RowPtr[r+1]; k++ {
					s += m.Vals[k] * x[m.ColIdx[k]]
				}
				y[r] = s
			}
		}(lo, hi)
	}
	wg.Wait()
}

// CGOptions configure the conjugate-gradient solver.
type CGOptions struct {
	MaxIter int     // 0 means 4·n
	Tol     float64 // relative residual target; 0 means 1e-10
}

// CGResult reports solver convergence.
type CGResult struct {
	Iterations int
	Residual   float64 // final relative residual ‖b−Ax‖/‖b‖
	Converged  bool
}

// SolveCG solves A·x = b for SPD A with Jacobi-preconditioned conjugate
// gradients. x is both the initial guess and the result.
func (m *CSR) SolveCG(b, x []float64, opt CGOptions) CGResult {
	if len(b) != m.N || len(x) != m.N {
		panic(ErrShape)
	}
	maxIter := opt.MaxIter
	if maxIter <= 0 {
		maxIter = 4 * m.N
	}
	tol := opt.Tol
	if tol <= 0 {
		tol = 1e-10
	}
	nb := Norm2(b)
	if nb == 0 {
		Fill(x, 0)
		return CGResult{Converged: true}
	}
	inv := make([]float64, m.N) // Jacobi preconditioner
	for i := range inv {
		d := m.Diag(i)
		if d == 0 {
			d = 1
		}
		inv[i] = 1 / d
	}
	r := make([]float64, m.N)
	z := make([]float64, m.N)
	p := make([]float64, m.N)
	ap := make([]float64, m.N)
	m.ParMulVec(x, r)
	for i := range r {
		r[i] = b[i] - r[i]
		z[i] = inv[i] * r[i]
	}
	copy(p, z)
	rz := Dot(r, z)
	res := CGResult{}
	for it := 0; it < maxIter; it++ {
		res.Iterations = it + 1
		m.ParMulVec(p, ap)
		den := Dot(p, ap)
		if den == 0 {
			break
		}
		alpha := rz / den
		Axpy(alpha, p, x)
		Axpy(-alpha, ap, r)
		rn := Norm2(r)
		res.Residual = rn / nb
		if res.Residual < tol {
			res.Converged = true
			return res
		}
		for i := range z {
			z[i] = inv[i] * r[i]
		}
		rzNew := Dot(r, z)
		beta := rzNew / rz
		rz = rzNew
		for i := range p {
			p[i] = z[i] + beta*p[i]
		}
	}
	return res
}
