package linalg

import (
	"errors"
	"fmt"
	"math"

	"tecfan/internal/floats"
)

// Verified solves: the numerical self-defense layer under the thermal
// integrator (DESIGN.md §15). A factorization without pivoting (band LU) or
// with a marginal pivot (Cholesky on a nearly indefinite matrix) can return
// a solution that is quietly wrong long before it returns an error. The
// Verified* wrappers keep the original matrix, check the relative residual
// ‖Ax−b‖∞/‖b‖∞ after every solve, run one step of iterative refinement when
// it exceeds the tolerance, and hand back a typed NumError — with a
// condition estimate from the pivot data the factorization already has —
// instead of propagating garbage into temperatures and metrics.

// DefaultResidualTol is the relative-residual acceptance threshold. Healthy
// conductance systems in this repo solve to ~1e-14; the gap up to 1e-8 is
// the refinement's working room, so a fault-free run never refines and the
// guarded path stays byte-identical to the unguarded one.
const DefaultResidualTol = 1e-8

// ErrDiverged marks a solve whose residual stayed above tolerance after
// refinement, or produced non-finite entries. It is the terminal error of
// the recovery ladder; NumError wraps it.
var ErrDiverged = errors.New("linalg: solve diverged (residual above tolerance after refinement)")

// NumError is the structured diagnosis of a rejected solve.
type NumError struct {
	Op          string  // "cholesky" or "bandlu"
	Residual    float64 // relative residual after the last attempt
	Tol         float64 // acceptance threshold it failed
	Cond        float64 // condition estimate from the pivots
	Refinements int     // refinement steps attempted
	Err         error   // underlying sentinel (ErrDiverged, ErrSingular, ...)
}

func (e *NumError) Error() string {
	return fmt.Sprintf("linalg: %s solve rejected: residual %s exceeds tol %s (cond est %s, %d refinement(s)): %v",
		e.Op, SafeFloat(e.Residual), SafeFloat(e.Tol), SafeFloat(e.Cond), e.Refinements, e.Err)
}

func (e *NumError) Unwrap() error { return e.Err }

// SafeFloat formats v for diagnostics without ever emitting the literal
// tokens "NaN" or "Inf": diagnosis strings travel into results, checkpoints
// and reports, and the numfault drill greps those for leaked non-finite
// values. A diagnosis that *describes* a NaN must not trip that tripwire.
func SafeFloat(v float64) string {
	switch {
	case math.IsNaN(v):
		return "not-a-number"
	case math.IsInf(v, 1):
		return "overflow(+)"
	case math.IsInf(v, -1):
		return "overflow(-)"
	default:
		return fmt.Sprintf("%g", v)
	}
}

// finiteNonzero is the single pivot acceptability check. The historical
// `piv == 0 || math.IsNaN(piv)` spelling let ±Inf pivots through: Inf/Inf
// in the elimination then mints NaNs two columns later, past the check.
//
//tecfan:hotpath
func finiteNonzero(v float64) bool {
	return v != 0 && floats.Finite(v)
}

// finitePositive is the SPD-pivot variant: Cholesky needs d > 0 and finite
// (a +Inf diagonal passes `d <= 0 || IsNaN(d)` but sqrt(+Inf) poisons the
// factor).
//
//tecfan:hotpath
func finitePositive(v float64) bool {
	return v > 0 && floats.Finite(v)
}

// relResidual returns ‖r‖∞/‖b‖∞ with r already computed, falling back to
// the absolute norm for b = 0. A NaN anywhere in r makes the result NaN,
// which compares false against any tolerance and so is rejected.
func relResidual(r, b []float64) float64 {
	var rn, bn float64
	for i := range r {
		if a := math.Abs(r[i]); a > rn || math.IsNaN(a) {
			rn = a
		}
		if a := math.Abs(b[i]); a > bn {
			bn = a
		}
	}
	if bn == 0 {
		return rn
	}
	return rn / bn
}

// VerifiedCholesky pairs a Cholesky factor with the matrix it factored so
// every solve can be residual-checked and refined. Construction costs one
// matrix clone; each Solve costs one extra MulVec (O(n²), same order as the
// substitution sweeps it verifies).
type VerifiedCholesky struct {
	chol *Cholesky
	a    *Dense
	tol  float64
	cond float64
	// scratch for residual/refinement, sized n — reused so steady-state
	// fixed-point loops and per-step transient solves stay allocation-free.
	ax, r, d []float64
}

// NewVerifiedCholesky factors a and retains a clone of it for residual
// checks. tol ≤ 0 selects DefaultResidualTol.
func NewVerifiedCholesky(a *Dense, tol float64) (*VerifiedCholesky, error) {
	ch, err := NewCholesky(a)
	if err != nil {
		return nil, err
	}
	if tol <= 0 {
		tol = DefaultResidualTol
	}
	n := ch.N()
	v := &VerifiedCholesky{
		chol: ch,
		a:    a.Clone(),
		tol:  tol,
		ax:   make([]float64, n),
		r:    make([]float64, n),
		d:    make([]float64, n),
	}
	// Condition estimate from the pivots: cond₂(A) ≈ (max lᵢᵢ / min lᵢᵢ)².
	// Crude but free, and exactly the data that degrades as A approaches
	// indefiniteness.
	mn, mx := math.Inf(1), 0.0
	for i := 0; i < n; i++ {
		d := ch.l.At(i, i)
		if d < mn {
			mn = d
		}
		if d > mx {
			mx = d
		}
	}
	if mn > 0 {
		v.cond = (mx / mn) * (mx / mn)
	} else {
		v.cond = math.MaxFloat64
	}
	return v, nil
}

// Cond returns the pivot-based condition estimate.
func (v *VerifiedCholesky) Cond() float64 { return v.cond }

// N returns the system size.
func (v *VerifiedCholesky) N() int { return v.chol.N() }

// Solve computes x with A·x = b, verifies the residual, and refines once if
// needed. refined reports whether a refinement step changed x (a fault-free
// system never refines, keeping guarded runs byte-identical). On failure x
// is left as the best attempt but err is a *NumError and callers must not
// use x.
func (v *VerifiedCholesky) Solve(b, x []float64) (refined bool, err error) {
	v.chol.Solve(b, x)
	res := v.residual(b, x)
	if res <= v.tol && floats.AllFinite(x) {
		return false, nil
	}
	// One step of iterative refinement: solve A·d = r, x += d. With a
	// residual computed in working precision this recovers solves degraded
	// by mild ill-conditioning; anything it cannot fix is genuinely
	// divergent and must be refused, not retried forever.
	v.chol.Solve(v.r, v.d)
	for i := range x {
		x[i] += v.d[i]
	}
	res = v.residual(b, x)
	if res <= v.tol && floats.AllFinite(x) {
		return true, nil
	}
	//lint:tecfan-ignore allocfree -- divergence refusal path: allocates a diagnosis at most once per rejected solve
	return true, &NumError{Op: "cholesky", Residual: res, Tol: v.tol, Cond: v.cond, Refinements: 1, Err: ErrDiverged}
}

// residual fills v.r = b − A·x and returns the relative residual.
func (v *VerifiedCholesky) residual(b, x []float64) float64 {
	v.a.MulVec(x, v.ax)
	for i := range v.r {
		v.r[i] = b[i] - v.ax[i]
	}
	return relResidual(v.r, b)
}

// VerifiedBandLU is the band-matrix counterpart of VerifiedCholesky. The
// band factorization does not pivot, so it is the solver most in need of a
// residual check: diagonal dominance is assumed, never enforced.
type VerifiedBandLU struct {
	lu       *BandLU
	band     *Banded
	tol      float64
	cond     float64
	ax, r, d []float64
}

// NewVerifiedBandLU factors b and retains a copy of the band for residual
// checks. tol ≤ 0 selects DefaultResidualTol.
func NewVerifiedBandLU(b *Banded, tol float64) (*VerifiedBandLU, error) {
	f, err := NewBandLU(b)
	if err != nil {
		return nil, err
	}
	if tol <= 0 {
		tol = DefaultResidualTol
	}
	keep := &Banded{N: b.N, KL: b.KL, KU: b.KU, Data: append([]float64(nil), b.Data...)}
	v := &VerifiedBandLU{
		lu:   f,
		band: keep,
		tol:  tol,
		ax:   make([]float64, b.N),
		r:    make([]float64, b.N),
		d:    make([]float64, b.N),
	}
	// Condition estimate from the U diagonal: max|uᵢᵢ|/min|uᵢᵢ|. Without
	// pivoting the uᵢᵢ are the actual elimination pivots, so their spread
	// is the direct record of how close the factorization came to dividing
	// by zero.
	w := f.kl + f.ku + 1
	mn, mx := math.Inf(1), 0.0
	for i := 0; i < f.n; i++ {
		d := math.Abs(f.lu[i*w+f.kl])
		if d < mn {
			mn = d
		}
		if d > mx {
			mx = d
		}
	}
	if mn > 0 {
		v.cond = mx / mn
	} else {
		v.cond = math.MaxFloat64
	}
	return v, nil
}

// Cond returns the pivot-based condition estimate.
func (v *VerifiedBandLU) Cond() float64 { return v.cond }

// N returns the system size.
func (v *VerifiedBandLU) N() int { return v.lu.N() }

// Solve computes x with A·x = rhs, verifies the residual, and refines once
// if needed; see VerifiedCholesky.Solve for the contract.
func (v *VerifiedBandLU) Solve(rhs, x []float64) (refined bool, err error) {
	if err := v.lu.Solve(rhs, x); err != nil {
		//lint:tecfan-ignore allocfree -- singular-pivot refusal path: allocates a diagnosis at most once per rejected solve
		return false, &NumError{Op: "bandlu", Residual: math.Inf(1), Tol: v.tol, Cond: v.cond, Err: err}
	}
	res := v.residual(rhs, x)
	if res <= v.tol && floats.AllFinite(x) {
		return false, nil
	}
	if err := v.lu.Solve(v.r, v.d); err != nil {
		//lint:tecfan-ignore allocfree -- refinement-failure refusal path: allocates a diagnosis at most once per rejected solve
		return false, &NumError{Op: "bandlu", Residual: res, Tol: v.tol, Cond: v.cond, Err: err}
	}
	for i := range x {
		x[i] += v.d[i]
	}
	res = v.residual(rhs, x)
	if res <= v.tol && floats.AllFinite(x) {
		return true, nil
	}
	//lint:tecfan-ignore allocfree -- divergence refusal path: allocates a diagnosis at most once per rejected solve
	return true, &NumError{Op: "bandlu", Residual: res, Tol: v.tol, Cond: v.cond, Refinements: 1, Err: ErrDiverged}
}

func (v *VerifiedBandLU) residual(b, x []float64) float64 {
	v.band.MulVec(x, v.ax)
	for i := range v.r {
		v.r[i] = b[i] - v.ax[i]
	}
	return relResidual(v.r, b)
}
