package linalg

import "testing"

// Dynamic proof of the hot-path allocation discipline (DESIGN.md §18) for
// the verified solver the transient integrator runs every 20 µs step: a
// clean (non-refining) Solve must not touch the heap.
func TestVerifiedCholeskySolveZeroAllocs(t *testing.T) {
	v, err := NewVerifiedCholesky(spd3(), 0)
	if err != nil {
		t.Fatal(err)
	}
	b := []float64{1, 2, 3}
	x := make([]float64, 3)
	if _, err := v.Solve(b, x); err != nil {
		t.Fatal(err)
	}
	var solveErr error
	allocs := testing.AllocsPerRun(100, func() {
		if _, err := v.Solve(b, x); err != nil {
			solveErr = err
		}
	})
	if solveErr != nil {
		t.Fatal(solveErr)
	}
	if allocs != 0 {
		t.Fatalf("VerifiedCholesky.Solve allocates %.1f per clean solve", allocs)
	}
}
