package linalg

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func randomBanded(rng *rand.Rand, n, kl, ku int) *Banded {
	b := NewBanded(n, kl, ku)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if b.InBand(i, j) {
				b.Set(i, j, rng.NormFloat64())
			}
		}
	}
	return b
}

func TestBandedAtSet(t *testing.T) {
	b := NewBanded(5, 1, 1)
	b.Set(2, 3, 7)
	if got := b.At(2, 3); got != 7 {
		t.Fatalf("At(2,3) = %v", got)
	}
	if got := b.At(0, 4); got != 0 {
		t.Fatalf("out-of-band At = %v, want 0", got)
	}
}

func TestBandedSetOutOfBandPanics(t *testing.T) {
	b := NewBanded(5, 1, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic setting out-of-band element")
		}
	}()
	b.Set(0, 3, 1)
}

func TestBandedInvalidShapePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on kl >= n")
		}
	}()
	NewBanded(3, 3, 0)
}

// Property: banded mat-vec equals dense mat-vec of the expansion.
func TestBandedMulVecMatchesDense(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(20)
		kl := rng.Intn(n)
		ku := rng.Intn(n)
		b := randomBanded(rng, n, kl, ku)
		d := b.Dense()
		x := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		y1 := make([]float64, n)
		y2 := make([]float64, n)
		b.MulVec(x, y1)
		d.MulVec(x, y2)
		for i := range y1 {
			if !almostEqual(y1[i], y2[i], 1e-9) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestBandedFromDenseRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	b := randomBanded(rng, 10, 2, 1)
	d := b.Dense()
	b2, err := BandedFromDense(d, 2, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		for j := 0; j < 10; j++ {
			if b.At(i, j) != b2.At(i, j) {
				t.Fatalf("round trip mismatch at (%d,%d)", i, j)
			}
		}
	}
}

func TestBandedFromDenseRejectsOutOfBand(t *testing.T) {
	d := NewDense(4, 4)
	d.Set(0, 3, 5) // far off-diagonal
	if _, err := BandedFromDense(d, 1, 1, 1e-12); err == nil {
		t.Fatal("expected error for out-of-band element")
	}
}

func TestBandedFromDenseNonSquare(t *testing.T) {
	if _, err := BandedFromDense(NewDense(2, 3), 1, 1, 0); err != ErrShape {
		t.Fatalf("err = %v, want ErrShape", err)
	}
}

func TestBandwidth(t *testing.T) {
	d := NewDense(5, 5)
	d.Set(0, 0, 1)
	d.Set(3, 1, 1) // kl = 2
	d.Set(1, 2, 1) // ku = 1
	kl, ku := Bandwidth(d, 0)
	if kl != 2 || ku != 1 {
		t.Fatalf("Bandwidth = (%d,%d), want (2,1)", kl, ku)
	}
	// With a large tolerance the matrix looks diagonal.
	kl, ku = Bandwidth(d, 10)
	if kl != 0 || ku != 0 {
		t.Fatalf("Bandwidth with tol = (%d,%d), want (0,0)", kl, ku)
	}
}

func TestMACCount(t *testing.T) {
	// Tridiagonal 18-node chain: interior rows cost 3 MACs, the two edge
	// rows cost 2. This is the paper's M=18, K=3 per-core systolic workload.
	b := NewBanded(18, 1, 1)
	got := b.MACCount()
	want := 16*3 + 2*2
	if got != want {
		t.Fatalf("MACCount = %d, want %d", got, want)
	}
	// Paper prices the array at M×K = 54 multipliers (edge rows padded).
	if got > 18*3 {
		t.Fatalf("MACCount %d exceeds the paper's M*K=54 bound", got)
	}
}

func TestMACCountFullBand(t *testing.T) {
	b := NewBanded(4, 3, 3)
	if got := b.MACCount(); got != 16 {
		t.Fatalf("full-band MACCount = %d, want 16", got)
	}
}
