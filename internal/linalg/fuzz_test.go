package linalg

import (
	"encoding/binary"
	"errors"
	"math"
	"testing"

	"tecfan/internal/floats"
)

// fuzzFloat decodes 8 bytes into a float64, passing NaN/Inf/denormal bit
// patterns straight through — the point is to seed the factorizations with
// exactly the values ad-hoc checks miss.
func fuzzFloat(data []byte, i int) float64 {
	if (i+1)*8 > len(data) {
		return 0
	}
	return math.Float64frombits(binary.LittleEndian.Uint64(data[i*8:]))
}

// checkSolveOutcome enforces the no-silent-bad-solve property shared by
// both fuzzers: a nil error means the solution is finite and its
// independently recomputed residual is under tolerance; a non-nil error
// must be one of the typed sentinels.
func checkSolveOutcome(t *testing.T, err error, a *Dense, b, x []float64) {
	t.Helper()
	if err != nil {
		var ne *NumError
		if !errors.As(err, &ne) && !errors.Is(err, ErrSingular) && !errors.Is(err, ErrNotSPD) && !errors.Is(err, ErrShape) {
			t.Fatalf("untyped solve error: %v", err)
		}
		return
	}
	if !floats.AllFinite(x) {
		t.Fatalf("accepted solve contains non-finite entries: %v", x)
	}
	n := len(x)
	ax := make([]float64, n)
	a.MulVec(x, ax)
	var rn, bn float64
	for i := 0; i < n; i++ {
		if d := math.Abs(b[i] - ax[i]); d > rn {
			rn = d
		}
		if m := math.Abs(b[i]); m > bn {
			bn = m
		}
	}
	rel := rn
	if bn > 0 {
		rel = rn / bn
	}
	if !(rel <= DefaultResidualTol) {
		t.Fatalf("silent bad solve: relative residual %v > %v", rel, DefaultResidualTol)
	}
}

// FuzzCholeskyResidual builds symmetric matrices directly from fuzzed bit
// patterns — near-singular, badly scaled, NaN/Inf-seeded — and asserts the
// verified solve either returns a typed error or a solution whose residual
// is independently under tolerance. Never a silent bad solve.
func FuzzCholeskyResidual(f *testing.F) {
	// Well-conditioned seed.
	seed := make([]byte, 6*8)
	for i, v := range []float64{4, -1, -1, 4, -1, 4} {
		binary.LittleEndian.PutUint64(seed[i*8:], math.Float64bits(v))
	}
	f.Add(seed, 1.0)
	// NaN-seeded.
	bad := append([]byte(nil), seed...)
	binary.LittleEndian.PutUint64(bad[3*8:], math.Float64bits(math.NaN()))
	f.Add(bad, 1.0)
	// Badly scaled.
	f.Add(seed, 1e150)
	f.Add(seed, 1e-150)

	f.Fuzz(func(t *testing.T, data []byte, scale float64) {
		n := 2 + len(data)%3 // 2..4
		a := NewDense(n, n)
		k := 0
		for i := 0; i < n; i++ {
			for j := i; j < n; j++ {
				v := fuzzFloat(data, k) * scale
				k++
				a.Set(i, j, v)
				a.Set(j, i, v)
			}
		}
		v, err := NewVerifiedCholesky(a, 0)
		if err != nil {
			if !errors.Is(err, ErrNotSPD) && !errors.Is(err, ErrShape) {
				t.Fatalf("untyped factor error: %v", err)
			}
			return
		}
		b := make([]float64, n)
		for i := range b {
			b[i] = float64(i + 1)
		}
		x := make([]float64, n)
		_, serr := v.Solve(b, x)
		checkSolveOutcome(t, serr, a, b, x)
	})
}

// FuzzBandLUResidual is the band-matrix counterpart: tridiagonal systems
// from fuzzed bit patterns through the no-pivoting band LU, which is the
// solver most exposed to growth — so the residual gate carries the proof.
func FuzzBandLUResidual(f *testing.F) {
	seed := make([]byte, 9*8)
	for i, v := range []float64{5, -1, 0, -1, 5, -1, 0, -1, 5} {
		binary.LittleEndian.PutUint64(seed[i*8:], math.Float64bits(v))
	}
	f.Add(seed)
	tiny := append([]byte(nil), seed...)
	binary.LittleEndian.PutUint64(tiny[0:], math.Float64bits(1e-20))
	f.Add(tiny)
	inf := append([]byte(nil), seed...)
	binary.LittleEndian.PutUint64(inf[4*8:], math.Float64bits(math.Inf(1)))
	f.Add(inf)

	f.Fuzz(func(t *testing.T, data []byte) {
		n := 2 + len(data)%4 // 2..5
		bm := NewBanded(n, 1, 1)
		k := 0
		for i := 0; i < n; i++ {
			lo, hi := i-1, i+1
			if lo < 0 {
				lo = 0
			}
			if hi >= n {
				hi = n - 1
			}
			for j := lo; j <= hi; j++ {
				bm.Set(i, j, fuzzFloat(data, k))
				k++
			}
		}
		v, err := NewVerifiedBandLU(bm, 0)
		if err != nil {
			if !errors.Is(err, ErrSingular) && !errors.Is(err, ErrShape) {
				t.Fatalf("untyped factor error: %v", err)
			}
			return
		}
		rhs := make([]float64, n)
		for i := range rhs {
			rhs[i] = float64(i + 1)
		}
		x := make([]float64, n)
		_, serr := v.Solve(rhs, x)
		checkSolveOutcome(t, serr, bm.Dense(), rhs, x)
	})
}
