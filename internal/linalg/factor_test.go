package linalg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// randomSPD builds a random SPD matrix A = BᵀB + n·I.
func randomSPD(rng *rand.Rand, n int) *Dense {
	b := NewDense(n, n)
	for i := range b.Data {
		b.Data[i] = rng.NormFloat64()
	}
	a := b.Transpose().Mul(b)
	for i := 0; i < n; i++ {
		a.Add(i, i, float64(n))
	}
	return a
}

// randomDiagDominant builds a strictly diagonally dominant (hence nonsingular)
// possibly-asymmetric matrix, like a conductance matrix with Peltier terms.
func randomDiagDominant(rng *rand.Rand, n int) *Dense {
	a := NewDense(n, n)
	for i := 0; i < n; i++ {
		var sum float64
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			v := rng.NormFloat64()
			a.Set(i, j, v)
			sum += math.Abs(v)
		}
		a.Set(i, i, sum+1+rng.Float64())
	}
	return a
}

func residual(a *Dense, x, b []float64) float64 {
	ax := make([]float64, len(b))
	a.MulVec(x, ax)
	var mx float64
	for i := range b {
		if d := math.Abs(ax[i] - b[i]); d > mx {
			mx = d
		}
	}
	return mx
}

func TestCholeskySolveKnown(t *testing.T) {
	// A = [[4,2],[2,3]], b = [10, 9] → x = [1.5, 2].
	a := DenseFromRows([][]float64{{4, 2}, {2, 3}})
	ch, err := NewCholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	x := make([]float64, 2)
	ch.Solve([]float64{10, 9}, x)
	if !almostEqual(x[0], 1.5, 1e-12) || !almostEqual(x[1], 2, 1e-12) {
		t.Fatalf("x = %v, want [1.5 2]", x)
	}
	if ch.N() != 2 {
		t.Fatalf("N() = %d", ch.N())
	}
}

func TestCholeskyRejectsIndefinite(t *testing.T) {
	a := DenseFromRows([][]float64{{1, 2}, {2, 1}}) // eigenvalues 3, -1
	if _, err := NewCholesky(a); err != ErrNotSPD {
		t.Fatalf("err = %v, want ErrNotSPD", err)
	}
}

func TestCholeskyRejectsNonSquare(t *testing.T) {
	if _, err := NewCholesky(NewDense(2, 3)); err != ErrShape {
		t.Fatalf("err = %v, want ErrShape", err)
	}
}

func TestCholeskyFactorProduct(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	a := randomSPD(rng, 6)
	ch, err := NewCholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	llt := ch.l.Mul(ch.l.Transpose())
	for i := 0; i < 6; i++ {
		for j := 0; j < 6; j++ {
			if !almostEqual(llt.At(i, j), a.At(i, j), 1e-8*a.MaxAbs()) {
				t.Fatalf("L·Lᵀ ≠ A at (%d,%d): %v vs %v", i, j, llt.At(i, j), a.At(i, j))
			}
		}
	}
}

// Property: Cholesky solves random SPD systems to tight residual.
func TestCholeskySolveProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(20)
		a := randomSPD(rng, n)
		b := make([]float64, n)
		for i := range b {
			b[i] = rng.NormFloat64() * 10
		}
		ch, err := NewCholesky(a)
		if err != nil {
			return false
		}
		x := make([]float64, n)
		ch.Solve(b, x)
		return residual(a, x, b) < 1e-7*(1+a.MaxAbs())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestCholeskySolveInPlace(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := randomSPD(rng, 5)
	ch, _ := NewCholesky(a)
	b := []float64{1, 2, 3, 4, 5}
	orig := append([]float64(nil), b...)
	ch.Solve(b, b) // aliased
	if residual(a, b, orig) > 1e-8 {
		t.Fatal("in-place solve produced wrong result")
	}
}

func TestLUSolveKnown(t *testing.T) {
	// Requires pivoting: zero on the initial diagonal.
	a := DenseFromRows([][]float64{{0, 1}, {2, 0}})
	lu, err := NewLU(a)
	if err != nil {
		t.Fatal(err)
	}
	x := make([]float64, 2)
	lu.Solve([]float64{3, 4}, x) // x = [2, 3]
	if !almostEqual(x[0], 2, 1e-12) || !almostEqual(x[1], 3, 1e-12) {
		t.Fatalf("x = %v, want [2 3]", x)
	}
	if !almostEqual(lu.Det(), -2, 1e-12) {
		t.Fatalf("det = %v, want -2", lu.Det())
	}
	if lu.N() != 2 {
		t.Fatalf("N() = %d", lu.N())
	}
}

func TestLUSingular(t *testing.T) {
	a := DenseFromRows([][]float64{{1, 2}, {2, 4}})
	if _, err := NewLU(a); err != ErrSingular {
		t.Fatalf("err = %v, want ErrSingular", err)
	}
}

func TestLURejectsNonSquare(t *testing.T) {
	if _, err := NewLU(NewDense(3, 2)); err != ErrShape {
		t.Fatalf("err = %v, want ErrShape", err)
	}
}

// Property: LU solves random diagonally-dominant systems.
func TestLUSolveProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(20)
		a := randomDiagDominant(rng, n)
		b := make([]float64, n)
		for i := range b {
			b[i] = rng.NormFloat64() * 10
		}
		lu, err := NewLU(a)
		if err != nil {
			return false
		}
		x := make([]float64, n)
		lu.Solve(b, x)
		return residual(a, x, b) < 1e-7*(1+a.MaxAbs())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: LU and Cholesky agree on SPD systems.
func TestLUCholeskyAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 10; trial++ {
		n := 3 + rng.Intn(10)
		a := randomSPD(rng, n)
		b := make([]float64, n)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		ch, _ := NewCholesky(a)
		lu, _ := NewLU(a)
		x1 := make([]float64, n)
		x2 := make([]float64, n)
		ch.Solve(b, x1)
		lu.Solve(b, x2)
		for i := 0; i < n; i++ {
			if !almostEqual(x1[i], x2[i], 1e-7*(1+math.Abs(x1[i]))) {
				t.Fatalf("n=%d disagree at %d: chol %v vs lu %v", n, i, x1[i], x2[i])
			}
		}
	}
}

func TestLUDetSign(t *testing.T) {
	a := DenseFromRows([][]float64{{2, 0}, {0, 3}})
	lu, _ := NewLU(a)
	if !almostEqual(lu.Det(), 6, 1e-12) {
		t.Fatalf("det = %v, want 6", lu.Det())
	}
}
