package linalg

import "fmt"

// Band-system solvers. The §III-E hardware discussion notes that when the
// thermal resistance matrix is used directly, the per-core temperature
// update is a band solve rather than a band multiply; these kernels provide
// that path in O(n·w²) instead of dense O(n³).

// SolveTridiag solves a tridiagonal system in place with the Thomas
// algorithm: lower[i]·x[i-1] + diag[i]·x[i] + upper[i]·x[i+1] = rhs[i].
// lower[0] and upper[n-1] are ignored. Inputs are not modified; the result
// is written into x (len n). The algorithm is stable for the diagonally
// dominant systems thermal chains produce; a vanishing pivot returns
// ErrSingular.
func SolveTridiag(lower, diag, upper, rhs, x []float64) error {
	n := len(diag)
	if len(lower) != n || len(upper) != n || len(rhs) != n || len(x) != n {
		return ErrShape
	}
	if n == 0 {
		return nil
	}
	cp := make([]float64, n) // modified upper
	dp := make([]float64, n) // modified rhs
	if !finiteNonzero(diag[0]) {
		return ErrSingular
	}
	cp[0] = upper[0] / diag[0]
	dp[0] = rhs[0] / diag[0]
	for i := 1; i < n; i++ {
		den := diag[i] - lower[i]*cp[i-1]
		if !finiteNonzero(den) {
			return ErrSingular
		}
		cp[i] = upper[i] / den
		dp[i] = (rhs[i] - lower[i]*dp[i-1]) / den
	}
	x[n-1] = dp[n-1]
	for i := n - 2; i >= 0; i-- {
		x[i] = dp[i] - cp[i]*x[i+1]
	}
	return nil
}

// BandLU is an LU factorization of a band matrix without pivoting, valid
// for the diagonally dominant conductance systems this library assembles.
// Factorization costs O(n·kl·ku); each solve costs O(n·(kl+ku)).
type BandLU struct {
	n, kl, ku int
	w         int // band width kl+ku+1, the row stride of lu
	// lu stores the factors in band layout: row i, band column j-i+kl.
	lu []float64
}

// at reads factor element (i, j); (i, j) must be in band.
//
//tecfan:hotpath
func (f *BandLU) at(i, j int) float64 { return f.lu[i*f.w+(j-i+f.kl)] }

// NewBandLU factors the band matrix. It returns ErrSingular on a zero
// pivot; callers with non-dominant systems should use the dense LU (which
// pivots) instead.
func NewBandLU(b *Banded) (*BandLU, error) {
	n, kl, ku := b.N, b.KL, b.KU
	w := kl + ku + 1
	f := &BandLU{n: n, kl: kl, ku: ku, w: w, lu: make([]float64, n*w)}
	copy(f.lu, b.Data)
	at := func(i, j int) float64 { return f.lu[i*w+(j-i+kl)] }
	set := func(i, j int, v float64) { f.lu[i*w+(j-i+kl)] = v }
	for col := 0; col < n; col++ {
		piv := at(col, col)
		if !finiteNonzero(piv) {
			return nil, ErrSingular
		}
		rmax := col + kl
		if rmax >= n {
			rmax = n - 1
		}
		for r := col + 1; r <= rmax; r++ {
			m := at(r, col) / piv
			set(r, col, m)
			if m == 0 {
				continue
			}
			cmax := col + ku
			if cmax >= n {
				cmax = n - 1
			}
			for c := col + 1; c <= cmax; c++ {
				// (r, c) is in band iff c ≤ r+ku; the fill stays inside the
				// band because we do not pivot.
				if c <= r+ku {
					set(r, c, at(r, c)-m*at(col, c))
				}
			}
		}
	}
	return f, nil
}

// Solve computes x with A·x = rhs. x may alias rhs.
func (f *BandLU) Solve(rhs, x []float64) error {
	if len(rhs) != f.n || len(x) != f.n {
		return ErrShape
	}
	if &x[0] != &rhs[0] {
		copy(x, rhs)
	}
	// Forward substitution with unit-diagonal L.
	for i := 0; i < f.n; i++ {
		lo := i - f.kl
		if lo < 0 {
			lo = 0
		}
		s := x[i]
		for j := lo; j < i; j++ {
			s -= f.at(i, j) * x[j]
		}
		x[i] = s
	}
	// Back substitution with U.
	for i := f.n - 1; i >= 0; i-- {
		hi := i + f.ku
		if hi >= f.n {
			hi = f.n - 1
		}
		s := x[i]
		for j := i + 1; j <= hi; j++ {
			s -= f.at(i, j) * x[j]
		}
		d := f.at(i, i)
		if !finiteNonzero(d) {
			return ErrSingular
		}
		x[i] = s / d
	}
	return nil
}

// N returns the system size.
func (f *BandLU) N() int { return f.n }

// String describes the factorization shape.
func (f *BandLU) String() string {
	return fmt.Sprintf("BandLU(n=%d, kl=%d, ku=%d)", f.n, f.kl, f.ku)
}
