package linalg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestDenseAtSet(t *testing.T) {
	m := NewDense(3, 4)
	m.Set(1, 2, 5.5)
	if got := m.At(1, 2); got != 5.5 {
		t.Fatalf("At(1,2) = %v, want 5.5", got)
	}
	m.Add(1, 2, 0.5)
	if got := m.At(1, 2); got != 6 {
		t.Fatalf("after Add, At(1,2) = %v, want 6", got)
	}
	if m.At(0, 0) != 0 {
		t.Fatalf("untouched element not zero")
	}
}

func TestDenseFromRowsRagged(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on ragged rows")
		}
	}()
	DenseFromRows([][]float64{{1, 2}, {3}})
}

func TestIdentityMulVec(t *testing.T) {
	id := Identity(4)
	x := []float64{1, -2, 3, 4}
	y := make([]float64, 4)
	id.MulVec(x, y)
	for i := range x {
		if y[i] != x[i] {
			t.Fatalf("I·x mismatch at %d: %v vs %v", i, y[i], x[i])
		}
	}
}

func TestDenseMul(t *testing.T) {
	a := DenseFromRows([][]float64{{1, 2}, {3, 4}})
	b := DenseFromRows([][]float64{{5, 6}, {7, 8}})
	c := a.Mul(b)
	want := [][]float64{{19, 22}, {43, 50}}
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			if c.At(i, j) != want[i][j] {
				t.Fatalf("C[%d][%d] = %v, want %v", i, j, c.At(i, j), want[i][j])
			}
		}
	}
}

func TestTranspose(t *testing.T) {
	a := DenseFromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	at := a.Transpose()
	if at.Rows != 3 || at.Cols != 2 {
		t.Fatalf("transpose shape %dx%d", at.Rows, at.Cols)
	}
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < a.Cols; j++ {
			if a.At(i, j) != at.At(j, i) {
				t.Fatalf("transpose mismatch at (%d,%d)", i, j)
			}
		}
	}
}

func TestIsSymmetric(t *testing.T) {
	s := DenseFromRows([][]float64{{2, 1}, {1, 3}})
	if !s.IsSymmetric(0) {
		t.Fatal("symmetric matrix reported asymmetric")
	}
	s.Set(0, 1, 1.1)
	if s.IsSymmetric(1e-6) {
		t.Fatal("asymmetric matrix reported symmetric")
	}
	if !s.IsSymmetric(0.2) {
		t.Fatal("tolerance not honored")
	}
	r := NewDense(2, 3)
	if r.IsSymmetric(1) {
		t.Fatal("non-square cannot be symmetric")
	}
}

func TestVectorOps(t *testing.T) {
	a := []float64{1, 2, 3}
	b := []float64{4, 5, 6}
	if got := Dot(a, b); got != 32 {
		t.Fatalf("Dot = %v, want 32", got)
	}
	y := []float64{1, 1, 1}
	Axpy(2, a, y)
	want := []float64{3, 5, 7}
	for i := range y {
		if y[i] != want[i] {
			t.Fatalf("Axpy[%d] = %v, want %v", i, y[i], want[i])
		}
	}
	if got := Norm2([]float64{3, 4}); !almostEqual(got, 5, 1e-12) {
		t.Fatalf("Norm2 = %v, want 5", got)
	}
	if got := NormInf([]float64{-7, 2}); got != 7 {
		t.Fatalf("NormInf = %v, want 7", got)
	}
	v := []float64{2, -4}
	Scale(0.5, v)
	if v[0] != 1 || v[1] != -2 {
		t.Fatalf("Scale result %v", v)
	}
	Fill(v, 9)
	if v[0] != 9 || v[1] != 9 {
		t.Fatalf("Fill result %v", v)
	}
}

func TestNorm2Overflow(t *testing.T) {
	big := math.MaxFloat64 / 4
	got := Norm2([]float64{big, big})
	if math.IsInf(got, 0) || math.IsNaN(got) {
		t.Fatalf("Norm2 overflowed: %v", got)
	}
	want := big * math.Sqrt2
	if math.Abs(got-want)/want > 1e-12 {
		t.Fatalf("Norm2 = %v, want %v", got, want)
	}
}

func TestNorm2Zero(t *testing.T) {
	if got := Norm2([]float64{0, 0, 0}); got != 0 {
		t.Fatalf("Norm2 of zero vector = %v", got)
	}
}

// Property: (Aᵀ)ᵀ = A for random matrices.
func TestTransposeInvolution(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rows, cols := 1+rng.Intn(8), 1+rng.Intn(8)
		a := NewDense(rows, cols)
		for i := range a.Data {
			a.Data[i] = rng.NormFloat64()
		}
		att := a.Transpose().Transpose()
		for i := range a.Data {
			if a.Data[i] != att.Data[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: dot product is symmetric and linear in its first argument.
func TestDotBilinear(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(16)
		a := make([]float64, n)
		b := make([]float64, n)
		c := make([]float64, n)
		for i := 0; i < n; i++ {
			a[i], b[i], c[i] = rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()
		}
		if !almostEqual(Dot(a, b), Dot(b, a), 1e-9) {
			return false
		}
		ac := make([]float64, n)
		copy(ac, a)
		Axpy(1, c, ac) // ac = a + c
		return almostEqual(Dot(ac, b), Dot(a, b)+Dot(c, b), 1e-6*(1+math.Abs(Dot(a, b))+math.Abs(Dot(c, b))))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: A·(x+y) = A·x + A·y.
func TestMulVecLinear(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(10)
		a := NewDense(n, n)
		for i := range a.Data {
			a.Data[i] = rng.NormFloat64()
		}
		x := make([]float64, n)
		y := make([]float64, n)
		for i := 0; i < n; i++ {
			x[i], y[i] = rng.NormFloat64(), rng.NormFloat64()
		}
		xy := make([]float64, n)
		copy(xy, x)
		Axpy(1, y, xy)
		ax := make([]float64, n)
		ay := make([]float64, n)
		axy := make([]float64, n)
		a.MulVec(x, ax)
		a.MulVec(y, ay)
		a.MulVec(xy, axy)
		for i := 0; i < n; i++ {
			if !almostEqual(axy[i], ax[i]+ay[i], 1e-8*(1+math.Abs(axy[i]))) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMulVecShapePanics(t *testing.T) {
	a := NewDense(2, 3)
	defer func() {
		if recover() == nil {
			t.Fatal("expected shape panic")
		}
	}()
	a.MulVec(make([]float64, 2), make([]float64, 2))
}
