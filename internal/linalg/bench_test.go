package linalg

import (
	"math/rand"
	"testing"
)

// Performance documentation for the numeric kernels at the problem sizes
// the thermal stack actually uses: 305 nodes (16-core compact network),
// ~3700 (grid model), 18 (per-core band).

func benchSPD(n int) *Dense {
	rng := rand.New(rand.NewSource(1))
	return randomSPD(rng, n)
}

func BenchmarkCholeskyFactor305(b *testing.B) {
	a := benchSPD(305)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := NewCholesky(a); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCholeskySolve305(b *testing.B) {
	a := benchSPD(305)
	ch, err := NewCholesky(a)
	if err != nil {
		b.Fatal(err)
	}
	rhs := make([]float64, 305)
	x := make([]float64, 305)
	for i := range rhs {
		rhs[i] = float64(i % 7)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ch.Solve(rhs, x)
	}
}

func BenchmarkLUFactor305(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	a := randomDiagDominant(rng, 305)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := NewLU(a); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCGGridScale(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	m := randomLaplacian(rng, 3700)
	rhs := make([]float64, 3700)
	for i := range rhs {
		rhs[i] = rng.NormFloat64()
	}
	x := make([]float64, 3700)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Fill(x, 0)
		res := m.SolveCG(rhs, x, CGOptions{Tol: 1e-9})
		if !res.Converged {
			b.Fatal("CG stalled")
		}
	}
}

func BenchmarkBandMulVec18(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	band := randomBanded(rng, 18, 1, 1)
	x := make([]float64, 18)
	y := make([]float64, 18)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		band.MulVec(x, y)
	}
}

func BenchmarkBandLUSolve18(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	band := randomDominantBanded(rng, 18, 1, 1)
	f, err := NewBandLU(band)
	if err != nil {
		b.Fatal(err)
	}
	rhs := make([]float64, 18)
	x := make([]float64, 18)
	for i := range rhs {
		rhs[i] = rng.NormFloat64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := f.Solve(rhs, x); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkParMulVec4096(b *testing.B) {
	rng := rand.New(rand.NewSource(6))
	m := randomLaplacian(rng, 4096)
	x := make([]float64, 4096)
	y := make([]float64, 4096)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.ParMulVec(x, y)
	}
}
