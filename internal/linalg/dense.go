// Package linalg provides the small dense, banded, and sparse linear-algebra
// kernels used by the TECfan thermal and control models: Cholesky and LU
// factorizations for steady-state thermal solves, a conjugate-gradient solver
// for large symmetric positive-definite networks, and parallel matrix-vector
// products for the transient integrator.
//
// Everything is written against plain float64 slices so the thermal network
// (a few hundred nodes) solves in microseconds without external dependencies.
package linalg

import (
	"errors"
	"fmt"
	"math"
)

// ErrSingular is returned when a factorization encounters a (numerically)
// singular matrix.
var ErrSingular = errors.New("linalg: matrix is singular to working precision")

// ErrNotSPD is returned by Cholesky when the matrix is not symmetric
// positive definite.
var ErrNotSPD = errors.New("linalg: matrix is not symmetric positive definite")

// ErrShape is returned when operand dimensions are incompatible.
var ErrShape = errors.New("linalg: dimension mismatch")

// Dense is a dense row-major n×m matrix.
type Dense struct {
	Rows, Cols int
	Data       []float64 // len Rows*Cols, row-major
}

// NewDense allocates a zeroed rows×cols matrix.
func NewDense(rows, cols int) *Dense {
	if rows <= 0 || cols <= 0 {
		panic(fmt.Sprintf("linalg: invalid dense shape %dx%d", rows, cols))
	}
	return &Dense{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// DenseFromRows builds a matrix from a slice of equal-length rows.
func DenseFromRows(rows [][]float64) *Dense {
	if len(rows) == 0 {
		panic("linalg: empty row set")
	}
	m := NewDense(len(rows), len(rows[0]))
	for i, r := range rows {
		if len(r) != m.Cols {
			panic("linalg: ragged rows")
		}
		copy(m.Data[i*m.Cols:(i+1)*m.Cols], r)
	}
	return m
}

// Identity returns the n×n identity matrix.
func Identity(n int) *Dense {
	m := NewDense(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}

// At returns element (i, j).
func (m *Dense) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Dense) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Add accumulates v into element (i, j).
func (m *Dense) Add(i, j int, v float64) { m.Data[i*m.Cols+j] += v }

// Clone returns a deep copy.
func (m *Dense) Clone() *Dense {
	c := NewDense(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// Row returns a view of row i (aliased, not copied).
func (m *Dense) Row(i int) []float64 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// MulVec computes y = M·x. y must have length Rows and x length Cols;
// y may not alias x.
func (m *Dense) MulVec(x, y []float64) {
	if len(x) != m.Cols || len(y) != m.Rows {
		panic(ErrShape)
	}
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		var s float64
		for j, v := range row {
			s += v * x[j]
		}
		y[i] = s
	}
}

// Mul returns M·B as a new matrix.
func (m *Dense) Mul(b *Dense) *Dense {
	if m.Cols != b.Rows {
		panic(ErrShape)
	}
	out := NewDense(m.Rows, b.Cols)
	for i := 0; i < m.Rows; i++ {
		arow := m.Row(i)
		orow := out.Row(i)
		for k, a := range arow {
			if a == 0 {
				continue
			}
			brow := b.Row(k)
			for j, bv := range brow {
				orow[j] += a * bv
			}
		}
	}
	return out
}

// Transpose returns Mᵀ.
func (m *Dense) Transpose() *Dense {
	t := NewDense(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			t.Set(j, i, m.At(i, j))
		}
	}
	return t
}

// IsSymmetric reports whether |m[i][j]-m[j][i]| <= tol for all pairs.
func (m *Dense) IsSymmetric(tol float64) bool {
	if m.Rows != m.Cols {
		return false
	}
	for i := 0; i < m.Rows; i++ {
		for j := i + 1; j < m.Cols; j++ {
			if math.Abs(m.At(i, j)-m.At(j, i)) > tol {
				return false
			}
		}
	}
	return true
}

// MaxAbs returns the largest absolute entry.
func (m *Dense) MaxAbs() float64 {
	var mx float64
	for _, v := range m.Data {
		if a := math.Abs(v); a > mx {
			mx = a
		}
	}
	return mx
}

// Dot returns the inner product of two equal-length vectors.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(ErrShape)
	}
	var s float64
	for i, v := range a {
		s += v * b[i]
	}
	return s
}

// Axpy computes y += alpha*x in place.
func Axpy(alpha float64, x, y []float64) {
	if len(x) != len(y) {
		panic(ErrShape)
	}
	for i, v := range x {
		y[i] += alpha * v
	}
}

// Norm2 returns the Euclidean norm of v.
func Norm2(v []float64) float64 {
	// Scaled to avoid overflow; vectors here are tiny but be correct anyway.
	var scale, ssq float64 = 0, 1
	for _, x := range v {
		if x == 0 {
			continue
		}
		ax := math.Abs(x)
		if scale < ax {
			r := scale / ax
			ssq = 1 + ssq*r*r
			scale = ax
		} else {
			r := ax / scale
			ssq += r * r
		}
	}
	return scale * math.Sqrt(ssq)
}

// NormInf returns the max-absolute-value norm of v.
func NormInf(v []float64) float64 {
	var mx float64
	for _, x := range v {
		if a := math.Abs(x); a > mx {
			mx = a
		}
	}
	return mx
}

// Scale multiplies every element of v by alpha in place.
func Scale(alpha float64, v []float64) {
	for i := range v {
		v[i] *= alpha
	}
}

// Fill sets every element of v to x.
func Fill(v []float64, x float64) {
	for i := range v {
		v[i] = x
	}
}
