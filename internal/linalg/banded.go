package linalg

import "fmt"

// Banded is a square band matrix with kl sub-diagonals and ku super-diagonals,
// stored in LAPACK-style band storage: element (i, j) with
// max(0,i-kl) <= j <= min(n-1,i+ku) lives at row i, band column (j - i + kl).
//
// The paper's §III-E observes that the per-core thermal conductance matrix is
// by nature a band matrix (thermal impact only between adjacent components),
// which is what makes the proposed systolic-array hardware cheap. We model
// that hardware here: BandMulVec is the operation the systolic array performs
// and SystolicCost (in internal/core) prices it.
type Banded struct {
	N      int
	KL, KU int
	Data   []float64 // N rows × (KL+KU+1) band columns, row-major
}

// NewBanded allocates a zeroed n×n band matrix with bandwidths kl, ku.
func NewBanded(n, kl, ku int) *Banded {
	if n <= 0 || kl < 0 || ku < 0 || kl >= n || ku >= n {
		panic(fmt.Sprintf("linalg: invalid band shape n=%d kl=%d ku=%d", n, kl, ku))
	}
	return &Banded{N: n, KL: kl, KU: ku, Data: make([]float64, n*(kl+ku+1))}
}

// InBand reports whether (i, j) lies inside the band.
func (b *Banded) InBand(i, j int) bool {
	return j >= i-b.KL && j <= i+b.KU && i >= 0 && j >= 0 && i < b.N && j < b.N
}

// At returns element (i, j); zero outside the band.
func (b *Banded) At(i, j int) float64 {
	if !b.InBand(i, j) {
		return 0
	}
	return b.Data[i*(b.KL+b.KU+1)+(j-i+b.KL)]
}

// Set assigns element (i, j); it panics outside the band.
func (b *Banded) Set(i, j int, v float64) {
	if !b.InBand(i, j) {
		panic(fmt.Sprintf("linalg: (%d,%d) outside band kl=%d ku=%d", i, j, b.KL, b.KU))
	}
	b.Data[i*(b.KL+b.KU+1)+(j-i+b.KL)] = v
}

// MulVec computes y = B·x using only in-band elements — exactly the
// multiply-accumulate schedule a band systolic array executes.
func (b *Banded) MulVec(x, y []float64) {
	if len(x) != b.N || len(y) != b.N {
		panic(ErrShape)
	}
	w := b.KL + b.KU + 1
	for i := 0; i < b.N; i++ {
		lo := i - b.KL
		if lo < 0 {
			lo = 0
		}
		hi := i + b.KU
		if hi >= b.N {
			hi = b.N - 1
		}
		var s float64
		base := i * w
		for j := lo; j <= hi; j++ {
			s += b.Data[base+(j-i+b.KL)] * x[j]
		}
		y[i] = s
	}
}

// Dense expands the band matrix to dense form.
func (b *Banded) Dense() *Dense {
	d := NewDense(b.N, b.N)
	for i := 0; i < b.N; i++ {
		for j := 0; j < b.N; j++ {
			if b.InBand(i, j) {
				d.Set(i, j, b.At(i, j))
			}
		}
	}
	return d
}

// BandedFromDense extracts the (kl, ku) band of a dense matrix, returning an
// error if any out-of-band element exceeds tol (i.e. the matrix is not truly
// banded).
func BandedFromDense(d *Dense, kl, ku int, tol float64) (*Banded, error) {
	if d.Rows != d.Cols {
		return nil, ErrShape
	}
	b := NewBanded(d.Rows, kl, ku)
	for i := 0; i < d.Rows; i++ {
		for j := 0; j < d.Cols; j++ {
			v := d.At(i, j)
			if b.InBand(i, j) {
				b.Set(i, j, v)
			} else if v > tol || v < -tol {
				return nil, fmt.Errorf("linalg: element (%d,%d)=%g outside band", i, j, v)
			}
		}
	}
	return b, nil
}

// Bandwidth returns the smallest (kl, ku) such that all entries of d with
// magnitude above tol are inside the band.
func Bandwidth(d *Dense, tol float64) (kl, ku int) {
	for i := 0; i < d.Rows; i++ {
		for j := 0; j < d.Cols; j++ {
			v := d.At(i, j)
			if v > tol || v < -tol {
				if i-j > kl {
					kl = i - j
				}
				if j-i > ku {
					ku = j - i
				}
			}
		}
	}
	return kl, ku
}

// MACCount returns the number of multiply-accumulate operations one band
// mat-vec needs — the quantity the paper prices at M×K fixed-point
// multiplications per core temperature evaluation.
func (b *Banded) MACCount() int {
	w := b.KL + b.KU + 1
	total := 0
	for i := 0; i < b.N; i++ {
		lo := i - b.KL
		if lo < 0 {
			lo = 0
		}
		hi := i + b.KU
		if hi >= b.N {
			hi = b.N - 1
		}
		_ = w
		total += hi - lo + 1
	}
	return total
}
