package linalg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// randomDominantBanded builds a diagonally dominant band matrix.
func randomDominantBanded(rng *rand.Rand, n, kl, ku int) *Banded {
	b := NewBanded(n, kl, ku)
	for i := 0; i < n; i++ {
		var sum float64
		for j := 0; j < n; j++ {
			if i == j || !b.InBand(i, j) {
				continue
			}
			v := rng.NormFloat64()
			b.Set(i, j, v)
			sum += math.Abs(v)
		}
		b.Set(i, i, sum+1+rng.Float64())
	}
	return b
}

func TestSolveTridiagKnown(t *testing.T) {
	// [2 -1 0; -1 2 -1; 0 -1 2] x = [1 0 1] → x = [1 1 1].
	lower := []float64{0, -1, -1}
	diag := []float64{2, 2, 2}
	upper := []float64{-1, -1, 0}
	x := make([]float64, 3)
	if err := SolveTridiag(lower, diag, upper, []float64{1, 0, 1}, x); err != nil {
		t.Fatal(err)
	}
	for i, v := range x {
		if !almostEqual(v, 1, 1e-12) {
			t.Fatalf("x[%d] = %v, want 1", i, v)
		}
	}
}

func TestSolveTridiagEdgeCases(t *testing.T) {
	if err := SolveTridiag(nil, nil, nil, nil, nil); err != nil {
		t.Fatalf("empty system: %v", err)
	}
	// Singular pivot.
	if err := SolveTridiag([]float64{0}, []float64{0}, []float64{0}, []float64{1}, make([]float64, 1)); err != ErrSingular {
		t.Fatalf("err = %v, want ErrSingular", err)
	}
	// Shape mismatch.
	if err := SolveTridiag([]float64{0}, []float64{1, 2}, []float64{0}, []float64{1}, make([]float64, 1)); err != ErrShape {
		t.Fatalf("err = %v, want ErrShape", err)
	}
}

// Property: Thomas algorithm matches dense LU on dominant tridiagonals.
func TestSolveTridiagProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(30)
		b := randomDominantBanded(rng, n, 1, 1)
		lower := make([]float64, n)
		diag := make([]float64, n)
		upper := make([]float64, n)
		rhs := make([]float64, n)
		for i := 0; i < n; i++ {
			if i > 0 {
				lower[i] = b.At(i, i-1)
			}
			diag[i] = b.At(i, i)
			if i < n-1 {
				upper[i] = b.At(i, i+1)
			}
			rhs[i] = rng.NormFloat64() * 5
		}
		x := make([]float64, n)
		if err := SolveTridiag(lower, diag, upper, rhs, x); err != nil {
			return false
		}
		lu, err := NewLU(b.Dense())
		if err != nil {
			return false
		}
		ref := make([]float64, n)
		lu.Solve(rhs, ref)
		for i := range x {
			if !almostEqual(x[i], ref[i], 1e-8*(1+math.Abs(ref[i]))) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: BandLU matches dense LU on dominant band systems.
func TestBandLUProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(25)
		kl := rng.Intn(3)
		ku := rng.Intn(3)
		b := randomDominantBanded(rng, n, kl, ku)
		f1, err := NewBandLU(b)
		if err != nil {
			return false
		}
		rhs := make([]float64, n)
		for i := range rhs {
			rhs[i] = rng.NormFloat64() * 3
		}
		x := make([]float64, n)
		if err := f1.Solve(rhs, x); err != nil {
			return false
		}
		dlu, err := NewLU(b.Dense())
		if err != nil {
			return false
		}
		ref := make([]float64, n)
		dlu.Solve(rhs, ref)
		for i := range x {
			if !almostEqual(x[i], ref[i], 1e-7*(1+math.Abs(ref[i]))) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestBandLUSingular(t *testing.T) {
	b := NewBanded(3, 1, 1)
	// Zero diagonal without pivoting → singular.
	b.Set(0, 1, 1)
	b.Set(1, 0, 1)
	if _, err := NewBandLU(b); err != ErrSingular {
		t.Fatalf("err = %v, want ErrSingular", err)
	}
}

func TestBandLUSolveInPlaceAndShape(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	b := randomDominantBanded(rng, 10, 2, 1)
	f, err := NewBandLU(b)
	if err != nil {
		t.Fatal(err)
	}
	if f.N() != 10 {
		t.Fatalf("N = %d", f.N())
	}
	if f.String() == "" {
		t.Fatal("empty String()")
	}
	rhs := make([]float64, 10)
	for i := range rhs {
		rhs[i] = rng.NormFloat64()
	}
	orig := append([]float64(nil), rhs...)
	if err := f.Solve(rhs, rhs); err != nil { // aliased
		t.Fatal(err)
	}
	// Verify residual against the original RHS.
	ax := make([]float64, 10)
	b.MulVec(rhs, ax)
	for i := range ax {
		if !almostEqual(ax[i], orig[i], 1e-8*(1+math.Abs(orig[i]))) {
			t.Fatalf("in-place solve residual at %d: %v vs %v", i, ax[i], orig[i])
		}
	}
	if err := f.Solve(make([]float64, 3), make([]float64, 10)); err != ErrShape {
		t.Fatalf("err = %v, want ErrShape", err)
	}
}

// The per-core thermal band system (tridiagonal-ish, dominant) solves with
// the band kernel — the §III-E "resistance matrix" path.
func TestBandLUThermalChain(t *testing.T) {
	n := 18
	b := NewBanded(n, 1, 1)
	for i := 0; i < n; i++ {
		g := 0.05 + 0.01*float64(i%3)
		b.Set(i, i, 2*g+0.16)
		if i > 0 {
			b.Set(i, i-1, -g)
		}
		if i < n-1 {
			b.Set(i, i+1, -g)
		}
	}
	f, err := NewBandLU(b)
	if err != nil {
		t.Fatal(err)
	}
	p := make([]float64, n)
	p[7] = 1.5 // hot spot
	x := make([]float64, n)
	if err := f.Solve(p, x); err != nil {
		t.Fatal(err)
	}
	// Temperature rise peaks at the heated node and decays monotonically
	// away from it.
	for i := 0; i < n; i++ {
		if x[i] <= 0 {
			t.Fatalf("node %d non-positive rise %v", i, x[i])
		}
		if i != 7 && x[i] >= x[7] {
			t.Fatalf("node %d (%.4f) not below the heated node (%.4f)", i, x[i], x[7])
		}
	}
	for i := 8; i < n-1; i++ {
		if x[i+1] >= x[i] {
			t.Fatalf("rise not decaying right of the spot at %d", i)
		}
	}
}
