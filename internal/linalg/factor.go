package linalg

import "math"

// Cholesky holds the lower-triangular factor L of an SPD matrix A = L·Lᵀ.
// The thermal conductance matrix of a pure-resistance network is SPD once the
// ambient ground node is eliminated, so this is the default steady-state
// solver.
type Cholesky struct {
	n int
	l *Dense
	// ut holds Lᵀ so the back substitution reads rows instead of striding
	// down columns: at the n≈300 of a per-die RC network the column walk
	// touches a new cache line per element. Values are identical to l's,
	// so the solve is bitwise-unchanged.
	ut *Dense
}

// NewCholesky factors the SPD matrix a. It returns ErrNotSPD if a pivot is
// not strictly positive.
func NewCholesky(a *Dense) (*Cholesky, error) {
	if a.Rows != a.Cols {
		return nil, ErrShape
	}
	n := a.Rows
	l := a.Clone()
	for j := 0; j < n; j++ {
		d := l.At(j, j)
		for k := 0; k < j; k++ {
			v := l.At(j, k)
			d -= v * v
		}
		if !finitePositive(d) {
			return nil, ErrNotSPD
		}
		d = math.Sqrt(d)
		l.Set(j, j, d)
		inv := 1 / d
		for i := j + 1; i < n; i++ {
			s := l.At(i, j)
			for k := 0; k < j; k++ {
				s -= l.At(i, k) * l.At(j, k)
			}
			l.Set(i, j, s*inv)
		}
	}
	// Zero the strictly-upper part so the factor is clean for callers that
	// inspect it.
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			l.Set(i, j, 0)
		}
	}
	ut := NewDense(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			ut.Set(j, i, l.At(i, j))
		}
	}
	return &Cholesky{n: n, l: l, ut: ut}, nil
}

// Solve computes x such that A·x = b. b is not modified; x must have length n
// and may alias b.
func (c *Cholesky) Solve(b, x []float64) {
	if len(b) != c.n || len(x) != c.n {
		panic(ErrShape)
	}
	if &x[0] != &b[0] {
		copy(x, b)
	}
	l := c.l
	// Forward substitution L·y = b.
	for i := 0; i < c.n; i++ {
		s := x[i]
		row := l.Row(i)
		for k := 0; k < i; k++ {
			s -= row[k] * x[k]
		}
		x[i] = s / row[i]
	}
	// Back substitution Lᵀ·x = y, reading rows of the stored transpose.
	for i := c.n - 1; i >= 0; i-- {
		s := x[i]
		urow := c.ut.Row(i)
		for k := i + 1; k < c.n; k++ {
			s -= urow[k] * x[k]
		}
		x[i] = s / urow[i]
	}
}

// N returns the system size.
func (c *Cholesky) N() int { return c.n }

// LU holds an LU factorization with partial pivoting, P·A = L·U. It handles
// the mildly non-symmetric systems that arise when the Peltier term of an
// active TEC is folded into the conductance matrix.
type LU struct {
	n    int
	lu   *Dense
	piv  []int
	sign int
	// tmp is the permuted-rhs scratch for Solve, preallocated so per-step
	// solves stay allocation-free. Solve is therefore not safe for
	// concurrent use — same contract as the thermal.Network that owns it.
	tmp []float64
}

// NewLU factors the square matrix a with partial pivoting.
func NewLU(a *Dense) (*LU, error) {
	if a.Rows != a.Cols {
		return nil, ErrShape
	}
	n := a.Rows
	f := &LU{n: n, lu: a.Clone(), piv: make([]int, n), sign: 1, tmp: make([]float64, n)}
	lu := f.lu
	for i := range f.piv {
		f.piv[i] = i
	}
	for col := 0; col < n; col++ {
		// Pivot: largest magnitude in this column at or below the diagonal.
		p := col
		mx := math.Abs(lu.At(col, col))
		for r := col + 1; r < n; r++ {
			if a := math.Abs(lu.At(r, col)); a > mx {
				mx, p = a, r
			}
		}
		if !finiteNonzero(mx) {
			return nil, ErrSingular
		}
		if p != col {
			ri, rp := lu.Row(col), lu.Row(p)
			for j := range ri {
				ri[j], rp[j] = rp[j], ri[j]
			}
			f.piv[col], f.piv[p] = f.piv[p], f.piv[col]
			f.sign = -f.sign
		}
		d := lu.At(col, col)
		for r := col + 1; r < n; r++ {
			m := lu.At(r, col) / d
			lu.Set(r, col, m)
			if m == 0 {
				continue
			}
			rrow, crow := lu.Row(r), lu.Row(col)
			for j := col + 1; j < n; j++ {
				rrow[j] -= m * crow[j]
			}
		}
	}
	return f, nil
}

// Solve computes x such that A·x = b. x must have length n; b is untouched
// unless x aliases it. Not safe for concurrent use (shared scratch).
func (f *LU) Solve(b, x []float64) {
	if len(b) != f.n || len(x) != f.n {
		panic(ErrShape)
	}
	tmp := f.tmp
	for i, p := range f.piv {
		tmp[i] = b[p]
	}
	lu := f.lu
	// Forward: L·y = P·b (unit diagonal).
	for i := 0; i < f.n; i++ {
		s := tmp[i]
		row := lu.Row(i)
		for k := 0; k < i; k++ {
			s -= row[k] * tmp[k]
		}
		tmp[i] = s
	}
	// Backward: U·x = y.
	for i := f.n - 1; i >= 0; i-- {
		s := tmp[i]
		row := lu.Row(i)
		for k := i + 1; k < f.n; k++ {
			s -= row[k] * tmp[k]
		}
		tmp[i] = s / row[i]
	}
	copy(x, tmp)
}

// Det returns the determinant of the factored matrix.
func (f *LU) Det() float64 {
	d := float64(f.sign)
	for i := 0; i < f.n; i++ {
		d *= f.lu.At(i, i)
	}
	return d
}

// N returns the system size.
func (f *LU) N() int { return f.n }
