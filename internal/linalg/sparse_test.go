package linalg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// randomLaplacian builds a random grid-like SPD sparse matrix: a 1-D
// resistive chain with grounding, the simplest thermal network.
func randomLaplacian(rng *rand.Rand, n int) *CSR {
	var items []Coord
	for i := 0; i < n; i++ {
		diag := 0.5 + rng.Float64() // ground leg keeps it SPD
		if i > 0 {
			g := 0.1 + rng.Float64()
			items = append(items, Coord{i, i - 1, -g}, Coord{i - 1, i, -g})
			items = append(items, Coord{i, i, g}, Coord{i - 1, i - 1, g})
		}
		items = append(items, Coord{i, i, diag})
	}
	return NewCSR(n, items)
}

func TestCSRAssembly(t *testing.T) {
	m := NewCSR(3, []Coord{
		{0, 0, 2}, {0, 1, -1},
		{1, 0, -1}, {1, 1, 2}, {1, 2, -1},
		{2, 1, -1}, {2, 2, 2},
		{1, 1, 0.5}, // duplicate: must sum
	})
	if m.NNZ() != 7 {
		t.Fatalf("NNZ = %d, want 7", m.NNZ())
	}
	if got := m.At(1, 1); got != 2.5 {
		t.Fatalf("duplicate not summed: At(1,1) = %v", got)
	}
	if got := m.At(0, 2); got != 0 {
		t.Fatalf("absent element = %v, want 0", got)
	}
	if got := m.Diag(2); got != 2 {
		t.Fatalf("Diag(2) = %v", got)
	}
}

func TestCSRDiagAbsent(t *testing.T) {
	m := NewCSR(2, []Coord{{0, 1, 1}, {1, 0, 1}})
	if m.Diag(0) != 0 || m.Diag(1) != 0 {
		t.Fatal("absent diagonal should read 0")
	}
}

func TestCSRMulVecMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	m := randomLaplacian(rng, 25)
	d := m.Dense()
	x := make([]float64, 25)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	y1 := make([]float64, 25)
	y2 := make([]float64, 25)
	m.MulVec(x, y1)
	d.MulVec(x, y2)
	for i := range y1 {
		if !almostEqual(y1[i], y2[i], 1e-12) {
			t.Fatalf("CSR vs dense mismatch at %d: %v vs %v", i, y1[i], y2[i])
		}
	}
}

func TestParMulVecMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	// Above the parallel cutoff to exercise the goroutine path.
	n := parCutoff * 2
	m := randomLaplacian(rng, n)
	x := make([]float64, n)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	y1 := make([]float64, n)
	y2 := make([]float64, n)
	m.MulVec(x, y1)
	m.ParMulVec(x, y2)
	for i := range y1 {
		if y1[i] != y2[i] {
			t.Fatalf("parallel mismatch at %d: %v vs %v", i, y1[i], y2[i])
		}
	}
}

func TestSolveCGZeroRHS(t *testing.T) {
	m := randomLaplacian(rand.New(rand.NewSource(1)), 10)
	x := make([]float64, 10)
	Fill(x, 3)
	res := m.SolveCG(make([]float64, 10), x, CGOptions{})
	if !res.Converged {
		t.Fatal("zero RHS should converge immediately")
	}
	for _, v := range x {
		if v != 0 {
			t.Fatal("zero RHS should produce zero solution")
		}
	}
}

// Property: CG solves random SPD Laplacians and matches Cholesky.
func TestSolveCGProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(40)
		m := randomLaplacian(rng, n)
		b := make([]float64, n)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		x := make([]float64, n)
		res := m.SolveCG(b, x, CGOptions{Tol: 1e-12})
		if !res.Converged {
			return false
		}
		ch, err := NewCholesky(m.Dense())
		if err != nil {
			return false
		}
		ref := make([]float64, n)
		ch.Solve(b, ref)
		for i := range x {
			if !almostEqual(x[i], ref[i], 1e-6*(1+math.Abs(ref[i]))) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestSolveCGWarmStart(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	n := 50
	m := randomLaplacian(rng, n)
	b := make([]float64, n)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	cold := make([]float64, n)
	r1 := m.SolveCG(b, cold, CGOptions{Tol: 1e-12})
	// Warm start from the exact solution: should converge in ~0 iterations.
	warm := append([]float64(nil), cold...)
	r2 := m.SolveCG(b, warm, CGOptions{Tol: 1e-10})
	if !r1.Converged || !r2.Converged {
		t.Fatal("CG failed to converge")
	}
	if r2.Iterations > 2 {
		t.Fatalf("warm start took %d iterations", r2.Iterations)
	}
}

func TestSolveCGMaxIter(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	m := randomLaplacian(rng, 60)
	b := make([]float64, 60)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	x := make([]float64, 60)
	res := m.SolveCG(b, x, CGOptions{MaxIter: 1, Tol: 1e-14})
	if res.Converged {
		t.Fatal("1 iteration should not converge to 1e-14")
	}
	if res.Iterations != 1 {
		t.Fatalf("Iterations = %d, want 1", res.Iterations)
	}
}
