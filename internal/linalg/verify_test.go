package linalg

import (
	"errors"
	"math"
	"strings"
	"testing"
)

// spd3 returns a small well-conditioned SPD matrix (a conductance-style
// system: diagonally dominant, symmetric).
func spd3() *Dense {
	a := NewDense(3, 3)
	vals := [][]float64{
		{4, -1, 0},
		{-1, 4, -1},
		{0, -1, 4},
	}
	for i := range vals {
		for j := range vals[i] {
			a.Set(i, j, vals[i][j])
		}
	}
	return a
}

// Regression: ±Inf pivots must be rejected at factor time. The historical
// checks (`d <= 0 || IsNaN(d)`, `mx == 0 || IsNaN(mx)`) let +Inf through
// and minted NaNs downstream.
func TestCholeskyRejectsInfPivot(t *testing.T) {
	for _, inf := range []float64{math.Inf(1), math.Inf(-1), math.NaN()} {
		a := spd3()
		a.Set(1, 1, inf)
		if _, err := NewCholesky(a); !errors.Is(err, ErrNotSPD) {
			t.Errorf("NewCholesky with pivot %v: err = %v, want ErrNotSPD", inf, err)
		}
	}
}

func TestLURejectsInfPivotColumn(t *testing.T) {
	// A column whose largest magnitude is +Inf used to pass the `mx == 0`
	// check; the elimination then divides Inf/Inf.
	a := NewDense(2, 2)
	a.Set(0, 0, math.Inf(1))
	a.Set(0, 1, 1)
	a.Set(1, 0, math.Inf(1))
	a.Set(1, 1, 2)
	if _, err := NewLU(a); !errors.Is(err, ErrSingular) {
		t.Errorf("NewLU with Inf column: err = %v, want ErrSingular", err)
	}
}

func TestBandLURejectsInfPivot(t *testing.T) {
	for _, inf := range []float64{math.Inf(1), math.Inf(-1)} {
		b := NewBanded(3, 1, 1)
		for i := 0; i < 3; i++ {
			b.Set(i, i, 4)
		}
		b.Set(1, 1, inf)
		if _, err := NewBandLU(b); !errors.Is(err, ErrSingular) {
			t.Errorf("NewBandLU with pivot %v: err = %v, want ErrSingular", inf, err)
		}
	}
}

func TestSolveTridiagRejectsInfPivot(t *testing.T) {
	n := 3
	lower := []float64{0, -1, -1}
	diag := []float64{math.Inf(1), 4, 4}
	upper := []float64{-1, -1, 0}
	rhs := []float64{1, 1, 1}
	x := make([]float64, n)
	if err := SolveTridiag(lower, diag, upper, rhs, x); !errors.Is(err, ErrSingular) {
		t.Errorf("SolveTridiag with Inf pivot: err = %v, want ErrSingular", err)
	}
}

// A healthy solve must not refine: the verified path has to stay
// byte-identical to the plain factorization on well-conditioned systems.
func TestVerifiedCholeskyNoRefinementOnHealthySystem(t *testing.T) {
	a := spd3()
	v, err := NewVerifiedCholesky(a, 0)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := NewCholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	b := []float64{1, 2, 3}
	xv := make([]float64, 3)
	xp := make([]float64, 3)
	refined, err := v.Solve(b, xv)
	if err != nil {
		t.Fatalf("verified solve: %v", err)
	}
	if refined {
		t.Error("healthy system triggered refinement; guarded path would no longer be byte-identical")
	}
	plain.Solve(b, xp)
	for i := range xv {
		if xv[i] != xp[i] {
			t.Errorf("x[%d]: verified %v != plain %v (must be bitwise equal)", i, xv[i], xp[i])
		}
	}
	if c := v.Cond(); c < 1 || c > 100 {
		t.Errorf("cond estimate %v implausible for a well-conditioned 3x3", c)
	}
}

func TestVerifiedCholeskyRejectsNonFiniteRHS(t *testing.T) {
	v, err := NewVerifiedCholesky(spd3(), 0)
	if err != nil {
		t.Fatal(err)
	}
	b := []float64{1, math.NaN(), 3}
	x := make([]float64, 3)
	_, err = v.Solve(b, x)
	var ne *NumError
	if !errors.As(err, &ne) {
		t.Fatalf("NaN rhs: err = %v, want *NumError", err)
	}
	if !errors.Is(err, ErrDiverged) {
		t.Errorf("NumError should wrap ErrDiverged, got %v", ne.Err)
	}
}

func TestVerifiedBandLUMatchesDense(t *testing.T) {
	n := 6
	b := NewBanded(n, 1, 1)
	for i := 0; i < n; i++ {
		b.Set(i, i, 5)
		if i > 0 {
			b.Set(i, i-1, -1)
		}
		if i < n-1 {
			b.Set(i, i+1, -2)
		}
	}
	v, err := NewVerifiedBandLU(b, 0)
	if err != nil {
		t.Fatal(err)
	}
	rhs := make([]float64, n)
	for i := range rhs {
		rhs[i] = float64(i + 1)
	}
	x := make([]float64, n)
	refined, err := v.Solve(rhs, x)
	if err != nil {
		t.Fatalf("band solve: %v", err)
	}
	if refined {
		t.Error("diagonally dominant system triggered refinement")
	}
	lu, err := NewLU(b.Dense())
	if err != nil {
		t.Fatal(err)
	}
	ref := make([]float64, n)
	lu.Solve(rhs, ref)
	for i := range x {
		if math.Abs(x[i]-ref[i]) > 1e-10 {
			t.Errorf("x[%d] = %v, dense reference %v", i, x[i], ref[i])
		}
	}
}

// The classic pivoting counterexample: a tiny leading pivot without
// pivoting gives catastrophic element growth and a first solve that is
// quietly wrong. The residual check must notice and the single refinement
// step must repair it (or refuse) — never a silent bad solve.
func TestVerifiedBandLURefinementRepairsGrowth(t *testing.T) {
	b := NewBanded(2, 1, 1)
	b.Set(0, 0, 1e-20)
	b.Set(0, 1, 1)
	b.Set(1, 0, 1)
	b.Set(1, 1, 1)
	v, err := NewVerifiedBandLU(b, 0)
	if err != nil {
		t.Fatal(err)
	}
	rhs := []float64{1, 2}
	x := make([]float64, 2)
	refined, err := v.Solve(rhs, x)
	if err != nil {
		// A clean refusal is acceptable; a silent bad solve is not.
		var ne *NumError
		if !errors.As(err, &ne) {
			t.Fatalf("err = %v, want *NumError", err)
		}
		return
	}
	if !refined {
		t.Error("expected the growth-degraded solve to need refinement")
	}
	// Independently check the returned solution.
	ax0 := 1e-20*x[0] + x[1]
	ax1 := x[0] + x[1]
	if math.Abs(ax0-1) > 1e-6 || math.Abs(ax1-2) > 1e-6 {
		t.Errorf("accepted solve has bad residual: Ax = [%v %v], b = [1 2]", ax0, ax1)
	}
	if v.Cond() < 1e10 {
		t.Errorf("cond estimate %v should reflect the 1e20 pivot growth", v.Cond())
	}
}

// Diagnosis strings travel into results and checkpoints; they must never
// contain the literal tokens the drill greps for.
func TestNumErrorMessageAvoidsNaNInfTokens(t *testing.T) {
	e := &NumError{
		Op:       "cholesky",
		Residual: math.NaN(),
		Tol:      DefaultResidualTol,
		Cond:     math.Inf(1),
		Err:      ErrDiverged,
	}
	msg := e.Error()
	for _, tok := range []string{"NaN", "Inf"} {
		if strings.Contains(msg, tok) {
			t.Errorf("NumError message contains %q: %s", tok, msg)
		}
	}
}

func TestSafeFloat(t *testing.T) {
	cases := map[float64]string{
		math.NaN():   "not-a-number",
		math.Inf(1):  "overflow(+)",
		math.Inf(-1): "overflow(-)",
		1.5:          "1.5",
	}
	for v, want := range cases {
		if got := SafeFloat(v); got != want {
			t.Errorf("SafeFloat(%v) = %q, want %q", v, got, want)
		}
	}
}
