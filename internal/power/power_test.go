package power

import (
	"math"
	"testing"
	"testing/quick"

	"tecfan/internal/floorplan"
)

func TestSCCTableShape(t *testing.T) {
	tbl := SCCTable()
	if tbl.Num() != 6 {
		t.Fatalf("SCC table has %d levels, paper uses M=6", tbl.Num())
	}
	if tbl.Max() != 5 {
		t.Fatalf("Max = %d", tbl.Max())
	}
	for i := 1; i < tbl.Num(); i++ {
		if tbl.Levels[i].Freq <= tbl.Levels[i-1].Freq {
			t.Fatalf("frequency not increasing at level %d", i)
		}
		if tbl.Levels[i].Vdd < tbl.Levels[i-1].Vdd {
			t.Fatalf("voltage decreasing at level %d", i)
		}
	}
}

func TestI7TableShape(t *testing.T) {
	tbl := I7Table()
	if tbl.Num() != 5 {
		t.Fatalf("i7 table has %d levels", tbl.Num())
	}
	if tbl.Levels[tbl.Max()].Freq != 3.5 {
		t.Fatalf("i7 nominal = %v GHz, want 3.5", tbl.Levels[tbl.Max()].Freq)
	}
}

func TestDynScaleEq7(t *testing.T) {
	tbl := SCCTable()
	// Eq. (7): (F2/F1)·(V2/V1)².
	got := tbl.DynScale(5, 0)
	want := (1.0 / 2.0) * math.Pow(0.75/1.10, 2)
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("DynScale(max→min) = %v, want %v", got, want)
	}
	// Moving max→min must cut dynamic power by the famous cubic-ish factor.
	if got > 0.30 {
		t.Fatalf("DVFS headroom only %.2f; the paper's cubic argument needs ~4x", got)
	}
	if tbl.DynScale(2, 2) != 1 {
		t.Fatal("identity scale must be 1")
	}
}

func TestDynScaleInverse(t *testing.T) {
	tbl := SCCTable()
	f := func(a, b uint8) bool {
		i := int(a) % tbl.Num()
		j := int(b) % tbl.Num()
		return math.Abs(tbl.DynScale(i, j)*tbl.DynScale(j, i)-1) < 1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFreqRatio(t *testing.T) {
	tbl := SCCTable()
	if got := tbl.FreqRatio(5, 0); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("FreqRatio(max→min) = %v, want 0.5", got)
	}
	if got := tbl.ScaleFromMax(5); got != 1 {
		t.Fatalf("ScaleFromMax(max) = %v", got)
	}
	if tbl.ScaleFromMax(0) >= tbl.ScaleFromMax(3) {
		t.Fatal("ScaleFromMax not monotone")
	}
}

func TestClampAndPanic(t *testing.T) {
	tbl := SCCTable()
	if tbl.Clamp(-1) != 0 || tbl.Clamp(99) != 5 || tbl.Clamp(3) != 3 {
		t.Fatal("Clamp wrong")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	tbl.DynScale(0, 7)
}

func TestLeakageCalibrationPoints(t *testing.T) {
	l := DefaultLeakage()
	// The quadratic must pass through the SCC calibration points.
	for _, pt := range []struct{ tC, w float64 }{{45, 10}, {70, 16}, {90, 24}} {
		if got := l.QuadChip(pt.tC); math.Abs(got-pt.w) > 0.05 {
			t.Fatalf("QuadChip(%v) = %v, want %v", pt.tC, got, pt.w)
		}
	}
	// The linear model is tangent at TTDP: equal value and slope there.
	if math.Abs(l.LinearChip(l.TTDP)-l.QuadChip(l.TTDP)) > 1e-9 {
		t.Fatal("linear and quadratic must agree at TTDP")
	}
	h := 0.5
	quadSlope := (l.QuadChip(l.TTDP+h) - l.QuadChip(l.TTDP-h)) / (2 * h)
	if math.Abs(quadSlope-l.Alpha) > 1e-9 {
		t.Fatalf("Alpha = %v, quadratic slope at TTDP = %v", l.Alpha, quadSlope)
	}
}

func TestLeakageMonotoneInRange(t *testing.T) {
	l := DefaultLeakage()
	for tc := 40.0; tc < 110; tc += 1 {
		if l.QuadChip(tc+1) <= l.QuadChip(tc) {
			t.Fatalf("quad leakage not increasing at %v °C", tc)
		}
		if l.LinearChip(tc+1) <= l.LinearChip(tc) {
			t.Fatalf("linear leakage not increasing at %v °C", tc)
		}
	}
}

func TestLeakageClamp(t *testing.T) {
	l := DefaultLeakage()
	if l.LinearChip(-500) != 0 {
		t.Fatal("linear leakage must clamp at 0")
	}
	if l.QuadChip(23.75) < 0 {
		t.Fatal("quad leakage negative")
	}
}

func TestLinearUnderestimatesBelowTTDP(t *testing.T) {
	// The tangent at TTDP lies below the convex quadratic elsewhere — the
	// controller's Eq. (6) model slightly underestimates leakage at low
	// temperature, one source of model-vs-truth gap in the experiments.
	l := DefaultLeakage()
	for tc := 45.0; tc < 89; tc += 5 {
		if l.LinearChip(tc) > l.QuadChip(tc)+1e-9 {
			t.Fatalf("tangent above quadratic at %v °C", tc)
		}
	}
}

func TestPerComponent(t *testing.T) {
	chip := floorplan.NewQuad()
	l := DefaultLeakage()
	temps := make([]float64, len(chip.Components)+5)
	for i := range temps {
		temps[i] = 70
	}
	out := make([]float64, len(chip.Components))
	l.PerComponent(chip, temps, ModelQuad, out)
	var sum float64
	for i, p := range out {
		if p < 0 {
			t.Fatalf("negative leakage at %d", i)
		}
		sum += p
	}
	if math.Abs(sum-l.QuadChip(70)) > 1e-9 {
		t.Fatalf("component leakage sums to %v, chip model says %v", sum, l.QuadChip(70))
	}
	// Linear model at mixed temperatures: hotter components leak more.
	fp0 := chip.Lookup(0, "FPMul")
	fp1 := chip.Lookup(1, "FPMul")
	temps[fp0] = 95
	temps[fp1] = 55
	l.PerComponent(chip, temps, ModelLinear, out)
	if out[fp0] <= out[fp1] {
		t.Fatal("hotter component must leak more")
	}
}

func TestPerComponentPanics(t *testing.T) {
	chip := floorplan.NewQuad()
	l := DefaultLeakage()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on short output")
		}
	}()
	l.PerComponent(chip, make([]float64, 100), ModelQuad, make([]float64, 3))
}

func TestChipTotalEq8(t *testing.T) {
	got := ChipTotal([]float64{10, 20, 30}, 2.5, 14.4)
	if got != 76.9 {
		t.Fatalf("ChipTotal = %v, want 76.9", got)
	}
	if ChipTotal(nil, 0, 0) != 0 {
		t.Fatal("empty total should be 0")
	}
}
