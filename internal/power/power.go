// Package power implements the CMP power models of §III-B: per-core DVFS
// voltage/frequency levels with the Eq. (7) dynamic-power scaling law, the
// Eq. (6) linear-in-temperature leakage model used online by the controller,
// the second-order polynomial leakage model ([21], calibrated to the SCC
// measurements) used as simulation ground truth, and the Eq. (8) chip power
// aggregation over cores, TECs, and fan.
package power

import (
	"fmt"

	"tecfan/internal/floorplan"
)

// DVFSLevel is one voltage/frequency operating point.
type DVFSLevel struct {
	Freq float64 // GHz
	Vdd  float64 // V
}

// DVFSTable is the ordered set of per-core operating points, slowest first.
type DVFSTable struct {
	Levels []DVFSLevel
}

// SCCTable returns the 6-level table used for the 16-core SCC-like target
// (M = 6 in the paper's complexity analysis).
func SCCTable() *DVFSTable {
	return &DVFSTable{Levels: []DVFSLevel{
		{Freq: 1.0, Vdd: 0.75},
		{Freq: 1.2, Vdd: 0.80},
		{Freq: 1.4, Vdd: 0.85},
		{Freq: 1.6, Vdd: 0.92},
		{Freq: 1.8, Vdd: 1.00},
		{Freq: 2.0, Vdd: 1.10},
	}}
}

// I7Table returns the 4-core Core-i7-3770K-class table used in the §V-E
// comparison setup (nominal 3.5 GHz, turbo excluded, EIST-style points).
func I7Table() *DVFSTable {
	return &DVFSTable{Levels: []DVFSLevel{
		{Freq: 1.6, Vdd: 0.85},
		{Freq: 2.1, Vdd: 0.92},
		{Freq: 2.6, Vdd: 0.99},
		{Freq: 3.0, Vdd: 1.05},
		{Freq: 3.5, Vdd: 1.12},
	}}
}

// Num returns the number of levels.
func (t *DVFSTable) Num() int { return len(t.Levels) }

// Max returns the index of the highest-frequency level.
func (t *DVFSTable) Max() int { return len(t.Levels) - 1 }

// Clamp limits a level index to the valid range.
func (t *DVFSTable) Clamp(l int) int {
	if l < 0 {
		return 0
	}
	if l >= len(t.Levels) {
		return len(t.Levels) - 1
	}
	return l
}

// check panics on an out-of-range level.
func (t *DVFSTable) check(l int) {
	if l < 0 || l >= len(t.Levels) {
		panic(fmt.Sprintf("power: DVFS level %d out of range [0,%d)", l, len(t.Levels)))
	}
}

// DynScale returns the Eq. (7) dynamic-power multiplier for moving a core
// from level `from` to level `to`: (F_to/F_from)·(V_to/V_from)².
func (t *DVFSTable) DynScale(from, to int) float64 {
	t.check(from)
	t.check(to)
	f := t.Levels[to].Freq / t.Levels[from].Freq
	v := t.Levels[to].Vdd / t.Levels[from].Vdd
	return f * v * v
}

// FreqRatio returns F_to/F_from, the Eq. (11) IPS multiplier.
func (t *DVFSTable) FreqRatio(from, to int) float64 {
	t.check(from)
	t.check(to)
	return t.Levels[to].Freq / t.Levels[from].Freq
}

// ScaleFromMax returns the dynamic-power multiplier relative to the top
// level — the factor applied to trace power sampled at max DVFS.
func (t *DVFSTable) ScaleFromMax(level int) float64 { return t.DynScale(t.Max(), level) }

// Leakage models chip leakage power. The linear form is the controller's
// Eq. (6); the quadratic form is the ground-truth polynomial of [21], both
// calibrated to the same SCC measurement points. Per-component leakage is
// the chip total scaled by area fraction and evaluated at the component's
// own temperature, exactly as Eq. (6) prescribes.
type Leakage struct {
	// Quadratic ground truth: P(T) = C0 + C1·T + C2·T², T in °C.
	C0, C1, C2 float64
	// Linear online model: P(T) = TDPLeak + Alpha·(T − TTDP).
	TDPLeak float64 // W at TTDP
	Alpha   float64 // W/K
	TTDP    float64 // °C
}

// DefaultLeakage returns the SCC-calibrated model: 10 W at 45 °C, 16 W at
// 70 °C, 24 W at the 90 °C TDP point; the linear model is the tangent of the
// quadratic at TTDP.
func DefaultLeakage() Leakage {
	l := Leakage{
		C0: 10.4, C1: -0.168889, C2: 0.00355556,
		TTDP: 90,
	}
	l.TDPLeak = l.QuadChip(l.TTDP)
	l.Alpha = l.C1 + 2*l.C2*l.TTDP
	return l
}

// Scaled returns a copy of the model with every power coefficient
// multiplied by factor — e.g. chipArea/referenceArea when applying the
// SCC-calibrated totals to a smaller die.
func (l Leakage) Scaled(factor float64) Leakage {
	l.C0 *= factor
	l.C1 *= factor
	l.C2 *= factor
	l.TDPLeak *= factor
	l.Alpha *= factor
	return l
}

// QuadChip returns total chip leakage (W) at chip temperature tC using the
// quadratic ground-truth model. Clamped non-negative.
func (l Leakage) QuadChip(tC float64) float64 {
	p := l.C0 + l.C1*tC + l.C2*tC*tC
	if p < 0 {
		return 0
	}
	return p
}

// LinearChip returns total chip leakage (W) at tC using the Eq. (6) linear
// model. Clamped non-negative.
func (l Leakage) LinearChip(tC float64) float64 {
	p := l.TDPLeak + l.Alpha*(tC-l.TTDP)
	if p < 0 {
		return 0
	}
	return p
}

// Model selects the leakage evaluation used.
type Model int

const (
	ModelLinear Model = iota // controller side (Eq. 6)
	ModelQuad                // simulation ground truth ([21])
)

// PerComponent writes per-component leakage power into out (len =
// #components) given per-node temperatures (die nodes first). Each component
// contributes the chip-level curve scaled by its area fraction, evaluated at
// its own previous-interval temperature.
func (l Leakage) PerComponent(chip *floorplan.Chip, temps []float64, m Model, out []float64) {
	if len(out) != len(chip.Components) {
		panic(fmt.Sprintf("power: out length %d, want %d", len(out), len(chip.Components)))
	}
	area := chip.Area()
	for i, c := range chip.Components {
		var p float64
		switch m {
		case ModelLinear:
			p = l.LinearChip(temps[i])
		case ModelQuad:
			p = l.QuadChip(temps[i])
		default:
			panic(fmt.Sprintf("power: unknown leakage model %d", int(m)))
		}
		out[i] = p * c.Area() / area
	}
}

// ChipTotal implements Eq. (8): core power + TEC power + fan power.
func ChipTotal(corePower []float64, tecPower, fanPower float64) float64 {
	var s float64
	for _, p := range corePower {
		s += p
	}
	return s + tecPower + fanPower
}
