package server

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func shortTraces(seconds int) [][]float64 {
	full := PaperTraces()
	out := make([][]float64, len(full))
	for c := range full {
		out[c] = full[c][:seconds]
	}
	return out
}

func TestWikiTraceProperties(t *testing.T) {
	tr := WikiTrace(2400, 1.5, DefaultTraceSeed)
	if len(tr) != 2400 {
		t.Fatalf("trace length %d", len(tr))
	}
	for i, u := range tr {
		if u < 0 || u > 1 {
			t.Fatalf("sample %d = %v out of [0,1]", i, u)
		}
	}
	// Paper: mean utilization 48.6 % after the 1.5× scaling.
	m := Mean(tr)
	if math.Abs(m-0.486) > 0.02 {
		t.Fatalf("mean utilization %.3f, paper says 0.486", m)
	}
	// Deterministic.
	tr2 := WikiTrace(2400, 1.5, DefaultTraceSeed)
	for i := range tr {
		if tr[i] != tr2[i] {
			t.Fatal("trace not deterministic")
		}
	}
	// Different seeds differ.
	tr3 := WikiTrace(2400, 1.5, DefaultTraceSeed+1)
	same := true
	for i := range tr {
		if tr[i] != tr3[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("seed has no effect")
	}
}

func TestWikiTraceScaling(t *testing.T) {
	base := WikiTrace(500, 1.0, 7)
	scaled := WikiTrace(500, 1.5, 7)
	for i := range base {
		want := math.Min(base[i]*1.5, 1)
		if math.Abs(scaled[i]-want) > 1e-12 {
			t.Fatalf("scaling broken at %d: %v vs %v", i, scaled[i], want)
		}
	}
}

func TestPaperTracesShape(t *testing.T) {
	traces := PaperTraces()
	if len(traces) != 4 {
		t.Fatalf("%d traces, want 4 (one per core)", len(traces))
	}
	for c, tr := range traces {
		if len(tr) != 600 {
			t.Fatalf("core %d trace has %d samples, want 600 (10 min)", c, len(tr))
		}
	}
}

func TestCapacityQuadratic(t *testing.T) {
	p := I7Platform()
	if math.Abs(p.Capacity(p.DVFS.Max())-1) > 1e-12 {
		t.Fatalf("capacity at max = %v, want 1", p.Capacity(p.DVFS.Max()))
	}
	for l := 1; l < p.DVFS.Num(); l++ {
		if p.Capacity(l) <= p.Capacity(l-1) {
			t.Fatalf("capacity not increasing at level %d", l)
		}
	}
	// Diminishing returns: capacity at the lowest level exceeds the pure
	// frequency ratio (the SPECjbb memory-bound fit).
	fr := p.DVFS.Levels[0].Freq / p.DVFS.Levels[p.DVFS.Max()].Freq
	if p.Capacity(0) <= fr {
		t.Fatalf("capacity(0)=%.3f should beat the frequency ratio %.3f", p.Capacity(0), fr)
	}
}

func TestCorePowerModel(t *testing.T) {
	p := I7Platform()
	max := p.DVFS.Max()
	// Horvath & Skadron: linear in u between idle and busy.
	idle := p.CorePower(max, 0)
	busy := p.CorePower(max, 1)
	half := p.CorePower(max, 0.5)
	if math.Abs(half-(idle+busy)/2) > 1e-12 {
		t.Fatal("power not linear in utilization")
	}
	if busy != p.MaxCorePower() {
		t.Fatal("MaxCorePower inconsistent")
	}
	// DVFS monotone.
	for l := 1; l < p.DVFS.Num(); l++ {
		if p.CorePower(l, 0.7) <= p.CorePower(l-1, 0.7) {
			t.Fatalf("power not increasing with level at %d", l)
		}
	}
	// Static floor survives at the lowest level.
	if p.CorePower(0, 0) < p.StaticPower {
		t.Fatal("static power floor violated")
	}
}

func TestCorePowerPanics(t *testing.T) {
	p := I7Platform()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	p.CorePower(0, 1.5)
}

func TestServeStepConservation(t *testing.T) {
	p := I7Platform()
	f := func(d, b float64, lvl uint8) bool {
		d = math.Mod(math.Abs(d), 1)
		b = math.Mod(math.Abs(b), 2)
		l := int(lvl) % p.DVFS.Num()
		served, nb := p.ServeStep(l, d, b, 1)
		// Work conservation and capacity limit.
		if math.Abs((served+nb)-(d+b)) > 1e-12 {
			return false
		}
		return served <= p.Capacity(l)+1e-12 && served >= 0 && nb >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPredictFastMatchesExact(t *testing.T) {
	m := NewMachine()
	dvfs := []int{4, 2, 0, 3}
	util := []float64{0.9, 0.5, 0.2, 0.7}
	banks := []bool{true, false, true, false}
	exact, err := m.PredictSteady(dvfs, util, banks, 2)
	if err != nil {
		t.Fatal(err)
	}
	fast, err := m.PredictSteadyFast(dvfs, util, banks, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := range exact {
		if math.Abs(exact[i]-fast[i]) > 0.05 {
			t.Fatalf("superposition breaks at node %d: %.4f vs %.4f", i, fast[i], exact[i])
		}
	}
}

func TestSearchPowerApproximation(t *testing.T) {
	m := NewMachine()
	dvfs := []int{4, 4, 4, 4}
	util := []float64{0.5, 0.5, 0.5, 0.5}
	banks := []bool{true, true, false, false}
	temps, _ := m.PredictSteadyFast(dvfs, util, banks, 1)
	exact := m.ConfigPower(dvfs, util, banks, 1, temps)
	approx := m.SearchPower(dvfs, util, 2, 1)
	if math.Abs(exact-approx)/exact > 0.02 {
		t.Fatalf("search power %.2f vs exact %.2f: approximation too loose", approx, exact)
	}
}

func TestFig7Shape(t *testing.T) {
	// The §V-E headline on a shortened trace: TECfan ≪ OFTEC energy with no
	// delay; Oracle ≤ TECfan energy with some delay; Oracle-P ≈ TECfan.
	m := NewMachine()
	traces := shortTraces(90)
	run := func(p Policy) *Result {
		res, err := m.Run(traces, p, RunConfig{})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	oftec := run(OFTEC{})
	tf := run(TECfan{})
	oracle := run(NewOracle())
	oraclep := run(NewOracleP())

	if tf.Delay != 1.0 {
		t.Fatalf("TECfan degraded performance: delay %.3f", tf.Delay)
	}
	save := 1 - tf.Metrics.Energy/oftec.Metrics.Energy
	if save < 0.15 || save > 0.60 {
		t.Fatalf("TECfan saves %.0f%% vs OFTEC; paper band is ~29%%", save*100)
	}
	if oracle.Metrics.Energy > tf.Metrics.Energy {
		t.Fatal("Oracle must be at least as energy-efficient as TECfan")
	}
	if oracle.Delay <= 1.0 {
		t.Fatal("unconstrained Oracle should trade some delay for energy")
	}
	if oraclep.Delay != 1.0 {
		t.Fatalf("Oracle-P must not degrade performance: %.3f", oraclep.Delay)
	}
	// Oracle-P within a few percent of TECfan (the paper's "approximately
	// the same" claim).
	if math.Abs(oraclep.Metrics.Energy-tf.Metrics.Energy)/tf.Metrics.Energy > 0.08 {
		t.Fatalf("Oracle-P energy %.1f vs TECfan %.1f: gap too large",
			oraclep.Metrics.Energy, tf.Metrics.Energy)
	}
	// TECfan must respect the constraint essentially everywhere.
	if tf.Metrics.ViolationRatio > 0.02 {
		t.Fatalf("TECfan violation ratio %.3f", tf.Metrics.ViolationRatio)
	}
}

func TestOFTECKeepsMaxDVFS(t *testing.T) {
	m := NewMachine()
	res, err := m.Run(shortTraces(30), OFTEC{}, RunConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if res.MeanDVFS != float64(m.Platform.DVFS.Max()) {
		t.Fatalf("OFTEC moved DVFS: mean level %.2f", res.MeanDVFS)
	}
	if res.Delay != 1.0 {
		t.Fatal("OFTEC at max DVFS cannot be late")
	}
}

func TestRunValidation(t *testing.T) {
	m := NewMachine()
	if _, err := m.Run(shortTraces(30)[:2], TECfan{}, RunConfig{}); err == nil {
		t.Fatal("wrong trace count accepted")
	}
	bad := shortTraces(30)
	bad[1] = bad[1][:10]
	if _, err := m.Run(bad, TECfan{}, RunConfig{}); err == nil {
		t.Fatal("ragged traces accepted")
	}
}

func TestMeanUtilReported(t *testing.T) {
	m := NewMachine()
	res, err := m.Run(shortTraces(120), OFTEC{}, RunConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.MeanUtil-0.486) > 0.06 {
		t.Fatalf("reported mean util %.3f far from the paper's 0.486", res.MeanUtil)
	}
	if len(res.FanLevels) != m.Fan.NumLevels() {
		t.Fatal("fan histogram wrong length")
	}
}

func TestEnumBanks(t *testing.T) {
	bs := enumBanks(3)
	if len(bs) != 8 {
		t.Fatalf("enumBanks(3) = %d entries", len(bs))
	}
	seen := map[int]bool{}
	for _, b := range bs {
		seen[banksMask(b)] = true
	}
	if len(seen) != 8 {
		t.Fatal("duplicate bank vectors")
	}
	if countOn(bs[7]) != 3 && countOn(bs[len(bs)-1]) != 3 {
		t.Fatal("countOn broken")
	}
}

func TestTraceIORoundTrip(t *testing.T) {
	traces := shortTraces(50)
	var buf bytes.Buffer
	if err := WriteTraces(&buf, traces); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTraces(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(traces) {
		t.Fatalf("%d cores after round trip", len(got))
	}
	for c := range traces {
		if len(got[c]) != len(traces[c]) {
			t.Fatalf("core %d length %d", c, len(got[c]))
		}
		for i := range traces[c] {
			if math.Abs(got[c][i]-traces[c][i]) > 1e-6 {
				t.Fatalf("core %d sample %d: %v vs %v", c, i, got[c][i], traces[c][i])
			}
		}
	}
}

func TestTraceIOErrors(t *testing.T) {
	if err := WriteTraces(&bytes.Buffer{}, nil); err == nil {
		t.Fatal("empty trace set accepted")
	}
	ragged := [][]float64{{0.5, 0.5}, {0.5}}
	if err := WriteTraces(&bytes.Buffer{}, ragged); err == nil {
		t.Fatal("ragged traces accepted")
	}
	if _, err := ReadTraces(strings.NewReader("a,b\n")); err == nil {
		t.Fatal("header-only CSV accepted")
	}
	if _, err := ReadTraces(strings.NewReader("u\nnope\n")); err == nil {
		t.Fatal("non-numeric value accepted")
	}
	if _, err := ReadTraces(strings.NewReader("u\n1.5\n")); err == nil {
		t.Fatal("out-of-range utilization accepted")
	}
	if _, err := ReadTraces(strings.NewReader("")); err == nil {
		t.Fatal("empty input accepted")
	}
}

func TestReadTracesDrivesRun(t *testing.T) {
	// End-to-end: write, read back, run a policy on the decoded traces.
	var buf bytes.Buffer
	if err := WriteTraces(&buf, shortTraces(30)); err != nil {
		t.Fatal(err)
	}
	traces, err := ReadTraces(&buf)
	if err != nil {
		t.Fatal(err)
	}
	m := NewMachine()
	res, err := m.Run(traces, TECfan{}, RunConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics.Energy <= 0 {
		t.Fatal("no energy recorded")
	}
}

func TestPIDFanControlsTemperature(t *testing.T) {
	m := NewMachine()
	res, err := m.Run(shortTraces(120), &PIDFan{}, RunConfig{})
	if err != nil {
		t.Fatal(err)
	}
	// The firmware baseline must keep the chip near but below the
	// threshold without DVFS or TECs.
	if res.Metrics.ViolationRatio > 0.10 {
		t.Fatalf("PID fan violates %.3f of the time", res.Metrics.ViolationRatio)
	}
	if res.MeanDVFS != float64(m.Platform.DVFS.Max()) {
		t.Fatalf("PID fan moved DVFS: %.2f", res.MeanDVFS)
	}
	if res.Delay != 1 {
		t.Fatal("PID fan at max DVFS cannot be late")
	}
	// It must actually modulate the fan (not pin one level).
	moved := 0
	for _, n := range res.FanLevels {
		if n > 0 {
			moved++
		}
	}
	if moved < 2 {
		t.Fatalf("PID fan used %d levels; expected modulation", moved)
	}
	// And it must burn at least as much energy as TECfan (no TEC, no DVFS).
	tf, err := m.Run(shortTraces(120), TECfan{}, RunConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics.Energy <= tf.Metrics.Energy {
		t.Fatalf("PID fan energy %.1f not above TECfan %.1f", res.Metrics.Energy, tf.Metrics.Energy)
	}
}

func TestBasisCachedAcrossCalls(t *testing.T) {
	m := NewMachine()
	banks := []bool{true, false, false, true}
	b1, err := m.Basis(banks, 2)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := m.Basis(banks, 2)
	if err != nil {
		t.Fatal(err)
	}
	if b1 != b2 {
		t.Fatal("basis not cached for identical (banks, fan)")
	}
	b3, err := m.Basis(banks, 3)
	if err != nil {
		t.Fatal(err)
	}
	if b3 == b1 {
		t.Fatal("distinct fan levels share a basis")
	}
	// Superposition sanity: zero utilization at min DVFS is cooler than
	// full utilization at max DVFS under the same basis.
	cold, _ := m.PredictSteadyFast([]int{0, 0, 0, 0}, []float64{0, 0, 0, 0}, banks, 2)
	hot, _ := m.PredictSteadyFast([]int{4, 4, 4, 4}, []float64{1, 1, 1, 1}, banks, 2)
	_, cp := m.NW.PeakDie(cold)
	_, hp := m.NW.PeakDie(hot)
	if hp <= cp {
		t.Fatalf("hot prediction %.2f not above cold %.2f", hp, cp)
	}
}

func TestRunThresholdOverride(t *testing.T) {
	m := NewMachine()
	tight, err := m.Run(shortTraces(40), TECfan{}, RunConfig{Threshold: 70})
	if err != nil {
		t.Fatal(err)
	}
	loose, err := m.Run(shortTraces(40), TECfan{}, RunConfig{Threshold: 110})
	if err != nil {
		t.Fatal(err)
	}
	// A tighter constraint forces more cooling effort and yields a lower
	// peak; with demand-following DVFS it cannot yield a hotter chip.
	if tight.Metrics.PeakTemp > loose.Metrics.PeakTemp+0.5 {
		t.Fatalf("tight threshold ran hotter: %.2f vs %.2f",
			tight.Metrics.PeakTemp, loose.Metrics.PeakTemp)
	}
	if tight.Metrics.AvgPower < loose.Metrics.AvgPower-3 {
		t.Fatalf("tight threshold somehow used far less power: %.2f vs %.2f",
			tight.Metrics.AvgPower, loose.Metrics.AvgPower)
	}
}
