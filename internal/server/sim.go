package server

import (
	"context"
	"fmt"
	"math"

	"tecfan/internal/fan"
	"tecfan/internal/floorplan"
	"tecfan/internal/perf"
	"tecfan/internal/tec"
	"tecfan/internal/thermal"
)

// State is the observable system state handed to a server policy at each
// control period: previous-interval measurements plus the pending demand.
type State struct {
	Time      float64
	Temps     []float64 // thermal node temperatures, °C
	DVFS      []int     // current per-core levels
	Banks     []bool    // per-core TEC bank state
	FanLevel  int
	Demand    []float64 // predicted demand per core for the next period (work/s)
	Backlog   []float64 // queued work per core (max-capacity seconds)
	Threshold float64
}

// Decision is a policy's actuator request for the next period.
type Decision struct {
	DVFS     []int
	Banks    []bool
	FanLevel int
}

// Policy is a server-side controller evaluated in the §V-E comparison.
type Policy interface {
	Name() string
	Decide(st *State, m *Machine) Decision
}

// SensorModel transforms each State before a policy sees it — the server
// mirror of the co-simulation's fault-injection seam. The state's slices
// are private copies, so mutation cannot corrupt the run.
type SensorModel interface {
	Observe(st *State)
	Reset()
}

// ActuatorModel intercepts policy decisions before they reach the platform:
// cur is the currently applied configuration, dec may be mutated in place
// (a nil slice drops that request).
type ActuatorModel interface {
	Filter(now float64, cur Decision, dec *Decision)
	Reset()
}

// Machine bundles the §V-E platform: quad chip, thermal network, TEC banks,
// fan, and the utilization power model. It also exposes the model-based
// predictions policies use (steady-state temperature and power per
// configuration).
type Machine struct {
	Platform *Platform
	Chip     *floorplan.Chip
	Fan      *fan.Model
	NW       *thermal.Network
	TECs     []tec.Placement
	// Threshold is T_th for the server experiments.
	Threshold float64

	coreComps [][]int
	tileArea  float64
	basisMap  map[int]*steadyBasis
}

// steadyBasis exploits the linearity of the steady thermal system for a
// fixed (TEC banks, fan level) pair: T(P) = base + Σ_c P_c·resp_c, where
// base absorbs the ambient and TEC constant terms and resp_c is the
// response to 1 W spread over core c. The exhaustive Oracle/OFTEC searches
// evaluate tens of thousands of configurations per period; with the basis
// each evaluation is a few hundred flops instead of a linear solve.
type steadyBasis struct {
	base []float64
	resp [][]float64 // per core
}

// NewMachine assembles the §V-E machine.
func NewMachine() *Machine {
	chip := floorplan.NewQuad()
	fm := fan.DynatronR16()
	m := &Machine{
		Platform:  I7Platform(),
		Chip:      chip,
		Fan:       fm,
		NW:        thermal.NewNetwork(chip, fm, thermal.DefaultParams()),
		TECs:      tec.Array(chip, tec.DefaultDevice()),
		Threshold: 100,
		tileArea:  floorplan.TileW * floorplan.TileH,
	}
	m.coreComps = make([][]int, chip.NumCores())
	for c := 0; c < chip.NumCores(); c++ {
		m.coreComps[c] = chip.CoreComponents(c)
	}
	return m
}

// componentPower spreads per-core powers uniformly (by area) over each
// core's components into out.
func (m *Machine) componentPower(corePower []float64, out []float64) {
	for i := range out {
		out[i] = 0
	}
	for c, p := range corePower {
		for _, i := range m.coreComps[c] {
			out[i] = p * m.Chip.Components[i].Area() / m.tileArea
		}
	}
}

// bankState materializes a tec.State with whole-core banks engaged.
func (m *Machine) bankState(banks []bool) *tec.State {
	st := tec.NewState(m.TECs)
	for l, pl := range m.TECs {
		if banks[pl.Core] {
			st.Set(l, true)
		}
	}
	st.Advance(1)
	return st
}

// banksMask packs a bank vector into a cache key.
func banksMask(banks []bool) int {
	mask := 0
	for c, b := range banks {
		if b {
			mask |= 1 << c
		}
	}
	return mask
}

// Basis returns (building and caching on first use) the superposition basis
// for a (banks, fan) pair.
func (m *Machine) Basis(banks []bool, fanLevel int) (*steadyBasis, error) {
	if m.basisMap == nil {
		m.basisMap = map[int]*steadyBasis{}
	}
	key := banksMask(banks)<<8 | fanLevel
	if b, ok := m.basisMap[key]; ok {
		return b, nil
	}
	st := m.bankState(banks)
	zero := make([]float64, len(m.Chip.Components))
	base, err := m.NW.Steady(zero, fanLevel, st)
	if err != nil {
		return nil, err
	}
	b := &steadyBasis{base: base, resp: make([][]float64, m.Chip.NumCores())}
	unit := make([]float64, len(m.Chip.Components))
	for c := 0; c < m.Chip.NumCores(); c++ {
		for i := range unit {
			unit[i] = 0
		}
		for _, i := range m.coreComps[c] {
			unit[i] = m.Chip.Components[i].Area() / m.tileArea
		}
		t, err := m.NW.Steady(unit, fanLevel, st)
		if err != nil {
			return nil, err
		}
		resp := make([]float64, len(t))
		for i := range t {
			resp[i] = t[i] - base[i]
		}
		b.resp[c] = resp
	}
	m.basisMap[key] = b
	return b, nil
}

// PredictSteadyFast evaluates the steady temperatures via the superposition
// basis — exact for this linear model, orders of magnitude cheaper than a
// solve. The returned slice is freshly allocated.
func (m *Machine) PredictSteadyFast(dvfs []int, util []float64, banks []bool, fanLevel int) ([]float64, error) {
	b, err := m.Basis(banks, fanLevel)
	if err != nil {
		return nil, err
	}
	t := make([]float64, len(b.base))
	m.predictInto(t, b, dvfs, util)
	return t, nil
}

// PredictSteadyInto is PredictSteadyFast writing into a caller buffer of
// NumNodes length — the zero-allocation path for exhaustive searches.
func (m *Machine) PredictSteadyInto(t []float64, dvfs []int, util []float64, banks []bool, fanLevel int) error {
	b, err := m.Basis(banks, fanLevel)
	if err != nil {
		return err
	}
	m.predictInto(t, b, dvfs, util)
	return nil
}

func (m *Machine) predictInto(t []float64, b *steadyBasis, dvfs []int, util []float64) {
	copy(t, b.base)
	for c := range dvfs {
		p := m.Platform.CorePower(dvfs[c], util[c]) + m.Platform.UncorePower/float64(len(dvfs))
		resp := b.resp[c]
		for i := range t {
			t[i] += p * resp[i]
		}
	}
}

// SearchPower is the chip-power estimate used inside exhaustive searches:
// core + uncore + fan power exactly, TEC power approximated by the Joule
// term (the α·I·Δθ component is below 1 % of a device's draw at the Δθ this
// stack sustains). Exact Eq. (9) accounting is applied in the simulation
// loop; the approximation only ranks search candidates.
func (m *Machine) SearchPower(dvfs []int, util []float64, nBanksOn, fanLevel int) float64 {
	var total float64
	for c := range dvfs {
		total += m.Platform.CorePower(dvfs[c], util[c])
	}
	total += m.Platform.UncorePower
	total += m.Fan.Power(fanLevel)
	total += m.bankJoule(nBanksOn)
	return total
}

// bankJoule returns the Joule power of n engaged banks.
func (m *Machine) bankJoule(nBanksOn int) float64 {
	if len(m.TECs) == 0 {
		return 0
	}
	dev := m.TECs[0].Device
	perBank := float64(len(m.TECs)/m.Chip.NumCores()) * dev.JouleHeat(tec.DriveCurrent)
	return float64(nBanksOn) * perBank
}

// SearchCoolingPower is the OFTEC search objective under the same TEC
// approximation.
func (m *Machine) SearchCoolingPower(nBanksOn, fanLevel int) float64 {
	return m.Fan.Power(fanLevel) + m.bankJoule(nBanksOn)
}

// PredictSteady returns the steady-state temperatures for a configuration:
// per-core DVFS levels, achieved utilizations, TEC banks, and fan level.
func (m *Machine) PredictSteady(dvfs []int, util []float64, banks []bool, fanLevel int) ([]float64, error) {
	corePower := make([]float64, m.Chip.NumCores())
	for c := range corePower {
		corePower[c] = m.Platform.CorePower(dvfs[c], util[c])
	}
	// Uncore assigned to core 0's router region is overkill; spread evenly.
	for c := range corePower {
		corePower[c] += m.Platform.UncorePower / float64(len(corePower))
	}
	comp := make([]float64, len(m.Chip.Components))
	m.componentPower(corePower, comp)
	return m.NW.Steady(comp, fanLevel, m.bankState(banks))
}

// ConfigPower returns the total chip power of a configuration given achieved
// utilizations and the temperatures (for the Eq. (9) TEC power term).
func (m *Machine) ConfigPower(dvfs []int, util []float64, banks []bool, fanLevel int, temps []float64) float64 {
	var total float64
	for c := range dvfs {
		total += m.Platform.CorePower(dvfs[c], util[c])
	}
	total += m.Platform.UncorePower
	total += m.Fan.Power(fanLevel)
	total += m.NW.TECPower(temps, m.bankState(banks))
	return total
}

// CoolingPower is the OFTEC objective: fan power plus TEC electrical power.
func (m *Machine) CoolingPower(banks []bool, fanLevel int, temps []float64) float64 {
	return m.Fan.Power(fanLevel) + m.NW.TECPower(temps, m.bankState(banks))
}

// Result aggregates a §V-E run.
type Result struct {
	Metrics perf.Metrics
	// Delay is total completion time / trace duration (1.0 = no
	// degradation): the backlog must drain after the trace ends.
	Delay float64
	// MeanUtil is the mean demanded utilization (sanity: ≈ 0.486).
	MeanUtil float64
	// MeanDVFS is the time-average level index.
	MeanDVFS float64
	// FanLevels histograms the chosen fan levels.
	FanLevels []int
}

// RunConfig parameterizes a server run.
type RunConfig struct {
	Period    float64 // control period, s (default 1)
	ThermalDT float64 // integration step, s (default 0.1)
	Threshold float64 // 0 = machine default

	// Sensors, when non-nil, corrupts every State before the policy reads
	// it (fault injection).
	Sensors SensorModel
	// Actuators, when non-nil, intercepts every policy decision before it
	// is applied (fault injection).
	Actuators ActuatorModel
}

// Run simulates the four per-core traces under a policy and returns the
// §V-E metrics. After the trace ends the run continues (at the last demand
// level zeroed) until every backlog drains, which is how execution delay
// materializes for under-provisioned policies.
func (m *Machine) Run(traces [][]float64, p Policy, rc RunConfig) (*Result, error) {
	return m.RunContext(context.Background(), traces, p, rc)
}

// RunContext is Run under a context: cancellation is observed at every
// control period (1 s of simulated time) and aborts the run with a wrapped
// context error.
func (m *Machine) RunContext(ctx context.Context, traces [][]float64, p Policy, rc RunConfig) (*Result, error) {
	nCores := m.Chip.NumCores()
	if len(traces) != nCores {
		return nil, fmt.Errorf("server: %d traces for %d cores", len(traces), nCores)
	}
	if rc.Period == 0 {
		rc.Period = 1
	}
	if rc.ThermalDT == 0 {
		rc.ThermalDT = 0.1
	}
	threshold := rc.Threshold
	if threshold == 0 {
		threshold = m.Threshold
	}
	traceLen := len(traces[0])
	for _, tr := range traces {
		if len(tr) != traceLen {
			return nil, fmt.Errorf("server: ragged traces")
		}
	}

	if rc.Sensors != nil {
		rc.Sensors.Reset()
	}
	if rc.Actuators != nil {
		rc.Actuators.Reset()
	}

	dvfs := make([]int, nCores)
	for i := range dvfs {
		dvfs[i] = m.Platform.DVFS.Max()
	}
	banks := make([]bool, nCores)
	fanLevel := 0
	temps, err := m.PredictSteady(dvfs, fill(nCores, 0.5), banks, fanLevel)
	if err != nil {
		return nil, err
	}
	tr, err := m.NW.NewTransient(fanLevel, rc.ThermalDT)
	if err != nil {
		return nil, err
	}

	backlog := make([]float64, nCores)
	util := make([]float64, nCores)
	demand := make([]float64, nCores)
	comp := make([]float64, len(m.Chip.Components))
	corePower := make([]float64, nCores)
	var acc perf.Accumulator
	var meanDemand, meanDVFS float64
	fanHist := make([]int, m.Fan.NumLevels())

	stepsPerPeriod := int(math.Round(rc.Period / rc.ThermalDT))
	maxPeriods := traceLen * 3 // drain guard
	var totalWork, servedWork float64
	period := 0
	var drainTime float64
	for ; period < maxPeriods; period++ {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("server: canceled at t=%.4gs: %w", float64(period)*rc.Period, err)
		}
		inTrace := period < traceLen
		for c := 0; c < nCores; c++ {
			if inTrace {
				demand[c] = traces[c][period]
			} else {
				demand[c] = 0
			}
		}
		if !inTrace {
			// Stop once every queue is empty.
			var pending float64
			for _, b := range backlog {
				pending += b
			}
			if pending <= 1e-12 {
				break
			}
		}

		// Policy decision with the previous-interval state. Every slice is
		// a private copy: policies (and sensor-fault models) may scribble
		// on the state without corrupting the run.
		now := float64(period) * rc.Period
		st := &State{
			Time:      now,
			Temps:     append([]float64(nil), temps...),
			DVFS:      append([]int(nil), dvfs...),
			Banks:     append([]bool(nil), banks...),
			FanLevel:  fanLevel,
			Demand:    append([]float64(nil), demand...),
			Backlog:   append([]float64(nil), backlog...),
			Threshold: threshold,
		}
		if rc.Sensors != nil {
			rc.Sensors.Observe(st)
		}
		dec := p.Decide(st, m)
		if rc.Actuators != nil {
			cur := Decision{
				DVFS:     append([]int(nil), dvfs...),
				Banks:    append([]bool(nil), banks...),
				FanLevel: fanLevel,
			}
			rc.Actuators.Filter(now, cur, &dec)
		}
		if dec.DVFS != nil {
			for c, l := range dec.DVFS {
				dvfs[c] = m.Platform.DVFS.Clamp(l)
			}
		}
		if dec.Banks != nil {
			copy(banks, dec.Banks)
		}
		if nl := m.Fan.Clamp(dec.FanLevel); nl != fanLevel {
			fanLevel = nl
			if tr, err = m.NW.NewTransient(fanLevel, rc.ThermalDT); err != nil {
				return nil, err
			}
		}
		fanHist[fanLevel]++

		// Serve the queues.
		var ipsProxy float64
		for c := 0; c < nCores; c++ {
			served, nb := m.Platform.ServeStep(dvfs[c], demand[c]*rc.Period, backlog[c], rc.Period)
			backlog[c] = nb
			capWork := m.Platform.Capacity(dvfs[c]) * rc.Period
			if capWork > 0 {
				util[c] = served / capWork
			} else {
				util[c] = 0
			}
			totalWork += demand[c] * rc.Period
			servedWork += served
			ipsProxy += served / rc.Period
			meanDemand += demand[c]
			meanDVFS += float64(dvfs[c])
		}

		// Power and thermal integration over the period.
		for c := 0; c < nCores; c++ {
			corePower[c] = m.Platform.CorePower(dvfs[c], util[c]) + m.Platform.UncorePower/float64(nCores)
		}
		m.componentPower(corePower, comp)
		ts := m.bankState(banks)
		for s := 0; s < stepsPerPeriod; s++ {
			tr.Step(temps, comp, ts)
		}
		_, peak := m.NW.PeakDie(temps)
		chipPower := m.ConfigPower(dvfs, util, banks, fanLevel, temps)
		acc.Add(rc.Period, chipPower, ipsProxy, peak, threshold)
		if !inTrace {
			drainTime += rc.Period
		}
	}

	res := &Result{
		Metrics:   acc.Snapshot(),
		Delay:     (float64(traceLen)*rc.Period + drainTime) / (float64(traceLen) * rc.Period),
		MeanUtil:  meanDemand / float64(traceLen*nCores),
		MeanDVFS:  meanDVFS / float64(period*nCores),
		FanLevels: fanHist,
	}
	_ = totalWork
	_ = servedWork
	return res, nil
}

func fill(n int, v float64) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = v
	}
	return out
}
