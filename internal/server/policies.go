package server

import (
	"math"
)

// This file implements the §V-E contenders. OFTEC and Oracle perform the
// exhaustive searches the paper describes (the paper deliberately runs
// OFTEC with exhaustive search instead of its active-set SQP so both find
// true optima; time overheads are not compared). TECfan is the paper's
// heuristic specialized to the utilization workload; Oracle-P is Oracle
// under TECfan's (zero) performance-degradation budget.

// enumBanks lists all 2^n per-core TEC bank vectors.
func enumBanks(n int) [][]bool {
	out := make([][]bool, 0, 1<<n)
	for mask := 0; mask < 1<<n; mask++ {
		b := make([]bool, n)
		for c := 0; c < n; c++ {
			b[c] = mask&(1<<c) != 0
		}
		out = append(out, b)
	}
	return out
}

func countOn(b []bool) int {
	n := 0
	for _, v := range b {
		if v {
			n++
		}
	}
	return n
}

// OFTEC minimizes cooling power (fan + TEC) subject to the temperature
// constraint, leaving DVFS untouched at maximum — the state of the art [8]
// the paper compares against. Complexity O(2^N·F) per period with per-core
// banks.
type OFTEC struct{}

// Name implements Policy.
func (OFTEC) Name() string { return "OFTEC" }

// Decide implements Policy.
func (OFTEC) Decide(st *State, m *Machine) Decision {
	n := m.Chip.NumCores()
	dvfs := make([]int, n)
	util := make([]float64, n)
	for c := 0; c < n; c++ {
		dvfs[c] = m.Platform.DVFS.Max()
		// Max DVFS ⇒ achieved utilization equals demand (capacity 1).
		util[c] = clamp01(st.Demand[c] + st.Backlog[c])
	}
	best := Decision{DVFS: dvfs, Banks: st.Banks, FanLevel: st.FanLevel}
	bestCost := math.Inf(1)
	temps := make([]float64, m.NW.NumNodes())
	for _, banks := range enumBanks(n) {
		nOn := countOn(banks)
		for f := 0; f < m.Fan.NumLevels(); f++ {
			cost := m.SearchCoolingPower(nOn, f)
			if cost >= bestCost {
				continue // cannot win; skip the thermal evaluation
			}
			if err := m.PredictSteadyInto(temps, dvfs, util, banks, f); err != nil {
				continue
			}
			if _, peak := m.NW.PeakDie(temps); peak > st.Threshold {
				continue
			}
			bestCost = cost
			best = Decision{DVFS: dvfs, Banks: banks, FanLevel: f}
		}
	}
	return best
}

// Oracle exhaustively minimizes EPI over DVFS levels, TEC banks, and fan
// level under the temperature constraint — the paper's optimal-but-
// impractical reference, O(M^N·2^N·F) per period.
type Oracle struct {
	// MinPerfRatio, when positive, additionally requires every core's
	// capacity to cover that fraction of its pending demand — the Oracle-P
	// constraint ("exactly the same performance degradation as TECfan",
	// which degrades nothing).
	MinPerfRatio float64
	name         string
}

// NewOracle returns the unconstrained Oracle.
func NewOracle() *Oracle { return &Oracle{name: "Oracle"} }

// NewOracleP returns Oracle-P: Oracle restricted to zero performance
// degradation.
func NewOracleP() *Oracle { return &Oracle{MinPerfRatio: 1, name: "Oracle-P"} }

// Name implements Policy.
func (o *Oracle) Name() string { return o.name }

// Decide implements Policy.
func (o *Oracle) Decide(st *State, m *Machine) Decision {
	n := m.Chip.NumCores()
	table := m.Platform.DVFS
	levels := table.Num()
	nConfigs := 1
	for i := 0; i < n; i++ {
		nConfigs *= levels
	}
	best := Decision{DVFS: append([]int(nil), st.DVFS...), Banks: st.Banks, FanLevel: st.FanLevel}
	bestEPI := math.Inf(1)
	dvfs := make([]int, n)
	util := make([]float64, n)
	temps := make([]float64, m.NW.NumNodes())
	for _, banks := range enumBanks(n) {
		nOn := countOn(banks)
		for f := 0; f < m.Fan.NumLevels(); f++ {
			for cfg := 0; cfg < nConfigs; cfg++ {
				x := cfg
				ok := true
				var throughput float64
				for c := 0; c < n; c++ {
					dvfs[c] = x % levels
					x /= levels
					capc := m.Platform.Capacity(dvfs[c])
					pending := st.Demand[c] + st.Backlog[c]
					if o.MinPerfRatio > 0 && capc < o.MinPerfRatio*math.Min(pending, 1) {
						ok = false
						break
					}
					served := math.Min(pending, capc)
					if capc > 0 {
						util[c] = served / capc
					} else {
						util[c] = 0
					}
					throughput += served
				}
				if !ok || throughput <= 0 {
					continue
				}
				epi := m.SearchPower(dvfs, util, nOn, f) / throughput
				if epi >= bestEPI {
					continue // cannot win; skip the thermal evaluation
				}
				if err := m.PredictSteadyInto(temps, dvfs, util, banks, f); err != nil {
					continue
				}
				if _, peak := m.NW.PeakDie(temps); peak > st.Threshold {
					continue
				}
				bestEPI = epi
				best = Decision{
					DVFS:     append([]int(nil), dvfs...),
					Banks:    append([]bool(nil), banks...),
					FanLevel: f,
				}
			}
		}
	}
	return best
}

// TECfan is the paper's heuristic specialized to the server workload. The
// lower level follows the §III-D structure — hot iterations engage TEC banks
// before throttling, cool iterations restore capacity headroom before
// shedding TEC power — with DVFS selection driven by estimated EPI under the
// no-degradation rule the paper reports ("TECfan can select appropriate DVFS
// levels ... without degrading the performance"): a core's capacity never
// drops below its pending demand. The fan moves at most one level per
// period, reflecting its slow actuation.
type TECfan struct {
	// Margin is the capacity headroom kept above demand (fraction).
	Margin float64
}

// Name implements Policy.
func (TECfan) Name() string { return "TECfan" }

// Decide implements Policy.
func (tf TECfan) Decide(st *State, m *Machine) Decision {
	n := m.Chip.NumCores()
	table := m.Platform.DVFS
	margin := tf.Margin
	if margin == 0 {
		margin = 0.05
	}
	// Demand-following DVFS: the lowest level whose capacity covers the
	// pending work plus margin (performance priority: never degrade).
	dvfs := make([]int, n)
	util := make([]float64, n)
	for c := 0; c < n; c++ {
		pending := clamp01(st.Demand[c] + st.Backlog[c])
		need := math.Min(pending*(1+margin), 1)
		level := table.Max()
		for l := 0; l <= table.Max(); l++ {
			if m.Platform.Capacity(l) >= need {
				level = l
				break
			}
		}
		dvfs[c] = level
		capc := m.Platform.Capacity(level)
		util[c] = math.Min(pending, capc) / capc
	}

	// Cooling coordination: evaluate TEC banks exhaustively over the N
	// cores, fan restricted to ±1 of the current level — the heuristic's
	// bounded walk rather than the Oracle's full sweep.
	bestBanks := append([]bool(nil), st.Banks...)
	bestFan := st.FanLevel
	bestEPI := math.Inf(1)
	feasibleFound := false
	var throughput float64
	for c := 0; c < n; c++ {
		throughput += util[c] * m.Platform.Capacity(dvfs[c])
	}
	temps := make([]float64, m.NW.NumNodes())
	for _, banks := range enumBanks(n) {
		nOn := countOn(banks)
		for df := -1; df <= 1; df++ {
			f := m.Fan.Clamp(st.FanLevel + df)
			if err := m.PredictSteadyInto(temps, dvfs, util, banks, f); err != nil {
				continue
			}
			if _, peak := m.NW.PeakDie(temps); peak > st.Threshold {
				continue
			}
			epi := m.SearchPower(dvfs, util, nOn, f) / math.Max(throughput, 1e-9)
			if epi < bestEPI {
				bestEPI = epi
				bestBanks = append(bestBanks[:0:0], banks...)
				bestFan = f
				feasibleFound = true
			}
		}
	}
	if !feasibleFound {
		// Hot iteration fallback: all banks on, fan one step faster; if the
		// prediction still violates, throttle the hottest core one step
		// (performance priority: TECs and fan first, DVFS last).
		for i := range bestBanks {
			bestBanks[i] = true
		}
		bestFan = m.Fan.Clamp(st.FanLevel - 1)
		if err := m.PredictSteadyInto(temps, dvfs, util, bestBanks, bestFan); err == nil {
			if _, peak := m.NW.PeakDie(temps); peak > st.Threshold {
				hc := hottestCore(m, temps)
				if dvfs[hc] > 0 {
					dvfs[hc]--
				}
			}
		}
	}
	return Decision{DVFS: dvfs, Banks: bestBanks, FanLevel: bestFan}
}

// hottestCore returns the core whose components run hottest.
func hottestCore(m *Machine, temps []float64) int {
	best, bestT := 0, math.Inf(-1)
	for c := 0; c < m.Chip.NumCores(); c++ {
		if _, t := m.NW.CorePeak(temps, c); t > bestT {
			best, bestT = c, t
		}
	}
	return best
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}
