package server

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// Trace I/O: the §V-E experiments synthesize their Wikipedia-style
// utilization series, but a downstream user will want to drive the server
// simulation with measured traces. The format is one CSV row per second
// with one column per core, values in [0, 1].

// WriteTraces encodes per-core utilization series as CSV.
func WriteTraces(w io.Writer, traces [][]float64) error {
	if len(traces) == 0 {
		return fmt.Errorf("server: no traces")
	}
	n := len(traces[0])
	for _, tr := range traces {
		if len(tr) != n {
			return fmt.Errorf("server: ragged traces")
		}
	}
	cw := csv.NewWriter(w)
	header := make([]string, len(traces))
	for c := range header {
		header[c] = fmt.Sprintf("core%d_util", c)
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	row := make([]string, len(traces))
	for t := 0; t < n; t++ {
		for c := range traces {
			row[c] = strconv.FormatFloat(traces[c][t], 'f', 6, 64)
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadTraces decodes per-core utilization series from CSV (the WriteTraces
// format). Values outside [0, 1] are rejected.
func ReadTraces(r io.Reader) ([][]float64, error) {
	cr := csv.NewReader(r)
	records, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("server: reading traces: %w", err)
	}
	if len(records) < 2 {
		return nil, fmt.Errorf("server: trace CSV needs a header and at least one row")
	}
	nCores := len(records[0])
	if nCores == 0 {
		return nil, fmt.Errorf("server: empty header")
	}
	out := make([][]float64, nCores)
	for t, rec := range records[1:] {
		if len(rec) != nCores {
			return nil, fmt.Errorf("server: row %d has %d columns, want %d", t+1, len(rec), nCores)
		}
		for c, field := range rec {
			v, err := strconv.ParseFloat(field, 64)
			if err != nil {
				return nil, fmt.Errorf("server: row %d col %d: %w", t+1, c, err)
			}
			if v < 0 || v > 1 {
				return nil, fmt.Errorf("server: row %d col %d: utilization %v outside [0,1]", t+1, c, v)
			}
			out[c] = append(out[c], v)
		}
	}
	return out, nil
}
