package server

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadTraces hardens the utilization-trace parser: accepted traces are
// rectangular with all samples in [0, 1]; everything else errors without
// panicking.
func FuzzReadTraces(f *testing.F) {
	f.Add("u0,u1\n0.5,0.25\n0.75,1.0\n")
	f.Add("")
	f.Add("u\nnot-a-number\n")
	f.Add("u\n1.5\n")
	f.Add("a,b\n0.5\n")
	var ok bytes.Buffer
	if err := WriteTraces(&ok, [][]float64{{0.1, 0.2}, {0.3, 0.4}}); err != nil {
		f.Fatal(err)
	}
	f.Add(ok.String())
	f.Fuzz(func(t *testing.T, input string) {
		traces, err := ReadTraces(strings.NewReader(input))
		if err != nil {
			return
		}
		if len(traces) == 0 {
			t.Fatal("accepted input produced no traces")
		}
		n := len(traces[0])
		for _, tr := range traces {
			if len(tr) != n {
				t.Fatal("accepted ragged traces")
			}
			for _, v := range tr {
				if v < 0 || v > 1 {
					t.Fatalf("accepted out-of-range sample %v", v)
				}
			}
		}
	})
}
