// Package server implements the paper's §IV-B/§V-E comparison setup: a
// 4-core Core-i7-3770K-class CMP serving a Wikipedia-derived HTTP workload.
// Power follows the utilization model of Horvath & Skadron [34]
// (P = Pidle + (Pbusy − Pidle)·u per core, with the DVFS-dependent parts
// scaled by Eq. (7)); throughput capacity is a quadratic polynomial of
// frequency fitted after the SPECjbb results of [36]. The thermal substrate
// reuses the layered RC network over the quad floorplan, with per-core TEC
// banks (all nine devices of a core switching together) so the exhaustive
// OFTEC and Oracle searches stay tractable — the paper's own 4-core scale
// implies the same granularity (2^{NL} with NL = 36 is infeasible for
// anyone).
package server

import (
	"fmt"
	"math"

	"tecfan/internal/power"
)

// Platform holds the per-core power/performance model.
type Platform struct {
	DVFS *power.DVFSTable
	// Per-core power parameters at the maximum DVFS level (W).
	StaticPower  float64 // temperature-independent floor per core
	IdleDynPower float64 // dynamic power at u=0 (clocks, snoop)
	BusyDynPower float64 // additional dynamic power at u=1
	// Quadratic capacity fit: cap(f) ∝ PerfA·(f/fmax)² + PerfB·(f/fmax),
	// normalized so cap(fmax) = 1. Diminishing returns (PerfA < 0) reflect
	// the memory-bound tail of the SPECjbb fit.
	PerfA, PerfB float64
	// UncorePower is the chip-level constant (memory controller, PLLs), W.
	UncorePower float64
}

// I7Platform returns the calibrated Core-i7-3770K-class platform.
func I7Platform() *Platform {
	return &Platform{
		DVFS:         power.I7Table(),
		StaticPower:  2.0,
		IdleDynPower: 2.5,
		BusyDynPower: 14.0,
		PerfA:        -0.4,
		PerfB:        1.4,
		UncorePower:  6.0,
	}
}

// Capacity returns the normalized throughput capacity at a DVFS level:
// 1.0 at the top level, sublinear below it.
func (p *Platform) Capacity(level int) float64 {
	fmax := p.DVFS.Levels[p.DVFS.Max()].Freq
	x := p.DVFS.Levels[level].Freq / fmax
	norm := p.PerfA + p.PerfB // value at x = 1
	return (p.PerfA*x*x + p.PerfB*x) / norm
}

// CorePower returns one core's power at a DVFS level and *achieved*
// utilization u ∈ [0,1] (fraction of that level's capacity in use).
func (p *Platform) CorePower(level int, u float64) float64 {
	if u < 0 || u > 1+1e-9 {
		panic(fmt.Sprintf("server: utilization %v out of range", u))
	}
	s := p.DVFS.ScaleFromMax(level)
	idle := p.StaticPower + p.IdleDynPower*s
	busy := p.StaticPower + (p.IdleDynPower+p.BusyDynPower)*s
	return idle + (busy-idle)*u
}

// MaxCorePower returns the peak per-core power (top level, u = 1).
func (p *Platform) MaxCorePower() float64 {
	return p.CorePower(p.DVFS.Max(), 1)
}

// ServeStep advances one core's work queue by dt seconds: demand is the
// arriving work (in max-capacity seconds), backlog the queued work. It
// returns the work served and the new backlog.
func (p *Platform) ServeStep(level int, demand, backlog, dt float64) (served, newBacklog float64) {
	capWork := p.Capacity(level) * dt
	pending := backlog + demand
	served = math.Min(pending, capWork)
	return served, pending - served
}
