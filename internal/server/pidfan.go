package server

// PIDFan is the industry-practice baseline the paper's introduction
// describes: "processor cooling relies on cooling fans that are driven by
// motors with feedback controllers, such that the fan speed is adjusted by
// on-board firmware". It runs DVFS at maximum and TECs off, and closes a
// discrete PID loop from the peak die temperature to the fan level. It
// slots into the §V-E comparison as the no-TEC, no-DVFS reference that
// OFTEC itself improves on.
type PIDFan struct {
	// Target is the temperature setpoint (°C); 0 means threshold − margin.
	Target float64
	// Margin below the threshold used when Target is 0.
	Margin float64
	// Gains of the discrete PID (per-period). Zero values take defaults.
	Kp, Ki, Kd float64

	integ   float64
	prevErr float64
	prevSet bool
}

// Name implements Policy.
func (p *PIDFan) Name() string { return "PID-fan" }

// Decide implements Policy.
func (p *PIDFan) Decide(st *State, m *Machine) Decision {
	kp, ki, kd := p.Kp, p.Ki, p.Kd
	if kp == 0 {
		kp = 0.4
	}
	if ki == 0 {
		ki = 0.06
	}
	if kd == 0 {
		kd = 0.2
	}
	target := p.Target
	if target == 0 {
		margin := p.Margin
		if margin == 0 {
			margin = 4
		}
		target = st.Threshold - margin
	}

	var peak float64 = -1e9
	for c := 0; c < m.Chip.NumCores(); c++ {
		if _, t := m.NW.CorePeak(st.Temps, c); t > peak {
			peak = t
		}
	}
	// Positive error = too hot = need a faster fan (lower level index).
	err := peak - target
	p.integ += err
	// Anti-windup: the actuator has 5 levels; clamp the integral to the
	// range it can act on.
	if p.integ > 40 {
		p.integ = 40
	}
	if p.integ < -40 {
		p.integ = -40
	}
	deriv := 0.0
	if p.prevSet {
		deriv = err - p.prevErr
	}
	p.prevErr, p.prevSet = err, true

	u := kp*err + ki*p.integ + kd*deriv
	// Map the control signal onto a level delta: u > 0.5 speeds up one
	// level, u < −0.5 slows down one level (firmware moves one step at a
	// time).
	level := st.FanLevel
	switch {
	case u > 0.5:
		level--
	case u < -0.5:
		level++
	}
	level = m.Fan.Clamp(level)

	n := m.Chip.NumCores()
	dvfs := make([]int, n)
	for c := range dvfs {
		dvfs[c] = m.Platform.DVFS.Max()
	}
	return Decision{DVFS: dvfs, Banks: make([]bool, n), FanLevel: level}
}
