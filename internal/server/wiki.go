package server

import "math"

// The Wikipedia HTTP trace substitution: the paper cuts the first 40 minutes
// of a 7-day Wikipedia access trace [33], splits it into four 10-minute
// pieces (one per core), and scales utilization by 1.5× so the TECs see
// enough load, landing at a 48.6 % mean CPU utilization. We synthesize a
// deterministic series with the same structure: a slow diurnal-style drift,
// request-rate noise, and occasional bursts.

// WikiTrace generates per-second utilization samples for the given duration.
// scale is the paper's 1.5 utilization multiplier; samples clamp to [0, 1].
func WikiTrace(seconds int, scale float64, seed uint64) []float64 {
	out := make([]float64, seconds)
	for i := range out {
		t := float64(i)
		// Slow drift across the 40-minute window (a fragment of the
		// diurnal wave) plus two shorter request-rate oscillations.
		u := 0.32 +
			0.055*math.Sin(2*math.Pi*t/2400+1.1) +
			0.05*math.Sin(2*math.Pi*t/311+0.4) +
			0.035*math.Sin(2*math.Pi*t/73+2.2)
		// Deterministic per-second noise.
		h := splitmix(seed + uint64(i)*0x9e3779b97f4a7c15)
		u += 0.05 * (2*float64(h>>11)/float64(1<<53) - 1)
		// Sparse bursts (~2 % of seconds) emulating hot requests.
		if h%53 == 0 {
			u += 0.25
		}
		u *= scale
		if u < 0 {
			u = 0
		}
		if u > 1 {
			u = 1
		}
		out[i] = u
	}
	return out
}

// splitmix is SplitMix64.
func splitmix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Mean returns the arithmetic mean of a series.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// DefaultTraceSeed reproduces the paper's evaluation series.
const DefaultTraceSeed = 0x11A5C0DE

// PaperTraces returns the four 10-minute per-core traces of §V-E: the first
// 40 minutes of the (synthesized) trace, split into 10-minute pieces, with
// the 1.5× utilization scaling. The combined mean is ≈ 48.6 %.
func PaperTraces() [][]float64 {
	full := WikiTrace(2400, 1.5, DefaultTraceSeed)
	out := make([][]float64, 4)
	for c := 0; c < 4; c++ {
		out[c] = full[c*600 : (c+1)*600]
	}
	return out
}
