package core

import (
	"bytes"
	"encoding/gob"
	"fmt"

	"tecfan/internal/sim"
)

// This file implements sim.StateCodec for the two stateful controllers, so a
// checkpointed run resumes with the exact controller memory it was
// interrupted with. Encoding is gob, not JSON: fault scenarios legitimately
// put NaN into retained readings (a dead sensor's lastRaw), and gob
// round-trips every float64 bit pattern exactly — the property the
// bitwise-identical-resume guarantee rests on.

var (
	_ sim.StateCodec = (*Controller)(nil)
	_ sim.StateCodec = (*FT)(nil)
)

// controllerState is the serialized form of Controller's mutable state. The
// configuration fields the FT layer drives at runtime (Disabled, Margin) ride
// along; for a plain Controller they round-trip the configured values.
type controllerState struct {
	LastObs  *sim.Observation
	Disabled []bool
	Margin   float64
}

func (c *Controller) captureState() controllerState {
	st := controllerState{Disabled: c.Disabled, Margin: c.Margin}
	if c.haveObs {
		// The snapshot shares the live buffers; gob serializes them before
		// the next Control call can overwrite anything.
		o := c.lastObs
		st.LastObs = &o
	}
	return st
}

func (c *Controller) restoreState(st controllerState) error {
	if st.Disabled != nil && len(st.Disabled) != len(c.Est.Placements) {
		return fmt.Errorf("core: state disables %d devices, controller has %d",
			len(st.Disabled), len(c.Est.Placements))
	}
	if st.LastObs != nil {
		cloneObsInto(&c.lastObs, st.LastObs)
		c.haveObs = true
	} else {
		c.haveObs = false
	}
	if st.Disabled != nil {
		c.Disabled = st.Disabled
	}
	c.Margin = st.Margin
	return nil
}

// MarshalState implements sim.StateCodec.
func (c *Controller) MarshalState() ([]byte, error) {
	return gobEncode(c.captureState())
}

// UnmarshalState implements sim.StateCodec.
func (c *Controller) UnmarshalState(data []byte) error {
	var st controllerState
	if err := gobDecode(data, &st); err != nil {
		return fmt.Errorf("core: controller state: %w", err)
	}
	return c.restoreState(st)
}

// ftState is the serialized form of FT's mutable state: the persistent fault
// log, the per-sensor detector filters, the prediction chain, the actuator
// shadow, and the wrapped inner controller's state.
type ftState struct {
	Stats FTStats

	Distrust []bool
	LastRaw  []float64
	LastGood []float64
	Freeze   []int
	Jumps    []int
	ResidEW  []float64
	HaveRaw  bool

	Pred        []float64
	PredValid   bool
	Unpad       []float64
	CommonResid float64

	ExpDVFS      []int
	ExpTECOn     []bool
	ExpAmps      []float64
	HaveShadow   bool
	DVFSMismatch int
	FanMismatch  int
	TECMismatch  []int
	BankNoResp   []int
	Derated      []bool

	FanReq      int
	FanReqValid bool
	Periods     int
	FailSafe    bool

	Inner controllerState
}

// MarshalState implements sim.StateCodec.
func (f *FT) MarshalState() ([]byte, error) {
	return gobEncode(ftState{
		Stats:    f.stats,
		Distrust: f.distrust, LastRaw: f.lastRaw, LastGood: f.lastGood,
		Freeze: f.freeze, Jumps: f.jumps, ResidEW: f.residEW, HaveRaw: f.haveRaw,
		Pred: f.pred, PredValid: f.predValid, Unpad: f.unpad, CommonResid: f.commonResid,
		ExpDVFS: f.expDVFS, ExpTECOn: f.expTECOn, ExpAmps: f.expAmps,
		HaveShadow: f.haveShadow, DVFSMismatch: f.dvfsMismatch, FanMismatch: f.fanMismatch,
		TECMismatch: f.tecMismatch, BankNoResp: f.bankNoResp, Derated: f.derated,
		FanReq: f.fanReq, FanReqValid: f.fanReqValid, Periods: f.periods,
		FailSafe: f.failSafe,
		Inner:    f.Inner.captureState(),
	})
}

// UnmarshalState implements sim.StateCodec.
func (f *FT) UnmarshalState(data []byte) error {
	var st ftState
	if err := gobDecode(data, &st); err != nil {
		return fmt.Errorf("core: FT state: %w", err)
	}
	// gob omits zero-valued fields, so a snapshot taken before anything ever
	// moved decodes slices as nil; normalize against the allocated shapes.
	checkLen := func(what string, got, want int) error {
		if got != 0 && got != want {
			return fmt.Errorf("core: FT state %s has %d entries, want %d", what, got, want)
		}
		return nil
	}
	if err := checkLen("sensor", len(st.Distrust), f.nDie); err != nil {
		return err
	}
	if err := checkLen("bank", len(st.Derated), f.nCores); err != nil {
		return err
	}
	if err := checkLen("shadow", len(st.ExpDVFS), f.nCores); err != nil {
		return err
	}
	cpBool := func(dst, src []bool) {
		for i := range dst {
			dst[i] = false
		}
		copy(dst, src)
	}
	cpF := func(dst, src []float64) {
		for i := range dst {
			dst[i] = 0
		}
		copy(dst, src)
	}
	cpI := func(dst, src []int) {
		for i := range dst {
			dst[i] = 0
		}
		copy(dst, src)
	}
	f.stats = st.Stats
	cpBool(f.distrust, st.Distrust)
	cpF(f.lastRaw, st.LastRaw)
	cpF(f.lastGood, st.LastGood)
	cpI(f.freeze, st.Freeze)
	cpI(f.jumps, st.Jumps)
	cpF(f.residEW, st.ResidEW)
	f.haveRaw = st.HaveRaw
	cpF(f.pred, st.Pred)
	f.predValid = st.PredValid
	cpF(f.unpad, st.Unpad)
	f.commonResid = st.CommonResid
	f.expDVFS = st.ExpDVFS
	f.expTECOn = st.ExpTECOn
	f.expAmps = st.ExpAmps
	f.haveShadow = st.HaveShadow
	f.dvfsMismatch = st.DVFSMismatch
	f.fanMismatch = st.FanMismatch
	cpI(f.tecMismatch, st.TECMismatch)
	cpI(f.bankNoResp, st.BankNoResp)
	cpBool(f.derated, st.Derated)
	f.fanReq = st.FanReq
	f.fanReqValid = st.FanReqValid
	f.periods = st.Periods
	f.failSafe = st.FailSafe
	return f.Inner.restoreState(st.Inner)
}

func gobEncode(v any) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

func gobDecode(data []byte, v any) error {
	return gob.NewDecoder(bytes.NewReader(data)).Decode(v)
}
