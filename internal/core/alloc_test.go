package core

import (
	"testing"

	"tecfan/internal/testenv"
)

// These tests are the dynamic half of the hot-path allocation discipline
// (DESIGN.md §18): the analyzers prove the kernels clean statically, and
// AllocsPerRun proves the scratch reuse actually works at runtime.

// TestEstimateIntoZeroAllocs proves the per-candidate kernel of the
// down-hill walk is allocation-free once its caller's Estimate buffer has
// grown to size.
func TestEstimateIntoZeroAllocs(t *testing.T) {
	e := testenv.NewQuad()
	b := testenv.MiniBench(4, 3.0, 2)
	obs := obsFor(t, e, b, 100, 1)
	est := newEstimator(e)
	c := baseCandidate(e, obs)
	var r Estimate
	est.EstimateInto(&r, obs, c) // first-use growth
	allocs := testing.AllocsPerRun(100, func() {
		est.EstimateInto(&r, obs, c)
	})
	if allocs != 0 {
		t.Fatalf("EstimateInto allocates %.1f per call; candidate evaluation must be allocation-free", allocs)
	}
}

// TestControlSteadyStateZeroAllocs proves one full lower-level control
// period — candidate construction, the hot/cool iteration's trial loop,
// the decision — allocates nothing once the controller's scratch buffers
// are warm.
func TestControlSteadyStateZeroAllocs(t *testing.T) {
	e := testenv.NewQuad()
	b := testenv.MiniBench(4, 3.0, 2)
	obs := obsFor(t, e, b, 100, 1)
	est := newEstimator(e)
	ctl := NewController(est)
	for i := 0; i < 3; i++ {
		ctl.Control(obs) // warm the scratch candidates and estimates
	}
	allocs := testing.AllocsPerRun(100, func() {
		ctl.Control(obs)
	})
	if allocs != 0 {
		t.Fatalf("Control allocates %.1f per period in steady state", allocs)
	}
}

// TestSteadyPeakZeroAllocs covers the higher-level fan loop's estimator
// entry point.
func TestSteadyPeakZeroAllocs(t *testing.T) {
	e := testenv.NewQuad()
	b := testenv.MiniBench(4, 3.0, 2)
	obs := obsFor(t, e, b, 100, 1)
	est := newEstimator(e)
	c := baseCandidate(e, obs)
	est.SteadyPeak(obs, c)
	allocs := testing.AllocsPerRun(100, func() {
		est.SteadyPeak(obs, c)
	})
	if allocs != 0 {
		t.Fatalf("SteadyPeak allocates %.1f per call", allocs)
	}
}
