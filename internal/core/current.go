package core

// Variable-current TEC support (§III's alternative actuator design: "it is
// feasible to adjust the efficacy of a TEC by manipulating its current,
// [but] this method requires dedicated on-chip voltage regulators"). When a
// Controller is given CurrentLevels, the TEC knob of the down-hill walk
// moves a device one current level up or down instead of switching it
// on/off at the fixed 6 A — the ablation in internal/exp quantifies what
// that extra actuation resolution buys.

// DefaultCurrentLevels are the graded drive points of the variable-current
// mode (A). Level 0 is off; the top level is the paper's 6 A drive.
var DefaultCurrentLevels = []float64{0, 2, 4, 6}

// usingCurrents reports whether the controller runs in graded mode.
func (c *Controller) usingCurrents() bool { return len(c.CurrentLevels) > 0 }

// levelIndex returns the index of the closest configured current level.
func (c *Controller) levelIndex(amps float64) int {
	best, bestD := 0, -1.0
	for i, l := range c.CurrentLevels {
		d := l - amps
		if d < 0 {
			d = -d
		}
		if bestD < 0 || d < bestD {
			best, bestD = i, d
		}
	}
	return best
}

// tecMaxed reports whether device l has no headroom left (binary: on;
// graded: at the top current level).
func (c *Controller) tecMaxed(cand *Candidate, l int) bool {
	if c.usingCurrents() {
		return c.levelIndex(cand.TECAmps[l]) >= len(c.CurrentLevels)-1
	}
	return cand.TECOn[l]
}

// tecActive reports whether device l is drawing any power.
func (c *Controller) tecActive(cand *Candidate, l int) bool {
	if c.usingCurrents() {
		return cand.TECAmps[l] > 0
	}
	return cand.TECOn[l]
}

// raiseTEC moves device l one step toward maximum cooling.
func (c *Controller) raiseTEC(cand *Candidate, l int) {
	if c.usingCurrents() {
		i := c.levelIndex(cand.TECAmps[l])
		if i < len(c.CurrentLevels)-1 {
			cand.TECAmps[l] = c.CurrentLevels[i+1]
		}
		return
	}
	cand.TECOn[l] = true
}

// lowerTEC moves device l one step toward off.
func (c *Controller) lowerTEC(cand *Candidate, l int) {
	if c.usingCurrents() {
		i := c.levelIndex(cand.TECAmps[l])
		if i > 0 {
			cand.TECAmps[l] = c.CurrentLevels[i-1]
		}
		return
	}
	cand.TECOn[l] = false
}
