package core

import (
	"math"
	"testing"

	"tecfan/internal/fault"
	"tecfan/internal/numguard"
	"tecfan/internal/sim"
	"tecfan/internal/testenv"
)

// ftRun executes a short quad-chip run of TECfan-FT under a fault scenario
// (empty scenario = fault-free) and returns the result plus the controller's
// telemetry.
func ftRun(t *testing.T, sc fault.Scenario, hot bool, threshold float64) (*sim.Result, FTStats, error) {
	t.Helper()
	e := testenv.NewQuad()
	b := testenv.MiniBench(4, 3.0, 4)
	if hot {
		b = testenv.HotBench(4, 6.0, 4)
	}
	cfg := e.Config(b, threshold)
	// Fan readback is sampled once per boundary, so give the 4 ms run a fan
	// decision every control period — enough samples for the mismatch streak.
	cfg.FanPeriod = 0.5e-3
	// One iteration: the fault log persists across warm starts, so a second
	// iteration would begin from the already-degraded state and blur the
	// single-fault assertions below.
	cfg.MaxWarmStarts = 1
	ft := NewFT(NewEstimator(e.NW, e.DVFS, e.Leak, e.Fan, e.TECs, cfg.ControlPeriod), FTConfig{})
	if len(sc.Faults) > 0 {
		in := fault.NewInjector(sc, fault.Layout{
			Sensors:        e.NW.NumDie(),
			Cores:          e.Chip.NumCores(),
			DevicesPerCore: len(e.TECs) / e.Chip.NumCores(),
			FanLevels:      e.Fan.NumLevels(),
			MaxDVFS:        e.DVFS.Max(),
			Horizon:        b.TargetTimeMS / 1000,
		}, 11)
		sf := &fault.SimFaults{In: in}
		cfg.Sensors, cfg.Actuators = sf, sf
	}
	r, err := sim.NewRunner(cfg, ft)
	if err != nil {
		t.Fatal(err)
	}
	res, err := r.Run()
	return res, ft.Stats(), err
}

func TestFTCleanRunNoFalsePositives(t *testing.T) {
	res, st, err := ftRun(t, fault.Scenario{}, false, 95)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatal("clean run did not complete")
	}
	if st.FirstDetection >= 0 {
		t.Fatalf("clean run raised a detection at t=%v: %+v", st.FirstDetection, st)
	}
	if st.FailSafe {
		t.Fatal("clean run entered fail-safe")
	}
}

func TestFTSubstitutesDroppedSensors(t *testing.T) {
	sc := fault.Scenario{Name: "dropout", Faults: []fault.Fault{
		{Kind: fault.SensorDropout, Count: 2, StartFrac: 0.25},
	}}
	res, st, err := ftRun(t, sc, false, 95)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatal("run did not complete under sensor dropout")
	}
	if st.DistrustedSensors != 2 {
		t.Fatalf("distrusted %d sensors, want 2 (%+v)", st.DistrustedSensors, st)
	}
	if st.Substitutions == 0 {
		t.Fatal("no substituted readings despite distrusted sensors")
	}
	if st.FirstDetection < 0.25*0.004 {
		t.Fatalf("detection at t=%v predates the fault onset", st.FirstDetection)
	}
	if st.FailSafe {
		t.Fatal("two dropped sensors should not exhaust the budget")
	}
}

func TestFTDeratesFailedBank(t *testing.T) {
	sc := fault.Scenario{Name: "tec-off", Faults: []fault.Fault{
		{Kind: fault.TECFailOff, Count: 1, StartFrac: 0},
	}}
	// Deep violation (steady peak ~91 °C vs an 85 °C threshold) so the hot
	// iteration engages TECs on every core — readback then exposes the dead
	// bank. A near-threshold run only toggles a couple of devices and might
	// never command the failed core at all.
	_, st, err := ftRun(t, sc, true, 85)
	if err != nil {
		t.Fatal(err)
	}
	if st.DeratedBanks < 1 {
		t.Fatalf("failed bank was not de-rated: %+v", st)
	}
	if st.FailSafe {
		t.Fatal("one dead bank should degrade, not fail safe")
	}
}

func TestFTFailSafeOnStuckFan(t *testing.T) {
	sc := fault.Scenario{Name: "fan-stuck", Faults: []fault.Fault{
		{Kind: fault.FanStuck, StartFrac: 0.1, Param: 1e9},
	}}
	// At the stuck slowest level the steady peak (~100 °C) sits far above
	// the 92 °C threshold, so the fan loop keeps demanding a faster fan.
	_, st, err := ftRun(t, sc, true, 92)
	if err != nil {
		t.Fatal(err)
	}
	if !st.FanFailed {
		t.Fatalf("stuck fan not detected: %+v", st)
	}
	if !st.FailSafe || st.FailSafeAt < 0 {
		t.Fatalf("stuck fan must trigger fail-safe: %+v", st)
	}
}

func TestFTDisabledForcedOffInCandidates(t *testing.T) {
	e := testenv.NewQuad()
	b := testenv.HotBench(4, 5.0, 2)
	est := NewEstimator(e.NW, e.DVFS, e.Leak, e.Fan, e.TECs, 2e-3)
	ctl := NewController(est)
	obs := obsFor(t, e, b, 100, 1)
	_, peak := e.NW.PeakDie(obs.Temps)
	obs.Threshold = peak - 1 // mild violation: TECs engage, no throttling
	dec := ctl.Control(obs)
	if dec.TECOn == nil {
		t.Fatal("hot run returned no TEC request")
	}
	anyOn := false
	for _, on := range dec.TECOn {
		anyOn = anyOn || on
	}
	if !anyOn {
		t.Fatal("hot run engaged no TECs; test premise broken")
	}
	// Disable core 0's devices and re-run: none of them may engage.
	ctl = NewController(est)
	ctl.Disabled = make([]bool, len(e.TECs))
	for l, pl := range e.TECs {
		if pl.Core == 0 {
			ctl.Disabled[l] = true
		}
	}
	dec = ctl.Control(obs)
	for l, pl := range e.TECs {
		if pl.Core == 0 && dec.TECOn != nil && dec.TECOn[l] {
			t.Fatalf("disabled device %d engaged", l)
		}
	}
}

// nanTemps is a sim.NumFaultInjector that writes NaN into one node's
// temperature at a fixed step; persistent, so the retry confirms it.
type nanTemps struct{ step int }

func (n *nanTemps) CorruptPower(step int, retry bool, power []float64) bool { return false }
func (n *nanTemps) CorruptTemps(step int, retry bool, temps []float64) bool {
	if step != n.step {
		return false
	}
	temps[0] = math.NaN()
	return true
}

// EscalateNumeric must enter the sticky fail-safe on the first confirmed
// divergence and keep the first diagnosis even as later ones arrive.
func TestFTEscalateNumericUnit(t *testing.T) {
	e := testenv.NewQuad()
	ft := NewFT(NewEstimator(e.NW, e.DVFS, e.Leak, e.Fan, e.TECs, 2e-3), FTConfig{})
	v1 := numguard.Violation{Kind: numguard.KindNonFiniteTemp, Step: 9, Time: 0.9e-3, Node: 2}
	v2 := numguard.Violation{Kind: numguard.KindEnergyDrift, Step: 12, Time: 1.2e-3, Node: -1}
	ft.EscalateNumeric(v1)
	ft.EscalateNumeric(v2)
	st := ft.Stats()
	if st.NumericEscalations != 2 {
		t.Fatalf("NumericEscalations = %d, want 2", st.NumericEscalations)
	}
	if st.NumericDiagnosis != v1.String() {
		t.Fatalf("diagnosis = %q, want the first violation %q", st.NumericDiagnosis, v1.String())
	}
	if !st.FailSafe || st.FailSafeAt != v1.Time {
		t.Fatalf("fail-safe not latched at the first divergence: %+v", st)
	}
}

// End to end: a persistent NaN in the thermal state under TECfan-FT must
// finish the run in numeric fail-safe instead of returning a DivergenceError.
func TestFTCompletesUnderPersistentNumFault(t *testing.T) {
	e := testenv.NewQuad()
	b := testenv.MiniBench(4, 3.0, 4)
	cfg := e.Config(b, 95)
	cfg.MaxWarmStarts = 1
	cfg.NumFaults = &nanTemps{step: 5}
	ft := NewFT(NewEstimator(e.NW, e.DVFS, e.Leak, e.Fan, e.TECs, cfg.ControlPeriod), FTConfig{})
	r, err := sim.NewRunner(cfg, ft)
	if err != nil {
		t.Fatal(err)
	}
	res, err := r.Run()
	if err != nil {
		t.Fatalf("FT run refused instead of escalating: %v", err)
	}
	if !res.Completed {
		t.Fatal("run did not complete under escalation")
	}
	st := ft.Stats()
	if st.NumericEscalations == 0 || st.NumericDiagnosis == "" {
		t.Fatalf("no numeric escalation recorded: %+v", st)
	}
	if !st.FailSafe {
		t.Fatal("numeric escalation did not latch the fail-safe")
	}
	if res.Numeric == nil || !res.Numeric.FailSafe || res.Numeric.Diagnosis == nil {
		t.Fatalf("result health missing the fail-safe diagnosis: %+v", res.Numeric)
	}
	if res.Numeric.Diagnosis.Kind != numguard.KindNonFiniteTemp {
		t.Fatalf("diagnosis kind = %s", res.Numeric.Diagnosis.Kind)
	}
	for _, v := range res.FinalTemps {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatal("non-finite value leaked into FinalTemps")
		}
	}
}
