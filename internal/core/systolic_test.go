package core

import (
	"math"
	"testing"

	"tecfan/internal/systolic"
	"tecfan/internal/testenv"
)

func TestPaperSystolicNumbers(t *testing.T) {
	// §III-E: 18×3 = 54 eight-bit multipliers on a 200 mm² die must cost
	// less than 1.7 % extra area and power.
	c := PaperSystolic(200, 100)
	if c.Multipliers != 54 {
		t.Fatalf("multipliers = %d, want 54", c.Multipliers)
	}
	if c.AreaOverhead >= 0.017 {
		t.Fatalf("area overhead %.4f ≥ 1.7%%", c.AreaOverhead)
	}
	if c.PowerW >= 1.7 {
		t.Fatalf("systolic power %.2f W implausible", c.PowerW)
	}
	// An 8-bit multiplier is a quarter of the 16-bit area datapoint.
	wantArea := Mult16Area65nm / 4 * 54
	if math.Abs(c.AreaMM2-wantArea) > 1e-9 {
		t.Fatalf("area %.4f, want %.4f", c.AreaMM2, wantArea)
	}
	// Power uses the POWER6 FPU density.
	if math.Abs(c.PowerW-c.AreaMM2*FPUPowerDensity) > 1e-9 {
		t.Fatalf("power %.4f inconsistent with density", c.PowerW)
	}
}

func TestPaperSingleMultiplierExample(t *testing.T) {
	// The paper's intermediate checkpoint: one 16-bit multiplier on a
	// 200 mm² die is 0.03 % area and ~0.03 W.
	c := EstimateSystolic(1, 1, 16, 200, 0)
	if math.Abs(c.AreaOverhead-0.057/200) > 1e-9 {
		t.Fatalf("single multiplier overhead %.5f", c.AreaOverhead)
	}
	if c.AreaOverhead > 0.0004 {
		t.Fatalf("overhead %.5f, paper says 0.03%%", c.AreaOverhead)
	}
	if math.Abs(c.PowerW-0.057*0.56) > 1e-6 {
		t.Fatalf("power %.4f, paper says ≈0.03 W", c.PowerW)
	}
}

func TestEstimateSystolicPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	EstimateSystolic(0, 3, 8, 200, 100)
}

func TestCoreBandModel(t *testing.T) {
	e := testenv.NewQuad()
	m, err := NewCoreBandModel(e.NW, 0)
	if err != nil {
		t.Fatal(err)
	}
	if m.G.Rows != 18 {
		t.Fatalf("core sub-matrix is %d×%d", m.G.Rows, m.G.Cols)
	}
	// The premise of §III-E: the per-core conductance matrix is banded —
	// far narrower than a full 18×18 matrix.
	if m.KL >= 17 || m.KU >= 17 {
		t.Fatalf("band (%d,%d) is full-width; floorplan ordering broken", m.KL, m.KU)
	}
	if m.MACsPerEval >= 18*18 {
		t.Fatalf("MACs %d not better than dense", m.MACsPerEval)
	}
	if m.MACsPerEval <= 0 {
		t.Fatal("no MACs")
	}
	// Band mat-vec agrees with the dense sub-matrix.
	x := make([]float64, 18)
	for i := range x {
		x[i] = float64(i%5) - 2
	}
	q1 := make([]float64, 18)
	q2 := make([]float64, 18)
	m.EvalTemp(x, q1)
	m.G.MulVec(x, q2)
	for i := range q1 {
		if math.Abs(q1[i]-q2[i]) > 1e-9 {
			t.Fatalf("band and dense disagree at %d: %v vs %v", i, q1[i], q2[i])
		}
	}
}

func TestCoreBandModelAllCores(t *testing.T) {
	e := testenv.NewQuad()
	var first *CoreBandModel
	for core := 0; core < 4; core++ {
		m, err := NewCoreBandModel(e.NW, core)
		if err != nil {
			t.Fatal(err)
		}
		if first == nil {
			first = m
		} else if m.KL != first.KL || m.KU != first.KU {
			t.Fatalf("core %d band (%d,%d) differs from core 0 (%d,%d); tiles are identical",
				core, m.KL, m.KU, first.KL, first.KU)
		}
	}
}

func TestScaledEngineAgainstFloat(t *testing.T) {
	e := testenv.NewQuad()
	m, err := NewCoreBandModel(e.NW, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Temperatures around a hot operating point, expressed relative to a
	// 75 °C bias so they fit the 8-bit format.
	tAbs := make([]float64, 18)
	tRel := make([]float64, 18)
	for i := range tAbs {
		tAbs[i] = 70 + 2*float64(i%8)
		tRel[i] = tAbs[i] - 75
	}
	want := make([]float64, 18)
	m.EvalTemp(tRel, want)

	for _, q := range []systolic.Q{systolic.Q16, systolic.Q8} {
		eng, err := m.Engine(q)
		if err != nil {
			t.Fatalf("Engine(%d-bit): %v", q.Bits, err)
		}
		got := make([]float64, 18)
		st, err := eng.Eval(tRel, got)
		if err != nil {
			t.Fatal(err)
		}
		if st.Cycles != 18+st.PEs-1 {
			t.Fatalf("%d-bit: cycles %d, want %d", q.Bits, st.Cycles, 18+st.PEs-1)
		}
		// The comparison use-case of §III-E: the fixed-point result must
		// track the float result closely enough that per-component heat
		// flows keep their relative order of magnitude. Bound the absolute
		// error by the engine's analytical bound.
		bound := eng.Arr.QuantizationError(16, q.Max()) / eng.Scale
		for i := range want {
			if diff := got[i] - want[i]; diff > bound || diff < -bound {
				t.Fatalf("%d-bit row %d: %v vs %v exceeds bound %v", q.Bits, i, got[i], want[i], bound)
			}
		}
	}
}

func TestScaledEngineErrors(t *testing.T) {
	e := testenv.NewQuad()
	m, _ := NewCoreBandModel(e.NW, 0)
	eng, err := m.Engine(systolic.Q8)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Eval(make([]float64, 3), make([]float64, 18)); err == nil {
		t.Fatal("short input accepted")
	}
	if eng.Scale <= 0 {
		t.Fatalf("scale %v", eng.Scale)
	}
}

// The §III-E per-core evaluation path: a single band solve against frozen
// boundary sensors must reproduce the full-network steady solution when the
// boundary temperatures come from that solution (self-consistency), and
// track it closely when the boundary is slightly stale.
func TestBandEstimatorMatchesFullSolve(t *testing.T) {
	e := testenv.NewQuad()
	be, err := NewBandEstimator(e.NW)
	if err != nil {
		t.Fatal(err)
	}
	// Concentrated power map.
	p := make([]float64, len(e.Chip.Components))
	for core := 0; core < 4; core++ {
		for _, i := range e.Chip.CoreComponents(core) {
			c := e.Chip.Components[i]
			p[i] = 5.0 * c.Area() / 9.36
			if c.Name == "FPMul" {
				p[i] *= 3
			}
		}
	}
	full, err := e.NW.Steady(p, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	for core := 0; core < 4; core++ {
		out := make([]float64, 18)
		if _, err := be.EvalCore(core, p, full, out); err != nil {
			t.Fatal(err)
		}
		// Self-consistency: with exact boundary the band solve returns the
		// full solution restricted to the core.
		for li, gi := range e.Chip.CoreComponents(core) {
			if math.Abs(out[li]-full[gi]) > 1e-6 {
				t.Fatalf("core %d comp %d: band %.4f vs full %.4f", core, gi, out[li], full[gi])
			}
		}
		comp, peak, err := be.PeakCore(core, p, full)
		if err != nil {
			t.Fatal(err)
		}
		wantComp, wantPeak := e.NW.CorePeak(full, core)
		if comp != wantComp || math.Abs(peak-wantPeak) > 1e-6 {
			t.Fatalf("core %d peak (%d, %.3f) vs full (%d, %.3f)", core, comp, peak, wantComp, wantPeak)
		}
	}
	// Stale boundary: perturb the sensor field by ±0.5 °C; the per-core
	// prediction error stays the same order (bounded boundary sensitivity).
	stale := append([]float64(nil), full...)
	for i := range stale {
		if i%2 == 0 {
			stale[i] += 0.5
		} else {
			stale[i] -= 0.5
		}
	}
	out := make([]float64, 18)
	if _, err := be.EvalCore(1, p, stale, out); err != nil {
		t.Fatal(err)
	}
	for li, gi := range e.Chip.CoreComponents(1) {
		if d := math.Abs(out[li] - full[gi]); d > 1.0 {
			t.Fatalf("stale boundary blew up component %d by %.2f °C", gi, d)
		}
	}
}

func TestBandEstimatorShapeError(t *testing.T) {
	e := testenv.NewQuad()
	be, err := NewBandEstimator(e.NW)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := be.EvalCore(0, make([]float64, len(e.Chip.Components)), make([]float64, e.NW.NumNodes()), make([]float64, 3)); err == nil {
		t.Fatal("short output accepted")
	}
}
