package core

import (
	"fmt"
	"math"

	"tecfan/internal/linalg"
	"tecfan/internal/systolic"
	"tecfan/internal/thermal"
)

// §III-E hardware-cost model: the temperature estimation of Eq. (1)/(5) is
// realized as a band-matrix systolic array of fixed-point multipliers that
// evaluates one core per cycle. This file reproduces the paper's cost
// arithmetic and verifies its structural premise — that the per-core thermal
// conductance matrix is a band matrix.

// Published reference numbers used by the paper's estimate.
const (
	// Mult16Area65nm is the area of a 16-bit fixed-point multiplier in
	// 65 nm, from Bitirgen et al. [26], mm².
	Mult16Area65nm = 0.057
	// FPUPowerDensity is the IBM POWER6 FPU power density at nominal
	// voltage/frequency [27], W/mm².
	FPUPowerDensity = 0.56
)

// SystolicCost is the area/power bill of the temperature-evaluation array.
type SystolicCost struct {
	M, K        int     // components per core, thermal-impact neighbours
	Bits        int     // multiplier width
	Multipliers int     // M × K
	AreaMM2     float64 // total multiplier area
	PowerW      float64 // at 100 % utilization
	// Overheads relative to the chip.
	AreaOverhead  float64
	PowerOverhead float64
}

// EstimateSystolic prices an M×K array of `bits`-wide fixed-point
// multipliers against a chip of the given area (mm²) and power (W),
// following §III-E: multiplier area scales quadratically with word width
// from the published 16-bit datapoint.
func EstimateSystolic(m, k, bits int, chipAreaMM2, chipPowerW float64) SystolicCost {
	if m <= 0 || k <= 0 || bits <= 0 {
		panic(fmt.Sprintf("core: invalid systolic shape M=%d K=%d bits=%d", m, k, bits))
	}
	scale := float64(bits) / 16.0
	area := Mult16Area65nm * scale * scale * float64(m*k)
	powerW := area * FPUPowerDensity
	c := SystolicCost{
		M: m, K: k, Bits: bits,
		Multipliers: m * k,
		AreaMM2:     area,
		PowerW:      powerW,
	}
	if chipAreaMM2 > 0 {
		c.AreaOverhead = area / chipAreaMM2
	}
	if chipPowerW > 0 {
		c.PowerOverhead = powerW / chipPowerW
	}
	return c
}

// PaperSystolic returns the paper's own configuration: M=18 components, K=3
// thermal-impact neighbours, 8-bit encoding — 54 multipliers, which §III-E
// bounds at "less than 1.7% extra area and power".
func PaperSystolic(chipAreaMM2, chipPowerW float64) SystolicCost {
	return EstimateSystolic(18, 3, 8, chipAreaMM2, chipPowerW)
}

// CoreBandModel extracts one core's die-only conductance sub-matrix from the
// thermal network and reports its band structure — the paper's premise that
// "thermal impact only takes place on adjacent components, so Ĝ is by
// nature a band matrix" once components are laid out in floorplan order.
type CoreBandModel struct {
	Core        int
	G           *linalg.Dense  // M×M sub-matrix (die nodes of the core)
	Band        *linalg.Banded // band view after bandwidth detection
	KL, KU      int
	MACsPerEval int // multiply-accumulates per temperature evaluation
}

// NewCoreBandModel builds the per-core band model from a thermal network.
// Couplings to other layers (spreader) and other cores appear only on the
// diagonal (as ground legs), so the sub-matrix retains the full vertical
// path while staying banded laterally.
func NewCoreBandModel(nw *thermal.Network, coreIdx int) (*CoreBandModel, error) {
	comps := nw.Chip.CoreComponents(coreIdx)
	m := len(comps)
	full := nw.AssembleG(0)
	sub := linalg.NewDense(m, m)
	for li, gi := range comps {
		for lj, gj := range comps {
			sub.Set(li, lj, full.At(gi, gj))
		}
	}
	kl, ku := linalg.Bandwidth(sub, 0)
	band, err := linalg.BandedFromDense(sub, kl, ku, 0)
	if err != nil {
		return nil, fmt.Errorf("core: extracting band model: %w", err)
	}
	return &CoreBandModel{
		Core:        coreIdx,
		G:           sub,
		Band:        band,
		KL:          kl,
		KU:          ku,
		MACsPerEval: band.MACCount(),
	}, nil
}

// EvalTemp performs the band mat-vec q = G·T the systolic array computes; it
// exists so tests can check the band view agrees with the dense sub-matrix.
func (m *CoreBandModel) EvalTemp(t, q []float64) {
	m.Band.MulVec(t, q)
}

// ScaledEngine wraps a fixed-point systolic array over a core's conductance
// matrix. Conductances (tens of mW/K) are far below the integer range of
// the paper's 8-bit encoding, so the hardware stores them pre-scaled; the
// engine records the factor and undoes it on the way out. Temperatures are
// evaluated relative to a caller-chosen bias (e.g. ambient) so they too fit
// the narrow format — §III-E's "8-bit encoding is sufficient for
// temperature and energy comparison" relies on exactly these two
// normalizations.
type ScaledEngine struct {
	Arr   *systolic.Array
	Scale float64 // factor applied to the stored conductances
}

// Engine builds the fixed-point evaluation engine for this core's band
// model in the given format.
func (m *CoreBandModel) Engine(q systolic.Q) (*ScaledEngine, error) {
	var maxAbs float64
	for i := 0; i < m.G.Rows; i++ {
		for j := 0; j < m.G.Cols; j++ {
			if v := math.Abs(m.G.At(i, j)); v > maxAbs {
				maxAbs = v
			}
		}
	}
	if maxAbs == 0 {
		return nil, fmt.Errorf("core: zero conductance matrix")
	}
	scale := q.Max() / (2 * maxAbs)
	scaled := linalg.NewBanded(m.Band.N, m.Band.KL, m.Band.KU)
	for i := 0; i < m.Band.N; i++ {
		for j := 0; j < m.Band.N; j++ {
			if scaled.InBand(i, j) {
				scaled.Set(i, j, m.Band.At(i, j)*scale)
			}
		}
	}
	arr, err := systolic.New(scaled, q)
	if err != nil {
		return nil, err
	}
	return &ScaledEngine{Arr: arr, Scale: scale}, nil
}

// Eval computes q = G·t on the array, where t holds temperatures relative
// to the caller's bias point (must fit the format range). The result is
// de-scaled back to watts.
func (e *ScaledEngine) Eval(t, q []float64) (systolic.Stats, error) {
	st, err := e.Arr.MulVec(t, q)
	if err != nil {
		return st, err
	}
	for i := range q {
		q[i] /= e.Scale
	}
	return st, nil
}
