// Package core implements TECfan itself: the paper's hierarchical runtime
// optimization framework (§III). The lower level runs the multi-step
// down-hill heuristic every 2 ms control period — hot iterations engage TECs
// first and throttle DVFS only as a last resort; cool iterations restore
// DVFS toward maximum and then shed TEC power — always selecting the
// single-step adjustment with the least estimated per-instruction energy.
// The higher level adjusts the fan speed on a seconds time scale from
// average power and TEC duty. Predictions use the paper's own model stack:
// Eq. (1) steady state, Eq. (5) RC interpolation, Eq. (6) linear leakage,
// Eq. (7) dynamic scaling, and Eq. (9)–(11) for the EPI objective.
package core

import (
	"math"

	"tecfan/internal/fan"
	"tecfan/internal/floorplan"
	"tecfan/internal/perf"
	"tecfan/internal/power"
	"tecfan/internal/sim"
	"tecfan/internal/tec"
	"tecfan/internal/thermal"
)

// Candidate is one actuator configuration under evaluation. TECAmps, when
// non-nil, supersedes TECOn and drives each device at the given current —
// the variable-current extension of §III.
type Candidate struct {
	DVFS     []int
	TECOn    []bool
	TECAmps  []float64
	FanLevel int
}

// copyFrom deep-copies src into c, reusing c's buffers and preserving
// src's slice nil-ness (TECAmps vs TECOn selects the actuation mode).
func (c *Candidate) copyFrom(src *Candidate) {
	c.DVFS = copyInts(c.DVFS, src.DVFS)
	c.TECOn = copyBools(c.TECOn, src.TECOn)
	c.TECAmps = copyFloats(c.TECAmps, src.TECAmps)
	c.FanLevel = src.FanLevel
}

// clone deep-copies the candidate.
func (c Candidate) clone() Candidate {
	return Candidate{
		DVFS:     append([]int(nil), c.DVFS...),
		TECOn:    append([]bool(nil), c.TECOn...),
		TECAmps:  append([]float64(nil), c.TECAmps...),
		FanLevel: c.FanLevel,
	}
}

// Estimate is the model-predicted outcome of applying a candidate for one
// control period. Temps is empty (nil for a fresh Estimate) when the steady
// solver refused the candidate — the infeasible marker ft.go keys on.
type Estimate struct {
	Temps     []float64 // predicted die temperatures at the end of the period
	PeakTemp  float64
	PeakComp  int
	ChipPower float64
	ChipIPS   float64
	EPI       float64
	Feasible  bool
}

// Estimator evaluates candidates with the §III-A/B models. It is the
// software stand-in for the systolic temperature-evaluation hardware priced
// in §III-E.
type Estimator struct {
	Network    *thermal.Network
	Chip       *floorplan.Chip
	DVFS       *power.DVFSTable
	Leak       power.Leakage
	Fan        *fan.Model
	Placements []tec.Placement
	// Period is the lower-level control period Δk of Eq. (5).
	Period float64

	taus    []float64 // per-node RC constants for Eq. (5)
	scratch struct {
		pow, leak, steady []float64
	}
	// tecST is the reusable drive state tecState hands out: one State per
	// estimator instead of one per evaluated candidate. Like the scratch
	// buffers it makes the estimator not safe for concurrent use.
	tecST *tec.State
	// peakEst is SteadyPeak's reusable estimate buffer.
	peakEst Estimate
	// Evaluations counts Estimate calls — the complexity metric backing
	// the O(NL + N²M) claim.
	Evaluations int
}

// NewEstimator builds an estimator over the given models.
func NewEstimator(nw *thermal.Network, table *power.DVFSTable, leak power.Leakage, fm *fan.Model, placements []tec.Placement, period float64) *Estimator {
	e := &Estimator{
		Network:    nw,
		Chip:       nw.Chip,
		DVFS:       table,
		Leak:       leak,
		Fan:        fm,
		Placements: placements,
		Period:     period,
	}
	n := nw.NumNodes()
	e.taus = make([]float64, n)
	g := nw.AssembleG(0)
	for i := 0; i < n; i++ {
		gi := g.At(i, i)
		if gi <= 0 {
			gi = 1
		}
		tau := nw.Capacity(i) / gi
		if tau <= 0 {
			tau = 1e-4
		}
		e.taus[i] = tau
	}
	e.scratch.pow = make([]float64, nw.NumDie())
	e.scratch.leak = make([]float64, nw.NumDie())
	e.scratch.steady = make([]float64, n)
	return e
}

// tecState materializes a TEC state from a candidate's currents (preferred)
// or on/off mask, with every driven device treated as engaged (20 µs ≪ the
// 2 ms period). The returned state is owned by the estimator and is
// overwritten by the next call.
//
//tecfan:hotpath
func (e *Estimator) tecState(cand Candidate) *tec.State {
	if cand.TECAmps == nil && cand.TECOn == nil {
		return nil
	}
	if e.tecST == nil {
		//lint:tecfan-ignore allocfree -- built once per estimator; every later candidate reuses it (cold, amortized)
		e.tecST = tec.NewState(e.Placements) //lint:tecfan-ignore hotcall -- one-time construction of the reusable state
	}
	st := e.tecST
	st.Reset()
	if cand.TECAmps != nil {
		for l, amps := range cand.TECAmps {
			st.SetCurrent(l, amps)
		}
	} else {
		st.SetMask(cand.TECOn)
	}
	st.Advance(1) // past any engagement delay
	return st
}

// EstimateInto predicts the next control period under cand, given the
// previous-interval measurements in obs, writing the outcome into est. It
// is the down-hill walk's per-candidate kernel: est's Temps buffer is
// reused across calls (allocated only on first use), so a controller that
// keeps its Estimate values alive evaluates candidates allocation-free. On
// a solver failure est is marked infeasible with empty Temps.
//
//tecfan:hotpath
func (e *Estimator) EstimateInto(est *Estimate, obs *sim.Observation, cand Candidate) {
	e.Evaluations++
	nw := e.Network
	nDie := nw.NumDie()

	// Eq. (7): scale measured dynamic power to the candidate levels.
	for i := 0; i < nDie; i++ {
		core := e.Chip.CoreOf(i)
		e.scratch.pow[i] = obs.DynPower[i] * e.DVFS.DynScale(obs.DVFS[core], cand.DVFS[core])
	}
	// Eq. (6): linear leakage at the previous-interval temperatures.
	e.Leak.PerComponent(e.Chip, obs.Temps, power.ModelLinear, e.scratch.leak)
	var chipPower float64
	for i := 0; i < nDie; i++ {
		e.scratch.pow[i] += e.scratch.leak[i]
		chipPower += e.scratch.pow[i]
	}

	// Eq. (1): steady state under the candidate, warm-started from the
	// current temperatures for fast Peltier convergence.
	st := e.tecState(cand)
	copy(e.scratch.steady, obs.Temps)
	if err := nw.SteadyInto(e.scratch.steady, e.scratch.pow, cand.FanLevel, st); err != nil {
		// A solver failure marks the candidate infeasible rather than
		// crashing the control loop.
		est.Temps = est.Temps[:0]
		est.PeakComp, est.PeakTemp = -1, math.Inf(1)
		est.ChipPower, est.ChipIPS = 0, 0
		est.EPI = math.Inf(1)
		est.Feasible = false
		return
	}

	// Eq. (5): interpolate one period toward the steady state.
	if cap(est.Temps) < nDie {
		//lint:tecfan-ignore allocfree -- first-use growth of the caller's reusable buffer (cold, amortized)
		est.Temps = make([]float64, nDie)
	}
	est.Temps = est.Temps[:nDie]
	est.PeakComp, est.PeakTemp = -1, math.Inf(-1)
	for i := 0; i < nDie; i++ {
		t := thermal.RCInterp(e.scratch.steady[i], obs.Temps[i], e.taus[i], e.Period)
		est.Temps[i] = t
		if t > est.PeakTemp {
			est.PeakComp, est.PeakTemp = i, t
		}
	}

	// Eq. (8)+(9): chip power including TEC and fan. The steady field the
	// TEC power is priced at still sits in e.scratch.steady.
	chipPower += nw.TECPower(e.scratch.steady, st)
	chipPower += e.Fan.Power(cand.FanLevel)
	est.ChipPower = chipPower

	// Eq. (10)+(11): IPS prediction from the previous interval.
	var ips float64
	for core, prev := range obs.CoreIPS {
		ips += perf.ScaleIPS(prev, e.DVFS.FreqRatio(obs.DVFS[core], cand.DVFS[core]))
	}
	est.ChipIPS = ips
	est.EPI = perf.EPI(chipPower, ips)
	est.Feasible = est.PeakTemp <= obs.Threshold
}

// Estimate is the value-returning convenience form of EstimateInto; it
// allocates a fresh Temps per call, so per-candidate loops should hold an
// Estimate and use EstimateInto instead.
func (e *Estimator) Estimate(obs *sim.Observation, cand Candidate) Estimate {
	var est Estimate
	e.EstimateInto(&est, obs, cand)
	return est
}

// SteadyPeak predicts the eventual steady-state peak die temperature of a
// candidate — what the higher-level fan loop cares about, since fan effects
// outlive any single control period. A candidate the steady solver refuses
// reads as unboundedly hot.
func (e *Estimator) SteadyPeak(obs *sim.Observation, cand Candidate) float64 {
	e.EstimateInto(&e.peakEst, obs, cand)
	if len(e.peakEst.Temps) == 0 {
		return math.Inf(1)
	}
	peak := math.Inf(-1)
	for i := 0; i < e.Network.NumDie(); i++ {
		if v := e.scratch.steady[i]; v > peak {
			peak = v
		}
	}
	return peak
}
