package core

import (
	"fmt"

	"tecfan/internal/linalg"
	"tecfan/internal/thermal"
)

// BandEstimator is the hardware-feasible temperature predictor of §III-E:
// instead of solving the full-chip system, it evaluates one core at a time
// against its banded conductance sub-matrix, treating everything outside
// the core (neighbour components, the spreader) as a frozen boundary read
// from the temperature sensors — "since the inter-core thermal impact is
// limited in tile-structured many-core architectures, we only evaluate the
// temperature of one core each time". Each evaluation is one band solve,
// O(M·w²), the workload the priced systolic/band hardware performs.
type BandEstimator struct {
	nw *thermal.Network
	// Per-core factorizations of the banded sub-system — the verified kind:
	// the band LU does not pivot, so every EvalCore solve is residual-
	// checked and a degraded solve is refined or refused instead of feeding
	// the optimizer a silently wrong temperature prediction.
	factors []*linalg.VerifiedBandLU
	comps   [][]int // global component indices per core
	// boundary[core][i] lists couplings from local component i to nodes
	// outside the core (global node index, conductance).
	boundary [][][]coupling
	// rhs is the per-core solve scratch, sized to the largest core so
	// EvalCore stays allocation-free. Not safe for concurrent use — same
	// contract as the Network the estimator wraps.
	rhs []float64
}

type coupling struct {
	node int
	g    float64
}

// NewBandEstimator builds per-core band factorizations from the network.
func NewBandEstimator(nw *thermal.Network) (*BandEstimator, error) {
	chip := nw.Chip
	full := nw.AssembleG(0) // boundary handling makes the fan level irrelevant here
	e := &BandEstimator{
		nw:       nw,
		factors:  make([]*linalg.VerifiedBandLU, chip.NumCores()),
		comps:    make([][]int, chip.NumCores()),
		boundary: make([][][]coupling, chip.NumCores()),
	}
	for core := 0; core < chip.NumCores(); core++ {
		comps := chip.CoreComponents(core)
		m := len(comps)
		local := make(map[int]int, m)
		for li, gi := range comps {
			local[gi] = li
		}
		sub := linalg.NewDense(m, m)
		bounds := make([][]coupling, m)
		for li, gi := range comps {
			for gj := 0; gj < nw.NumNodes(); gj++ {
				v := full.At(gi, gj)
				if v == 0 {
					continue
				}
				if lj, in := local[gj]; in {
					sub.Set(li, lj, v)
				} else {
					// Off-core coupling: conductance g = −G[i][j].
					bounds[li] = append(bounds[li], coupling{node: gj, g: -v})
				}
			}
		}
		kl, ku := linalg.Bandwidth(sub, 0)
		band, err := linalg.BandedFromDense(sub, kl, ku, 0)
		if err != nil {
			return nil, fmt.Errorf("core: band extraction for core %d: %w", core, err)
		}
		f, err := linalg.NewVerifiedBandLU(band, 0)
		if err != nil {
			return nil, fmt.Errorf("core: band factorization for core %d: %w", core, err)
		}
		e.factors[core] = f
		e.comps[core] = comps
		e.boundary[core] = bounds
		if m > len(e.rhs) {
			e.rhs = make([]float64, m)
		}
	}
	return e, nil
}

// EvalCore predicts core's steady component temperatures given the die
// power vector (global indexing) and the full sensor temperature field used
// as the frozen boundary. out receives the M local temperatures in
// floorplan order; the returned slice aliases out.
func (e *BandEstimator) EvalCore(core int, power, sensorTemps, out []float64) ([]float64, error) {
	comps := e.comps[core]
	if len(out) != len(comps) {
		//lint:tecfan-ignore allocfree -- caller-contract defect path: formats the diagnosis at most once per failed call
		return nil, fmt.Errorf("core: out length %d, want %d", len(out), len(comps)) //lint:tecfan-ignore hotcall -- defect path: fmt runs at most once per failed call
	}
	rhs := e.rhs[:len(comps)]
	for li, gi := range comps {
		rhs[li] = power[gi]
		for _, c := range e.boundary[core][li] {
			rhs[li] += c.g * sensorTemps[c.node]
		}
	}
	if _, err := e.factors[core].Solve(rhs, out); err != nil {
		return nil, err
	}
	//lint:tecfan-ignore scratchalias -- documented contract: the returned slice aliases the caller's out argument
	return out, nil
}

// PeakCore returns the hottest predicted component of a core.
func (e *BandEstimator) PeakCore(core int, power, sensorTemps []float64) (comp int, tC float64, err error) {
	out := make([]float64, len(e.comps[core]))
	if _, err := e.EvalCore(core, power, sensorTemps, out); err != nil {
		return -1, 0, err
	}
	comp, tC = -1, out[0]
	for li, t := range out {
		if comp < 0 || t > tC {
			comp, tC = e.comps[core][li], t
		}
	}
	return comp, tC, nil
}
